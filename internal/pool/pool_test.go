package pool

import (
	"context"
	"errors"
	"testing"
	"time"

	"mte4jni"
	"mte4jni/internal/workloads"
)

func testPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 8 << 20
	}
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestAcquireReleaseReuse(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 2})
	ctx := context.Background()

	s1, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	name := s1.Name()
	res := s1.RunProgram(nil, SafeProgram())
	if res.Faulted() || res.Err != nil || res.Ret != 42 {
		t.Fatalf("safe program: ret=%d fault=%v err=%v", res.Ret, res.Fault, res.Err)
	}
	p.Release(s1)

	s2, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() != name {
		t.Fatalf("expected warm reuse of %s, got %s", name, s2.Name())
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation after one recycle = %d, want 1", s2.Generation())
	}
	p.Release(s2)

	st := p.Stats()
	if st.Created != 1 || st.Reused != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want created=1 reused=1", st)
	}
	if st.Leased != 0 || st.Idle != 1 {
		t.Fatalf("stats = %+v, want leased=0 idle=1", st)
	}
}

func TestSchemesKeptApart(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 4})
	ctx := context.Background()

	sSync, _ := p.Acquire(ctx, mte4jni.MTESync)
	p.Release(sSync)
	sNone, err := p.Acquire(ctx, mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	if sNone.Name() == sSync.Name() {
		t.Fatal("a NoProtection lease was served the warm MTESync session")
	}
	// The unchecked scheme must not fault on the OOB program.
	if res := sNone.RunProgram(nil, OOBProgram()); res.Faulted() || res.Err != nil {
		t.Fatalf("OOB under NoProtection: fault=%v err=%v", res.Fault, res.Err)
	}
	p.Release(sNone)
}

func TestFaultQuarantinesSession(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	ctx := context.Background()

	s, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	crashed := s.Name()
	res := s.RunProgram(nil, OOBProgram())
	if !res.Faulted() {
		t.Fatalf("OOB program did not fault under MTE+Sync (ret=%d err=%v)", res.Ret, res.Err)
	}
	if s.TaintFault() == nil {
		t.Fatal("fault did not taint the session")
	}
	p.Release(s)
	if s.rt.VM().Closed() != true {
		t.Fatal("quarantined session's VM was not closed")
	}

	// The slot must be replaceable: the next lease gets a fresh session.
	s2, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() == crashed {
		t.Fatal("quarantined session was reused")
	}
	if res := s2.RunProgram(nil, SafeProgram()); res.Faulted() || res.Err != nil {
		t.Fatalf("replacement session unhealthy: fault=%v err=%v", res.Fault, res.Err)
	}
	p.Release(s2)

	st := p.Stats()
	if st.Quarantined != 1 || st.Created != 2 {
		t.Fatalf("stats = %+v, want quarantined=1 created=2", st)
	}
	q := p.Quarantined()
	if len(q) != 1 || q[0].Session != crashed {
		t.Fatalf("quarantine log = %+v", q)
	}
}

func TestLeakedGlobalRetiresSession(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	ctx := context.Background()

	s, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	leaky := s.Name()
	obj, err := s.Runtime().VM().NewIntArray(8)
	if err != nil {
		t.Fatal(err)
	}
	s.Runtime().VM().AddGlobalRef(obj)
	p.Release(s)

	st := p.Stats()
	if st.Retired != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want retired=1 (hygiene, not quarantine)", st)
	}
	s2, err := p.Acquire(ctx, mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() == leaky {
		t.Fatal("leaky session was reused")
	}
	p.Release(s2)
}

func TestBackpressure(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1, MaxWaiters: 1})
	ctx := context.Background()

	held, err := p.Acquire(ctx, mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the one waiter slot.
	waited := make(chan error, 1)
	go func() {
		s, err := p.Acquire(ctx, mte4jni.NoProtection)
		if err == nil {
			p.Release(s)
		}
		waited <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: fail fast.
	if _, err := p.Acquire(ctx, mte4jni.NoProtection); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity acquire returned %v, want ErrOverloaded", err)
	}
	if p.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", p.Stats().Rejected)
	}

	// Releasing unblocks the queued waiter.
	p.Release(held)
	if err := <-waited; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1, MaxWaiters: 2})
	held, err := p.Acquire(context.Background(), mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(held)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx, mte4jni.NoProtection); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled acquire returned %v, want DeadlineExceeded", err)
	}
	if w := p.Stats().Waiters; w != 0 {
		t.Fatalf("waiters = %d after cancellation, want 0", w)
	}
}

func TestPoolClose(t *testing.T) {
	p := New(Config{MaxSessions: 2, HeapSize: 8 << 20})
	ctx := context.Background()

	idleS, _ := p.Acquire(ctx, mte4jni.MTESync)
	p.Release(idleS)
	leased, _ := p.Acquire(ctx, mte4jni.MTEAsync)

	p.Close()
	if !idleS.rt.VM().Closed() {
		t.Fatal("idle session not closed by pool Close")
	}
	if _, err := p.Acquire(ctx, mte4jni.MTESync); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close returned %v, want ErrClosed", err)
	}
	// The leased session is torn down at release time.
	p.Release(leased)
	if !leased.rt.VM().Closed() {
		t.Fatal("leased session not closed on post-Close release")
	}
	if n := len(p.Sessions()); n != 0 {
		t.Fatalf("%d sessions survive Close, want 0", n)
	}
	p.Close() // idempotent
}

func TestRunWorkload(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1, HeapSize: 32 << 20})
	s, err := p.Acquire(context.Background(), mte4jni.MTEAsync)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunWorkload(nil, "PDF Renderer", workloads.ScaleSmall, 2)
	if res.Faulted() || res.Err != nil {
		t.Fatalf("workload run: fault=%v err=%v", res.Fault, res.Err)
	}
	if res.Ret != 2 {
		t.Fatalf("ret = %d, want iteration count 2", res.Ret)
	}
	if res := s.RunWorkload(nil, "no-such-workload", workloads.ScaleSmall, 1); res.Err == nil {
		t.Fatal("unknown workload did not error")
	}
	p.Release(s)
	// Workload state must not leak: the session must have been recycled, not
	// retired.
	if st := p.Stats(); st.Retired != 0 || st.Idle != 1 {
		t.Fatalf("stats after workload lease = %+v, want retired=0 idle=1", st)
	}
}

func TestSessionsIntrospection(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 2})
	ctx := context.Background()
	a, _ := p.Acquire(ctx, mte4jni.MTESync)
	b, _ := p.Acquire(ctx, mte4jni.MTEAsync)
	p.Release(b)

	infos := p.Sessions()
	if len(infos) != 2 {
		t.Fatalf("%d sessions listed, want 2", len(infos))
	}
	states := map[string]string{}
	for _, in := range infos {
		states[in.Session] = in.State
	}
	if states[a.Name()] != "leased" || states[b.Name()] != "idle" {
		t.Fatalf("states = %v", states)
	}
	p.Release(a)
}
