package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mte4jni"
	"mte4jni/internal/bench"
)

// ThroughputBench measures concurrent lease throughput — AcquireFor +
// Release of a no-op lease, the pure admission path — at shard counts 1, 4
// and 8, and returns one pool/Throughput/shards=N row per count. The suite
// cannot host these rows itself (the root package is imported by this one),
// so `mte4jni bench` appends them to the snapshot after the main suite.
//
// Shape: 16 workers over 16 capacity tokens, each worker its own tenant so
// the affinity hash spreads homes across shards; sessions are warm after
// the first lap and leases never run anything, so the no-op-lease fast path
// keeps recycling out of the measurement. What remains per op is exactly
// the serialization the shard split exists to remove: token bookkeeping,
// warm-list push/pop and stats under the admission lock(s). Scaling beyond
// lock-spreading needs real cores — on a single-CPU host the shard counts
// mostly tie, which is why the bench-smoke scaling gate is conditional on
// available parallelism (see scripts/serve_smoke.sh).
func ThroughputBench(ctx context.Context, quick bool) ([]bench.Result, error) {
	target := 250 * time.Millisecond
	if quick {
		target = 20 * time.Millisecond
	}
	var out []bench.Result
	for _, shards := range []int{1, 4, 8} {
		res, err := benchShardCount(ctx, shards, target)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// benchShardCount times one shard count with the runSuiteCase protocol of
// the main suite: warmup, then batches grown until the timed batch reaches
// target, with allocator traffic read around the final batch.
func benchShardCount(ctx context.Context, shards int, target time.Duration) (bench.Result, error) {
	const workers = 16
	p := New(Config{
		MaxSessions: workers,
		Shards:      shards,
		MaxWaiters:  4 * workers,
		HeapSize:    4 << 20,
	})
	defer p.Close()
	// Affine load: workers/shards tenants per shard, found by probing the
	// affinity hash. This is the geometry the router produces by design —
	// every worker's home shard holds its warm session and a free token, so
	// the measurement isolates admission cost instead of hash luck (random
	// tenant names make 2-token shards oversubscribed at high shard counts,
	// and the queue churn drowns the admission signal).
	tenants := make([]string, 0, workers)
	for shardIdx := 0; shardIdx < shards; shardIdx++ {
		need := workers / shards
		for probe := 0; need > 0; probe++ {
			name := fmt.Sprintf("bench-tenant-%d", probe)
			if p.HomeShard(name, mte4jni.NoProtection) == shardIdx {
				tenants = append(tenants, name)
				need--
			}
			if probe > 1<<20 {
				return bench.Result{}, fmt.Errorf("pool bench: no tenant hashes to shard %d", shardIdx)
			}
		}
	}

	run := func(n int) error {
		per := n / workers
		if per == 0 {
			per = 1
		}
		errc := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					s, err := p.AcquireFor(ctx, mte4jni.NoProtection, tenant)
					if err != nil {
						errc <- err
						return
					}
					p.Release(s)
				}
			}(tenants[w])
		}
		wg.Wait()
		close(errc)
		return <-errc
	}

	if err := run(workers); err != nil { // warmup: build every session once
		return bench.Result{}, err
	}
	// Grow the batch until one lasts target/batches, then time `batches`
	// batches and keep the fastest. The min matters more here than in the
	// main suite: a goroutine preempted inside an admission critical
	// section stalls every sibling on that lock, and on few-core hosts
	// that turns single batches into coin flips (5–20× swings). The fastest
	// batch is the reproducible quantity: admission cost without scheduler
	// accidents.
	const batches = 5
	batchTarget := target / batches
	n := workers
	var elapsed time.Duration
	for {
		start := time.Now()
		if err := run(n); err != nil {
			return bench.Result{}, err
		}
		elapsed = time.Since(start)
		if elapsed >= batchTarget || n >= 1<<30 {
			break
		}
		grow := int(float64(batchTarget)/float64(elapsed)*float64(n)*1.2) + workers
		if grow > 100*n {
			grow = 100 * n
		}
		n = grow
	}
	ops := (n / workers) * workers
	if ops == 0 {
		ops = workers
	}
	best := elapsed
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for b := 1; b < batches; b++ {
		start := time.Now()
		if err := run(n); err != nil {
			return bench.Result{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&after)
	perBatch := float64(after.Mallocs-before.Mallocs) / float64(batches-1)
	bytesPerBatch := float64(after.TotalAlloc-before.TotalAlloc) / float64(batches-1)
	return bench.Result{
		Name:        fmt.Sprintf("pool/Throughput/shards=%d", shards),
		Iters:       ops,
		NsPerOp:     float64(best.Nanoseconds()) / float64(ops),
		AllocsPerOp: perBatch / float64(ops),
		BytesPerOp:  bytesPerBatch / float64(ops),
	}, nil
}
