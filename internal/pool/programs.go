package pool

import (
	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/mte"
)

// Canned programs for the serving layer. Both follow the differential
// oracle's spine — allocate an int array, hand it to a native, return a
// constant — with behaviour pinned to one deterministic verdict each, so the
// load generator can inject faults on a schedule and reconcile its counts
// against /metrics exactly.

// cannedLen is the canned programs' array length: 16 ints = 64 bytes = 4
// granules, so payload end and granule end coincide and "one byte past the
// end" is unambiguously the next granule.
const cannedLen = 16

func canned(name string, sum analysis.NativeSummary) *analysis.Program {
	return &analysis.Program{
		Method: &interp.Method{
			Name: name,
			Code: []interp.Inst{
				{Op: interp.OpConst, A: cannedLen},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 42},
				{Op: interp.OpReturn},
			},
			MaxLocals:   1,
			MaxRefs:     1,
			NativeNames: []string{name},
		},
		Natives: map[string]analysis.NativeSummary{name: sum},
	}
}

// SafeProgram returns a program whose native stays inside the payload: it
// must never fault under any scheme. Fresh per call — programs are mutable.
func SafeProgram() *analysis.Program {
	return canned("serve_safe", analysis.NativeSummary{
		MinOff: 0, MaxOff: cannedLen*4 - 1, Write: true,
	})
}

// OOBProgram returns a program whose native stores one byte past the end of
// the array — into the adjacent granule, whose tag is guaranteed to differ
// under tag-0 exclusion plus neighbour exclusion — so it deterministically
// faults under the MTE schemes.
func OOBProgram() *analysis.Program {
	return canned("serve_oob", analysis.NativeSummary{
		MinOff: int64(mte.Addr(cannedLen * 4).AlignUp(mte.GranuleSize)),
		MaxOff: int64(mte.Addr(cannedLen * 4).AlignUp(mte.GranuleSize)),
		Write:  true,
	})
}

// SpinProgram returns a pure-bytecode countdown loop of n iterations
// (7 dispatched instructions each, no native calls, no memory access — the
// admission screen has nothing to reject). With n large it runs until the
// step budget or the execution context cuts it off: the load generator's
// -cancel-rate/-deadline-rate modes and the run-timeout tests use it as the
// runaway tenant.
func SpinProgram(n int64) *analysis.Program {
	return &analysis.Program{
		Method: &interp.Method{
			Name: "serve_spin", MaxLocals: 1,
			Code: []interp.Inst{
				{Op: interp.OpConst, A: n},
				{Op: interp.OpStore, A: 0},
				{Op: interp.OpLoad, A: 0},
				{Op: interp.OpJmpIfZero, A: 9},
				{Op: interp.OpLoad, A: 0},
				{Op: interp.OpConst, A: 1},
				{Op: interp.OpSub},
				{Op: interp.OpStore, A: 0},
				{Op: interp.OpJmp, A: 2},
				{Op: interp.OpConst, A: 42},
				{Op: interp.OpReturn},
			},
		},
	}
}

// BadProgramNames lists the known provably-faulting inline programs, in the
// round-robin order the load generator's -reject-rate mode submits them.
var BadProgramNames = []string{"reject_oob", "reject_stale", "reject_forge"}

// BadProgram returns a named provably-faulting program — one the static
// admission screen must reject with 422 when submitted inline. The three
// names cover the three illicit-access classes the screen proves: an
// out-of-bounds store into the neighbour granule, a use-after-release
// through a stale pointer, and a dereference through forged tag bits.
func BadProgram(name string) *analysis.Program {
	switch name {
	case "reject_oob":
		p := OOBProgram()
		p.Method.Name = name
		return p
	case "reject_stale":
		return canned(name, analysis.NativeSummary{
			MinOff: 0, MaxOff: cannedLen*4 - 1, UseAfterRelease: true,
		})
	case "reject_forge":
		return canned(name, analysis.NativeSummary{
			MinOff: 0, MaxOff: cannedLen*4 - 1, Write: true, ForgeTag: true,
		})
	}
	return nil
}
