package pool

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"mte4jni"
	"mte4jni/internal/workloads"
)

// TestConcurrentSessions is the serving layer's isolation stress test, meant
// to run under -race: many goroutines lease sessions and run MTE+Sync and
// MTE+Async workloads concurrently, a subset injecting deterministic OOB
// faults, while each leased VM's concurrent GC thread scans the same heap
// native code is accessing (the paper's §4.2 thread-level TCO scenario).
//
// Isolation invariants checked:
//   - a fault surfaces only on the lease that caused it — goroutines running
//     safe work never observe a fault (no cross-session bleed);
//   - GC scans never fault (their threads run with TCO set, so tag checks
//     are suppressed for the collector even while tenants fault);
//   - the pool's books balance: every injected fault quarantines exactly one
//     session, and capacity is fully restored afterwards.
func TestConcurrentSessions(t *testing.T) {
	const (
		goroutines = 16
		leases     = 4 // per goroutine
	)
	p := testPool(t, Config{MaxSessions: 8, HeapSize: 16 << 20})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*leases)
	var faultsInjected, faultsSeen sync.Map // goroutine id → count
	var injectedTotal, seenTotal, gcScansTotal atomic64

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scheme := mte4jni.MTESync
			if g%2 == 1 {
				scheme = mte4jni.MTEAsync
			}
			injectFaults := g%4 == 0 // goroutines 0, 4, 8, 12 are hostile
			for l := 0; l < leases; l++ {
				s, err := p.Acquire(ctx, scheme)
				if err != nil {
					errs <- fmt.Errorf("g%d lease %d: acquire: %w", g, l, err)
					return
				}

				// Concurrent GC: scan this session's heap from its own
				// HeapTaskDaemon while the workload mutates it.
				gcDone := make(chan error, 1)
				gcStop := make(chan struct{})
				gcTh, err := s.Runtime().VM().NewGCThread()
				if err != nil {
					errs <- fmt.Errorf("g%d: gc thread: %w", g, err)
					p.Release(s)
					return
				}
				go func() {
					defer close(gcDone)
					// At least one scan always runs, even if the workload
					// outraces goroutine scheduling; stop is checked after.
					for {
						if f, _ := s.Runtime().VM().ConcurrentScan(gcTh.Ctx()); f != nil {
							gcDone <- fmt.Errorf("g%d: GC scan faulted: %v", g, f)
							return
						}
						gcScansTotal.add(1)
						select {
						case <-gcStop:
							return
						default:
						}
					}
				}()

				var res *RunResult
				if injectFaults && l == leases-1 {
					res = s.RunProgram(nil, OOBProgram())
					if !res.Faulted() {
						errs <- fmt.Errorf("g%d: injected OOB did not fault under %v", g, scheme)
					} else {
						injectedTotal.add(1)
						count(&faultsInjected, g)
					}
				} else {
					res = s.RunWorkload(nil, "Background Blur", workloads.ScaleSmall, 4)
					if res.Err != nil {
						errs <- fmt.Errorf("g%d lease %d: workload: %w", g, l, res.Err)
					}
				}
				if res.Faulted() {
					seenTotal.add(1)
					count(&faultsSeen, g)
				}

				close(gcStop)
				if err := <-gcDone; err != nil {
					errs <- err
				}
				s.Runtime().VM().DetachThread(gcTh)
				p.Release(s)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No bleed: faults were seen exactly where they were injected.
	faultsSeen.Range(func(k, v any) bool {
		g := k.(int)
		if _, injected := faultsInjected.Load(g); !injected {
			t.Errorf("goroutine %d observed a fault it never injected", g)
		}
		return true
	})
	if injectedTotal.load() != 4 || seenTotal.load() != injectedTotal.load() {
		t.Errorf("faults injected=%d seen=%d, want 4 and equal", injectedTotal.load(), seenTotal.load())
	}
	if gcScansTotal.load() == 0 {
		t.Error("concurrent GC never completed a scan")
	}

	// Books balance: each injected fault quarantined one session, and the
	// pool is back to full capacity (all slots releasable → re-acquirable).
	st := p.Stats()
	if st.Quarantined != injectedTotal.load() {
		t.Errorf("quarantined=%d, want %d", st.Quarantined, injectedTotal.load())
	}
	if st.Leased != 0 {
		t.Errorf("leased=%d after all releases, want 0", st.Leased)
	}
	var held []*Session
	for i := 0; i < p.Config().MaxSessions; i++ {
		s, err := p.Acquire(ctx, mte4jni.MTESync)
		if err != nil {
			t.Fatalf("capacity not restored: slot %d: %v", i, err)
		}
		held = append(held, s)
	}
	for _, s := range held {
		p.Release(s)
	}
}

// atomic64 is a tiny counter helper keeping the test body readable.
type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func count(m *sync.Map, g int) {
	v, _ := m.LoadOrStore(g, new(atomic64))
	v.(*atomic64).add(1)
}
