package pool

import (
	"sync"

	"mte4jni"
)

// shard is one admission domain of the pool: its own capacity tokens, warm
// free lists, live-session ledger and bounded waiter queue, all guarded by
// a shard-local mutex so admission on one shard never serializes against
// another. Requests are routed to a home shard by the {tenant, scheme}
// affinity hash (Pool.HomeShard), which is what keeps warm-session reuse —
// and with it primed elision state and per-session tag streams — intact
// across the shard split: the same tenant/scheme pair always lands on the
// same free lists.
//
// Cross-shard work stealing keeps the split work-conserving when the hash
// skews. It runs in both directions:
//
//   - overflow at acquire: an Acquire that finds its home shard saturated
//     takes a free token from any other shard before it queues;
//   - waiter stealing at release: a shard whose token frees with nobody
//     queued locally offers that token to the oldest waiter queued on any
//     other shard (offerToken), so a queued Acquire never starves behind an
//     idle shard.
//
// Both directions account the lease to the shard that supplied the token
// (shard_leases_total) and count the foreign service in shard_steals_total.
type shard struct {
	p   *Pool
	idx int

	mu sync.Mutex
	// freeTokens is the shard's slice of the capacity semaphore: one token
	// per live-or-creatable session this shard may lease out.
	freeTokens int
	// capacity is the shard's share of Config.MaxSessions, fixed at New.
	capacity int
	// warmIdle parks recycled sessions per scheme for warm reuse.
	warmIdle map[mte4jni.Scheme][]*Session
	// liveHere is every non-closed session whose token belongs to this
	// shard, idle or leased.
	liveHere map[uint64]*Session
	// waitq is the bounded FIFO of parked Acquires waiting for a token
	// grant. A waiter is granted at most once: whoever pops it sends the
	// grant while still holding this mutex, so "absent from waitq" implies
	// "grant already buffered on waiter.ready".
	waitq    []*waiter
	leasedCt int
	closed   bool

	// Counters surfaced per shard in /metrics (ShardStats).
	leases  uint64 // shard_leases_total: leases served from this shard's tokens
	steals  uint64 // shard_steals_total: of those, leases serving another shard's traffic
	shed    uint64 // shard_shed_total: admissions refused 503 at this shard's queue
	created uint64 // VM constructions on this shard
	reused  uint64 // leases served warm from this shard's free lists
}

// waiter is one parked Acquire.
type waiter struct {
	scheme mte4jni.Scheme
	ready  chan grant // buffered 1; receives exactly one grant ever
}

// grant hands a waiter one reserved capacity token on the shard from. A
// zero grant (nil from) reports pool closure.
type grant struct{ from *shard }

// ShardStats is one shard's point-in-time accounting, surfaced through
// Stats.Shards and /metrics.
type ShardStats struct {
	Shard    int    `json:"shard"`
	Capacity int    `json:"capacity"`
	Leased   int    `json:"leased"`
	Idle     int    `json:"idle"`
	Waiters  int    `json:"waiters"`
	Leases   uint64 `json:"shard_leases_total"`
	Steals   uint64 `json:"shard_steals_total"`
	Shed     uint64 `json:"shard_shed_total"`
	Created  uint64 `json:"created"`
	Reused   uint64 `json:"reused"`
}

// tryTakeToken claims one free token, accounting the nascent lease.
func (sh *shard) tryTakeToken() bool {
	sh.mu.Lock()
	if sh.closed || sh.freeTokens == 0 {
		sh.mu.Unlock()
		return false
	}
	sh.freeTokens--
	sh.leasedCt++
	sh.mu.Unlock()
	return true
}

// popWaiterLocked dequeues the oldest waiter. Caller holds sh.mu and must
// send the grant before releasing it (that lock-held send is what makes
// waiter cancellation race-free: a waiter that finds itself missing from
// the queue knows its grant is already buffered).
func (sh *shard) popWaiterLocked() *waiter {
	w := sh.waitq[0]
	copy(sh.waitq, sh.waitq[1:])
	sh.waitq[len(sh.waitq)-1] = nil
	sh.waitq = sh.waitq[:len(sh.waitq)-1]
	sh.p.waiting.Add(-1)
	return w
}

// removeWaiter takes w out of the queue if it is still there. A false
// return means w was already granted — the grant is sitting in w.ready and
// the canceling Acquire must give it back via returnToken.
func (sh *shard) removeWaiter(w *waiter) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, q := range sh.waitq {
		if q == w {
			sh.waitq = append(sh.waitq[:i], sh.waitq[i+1:]...)
			sh.p.waiting.Add(-1)
			return true
		}
	}
	return false
}

// enqueueWaiter joins home's bounded wait queue, applying the per-shard
// shed decision with the pool-wide backstop: the queue sheds when its own
// slice of MaxWaiters is full, or when the whole pool has MaxWaiters
// Acquires parked regardless of how they are spread.
func (p *Pool) enqueueWaiter(home *shard, scheme mte4jni.Scheme) (*waiter, error) {
	home.mu.Lock()
	if home.closed {
		home.mu.Unlock()
		return nil, ErrClosed
	}
	if len(home.waitq) >= p.perShardWaiters || int(p.waiting.Load()) >= p.cfg.MaxWaiters {
		home.shed++
		home.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{scheme: scheme, ready: make(chan grant, 1)}
	home.waitq = append(home.waitq, w)
	p.waiting.Add(1)
	home.mu.Unlock()
	return w, nil
}

// returnToken frees one reserved token on sh. The token is handed to the
// oldest local waiter when one is queued — the lease ledger stays balanced
// because one lease ends as the next begins on the same token — and
// otherwise freed and offered to other shards' waiters.
func (p *Pool) returnToken(sh *shard) {
	sh.mu.Lock()
	sh.leasedCt--
	if !sh.closed && len(sh.waitq) > 0 {
		w := sh.popWaiterLocked()
		sh.leasedCt++
		w.ready <- grant{from: sh}
		sh.mu.Unlock()
		return
	}
	sh.freeTokens++
	sh.mu.Unlock()
	p.offerToken(sh)
}

// offerToken is the stealing half of returnToken: while sh holds a free
// token and some shard has a queued waiter, reserve the token and grant it.
// Two shard mutexes are never held at once; instead the put-back path
// re-checks for waiters that enqueued mid-scan and loops, which closes the
// lost-wakeup race against enqueueWaiter (whose own post-enqueue token scan
// covers the complementary window).
func (p *Pool) offerToken(sh *shard) {
	// No waiters anywhere: skip the sweep. This read is what keeps a
	// waiter-free release O(1) instead of O(shards). It cannot miss a
	// waiter that matters: enqueueWaiter publishes p.waiting before the
	// waiter's own post-enqueue token scan, and returnToken frees the token
	// before this load, so one of the two sides always sees the other
	// (both orderings cannot lose simultaneously — that interleaving is
	// cyclic).
	if len(p.shards) == 1 || p.waiting.Load() == 0 {
		return
	}
	for {
		sh.mu.Lock()
		if sh.closed || sh.freeTokens == 0 {
			sh.mu.Unlock()
			return
		}
		sh.freeTokens--
		sh.leasedCt++
		sh.mu.Unlock()

		for i := 1; i < len(p.shards); i++ {
			other := p.shards[(sh.idx+i)%len(p.shards)]
			other.mu.Lock()
			if len(other.waitq) > 0 {
				w := other.popWaiterLocked()
				w.ready <- grant{from: sh}
				other.mu.Unlock()
				return
			}
			other.mu.Unlock()
		}

		// Nobody to help: put the token back — or hand it straight to a
		// local waiter that queued while the token was reserved.
		sh.mu.Lock()
		if !sh.closed && len(sh.waitq) > 0 {
			w := sh.popWaiterLocked()
			w.ready <- grant{from: sh}
			sh.mu.Unlock()
			return
		}
		sh.freeTokens++
		sh.leasedCt--
		sh.mu.Unlock()
		if !p.anyQueuedWaiters() {
			return
		}
	}
}

// anyQueuedWaiters reports whether any shard has a parked Acquire.
func (p *Pool) anyQueuedWaiters() bool {
	return p.waiting.Load() > 0
}

// leaseOn completes a lease on sh for a caller holding one reserved token
// there (leasedCt already counted): pop a warm session of the right scheme,
// or build a fresh one. stolen marks leases whose home shard is not sh, for
// shard_steals_total.
func (p *Pool) leaseOn(sh *shard, scheme mte4jni.Scheme, stolen bool) (*Session, error) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		p.returnToken(sh)
		return nil, ErrClosed
	}
	if list := sh.warmIdle[scheme]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		sh.warmIdle[scheme] = list[:len(list)-1]
		s.leases++
		sh.reused++
		sh.leases++
		if stolen {
			sh.steals++
		}
		epoch := p.reseedEpoch.Load()
		needReseed := s.seedEpoch != epoch
		if needReseed {
			p.sessionsReseeded.Add(1)
		}
		sh.mu.Unlock()
		if needReseed {
			// Tag-reseed-on-suspicion: the session was parked before the
			// last tier crossing, so whatever tags an attacker learned from
			// it are about to go stale. The lease is exclusively ours here —
			// reseed outside the shard lock.
			s.reseed(p.cfg.Seed, epoch)
		}
		s.beginLease()
		return s, nil
	}
	sh.mu.Unlock()

	id := p.nextID.Add(1)
	s, err := p.newSession(id, scheme, p.cfg.Seed+int64(id))
	if err != nil {
		p.returnToken(sh)
		return nil, err
	}
	s.home = sh
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		s.close()
		p.mu.Lock()
		p.accumulateTagsLocked(s)
		p.mu.Unlock()
		p.returnToken(sh)
		return nil, ErrClosed
	}
	sh.liveHere[id] = s
	sh.created++
	sh.leases++
	if stolen {
		sh.steals++
	}
	s.leases++
	// A fresh session's tags are brand new: it is born at the current
	// reseed epoch.
	s.seedEpoch = p.reseedEpoch.Load()
	sh.mu.Unlock()
	s.beginLease()
	return s, nil
}

// snapshotLocked is sh's contribution to Stats. Caller holds sh.mu.
func (sh *shard) snapshotLocked() ShardStats {
	idle := 0
	for _, list := range sh.warmIdle {
		idle += len(list)
	}
	return ShardStats{
		Shard:    sh.idx,
		Capacity: sh.capacity,
		Leased:   sh.leasedCt,
		Idle:     idle,
		Waiters:  len(sh.waitq),
		Leases:   sh.leases,
		Steals:   sh.steals,
		Shed:     sh.shed,
		Created:  sh.created,
		Reused:   sh.reused,
	}
}

// AffinityKey is the routing hash shared by the in-process shard router and
// the cluster balancer (FNV-1a over tenant, a separator, and the scheme
// name), so a request lands on the same warm state whether the hop is a
// shard index or a backend pick.
func AffinityKey(tenant, scheme string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(scheme); i++ {
		h ^= uint64(scheme[i])
		h *= prime64
	}
	return h
}

// HomeShard resolves the affinity hash to a shard index.
func (p *Pool) HomeShard(tenant string, scheme mte4jni.Scheme) int {
	return int(AffinityKey(tenant, scheme.String()) % uint64(len(p.shards)))
}
