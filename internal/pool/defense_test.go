package pool

import (
	"context"
	"errors"
	"testing"
	"time"

	"mte4jni"
)

// An attacker tenant faulting on every request walks the full escalation
// ladder — admit, delay, quarantine — and once quarantined can neither
// consume capacity tokens nor grow the quarantine ring past its bound.
func TestDefenseEscalationLadder(t *testing.T) {
	p := New(Config{
		MaxSessions: 2,
		HeapSize:    1 << 20,
		Defense: DefenseConfig{
			DelayThreshold:      2,
			QuarantineThreshold: 4,
			Delay:               100 * time.Microsecond,
		},
	})
	defer p.Close()
	ctx := context.Background()

	const attempts = 60
	refused := 0
	for i := 0; i < attempts; i++ {
		s, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil")
		if errors.Is(err, ErrTenantQuarantined) {
			refused++
			continue
		}
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		res := s.RunAttackProbe(nil)
		if res.Fault == nil {
			t.Fatalf("attempt %d: attack probe undetected under MTE sync", i)
		}
		p.ObserveFault("evil")
		p.Release(s)
	}

	st := p.Stats()
	// Faults 1..4 run (quarantine trips at the 4th observed fault); every
	// later admission is refused.
	if refused != attempts-4 {
		t.Fatalf("refused = %d, want %d", refused, attempts-4)
	}
	if st.Quarantined != 4 {
		t.Fatalf("session quarantines = %d, want 4 (one per detected probe)", st.Quarantined)
	}
	// Requests 3 and 4 were admitted in the delay tier.
	if st.ThrottledTotal != 2 {
		t.Fatalf("throttled_total = %d, want 2", st.ThrottledTotal)
	}
	if st.TenantsQuarantined != 1 {
		t.Fatalf("tenants_quarantined_total = %d, want 1", st.TenantsQuarantined)
	}
	// Two tier crossings, two reseed-epoch bumps.
	if st.ReseedsTotal != 2 {
		t.Fatalf("reseeds_total = %d, want 2", st.ReseedsTotal)
	}
	if p.TenantFaults("evil") != 4 {
		t.Fatalf("tenant faults = %d, want 4", p.TenantFaults("evil"))
	}
	// The ring stays bounded no matter how long the attack runs.
	if n := len(p.Quarantined()); n > quarantineLog {
		t.Fatalf("quarantine ring grew to %d, bound is %d", n, quarantineLog)
	}
	// No slot leak: a refused admission never took a token, and every
	// quarantined session returned its own. The full capacity must still be
	// acquirable without waiting.
	if st.Leased != 0 {
		t.Fatalf("leased = %d after refusals, want 0", st.Leased)
	}
	short, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var held []*Session
	for i := 0; i < p.Config().MaxSessions; i++ {
		s, err := p.AcquireFor(short, mte4jni.NoProtection, "honest")
		if err != nil {
			t.Fatalf("honest acquire %d after attack: %v", i, err)
		}
		held = append(held, s)
	}
	for _, s := range held {
		p.Release(s)
	}
}

// The quarantine ring must hold its bound even when session quarantines
// far exceed it (a tenant below the quarantine threshold — or with the
// defense disabled — faulting on every request).
func TestQuarantineRingBoundedUnderSustainedFaults(t *testing.T) {
	p := New(Config{MaxSessions: 2, HeapSize: 1 << 20})
	defer p.Close()
	ctx := context.Background()

	const rounds = quarantineLog * 2
	for i := 0; i < rounds; i++ {
		s, err := p.Acquire(ctx, mte4jni.MTESync)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if res := s.RunAttackProbe(nil); res.Fault == nil {
			t.Fatalf("round %d: probe undetected", i)
		}
		p.Release(s)
	}
	if st := p.Stats(); st.Quarantined != rounds {
		t.Fatalf("quarantined = %d, want %d", st.Quarantined, rounds)
	}
	if n := len(p.Quarantined()); n != quarantineLog {
		t.Fatalf("ring holds %d records, want exactly the bound %d", n, quarantineLog)
	}
}

// A quarantined tenant's refusal must not starve other tenants: the policy
// is per-tenant, and refusals happen before any token is taken.
func TestDefenseRefusalIsPerTenant(t *testing.T) {
	p := New(Config{
		MaxSessions: 1,
		HeapSize:    1 << 20,
		Defense:     DefenseConfig{QuarantineThreshold: 1},
	})
	defer p.Close()
	ctx := context.Background()

	s, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil")
	if err != nil {
		t.Fatal(err)
	}
	if res := s.RunAttackProbe(nil); res.Fault == nil {
		t.Fatal("probe undetected")
	}
	p.ObserveFault("evil")
	p.Release(s)

	if _, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("evil tenant admission: %v, want ErrTenantQuarantined", err)
	}
	s, err = p.AcquireFor(ctx, mte4jni.MTESync, "honest")
	if err != nil {
		t.Fatalf("honest tenant blocked by evil tenant's quarantine: %v", err)
	}
	p.Release(s)
}

// Tag-reseed-on-suspicion: a warm session parked before a tier crossing is
// re-seeded on its next lease, stays fully serviceable, and passes the
// GC-verified recycle afterwards.
func TestReseedOnSuspicionKeepsSessionsServiceable(t *testing.T) {
	p := New(Config{
		MaxSessions: 1,
		HeapSize:    1 << 20,
		Defense:     DefenseConfig{DelayThreshold: 1, QuarantineThreshold: 100},
	})
	defer p.Close()
	ctx := context.Background()

	// Park one warm session at epoch 0.
	s, err := p.AcquireFor(ctx, mte4jni.MTESync, "good")
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := s.Runtime().VM().Space.Epoch()
	p.Release(s)

	// Another tenant trips the delay tier: reseed epoch bumps.
	p.ObserveFault("evil")
	if st := p.Stats(); st.ReseedsTotal != 1 {
		t.Fatalf("reseeds_total = %d, want 1", st.ReseedsTotal)
	}

	// The warm session re-seeds at its next lease.
	s, err = p.AcquireFor(ctx, mte4jni.MTESync, "good")
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SessionsReseeded != 1 {
		t.Fatalf("sessions_reseeded_total = %d, want 1", st.SessionsReseeded)
	}
	if ep := s.Runtime().VM().Space.Epoch(); ep == epochBefore {
		t.Fatal("reseed did not bump the space epoch — learned TLB/elision state would stay valid")
	}
	// The re-seeded session still serves real work and recycles cleanly.
	res := s.RunWorkload(nil, "PDF Renderer", 0, 1)
	if res.Fault != nil || res.Err != nil {
		t.Fatalf("workload on reseeded session: fault=%v err=%v", res.Fault, res.Err)
	}
	p.Release(s)
	st := p.Stats()
	if st.Retired != 0 || st.Quarantined != 0 {
		t.Fatalf("reseeded session failed recycle: %+v", st)
	}
	if st.Idle != 1 {
		t.Fatalf("idle = %d, want the reseeded session parked warm", st.Idle)
	}
	// An unchanged epoch does not reseed again.
	s, err = p.AcquireFor(ctx, mte4jni.MTESync, "good")
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SessionsReseeded != 1 {
		t.Fatalf("sessions_reseeded_total = %d after stable epoch, want still 1", st.SessionsReseeded)
	}
	p.Release(s)
}

// A reseed invalidates any elision proofs primed against the old tag
// layout: the space-epoch bump makes ArmElision refuse and books the
// invalidation the serving tier exports as elision_invalidated_total.
func TestReseedInvalidatesPrimedElision(t *testing.T) {
	p := New(Config{MaxSessions: 1, HeapSize: 1 << 20})
	defer p.Close()
	s, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(s)

	env := s.Env()
	before := env.ElisionInvalidations()
	env.PrimeElision()
	s.Runtime().VM().ResetHeapTags()
	if env.ArmElision() {
		t.Fatal("elision armed across a tag reseed")
	}
	env.ClearElision()
	if got := env.ElisionInvalidations(); got != before+1 {
		t.Fatalf("elision invalidations = %d, want %d", got, before+1)
	}
}

// A canceled client in the delay tier gets its context error instead of
// serving out the penalty.
func TestDefenseDelayRespectsContext(t *testing.T) {
	p := New(Config{
		MaxSessions: 1,
		HeapSize:    1 << 20,
		Defense:     DefenseConfig{DelayThreshold: 1, QuarantineThreshold: 100, Delay: time.Hour},
	})
	defer p.Close()
	p.ObserveFault("evil")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil"); !errors.Is(err, context.Canceled) {
		t.Fatalf("delayed admission with canceled context: %v, want context.Canceled", err)
	}
}

// Time-based tier decay: a quarantined tenant steps back down the ladder
// after each DecayInterval — quarantine to delay to admit — with the banked
// fault count dropped to the new tier's floor so re-escalation needs fresh
// faults.
func TestDefenseTierDecay(t *testing.T) {
	const interval = 20 * time.Millisecond
	p := New(Config{
		MaxSessions: 1,
		HeapSize:    1 << 20,
		Defense: DefenseConfig{
			DelayThreshold:      2,
			QuarantineThreshold: 4,
			Delay:               100 * time.Microsecond,
			DecayInterval:       interval,
		},
	})
	defer p.Close()
	ctx := context.Background()

	// Walk the tenant into quarantine.
	for i := 0; i < 4; i++ {
		p.ObserveFault("evil")
	}
	if _, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("freshly quarantined tenant admission: %v, want ErrTenantQuarantined", err)
	}
	if st := p.Stats(); st.DecaysTotal != 0 {
		t.Fatalf("defense_decays_total = %d before any interval elapsed, want 0", st.DecaysTotal)
	}

	// One interval later the tenant is back in the delay tier: admitted, but
	// paying the penalty, with faults reset to the delay floor.
	time.Sleep(interval + interval/2)
	throttledBefore := p.Stats().ThrottledTotal
	s, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil")
	if err != nil {
		t.Fatalf("decayed tenant admission: %v, want delay-tier admit", err)
	}
	p.Release(s)
	st := p.Stats()
	if st.DecaysTotal != 1 {
		t.Fatalf("defense_decays_total = %d after one interval, want 1", st.DecaysTotal)
	}
	if st.ThrottledTotal != throttledBefore+1 {
		t.Fatalf("throttled_total = %d, want %d (delay-tier admission)", st.ThrottledTotal, throttledBefore+1)
	}
	if f := p.TenantFaults("evil"); f != 2 {
		t.Fatalf("tenant faults after decay = %d, want delay floor 2", f)
	}

	// Another interval: fully reformed — admitted without throttling, fault
	// count zero.
	time.Sleep(interval)
	s, err = p.AcquireFor(ctx, mte4jni.MTESync, "evil")
	if err != nil {
		t.Fatalf("reformed tenant admission: %v", err)
	}
	p.Release(s)
	st = p.Stats()
	if st.DecaysTotal != 2 {
		t.Fatalf("defense_decays_total = %d after two intervals, want 2", st.DecaysTotal)
	}
	if st.ThrottledTotal != throttledBefore+1 {
		t.Fatalf("throttled_total = %d, want unchanged %d (admit tier pays no delay)", st.ThrottledTotal, throttledBefore+1)
	}
	if f := p.TenantFaults("evil"); f != 0 {
		t.Fatalf("tenant faults after full decay = %d, want 0", f)
	}

	// Fresh faults re-escalate from the floor: two more trip quarantine
	// again only after crossing the full distance from zero.
	for i := 0; i < 4; i++ {
		p.ObserveFault("evil")
	}
	if _, err := p.AcquireFor(ctx, mte4jni.MTESync, "evil"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("re-escalated tenant admission: %v, want ErrTenantQuarantined", err)
	}
}
