// Package pool implements the serving layer's VM session pool: a bounded,
// leased collection of fully isolated runtimes — each session owns its own
// simulated address space, Java/native heaps, threads and tag state — with
// warm reuse between requests, admission control with backpressure, and
// per-session fault quarantine.
//
// Isolation is the point. One tenant's MTE tag-check fault is that session's
// crash: the session is quarantined (its VM closed and unmapped via
// vm.Close, never returned to the warm pool) while every other session's
// space, tags and TCO state are untouched. That is what lets one daemon
// serve many mutually untrusting workloads the way a fleet of Android
// processes would, with the fault localized exactly as the paper's Figure 4
// localizes it within one process.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mte4jni"
	"mte4jni/internal/exec"
	"mte4jni/internal/mem"
)

// Errors returned by Acquire.
var (
	// ErrOverloaded is the backpressure signal: the pool is at capacity and
	// the waiting queue is full. Servers map it to HTTP 503.
	ErrOverloaded = errors.New("pool: overloaded: all sessions leased and wait queue full")
	// ErrClosed reports an Acquire after Close.
	ErrClosed = errors.New("pool: closed")
)

// Config sizes a Pool.
type Config struct {
	// MaxSessions bounds concurrently live sessions across all schemes
	// (default 64).
	MaxSessions int
	// MaxWaiters bounds Acquire calls allowed to queue when every session
	// slot is leased; further calls fail fast with ErrOverloaded (default
	// 4×MaxSessions).
	MaxWaiters int
	// HeapSize is each session's Java heap capacity (default 32 MiB, enough
	// for every built-in workload at serving scale while keeping 64
	// sessions' worth of simulated memory modest).
	HeapSize uint64
	// Seed is the base tag-RNG seed; session n runs with Seed+n so sessions
	// are mutually decorrelated but a pool run is reproducible (default 1).
	Seed int64
	// DisableNeighborExclusion turns off the tag neighbour-exclusion
	// extension. The serving default keeps it on so that deliberately
	// out-of-bounds requests fault deterministically — the property the
	// static/dynamic differential and the load generator's fault-injection
	// accounting rely on.
	DisableNeighborExclusion bool
	// Defense is the escalating per-tenant defense policy (see defense.go).
	// Disabled by default.
	Defense DefenseConfig
}

func (c *Config) defaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 4 * c.MaxSessions
	}
	if c.HeapSize == 0 {
		c.HeapSize = 32 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Defense.defaults()
}

// Stats is a point-in-time view of pool accounting.
type Stats struct {
	// Capacity and Leased describe the slot semaphore; Idle counts warm
	// sessions parked per scheme (summed).
	Capacity int `json:"capacity"`
	Leased   int `json:"leased"`
	Idle     int `json:"idle"`
	Waiters  int `json:"waiters"`
	// Created counts VM constructions; Reused counts leases served warm.
	Created uint64 `json:"created"`
	Reused  uint64 `json:"reused"`
	// Quarantined counts sessions retired by an MTE fault; Retired counts
	// sessions retired for hygiene (leaked objects, unreleased handouts,
	// recycle failure); Rejected counts ErrOverloaded admissions.
	Quarantined uint64 `json:"quarantined"`
	Retired     uint64 `json:"retired"`
	Rejected    uint64 `json:"rejected"`
	// CanceledLeases counts leases released after a canceled or
	// deadline-exceeded run — each went through the dirty-lease path
	// (GC-verified recycle, or retirement when the interrupted native left
	// JNI acquisitions outstanding), never a blind re-lease.
	CanceledLeases uint64 `json:"canceled_leases"`
	// Escalating-defense counters (see defense.go): ReseedsTotal counts
	// reseed-epoch bumps (tier crossings), SessionsReseeded counts warm
	// sessions that actually re-seeded at lease time, ThrottledTotal counts
	// delay-tier admissions, TenantsQuarantined counts tenants escalated to
	// outright refusal, DecaysTotal counts time-based tier step-downs
	// (DecayInterval). All zero unless Config.Defense is enabled.
	ReseedsTotal       uint64 `json:"reseeds_total"`
	SessionsReseeded   uint64 `json:"sessions_reseeded_total"`
	ThrottledTotal     uint64 `json:"throttled_total"`
	TenantsQuarantined uint64 `json:"tenants_quarantined_total"`
	DecaysTotal        uint64 `json:"defense_decays_total"`
}

// QuarantineRecord remembers why a session left the pool.
type QuarantineRecord struct {
	Session  string `json:"session"`
	Scheme   string `json:"scheme"`
	Reason   string `json:"reason"`
	UnixNano int64  `json:"unix_nano"`
}

// Pool is the leased session pool. All methods are safe for concurrent use.
type Pool struct {
	cfg Config

	// slots is the capacity semaphore: one token per live-or-creatable
	// session. Acquire takes a token (possibly waiting), Release and
	// quarantine return it.
	slots chan struct{}

	mu       sync.Mutex
	idle     map[mte4jni.Scheme][]*Session
	live     map[uint64]*Session // every non-closed session, idle or leased
	waiters  int
	nextID   uint64
	closed   bool
	stats    Stats
	recent   []QuarantineRecord // bounded at quarantineLog entries
	leasedCt int
	// retiredTags carries forward the monotonic tag-storage counters of
	// sessions that have left the pool, so the pool-wide totals in
	// TagStats never go backwards when a session is retired. Gauge fields
	// (resident/dir/freelist bytes) die with the session's space and are
	// not accumulated.
	retiredTags mem.TagStats

	// tenants tracks each tenant's standing with the escalating defense
	// policy; reseedEpoch is bumped on every tier crossing, and warm
	// sessions re-seed lazily when their own epoch lags it. Both guarded
	// by mu.
	tenants     map[string]*tenantState
	reseedEpoch uint64
}

// quarantineLog bounds the retained quarantine history.
const quarantineLog = 32

// New creates a pool. Sessions are built lazily on first lease per slot, so
// an idle daemon costs nothing.
func New(cfg Config) *Pool {
	cfg.defaults()
	p := &Pool{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxSessions),
		idle:    make(map[mte4jni.Scheme][]*Session),
		live:    make(map[uint64]*Session),
		tenants: make(map[string]*tenantState),
	}
	for i := 0; i < cfg.MaxSessions; i++ {
		p.slots <- struct{}{}
	}
	p.stats.Capacity = cfg.MaxSessions
	return p
}

// Config returns the configuration in force (with defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// Acquire leases a session running the given scheme, waiting while the pool
// is at capacity. It fails fast with ErrOverloaded when the waiting queue is
// itself full, and with ctx.Err() when the context expires first.
func (p *Pool) Acquire(ctx context.Context, scheme mte4jni.Scheme) (*Session, error) {
	return p.AcquireFor(ctx, scheme, "")
}

// AcquireFor is Acquire with tenant attribution for the escalating defense
// policy: a quarantined tenant is refused with ErrTenantQuarantined before
// any capacity token is taken (so a locked-out attacker can neither hold a
// slot nor grow the quarantine ring), and a delay-tier tenant pays the
// admission penalty first. The empty tenant bypasses the policy entirely.
func (p *Pool) AcquireFor(ctx context.Context, scheme mte4jni.Scheme, tenant string) (*Session, error) {
	if err := p.admitTenant(ctx, tenant); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()

	select {
	case <-p.slots:
	default:
		// Full: join the bounded wait queue.
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if p.waiters >= p.cfg.MaxWaiters {
			p.stats.Rejected++
			p.mu.Unlock()
			return nil, ErrOverloaded
		}
		p.waiters++
		p.mu.Unlock()
		defer func() {
			p.mu.Lock()
			p.waiters--
			p.mu.Unlock()
		}()
		select {
		case <-p.slots:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Token in hand: serve warm if a session of this scheme is parked,
	// otherwise build a fresh one.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.slots <- struct{}{}
		return nil, ErrClosed
	}
	if list := p.idle[scheme]; len(list) > 0 {
		s := list[len(list)-1]
		p.idle[scheme] = list[:len(list)-1]
		s.leases++
		p.stats.Reused++
		p.leasedCt++
		epoch := p.reseedEpoch
		needReseed := s.seedEpoch != epoch
		if needReseed {
			p.stats.SessionsReseeded++
		}
		p.mu.Unlock()
		if needReseed {
			// Tag-reseed-on-suspicion: the session was parked before the
			// last tier crossing, so whatever tags an attacker learned from
			// it are about to go stale. The lease is exclusively ours here —
			// reseed outside the pool lock.
			s.reseed(p.cfg.Seed, epoch)
		}
		return s, nil
	}
	p.nextID++
	id := p.nextID
	seed := p.cfg.Seed + int64(id)
	p.mu.Unlock()

	s, err := p.newSession(id, scheme, seed)
	if err != nil {
		p.slots <- struct{}{}
		return nil, fmt.Errorf("pool: creating session: %w", err)
	}
	p.mu.Lock()
	p.live[id] = s
	p.stats.Created++
	p.leasedCt++
	s.leases++
	// A fresh session's tags are brand new: it is born at the current
	// reseed epoch.
	s.seedEpoch = p.reseedEpoch
	p.mu.Unlock()
	return s, nil
}

// Release returns a leased session. A session whose lease saw an MTE fault
// is quarantined — closed and replaced, never reused; a canceled or
// deadline-aborted lease is dirty: it still goes through the GC-verified
// recycle below, except that an interrupted native body that left JNI
// acquisitions outstanding retires the session outright (detaching a thread
// with live handouts would tear pinned objects out from under the ledger).
// A healthy session is recycled (thread detached, garbage collected,
// hygiene-checked) back into the warm pool. The capacity token is returned
// in every path.
func (p *Pool) Release(s *Session) {
	defer func() { p.slots <- struct{}{} }()

	if f := s.TaintFault(); f != nil {
		p.retire(s, true, fmt.Sprintf("MTE fault: %v", f))
		return
	}
	if a := s.Abort(); a == exec.AbortCanceled || a == exec.AbortDeadline {
		p.mu.Lock()
		p.stats.CanceledLeases++
		p.mu.Unlock()
		if n := s.env.OutstandingAcquisitions(); n != 0 {
			p.retire(s, false, fmt.Sprintf("lease aborted (%s) with %d outstanding JNI acquisitions", a, n))
			return
		}
	}
	if err := s.recycle(); err != nil {
		p.retire(s, false, err.Error())
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		s.close()
		p.mu.Lock()
		p.accumulateTagsLocked(s)
		delete(p.live, s.id)
		p.leasedCt--
		p.mu.Unlock()
		return
	}
	p.idle[s.scheme] = append(p.idle[s.scheme], s)
	p.leasedCt--
	p.mu.Unlock()
}

// retire closes a session and records why.
func (p *Pool) retire(s *Session, quarantine bool, reason string) {
	s.close()
	p.mu.Lock()
	p.accumulateTagsLocked(s)
	delete(p.live, s.id)
	p.leasedCt--
	if quarantine {
		p.stats.Quarantined++
	} else {
		p.stats.Retired++
	}
	p.recent = append(p.recent, QuarantineRecord{
		Session: s.Name(), Scheme: s.scheme.String(), Reason: reason,
		UnixNano: time.Now().UnixNano(),
	})
	if len(p.recent) > quarantineLog {
		p.recent = p.recent[len(p.recent)-quarantineLog:]
	}
	p.mu.Unlock()
}

// accumulateTagsLocked folds a departing session's monotonic tag-storage
// counters into the pool carry-over. Caller holds p.mu; the session is
// already closed, so its counters are final.
func (p *Pool) accumulateTagsLocked(s *Session) {
	st := s.rt.VM().Space.TagStats()
	p.retiredTags.PagesMaterialized += st.PagesMaterialized
	p.retiredTags.PagesUniform += st.PagesUniform
	p.retiredTags.ZeroDedupHits += st.ZeroDedupHits
	p.retiredTags.DirsMaterialized += st.DirsMaterialized
}

// TagStats aggregates hierarchical tag-storage accounting across the pool:
// monotonic counters (page and directory materializations, uniform swaps,
// zero-dedup hits) sum over live *and* departed sessions, while the residency
// gauges
// (BytesResident, BytesFlatEquiv, page counts) reflect only sessions
// currently live — that ratio is the pool's real tag-memory footprint
// versus what the flat tag array of PR 2 would pay for the same mappings.
func (p *Pool) TagStats() mem.TagStats {
	p.mu.Lock()
	agg := p.retiredTags
	sessions := make([]*Session, 0, len(p.live))
	for _, s := range p.live {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	// Per-session reads happen outside p.mu: Space.TagStats is atomics plus
	// the space's own freelist lock, safe against the session running.
	for _, s := range sessions {
		st := s.rt.VM().Space.TagStats()
		agg.PagesMaterialized += st.PagesMaterialized
		agg.PagesUniform += st.PagesUniform
		agg.ZeroDedupHits += st.ZeroDedupHits
		agg.DirsMaterialized += st.DirsMaterialized
		agg.PagesResident += st.PagesResident
		agg.FreePages += st.FreePages
		agg.DirBytes += st.DirBytes
		agg.BytesResident += st.BytesResident
		agg.BytesFlatEquiv += st.BytesFlatEquiv
	}
	return agg
}

// Stats returns a snapshot of the accounting counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Leased = p.leasedCt
	for _, list := range p.idle {
		st.Idle += len(list)
	}
	st.Waiters = p.waiters
	return st
}

// Quarantined returns the retained retirement history, oldest first.
func (p *Pool) Quarantined() []QuarantineRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]QuarantineRecord(nil), p.recent...)
}

// SessionInfo is one live session's introspection record, for /sessions.
type SessionInfo struct {
	Session    string `json:"session"`
	Scheme     string `json:"scheme"`
	State      string `json:"state"`
	Leases     uint64 `json:"leases"`
	Runs       uint64 `json:"runs"`
	Generation int    `json:"generation"`
	CreatedNS  int64  `json:"created_unix_nano"`
}

// Sessions lists every live session, leased and idle, ordered by id.
func (p *Pool) Sessions() []SessionInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]uint64, 0, len(p.live))
	for id := range p.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		s := p.live[id]
		state := "leased"
		for _, idleS := range p.idle[s.scheme] {
			if idleS == s {
				state = "idle"
				break
			}
		}
		out = append(out, SessionInfo{
			Session: s.Name(), Scheme: s.scheme.String(), State: state,
			Leases: s.leases, Runs: s.runs.Load(), Generation: int(s.gen.Load()),
			CreatedNS: s.created.UnixNano(),
		})
	}
	return out
}

// Close drains the pool: idle sessions are closed immediately, new Acquires
// fail with ErrClosed, and leased sessions are closed as they are released.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var toClose []*Session
	for scheme, list := range p.idle {
		toClose = append(toClose, list...)
		p.idle[scheme] = nil
	}
	for _, s := range toClose {
		delete(p.live, s.id)
	}
	p.mu.Unlock()
	for _, s := range toClose {
		s.close()
	}
	p.mu.Lock()
	for _, s := range toClose {
		p.accumulateTagsLocked(s)
	}
	p.mu.Unlock()
}
