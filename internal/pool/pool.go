// Package pool implements the serving layer's VM session pool: a bounded,
// leased collection of fully isolated runtimes — each session owns its own
// simulated address space, Java/native heaps, threads and tag state — with
// warm reuse between requests, admission control with backpressure, and
// per-session fault quarantine.
//
// Isolation is the point. One tenant's MTE tag-check fault is that session's
// crash: the session is quarantined (its VM closed and unmapped via
// vm.Close, never returned to the warm pool) while every other session's
// space, tags and TCO state are untouched. That is what lets one daemon
// serve many mutually untrusting workloads the way a fleet of Android
// processes would, with the fault localized exactly as the paper's Figure 4
// localizes it within one process.
//
// Admission is sharded (Config.Shards): capacity tokens, warm free lists
// and waiter queues are split into per-shard domains behind a {tenant,
// scheme} affinity hash, with cross-shard work stealing in both directions
// so the split stays work-conserving under skew — see shard.go. One shard
// (the default) reproduces the monolithic pool exactly.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mte4jni"
	"mte4jni/internal/exec"
	"mte4jni/internal/mem"
)

// Errors returned by Acquire.
var (
	// ErrOverloaded is the backpressure signal: the pool is at capacity and
	// the waiting queue is full. Servers map it to HTTP 503.
	ErrOverloaded = errors.New("pool: overloaded: all sessions leased and wait queue full")
	// ErrClosed reports an Acquire after Close.
	ErrClosed = errors.New("pool: closed")
)

// Config sizes a Pool.
type Config struct {
	// MaxSessions bounds concurrently live sessions across all schemes
	// (default 64).
	MaxSessions int
	// MaxWaiters bounds Acquire calls allowed to queue when every session
	// slot is leased; further calls fail fast with ErrOverloaded (default
	// 4×MaxSessions). The bound is applied per shard (MaxWaiters/Shards
	// each) with the pool-wide total as a backstop.
	MaxWaiters int
	// Shards is the admission shard count (default 1). Capacity tokens,
	// warm free lists and waiter queues split evenly across shards;
	// requests route by the {tenant, scheme} affinity hash and spill over
	// through work stealing.
	Shards int
	// HeapSize is each session's Java heap capacity (default 32 MiB, enough
	// for every built-in workload at serving scale while keeping 64
	// sessions' worth of simulated memory modest).
	HeapSize uint64
	// Seed is the base tag-RNG seed; session n runs with Seed+n so sessions
	// are mutually decorrelated but a pool run is reproducible (default 1).
	Seed int64
	// DisableNeighborExclusion turns off the tag neighbour-exclusion
	// extension. The serving default keeps it on so that deliberately
	// out-of-bounds requests fault deterministically — the property the
	// static/dynamic differential and the load generator's fault-injection
	// accounting rely on.
	DisableNeighborExclusion bool
	// Defense is the escalating per-tenant defense policy (see defense.go).
	// Disabled by default. Tenant standing is pool-global: escalation
	// follows a tenant across shards.
	Defense DefenseConfig
}

func (c *Config) defaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 4 * c.MaxSessions
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.HeapSize == 0 {
		c.HeapSize = 32 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Defense.defaults()
}

// Stats is a point-in-time view of pool accounting. The lease-path counters
// (Created, Reused, Rejected, Leased, Idle, Waiters) are sums over Shards.
type Stats struct {
	// Capacity and Leased describe the slot semaphore; Idle counts warm
	// sessions parked per scheme (summed).
	Capacity int `json:"capacity"`
	Leased   int `json:"leased"`
	Idle     int `json:"idle"`
	Waiters  int `json:"waiters"`
	// Created counts VM constructions; Reused counts leases served warm.
	Created uint64 `json:"created"`
	Reused  uint64 `json:"reused"`
	// Quarantined counts sessions retired by an MTE fault; Retired counts
	// sessions retired for hygiene (leaked objects, unreleased handouts,
	// recycle failure); Rejected counts ErrOverloaded admissions.
	Quarantined uint64 `json:"quarantined"`
	Retired     uint64 `json:"retired"`
	Rejected    uint64 `json:"rejected"`
	// CanceledLeases counts leases released after a canceled or
	// deadline-exceeded run — each went through the dirty-lease path
	// (GC-verified recycle, or retirement when the interrupted native left
	// JNI acquisitions outstanding), never a blind re-lease.
	CanceledLeases uint64 `json:"canceled_leases"`
	// Escalating-defense counters (see defense.go): ReseedsTotal counts
	// reseed-epoch bumps (tier crossings), SessionsReseeded counts warm
	// sessions that actually re-seeded at lease time, ThrottledTotal counts
	// delay-tier admissions, TenantsQuarantined counts tenants escalated to
	// outright refusal, DecaysTotal counts time-based tier step-downs
	// (DecayInterval). All zero unless Config.Defense is enabled.
	ReseedsTotal       uint64 `json:"reseeds_total"`
	SessionsReseeded   uint64 `json:"sessions_reseeded_total"`
	ThrottledTotal     uint64 `json:"throttled_total"`
	TenantsQuarantined uint64 `json:"tenants_quarantined_total"`
	DecaysTotal        uint64 `json:"defense_decays_total"`
	// Shards is the per-shard breakdown: admission, stealing and shedding
	// counters for each admission domain.
	Shards []ShardStats `json:"shards,omitempty"`
}

// QuarantineRecord remembers why a session left the pool.
type QuarantineRecord struct {
	Session  string `json:"session"`
	Scheme   string `json:"scheme"`
	Reason   string `json:"reason"`
	UnixNano int64  `json:"unix_nano"`
}

// Pool is the leased session pool. All methods are safe for concurrent use.
type Pool struct {
	cfg             Config
	shards          []*shard
	perShardWaiters int

	closed  atomic.Bool
	waiting atomic.Int64 // queued Acquires pool-wide (the shed backstop)
	nextID  atomic.Uint64
	// reseedEpoch is bumped on every defense tier crossing (under mu, in
	// ObserveFault) and read lock-free on the warm-lease path; warm
	// sessions re-seed lazily when their own epoch lags it.
	reseedEpoch      atomic.Uint64
	sessionsReseeded atomic.Uint64

	// mu guards the pool-global cold state: retirement accounting, the
	// quarantine ring, departed-session tag carry-over, and the per-tenant
	// defense ledger (tenant standing is deliberately not sharded — an
	// attacker's escalation follows it to every shard).
	mu     sync.Mutex
	stats  Stats              // only the pool-global counters
	recent []QuarantineRecord // bounded at quarantineLog entries
	// retiredTags carries forward the monotonic tag-storage counters of
	// sessions that have left the pool, so the pool-wide totals in
	// TagStats never go backwards when a session is retired. Gauge fields
	// (resident/dir/freelist bytes) die with the session's space and are
	// not accumulated.
	retiredTags mem.TagStats
	tenants     map[string]*tenantState
}

// quarantineLog bounds the retained quarantine history.
const quarantineLog = 32

// New creates a pool. Sessions are built lazily on first lease per slot, so
// an idle daemon costs nothing.
func New(cfg Config) *Pool {
	cfg.defaults()
	p := &Pool{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
	}
	p.perShardWaiters = cfg.MaxWaiters / cfg.Shards
	if p.perShardWaiters < 1 {
		p.perShardWaiters = 1
	}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		sh := &shard{
			p:        p,
			idx:      i,
			capacity: cfg.MaxSessions / cfg.Shards,
			warmIdle: make(map[mte4jni.Scheme][]*Session),
			liveHere: make(map[uint64]*Session),
		}
		if i < cfg.MaxSessions%cfg.Shards {
			sh.capacity++
		}
		sh.freeTokens = sh.capacity
		p.shards[i] = sh
	}
	return p
}

// Config returns the configuration in force (with defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// Acquire leases a session running the given scheme, waiting while the pool
// is at capacity. It fails fast with ErrOverloaded when the waiting queue is
// itself full, and with ctx.Err() when the context expires first.
func (p *Pool) Acquire(ctx context.Context, scheme mte4jni.Scheme) (*Session, error) {
	return p.AcquireFor(ctx, scheme, "")
}

// AcquireFor is Acquire with tenant attribution, which picks the home shard
// (affinity hash over {tenant, scheme}) and feeds the escalating defense
// policy: a quarantined tenant is refused with ErrTenantQuarantined before
// any capacity token is taken (so a locked-out attacker can neither hold a
// slot nor grow the quarantine ring), and a delay-tier tenant pays the
// admission penalty first. The empty tenant bypasses the policy entirely.
func (p *Pool) AcquireFor(ctx context.Context, scheme mte4jni.Scheme, tenant string) (*Session, error) {
	if err := p.admitTenant(ctx, tenant); err != nil {
		return nil, err
	}
	if p.closed.Load() {
		return nil, ErrClosed
	}
	home := p.shards[p.HomeShard(tenant, scheme)]
	if home.tryTakeToken() {
		return p.wrapLease(p.leaseOn(home, scheme, false))
	}
	// Home saturated: overflow onto any shard with a free token
	// (acquire-side work stealing).
	for i := 1; i < len(p.shards); i++ {
		sh := p.shards[(home.idx+i)%len(p.shards)]
		if sh.tryTakeToken() {
			return p.wrapLease(p.leaseOn(sh, scheme, true))
		}
	}
	// Every shard saturated: park on the home queue and wait for a token
	// grant from any shard.
	w, err := p.enqueueWaiter(home, scheme)
	if err != nil {
		return nil, err
	}
	// A token may have freed between the saturation scan and the enqueue,
	// with no queued waiter visible to dispatch it to. Re-scan now that we
	// are visible: either this scan finds that token, or the freer's
	// dispatch/steal path finds us (offerToken re-checks symmetrically).
	for i := 0; i < len(p.shards); i++ {
		sh := p.shards[(home.idx+i)%len(p.shards)]
		if !sh.tryTakeToken() {
			continue
		}
		if home.removeWaiter(w) {
			return p.wrapLease(p.leaseOn(sh, scheme, sh != home))
		}
		// Granted concurrently: keep the granted token, free the scanned one.
		p.returnToken(sh)
		g := <-w.ready
		if g.from == nil {
			return nil, ErrClosed
		}
		return p.wrapLease(p.leaseOn(g.from, scheme, g.from != home))
	}
	select {
	case g := <-w.ready:
		if g.from == nil {
			return nil, ErrClosed
		}
		return p.wrapLease(p.leaseOn(g.from, scheme, g.from != home))
	case <-ctx.Done():
		if home.removeWaiter(w) {
			return nil, ctx.Err()
		}
		// Granted concurrently with the cancellation: the grant is already
		// buffered (popWaiterLocked sends under the queue lock). Give the
		// token back so it cannot leak.
		g := <-w.ready
		if g.from != nil {
			p.returnToken(g.from)
		}
		return nil, ctx.Err()
	}
}

// wrapLease decorates session-creation failures from leaseOn.
func (p *Pool) wrapLease(s *Session, err error) (*Session, error) {
	if err != nil && !errors.Is(err, ErrClosed) {
		return nil, fmt.Errorf("pool: creating session: %w", err)
	}
	return s, err
}

// Release returns a leased session. A session whose lease saw an MTE fault
// is quarantined — closed and replaced, never reused; a canceled or
// deadline-aborted lease is dirty: it still goes through the GC-verified
// recycle below, except that an interrupted native body that left JNI
// acquisitions outstanding retires the session outright (detaching a thread
// with live handouts would tear pinned objects out from under the ledger).
// A healthy session is recycled (thread detached, garbage collected,
// hygiene-checked) back into the warm pool — unless the lease never ran and
// never touched the heap, in which case the recycle is skipped outright (the
// no-op-lease fast path: there is nothing to detach, collect or
// hygiene-check, so admission stays the only cost of an empty lease). The
// capacity token is returned to the session's shard in every path.
func (p *Pool) Release(s *Session) {
	sh := s.home
	if f := s.TaintFault(); f != nil {
		p.retire(s, true, fmt.Sprintf("MTE fault: %v", f))
		return
	}
	if a := s.Abort(); a == exec.AbortCanceled || a == exec.AbortDeadline {
		p.mu.Lock()
		p.stats.CanceledLeases++
		p.mu.Unlock()
		if n := s.env.OutstandingAcquisitions(); n != 0 {
			p.retire(s, false, fmt.Sprintf("lease aborted (%s) with %d outstanding JNI acquisitions", a, n))
			return
		}
	}
	if !s.noopLease() {
		if err := s.recycle(); err != nil {
			p.retire(s, false, err.Error())
			return
		}
	}
	sh.mu.Lock()
	if sh.closed {
		delete(sh.liveHere, s.id)
		sh.mu.Unlock()
		s.close()
		p.mu.Lock()
		p.accumulateTagsLocked(s)
		p.mu.Unlock()
		p.returnToken(sh)
		return
	}
	sh.warmIdle[s.scheme] = append(sh.warmIdle[s.scheme], s)
	sh.mu.Unlock()
	p.returnToken(sh)
}

// retire closes a session and records why.
func (p *Pool) retire(s *Session, quarantine bool, reason string) {
	s.close()
	sh := s.home
	sh.mu.Lock()
	delete(sh.liveHere, s.id)
	sh.mu.Unlock()
	p.mu.Lock()
	p.accumulateTagsLocked(s)
	if quarantine {
		p.stats.Quarantined++
	} else {
		p.stats.Retired++
	}
	p.recent = append(p.recent, QuarantineRecord{
		Session: s.Name(), Scheme: s.scheme.String(), Reason: reason,
		UnixNano: time.Now().UnixNano(),
	})
	if len(p.recent) > quarantineLog {
		p.recent = p.recent[len(p.recent)-quarantineLog:]
	}
	p.mu.Unlock()
	p.returnToken(sh)
}

// accumulateTagsLocked folds a departing session's monotonic tag-storage
// counters into the pool carry-over. Caller holds p.mu; the session is
// already closed, so its counters are final.
func (p *Pool) accumulateTagsLocked(s *Session) {
	st := s.rt.VM().Space.TagStats()
	p.retiredTags.PagesMaterialized += st.PagesMaterialized
	p.retiredTags.PagesUniform += st.PagesUniform
	p.retiredTags.ZeroDedupHits += st.ZeroDedupHits
	p.retiredTags.DirsMaterialized += st.DirsMaterialized
}

// TagStats aggregates hierarchical tag-storage accounting across the pool:
// monotonic counters (page and directory materializations, uniform swaps,
// zero-dedup hits) sum over live *and* departed sessions, while the residency
// gauges
// (BytesResident, BytesFlatEquiv, page counts) reflect only sessions
// currently live — that ratio is the pool's real tag-memory footprint
// versus what the flat tag array of PR 2 would pay for the same mappings.
func (p *Pool) TagStats() mem.TagStats {
	p.mu.Lock()
	agg := p.retiredTags
	p.mu.Unlock()
	var sessions []*Session
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, s := range sh.liveHere {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
	}
	// Per-session reads happen outside the shard locks: Space.TagStats is
	// atomics plus the space's own freelist lock, safe against the session
	// running.
	for _, s := range sessions {
		st := s.rt.VM().Space.TagStats()
		agg.PagesMaterialized += st.PagesMaterialized
		agg.PagesUniform += st.PagesUniform
		agg.ZeroDedupHits += st.ZeroDedupHits
		agg.DirsMaterialized += st.DirsMaterialized
		agg.PagesResident += st.PagesResident
		agg.FreePages += st.FreePages
		agg.DirBytes += st.DirBytes
		agg.BytesResident += st.BytesResident
		agg.BytesFlatEquiv += st.BytesFlatEquiv
	}
	return agg
}

// Stats returns a snapshot of the accounting counters, including the
// per-shard breakdown.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	st.Capacity = p.cfg.MaxSessions
	st.SessionsReseeded = p.sessionsReseeded.Load()
	st.Shards = make([]ShardStats, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		ss := sh.snapshotLocked()
		sh.mu.Unlock()
		st.Shards[i] = ss
		st.Leased += ss.Leased
		st.Idle += ss.Idle
		st.Waiters += ss.Waiters
		st.Created += ss.Created
		st.Reused += ss.Reused
		st.Rejected += ss.Shed
	}
	return st
}

// AssertDrained verifies the per-shard lease ledgers are balanced: no
// tokens held by leases or in-flight grants anywhere. The graceful-shutdown
// path calls it after the HTTP server has drained and the pool has closed —
// a nonzero ledger there means a lease escaped the drain.
func (p *Pool) AssertDrained() error {
	for i, sh := range p.shards {
		sh.mu.Lock()
		leased, free, cap := sh.leasedCt, sh.freeTokens, sh.capacity
		sh.mu.Unlock()
		if leased != 0 || free != cap {
			return fmt.Errorf("pool: shard %d drain imbalance: %d leases outstanding, %d/%d tokens free", i, leased, free, cap)
		}
	}
	return nil
}

// Quarantined returns the retained retirement history, oldest first.
func (p *Pool) Quarantined() []QuarantineRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]QuarantineRecord(nil), p.recent...)
}

// SessionInfo is one live session's introspection record, for /sessions.
type SessionInfo struct {
	Session    string `json:"session"`
	Scheme     string `json:"scheme"`
	Shard      int    `json:"shard"`
	State      string `json:"state"`
	Leases     uint64 `json:"leases"`
	Runs       uint64 `json:"runs"`
	Generation int    `json:"generation"`
	CreatedNS  int64  `json:"created_unix_nano"`
}

// Sessions lists every live session, leased and idle, ordered by id.
func (p *Pool) Sessions() []SessionInfo {
	var out []SessionInfo
	var ids []uint64
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, s := range sh.liveHere {
			state := "leased"
			for _, idleS := range sh.warmIdle[s.scheme] {
				if idleS == s {
					state = "idle"
					break
				}
			}
			out = append(out, SessionInfo{
				Session: s.Name(), Scheme: s.scheme.String(), Shard: sh.idx,
				State: state, Leases: s.leases, Runs: s.runs.Load(),
				Generation: int(s.gen.Load()), CreatedNS: s.created.UnixNano(),
			})
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Sort(&sessionsByID{ids: ids, infos: out})
	return out
}

// sessionsByID sorts SessionInfo records by their numeric session id.
type sessionsByID struct {
	ids   []uint64
	infos []SessionInfo
}

func (s *sessionsByID) Len() int           { return len(s.ids) }
func (s *sessionsByID) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *sessionsByID) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.infos[i], s.infos[j] = s.infos[j], s.infos[i]
}

// Close drains the pool: every shard is drained concurrently — idle
// sessions closed, queued waiters failed with ErrClosed — new Acquires fail
// with ErrClosed, and leased sessions are closed as they are released.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	var wg sync.WaitGroup
	for _, sh := range p.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.mu.Lock()
			sh.closed = true
			var toClose []*Session
			for scheme, list := range sh.warmIdle {
				toClose = append(toClose, list...)
				sh.warmIdle[scheme] = nil
			}
			for _, s := range toClose {
				delete(sh.liveHere, s.id)
			}
			parked := sh.waitq
			sh.waitq = nil
			p.waiting.Add(-int64(len(parked)))
			for _, w := range parked {
				w.ready <- grant{} // nil from: ErrClosed
			}
			sh.mu.Unlock()
			for _, s := range toClose {
				s.close()
			}
			p.mu.Lock()
			for _, s := range toClose {
				p.accumulateTagsLocked(s)
			}
			p.mu.Unlock()
		}(sh)
	}
	wg.Wait()
}
