package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mte4jni"
)

// hotTenantFor finds a tenant name whose {tenant, scheme} affinity hash
// lands on the given shard, so tests can aim load at one shard
// deterministically.
func hotTenantFor(t *testing.T, p *Pool, scheme mte4jni.Scheme, shard int) string {
	t.Helper()
	for _, name := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11"} {
		if p.HomeShard(name, scheme) == shard {
			return name
		}
	}
	t.Fatalf("no probe tenant routes to shard %d", shard)
	return ""
}

// TestWorkStealingStarvation is the starvation proof for cross-shard work
// stealing, meant to run under -race: every goroutine targets one hot shard
// (same tenant, same scheme — maximally skewed affinity) while the other
// shards sit idle. Without stealing, 3/4 of the pool's capacity would be
// unreachable and the hot shard's waiters would crawl through 2 tokens;
// with it, every queued waiter must complete (no ctx deadline here: a
// starved waiter hangs the test) and afterwards every token must be back on
// its shard.
func TestWorkStealingStarvation(t *testing.T) {
	const (
		goroutines = 32
		leases     = 4
	)
	p := testPool(t, Config{MaxSessions: 8, Shards: 4, MaxWaiters: 128})
	hot := hotTenantFor(t, p, mte4jni.NoProtection, 0)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*leases)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := 0; l < leases; l++ {
				s, err := p.AcquireFor(context.Background(), mte4jni.NoProtection, hot)
				if err != nil {
					errs <- err
					return
				}
				// Hold the lease long enough that the 32 goroutines
				// actually overlap: the pool must saturate (8 tokens, 32
				// contenders) for the waiter queue and both steal
				// directions to be exercised.
				time.Sleep(500 * time.Microsecond)
				p.Release(s)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("hot-shard acquire failed: %v", err)
	}

	st := p.Stats()
	if st.Leased != 0 || st.Waiters != 0 {
		t.Fatalf("stats after storm: %+v", st)
	}
	var leasesTotal, stealsTotal uint64
	foreign := 0
	home := p.HomeShard(hot, mte4jni.NoProtection)
	for _, ss := range st.Shards {
		leasesTotal += ss.Leases
		stealsTotal += ss.Steals
		if ss.Shard != home && ss.Leases > 0 {
			foreign++
		}
	}
	if leasesTotal != goroutines*leases {
		t.Fatalf("shard lease ledger sums to %d, want %d (every lease accounted to exactly one shard)", leasesTotal, goroutines*leases)
	}
	if stealsTotal == 0 {
		t.Fatal("no cross-shard steals under maximally skewed load")
	}
	if foreign == 0 {
		t.Fatal("no foreign shard served the hot tenant: stealing never spread the load")
	}

	// No token leaked across any steal: the full capacity is concurrently
	// acquirable, and the ledger drains to zero.
	var held []*Session
	for i := 0; i < p.Config().MaxSessions; i++ {
		s, err := p.AcquireFor(context.Background(), mte4jni.NoProtection, hot)
		if err != nil {
			t.Fatalf("capacity not restored after steals: slot %d: %v", i, err)
		}
		held = append(held, s)
	}
	for _, s := range held {
		p.Release(s)
	}
	if err := p.AssertDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestShardAffinityWarmReuse pins what the affinity hash is for: the same
// {tenant, scheme} lands on the same shard every time, so a recycled
// session is found warm again even with many shards.
func TestShardAffinityWarmReuse(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 8, Shards: 4})
	ctx := context.Background()

	s1, err := p.AcquireFor(ctx, mte4jni.MTESync, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	name := s1.Name()
	shard := p.HomeShard("tenant-a", mte4jni.MTESync)
	p.Release(s1)
	s2, err := p.AcquireFor(ctx, mte4jni.MTESync, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(s2)
	if s2.Name() != name {
		t.Fatalf("warm reuse broke across shards: got %s, want %s", s2.Name(), name)
	}
	st := p.Stats()
	if st.Created != 1 || st.Reused != 1 {
		t.Fatalf("stats = %+v, want created=1 reused=1", st)
	}
	if got := st.Shards[shard].Leases; got != 2 {
		t.Fatalf("home shard %d served %d leases, want 2", shard, got)
	}
}

// TestShardOverflowSteal pins acquire-side stealing: with one token per
// shard and all traffic on one tenant, leases 2..4 must overflow onto
// foreign shards' tokens instead of queueing behind the home shard.
func TestShardOverflowSteal(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 4, Shards: 4})
	ctx := context.Background()

	var held []*Session
	for i := 0; i < 4; i++ {
		s, err := p.AcquireFor(ctx, mte4jni.NoProtection, "one-tenant")
		if err != nil {
			t.Fatalf("lease %d should have overflowed, got %v", i, err)
		}
		held = append(held, s)
	}
	st := p.Stats()
	var steals uint64
	for _, ss := range st.Shards {
		if ss.Leases != 1 {
			t.Fatalf("shard %d served %d leases, want exactly 1 (its single token): %+v", ss.Shard, ss.Leases, st.Shards)
		}
		steals += ss.Steals
	}
	if steals != 3 {
		t.Fatalf("steals = %d, want 3 (every non-home token was borrowed)", steals)
	}
	for _, s := range held {
		p.Release(s)
	}
	if err := p.AssertDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestPerShardShedWithGlobalBackstop pins the new 503 geometry: shedding is
// decided at the home shard's queue slice (MaxWaiters/Shards each), with
// the pool-wide MaxWaiters as a backstop.
func TestPerShardShedWithGlobalBackstop(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 2, Shards: 2, MaxWaiters: 2})
	ctx := context.Background()
	hot := hotTenantFor(t, p, mte4jni.NoProtection, 0)

	// Saturate the whole pool.
	a, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot)
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits the home shard's slice (2/2 = 1 each).
	wctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiterErr := make(chan error, 1)
	go func() {
		s, err := p.AcquireFor(wctx, mte4jni.NoProtection, hot)
		if err == nil {
			p.Release(s)
		}
		waiterErr <- err
	}()
	waitForWaiters(t, p, 1)

	// The second waiter on the same home shard sheds even though the global
	// bound (2) has room: per-shard decision.
	if _, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second hot waiter: err = %v, want ErrOverloaded", err)
	}
	st := p.Stats()
	home := p.HomeShard(hot, mte4jni.NoProtection)
	if st.Shards[home].Shed != 1 || st.Rejected != 1 {
		t.Fatalf("shed accounting: home shed=%d rejected=%d, want 1/1", st.Shards[home].Shed, st.Rejected)
	}

	// Drain: the queued waiter must still be served.
	p.Release(a)
	select {
	case err := <-waiterErr:
		if err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter starved")
	}
	p.Release(b)
	if err := p.AssertDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseFailsQueuedWaitersPerShard pins the shard-aware drain: Close
// fails every parked waiter on every shard with ErrClosed, concurrently,
// and the ledger balances once leased sessions come back.
func TestCloseFailsQueuedWaitersPerShard(t *testing.T) {
	p := New(Config{MaxSessions: 2, Shards: 2, MaxWaiters: 8, HeapSize: 8 << 20})
	ctx := context.Background()
	hot := hotTenantFor(t, p, mte4jni.NoProtection, 0)

	a, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot)
	if err != nil {
		t.Fatal(err)
	}
	waiterErr := make(chan error, 1)
	go func() {
		_, err := p.AcquireFor(ctx, mte4jni.NoProtection, hot)
		waiterErr <- err
	}()
	waitForWaiters(t, p, 1)

	p.Close()
	if err := <-waiterErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("waiter after Close: err = %v, want ErrClosed", err)
	}
	p.Release(a)
	p.Release(b)
	if err := p.AssertDrained(); err != nil {
		t.Fatal(err)
	}
	if n := len(p.Sessions()); n != 0 {
		t.Fatalf("%d sessions survive Close, want 0", n)
	}
}
