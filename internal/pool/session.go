package pool

import (
	"fmt"
	"sync/atomic"
	"time"

	"mte4jni"
	"mte4jni/internal/analysis"
	"mte4jni/internal/exec"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/redteam"
	"mte4jni/internal/workloads"
)

// Session is one leased runtime. While leased it belongs exclusively to the
// leaseholder: RunProgram/RunWorkload are not themselves goroutine-safe
// (isolation between concurrent requests comes from each request holding a
// different session, not from locking inside one).
type Session struct {
	id      uint64
	scheme  mte4jni.Scheme
	rt      *mte4jni.Runtime
	env     *mte4jni.Env
	created time.Time

	// gen and runs are atomics because Pool.Sessions introspects them while
	// the leaseholder mutates them; leases is guarded by the pool mutex.
	gen    atomic.Int64
	runs   atomic.Uint64
	leases uint64

	// taint latches the first MTE fault of the current lease. Release
	// quarantines any tainted session.
	taint *mte.Fault

	// abort latches why a run in the current lease was cut short (canceled /
	// deadline / step budget). Release uses it to apply the dirty-lease rule:
	// a canceled lease is never blindly re-leased — it goes through
	// GC-verified recycling, or retirement if the interrupted native left
	// JNI acquisitions outstanding.
	abort exec.Abort

	// seedEpoch is the pool reseed epoch this session's tag state was drawn
	// at; when it lags the pool's, the warm-reuse path re-seeds before the
	// lease is handed out. Guarded by the owning shard's mutex (read/written
	// only at lease boundaries).
	seedEpoch uint64

	// home is the shard whose capacity token backs this session. Fixed at
	// creation: warm handoffs keep a session on its shard, so the per-shard
	// lease ledger always balances.
	home *shard

	// runsAtLease snapshots the run counter at lease handout. Written and
	// read only by the leaseholder (lease boundaries synchronize through the
	// shard mutex); Release uses it to detect a no-op lease.
	runsAtLease uint64
}

// beginLease marks the start of a lease, after the session has left the
// shard's warm list (or been created) and belongs exclusively to the caller.
func (s *Session) beginLease() {
	s.runsAtLease = s.runs.Load()
}

// noopLease reports that the current lease has nothing to recycle: it never
// ran a program or workload, left no objects on the heap, holds no JNI
// handouts, and was not aborted. Such a lease can skip the detach/GC/attach
// recycle entirely — admission bookkeeping stays the only cost of an empty
// lease, which is what the pool throughput bench measures.
func (s *Session) noopLease() bool {
	return s.taint == nil &&
		s.abort == exec.AbortNone &&
		s.runs.Load() == s.runsAtLease &&
		s.env.OutstandingAcquisitions() == 0 &&
		s.rt.VM().LiveObjects() == 0
}

// newSession builds a fresh runtime for one pool slot. Each session gets its
// own seed so tag streams are decorrelated across tenants.
func (p *Pool) newSession(id uint64, scheme mte4jni.Scheme, seed int64) (*Session, error) {
	rt, err := mte4jni.New(mte4jni.Config{
		Scheme:               scheme,
		HeapSize:             p.cfg.HeapSize,
		Seed:                 seed,
		TagNeighborExclusion: !p.cfg.DisableNeighborExclusion,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{id: id, scheme: scheme, rt: rt, created: time.Now()}
	env, err := rt.AttachEnv(s.threadName())
	if err != nil {
		return nil, err
	}
	s.env = env
	return s, nil
}

// Name is the session's stable serving identity.
func (s *Session) Name() string { return fmt.Sprintf("sess-%d", s.id) }

// threadName names the session's JNI thread per generation, so a recycled
// session's crash reports are attributable to the exact lease.
func (s *Session) threadName() string {
	return fmt.Sprintf("sess-%d-g%d", s.id, s.gen.Load())
}

// Scheme returns the session's protection scheme.
func (s *Session) Scheme() mte4jni.Scheme { return s.scheme }

// Env exposes the lease's JNI environment, for tests and advanced callers.
func (s *Session) Env() *mte4jni.Env { return s.env }

// Runtime exposes the underlying runtime, for tests and advanced callers.
func (s *Session) Runtime() *mte4jni.Runtime { return s.rt }

// Generation counts completed recycles.
func (s *Session) Generation() int { return int(s.gen.Load()) }

// TaintFault returns the MTE fault that poisoned the current lease, if any.
func (s *Session) TaintFault() *mte.Fault { return s.taint }

// Abort returns the latched abort kind of the current lease (AbortNone when
// every run completed).
func (s *Session) Abort() exec.Abort { return s.abort }

// RunResult is the outcome of one served run.
type RunResult struct {
	// Ret is the program's return value on a clean completion.
	Ret int64 `json:"ret"`
	// Fault is the MTE fault that ended the run, when one did.
	Fault *mte.Fault `json:"-"`
	// Err is the managed exception or harness error, when one ended the run.
	Err error `json:"-"`
	// Duration is the wall-clock execution time.
	Duration time.Duration `json:"duration_ns"`
	// ElidedSites is the number of statically proven guard-free sites the run
	// was bound with (0 when the run executed fully checked).
	ElidedSites int `json:"-"`
	// ElisionInvalidated reports that a proof-carrying run fell back to
	// checked access — the binding digest mismatched, the heap remapped
	// between prime and arm, or a release retired the facts mid-call.
	ElisionInvalidated bool `json:"-"`
}

// Faulted reports whether the run ended in an MTE fault.
func (r *RunResult) Faulted() bool { return r.Fault != nil }

// RunProgram executes an analysis.Program — the same JSON-loadable artifact
// the lint CLI and the differential oracle consume — inside this session
// under the execution context ec (nil = detached), materialising its native
// summaries into real native bodies. A fault taints the session for
// quarantine at release; a canceled/deadline/steps-exceeded run latches the
// abort kind for the dirty-lease rule.
func (s *Session) RunProgram(ec *exec.Context, p *analysis.Program) *RunResult {
	return s.runProgram(ec, p, nil)
}

// RunProgramElided executes a program with its screening verdict's compiled
// elision mask bound, so the interpreter skips tag checks at statically
// proven sites. The proofs are re-validated against the program at bind time
// (ValidateBinding); a digest mismatch — the native summary changed between
// screening and execution — counts as one invalidated run and falls back to
// the fully checked path. Runtime invalidations (remap between prime and
// arm, release retiring the handout mid-call) are detected by the env and
// surfaced the same way.
func (s *Session) RunProgramElided(ec *exec.Context, p *analysis.Program, el *analysis.Elision) *RunResult {
	if el == nil {
		return s.runProgram(ec, p, nil)
	}
	if err := el.ValidateBinding(p); err != nil {
		res := s.runProgram(ec, p, nil)
		res.ElisionInvalidated = true
		return res
	}
	return s.runProgram(ec, p, el)
}

func (s *Session) runProgram(ec *exec.Context, p *analysis.Program, el *analysis.Elision) *RunResult {
	s.runs.Add(1)
	ip := interp.New(s.env)
	for name, sum := range p.Natives {
		ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
	}
	res := &RunResult{}
	var invalBefore uint64
	if el != nil {
		ip.BindElision(el.Mask())
		res.ElidedSites = el.Sites()
		invalBefore = s.env.ElisionInvalidations()
	}
	s.env.BindExec(ec)
	defer s.env.BindExec(nil)
	start := time.Now()
	res.Ret, res.Fault, res.Err = ip.InvokeCtx(ec, p.Method)
	res.Duration = time.Since(start)
	if el != nil && s.env.ElisionInvalidations() > invalBefore {
		res.ElisionInvalidated = true
	}
	if res.Fault != nil {
		s.taint = res.Fault
	}
	s.latchAbort(res.Err)
	return res
}

// RunWorkload executes iters iterations of a named GeekBench-style workload
// under the execution context ec (nil = detached): setup outside the timed
// region, then one JNI trampoline call per iteration, then verification. A
// fault taints the session; an aborted run latches its kind. Cancellation is
// checked between iterations (at native entry by the trampoline) and at the
// kernels' own phase boundaries.
func (s *Session) RunWorkload(ec *exec.Context, name string, scale workloads.Scale, iters int) *RunResult {
	s.runs.Add(1)
	if iters <= 0 {
		iters = 1
	}
	res := &RunResult{}
	w, err := workloads.ByName(name, scale)
	if err != nil {
		res.Err = err
		return res
	}
	s.env.BindExec(ec)
	defer s.env.BindExec(nil)
	if err := w.Setup(s.env); err != nil {
		res.Err = fmt.Errorf("pool: %s setup: %w", name, err)
		s.latchAbort(err)
		return res
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fault, err := s.env.CallNative(name, jni.Regular, w.Run)
		if fault != nil {
			s.taint = fault
			res.Fault = fault
			break
		}
		if err != nil {
			res.Err = err
			break
		}
	}
	res.Duration = time.Since(start)
	if res.Fault == nil && res.Err == nil {
		if err := w.Verify(); err != nil {
			res.Err = fmt.Errorf("pool: %s verify: %w", name, err)
		} else {
			res.Ret = int64(iters)
		}
	}
	s.latchAbort(res.Err)
	return res
}

// latchAbort records the first abort of the current lease.
func (s *Session) latchAbort(err error) {
	if s.abort == exec.AbortNone {
		s.abort = exec.Classify(err)
	}
}

// reseed is the tag-reseed-on-suspicion hook: a fresh tag-RNG stream
// (derived from the pool seed, the session id, and the reseed epoch, so
// reseeds stay reproducible yet unpredictable to a tenant) plus a full
// heap tag reset. Any tag an attacker learned from this session in an
// earlier lease is stale afterwards, and the space-epoch bump inside
// ResetHeapTags invalidates every primed elision proof and TLB tag
// snapshot that assumed the old layout. Called with the lease held
// exclusively, on a freshly recycled (object-free) session.
func (s *Session) reseed(baseSeed int64, epoch uint64) {
	s.rt.VM().ReseedTagRNG(baseSeed + int64(s.id)*1_000_003 + int64(epoch)*7919)
	s.rt.VM().ResetHeapTags()
	s.seedEpoch = epoch
}

// RunAttackProbe serves the canned serving-tier attack probe
// (redteam.ServingProbe): one forged-tag store whose outcome is
// deterministic per scheme. A detected probe taints the session exactly
// like any other MTE fault — quarantine at release — which is what makes
// the probe observable to the escalating defense policy.
func (s *Session) RunAttackProbe(ec *exec.Context) *RunResult {
	s.runs.Add(1)
	s.env.BindExec(ec)
	defer s.env.BindExec(nil)
	res := &RunResult{}
	start := time.Now()
	pr, err := redteam.ServingProbe(s.env)
	res.Duration = time.Since(start)
	res.Err = err
	res.Fault = pr.Fault
	if pr.Fault != nil {
		s.taint = pr.Fault
	}
	if pr.Landed {
		res.Ret = 1
	}
	s.latchAbort(res.Err)
	return res
}

// recycle prepares a healthy session for its next lease: the lease's thread
// is detached (dropping its local-reference roots), the heap is collected,
// and the session is hygiene-checked — objects surviving collection mean the
// lease leaked state into the next tenant, so the session is retired instead
// of reused. On success a fresh generation's thread is attached.
func (s *Session) recycle() error {
	s.rt.DetachEnv(s.env)
	s.env = nil
	s.rt.GC()
	if n := s.rt.VM().LiveObjects(); n != 0 {
		return fmt.Errorf("pool: session %s leaked %d objects across lease", s.Name(), n)
	}
	s.gen.Add(1)
	env, err := s.rt.AttachEnv(s.threadName())
	if err != nil {
		return fmt.Errorf("pool: reattaching %s: %w", s.threadName(), err)
	}
	s.env = env
	s.abort = exec.AbortNone
	return nil
}

// close tears the session's runtime down, unmapping both heaps. Idempotent
// via vm.Close.
func (s *Session) close() {
	if s.env != nil {
		s.rt.DetachEnv(s.env)
		s.env = nil
	}
	_ = s.rt.VM().Close()
}
