package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mte4jni"
	"mte4jni/internal/exec"
	"mte4jni/internal/workloads"
)

// TestQueuedWaiterCancelReleasesSlot is the waiter-queue token-accounting
// test: cancel an Acquire while it is queued at full capacity and prove the
// next waiter still gets the slot — no semaphore token leaks, no phantom
// 503. Run under -race it also pins the waiter bookkeeping's
// synchronization.
func TestQueuedWaiterCancelReleasesSlot(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1, MaxWaiters: 4})

	holder, err := p.Acquire(context.Background(), mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}

	// Queue a waiter, then cancel it while it waits.
	canceledCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := p.Acquire(canceledCtx, mte4jni.NoProtection)
		waiterErr <- err
	}()
	waitForWaiters(t, p, 1)
	cancelWaiter()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	waitForWaiters(t, p, 0)

	// Queue a second waiter; releasing the holder must hand it the slot —
	// if the canceled waiter leaked a token (or consumed the released one),
	// this waiter would hang or be shed.
	secondDone := make(chan error, 1)
	var second *Session
	go func() {
		s, err := p.Acquire(context.Background(), mte4jni.NoProtection)
		second = s
		secondDone <- err
	}()
	waitForWaiters(t, p, 1)
	p.Release(holder)
	select {
	case err := <-secondDone:
		if err != nil {
			t.Fatalf("second waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second waiter never got the released slot: token leaked")
	}
	p.Release(second)

	st := p.Stats()
	if st.Leased != 0 || st.Waiters != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// Fresh Acquire must still succeed immediately: capacity intact.
	s, err := p.Acquire(context.Background(), mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(s)
	if got := p.Stats().Rejected; got != 0 {
		t.Fatalf("phantom 503s: Rejected = %d", got)
	}
}

// TestQueuedWaiterCancelStorm hammers the waiter path with concurrent
// cancels racing releases; afterwards capacity must be exactly restored.
func TestQueuedWaiterCancelStorm(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 2, MaxWaiters: 64})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%7)*time.Millisecond)
			defer cancel()
			s, err := p.Acquire(ctx, mte4jni.NoProtection)
			if err != nil {
				return // canceled in queue or shed: both fine here
			}
			p.Release(s)
		}(i)
	}
	wg.Wait()
	st := p.Stats()
	if st.Leased != 0 || st.Waiters != 0 {
		t.Fatalf("stats after storm: %+v", st)
	}
	// All tokens must be back: MaxSessions concurrent acquires succeed.
	a, err := p.Acquire(context.Background(), mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(context.Background(), mte4jni.NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(a)
	p.Release(b)
}

// TestCanceledLeaseRecycledNotReleased pins the dirty-lease rule: a lease
// whose run was canceled goes through GC-verified recycling (counted in
// CanceledLeases), and the session stays poolable.
func TestCanceledLeaseRecycledNotReleased(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	s, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(ctx, exec.Options{})
	res := s.RunProgram(ec, SpinProgram(1<<40))
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
	}
	if s.Abort() != exec.AbortCanceled {
		t.Fatalf("abort latch = %v", s.Abort())
	}
	gen := s.Generation()
	p.Release(s)
	st := p.Stats()
	if st.CanceledLeases != 1 {
		t.Fatalf("CanceledLeases = %d, want 1", st.CanceledLeases)
	}
	if st.Quarantined != 0 || st.Retired != 0 {
		t.Fatalf("canceled lease was retired/quarantined: %+v", st)
	}
	// The same session comes back warm, a generation later, abort cleared.
	s2, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s || s2.Generation() != gen+1 || s2.Abort() != exec.AbortNone {
		t.Fatalf("recycled session: same=%v gen=%d (was %d) abort=%v", s2 == s, s2.Generation(), gen, s2.Abort())
	}
	p.Release(s2)
}

// TestCanceledLeaseWithOutstandingAcquisitionRetires pins the other half of
// the dirty-lease rule: a canceled run that left a JNI acquisition
// outstanding retires the session instead of recycling it.
func TestCanceledLeaseWithOutstandingAcquisitionRetires(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	s, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a native interrupted between Get and Release: acquire a
	// handout, then latch a canceled run.
	env := s.Env()
	arr, err := env.NewIntArray(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.GetIntArrayElements(arr); err != nil {
		t.Fatal(err)
	}
	if env.OutstandingAcquisitions() != 1 {
		t.Fatalf("outstanding = %d", env.OutstandingAcquisitions())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.RunProgram(exec.New(ctx, exec.Options{}), SpinProgram(1))
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v", res.Err)
	}
	p.Release(s)
	st := p.Stats()
	if st.CanceledLeases != 1 || st.Retired != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want CanceledLeases=1 Retired=1", st)
	}
	if recs := p.Quarantined(); len(recs) != 1 || recs[0].Reason == "" {
		t.Fatalf("retirement record missing: %+v", recs)
	}
}

// TestStepsExceededLeaseRecycles pins that fuel exhaustion is not dirty:
// the session recycles normally and CanceledLeases stays 0.
func TestStepsExceededLeaseRecycles(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	s, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunProgram(exec.New(nil, exec.Options{StepBudget: 1000}), SpinProgram(1<<40))
	if !errors.Is(res.Err, exec.ErrStepsExceeded) {
		t.Fatalf("res.Err = %v, want ErrStepsExceeded", res.Err)
	}
	if s.Abort() != exec.AbortSteps {
		t.Fatalf("abort latch = %v", s.Abort())
	}
	p.Release(s)
	st := p.Stats()
	if st.CanceledLeases != 0 || st.Retired != 0 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want clean recycle", st)
	}
	if st.Idle != 1 {
		t.Fatalf("Idle = %d, want 1", st.Idle)
	}
}

// TestWorkloadCancelMidRun proves a canceled context cuts a workload off at
// a phase boundary and surfaces through RunWorkload.
func TestWorkloadCancelMidRun(t *testing.T) {
	p := testPool(t, Config{MaxSessions: 1})
	s, err := p.Acquire(context.Background(), mte4jni.MTESync)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first trampoline entry must refuse
	res := s.RunWorkload(exec.New(ctx, exec.Options{}), "File Compression", workloads.ScaleSmall, 4)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
	}
	if res.Faulted() {
		t.Fatal("cancellation reported as MTE fault")
	}
	p.Release(s)
	if st := p.Stats(); st.CanceledLeases != 1 {
		t.Fatalf("CanceledLeases = %d", st.CanceledLeases)
	}
}

// waitForWaiters polls the pool until the waiter count settles at want.
func waitForWaiters(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Waiters == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("waiters never reached %d (now %d)", want, p.Stats().Waiters)
}
