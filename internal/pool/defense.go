package pool

import (
	"context"
	"errors"
	"time"
)

// Escalating defense policy: the serving tier's response to the redteam
// corpus. A 4-bit tag catches a forged access with probability 15/16 per
// probe, so a brute-forcing tenant announces itself as a fault *rate* no
// honest workload produces. The pool tracks detected faults per tenant and
// escalates through three tiers:
//
//	admit      → faults below DelayThreshold: normal service.
//	delay      → faults ≥ DelayThreshold: every admission pays a fixed
//	             context-aware delay (throttled_total), collapsing the
//	             attacker's probe rate while honest retries stay correct.
//	quarantine → faults ≥ QuarantineThreshold: admissions are refused with
//	             ErrTenantQuarantined before a capacity token is taken —
//	             a quarantined tenant can neither occupy a session slot
//	             nor grow the quarantine ring.
//
// Each tier crossing also bumps the pool's reseed epoch: warm sessions are
// lazily re-seeded (fresh tag-RNG stream, heap tags reset) on their next
// lease, so whatever tag bits a learning attacker banked before tripping
// the threshold are stale by the time it is allowed back in. The policy is
// disabled by default (zero DefenseConfig): the serving counters the smoke
// tests pin down are unchanged unless a deployment opts in.

// ErrTenantQuarantined refuses admission to a tenant the escalation policy
// has quarantined. Servers map it to HTTP 429; no capacity token is
// consumed and nothing is recorded in the quarantine ring.
var ErrTenantQuarantined = errors.New("pool: tenant quarantined by escalating defense")

// DefenseConfig parameterizes the escalation policy. The zero value
// disables it entirely.
type DefenseConfig struct {
	// DelayThreshold is the per-tenant detected-fault count at which
	// admissions start paying Delay. Zero disables the delay tier.
	DelayThreshold int
	// QuarantineThreshold is the per-tenant detected-fault count at which
	// admissions are refused outright. Zero disables the quarantine tier.
	QuarantineThreshold int
	// Delay is the admission penalty in the delay tier (default 1ms when
	// the tier is enabled).
	Delay time.Duration
	// DecayInterval, when positive, lets an escalated tenant earn its way
	// back down the ladder: after each full interval with the policy
	// consulted, the tenant's tier steps down one level (quarantine → delay
	// → admit) and its banked fault count drops to the floor of the new
	// tier, so re-escalation requires fresh faults. Zero (the default)
	// keeps escalation permanent for the pool's lifetime.
	DecayInterval time.Duration
}

// Enabled reports whether any escalation tier is configured.
func (d DefenseConfig) Enabled() bool {
	return d.DelayThreshold > 0 || d.QuarantineThreshold > 0
}

func (d *DefenseConfig) defaults() {
	if d.Enabled() && d.Delay <= 0 {
		d.Delay = time.Millisecond
	}
}

// Tenant escalation tiers, in order.
const (
	tierAdmit = iota
	tierDelay
	tierQuarantine
)

// tenantState is one tenant's standing with the escalation policy. Guarded
// by the pool mutex.
type tenantState struct {
	faults int
	tier   int
	// tierSince anchors the decay clock: the instant the tenant last
	// changed tier (in either direction). Zero until first escalation.
	tierSince time.Time
}

// decayTenant applies time-based tier decay lazily, with the pool mutex
// held: the policy is consulted only at observation and admission time, so
// decay is computed then rather than by a background timer. Each elapsed
// DecayInterval steps the tier down one level and drops the fault count to
// the new tier's floor (delay keeps DelayThreshold banked faults, admit
// resets to zero) — a reformed tenant re-escalates only on fresh faults.
func (p *Pool) decayTenant(ts *tenantState, now time.Time) {
	d := p.cfg.Defense.DecayInterval
	if d <= 0 || ts == nil || ts.tier == tierAdmit || ts.tierSince.IsZero() {
		return
	}
	for ts.tier > tierAdmit && now.Sub(ts.tierSince) >= d {
		ts.tierSince = ts.tierSince.Add(d)
		ts.tier--
		switch ts.tier {
		case tierDelay:
			ts.faults = p.cfg.Defense.DelayThreshold
		case tierAdmit:
			ts.faults = 0
		}
		p.stats.DecaysTotal++
	}
}

// ObserveFault attributes one detected fault to tenant and applies the
// escalation policy, returning true when the observation crossed a tier
// boundary. Tier crossings bump the reseed epoch — every warm session is
// lazily re-seeded on its next lease — and a crossing into quarantine
// additionally books the tenant in tenants_quarantined_total. Tenancy is
// advisory: an empty tenant, or a pool with the policy disabled, is a
// no-op.
func (p *Pool) ObserveFault(tenant string) bool {
	if tenant == "" || !p.cfg.Defense.Enabled() {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ts := p.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		p.tenants[tenant] = ts
	}
	p.decayTenant(ts, time.Now())
	ts.faults++
	tier := ts.tier
	if t := p.cfg.Defense.QuarantineThreshold; t > 0 && ts.faults >= t {
		tier = tierQuarantine
	} else if t := p.cfg.Defense.DelayThreshold; t > 0 && ts.faults >= t {
		tier = tierDelay
	}
	if tier == ts.tier {
		return false
	}
	ts.tier = tier
	ts.tierSince = time.Now()
	// Suspicion invalidates learned tags: the next lease of every warm
	// session — on every shard, tenant standing being pool-global — re-seeds
	// its tag RNG and resets its heap tags.
	p.reseedEpoch.Add(1)
	p.stats.ReseedsTotal++
	if tier == tierQuarantine {
		p.stats.TenantsQuarantined++
	}
	return true
}

// TenantFaults returns the detected-fault count attributed to tenant.
func (p *Pool) TenantFaults(tenant string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ts := p.tenants[tenant]; ts != nil {
		return ts.faults
	}
	return 0
}

// admitTenant applies the pre-admission side of the policy: quarantined
// tenants are refused, delay-tier tenants pay the admission penalty
// (context-aware, so a canceled client never sleeps the full term). Called
// before any capacity token is taken.
func (p *Pool) admitTenant(ctx context.Context, tenant string) error {
	if tenant == "" || !p.cfg.Defense.Enabled() {
		return nil
	}
	p.mu.Lock()
	tier := tierAdmit
	if ts := p.tenants[tenant]; ts != nil {
		p.decayTenant(ts, time.Now())
		tier = ts.tier
	}
	if tier == tierQuarantine {
		p.mu.Unlock()
		return ErrTenantQuarantined
	}
	if tier != tierDelay {
		p.mu.Unlock()
		return nil
	}
	p.stats.ThrottledTotal++
	p.mu.Unlock()
	t := time.NewTimer(p.cfg.Defense.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
