package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// ThreadState mirrors the ART thread states that matter to the trampolines:
// a thread is either executing managed code (Runnable), executing native
// code (Native), or parked.
type ThreadState int32

const (
	// StateRunnable is a thread executing managed (Java) code.
	StateRunnable ThreadState = iota
	// StateNative is a thread executing native code behind a JNI call.
	StateNative
	// StateBlocked is a thread waiting (locks, GC suspension).
	StateBlocked
)

// String names the state like ART's debug dumps do.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "Runnable"
	case StateNative:
		return "Native"
	case StateBlocked:
		return "Blocked"
	default:
		return fmt.Sprintf("ThreadState(%d)", int32(s))
	}
}

// Thread is one simulated runtime thread. A Thread is driven by exactly one
// goroutine; its state and context are observable from other goroutines
// (the GC reads states, tests read contexts).
type Thread struct {
	vm    *VM
	name  string
	ctx   *cpu.Context
	state atomic.Int32

	// localMu guards the local reference table: objects this thread holds
	// references to, which are GC roots while the thread lives.
	localMu sync.Mutex
	locals  map[*Object]int
}

// AttachThread registers a new thread with the runtime, returning its
// handle. Names must be unique; an empty name gets a generated one.
//
// Under the paper's thread-level MTE design the new thread starts with tag
// checks suppressed (TCO=1) — checking turns on only inside native code.
// Under the naive process-level design (Options.ProcessLevelMTE) checking
// is live immediately for every thread, which is exactly what breaks GC
// (§3.3).
func (v *VM) AttachThread(name string) (*Thread, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, fmt.Errorf("vm: AttachThread %q on closed VM", name)
	}
	if name == "" {
		name = fmt.Sprintf("Thread-%d", v.nextTID)
	}
	v.nextTID++
	if _, dup := v.threads[name]; dup {
		return nil, fmt.Errorf("vm: thread %q already attached", name)
	}
	t := &Thread{
		vm:     v,
		name:   name,
		ctx:    cpu.New(name, v.opts.CheckMode),
		locals: make(map[*Object]int),
	}
	if v.opts.ProcessLevelMTE {
		t.ctx.SetTCO(false)
	}
	v.threads[name] = t
	return t, nil
}

// DetachThread unregisters a thread, dropping its local references.
func (v *VM) DetachThread(t *Thread) {
	v.mu.Lock()
	delete(v.threads, t.name)
	v.mu.Unlock()
	t.localMu.Lock()
	t.locals = make(map[*Object]int)
	t.localMu.Unlock()
}

// Threads returns a snapshot of attached threads.
func (v *VM) Threads() []*Thread {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Thread, 0, len(v.threads))
	for _, t := range v.threads {
		out = append(out, t)
	}
	return out
}

// VM returns the owning runtime.
func (t *Thread) VM() *VM { return t.vm }

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Ctx returns the thread's architectural context.
func (t *Thread) Ctx() *cpu.Context { return t.ctx }

// State returns the current thread state.
func (t *Thread) State() ThreadState { return ThreadState(t.state.Load()) }

// SetState transitions the thread state, returning the previous state. The
// JNI trampolines use this for the Runnable↔Native transitions the paper
// hooks to flip TCO (§3.3).
func (t *Thread) SetState(s ThreadState) ThreadState {
	return ThreadState(t.state.Swap(int32(s)))
}

// AddLocalRef records a local reference, making o a GC root for this
// thread's lifetime (or until deleted).
func (t *Thread) AddLocalRef(o *Object) {
	t.localMu.Lock()
	t.locals[o]++
	t.localMu.Unlock()
}

// DeleteLocalRef drops one local reference to o.
func (t *Thread) DeleteLocalRef(o *Object) {
	t.localMu.Lock()
	if t.locals[o] <= 1 {
		delete(t.locals, o)
	} else {
		t.locals[o]--
	}
	t.localMu.Unlock()
}

// LocalRefs returns a snapshot of the thread's local reference table.
func (t *Thread) LocalRefs() []*Object {
	t.localMu.Lock()
	defer t.localMu.Unlock()
	out := make([]*Object, 0, len(t.locals))
	for o := range t.locals {
		out = append(out, o)
	}
	return out
}

// Syscall simulates the thread entering the kernel; in asynchronous MTE
// mode any latched tag fault is delivered here (Figure 4c's getuid frame).
func (t *Thread) Syscall(name string) *mte.Fault {
	return t.ctx.Syscall(name)
}
