package vm

import (
	"testing"
	"testing/quick"

	"mte4jni/internal/mte"
)

func newVM(t *testing.T, opts Options) *VM {
	t.Helper()
	if opts.HeapSize == 0 {
		opts.HeapSize = 8 << 20
	}
	if opts.NativeHeapSize == 0 {
		opts.NativeHeapSize = 8 << 20
	}
	v, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDefaultsFollowPaper(t *testing.T) {
	plain := newVM(t, Options{})
	if plain.JavaHeap.Alignment() != 8 {
		t.Fatalf("stock ART alignment = %d, want 8", plain.JavaHeap.Alignment())
	}
	if plain.JavaHeap.Mapping().Tagged() {
		t.Fatal("non-MTE heap must not be tagged")
	}
	if plain.CheckMode() != mte.TCFNone {
		t.Fatal("non-MTE VM must have TCFNone")
	}

	mteVM := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync})
	if mteVM.JavaHeap.Alignment() != 16 {
		t.Fatalf("MTE alignment = %d, want 16 (§4.1)", mteVM.JavaHeap.Alignment())
	}
	if !mteVM.JavaHeap.Mapping().Tagged() {
		t.Fatal("MTE heap must be mapped PROT_MTE")
	}
	if mteVM.NativeHeap.Mapping().Tagged() {
		t.Fatal("native heap must stay untagged")
	}
}

func TestKindSizesAndNames(t *testing.T) {
	want := map[Kind]int{
		KindByte: 1, KindChar: 2, KindShort: 2, KindInt: 4,
		KindLong: 8, KindFloat: 4, KindDouble: 8,
	}
	for k, sz := range want {
		if k.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", k, k.Size(), sz)
		}
	}
	if KindInt.JNIName() != "Int" || KindDouble.JNIName() != "Double" {
		t.Fatal("JNIName wrong")
	}
	if len(Kinds) != 7 {
		t.Fatalf("Kinds has %d entries, want the 7 from Table 1", len(Kinds))
	}
}

func TestArrayAllocationAndAccess(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync})
	arr, err := v.NewIntArray(18)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 18 || arr.ElemSize() != 4 || arr.DataSize() != 72 {
		t.Fatalf("layout: len=%d elem=%d size=%d", arr.Len(), arr.ElemSize(), arr.DataSize())
	}
	if arr.DataBegin() != arr.Addr()+HeaderSize {
		t.Fatal("DataBegin must follow the header")
	}
	for i := 0; i < 18; i++ {
		if err := arr.SetInt(i, int32(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 18; i++ {
		got, err := arr.GetInt(i)
		if err != nil || got != int32(i*i) {
			t.Fatalf("GetInt(%d) = %d, %v", i, got, err)
		}
	}
	// Managed-code bounds checking (the safety JNI bypasses).
	if err := arr.SetInt(18, 1); err == nil {
		t.Fatal("managed store past end must raise ArrayIndexOutOfBoundsException")
	}
	if _, err := arr.GetInt(-1); err == nil {
		t.Fatal("managed load at -1 must fail")
	}
}

func TestNegativeArraySize(t *testing.T) {
	v := newVM(t, Options{})
	if _, err := v.NewIntArray(-1); err == nil {
		t.Fatal("negative array size must fail")
	}
}

func TestAllKindsAllocate(t *testing.T) {
	v := newVM(t, Options{MTE: true})
	for _, k := range Kinds {
		arr, err := v.NewArray(k, 10)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if arr.Class().Name != k.String()+"[]" {
			t.Fatalf("class name %q", arr.Class().Name)
		}
		if arr.DataSize() != 10*k.Size() {
			t.Fatalf("%v data size %d", k, arr.DataSize())
		}
		if err := arr.SetElem(9, 0xAB); err != nil {
			t.Fatal(err)
		}
		if bits, _ := arr.GetElem(9); bits != 0xAB {
			t.Fatalf("%v roundtrip got %x", k, bits)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	v := newVM(t, Options{MTE: true})
	for _, s := range []string{"", "hello", "héllo wörld", "日本語", "emoji \U0001F600 pair"} {
		obj, err := v.NewString(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := v.GoString(obj)
		if err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("string roundtrip %q -> %q", s, back)
		}
	}
	arr, _ := v.NewIntArray(1)
	if _, err := v.GoString(arr); err == nil {
		t.Fatal("GoString on array must fail")
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	v := newVM(t, Options{HeapSize: 32 << 20})
	f := func(s string) bool {
		obj, err := v.NewString(s)
		if err != nil {
			return true // heap exhaustion acceptable
		}
		back, err := v.GoString(obj)
		// utf16 round-trip replaces invalid sequences; compare via the same
		// normalization the encoder applies.
		return err == nil && back == normalizeUTF16(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalizeUTF16 mirrors the lossy round-trip Java strings apply to
// arbitrary Go strings (invalid runes become U+FFFD).
func normalizeUTF16(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		out = append(out, r)
	}
	return string(out)
}

func TestHeaderWritten(t *testing.T) {
	v := newVM(t, Options{MTE: true})
	arr, _ := v.NewIntArray(5)
	hdr := make([]byte, HeaderSize)
	if err := v.JavaHeap.Mapping().ReadRaw(arr.Addr(), hdr); err != nil {
		t.Fatal(err)
	}
	classID := uint32(hdr[0]) | uint32(hdr[1])<<8
	cls, ok := v.ClassByID(classID)
	if !ok || cls != arr.Class() {
		t.Fatalf("header class id %d does not resolve to int[]", classID)
	}
	length := uint32(hdr[8]) | uint32(hdr[9])<<8
	if length != 5 {
		t.Fatalf("header length = %d", length)
	}
}

func TestThreadAttachDetach(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync})
	t1, err := v.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AttachThread("main"); err == nil {
		t.Fatal("duplicate thread name accepted")
	}
	anon, err := v.AttachThread("")
	if err != nil {
		t.Fatal(err)
	}
	if anon.Name() == "" {
		t.Fatal("generated name empty")
	}
	if len(v.Threads()) != 2 {
		t.Fatalf("Threads = %d", len(v.Threads()))
	}
	if t1.State() != StateRunnable {
		t.Fatal("new thread must be Runnable")
	}
	if prev := t1.SetState(StateNative); prev != StateRunnable {
		t.Fatalf("SetState returned %v", prev)
	}
	if t1.State().String() != "Native" {
		t.Fatal("state string")
	}
	// Thread-level MTE: checks suppressed until a trampoline enables them.
	if t1.Ctx().Checking() {
		t.Fatal("fresh thread must not be checking (TCO=1)")
	}
	v.DetachThread(t1)
	if len(v.Threads()) != 1 {
		t.Fatal("detach failed")
	}
}

func TestProcessLevelMTEChecksEverywhere(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync, ProcessLevelMTE: true})
	th, _ := v.AttachThread("worker")
	if !th.Ctx().Checking() {
		t.Fatal("process-level MTE must enable checking on every thread")
	}
}

func TestGCSweepsUnreferenced(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync})
	th, _ := v.AttachThread("main")

	kept, _ := v.NewIntArray(64)
	th.AddLocalRef(kept)
	global, _ := v.NewIntArray(64)
	v.AddGlobalRef(global)
	pinned, _ := v.NewIntArray(64)
	pinned.Pin()
	garbage := make([]*Object, 10)
	for i := range garbage {
		garbage[i], _ = v.NewIntArray(64)
	}

	before := v.LiveObjects()
	stats := v.GC()
	if stats.Swept != len(garbage) {
		t.Fatalf("swept %d, want %d (before=%d)", stats.Swept, len(garbage), before)
	}
	if v.LiveObjects() != 3 {
		t.Fatalf("live after GC = %d, want 3", v.LiveObjects())
	}
	if _, ok := v.ObjectAt(kept.Addr()); !ok {
		t.Fatal("locally referenced object swept")
	}
	if _, ok := v.ObjectAt(global.Addr()); !ok {
		t.Fatal("global referenced object swept")
	}
	if _, ok := v.ObjectAt(pinned.Addr()); !ok {
		t.Fatal("pinned object swept")
	}

	// Unpin and drop refs: next GC reclaims everything.
	pinned.Unpin()
	th.DeleteLocalRef(kept)
	v.DeleteGlobalRef(global)
	v.GC()
	if v.LiveObjects() != 0 {
		t.Fatalf("live after final GC = %d", v.LiveObjects())
	}
	if v.GCStatsSnapshot().Collections != 2 {
		t.Fatalf("collections = %d", v.GCStatsSnapshot().Collections)
	}
}

func TestPinUnpinBalance(t *testing.T) {
	v := newVM(t, Options{})
	arr, _ := v.NewIntArray(4)
	arr.Pin()
	arr.Pin()
	arr.Unpin()
	if !arr.Pinned() {
		t.Fatal("object with one outstanding pin must stay pinned")
	}
	arr.Unpin()
	if arr.Pinned() {
		t.Fatal("fully unpinned object still pinned")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Unpin must panic")
		}
	}()
	arr.Unpin()
}

func TestConcurrentScanThreadLevelVsProcessLevel(t *testing.T) {
	// The §3.3 experiment in miniature. A native thread tags an object's
	// memory (as the MTE4JNI checker will); the GC then scans the heap with
	// untagged pointers.
	for _, processLevel := range []bool{false, true} {
		v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync, ProcessLevelMTE: processLevel})
		arr, _ := v.NewIntArray(256)
		if _, err := v.JavaHeap.Mapping().SetTagRange(arr.Addr(), arr.DataEnd(), 0xB); err != nil {
			t.Fatal(err)
		}
		gcThread, err := v.NewGCThread()
		if err != nil {
			t.Fatal(err)
		}
		fault, scanned := v.ConcurrentScan(gcThread.Ctx())
		if processLevel {
			if fault == nil {
				t.Fatal("process-level MTE: GC scan of tagged memory must fault")
			}
			if fault.Kind != mte.FaultTagMismatch || fault.PtrTag != 0 {
				t.Fatalf("unexpected fault %v", fault)
			}
		} else {
			if fault != nil {
				t.Fatalf("thread-level MTE: GC scan faulted: %v (scanned %d)", fault, scanned)
			}
			if scanned != v.LiveObjects() {
				t.Fatalf("scanned %d of %d objects", scanned, v.LiveObjects())
			}
		}
	}
}

func TestRandomTagHonorsMask(t *testing.T) {
	v := newVM(t, Options{MTE: true, Seed: 7})
	mask := mte.ExcludeMask(0).Exclude(0)
	for i := 0; i < 200; i++ {
		if tag := v.RandomTag(mask); tag == 0 {
			t.Fatal("RandomTag produced excluded tag 0")
		}
	}
}
