package vm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"mte4jni/internal/mte"
)

// HeaderSize is the size of the object header placed at the start of every
// heap object: class id, flags, element count and an identity-hash slot —
// a simplified ART object layout.
const HeaderSize = 16

// Class identifies an object's type. The simulated runtime only needs the
// classes JNI raw-pointer interfaces touch: the seven primitive array
// classes, java.lang.String, and a plain object for completeness.
type Class struct {
	// ID is the value stored in object headers.
	ID uint32
	// Name is the Java descriptor-ish name, e.g. "int[]" or
	// "java.lang.String".
	Name string
	// Elem is the element kind for arrays and for String (KindChar).
	Elem Kind
	// Array is true for the seven primitive array classes.
	Array bool
	// String is true for java.lang.String.
	String bool
}

// Object is the runtime's handle to one Java heap object. The authoritative
// data lives in simulated memory; Object caches the immutable layout facts
// (address, class, length) and carries the pin count that keeps the GC away
// while native code holds a raw pointer.
type Object struct {
	vm     *VM
	class  *Class
	addr   mte.Addr
	length int
	// pins counts outstanding critical acquisitions; a pinned object is a
	// GC root and cannot be swept (ART pins arrays handed out via
	// GetPrimitiveArrayCritical the same way).
	pins atomic.Int32
}

// Class returns the object's class.
func (o *Object) Class() *Class { return o.class }

// Addr returns the base address of the object header.
func (o *Object) Addr() mte.Addr { return o.addr }

// Len returns the element count for arrays and strings, 0 otherwise.
func (o *Object) Len() int { return o.length }

// ElemSize returns the element size in bytes for arrays and strings.
func (o *Object) ElemSize() int { return o.class.Elem.Size() }

// DataBegin returns the address of the first element, just past the header.
func (o *Object) DataBegin() mte.Addr { return o.addr + HeaderSize }

// DataEnd returns one past the last element.
func (o *Object) DataEnd() mte.Addr {
	return o.DataBegin() + mte.Addr(o.length*o.ElemSize())
}

// DataSize returns the payload size in bytes.
func (o *Object) DataSize() int { return o.length * o.ElemSize() }

// Pin marks the object as held by native code; the GC will not sweep it.
func (o *Object) Pin() { o.pins.Add(1) }

// Unpin releases one Pin. Unpinning below zero is a runtime bug and panics.
func (o *Object) Unpin() {
	if o.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("vm: unbalanced Unpin on %s@%v", o.class.Name, o.addr))
	}
}

// Pinned reports whether any native holder pins the object.
func (o *Object) Pinned() bool { return o.pins.Load() > 0 }

// String implements fmt.Stringer for debug output.
func (o *Object) String() string {
	return fmt.Sprintf("%s@%v(len=%d)", o.class.Name, o.addr, o.length)
}

// writeHeader stamps the object header into simulated memory.
func (o *Object) writeHeader() error {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], o.class.ID)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(o.length))
	return o.vm.JavaHeap.Mapping().WriteRaw(o.addr, hdr[:])
}

// elemAddr returns the address of element i, bounds-checked: this is the
// managed-code path, where Java's own bounds checking applies.
func (o *Object) elemAddr(i int) (mte.Addr, error) {
	if i < 0 || i >= o.length {
		return 0, fmt.Errorf("vm: ArrayIndexOutOfBoundsException: index %d, length %d", i, o.length)
	}
	return o.DataBegin() + mte.Addr(i*o.ElemSize()), nil
}

// SetElem stores a primitive value (widened to uint64 bits) at index i via
// the managed-code path (bounds-checked, untagged raw access — the JVM's
// own view of its heap).
func (o *Object) SetElem(i int, bits uint64) error {
	a, err := o.elemAddr(i)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], bits)
	return o.vm.JavaHeap.Mapping().WriteRaw(a, buf[:o.ElemSize()])
}

// GetElem loads the primitive value at index i as raw bits.
func (o *Object) GetElem(i int) (uint64, error) {
	a, err := o.elemAddr(i)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	if err := o.vm.JavaHeap.Mapping().ReadRaw(a, buf[:o.ElemSize()]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// GetIntUnchecked loads element i of an int array with no bounds check —
// the landing site for the interpreter's elided array accesses, reachable
// only when the screening proof discharged the guard (i proven within
// [0, Len) by the interval analysis). ReadRaw errors cannot occur for an
// in-payload element and are swallowed to keep the guard-free path lean; an
// out-of-proof index here is a proof-compiler bug that the elision audit
// and the fuzz witness exist to catch.
func (o *Object) GetIntUnchecked(i int) int32 {
	var buf [4]byte
	a := o.DataBegin() + mte.Addr(i*4)
	_ = o.vm.JavaHeap.Mapping().ReadRaw(a, buf[:])
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

// SetIntUnchecked stores element i of an int array with no bounds check;
// see GetIntUnchecked for the reachability contract.
func (o *Object) SetIntUnchecked(i int, v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	a := o.DataBegin() + mte.Addr(i*4)
	_ = o.vm.JavaHeap.Mapping().WriteRaw(a, buf[:])
}

// SetInt and GetInt are convenience accessors for the most common test
// arrays.
func (o *Object) SetInt(i int, v int32) error { return o.SetElem(i, uint64(uint32(v))) }

// GetInt loads element i of an int array.
func (o *Object) GetInt(i int) (int32, error) {
	bits, err := o.GetElem(i)
	return int32(uint32(bits)), err
}

// Bytes returns the raw payload bytes of the object (runtime-internal view).
func (o *Object) Bytes() ([]byte, error) {
	return o.vm.JavaHeap.Mapping().Bytes(o.DataBegin(), o.DataSize())
}
