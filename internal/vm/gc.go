package vm

import (
	"sync"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// gcState serializes collections and accumulates statistics.
type gcState struct {
	mu    sync.Mutex
	stats GCStats
}

// GCStats reports collector activity.
type GCStats struct {
	// Collections counts completed stop-the-world collections.
	Collections int
	// Swept counts objects reclaimed across all collections.
	Swept int
	// LastLive is the number of objects surviving the most recent
	// collection.
	LastLive int
}

// GC runs a stop-the-world mark-sweep collection.
//
// The root set is: global references, every attached thread's local
// references, and every pinned object (arrays currently exposed to native
// code via critical JNI interfaces — real ART pins these too, which is why
// tag release, not GC, is what recycles their tags in the paper's design).
// The object graph is flat because the runtime only models primitive arrays
// and strings, so marking is exactly the root set.
func (v *VM) GC() GCStats {
	v.gc.mu.Lock()
	defer v.gc.mu.Unlock()

	marked := make(map[*Object]bool)
	v.mu.Lock()
	for o := range v.globals {
		marked[o] = true
	}
	threads := make([]*Thread, 0, len(v.threads))
	for _, t := range v.threads {
		threads = append(threads, t)
	}
	v.mu.Unlock()

	for _, t := range threads {
		for _, o := range t.LocalRefs() {
			marked[o] = true
		}
	}

	// Sweep: collect unmarked, unpinned objects.
	v.mu.Lock()
	var dead []*Object
	for _, o := range v.objects {
		if !marked[o] && !o.Pinned() {
			dead = append(dead, o)
		}
	}
	for _, o := range dead {
		delete(v.objects, o.addr)
	}
	live := len(v.objects)
	v.mu.Unlock()

	for _, o := range dead {
		// Reclaim the heap block. Errors here indicate runtime corruption;
		// the simulated runtime treats that as fatal, like ART would.
		if err := v.JavaHeap.Free(o.addr); err != nil {
			panic("vm: GC sweep: " + err.Error())
		}
	}

	v.gc.stats.Collections++
	v.gc.stats.Swept += len(dead)
	v.gc.stats.LastLive = live
	return v.gc.stats
}

// GCStatsSnapshot returns the accumulated collector statistics.
func (v *VM) GCStatsSnapshot() GCStats {
	v.gc.mu.Lock()
	defer v.gc.mu.Unlock()
	return v.gc.stats
}

// ConcurrentScan walks every live object reading its header through
// *checked* loads with untagged pointers on behalf of a GC or profiler
// thread — the access pattern from the paper's §2.4 second challenge: "the
// pointer in the GC thread never walks through the JNI interface to be
// tagged".
//
// Under the paper's thread-level MTE control the scanning thread has TCO
// set (checks suppressed) and the scan always succeeds. Under the naive
// process-level design it faults on the first object whose memory a native
// thread has tagged. The first fault (sync or deferred async) is returned
// together with the number of objects scanned before it.
func (v *VM) ConcurrentScan(ctx *cpu.Context) (*mte.Fault, int) {
	v.mu.Lock()
	objs := make([]*Object, 0, len(v.objects))
	for _, o := range v.objects {
		objs = append(objs, o)
	}
	v.mu.Unlock()

	// Each object's reads run inside the Java mapping's scan-lock bracket so
	// they cannot race, at the Go level, with checked stores from native
	// threads mutating the same payloads (the simulator's equivalent of the
	// hardware's tolerance for GC/mutator word tearing).
	jm := v.JavaHeap.Mapping()
	scanned := 0
	for _, o := range objs {
		// Read the class id and length words of the header, then the first
		// payload word — what a mark-and-inspect phase dereferences. The
		// pointer is untagged (tag 0).
		p := mte.MakePtr(o.addr, 0)
		jm.LockScan()
		_, f := v.Space.Load32(ctx, p)
		if f == nil {
			_, f = v.Space.Load32(ctx, p.Add(8))
		}
		if f == nil && o.length > 0 {
			_, f = v.Space.Load32(ctx, mte.MakePtr(o.DataBegin(), 0))
		}
		jm.UnlockScan()
		if f != nil {
			return f, scanned
		}
		scanned++
	}
	// Async-mode faults latch instead of returning; surface them the way
	// the kernel would, at the next synchronization point.
	if f := ctx.Syscall("madvise"); f != nil {
		return f, scanned
	}
	return nil, scanned
}

// NewGCThread attaches the GC daemon thread. Its context follows the same
// policy as any other thread: checks suppressed under thread-level control,
// live under process-level control. Attaching the daemon also (stickily)
// switches the Java mapping into concurrent-scan mode, so mutator stores
// from here on synchronize with ConcurrentScan's read brackets.
func (v *VM) NewGCThread() (*Thread, error) {
	t, err := v.AttachThread("HeapTaskDaemon")
	if err != nil {
		return nil, err
	}
	v.JavaHeap.Mapping().EnableScanSync()
	return t, nil
}
