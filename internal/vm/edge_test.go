package vm

import (
	"testing"

	"mte4jni/internal/mte"
)

func TestClassRegistry(t *testing.T) {
	v := newVM(t, Options{})
	if _, ok := v.ClassByID(0); ok {
		t.Fatal("class id 0 must not resolve")
	}
	if _, ok := v.ClassByID(999); ok {
		t.Fatal("unknown class id resolved")
	}
	if v.ArrayClass(KindInt).Name != "int[]" {
		t.Fatal("ArrayClass wrong")
	}
	if !v.StringClass().String {
		t.Fatal("StringClass wrong")
	}
	// All registered classes resolve by their own id.
	for _, k := range Kinds {
		c := v.ArrayClass(k)
		got, ok := v.ClassByID(c.ID)
		if !ok || got != c {
			t.Fatalf("%v class does not round-trip", k)
		}
	}
}

func TestDetachThreadDropsRoots(t *testing.T) {
	v := newVM(t, Options{})
	th, _ := v.AttachThread("worker")
	arr, _ := v.NewIntArray(8)
	th.AddLocalRef(arr)
	v.GC()
	if v.LiveObjects() != 1 {
		t.Fatal("rooted object swept")
	}
	v.DetachThread(th)
	v.GC()
	if v.LiveObjects() != 0 {
		t.Fatal("detached thread's locals still rooting")
	}
}

func TestLocalRefCounting(t *testing.T) {
	v := newVM(t, Options{})
	th, _ := v.AttachThread("t")
	arr, _ := v.NewIntArray(4)
	th.AddLocalRef(arr)
	th.AddLocalRef(arr)
	th.DeleteLocalRef(arr)
	v.GC()
	if v.LiveObjects() != 1 {
		t.Fatal("object swept while one local ref remains")
	}
	th.DeleteLocalRef(arr)
	th.DeleteLocalRef(arr) // over-delete is harmless
	v.GC()
	if v.LiveObjects() != 0 {
		t.Fatal("object survived with no refs")
	}
}

func TestGlobalRefCounting(t *testing.T) {
	v := newVM(t, Options{})
	arr, _ := v.NewIntArray(4)
	v.AddGlobalRef(arr)
	v.AddGlobalRef(arr)
	v.DeleteGlobalRef(arr)
	v.GC()
	if v.LiveObjects() != 1 {
		t.Fatal("object swept while one global ref remains")
	}
	v.DeleteGlobalRef(arr)
	v.GC()
	if v.LiveObjects() != 0 {
		t.Fatal("object survived deletion of all global refs")
	}
}

func TestFreeObjectRejectsPinned(t *testing.T) {
	v := newVM(t, Options{})
	arr, _ := v.NewIntArray(4)
	arr.Pin()
	if err := v.FreeObject(arr); err == nil {
		t.Fatal("pinned object freed")
	}
	arr.Unpin()
	if err := v.FreeObject(arr); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ObjectAt(arr.Addr()); ok {
		t.Fatal("freed object still registered")
	}
}

func TestThreadSyscallOnlyAsync(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFSync})
	th, _ := v.AttachThread("t")
	if f := th.Syscall("write"); f != nil {
		t.Fatal("sync-mode thread delivered an async fault")
	}
}

func TestObjectStringer(t *testing.T) {
	v := newVM(t, Options{})
	arr, _ := v.NewIntArray(3)
	s := arr.String()
	if s == "" || s[0:5] != "int[]" {
		t.Fatalf("Object string %q", s)
	}
}

func TestOptionsEcho(t *testing.T) {
	v := newVM(t, Options{MTE: true, CheckMode: mte.TCFAsync, Seed: 11})
	o := v.Options()
	if !o.MTE || o.CheckMode != mte.TCFAsync || o.Seed != 11 {
		t.Fatalf("Options echo %+v", o)
	}
	if !v.MTEEnabled() {
		t.Fatal("MTEEnabled")
	}
}
