package vm

import (
	"testing"

	"mte4jni/internal/mte"
)

// Close unmaps both heaps, clears every registry, and fails further use —
// the contract pooled session retirement depends on.
func TestVMClose(t *testing.T) {
	v, err := New(Options{MTE: true, CheckMode: mte.TCFSync, HeapSize: 1 << 20, NativeHeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("worker")
	if err != nil {
		t.Fatal(err)
	}
	arr, err := v.NewIntArray(16)
	if err != nil {
		t.Fatal(err)
	}
	th.AddLocalRef(arr)
	v.AddGlobalRef(arr)

	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if !v.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if v.LiveObjects() != 0 {
		t.Fatalf("object registry survived Close: %d live", v.LiveObjects())
	}
	if got := len(v.Threads()); got != 0 {
		t.Fatalf("%d threads survived Close", got)
	}
	if len(th.LocalRefs()) != 0 {
		t.Fatal("thread local refs survived Close")
	}
	if !v.JavaHeap.Closed() || !v.NativeHeap.Closed() {
		t.Fatal("a heap survived Close")
	}
	if _, ok := v.Space.Resolve(arr.Addr()); ok {
		t.Fatal("Java heap mapping still resolvable after Close")
	}
	if _, err := v.NewIntArray(4); err == nil {
		t.Fatal("allocation succeeded on closed VM")
	}
	if _, err := v.AttachThread("late"); err == nil {
		t.Fatal("AttachThread succeeded on closed VM")
	}
	// Idempotent.
	if err := v.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
