// Package vm implements the miniature ART-like managed runtime the
// reproduction runs on: a Java heap of objects/arrays/strings in simulated
// memory, threads with Runnable/Native state transitions, and a garbage
// collector — including the concurrent scan that makes the paper's
// GC-vs-tagged-memory challenge (§2.4, §3.3) real rather than hypothetical.
package vm

import (
	"fmt"
	"math/rand"
	"sync"
	"unicode/utf16"

	"mte4jni/internal/heap"
	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// Options configures a VM instance.
type Options struct {
	// HeapSize is the Java heap capacity (default heap.DefaultSize).
	HeapSize uint64
	// NativeHeapSize is the capacity of the native allocation space used by
	// guarded copy buffers and UTF copies (default heap.DefaultSize).
	NativeHeapSize uint64
	// Alignment overrides the Java heap allocation alignment. Zero selects
	// the paper's values: 16 when MTE is on (§4.1), 8 otherwise (stock ART).
	Alignment uint64
	// MTE maps the Java heap with PROT_MTE and gives threads the chosen
	// CheckMode. When false the runtime behaves like stock ART.
	MTE bool
	// CheckMode is the tag-check-fault mode for threads (sync or async).
	// Ignored unless MTE is set.
	CheckMode mte.CheckMode
	// ProcessLevelMTE, when true, models the naive prctl-only design the
	// paper rejects in §3.3: every thread — including GC threads — runs
	// with checking enabled all the time. The default (false) is the
	// paper's thread-level control, where checking is enabled only inside
	// native code by the trampolines.
	ProcessLevelMTE bool
	// Seed seeds the tag RNG; reproductions default to a fixed seed so runs
	// are repeatable. Use distinct seeds to model IRG entropy.
	Seed int64
}

// VM is one simulated Android Runtime instance.
type VM struct {
	opts Options

	// Space is the simulated process address space.
	Space *mem.Space
	// JavaHeap is the managed heap (PROT_MTE when Options.MTE).
	JavaHeap *heap.Heap
	// NativeHeap is the untagged allocation space used for guarded-copy
	// buffers and JNI UTF/chars copies, standing in for native malloc.
	NativeHeap *heap.Heap

	classes map[uint32]*Class
	byName  map[string]*Class

	mu      sync.Mutex
	objects map[mte.Addr]*Object
	threads map[string]*Thread
	globals map[*Object]int // global reference counts (GC roots)
	nextTID int
	closed  bool

	rngMu sync.Mutex
	rng   *rand.Rand

	gc gcState
}

// New creates and initializes a VM.
func New(opts Options) (*VM, error) {
	if opts.HeapSize == 0 {
		opts.HeapSize = heap.DefaultSize
	}
	if opts.NativeHeapSize == 0 {
		opts.NativeHeapSize = heap.DefaultSize
	}
	if opts.Alignment == 0 {
		if opts.MTE {
			opts.Alignment = 16
		} else {
			opts.Alignment = 8
		}
	}
	if !opts.MTE {
		opts.CheckMode = mte.TCFNone
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	space := mem.NewSpace()
	jh, err := heap.New(space, heap.Config{
		Name:      "main space (region space)",
		Size:      opts.HeapSize,
		Alignment: opts.Alignment,
		MTE:       opts.MTE,
	})
	if err != nil {
		return nil, fmt.Errorf("vm: creating Java heap: %w", err)
	}
	nh, err := heap.New(space, heap.Config{
		Name:      "native alloc space",
		Size:      opts.NativeHeapSize,
		Alignment: 16,
		MTE:       false,
	})
	if err != nil {
		return nil, fmt.Errorf("vm: creating native heap: %w", err)
	}

	v := &VM{
		opts:       opts,
		Space:      space,
		JavaHeap:   jh,
		NativeHeap: nh,
		classes:    make(map[uint32]*Class),
		byName:     make(map[string]*Class),
		objects:    make(map[mte.Addr]*Object),
		threads:    make(map[string]*Thread),
		globals:    make(map[*Object]int),
		rng:        rand.New(rand.NewSource(opts.Seed)),
	}
	v.registerBuiltinClasses()
	return v, nil
}

// Close tears the VM down: it detaches every thread, drops the object,
// global-reference and class registries, and closes both heaps — which
// unmaps their spaces and releases TLAB/free-list state — so a retained *VM
// (a pooled session slot, a test fixture) cannot keep the simulated memory
// alive. After Close every allocation and heap access fails; Close is
// idempotent. Like heap.Close it requires quiescence: the caller must hold
// the only active use of the VM (a pool closes sessions only while they are
// exclusively leased or idle).
func (v *VM) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	v.closed = true
	v.objects = make(map[mte.Addr]*Object)
	v.globals = make(map[*Object]int)
	threads := make([]*Thread, 0, len(v.threads))
	for _, t := range v.threads {
		threads = append(threads, t)
	}
	v.threads = make(map[string]*Thread)
	v.mu.Unlock()

	// Clear thread-local state outside v.mu (DetachThread's lock order).
	for _, t := range threads {
		t.localMu.Lock()
		t.locals = make(map[*Object]int)
		t.localMu.Unlock()
	}

	if err := v.JavaHeap.Close(); err != nil {
		return err
	}
	return v.NativeHeap.Close()
}

// Closed reports whether Close has run.
func (v *VM) Closed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.closed
}

// Options returns the options the VM was built with.
func (v *VM) Options() Options { return v.opts }

// MTEEnabled reports whether the Java heap is tagged.
func (v *VM) MTEEnabled() bool { return v.opts.MTE }

// CheckMode returns the process TCF mode threads are created with.
func (v *VM) CheckMode() mte.CheckMode { return v.opts.CheckMode }

func (v *VM) registerBuiltinClasses() {
	id := uint32(1)
	add := func(c *Class) *Class {
		c.ID = id
		id++
		v.classes[c.ID] = c
		v.byName[c.Name] = c
		return c
	}
	add(&Class{Name: "java.lang.Object"})
	for _, k := range Kinds {
		add(&Class{Name: k.String() + "[]", Elem: k, Array: true})
	}
	add(&Class{Name: "java.lang.String", Elem: KindChar, String: true})
}

// ArrayClass returns the class of k[] arrays.
func (v *VM) ArrayClass(k Kind) *Class { return v.byName[k.String()+"[]"] }

// StringClass returns java.lang.String.
func (v *VM) StringClass() *Class { return v.byName["java.lang.String"] }

// ClassByID resolves a header class id, for heap walkers.
func (v *VM) ClassByID(id uint32) (*Class, bool) {
	c, ok := v.classes[id]
	return c, ok
}

// RandomTag draws a random allocation tag honoring mask, serializing access
// to the shared RNG. It is the VM's IRG instruction.
func (v *VM) RandomTag(mask mte.ExcludeMask) mte.Tag {
	v.rngMu.Lock()
	defer v.rngMu.Unlock()
	return mte.IRG(v.rng, mask)
}

// ReseedTagRNG replaces the tag RNG with one seeded from seed — the other
// half of the tag-reseed defense. After a reseed every refs-0→1 acquisition
// in the protector draws from the new stream, so tag values an attacker
// learned by surviving probes under the old stream carry no information
// about future allocations.
func (v *VM) ReseedTagRNG(seed int64) {
	v.rngMu.Lock()
	defer v.rngMu.Unlock()
	v.rng = rand.New(rand.NewSource(seed))
}

// ResetHeapTags repaints the managed heap's tag storage back to zero (a
// no-op for non-MTE VMs, whose heap carries no tags). Combined with
// ReseedTagRNG this makes a recycled session's tag state indistinguishable
// from a fresh VM's: stale learned tags fault again, and nothing about the
// old RNG stream leaks into the new one. Caller must own the VM exclusively
// with no live objects — the pool's post-GC recycle point.
func (v *VM) ResetHeapTags() {
	if v.opts.MTE {
		v.JavaHeap.ResetTags()
	}
}

// allocObject carves an object with the given class and element count out of
// the Java heap and registers it.
func (v *VM) allocObject(class *Class, length int) (*Object, error) {
	if length < 0 {
		return nil, fmt.Errorf("vm: NegativeArraySizeException: %d", length)
	}
	size := uint64(HeaderSize + length*class.Elem.Size())
	if !class.Array && !class.String {
		size = HeaderSize
	}
	addr, err := v.JavaHeap.Alloc(size)
	if err != nil {
		return nil, err
	}
	o := &Object{vm: v, class: class, addr: addr, length: length}
	if err := o.writeHeader(); err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.objects[addr] = o
	v.mu.Unlock()
	return o, nil
}

// NewArray allocates a primitive array of the given kind and length.
func (v *VM) NewArray(k Kind, length int) (*Object, error) {
	return v.allocObject(v.ArrayClass(k), length)
}

// NewIntArray allocates an int[] — the array type every experiment in the
// paper uses.
func (v *VM) NewIntArray(length int) (*Object, error) {
	return v.NewArray(KindInt, length)
}

// NewString allocates a java.lang.String with the UTF-16 encoding of s.
func (v *VM) NewString(s string) (*Object, error) {
	units := utf16.Encode([]rune(s))
	o, err := v.allocObject(v.StringClass(), len(units))
	if err != nil {
		return nil, err
	}
	for i, u := range units {
		if err := o.SetElem(i, uint64(u)); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// GoString decodes a java.lang.String object back into a Go string.
func (v *VM) GoString(o *Object) (string, error) {
	if !o.class.String {
		return "", fmt.Errorf("vm: GoString on non-string %s", o)
	}
	units := make([]uint16, o.Len())
	for i := range units {
		bits, err := o.GetElem(i)
		if err != nil {
			return "", err
		}
		units[i] = uint16(bits)
	}
	return string(utf16.Decode(units)), nil
}

// FreeObject unregisters o and returns its heap block. It is for
// runtime-internal temporaries (e.g. the Modified-UTF-8 buffers JNI creates
// for GetStringUTFChars); application objects are reclaimed by the GC.
func (v *VM) FreeObject(o *Object) error {
	if o.Pinned() {
		return fmt.Errorf("vm: FreeObject on pinned %s", o)
	}
	v.mu.Lock()
	delete(v.objects, o.addr)
	v.mu.Unlock()
	return v.JavaHeap.Free(o.addr)
}

// ObjectAt resolves a heap address to its Object handle.
func (v *VM) ObjectAt(addr mte.Addr) (*Object, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.objects[addr]
	return o, ok
}

// LiveObjects returns the number of registered heap objects.
func (v *VM) LiveObjects() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.objects)
}

// AddGlobalRef registers o as a GC root, like JNI NewGlobalRef.
func (v *VM) AddGlobalRef(o *Object) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.globals[o]++
}

// DeleteGlobalRef drops a global root.
func (v *VM) DeleteGlobalRef(o *Object) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.globals[o] <= 1 {
		delete(v.globals, o)
	} else {
		v.globals[o]--
	}
}
