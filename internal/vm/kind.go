package vm

import "fmt"

// Kind enumerates the Java primitive types that JNI exposes raw array
// pointers for — the seven types listed in the footnote of the paper's
// Table 1.
type Kind int

const (
	// KindByte is Java byte (1 byte).
	KindByte Kind = iota
	// KindChar is Java char (2 bytes, UTF-16 code unit).
	KindChar
	// KindShort is Java short (2 bytes).
	KindShort
	// KindInt is Java int (4 bytes).
	KindInt
	// KindLong is Java long (8 bytes).
	KindLong
	// KindFloat is Java float (4 bytes).
	KindFloat
	// KindDouble is Java double (8 bytes).
	KindDouble
	numKinds
)

// Kinds lists all primitive kinds in declaration order, for tests and
// table generators that iterate the whole JNI surface.
var Kinds = []Kind{KindByte, KindChar, KindShort, KindInt, KindLong, KindFloat, KindDouble}

// Size returns the element size in bytes.
func (k Kind) Size() int {
	switch k {
	case KindByte:
		return 1
	case KindChar, KindShort:
		return 2
	case KindInt, KindFloat:
		return 4
	case KindLong, KindDouble:
		return 8
	default:
		panic(fmt.Sprintf("vm: invalid Kind(%d)", int(k)))
	}
}

// String returns the Java type name.
func (k Kind) String() string {
	switch k {
	case KindByte:
		return "byte"
	case KindChar:
		return "char"
	case KindShort:
		return "short"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// JNIName returns the capitalized name used in JNI function names, e.g.
// "Int" in GetIntArrayElements.
func (k Kind) JNIName() string {
	s := k.String()
	return string(s[0]-'a'+'A') + s[1:]
}
