package bench

import (
	"strings"
	"testing"
)

func snapOf(pairs map[string]float64) *Snapshot {
	s := NewSnapshot("")
	// Deterministic order for before-order assertions.
	for _, name := range []string{"a", "b", "c", "d"} {
		if ns, ok := pairs[name]; ok {
			s.Add(Result{Name: name, Iters: 1, NsPerOp: ns})
		}
	}
	return s
}

func TestRegressionsGate(t *testing.T) {
	before := snapOf(map[string]float64{"a": 100, "b": 100, "c": 100, "d": 0})
	after := snapOf(map[string]float64{"a": 109, "b": 125, "c": 80, "d": 50})

	regs := Regressions(before, after, 10)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly b", regs)
	}
	r := regs[0]
	// a is within threshold, c improved, d has no baseline (NsPerOp 0).
	if r.Name != "b" || r.BeforeNS != 100 || r.AfterNS != 125 || r.DeltaPct != 25 {
		t.Fatalf("regression = %+v", r)
	}
	if s := r.String(); !strings.Contains(s, "b: 100.0 -> 125.0 ns/op (+25.0%)") {
		t.Fatalf("rendering: %q", s)
	}

	// Exactly at threshold passes (strictly-more-than semantics); a lower
	// threshold catches the 9%% case too.
	if regs := Regressions(before, after, 25); len(regs) != 0 {
		t.Fatalf("at-threshold flagged: %+v", regs)
	}
	if regs := Regressions(before, after, 5); len(regs) != 2 {
		t.Fatalf("threshold 5 found %+v, want a and b", regs)
	}

	// Benchmarks missing from the after snapshot are not regressions.
	partial := snapOf(map[string]float64{"a": 100})
	if regs := Regressions(before, partial, 10); len(regs) != 0 {
		t.Fatalf("missing-after flagged: %+v", regs)
	}
}
