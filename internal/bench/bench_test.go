package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{5}, 5},
		{[]time.Duration{3, 1, 2}, 2},
		{[]time.Duration{4, 1, 3, 2}, 2},
	}
	for _, c := range cases {
		if got := Median(append([]time.Duration(nil), c.in...)); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeasureRunsWarmupAndReps(t *testing.T) {
	count := 0
	d := Measure(3, 5, func() { count++ })
	if count != 8 {
		t.Fatalf("fn ran %d times, want 8", count)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	count = 0
	Measure(0, 0, func() { count++ })
	if count != 1 {
		t.Fatalf("reps<1 must clamp to one recorded run, got %d", count)
	}
}

func TestStats(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/degenerate inputs")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with non-positive input must be 0")
	}
	if got := StdDev([]float64{2, 4}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile([]float64{10}, 75); got != 10 {
		t.Fatalf("single-sample percentile = %v", got)
	}
}

func TestCI95(t *testing.T) {
	if m, hw := CI95([]float64{5}); m != 5 || hw != 0 {
		t.Fatalf("degenerate CI = %v ± %v", m, hw)
	}
	m, hw := CI95([]float64{2, 4})
	if m != 3 || hw <= 0 {
		t.Fatalf("CI = %v ± %v", m, hw)
	}
	// Wider spread → wider interval.
	_, hw2 := CI95([]float64{0, 6})
	if hw2 <= hw {
		t.Fatal("CI width not monotone in spread")
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(26.578) != "26.58x" {
		t.Fatalf("Ratio = %q", Ratio(26.578))
	}
	if Percent(-5.9) != "-5.90%" || Percent(1.13) != "+1.13%" {
		t.Fatal("Percent format wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "scheme", "ratio")
	tab.AddRow("guarded-copy", "26.58x")
	tab.AddRow("mte")
	if tab.Rows() != 2 {
		t.Fatal("row count")
	}
	out := tab.String()
	for _, want := range []string{"Table X", "scheme", "guarded-copy", "26.58x", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("Figure 5", "length")
	a := fig.AddSeries("Guarded_Copy")
	b := fig.AddSeries("MTE4JNI+Sync")
	a.Add("2^1", 50.0)
	a.Add("2^2", 40.0)
	b.Add("2^1", 3.0)
	out := fig.String()
	for _, want := range []string{"Figure 5", "Guarded_Copy", "MTE4JNI+Sync", "50.00x", "3.00x", "2^2", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	if len(fig.Series()) != 2 {
		t.Fatal("series count")
	}
}
