package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := NewSnapshot("unit test")
	s.Add(Result{Name: "Fig5SingleThread/MTE4JNI+Sync/n=2^12", Iters: 1000, NsPerOp: 4142, MBPerS: 3955})
	s.Add(Result{Name: "heap/AllocFreeSerial/size=256", Iters: 100, NsPerOp: 94.4})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SnapshotSchema || len(got.Results) != 2 || got.Note != "unit test" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if r := got.Find("heap/AllocFreeSerial/size=256"); r == nil || r.NsPerOp != 94.4 {
		t.Fatalf("Find = %+v", r)
	}
	if got.Find("no-such-benchmark") != nil {
		t.Fatal("Find invented a result")
	}
}

func TestReadSnapshotRejectsWrongSchema(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestParseGoBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: mte4jni
cpu: AMD EPYC 7B13
BenchmarkFig5SingleThread/No_protection/n=2^12-1         	 2033736	       588.5 ns/op	27837.54 MB/s
BenchmarkFig5SingleThread/MTE4JNI+Sync/n=2^12-1          	  289500	      4142 ns/op	 3955.12 MB/s
BenchmarkLoad64Checked-1    	117651536	        10.12 ns/op	       0 B/op	       0 allocs/op
some unrelated line
PASS
ok  	mte4jni	12.538s
`
	results, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[1]
	if r.Name != "Fig5SingleThread/MTE4JNI+Sync/n=2^12" || r.Iters != 289500 ||
		r.NsPerOp != 4142 || r.MBPerS != 3955.12 {
		t.Fatalf("parsed %+v", r)
	}
	if results[2].Name != "Load64Checked" || results[2].AllocsPerOp != 0 || results[2].NsPerOp != 10.12 {
		t.Fatalf("parsed %+v", results[2])
	}
}

func TestDiffFileRoundTrip(t *testing.T) {
	before := NewSnapshot("before")
	before.Add(Result{Name: "x", NsPerOp: 100})
	after := NewSnapshot("after")
	after.Add(Result{Name: "x", NsPerOp: 50})
	path := filepath.Join(t.TempDir(), "diff.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewDiff("pr test", before, after).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d, err := ReadDiffFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Note != "pr test" || d.Before.Note != "before" || d.After.Find("x").NsPerOp != 50 {
		t.Fatalf("round trip lost data: %+v", d)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"mte4jni-bench-diff/v1","before":null,"after":null}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDiffFile(bad); err == nil {
		t.Fatal("diff with missing snapshots accepted")
	}
}

func TestCompareTable(t *testing.T) {
	before := NewSnapshot("before")
	before.Add(Result{Name: "x", NsPerOp: 100})
	before.Add(Result{Name: "only-before", NsPerOp: 5})
	after := NewSnapshot("after")
	after.Add(Result{Name: "x", NsPerOp: 50})
	tbl := Compare(before, after)
	if tbl.Rows() != 1 {
		t.Fatalf("compare rows = %d, want 1 (unmatched rows dropped)", tbl.Rows())
	}
	if s := tbl.String(); !strings.Contains(s, "-50.00%") {
		t.Fatalf("comparison table missing delta:\n%s", s)
	}
}
