// Package bench provides the measurement and presentation utilities shared
// by the experiment drivers: repeated timing with warmup, summary
// statistics, and plain-text table/series rendering that mirrors the rows
// and series of the paper's tables and figures.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Measure times fn. It runs warmup unrecorded iterations, then reps
// recorded ones, and returns the median duration — the median is robust
// against scheduler noise, which matters when comparing schemes whose real
// difference is the quantity of interest.
func Measure(warmup, reps int, fn func()) time.Duration {
	for i := 0; i < warmup; i++ {
		fn()
	}
	if reps < 1 {
		reps = 1
	}
	samples := make([]time.Duration, reps)
	for i := range samples {
		start := time.Now()
		fn()
		samples[i] = time.Since(start)
	}
	return Median(samples)
}

// Median returns the median of samples (which it sorts in place).
func Median(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := len(samples)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// Mean returns the arithmetic mean of xs, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, the aggregation GeekBench-style
// scores use; 0 for empty input or any non-positive element.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks; xs is sorted in place.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(xs) {
		return xs[lo]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// CI95 returns the mean of xs and the half-width of its 95% confidence
// interval under the normal approximation (1.96 σ/√n). With fewer than two
// samples the half-width is 0.
func CI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Ratio formats a normalized ratio the way the paper's text does, e.g.
// "26.58x".
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Percent formats a relative change as a percentage with sign, e.g.
// "-5.90%".
func Percent(r float64) string { return fmt.Sprintf("%+.2f%%", r) }

// Table is a plain-text table with aligned columns.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers labels the columns.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table. It always returns a nil error; the signature
// keeps it usable with io plumbing.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	// Name is the legend entry.
	Name string
	// X holds the point labels, Y the values; both are index-aligned.
	X []string
	Y []float64
}

// Add appends a point.
func (s *Series) Add(x string, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing an x-axis, rendered as a table with one
// column per series — the textual equivalent of the paper's plots.
type Figure struct {
	// Title is printed above the figure.
	Title string
	// XLabel names the x-axis column.
	XLabel string
	// Format renders a y value; defaults to Ratio.
	Format func(float64) string
	series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, Format: Ratio}
}

// AddSeries registers a new series and returns it for population. All
// series must be populated over the same x values in the same order.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.series = append(f.series, s)
	return s
}

// Series returns the registered series.
func (f *Figure) Series() []*Series { return f.series }

// String renders the figure.
func (f *Figure) String() string {
	headers := []string{f.XLabel}
	for _, s := range f.series {
		headers = append(headers, s.Name)
	}
	t := NewTable(f.Title, headers...)
	if len(f.series) > 0 {
		for i, x := range f.series[0].X {
			row := []string{x}
			for _, s := range f.series {
				if i < len(s.Y) {
					row = append(row, f.Format(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	return t.String()
}
