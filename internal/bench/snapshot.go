package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark snapshots: a machine-readable record of a benchmark run, stable
// enough to commit next to the code it measures (BENCH_*.json at the repo
// root). A snapshot can be produced by the `mte4jni bench` subcommand's
// built-in suite or parsed from `go test -bench` text output, so before and
// after numbers captured either way land in one schema and can be diffed
// with Compare.

// SnapshotSchema identifies the snapshot JSON layout.
const SnapshotSchema = "mte4jni-bench-snapshot/v1"

// Result is one benchmark's outcome.
type Result struct {
	// Name is the benchmark path, e.g.
	// "Fig5SingleThread/MTE4JNI+Sync/n=2^12".
	Name string `json:"name"`
	// Iters is the number of timed iterations behind the numbers.
	Iters int `json:"iters"`
	// NsPerOp is the headline cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput when the benchmark declared bytes/op; 0 otherwise.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// AllocsPerOp and BytesPerOp are Go allocator traffic per operation,
	// when measured (-benchmem or the built-in suite).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// TagBytesPerOp and TagBytesFlatPerOp are set by the tag-footprint
	// cases: the hierarchical tag store's resident bytes after the
	// workload, and what the flat per-granule array would have paid for
	// the same mappings. Both are end-of-run gauges, not per-iteration
	// rates; 0 for cases that do not measure tag residency.
	TagBytesPerOp     float64 `json:"tag_bytes_per_op,omitempty"`
	TagBytesFlatPerOp float64 `json:"tag_bytes_flat_per_op,omitempty"`
}

// Snapshot is a full benchmark run plus the environment it ran in.
type Snapshot struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// NewSnapshot creates an empty snapshot stamped with the current
// environment.
func NewSnapshot(note string) *Snapshot {
	return &Snapshot{
		Schema:    SnapshotSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Note:      note,
	}
}

// Add appends a result.
func (s *Snapshot) Add(r Result) { s.Results = append(s.Results, r) }

// Find returns the result with the exact name, or nil.
func (s *Snapshot) Find(name string) *Result {
	for i := range s.Results {
		if s.Results[i].Name == name {
			return &s.Results[i]
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot from JSON and validates the schema tag.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: reading snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("bench: unknown snapshot schema %q (want %q)", s.Schema, SnapshotSchema)
	}
	return &s, nil
}

// ReadSnapshotFile reads a snapshot from a file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ParseGoBench converts `go test -bench` text output into results. Lines
// that are not benchmark result lines are ignored, so the whole test output
// can be piped in. The "Benchmark" prefix and the trailing "-N" GOMAXPROCS
// suffix are stripped from names, giving the same names the built-in suite
// uses.
func ParseGoBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, Iters: iters}
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "MB/s":
				res.MBPerS = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "tagB/op":
				res.TagBytesPerOp = v
			case "flatTagB/op":
				res.TagBytesFlatPerOp = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// DiffSchema identifies the combined before/after snapshot JSON layout —
// the format of the BENCH_*.json files committed at the repo root.
const DiffSchema = "mte4jni-bench-diff/v1"

// Diff pairs a before and an after snapshot in one committable file.
type Diff struct {
	Schema string    `json:"schema"`
	Note   string    `json:"note,omitempty"`
	Before *Snapshot `json:"before"`
	After  *Snapshot `json:"after"`
}

// NewDiff combines two snapshots.
func NewDiff(note string, before, after *Snapshot) *Diff {
	return &Diff{Schema: DiffSchema, Note: note, Before: before, After: after}
}

// WriteJSON writes the diff as indented JSON.
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDiffFile reads a combined before/after file and validates all three
// schema tags.
func ReadDiffFile(path string) (*Diff, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d Diff
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("bench: reading diff %s: %w", path, err)
	}
	if d.Schema != DiffSchema {
		return nil, fmt.Errorf("bench: unknown diff schema %q (want %q)", d.Schema, DiffSchema)
	}
	if d.Before == nil || d.After == nil {
		return nil, fmt.Errorf("bench: diff %s is missing a before or after snapshot", path)
	}
	for _, s := range []*Snapshot{d.Before, d.After} {
		if s.Schema != SnapshotSchema {
			return nil, fmt.Errorf("bench: diff %s embeds unknown snapshot schema %q", path, s.Schema)
		}
	}
	return &d, nil
}

// Regression is one benchmark whose ns/op grew past the gate threshold
// between two snapshots.
type Regression struct {
	Name     string  `json:"name"`
	BeforeNS float64 `json:"before_ns_per_op"`
	AfterNS  float64 `json:"after_ns_per_op"`
	DeltaPct float64 `json:"delta_pct"`
}

// String renders the regression the way the CI gate prints it.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%)", r.Name, r.BeforeNS, r.AfterNS, r.DeltaPct)
}

// Regressions returns every benchmark present in both snapshots whose ns/op
// grew by strictly more than thresholdPct percent, in before-snapshot order.
// It is the decision procedure behind `mte4jni bench -diff -threshold`:
// a non-empty result fails the gate.
func Regressions(before, after *Snapshot, thresholdPct float64) []Regression {
	var out []Regression
	for _, b := range before.Results {
		a := after.Find(b.Name)
		if a == nil || b.NsPerOp == 0 {
			continue
		}
		delta := (a.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		if delta > thresholdPct {
			out = append(out, Regression{Name: b.Name, BeforeNS: b.NsPerOp, AfterNS: a.NsPerOp, DeltaPct: delta})
		}
	}
	return out
}

// Compare renders a before/after table over the benchmarks present in both
// snapshots: ns/op on each side and the relative change (negative is
// faster).
func Compare(before, after *Snapshot) *Table {
	t := NewTable("benchmark comparison", "benchmark", "before ns/op", "after ns/op", "delta")
	for _, b := range before.Results {
		a := after.Find(b.Name)
		if a == nil || b.NsPerOp == 0 {
			continue
		}
		t.AddRow(b.Name,
			fmt.Sprintf("%.1f", b.NsPerOp),
			fmt.Sprintf("%.1f", a.NsPerOp),
			Percent((a.NsPerOp-b.NsPerOp)/b.NsPerOp*100))
	}
	return t
}
