package redteam

import "mte4jni/internal/mte"

// Tag brute-forcing against 4-bit entropy. The attacker holds a pointer it
// is not entitled to use (modelled here as the handed-out critical pointer
// with its tag bits under attacker control) and sweeps guesses at the
// 16-tag space. Analytics the campaign checks the empirical rates against:
//
//   - Memoryless guessing (no retry): each probe is detected unless the
//     guess equals the object's tag, so P(detect per probe) = 15/16 and
//     P(detected within k probes) = 1 - (1/16)^k.
//   - Sequential sweep (no retry): guesses 0..15 each exactly once; the
//     object's tag appears exactly once in the sweep, so a full trial is
//     *exactly* 15 detections in 16 probes — 15/16 with zero variance,
//     which is why the smoke gate can check it as an equality.
//   - Retry (learning) variants: after a probe survives, the attacker has
//     learned the tag and replays it forever. Detections stop the moment
//     one probe survives, so per-probe detection probability collapses
//     toward k/16 per trial — the measurement that motivates the serving
//     tier's tag-reseed-on-suspicion defense: a reseed makes the learned
//     tag stale and forces the attacker back onto the 15/16 treadmill.
//
// Under non-MTE schemes tag bits are ignored by the access path, every
// probe "survives", and the rows report a detection probability of zero —
// the coverage story the cost-only benchmarks never told.
type bruteForce struct {
	name       string
	sequential bool
	retry      bool
}

// NewBruteForceAttack returns a tag brute-forcing strategy. sequential
// selects the in-order 0..15 sweep over uniform random guessing; retry
// selects the learning attacker that replays a surviving tag.
func NewBruteForceAttack(sequential, retry bool) Attack {
	name := "bruteforce/"
	if sequential {
		name += "seq"
	} else {
		name += "rand"
	}
	if retry {
		name += "+retry"
	}
	return &bruteForce{name: name, sequential: sequential, retry: retry}
}

func (a *bruteForce) Name() string  { return a.name }
func (a *bruteForce) Class() string { return "bruteforce" }

func (a *bruteForce) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	learned := -1
	for i := 0; i < h.maxProbes; i++ {
		var guess mte.Tag
		switch {
		case a.retry && learned >= 0:
			guess = mte.Tag(learned)
		case a.sequential:
			guess = mte.Tag(i % mte.NumTags)
		default:
			guess = mte.Tag(h.rng.Intn(mte.NumTags))
		}
		detected, landed, perr := h.forgedStore(p, guess, int32(0x5EED0000+i))
		if perr != nil {
			return tr, perr
		}
		tr.Probes++
		if landed {
			tr.Landed++
		}
		if detected {
			tr.Detections++
			if tr.FirstDetect == 0 {
				tr.FirstDetect = tr.Probes
			}
		} else {
			// Survived: the attacker now knows a usable tag.
			learned = int(guess)
			tr.Success = true
		}
	}
	violation, rerr := h.releaseTarget(arr, p)
	if rerr != nil {
		return tr, rerr
	}
	if violation && tr.FirstDetect == 0 {
		// Guarded copy never faults at probe time; a corrupted-zone verdict
		// at release is a detection reported after the final probe.
		tr.Detections++
		tr.FirstDetect = tr.Probes
	}
	return tr, nil
}
