package redteam

import (
	"encoding/binary"

	"mte4jni"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/mte"
)

// The four §2.3 guarded-copy blind spots as concrete exploit programs. Each
// runs against every scheme, which is the point of the cross product: the
// same program that slips past guarded copy (an expected, documented miss —
// Trial.KnownMiss) is caught immediately by the MTE schemes, turning the
// paper's prose concession into a measured detection-probability gap.
//
// Offsets are relative to the handed-out payload pointer. Under
// GuardedCopy that pointer is the copy buffer's payload, bracketed by
// RedZoneSize-byte canary zones; under the MTE schemes it is the tagged
// heap pointer itself.
const (
	// payloadBytes is the target array's payload size (targetLen ints).
	payloadBytes = targetLen * 4
	// oobReadOff lands inside the trailing red zone: reads never corrupt a
	// canary, so guarded copy is structurally blind to them (§2.3 blind
	// spot 1). Under MTE the offset sits in the neighbor-exclusion window
	// past the object, so the tag mismatch is deterministic.
	oobReadOff = payloadBytes + 8
	// farJumpOff jumps far past both red zones (§2.3 blind spot 2): the
	// write lands in unrelated native-heap memory with both canary zones
	// intact, so release-time verification passes. Far enough that no live
	// guarded buffer of this harness can sit there — a corrupted dead
	// region is re-canaried on its next acquisition, keeping trials
	// independent.
	farJumpOff = payloadBytes + guardedcopy.RedZoneSize + 4096
	// canaryOff is the first byte of the trailing red zone — the
	// deferred-detection probe corrupts exactly one canary byte there.
	canaryOff = payloadBytes
)

// oobRead is §2.3 blind spot 1: out-of-bounds *reads*. Guarded copy's only
// sensor is canary integrity at release, and a read corrupts nothing, so
// an attacker can leak adjacent native-heap memory without leaving a
// trace. MTE checks loads and stores alike.
type oobRead struct{}

// NewOOBReadAttack returns the out-of-bounds read exploit.
func NewOOBReadAttack() Attack { return &oobRead{} }

func (a *oobRead) Name() string  { return "guardedcopy/oob-read" }
func (a *oobRead) Class() string { return "guardedcopy" }

func (a *oobRead) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	fault, cerr := h.env.CallNative("redteam_oob_read", mte4jni.Regular, func(env *mte4jni.Env) error {
		_ = env.LoadInt(p.Add(oobReadOff))
		return nil
	})
	if cerr != nil {
		return tr, cerr
	}
	tr.Probes = 1
	if fault != nil {
		tr.Detections, tr.FirstDetect = 1, 1
	}
	violation, rerr := h.releaseTarget(arr, p)
	if rerr != nil {
		return tr, rerr
	}
	if violation && tr.FirstDetect == 0 {
		tr.Detections, tr.FirstDetect = 1, 1
	}
	if tr.FirstDetect == 0 {
		tr.Success = true
		tr.KnownMiss = h.scheme == mte4jni.GuardedCopy
	}
	return tr, nil
}

// farJump is §2.3 blind spot 2: an out-of-bounds *write* that jumps clean
// over both red zones. The canaries only witness writes that walk through
// them; a striding or offset-controlled write corrupts distant memory and
// release-time verification stays green. MTE tags every granule, so
// distance does not help the attacker.
type farJump struct{}

// NewFarJumpAttack returns the far out-of-bounds write exploit.
func NewFarJumpAttack() Attack { return &farJump{} }

func (a *farJump) Name() string  { return "guardedcopy/far-jump" }
func (a *farJump) Class() string { return "guardedcopy" }

func (a *farJump) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	landed := false
	fault, cerr := h.env.CallNative("redteam_far_jump", mte4jni.Regular, func(env *mte4jni.Env) error {
		target := p.Add(farJumpOff)
		env.StoreInt(target, 0x4A4A4A4A)
		landed = env.LoadInt(target) == 0x4A4A4A4A
		return nil
	})
	if cerr != nil {
		return tr, cerr
	}
	tr.Probes = 1
	if landed {
		tr.Landed = 1
	}
	if fault != nil {
		tr.Detections, tr.FirstDetect = 1, 1
	}
	violation, rerr := h.releaseTarget(arr, p)
	if rerr != nil {
		return tr, rerr
	}
	if violation && tr.FirstDetect == 0 {
		tr.Detections, tr.FirstDetect = 1, 1
	}
	if tr.FirstDetect == 0 && landed {
		tr.Success = true
		tr.KnownMiss = h.scheme == mte4jni.GuardedCopy
	}
	return tr, nil
}

// lostUpdate is §2.3 blind spot 3, the copy-visibility race: while a
// native holds a guarded *copy*, a managed-side write to the same array
// updates the real heap — and the release-time copy-back overwrites it
// with the stale snapshot. No canary is touched, nothing faults, and a
// committed managed write silently vanishes. Under the MTE schemes the
// native works on the real payload, so the managed write survives.
type lostUpdate struct{}

// NewLostUpdateAttack returns the lost-update copy-back exploit.
func NewLostUpdateAttack() Attack { return &lostUpdate{} }

func (a *lostUpdate) Name() string  { return "guardedcopy/lost-update" }
func (a *lostUpdate) Class() string { return "guardedcopy" }

func (a *lostUpdate) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, err := h.rt.VM().NewIntArray(targetLen)
	if err != nil {
		return tr, err
	}
	var p mte.Ptr
	var managed [4]byte
	binary.LittleEndian.PutUint32(managed[:], 7)
	var after [4]byte
	var relErr error
	fault, cerr := h.env.CallNative("redteam_lost_update", mte4jni.Regular, func(env *mte4jni.Env) error {
		var aerr error
		// The classic Get/Release pair — the copying interface under
		// guarded copy, a direct pointer under MTE.
		p, aerr = env.GetIntArrayElements(arr)
		if aerr != nil {
			return aerr
		}
		// Managed mutator commits element 0 = 7 while the native holds its
		// handout. SetArrayRegion writes the real heap in every scheme.
		if aerr = env.SetArrayRegion(mte4jni.KindInt, arr, 0, 1, managed[:]); aerr != nil {
			return aerr
		}
		// The native touches a *different* element of whatever it was
		// handed, then releases: under guarded copy the copy-back restores
		// element 0 from the stale snapshot, erasing the managed write.
		env.StoreInt(p.Add(4), 13)
		relErr = env.ReleaseIntArrayElements(arr, p, mte4jni.ReleaseDefault)
		return env.GetArrayRegion(mte4jni.KindInt, arr, 0, 1, after[:])
	})
	if cerr != nil {
		return tr, cerr
	}
	tr.Probes = 1
	if fault != nil {
		tr.Detections, tr.FirstDetect = 1, 1
		return tr, nil
	}
	if relErr != nil {
		tr.Detections, tr.FirstDetect = 1, 1
		return tr, nil
	}
	if binary.LittleEndian.Uint32(after[:]) != 7 {
		// The committed managed write is gone and nothing reported it.
		tr.Success = true
		tr.Landed = 1
		tr.KnownMiss = h.scheme == mte4jni.GuardedCopy
	}
	return tr, nil
}

// deferredDetection is §2.3 blind spot 4: even when guarded copy *does*
// catch a violation, it reports at Release — after the native has run to
// completion. The exploit corrupts one canary byte, then keeps executing
// damage operations; probes-to-detection measures how much work the
// attacker banked before the verdict. MTE sync stops the very first store.
type deferredDetection struct {
	// damageOps is how many post-violation operations the attacker runs
	// before releasing.
	damageOps int
}

// NewDeferredDetectionAttack returns the deferred-detection exploit with
// damageOps operations executed between the violation and the release.
func NewDeferredDetectionAttack(damageOps int) Attack {
	if damageOps <= 0 {
		damageOps = 4
	}
	return &deferredDetection{damageOps: damageOps}
}

func (a *deferredDetection) Name() string  { return "guardedcopy/deferred" }
func (a *deferredDetection) Class() string { return "guardedcopy" }

func (a *deferredDetection) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	// Probe 1: the violation — one byte into the trailing red zone.
	landed := false
	fault, cerr := h.env.CallNative("redteam_deferred_violate", mte4jni.Regular, func(env *mte4jni.Env) error {
		env.StoreByte(p.Add(canaryOff), 0x00)
		landed = true
		return nil
	})
	if cerr != nil {
		return tr, cerr
	}
	tr.Probes = 1
	if landed {
		tr.Landed = 1
	}
	if fault != nil {
		tr.Detections, tr.FirstDetect = 1, 1
	}
	// Probes 2..damageOps+1: in-bounds work the attacker gets to finish
	// before any deferred verdict can land.
	for i := 0; i < a.damageOps; i++ {
		f, derr := h.env.CallNative("redteam_deferred_damage", mte4jni.Regular, func(env *mte4jni.Env) error {
			env.StoreInt(p.Add(int64(4*(i%targetLen))), int32(0xBAD0000+i))
			return nil
		})
		if derr != nil {
			return tr, derr
		}
		tr.Probes++
		if f == nil {
			tr.Landed++
		}
	}
	violation, rerr := h.releaseTarget(arr, p)
	if rerr != nil {
		return tr, rerr
	}
	if violation && tr.FirstDetect == 0 {
		// Detected — but only here, after every damage op ran.
		tr.Detections++
		tr.FirstDetect = tr.Probes
	}
	if tr.FirstDetect == 0 {
		tr.Success = tr.Landed > 0
		tr.KnownMiss = h.scheme == mte4jni.GuardedCopy
	} else if tr.FirstDetect > 1 {
		// Deferred: damage preceded the report.
		tr.Success = tr.Landed > 0
	}
	return tr, nil
}
