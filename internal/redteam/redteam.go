// Package redteam is the adversarial half of the reproduction: a corpus of
// adaptive attacker programs that probe the protection schemes the way a
// real exploit would — observing outcomes and adjusting — plus the harness
// that drives each strategy to a detection/success verdict.
//
// The paper's evaluation (§5) measures what protection *costs*; it never
// measures what protection *catches*. TikTag (PAPERS.md) showed that MTE's
// 4-bit probabilistic guarantee, not its overhead, is the actual attack
// surface, and MTE4JNI §2.3 itself concedes four guarded-copy blind spots
// without ever exercising them. This package turns both concessions into
// executable programs:
//
//   - tag brute-forcing against 4-bit entropy (bruteforce.go): sequential
//     and randomized sweeps, with and without same-tag retry after a
//     survived probe. The no-retry variants must empirically match the
//     analytic 15/16-per-probe detection model; the retry variants show why
//     a memoryless model flatters the defender — a learning attacker who
//     keeps a surviving tag is detected at most once, which is exactly the
//     gap the serving tier's tag-reseed defense closes.
//   - async-TCF damage windows (window.go): mutate between the fault and
//     its report, then verify the write landed — Figure 4(c)'s imprecision
//     as an exploit primitive.
//   - GC-scan-window races (window.go): brute-force probing concurrent
//     with the collector's scan of the same heap, checking that detection
//     probability holds inside the scan window and the scan itself stays
//     fault-free.
//   - the four §2.3 guarded-copy blind spots (guardedcopy.go) as concrete
//     exploit programs: out-of-bounds reads, far out-of-bounds writes that
//     jump both red zones, the lost-update copy-back race, and deferred
//     detection (damage accrues until Release).
//
// campaign.go fans the corpus across all four schemes and reduces the
// trials to a coverage report: detection probability per attack class x
// scheme, mean probes-to-detection, and the brute-force-vs-analytic model
// check the redteam smoke gate enforces. probe.go exports the single
// deterministic probe the serving tier's canned "attack" request uses.
//
// Encapsulation: attacker program constructors (New*Attack) may exist only
// in this package — enforced by tools/lintrepo's redteam-encapsulation
// pass — so every exploit the repo can express is enumerated here, where
// the campaign measures it.
package redteam

import (
	"fmt"
	"math/rand"

	"mte4jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// targetLen is the int[] length every attack targets: 16 ints = 64 bytes =
// 4 granules, small enough that a trial's working set is one object.
const targetLen = 16

// Trial is the outcome of running one attack strategy to completion.
type Trial struct {
	// Probes is the number of attack probes issued.
	Probes int
	// Detections is the number of probes the scheme detected (a fault, or
	// for guarded copy a Release-time violation attributed to the probe
	// that corrupted the zone).
	Detections int
	// FirstDetect is the 1-based probe index at which the scheme first
	// detected the attack; 0 when the whole trial went undetected. For
	// deferred-detection schemes this is where the *report* landed, not
	// where the damage happened — the gap is the finding.
	FirstDetect int
	// Landed counts forged or out-of-bounds writes that actually reached
	// memory (always true for undetected probes; also true for detected
	// probes under async TCF, where the report trails the store).
	Landed int
	// Success reports whether the attacker achieved its goal at least once
	// without that probe being detected.
	Success bool
	// KnownMiss marks an undetected trial of an attack the paper itself
	// documents as a blind spot of the scheme under test (§2.3 for guarded
	// copy) — expected, but worth a counter rather than silence.
	KnownMiss bool
}

// Attack is one adversarial strategy. Run executes a single trial against
// the harness's runtime and returns the verdict; the campaign aggregates
// trials into per-class x per-scheme rows.
type Attack interface {
	// Name identifies the concrete strategy (e.g. "bruteforce/seq").
	Name() string
	// Class groups strategies for reporting: "bruteforce", "async-window",
	// "gc-race", "guardedcopy".
	Class() string
	// Run executes one trial. A returned error is a harness failure
	// (broken plumbing), never an attack outcome.
	Run(h *Harness) (Trial, error)
}

// Harness owns one runtime per (attack, scheme) pair and the per-trial
// machinery: target allocation, the forged-store probe, and the RNG the
// adaptive strategies draw from. One runtime serves every trial of the
// pair — each trial attacks a fresh array, whose tag is drawn fresh from
// the shared RNG on the refs-0→1 acquisition — so campaigns do not pay a
// VM construction per trial.
type Harness struct {
	scheme    mte4jni.Scheme
	rt        *mte4jni.Runtime
	env       *mte4jni.Env
	rng       *rand.Rand
	maxProbes int
}

// NewHarness builds a harness for scheme with the given RNG seed and
// per-trial probe budget. Close must be called to release the runtime.
func NewHarness(scheme mte4jni.Scheme, seed int64, maxProbes int, heapSize uint64) (*Harness, error) {
	if maxProbes <= 0 {
		maxProbes = mte.NumTags
	}
	rt, err := mte4jni.New(mte4jni.Config{
		Scheme:               scheme,
		HeapSize:             heapSize,
		TagNeighborExclusion: true,
		Seed:                 seed,
	})
	if err != nil {
		return nil, err
	}
	env, err := rt.AttachEnv("redteam")
	if err != nil {
		rt.VM().Close()
		return nil, err
	}
	return &Harness{
		scheme:    scheme,
		rt:        rt,
		env:       env,
		rng:       rand.New(rand.NewSource(seed)),
		maxProbes: maxProbes,
	}, nil
}

// Scheme returns the protection scheme under attack.
func (h *Harness) Scheme() mte4jni.Scheme { return h.scheme }

// MaxProbes returns the per-trial probe budget.
func (h *Harness) MaxProbes() int { return h.maxProbes }

// Close detaches the attack thread and tears down the runtime.
func (h *Harness) Close() error {
	h.rt.DetachEnv(h.env)
	return h.rt.VM().Close()
}

// acquireTarget allocates a fresh int[targetLen] and pins its payload with
// GetPrimitiveArrayCritical. Holding the critical acquisition across a
// whole trial is deliberate: the protector draws a fresh random tag on
// every refs-0→1 acquisition, so releasing between probes would hand the
// brute-forcer a moving target and make the within-trial learning variants
// meaningless. The returned pointer is what the scheme handed the
// "attacker-controlled" native library: tagged under MTE, a guarded copy
// under GuardedCopy, raw under NoProtection.
func (h *Harness) acquireTarget() (*vm.Object, mte.Ptr, error) {
	arr, err := h.rt.VM().NewIntArray(targetLen)
	if err != nil {
		return nil, 0, err
	}
	var p mte.Ptr
	fault, cerr := h.env.CallNative("redteam_acquire", mte4jni.Regular, func(env *mte4jni.Env) error {
		var aerr error
		p, aerr = env.GetPrimitiveArrayCritical(arr)
		return aerr
	})
	if cerr != nil {
		return nil, 0, cerr
	}
	if fault != nil {
		return nil, 0, fmt.Errorf("redteam: acquire faulted: %v", fault)
	}
	return arr, p, nil
}

// releaseTarget releases the trial's critical acquisition. The returned
// violation (guarded copy's Release-time canary check) is an attack
// outcome, not an error; it comes back as the bool.
func (h *Harness) releaseTarget(arr *vm.Object, p mte.Ptr) (violation bool, err error) {
	var relErr error
	fault, cerr := h.env.CallNative("redteam_release", mte4jni.Regular, func(env *mte4jni.Env) error {
		relErr = env.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
		return nil
	})
	if cerr != nil {
		return false, cerr
	}
	if fault != nil {
		return false, fmt.Errorf("redteam: release faulted: %v", fault)
	}
	return relErr != nil, nil
}

// forgedStore issues one probe: a 4-byte store through p retagged to guess,
// then an in-native read-back through the true pointer to learn whether the
// write landed. Returns the scheme's verdict:
//
//   - detected: the trampoline surfaced a fault (sync: at the faulting
//     store; async: latched and reported at the exit synchronization
//     point).
//   - landed: the read-back through the true pointer observed the probe's
//     value — under sync TCF a detected probe never lands (the store was
//     suppressed by the signal), under async TCF it always does (the
//     damage window), and an undetected probe landed by definition.
func (h *Harness) forgedStore(p mte.Ptr, guess mte.Tag, val int32) (detected, landed bool, err error) {
	forged := p.WithTag(guess)
	var readBack int32
	sawStore := false
	fault, cerr := h.env.CallNative("redteam_probe", mte4jni.Regular, func(env *mte4jni.Env) error {
		env.StoreInt(forged, val)
		// Only reached when the store did not synchronously fault: read the
		// cell through the *true* pointer so async-landed damage is visible.
		sawStore = true
		readBack = env.LoadInt(p)
		return nil
	})
	if cerr != nil {
		return false, false, cerr
	}
	return fault != nil, sawStore && readBack == val, nil
}
