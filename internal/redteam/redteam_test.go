package redteam

import (
	"testing"

	"mte4jni"
	"mte4jni/internal/mte"
)

const testHeap = 1 << 20

func newTestHarness(t *testing.T, scheme mte4jni.Scheme, seed int64) *Harness {
	t.Helper()
	h, err := NewHarness(scheme, seed, mte.NumTags, testHeap)
	if err != nil {
		t.Fatalf("NewHarness(%v): %v", scheme, err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// A full sequential sweep guesses every tag exactly once, so on an MTE
// scheme the trial is exactly 15 detections in 16 probes — zero variance.
func TestBruteForceSequentialExact(t *testing.T) {
	for _, scheme := range []mte4jni.Scheme{mte4jni.MTESync, mte4jni.MTEAsync} {
		h := newTestHarness(t, scheme, 42)
		atk := NewBruteForceAttack(true, false)
		for trial := 0; trial < 8; trial++ {
			tr, err := atk.Run(h)
			if err != nil {
				t.Fatalf("%v trial %d: %v", scheme, trial, err)
			}
			if tr.Probes != 16 || tr.Detections != 15 {
				t.Fatalf("%v trial %d: %d detections in %d probes, want exactly 15/16", scheme, trial, tr.Detections, tr.Probes)
			}
			if !tr.Success {
				t.Fatalf("%v trial %d: the one matching guess must survive", scheme, trial)
			}
			if tr.FirstDetect == 0 {
				t.Fatalf("%v trial %d: no detection recorded", scheme, trial)
			}
			if scheme == mte4jni.MTESync {
				// Sync suppresses every detected store: only the matching
				// guess lands.
				if tr.Landed != 1 {
					t.Fatalf("sync trial %d: %d landed writes, want 1", trial, tr.Landed)
				}
			} else if tr.Landed != 16 {
				// Async is the damage window: every store lands, detected
				// or not.
				t.Fatalf("async trial %d: %d landed writes, want 16", trial, tr.Landed)
			}
		}
	}
}

// The learning attacker stops being detected the moment one probe
// survives: every probe after the first success replays the learned tag.
func TestBruteForceRetryLearns(t *testing.T) {
	h := newTestHarness(t, mte4jni.MTESync, 7)
	atk := NewBruteForceAttack(true, true)
	for trial := 0; trial < 8; trial++ {
		tr, err := atk.Run(h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !tr.Success {
			t.Fatalf("trial %d: sequential retry sweep must eventually survive", trial)
		}
		// Sequential sweep detects until it reaches the real tag, learns
		// it, and never faults again: detections + landed == probes, and
		// the detections are exactly the probes before the first survival.
		if tr.Detections+tr.Landed != tr.Probes {
			t.Fatalf("trial %d: detections %d + landed %d != probes %d", trial, tr.Detections, tr.Landed, tr.Probes)
		}
		if tr.Detections > 15 {
			t.Fatalf("trial %d: %d detections, learning attacker caps at 15", trial, tr.Detections)
		}
	}
}

// Non-MTE schemes ignore tag bits: brute-force never detects anything.
func TestBruteForceUndetectedWithoutMTE(t *testing.T) {
	for _, scheme := range []mte4jni.Scheme{mte4jni.NoProtection, mte4jni.GuardedCopy} {
		h := newTestHarness(t, scheme, 3)
		tr, err := NewBruteForceAttack(false, false).Run(h)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if tr.Detections != 0 || !tr.Success || tr.Landed != tr.Probes {
			t.Fatalf("%v: %+v, want all probes landed undetected", scheme, tr)
		}
	}
}

// The async damage window: same trial, opposite damage profiles. Sync
// suppresses the first store at the instruction; async lands every write
// and reports once at the trampoline exit.
func TestAsyncWindowDamage(t *testing.T) {
	atk := NewAsyncWindowAttack(4)

	hSync := newTestHarness(t, mte4jni.MTESync, 11)
	tr, err := atk.Run(hSync)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if tr.Detections != 1 || tr.FirstDetect != 1 || tr.Landed != 0 || tr.Success {
		t.Fatalf("sync: %+v, want immediate detection with zero landed writes", tr)
	}

	hAsync := newTestHarness(t, mte4jni.MTEAsync, 11)
	tr, err = atk.Run(hAsync)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if tr.Detections != 1 {
		t.Fatalf("async: %d detections, want 1 (latched, reported at exit)", tr.Detections)
	}
	if tr.Landed != 5 || tr.FirstDetect != 5 || !tr.Success {
		t.Fatalf("async: %+v, want all 5 writes landed before the report", tr)
	}
}

// Detection probability must hold inside the GC scan window, and the scan
// itself must never fault from attacker activity.
func TestGCRaceDetectionHolds(t *testing.T) {
	h := newTestHarness(t, mte4jni.MTESync, 23)
	atk := NewGCRaceAttack()
	tr, err := atk.Run(h)
	if err != nil {
		t.Fatalf("gc race: %v", err)
	}
	if tr.Probes != 16 {
		t.Fatalf("probes = %d, want 16", tr.Probes)
	}
	// P(detect) = 15/16 per probe; 8 of 16 would be a catastrophic
	// degradation (P < 1e-6), not noise.
	if tr.Detections < 8 {
		t.Fatalf("detections = %d/16 inside the scan window", tr.Detections)
	}
}

// The four §2.3 exploits against guarded copy itself: three structural
// misses (explicitly flagged KnownMiss) and one deferred detection.
func TestGuardedCopyBlindSpots(t *testing.T) {
	h := newTestHarness(t, mte4jni.GuardedCopy, 31)

	for _, atk := range []Attack{NewOOBReadAttack(), NewFarJumpAttack(), NewLostUpdateAttack()} {
		tr, err := atk.Run(h)
		if err != nil {
			t.Fatalf("%s: %v", atk.Name(), err)
		}
		if tr.Detections != 0 || !tr.Success || !tr.KnownMiss {
			t.Fatalf("%s: %+v, want undetected success flagged as known miss", atk.Name(), tr)
		}
	}

	tr, err := NewDeferredDetectionAttack(4).Run(h)
	if err != nil {
		t.Fatalf("deferred: %v", err)
	}
	if tr.Detections != 1 || tr.FirstDetect != tr.Probes || tr.Probes != 5 {
		t.Fatalf("deferred: %+v, want detection deferred to release after 5 probes", tr)
	}
	if !tr.Success || tr.KnownMiss {
		t.Fatalf("deferred: %+v, want detected-but-late (success, not a miss)", tr)
	}
}

// The same exploit programs against MTE sync: every one is caught at the
// first touch.
func TestBlindSpotExploitsCaughtByMTE(t *testing.T) {
	h := newTestHarness(t, mte4jni.MTESync, 37)
	for _, atk := range []Attack{NewOOBReadAttack(), NewFarJumpAttack(), NewDeferredDetectionAttack(4)} {
		tr, err := atk.Run(h)
		if err != nil {
			t.Fatalf("%s: %v", atk.Name(), err)
		}
		if tr.FirstDetect != 1 || tr.KnownMiss {
			t.Fatalf("%s on MTE sync: %+v, want immediate detection", atk.Name(), tr)
		}
	}
	// Lost update is a copy artifact: under MTE there is no copy, so the
	// managed write survives and the attack simply fails.
	tr, err := NewLostUpdateAttack().Run(h)
	if err != nil {
		t.Fatalf("lost-update: %v", err)
	}
	if tr.Success || tr.KnownMiss {
		t.Fatalf("lost-update on MTE sync: %+v, want attack failure (no copy to race)", tr)
	}
}

// A small campaign over the MTE schemes: the no-retry brute-force rows
// must match the analytic model and the report must self-certify.
func TestCampaignBruteForceModel(t *testing.T) {
	rep, err := Run(Config{
		Trials:    16,
		Seed:      5,
		Tolerance: 0.06,
		Schemes:   []mte4jni.Scheme{mte4jni.MTESync, mte4jni.MTEAsync},
		Attacks: []Attack{
			NewBruteForceAttack(true, false),
			NewBruteForceAttack(false, false),
			NewBruteForceAttack(false, true),
		},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("campaign failed its own model checks: %+v", rep.Checks)
	}
	if len(rep.Checks) != 4 {
		t.Fatalf("model checks = %d, want 4 (2 no-retry attacks x 2 MTE schemes)", len(rep.Checks))
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("%s vs %s: empirical %.4f vs analytic %.4f", c.Attack, c.Scheme, c.Empirical, c.Analytic)
		}
	}
	// The retry rows must NOT be model-checked: the learning attacker is
	// deliberately off-model (that gap motivates tag reseeding).
	for _, c := range rep.Checks {
		if c.Attack == "bruteforce/rand+retry" || c.Attack == "bruteforce/seq+retry" {
			t.Errorf("retry variant %s was model-checked", c.Attack)
		}
	}
}

// The full corpus campaign on the guarded-copy scheme accounts for every
// blind spot: detected or known-miss, never a silent hole.
func TestCampaignBlindSpotAccounting(t *testing.T) {
	rep, err := Run(Config{
		Trials:  4,
		Seed:    9,
		Schemes: []mte4jni.Scheme{mte4jni.GuardedCopy},
		Attacks: []Attack{NewOOBReadAttack(), NewFarJumpAttack(), NewLostUpdateAttack(), NewDeferredDetectionAttack(4)},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.BlindSpotsAccounted || !rep.Pass {
		t.Fatalf("blind spots unaccounted: %+v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if row.DetectedTrials == 0 && row.KnownMisses == 0 {
			t.Errorf("row %s/%s: neither detected nor known-miss", row.Attack, row.Scheme)
		}
	}
}

// The serving-tier probe is deterministic per scheme — the property the
// load generator's exact reconciliation rests on.
func TestServingProbeDeterministic(t *testing.T) {
	for _, scheme := range mte4jni.Schemes() {
		rt, err := mte4jni.New(mte4jni.Config{Scheme: scheme, HeapSize: testHeap, TagNeighborExclusion: true, Seed: 13})
		if err != nil {
			t.Fatalf("New(%v): %v", scheme, err)
		}
		env, err := rt.AttachEnv("probe-test")
		if err != nil {
			t.Fatalf("AttachEnv: %v", err)
		}
		for i := 0; i < 4; i++ {
			res, perr := ServingProbe(env)
			if perr != nil {
				t.Fatalf("%v probe %d: %v", scheme, i, perr)
			}
			if scheme.MTE() && res.Fault == nil {
				t.Fatalf("%v probe %d: forged store went undetected", scheme, i)
			}
			if !scheme.MTE() && res.Fault != nil {
				t.Fatalf("%v probe %d: unexpected fault %v", scheme, i, res.Fault)
			}
			if scheme == mte4jni.MTESync && res.Landed {
				t.Fatalf("sync probe %d landed", i)
			}
			if scheme != mte4jni.MTESync && !res.Landed {
				t.Fatalf("%v probe %d did not land", scheme, i)
			}
		}
		rt.DetachEnv(env)
		rt.VM().Close()
	}
}
