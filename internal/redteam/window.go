package redteam

import (
	"fmt"

	"mte4jni"
	"mte4jni/internal/mte"
)

// asyncWindow exploits the asynchronous-TCF reporting gap (Figure 4(c)):
// under TCFAsync a mismatched store *lands* and only latches a fault that
// surfaces at the next synchronization point — the trampoline exit. The
// attack stores through a guaranteed-wrong tag, then keeps mutating in the
// window between the fault and its report, and finally verifies through the
// true pointer that every write reached memory. A trial's verdict
// quantifies the window: under sync TCF detection is immediate and Landed
// stays 0 (the faulting store is suppressed at the instruction); under
// async TCF the same trial reports detection *and* damageOps landed writes
// — detected, but only after the damage was done.
type asyncWindow struct {
	// damageOps is how many extra stores the attacker squeezes into the
	// window after the first (already-latched) violation.
	damageOps int
}

// NewAsyncWindowAttack returns the async-TCF damage-window exploit with
// damageOps mutations issued between the fault and its report.
func NewAsyncWindowAttack(damageOps int) Attack {
	if damageOps <= 0 {
		damageOps = 4
	}
	return &asyncWindow{damageOps: damageOps}
}

func (a *asyncWindow) Name() string  { return "async-window/damage" }
func (a *asyncWindow) Class() string { return "async-window" }

func (a *asyncWindow) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	// Guaranteed mismatch: flip the low tag bit of whatever the scheme
	// handed out. Under non-MTE schemes tag bits are ignored and every
	// store lands undetected.
	wrong := p.Tag() ^ 0x1
	landed := make([]bool, a.damageOps+1)
	fault, cerr := h.env.CallNative("redteam_async_window", mte4jni.Regular, func(env *mte4jni.Env) error {
		for i := 0; i <= a.damageOps; i++ {
			// Each iteration is one mutation in the damage window. Under
			// sync TCF the first store panics and nothing below runs.
			forged := p.WithTag(wrong).Add(int64(4 * i))
			env.StoreInt(forged, int32(0xDA3A0000+i))
			// Read back through the true pointer: did the write land?
			landed[i] = env.LoadInt(p.Add(int64(4*i))) == int32(0xDA3A0000+i)
		}
		return nil
	})
	if cerr != nil {
		return tr, cerr
	}
	tr.Probes = a.damageOps + 1
	for _, l := range landed {
		if l {
			tr.Landed++
		}
	}
	if fault != nil {
		tr.Detections++
		if h.scheme == mte4jni.MTEAsync {
			// The report surfaced at the trampoline exit, after every
			// probe: the whole window preceded detection.
			tr.FirstDetect = tr.Probes
		} else {
			tr.FirstDetect = 1
		}
	}
	// The attacker's goal is damage that precedes (or escapes) the report.
	tr.Success = tr.Landed > 0
	if violation, rerr := h.releaseTarget(arr, p); rerr != nil {
		return tr, rerr
	} else if violation && tr.FirstDetect == 0 {
		tr.Detections++
		tr.FirstDetect = tr.Probes
	}
	return tr, nil
}

// gcRace interleaves randomized brute-force probing with the collector's
// concurrent scan of the same heap. The scan window is the risky interval:
// the GC reads every live object's payload while the attacker's native
// thread fires forged stores at one of them. The trial checks two
// properties at once — detection probability must not degrade inside the
// window (the per-object scan synchronization serializes the scan against
// stores without masking tag checks), and the scan itself must stay
// fault-free (the collector reads with correctly tagged references, so
// attacker activity must never make the *GC* crash).
type gcRace struct{}

// NewGCRaceAttack returns the GC-scan-window race: brute-force probing
// concurrent with ConcurrentScan over the same heap.
func NewGCRaceAttack() Attack { return &gcRace{} }

func (a *gcRace) Name() string  { return "gc-race/scan-window" }
func (a *gcRace) Class() string { return "gc-race" }

func (a *gcRace) Run(h *Harness) (Trial, error) {
	var tr Trial
	arr, p, err := h.acquireTarget()
	if err != nil {
		return tr, err
	}
	v := h.rt.VM()
	gcTh, err := v.NewGCThread()
	if err != nil {
		return tr, err
	}
	stop := make(chan struct{})
	scanErr := make(chan error, 1)
	go func() {
		defer close(scanErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if f, _ := v.ConcurrentScan(gcTh.Ctx()); f != nil {
				scanErr <- fmt.Errorf("redteam: GC scan faulted during attack: %v", f)
				return
			}
		}
	}()
	var perr error
	for i := 0; i < h.maxProbes; i++ {
		guess := mte.Tag(h.rng.Intn(mte.NumTags))
		detected, landed, e := h.forgedStore(p, guess, int32(0x6C0000+i))
		if e != nil {
			perr = e
			break
		}
		tr.Probes++
		if landed {
			tr.Landed++
		}
		if detected {
			tr.Detections++
			if tr.FirstDetect == 0 {
				tr.FirstDetect = tr.Probes
			}
		} else {
			tr.Success = true
		}
	}
	close(stop)
	if serr := <-scanErr; serr != nil && perr == nil {
		perr = serr
	}
	v.DetachThread(gcTh)
	if perr != nil {
		return tr, perr
	}
	if violation, rerr := h.releaseTarget(arr, p); rerr != nil {
		return tr, rerr
	} else if violation && tr.FirstDetect == 0 {
		tr.Detections++
		tr.FirstDetect = tr.Probes
	}
	return tr, nil
}
