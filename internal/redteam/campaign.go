package redteam

import (
	"fmt"
	"math"

	"mte4jni"
	"mte4jni/internal/mte"
)

// Campaign configuration. The zero value is filled with usable defaults by
// Run.
type Config struct {
	// Trials per (attack, scheme) pair.
	Trials int
	// Seed makes the whole campaign reproducible; per-pair harness seeds
	// are derived from it.
	Seed int64
	// MaxProbes is the per-trial probe budget for the sweeping strategies.
	MaxProbes int
	// Tolerance is the acceptable absolute deviation of the no-retry
	// brute-force per-probe detection rate from the analytic 15/16.
	Tolerance float64
	// HeapSize for each attack runtime's managed heap.
	HeapSize uint64
	// Schemes under attack; defaults to all four.
	Schemes []mte4jni.Scheme
	// Attacks to run; defaults to Corpus().
	Attacks []Attack
}

// Corpus returns the full attack corpus: the four brute-force variants,
// the async damage window, the GC-scan race, and the four §2.3
// guarded-copy blind-spot exploits.
func Corpus() []Attack {
	return []Attack{
		NewBruteForceAttack(true, false),
		NewBruteForceAttack(false, false),
		NewBruteForceAttack(true, true),
		NewBruteForceAttack(false, true),
		NewAsyncWindowAttack(4),
		NewGCRaceAttack(),
		NewOOBReadAttack(),
		NewFarJumpAttack(),
		NewLostUpdateAttack(),
		NewDeferredDetectionAttack(4),
	}
}

// Row is one (attack, scheme) cell of the coverage report.
type Row struct {
	Attack string `json:"attack"`
	Class  string `json:"class"`
	Scheme string `json:"scheme"`
	Trials int    `json:"trials"`
	Probes int    `json:"probes"`
	// Detections and DetectionProbability are per-probe; DetectedTrials
	// and MeanProbesToDetect are per-trial (mean of FirstDetect over
	// detected trials).
	Detections           int     `json:"detections"`
	DetectionProbability float64 `json:"detection_probability"`
	DetectedTrials       int     `json:"detected_trials"`
	MeanProbesToDetect   float64 `json:"mean_probes_to_detect"`
	// LandedWrites counts forged/OOB writes that reached memory;
	// UndetectedSuccesses counts trials where the attacker met its goal
	// without detection; KnownMisses counts the subset that are documented
	// blind spots of the scheme under test.
	LandedWrites        int `json:"landed_writes"`
	UndetectedSuccesses int `json:"undetected_successes"`
	KnownMisses         int `json:"known_misses"`
}

// WithinK is one point of the detect-within-k-probes curve next to its
// memoryless analytic value 1 - (1/16)^k.
type WithinK struct {
	K         int     `json:"k"`
	Empirical float64 `json:"empirical"`
	Analytic  float64 `json:"analytic"`
}

// ModelCheck compares a no-retry brute-force row against the analytic
// model. The per-probe rate is the gated quantity (its sample size is
// trials x probes); the within-k curve is reported for the coverage story.
type ModelCheck struct {
	Attack    string  `json:"attack"`
	Scheme    string  `json:"scheme"`
	Empirical float64 `json:"empirical_per_probe"`
	// Analytic is 15/16: the probe misses unless its guess equals the
	// object's 4-bit tag.
	Analytic  float64   `json:"analytic_per_probe"`
	Deviation float64   `json:"deviation"`
	Exact     bool      `json:"exact"` // sequential sweeps admit an equality check
	WithinK   []WithinK `json:"detect_within_k"`
	Pass      bool      `json:"pass"`
}

// Report is the campaign's JSON coverage report.
type Report struct {
	Trials    int          `json:"trials"`
	Seed      int64        `json:"seed"`
	MaxProbes int          `json:"max_probes"`
	Tolerance float64      `json:"tolerance"`
	Rows      []Row        `json:"rows"`
	Checks    []ModelCheck `json:"bruteforce_model_checks"`
	// BlindSpotsAccounted reports that every §2.3 exploit row on the
	// guarded-copy scheme ended as either detected or an explicit
	// known-miss — never a silent undetected success.
	BlindSpotsAccounted bool `json:"blind_spots_accounted"`
	Pass                bool `json:"pass"`
}

// analyticPerProbe is the memoryless brute-force detection probability: a
// uniform guess over 16 tags hits the object's tag with probability 1/16
// regardless of what that tag is.
const analyticPerProbe = 15.0 / 16.0

// Run executes the campaign and reduces it to a Report. An error is a
// harness failure; attack outcomes (including undetected successes) are
// report content, not errors.
func Run(cfg Config) (*Report, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = mte.NumTags
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 1 << 20
	}
	if cfg.Schemes == nil {
		cfg.Schemes = mte4jni.Schemes()
	}
	if cfg.Attacks == nil {
		cfg.Attacks = Corpus()
	}

	rep := &Report{
		Trials:              cfg.Trials,
		Seed:                cfg.Seed,
		MaxProbes:           cfg.MaxProbes,
		Tolerance:           cfg.Tolerance,
		BlindSpotsAccounted: true,
		Pass:                true,
	}
	pair := 0
	for _, atk := range cfg.Attacks {
		for _, scheme := range cfg.Schemes {
			pair++
			row, trials, err := runPair(cfg, atk, scheme, cfg.Seed+int64(pair)*7919)
			if err != nil {
				return nil, fmt.Errorf("%s vs %s: %w", atk.Name(), scheme, err)
			}
			rep.Rows = append(rep.Rows, row)
			if atk.Class() == "guardedcopy" && scheme == mte4jni.GuardedCopy {
				// Acceptance: each blind-spot exploit is detected or an
				// explicit known-miss; a silent undetected success means
				// the exploit or its accounting is broken.
				if row.UndetectedSuccesses > row.KnownMisses && row.DetectedTrials == 0 {
					rep.BlindSpotsAccounted = false
					rep.Pass = false
				}
			}
			if bf, ok := atk.(*bruteForce); ok && !bf.retry && scheme.MTE() {
				check := modelCheck(bf, scheme, row, trials, cfg.Tolerance)
				rep.Checks = append(rep.Checks, check)
				if !check.Pass {
					rep.Pass = false
				}
			}
		}
	}
	return rep, nil
}

// runPair runs cfg.Trials trials of one attack against one scheme on a
// dedicated harness.
func runPair(cfg Config, atk Attack, scheme mte4jni.Scheme, seed int64) (Row, []Trial, error) {
	h, err := NewHarness(scheme, seed, cfg.MaxProbes, cfg.HeapSize)
	if err != nil {
		return Row{}, nil, err
	}
	defer h.Close()
	row := Row{
		Attack: atk.Name(),
		Class:  atk.Class(),
		Scheme: scheme.String(),
		Trials: cfg.Trials,
	}
	trials := make([]Trial, 0, cfg.Trials)
	sumFirst := 0
	for i := 0; i < cfg.Trials; i++ {
		tr, terr := atk.Run(h)
		if terr != nil {
			return row, nil, fmt.Errorf("trial %d: %w", i, terr)
		}
		trials = append(trials, tr)
		row.Probes += tr.Probes
		row.Detections += tr.Detections
		row.LandedWrites += tr.Landed
		if tr.FirstDetect > 0 {
			row.DetectedTrials++
			sumFirst += tr.FirstDetect
		}
		if tr.Success {
			row.UndetectedSuccesses++
		}
		if tr.KnownMiss {
			row.KnownMisses++
		}
	}
	if row.Probes > 0 {
		row.DetectionProbability = float64(row.Detections) / float64(row.Probes)
	}
	if row.DetectedTrials > 0 {
		row.MeanProbesToDetect = float64(sumFirst) / float64(row.DetectedTrials)
	}
	return row, trials, nil
}

// modelCheck gates a no-retry brute-force row against the analytic model.
func modelCheck(bf *bruteForce, scheme mte4jni.Scheme, row Row, trials []Trial, tol float64) ModelCheck {
	c := ModelCheck{
		Attack:    bf.name,
		Scheme:    scheme.String(),
		Empirical: row.DetectionProbability,
		Analytic:  analyticPerProbe,
		Exact:     bf.sequential,
	}
	c.Deviation = math.Abs(c.Empirical - c.Analytic)
	for _, k := range []int{1, 2, 4, 8} {
		hit := 0
		for _, tr := range trials {
			if tr.FirstDetect > 0 && tr.FirstDetect <= k {
				hit++
			}
		}
		c.WithinK = append(c.WithinK, WithinK{
			K:         k,
			Empirical: float64(hit) / float64(len(trials)),
			Analytic:  1 - math.Pow(1.0/16.0, float64(k)),
		})
	}
	if bf.sequential {
		// A full 16-guess sweep hits the object's tag exactly once: the
		// detection count is exactly 15 per 16 probes, no variance.
		c.Pass = row.Detections*16 == row.Probes*15
	} else {
		c.Pass = c.Deviation <= tol
	}
	return c
}
