package redteam

import "mte4jni"

// ServingProbeResult is the outcome of one serving-tier attack probe.
type ServingProbeResult struct {
	// Fault is the detected violation (nil when the scheme missed).
	Fault *mte4jni.Fault
	// Landed reports whether the forged write reached memory.
	Landed bool
}

// ServingProbe is the one attack program the serving tier exposes as the
// canned "attack" request: a single forged-tag store through a freshly
// acquired critical pointer with its low tag bit flipped — a guaranteed
// mismatch, so the outcome is deterministic per scheme (always detected
// under MTE sync/async, never under guarded copy or no protection). The
// load generator and the redteam smoke rely on that determinism to
// reconcile detections_total and the escalation counters exactly; the
// probabilistic strategies live in the offline campaign, where exactness
// is a statistical claim instead.
//
// The probe deliberately leaves the critical acquisition released and the
// array garbage-collectable, so a detected probe taints only the session
// (fault quarantine), never the pool's recycling invariants.
func ServingProbe(env *mte4jni.Env) (ServingProbeResult, error) {
	var res ServingProbeResult
	arr, err := env.VM().NewIntArray(targetLen)
	if err != nil {
		return res, err
	}
	fault, cerr := env.CallNative("attack_probe", mte4jni.Regular, func(env *mte4jni.Env) error {
		p, aerr := env.GetPrimitiveArrayCritical(arr)
		if aerr != nil {
			return aerr
		}
		forged := p.WithTag(p.Tag() ^ 0x1)
		env.StoreInt(forged, 0x41414141)
		res.Landed = env.LoadInt(p) == 0x41414141
		return env.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
	})
	if cerr != nil {
		return res, cerr
	}
	res.Fault = fault
	return res, nil
}
