package redteam

import (
	"fmt"

	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/mte"
)

// The corpus as inline programs: every attack in Corpus() restated as the
// program an attacker would submit to the serving tier — the same
// allocate/hand-out/native spine the canned serving programs use, with a
// behavioural summary carrying the attack's temporal shape (post-violation
// damage ops, concurrent scan, managed-race hold). The temporal screening
// differential in internal/fuzz requires analysis.Screen to flag each one
// with the matching exposure class: every dynamic known-miss of the runtime
// checkers must be a static catch at admission.

// CorpusProgram is one attack restated as an inline program with its
// expected static classification.
type CorpusProgram struct {
	// Name matches the Attack.Name() of the Corpus() entry at the same
	// index.
	Name string
	// Class matches Attack.Class().
	Class string
	// WantClass is the exposure class analysis.Screen must assign.
	WantClass analysis.WindowClass
	// Scheme is the request scheme under which the exposure is live — the
	// scheme the load generator submits the program against.
	Scheme string
	// Program is the inline program.
	Program *analysis.Program
}

// attackProgram builds the 5-instruction attack spine: allocate a
// targetLen-int array, hand it to the attack native, return.
func attackProgram(name string, sum analysis.NativeSummary) *analysis.Program {
	return &analysis.Program{
		Method: &interp.Method{
			Name: name,
			Code: []interp.Inst{
				{Op: interp.OpConst, A: targetLen},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 0},
				{Op: interp.OpReturn},
			},
			MaxLocals:   1,
			MaxRefs:     1,
			NativeNames: []string{name},
		},
		Natives: map[string]analysis.NativeSummary{name: sum},
	}
}

// CorpusPrograms returns the static restatement of Corpus(), index-aligned:
// CorpusPrograms()[i] is the inline-program form of Corpus()[i].
func CorpusPrograms() []CorpusProgram {
	defaultProbes := mte.NumTags // the default per-trial probe budget
	progs := []CorpusProgram{}
	add := func(name, class string, want analysis.WindowClass, scheme string, sum analysis.NativeSummary) {
		progs = append(progs, CorpusProgram{
			Name: name, Class: class, WantClass: want, Scheme: scheme,
			Program: attackProgram(fmt.Sprintf("attack_%02d", len(progs)), sum),
		})
	}
	// The four brute-force variants: maxProbes forged stores at element 0 —
	// one latched violation plus maxProbes-1 interfering writes inside the
	// deferred window.
	brute := analysis.NativeSummary{
		MinOff: 0, MaxOff: 0, Write: true, ForgeTag: true, DamageOps: defaultProbes - 1,
	}
	add("bruteforce/seq", "bruteforce", analysis.WindowRisk, "mte-async", brute)
	add("bruteforce/rand", "bruteforce", analysis.WindowRisk, "mte-async", brute)
	add("bruteforce/seq+retry", "bruteforce", analysis.WindowRisk, "mte-async", brute)
	add("bruteforce/rand+retry", "bruteforce", analysis.WindowRisk, "mte-async", brute)
	// Async damage window: forged stores at elements 0..4, every one after
	// the first landing between the latched fault and its report.
	add("async-window/damage", "async-window", analysis.WindowRisk, "mte-async",
		analysis.NativeSummary{MinOff: 0, MaxOff: 16, Write: true, ForgeTag: true, DamageOps: 4})
	// GC-scan race: forged probing concurrent with the collector's scan of
	// the same heap.
	add("gc-race/scan-window", "gc-race", analysis.WindowScanRace, "mte-async",
		analysis.NativeSummary{MinOff: 0, MaxOff: 0, Write: true, ForgeTag: true,
			DamageOps: defaultProbes - 1, ConcurrentScan: true})
	// §2.3 blind spot 1: the out-of-bounds read inside the trailing red
	// zone — corrupts no canary, structurally invisible at release.
	add("guardedcopy/oob-read", "guardedcopy", analysis.WindowGuardedCopyBlindSpot, "guarded-copy",
		analysis.NativeSummary{MinOff: oobReadOff, MaxOff: oobReadOff})
	// §2.3 blind spot 2: the write that jumps clean over both red zones.
	add("guardedcopy/far-jump", "guardedcopy", analysis.WindowGuardedCopyBlindSpot, "guarded-copy",
		analysis.NativeSummary{MinOff: farJumpOff, MaxOff: farJumpOff, Write: true})
	// §2.3 blind spot 3: the lost update — a managed write committed during
	// the hold, erased by the release copy-back.
	add("guardedcopy/lost-update", "guardedcopy", analysis.WindowGuardedCopyBlindSpot, "guarded-copy",
		analysis.NativeSummary{MinOff: 4, MaxOff: 4, Write: true, ManagedRace: true})
	// §2.3 blind spot 4: deferred detection — one canary write, then
	// in-bounds damage ops banked before the release-time verdict.
	add("guardedcopy/deferred", "guardedcopy", analysis.WindowGuardedCopyBlindSpot, "guarded-copy",
		analysis.NativeSummary{MinOff: 0, MaxOff: canaryOff, Write: true, DamageOps: 4})
	return progs
}
