package report

import (
	"math/bits"
	"sync"
	"time"
)

// Latency histogram for the load harness: HDR-style log-spaced buckets with
// a fixed memory footprint, so an open-loop run can record every sample —
// no reservoir, no sorting buffer that grows with -n — and still answer
// tail quantiles (p99, p999) within a bounded relative error.
//
// Layout: values below 2^histSubBits nanoseconds land in exact unit
// buckets; above that, each power-of-two octave is split into
// 2^histSubBits sub-buckets, bounding the relative quantization error at
// 1/2^histSubBits (~3% at the default 5 bits). Quantile reads report a
// bucket's inclusive upper bound, so an SLO gate errs toward rejecting a
// borderline run, never toward waving one through.

const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// 59 octave groups cover every int64 nanosecond value (~292 years).
	histBuckets = histSubBuckets * 59
)

// Histogram is a concurrency-safe HDR-style duration histogram.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sum    int64
	max    int64
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	h := bits.Len64(uint64(v)) // >= histSubBits+1
	shift := uint(h - histSubBits - 1)
	idx := histSubBuckets*(h-histSubBits) + int(v>>shift) - histSubBuckets
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histUpperBound is the largest nanosecond value the bucket holds.
func histUpperBound(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	e := idx / histSubBuckets // octave group, >= 1
	s := idx % histSubBuckets
	return (int64(histSubBuckets+s+1) << uint(e-1)) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.mu.Lock()
	h.counts[histIndex(ns)]++
	h.total++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile returns the q-quantile (0 <= q <= 1) as a duration: the upper
// bound of the bucket holding the ceil(q*total)-th smallest sample. The
// recorded maximum caps the answer, so Quantile(1) is exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			ub := histUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(h.max)
}

// LatencyReport is the histogram's JSON summary, embedded in the load
// harness's -report output and consumed by the SLO gate in serve-smoke.
type LatencyReport struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Report summarizes the histogram.
func (h *Histogram) Report() LatencyReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := LatencyReport{Count: h.total, MaxNS: h.max}
	if h.total > 0 {
		r.MeanNS = h.sum / int64(h.total)
	}
	r.P50NS = h.quantileLocked(0.50).Nanoseconds()
	r.P90NS = h.quantileLocked(0.90).Nanoseconds()
	r.P99NS = h.quantileLocked(0.99).Nanoseconds()
	r.P999NS = h.quantileLocked(0.999).Nanoseconds()
	return r
}
