package report

import (
	"testing"
	"time"

	"mte4jni/internal/mte"
)

func telemetryFault(pc string, ptrTag mte.Tag, async bool) *mte.Fault {
	return &mte.Fault{
		Kind: mte.FaultTagMismatch, Access: mte.AccessStore,
		Ptr: mte.MakePtr(0x7000_0000_0040, ptrTag), Size: 1,
		PtrTag: ptrTag, MemTag: 0x0, Async: async,
		PC: pc, Backtrace: []string{pc}, Thread: "sess-1",
	}
}

func TestSinkCountersAndLatency(t *testing.T) {
	s := NewSink(8)
	s.ObserveRequest(40*time.Microsecond, false, false)
	s.ObserveRequest(2*time.Millisecond, true, false)
	s.ObserveRequest(300*time.Millisecond, false, true)

	snap := s.Snapshot()
	if snap.RequestsTotal != 3 || snap.FaultsTotal != 1 || snap.ErrorsTotal != 1 {
		t.Fatalf("counters = %d/%d/%d, want 3/1/1",
			snap.RequestsTotal, snap.FaultsTotal, snap.ErrorsTotal)
	}
	lat := snap.Latency
	if lat.Count != 3 {
		t.Fatalf("latency count = %d, want 3", lat.Count)
	}
	if lat.MaxNS != uint64(300*time.Millisecond) {
		t.Fatalf("latency max = %d", lat.MaxNS)
	}
	// 40µs → bucket ≤50µs (index 0); 2ms → ≤2500µs (index 5); 300ms → +inf.
	if lat.BucketsUS[0] != 1 || lat.BucketsUS[5] != 1 || lat.BucketsUS[len(lat.BucketsUS)-1] != 1 {
		t.Fatalf("bucket spread wrong: %v", lat.BucketsUS)
	}
}

func TestSinkDedupBySignature(t *testing.T) {
	s := NewSink(8)
	if _, fresh := s.RecordFault("sess-1", "sum", telemetryFault("native0+0", 3, false)); !fresh {
		t.Fatal("first occurrence not reported fresh")
	}
	if _, fresh := s.RecordFault("sess-2", "sum", telemetryFault("native0+0", 3, false)); fresh {
		t.Fatal("duplicate signature reported fresh")
	}
	// Different workload, async mode, or tag pair each open a new bucket.
	s.RecordFault("sess-3", "blur", telemetryFault("native0+0", 3, false))
	asyncRec, _ := s.RecordFault("sess-4", "sum", telemetryFault("native0+0", 3, true))
	s.RecordFault("sess-5", "sum", telemetryFault("native0+0", 9, false))

	// Async tag mismatches carry the async signal code, as in the tombstones.
	if asyncRec.Kind != "SEGV_MTEAERR" {
		t.Fatalf("async record kind = %q, want SEGV_MTEAERR", asyncRec.Kind)
	}

	snap := s.Snapshot()
	if snap.UniqueFaultSignatures != 4 {
		t.Fatalf("unique signatures = %d, want 4", snap.UniqueFaultSignatures)
	}
	top := snap.Signatures[0]
	if top.Count != 2 || top.Signature.Workload != "sum" || top.Signature.Async {
		t.Fatalf("top signature wrong: %+v", top)
	}
	if top.FirstSeq != 1 || top.LastSeq != 2 {
		t.Fatalf("top signature seqs = %d..%d, want 1..2", top.FirstSeq, top.LastSeq)
	}
}

func TestSinkRingBounded(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 6; i++ {
		s.RecordFault("sess", "w", telemetryFault("pc", mte.Tag(i%8), false))
	}
	snap := s.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(snap.Recent))
	}
	if snap.DroppedFaultRecords != 2 {
		t.Fatalf("dropped = %d, want 2", snap.DroppedFaultRecords)
	}
	if snap.Recent[0].Seq != 3 || snap.Recent[3].Seq != 6 {
		t.Fatalf("ring kept seqs %d..%d, want 3..6", snap.Recent[0].Seq, snap.Recent[3].Seq)
	}
	if snap.FaultsTotal != 0 {
		// RecordFault alone does not bump the request-level fault counter;
		// that is ObserveRequest's job, so the two reconcile independently.
		t.Fatalf("RecordFault bumped FaultsTotal to %d", snap.FaultsTotal)
	}
}

func TestSinkScreenCounters(t *testing.T) {
	s := NewSink(8)
	s.ObserveScreen(false, false) // admitted, cold
	s.ObserveScreen(true, false)  // rejected, cold
	s.ObserveScreen(true, true)   // rejected, cached
	s.ObserveScreen(false, true)  // admitted, cached

	snap := s.Snapshot()
	if snap.ScreenedTotal != 4 || snap.ScreenRejectedTotal != 2 || snap.ScreenCacheHits != 2 {
		t.Fatalf("screen counters = %d/%d/%d, want 4/2/2",
			snap.ScreenedTotal, snap.ScreenRejectedTotal, snap.ScreenCacheHits)
	}
	// Screening is admission control: it must not count as request traffic.
	if snap.RequestsTotal != 0 {
		t.Fatalf("screening leaked into requests_total: %d", snap.RequestsTotal)
	}
}
