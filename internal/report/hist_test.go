package report

import (
	"math/rand"
	"testing"
	"time"
)

// Below the sub-bucket threshold every nanosecond value has its own bucket,
// so small-value quantiles are exact.
func TestHistogramExactUnitBuckets(t *testing.T) {
	var h Histogram
	for v := 0; v < histSubBuckets; v++ {
		h.Observe(time.Duration(v))
	}
	if got := h.Quantile(1); got != time.Duration(histSubBuckets-1) {
		t.Fatalf("Quantile(1) = %v, want %v", got, time.Duration(histSubBuckets-1))
	}
	if got := h.Quantile(0.5); got != time.Duration(histSubBuckets/2-1) {
		t.Fatalf("Quantile(0.5) = %v, want %v", got, time.Duration(histSubBuckets/2-1))
	}
}

// The bucket mapping must be monotone and its upper bound must bracket the
// value with the advertised relative error: v <= ub(v) < v*(1+2^-histSubBits)
// plus one for the inclusive bound.
func TestHistogramBucketError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prev := -1
	for i := 0; i < 200000; i++ {
		v := rng.Int63n(int64(2 * time.Hour))
		idx := histIndex(v)
		ub := histUpperBound(idx)
		if ub < v {
			t.Fatalf("upper bound %d below value %d (bucket %d)", ub, v, idx)
		}
		if slack := ub - v; slack > v>>histSubBits+1 {
			t.Fatalf("bucket %d overestimates %d by %d (> %d)", idx, v, slack, v>>histSubBits+1)
		}
		_ = prev
	}
	// Monotonicity over a dense small range and octave boundaries.
	for v := int64(0); v < 1<<14; v++ {
		if idx := histIndex(v); idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		} else {
			prev = idx
		}
	}
}

// Quantiles of a known uniform ladder land within the quantization error,
// and Quantile(1) is exactly the recorded maximum.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		if got < want || float64(got) > float64(want)*1.05 {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v*1.05]", q, got, want, want)
		}
	}
	check(0.50, 500*time.Millisecond)
	check(0.99, 990*time.Millisecond)
	check(0.999, 999*time.Millisecond)
	if got := h.Quantile(1); got != 1000*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want exactly 1s (max is tracked exactly)", got)
	}
}

func TestHistogramReport(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	r := h.Report()
	if r.Count != 100 {
		t.Fatalf("count = %d, want 100", r.Count)
	}
	if r.MaxNS != (100 * time.Microsecond).Nanoseconds() {
		t.Fatalf("max = %d, want 100µs", r.MaxNS)
	}
	wantMean := (5050 * time.Microsecond / 100).Nanoseconds()
	if r.MeanNS != wantMean {
		t.Fatalf("mean = %d, want %d", r.MeanNS, wantMean)
	}
	if r.P50NS <= 0 || r.P99NS < r.P50NS || r.P999NS < r.P99NS || r.MaxNS < r.P999NS {
		t.Fatalf("percentiles not ordered: %+v", r)
	}
	var empty Histogram
	if r := empty.Report(); r.Count != 0 || r.P99NS != 0 || r.MaxNS != 0 {
		t.Fatalf("empty histogram report = %+v, want zeros", r)
	}
}
