package report

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mte4jni/internal/exec"
	"mte4jni/internal/mte"
)

// Telemetry sink for the serving layer: the fleet-scale aggregation story a
// single-process crash report lacks. Every MTE fault a served session hits
// is folded into a bounded ring buffer of structured records and deduplicated
// by fault signature, and every request contributes to the request/fault/
// latency counters the daemon exports on /metrics. The sink is its own
// synchronization domain — many serving goroutines record into one sink.

// FaultSignature identifies a fault class for deduplication: the same
// reported PC with the same tag pair in the same check mode against the same
// workload is one bug hit many times, not many bugs.
type FaultSignature struct {
	// PC is the frame label the fault was reported at.
	PC string `json:"pc"`
	// PtrTag and MemTag are the mismatching tag pair.
	PtrTag mte.Tag `json:"ptr_tag"`
	MemTag mte.Tag `json:"mem_tag"`
	// Async distinguishes sync from async detection.
	Async bool `json:"async"`
	// Workload names what the session was running ("PDF Renderer", a
	// program name, ...).
	Workload string `json:"workload"`
}

// SignatureOf derives the dedup signature of a fault hit while running the
// named workload.
func SignatureOf(f *mte.Fault, workload string) FaultSignature {
	return FaultSignature{PC: f.PC, PtrTag: f.PtrTag, MemTag: f.MemTag, Async: f.Async, Workload: workload}
}

// String renders the signature as a stable one-line key.
func (s FaultSignature) String() string {
	mode := "sync"
	if s.Async {
		mode = "async"
	}
	return fmt.Sprintf("pc=%s tags=%s/%s mode=%s workload=%s", s.PC, s.PtrTag, s.MemTag, mode, s.Workload)
}

// FaultRecord is one structured fault occurrence, as stored in the ring and
// returned to /run callers.
type FaultRecord struct {
	// Seq is the 1-based global fault sequence number.
	Seq uint64 `json:"seq"`
	// UnixNano is the sink-local record time.
	UnixNano int64 `json:"unix_nano"`
	// Session is the serving session the fault quarantined.
	Session string `json:"session"`
	// Signature is the dedup key.
	Signature FaultSignature `json:"signature"`
	// Kind, Access, Ptr and Size copy the fault's non-signature detail.
	Kind   string `json:"kind"`
	Access string `json:"access"`
	Ptr    string `json:"ptr"`
	Size   int    `json:"size"`
	// Report is the rendered logcat-style tombstone.
	Report string `json:"report,omitempty"`
}

// SignatureCount is one dedup bucket in a telemetry snapshot.
type SignatureCount struct {
	Signature FaultSignature `json:"signature"`
	Count     uint64         `json:"count"`
	FirstSeq  uint64         `json:"first_seq"`
	LastSeq   uint64         `json:"last_seq"`
}

// latencyBucketsUS are the upper bounds (µs) of the latency histogram; the
// final implicit bucket is +inf.
var latencyBucketsUS = []uint64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// LatencySummary aggregates request latencies.
type LatencySummary struct {
	Count uint64 `json:"count"`
	SumNS uint64 `json:"sum_ns"`
	MaxNS uint64 `json:"max_ns"`
	// BucketsUS maps each latencyBucketsUS bound (plus "+inf" at the end)
	// to a cumulative-free count of requests that landed under it.
	BucketsUS []uint64 `json:"buckets_us"`
}

// SpanStat aggregates one lifecycle phase's timings across requests, built
// from the per-request exec.Context span recorders.
type SpanStat struct {
	Phase string `json:"phase"`
	Count uint64 `json:"count"`
	SumNS uint64 `json:"sum_ns"`
	MaxNS uint64 `json:"max_ns"`
}

// TagTableStats is the hierarchical tag-storage slice of a telemetry
// snapshot, pulled live from the pool's per-session spaces (internal/mem's
// two-level tag table). The *_total fields are monotonic across session
// retirement; the byte fields are gauges over currently live sessions.
type TagTableStats struct {
	// TagPagesMaterialized counts copy-on-tag page materializations;
	// TagPagesUniform counts full-page retags satisfied by a canonical
	// uniform-page swap; TagZeroDedupHits counts pages deduplicated against
	// the shared zero page (fresh mappings plus full-page tag clears).
	TagPagesMaterialized uint64 `json:"tag_pages_materialized_total"`
	TagPagesUniform      uint64 `json:"tag_pages_uniform_total"`
	TagZeroDedupHits     uint64 `json:"tag_zero_dedup_hits_total"`
	// TagDirsMaterialized counts lazily allocated page-pointer directories
	// (a mapping whose tags are never touched allocates no directory at
	// all); TagDirBytes is the directory storage live sessions pay.
	TagDirsMaterialized uint64 `json:"tag_dirs_materialized_total"`
	TagDirBytes         uint64 `json:"tag_dir_bytes"`
	// TagBytesResident is the tag storage live sessions actually pay
	// (materialized pages + directories); TagBytesFlatEquiv is what the
	// pre-hierarchical flat array would pay for the same mappings. Their
	// ratio is the footprint reduction the two-level table buys.
	TagBytesResident  uint64 `json:"tag_bytes_resident"`
	TagBytesFlatEquiv uint64 `json:"tag_bytes_flat_equiv"`
}

// probeBucketBounds are the upper bounds of the probes-to-detect histogram
// (the final implicit bucket is +inf). Powers of two because the analytic
// detect-within-k curve 1-(1/16)^k is the reference the campaign gates
// against at the same points.
var probeBucketBounds = []int{1, 2, 4, 8, 16}

// AttackSchemeStat is one protection scheme's adversarial scorecard.
type AttackSchemeStat struct {
	Scheme     string `json:"scheme"`
	Probes     uint64 `json:"probes"`
	Detections uint64 `json:"detections"`
	// DetectionProbability is Detections/Probes — per-probe, so it is
	// directly comparable to the analytic 15/16 brute-force model.
	DetectionProbability float64 `json:"detection_probability"`
}

// AttackTelemetry is the adversarial slice of a snapshot: every attack
// probe served, how many the scheme detected, the per-scheme detection
// probability, and the probes/time-to-detect histograms.
type AttackTelemetry struct {
	AttackProbesTotal uint64             `json:"attack_probes_total"`
	DetectionsTotal   uint64             `json:"detections_total"`
	AttackSchemes     []AttackSchemeStat `json:"attack_schemes,omitempty"`
	// ProbesToDetectBuckets counts detections by how many probes the
	// attacker got in before the verdict, under probeBucketBounds (+inf
	// last); TimeToDetectBucketsUS is the same by wall clock, under
	// latencyBucketsUS.
	ProbesToDetectBuckets []uint64 `json:"probes_to_detect_buckets,omitempty"`
	TimeToDetectBucketsUS []uint64 `json:"time_to_detect_buckets_us,omitempty"`
}

// TelemetrySnapshot is the /metrics payload.
type TelemetrySnapshot struct {
	RequestsTotal       uint64 `json:"requests_total"`
	FaultsTotal         uint64 `json:"faults_total"`
	ErrorsTotal         uint64 `json:"errors_total"`
	ScreenedTotal       uint64 `json:"screened_total"`
	ScreenRejectedTotal uint64 `json:"screen_rejected_total"`
	ScreenCacheHits     uint64 `json:"screen_cache_hits"`
	// Abort counters: requests ended by client cancellation, by the per-run
	// deadline, and by interpreter fuel exhaustion. Disjoint from
	// FaultsTotal — an abort is a policy cutoff, not a memory fault.
	CanceledTotal         uint64 `json:"canceled_total"`
	DeadlineExceededTotal uint64 `json:"deadline_exceeded_total"`
	StepsExceededTotal    uint64 `json:"steps_exceeded_total"`
	// Elision counters: the total number of statically proven guard-free
	// sites bound into served runs, and how many proof-carrying runs fell
	// back to checked access (digest mismatch, remap, release retirement).
	ElidedSitesTotal        uint64 `json:"elided_sites_total"`
	ElisionInvalidatedTotal uint64 `json:"elision_invalidated_total"`
	// Temporal-screening counters: screened programs the temporal effect
	// domain flagged with at least one exposed window, the per-class
	// breakdown (set semantics: one per class present in the verdict), and
	// how many admissions the -temporal-policy rejected outright.
	TemporalFlaggedTotal  uint64 `json:"temporal_flagged_total"`
	TemporalWindowRisk    uint64 `json:"temporal_window_risk_total"`
	TemporalBlindSpot     uint64 `json:"temporal_guardedcopy_blindspot_total"`
	TemporalScanRace      uint64 `json:"temporal_scan_race_total"`
	TemporalRejectedTotal uint64 `json:"temporal_rejected_total"`
	// TagTableStats surfaces the hierarchical tag-storage counters when a
	// provider is wired (SetTagStatsProvider); flat zeros otherwise.
	TagTableStats
	// AttackTelemetry surfaces the adversarial counters (ObserveAttackProbe).
	AttackTelemetry
	UniqueFaultSignatures int              `json:"unique_fault_signatures"`
	DroppedFaultRecords   uint64           `json:"dropped_fault_records"`
	Latency               LatencySummary   `json:"latency"`
	Spans                 []SpanStat       `json:"request_spans,omitempty"`
	Signatures            []SignatureCount `json:"fault_signatures,omitempty"`
	Recent                []FaultRecord    `json:"recent_faults,omitempty"`
}

// DefaultSinkCapacity bounds the fault ring when NewSink is given zero.
const DefaultSinkCapacity = 256

// Sink accumulates serving telemetry. All methods are safe for concurrent
// use.
type Sink struct {
	mu sync.Mutex

	// ring holds the most recent fault records; seq counts all of them ever
	// recorded, so seq - len(ring) records have been dropped.
	capacity int
	ring     []FaultRecord
	seq      uint64

	sigs map[FaultSignature]*SignatureCount

	requests, faults, errors uint64
	latency                  LatencySummary

	// Admission-screening counters: every inline program screened by the
	// server, how many were rejected pre-execution, and how many verdicts
	// came from the screen cache.
	screened, screenRejected, screenCacheHits uint64

	// aborts counts requests cut short, indexed by exec.Abort; spanStats
	// aggregates per-phase request timings keyed by phase name.
	aborts    [4]uint64
	spanStats map[string]*SpanStat

	// Elision counters: proven guard-free sites bound into runs, and runs
	// whose proofs were invalidated back to checked access.
	elidedSites, elisionInvalidated uint64

	// Temporal-screening counters: verdicts flagged by the temporal effect
	// domain, per-class breakdown, and policy rejections.
	temporalFlagged, temporalRejected uint64
	temporalByClass                   map[string]uint64

	// Adversarial counters: attack probes served, detections, per-scheme
	// scorecards, and the probes/time-to-detect histograms.
	attackProbes, detections uint64
	attackSchemes            map[string]*AttackSchemeStat
	probesToDetect           []uint64
	timeToDetectUS           []uint64

	// tagStats, when set, supplies the hierarchical tag-storage gauges for
	// snapshots. The sink pulls rather than being pushed because resident
	// bytes are a live property of the pool's session spaces, not an event
	// stream.
	tagStats func() TagTableStats
}

// NewSink creates a sink whose fault ring keeps at most capacity records
// (DefaultSinkCapacity when zero).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkCapacity
	}
	return &Sink{
		capacity:      capacity,
		sigs:          make(map[FaultSignature]*SignatureCount),
		spanStats:     make(map[string]*SpanStat),
		attackSchemes: make(map[string]*AttackSchemeStat),
	}
}

// ObserveAttackProbe records one served attack probe against the named
// scheme: probes is how many forged accesses the attacker issued, detected
// whether the scheme caught it, and d the wall clock from first probe to
// verdict. Detections feed the probes-to-detect and time-to-detect
// histograms; undetected probes only move the totals (and thus the
// per-scheme detection probability down).
func (s *Sink) ObserveAttackProbe(scheme string, probes int, detected bool, d time.Duration) {
	if probes <= 0 {
		probes = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attackProbes += uint64(probes)
	sc, ok := s.attackSchemes[scheme]
	if !ok {
		sc = &AttackSchemeStat{Scheme: scheme}
		s.attackSchemes[scheme] = sc
	}
	sc.Probes += uint64(probes)
	if !detected {
		return
	}
	s.detections++
	sc.Detections++
	if s.probesToDetect == nil {
		s.probesToDetect = make([]uint64, len(probeBucketBounds)+1)
		s.timeToDetectUS = make([]uint64, len(latencyBucketsUS)+1)
	}
	idx := len(probeBucketBounds)
	for i, bound := range probeBucketBounds {
		if probes <= bound {
			idx = i
			break
		}
	}
	s.probesToDetect[idx]++
	us := uint64(d.Nanoseconds()) / 1000
	idx = len(latencyBucketsUS)
	for i, bound := range latencyBucketsUS {
		if us <= bound {
			idx = i
			break
		}
	}
	s.timeToDetectUS[idx]++
}

// ObserveAbort records why a request was cut short; AbortNone is a no-op so
// callers can pass every classification unconditionally.
func (s *Sink) ObserveAbort(a exec.Abort) {
	if a == exec.AbortNone {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(a) < len(s.aborts) {
		s.aborts[a]++
	}
}

// ObserveSpans folds one request's completed lifecycle spans into the
// per-phase aggregates.
func (s *Sink) ObserveSpans(spans []exec.Span) {
	if len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range spans {
		st, ok := s.spanStats[sp.Phase]
		if !ok {
			st = &SpanStat{Phase: sp.Phase}
			s.spanStats[sp.Phase] = st
		}
		ns := uint64(sp.DurationNS)
		st.Count++
		st.SumNS += ns
		if ns > st.MaxNS {
			st.MaxNS = ns
		}
	}
}

// ObserveRequest records one completed request: its wall-clock duration and
// whether it ended in an MTE fault or a non-fault error.
func (s *Sink) ObserveRequest(d time.Duration, faulted, failed bool) {
	ns := uint64(d.Nanoseconds())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if faulted {
		s.faults++
	}
	if failed {
		s.errors++
	}
	s.latency.Count++
	s.latency.SumNS += ns
	if ns > s.latency.MaxNS {
		s.latency.MaxNS = ns
	}
	if s.latency.BucketsUS == nil {
		s.latency.BucketsUS = make([]uint64, len(latencyBucketsUS)+1)
	}
	us := ns / 1000
	idx := len(latencyBucketsUS) // +inf
	for i, bound := range latencyBucketsUS {
		if us <= bound {
			idx = i
			break
		}
	}
	s.latency.BucketsUS[idx]++
}

// ObserveScreen records one static admission screening of an inline
// program: whether the program was rejected pre-execution and whether the
// verdict was served from the screen cache. Rejected screenings never reach
// ObserveRequest — screening is admission control, not request execution.
func (s *Sink) ObserveScreen(rejected, cacheHit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.screened++
	if rejected {
		s.screenRejected++
	}
	if cacheHit {
		s.screenCacheHits++
	}
}

// ObserveTemporal records one screened verdict the temporal effect domain
// flagged: classes is the set of exposure classes present (duplicates are
// collapsed by the caller passing distinct classes, or tolerated here by set
// semantics), rejected whether the admission policy 422-rejected the
// program. A verdict with no findings never reaches here.
func (s *Sink) ObserveTemporal(classes []string, rejected bool) {
	if len(classes) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.temporalFlagged++
	if s.temporalByClass == nil {
		s.temporalByClass = make(map[string]uint64)
	}
	seen := make(map[string]bool, len(classes))
	for _, c := range classes {
		if !seen[c] {
			seen[c] = true
			s.temporalByClass[c]++
		}
	}
	if rejected {
		s.temporalRejected++
	}
}

// ObserveElision records one proof-carrying run: how many proven guard-free
// sites its elision mask bound, and whether the proofs were invalidated back
// to checked access (bind-time digest mismatch, remap between prime and arm,
// or a release retiring the facts mid-call). Runs with no mask bound never
// reach here.
func (s *Sink) ObserveElision(sites uint64, invalidated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.elidedSites += sites
	if invalidated {
		s.elisionInvalidated++
	}
}

// SetTagStatsProvider wires the callback Snapshot uses to populate the
// tag-storage fields — typically the pool's TagStats aggregation. The
// provider is invoked outside the sink lock (it takes the pool's own locks),
// so it must not call back into the sink.
func (s *Sink) SetTagStatsProvider(fn func() TagTableStats) {
	s.mu.Lock()
	s.tagStats = fn
	s.mu.Unlock()
}

// RecordFault folds a fault into the ring and the dedup table, returning the
// stored record (with its sequence number) and whether its signature was new.
func (s *Sink) RecordFault(session, workload string, f *mte.Fault) (FaultRecord, bool) {
	sig := SignatureOf(f, workload)
	// Tag mismatches detected asynchronously carry the Linux SEGV_MTEAERR
	// signal code, matching FormatFault's tombstone rendering.
	kind := f.Kind.String()
	if f.Kind == mte.FaultTagMismatch && f.Async {
		kind = "SEGV_MTEAERR"
	}
	rec := FaultRecord{
		UnixNano:  time.Now().UnixNano(),
		Session:   session,
		Signature: sig,
		Kind:      kind,
		Access:    f.Access.String(),
		Ptr:       f.Ptr.String(),
		Size:      f.Size,
		Report:    FormatFault(f),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rec.Seq = s.seq
	if len(s.ring) == s.capacity {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = rec
	} else {
		s.ring = append(s.ring, rec)
	}
	sc, seen := s.sigs[sig]
	if !seen {
		sc = &SignatureCount{Signature: sig, FirstSeq: rec.Seq}
		s.sigs[sig] = sc
	}
	sc.Count++
	sc.LastSeq = rec.Seq
	return rec, !seen
}

// Snapshot returns a consistent copy of all counters, the dedup table
// (most-hit signatures first) and the retained fault records (oldest first).
func (s *Sink) Snapshot() TelemetrySnapshot {
	// Pull the tag-storage gauges before taking the sink lock: the provider
	// acquires the pool's locks, and keeping the two lock domains disjoint
	// rules out ordering inversions.
	s.mu.Lock()
	tagFn := s.tagStats
	s.mu.Unlock()
	var tags TagTableStats
	if tagFn != nil {
		tags = tagFn()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := TelemetrySnapshot{
		TagTableStats:           tags,
		RequestsTotal:           s.requests,
		FaultsTotal:             s.faults,
		ErrorsTotal:             s.errors,
		ScreenedTotal:           s.screened,
		ScreenRejectedTotal:     s.screenRejected,
		ScreenCacheHits:         s.screenCacheHits,
		CanceledTotal:           s.aborts[exec.AbortCanceled],
		DeadlineExceededTotal:   s.aborts[exec.AbortDeadline],
		StepsExceededTotal:      s.aborts[exec.AbortSteps],
		ElidedSitesTotal:        s.elidedSites,
		ElisionInvalidatedTotal: s.elisionInvalidated,
		TemporalFlaggedTotal:    s.temporalFlagged,
		TemporalWindowRisk:      s.temporalByClass["window-risk"],
		TemporalBlindSpot:       s.temporalByClass["guardedcopy-blindspot"],
		TemporalScanRace:        s.temporalByClass["scan-race"],
		TemporalRejectedTotal:   s.temporalRejected,
		UniqueFaultSignatures:   len(s.sigs),
		DroppedFaultRecords:     s.seq - uint64(len(s.ring)),
		Latency:                 s.latency,
	}
	snap.Latency.BucketsUS = append([]uint64(nil), s.latency.BucketsUS...)
	snap.AttackProbesTotal = s.attackProbes
	snap.DetectionsTotal = s.detections
	snap.ProbesToDetectBuckets = append([]uint64(nil), s.probesToDetect...)
	snap.TimeToDetectBucketsUS = append([]uint64(nil), s.timeToDetectUS...)
	for _, sc := range s.attackSchemes {
		c := *sc
		if c.Probes > 0 {
			c.DetectionProbability = float64(c.Detections) / float64(c.Probes)
		}
		snap.AttackSchemes = append(snap.AttackSchemes, c)
	}
	sort.Slice(snap.AttackSchemes, func(i, j int) bool {
		return snap.AttackSchemes[i].Scheme < snap.AttackSchemes[j].Scheme
	})
	snap.Recent = append([]FaultRecord(nil), s.ring...)
	for _, st := range s.spanStats {
		snap.Spans = append(snap.Spans, *st)
	}
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Phase < snap.Spans[j].Phase })
	for _, sc := range s.sigs {
		snap.Signatures = append(snap.Signatures, *sc)
	}
	sort.Slice(snap.Signatures, func(i, j int) bool {
		a, b := snap.Signatures[i], snap.Signatures[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.FirstSeq < b.FirstSeq
	})
	return snap
}
