// Package report renders detection results as Android logcat-style crash
// reports, so the locality comparison of the paper's Figure 4 — *where*
// each scheme reports an error relative to where the bad access happened —
// is directly observable in this reproduction's output.
package report

import (
	"fmt"
	"strings"

	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/mte"
)

// Locality classifies where a scheme reported the error relative to the
// faulting access.
type Locality string

const (
	// AtFaultingInstruction: the report points at the exact bad access
	// (MTE synchronous mode, Figure 4b).
	AtFaultingInstruction Locality = "at the faulting instruction"
	// AtRelease: the report appears when the JNI release interface runs
	// (guarded copy, Figure 4a).
	AtRelease Locality = "at the JNI release interface (abort)"
	// AtNextSyscall: the report is deferred to the next syscall or context
	// switch (MTE asynchronous mode, Figure 4c).
	AtNextSyscall Locality = "at the next syscall/context switch"
	// NotDetected: the scheme missed the error entirely.
	NotDetected Locality = "not detected"
)

// Detection is one scheme's verdict on one fault-injection scenario.
type Detection struct {
	// Scheme is the display name ("No protection", "MTE4JNI+Sync", ...).
	Scheme string
	// Detected says whether the scheme noticed the violation at all.
	Detected bool
	// Where classifies the report site.
	Where Locality
	// DetectsReads is true if this detection was (or could have been) of a
	// read access — guarded copy structurally cannot set this.
	DetectsReads bool
	// Report is the rendered logcat-style crash text, empty if undetected.
	Report string
}

// fingerprint is the fake build fingerprint printed in crash headers.
const fingerprint = "oppo/find-n2-flip/sim:14/MTE4JNI-REPRO/1:user/release-keys"

// header renders the common tombstone preamble.
func header(thread, signal, code, faultAddr string) string {
	var b strings.Builder
	b.WriteString("*** *** *** *** *** *** *** *** *** *** *** *** *** *** *** ***\n")
	fmt.Fprintf(&b, "Build fingerprint: '%s'\n", fingerprint)
	fmt.Fprintf(&b, "pid: 4242, tid: 4243, name: %s  >>> com.example.app <<<\n", thread)
	fmt.Fprintf(&b, "signal %s, code %s, fault addr %s\n", signal, code, faultAddr)
	return b.String()
}

// backtrace renders "#NN pc" lines from innermost-first frames.
func backtrace(frames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d total frames\nbacktrace:\n", len(frames))
	for i, f := range frames {
		fmt.Fprintf(&b, "      #%02d pc %016x  %s\n", i, 0x5c084+i*0x1000, f)
	}
	return b.String()
}

// FormatFault renders an MTE fault record as a tombstone. Synchronous
// faults carry SEGV_MTESERR; asynchronous ones SEGV_MTEAERR, matching the
// Linux signal codes.
func FormatFault(f *mte.Fault) string {
	code := "9 (SEGV_MTESERR)"
	if f.Async {
		code = "8 (SEGV_MTEAERR)"
	}
	if f.Kind == mte.FaultUnmapped {
		code = "1 (SEGV_MAPERR)"
	}
	var b strings.Builder
	b.WriteString(header(f.Thread, "11 (SIGSEGV)", code, f.Ptr.String()))
	fmt.Fprintf(&b, "MTE: %s of %d bytes, pointer tag %s, memory tag %s\n",
		f.Access, f.Size, f.PtrTag, f.MemTag)
	if f.MemTag == mte.PoisonTag {
		b.WriteString("Note: the memory tag is the release-poison value; this access is a\n" +
			"use of memory after its JNI release (use-after-release).\n")
	}
	if f.Async {
		b.WriteString("Note: fault was detected asynchronously; the backtrace shows the\n" +
			"synchronization point, not the faulting access.\n")
	}
	b.WriteString(backtrace(f.Backtrace))
	return b.String()
}

// FormatViolation renders a guarded-copy red-zone violation as the abort
// tombstone ART produces: the top frames are the abort path inside the
// runtime, far from the faulting store.
func FormatViolation(v *guardedcopy.Violation) string {
	var b strings.Builder
	b.WriteString(header(v.Thread, "6 (SIGABRT)", "-1 (SI_QUEUE)", "--------"))
	fmt.Fprintf(&b, "Abort message: 'JNI DETECTED ERROR IN APPLICATION: %s'\n", v.Error())
	b.WriteString(backtrace(v.Backtrace))
	return b.String()
}

// FromFault builds a Detection from an MTE fault under the given display
// name, classifying its locality from the Async flag.
func FromFault(scheme string, f *mte.Fault) Detection {
	if f == nil {
		return Detection{Scheme: scheme, Detected: false, Where: NotDetected}
	}
	where := AtFaultingInstruction
	if f.Async {
		where = AtNextSyscall
	}
	return Detection{
		Scheme:       scheme,
		Detected:     true,
		Where:        where,
		DetectsReads: f.Access == mte.AccessLoad || !f.Async, // sync MTE checks loads too
		Report:       FormatFault(f),
	}
}

// FromViolation builds a Detection from a guarded-copy violation.
func FromViolation(scheme string, v *guardedcopy.Violation) Detection {
	if v == nil {
		return Detection{Scheme: scheme, Detected: false, Where: NotDetected}
	}
	return Detection{
		Scheme:   scheme,
		Detected: true,
		Where:    AtRelease,
		Report:   FormatViolation(v),
	}
}

// Undetected builds the no-detection verdict for a scheme.
func Undetected(scheme string) Detection {
	return Detection{Scheme: scheme, Detected: false, Where: NotDetected}
}
