package report

import (
	"strings"
	"testing"

	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/mte"
)

func sampleFault(async bool) *mte.Fault {
	return &mte.Fault{
		Kind:   mte.FaultTagMismatch,
		Access: mte.AccessStore,
		Ptr:    mte.MakePtr(0x7000_0000_0154, 0xA),
		Size:   4,
		PtrTag: 0xA,
		MemTag: 0x0,
		Async:  async,
		PC:     "test_ofb+124",
		Backtrace: []string{
			"test_ofb+124 (libmtetestoutofbounds.so)",
			"Java_com_example_MainActivity_mteTest+40 (libmtetestoutofbounds.so)",
		},
		Thread: "native-0",
	}
}

func TestFormatFaultSync(t *testing.T) {
	out := FormatFault(sampleFault(false))
	for _, want := range []string{
		"signal 11 (SIGSEGV)", "SEGV_MTESERR", "0x0a00700000000154",
		"pointer tag 0xa, memory tag 0x0",
		"2 total frames", "#00 pc", "test_ofb+124", "#01 pc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sync report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "asynchronously") {
		t.Error("sync report carries the async disclaimer")
	}
}

func TestFormatFaultAsync(t *testing.T) {
	out := FormatFault(sampleFault(true))
	for _, want := range []string{"SEGV_MTEAERR", "asynchronously"} {
		if !strings.Contains(out, want) {
			t.Errorf("async report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFaultUnmapped(t *testing.T) {
	f := sampleFault(false)
	f.Kind = mte.FaultUnmapped
	if out := FormatFault(f); !strings.Contains(out, "SEGV_MAPERR") {
		t.Errorf("unmapped report:\n%s", out)
	}
}

func TestFormatViolation(t *testing.T) {
	v := &guardedcopy.Violation{
		Object:    "int[]@0x70000000(len=18)",
		Iface:     "ReleasePrimitiveArrayCritical",
		Offset:    84,
		Expected:  'J',
		Got:       0xAD,
		Backtrace: []string{"abort+180 (libc.so)", "art::Runtime::Abort(char const*)+1536 (libart.so)"},
		Thread:    "native-0",
	}
	out := FormatViolation(v)
	for _, want := range []string{
		"signal 6 (SIGABRT)", "JNI DETECTED ERROR IN APPLICATION",
		"offset 84", "abort+180",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("violation report missing %q:\n%s", want, out)
		}
	}
}

func TestDetectionConstructors(t *testing.T) {
	if d := FromFault("X", nil); d.Detected || d.Where != NotDetected {
		t.Fatalf("nil fault detection: %+v", d)
	}
	if d := FromFault("X", sampleFault(false)); !d.Detected || d.Where != AtFaultingInstruction {
		t.Fatalf("sync detection: %+v", d)
	}
	if d := FromFault("X", sampleFault(true)); d.Where != AtNextSyscall {
		t.Fatalf("async detection: %+v", d)
	}
	if d := FromViolation("X", nil); d.Detected {
		t.Fatalf("nil violation detection: %+v", d)
	}
	if d := FromViolation("X", &guardedcopy.Violation{}); !d.Detected || d.Where != AtRelease || d.DetectsReads {
		t.Fatalf("violation detection: %+v", d)
	}
	if d := Undetected("X"); d.Detected || d.Scheme != "X" {
		t.Fatalf("undetected: %+v", d)
	}
}
