package mem

import (
	"encoding/binary"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// Guard-free access variants for proof-carrying tag-check elision.
//
// When the static screener (internal/analysis) proves a native call site can
// never raise a tag-check fault, the interpreter arms the env's elision gate
// and accesses flow through these variants instead of the checked ones. They
// skip exactly one thing: the tag compare. Address resolution, the unmapped
// fault, and the protection fault are all retained — those guards protect
// the simulator itself (a remap or a stray pointer must still fail cleanly),
// and keeping them means an invalidated proof can only ever lose the
// *elision*, never memory safety.
//
// Reachability is part of the soundness story: tools/lintrepo restricts
// callers of the *Unguarded family to the elision tier (mem itself, the
// jni gate, the fuzz oracle, and the root bench package), and inside
// internal/jni every call must sit behind the env's elided() gate.

// accessUnguarded is checkAccess minus the tag compare: resolve the mapping
// through the TLB and enforce mapping + protection, then hand the mapping
// back without looking at a single tag byte.
//
//mte4jni:fastpath
func (s *Space) accessUnguarded(ctx *cpu.Context, p mte.Ptr, size int, kind mte.AccessKind) (*Mapping, *mte.Fault) {
	addr := p.Addr()
	m, _ := s.lookup(ctx, addr, size)
	if m == nil {
		return nil, s.newFault(ctx, mte.FaultUnmapped, kind, p, size, p.Tag(), 0)
	}
	var need Prot = ProtRead
	if kind == mte.AccessStore {
		need = ProtWrite
	}
	if m.prot&need == 0 {
		return nil, s.newFault(ctx, mte.FaultProtection, kind, p, size, p.Tag(), 0)
	}
	return m, nil
}

// Load8Unguarded reads one byte with the tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Load8Unguarded(ctx *cpu.Context, p mte.Ptr) (uint8, *mte.Fault) {
	m, f := s.accessUnguarded(ctx, p, 1, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return m.data[p.Addr()-m.base], nil
}

// Store8Unguarded writes one byte with the tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Store8Unguarded(ctx *cpu.Context, p mte.Ptr, v uint8) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, 1, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	m.data[p.Addr()-m.base] = v
	m.storeUnlock(locked)
	return nil
}

// Load16Unguarded reads a little-endian 16-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Load16Unguarded(ctx *cpu.Context, p mte.Ptr) (uint16, *mte.Fault) {
	m, f := s.accessUnguarded(ctx, p, 2, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint16(m.data[p.Addr()-m.base:]), nil
}

// Store16Unguarded writes a little-endian 16-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Store16Unguarded(ctx *cpu.Context, p mte.Ptr, v uint16) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, 2, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint16(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// Load32Unguarded reads a little-endian 32-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Load32Unguarded(ctx *cpu.Context, p mte.Ptr) (uint32, *mte.Fault) {
	m, f := s.accessUnguarded(ctx, p, 4, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint32(m.data[p.Addr()-m.base:]), nil
}

// Store32Unguarded writes a little-endian 32-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Store32Unguarded(ctx *cpu.Context, p mte.Ptr, v uint32) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, 4, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint32(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// Load64Unguarded reads a little-endian 64-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Load64Unguarded(ctx *cpu.Context, p mte.Ptr) (uint64, *mte.Fault) {
	m, f := s.accessUnguarded(ctx, p, 8, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint64(m.data[p.Addr()-m.base:]), nil
}

// Store64Unguarded writes a little-endian 64-bit value, tag compare elided.
//
//mte4jni:fastpath
func (s *Space) Store64Unguarded(ctx *cpu.Context, p mte.Ptr, v uint64) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, 8, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint64(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// CopyOutUnguarded bulk-reads len(dst) bytes with the per-granule SWAR tag
// sweep elided — the span variants are where elision buys the most, since a
// checked copy pays one tag compare per covered granule.
//
//mte4jni:fastpath
func (s *Space) CopyOutUnguarded(ctx *cpu.Context, p mte.Ptr, dst []byte) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, len(dst), mte.AccessLoad)
	if f != nil {
		return f
	}
	if len(dst) == 0 {
		return nil
	}
	copy(dst, m.data[p.Addr()-m.base:])
	return nil
}

// CopyInUnguarded bulk-writes src with the SWAR tag sweep elided.
//
//mte4jni:fastpath
func (s *Space) CopyInUnguarded(ctx *cpu.Context, p mte.Ptr, src []byte) *mte.Fault {
	m, f := s.accessUnguarded(ctx, p, len(src), mte.AccessStore)
	if f != nil {
		return f
	}
	if len(src) == 0 {
		return nil
	}
	locked := m.storeLock()
	copy(m.data[p.Addr()-m.base:], src)
	m.storeUnlock(locked)
	return nil
}

// MoveUnguarded copies n bytes from src to dst with both sides' tag sweeps
// elided. The memmove overlap guarantee and the source-before-destination
// check order of Move are preserved.
//
//mte4jni:fastpath
func (s *Space) MoveUnguarded(ctx *cpu.Context, dst, src mte.Ptr, n int) *mte.Fault {
	sm, f := s.accessUnguarded(ctx, src, n, mte.AccessLoad)
	if f != nil {
		return f
	}
	dm, f := s.accessUnguarded(ctx, dst, n, mte.AccessStore)
	if f != nil {
		return f
	}
	if n == 0 {
		return nil
	}
	locked := dm.storeLock()
	copy(dm.data[dst.Addr()-dm.base:dst.Addr()-dm.base+mte.Addr(n)], sm.data[src.Addr()-sm.base:])
	dm.storeUnlock(locked)
	return nil
}
