package mem

import (
	"testing"

	"mte4jni/internal/mte"
)

// tagPageSpan is the data span one tag page covers (16 KiB).
const tagPageSpan = mte.Addr(tagPageGranules) * mte.GranuleSize

// mapTagged creates a fresh space with one n-byte MTE mapping.
func mapTagged(t *testing.T, n uint64) (*Space, *Mapping) {
	t.Helper()
	s := NewSpace()
	m, err := s.Map("tt", n, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return s, m
}

func TestTagTableFreshMappingIsLazy(t *testing.T) {
	s, m := mapTagged(t, 16*uint64(tagPageSpan)) // 16 tag pages
	st := s.TagStats()
	if st.PagesResident != 0 || st.PagesMaterialized != 0 {
		t.Fatalf("fresh mapping materialized pages: %+v", st)
	}
	// The page-pointer directory is deferred until the first tag touch: a
	// mapped-but-untagged region pays zero tag footprint, directory
	// included, and records no dedup hits yet.
	if st.DirsMaterialized != 0 || st.DirBytes != 0 || st.ZeroDedupHits != 0 {
		t.Fatalf("fresh mapping paid directory footprint: %+v", st)
	}
	if got := s.TagBytesResident(); got != 0 {
		t.Fatalf("TagBytesResident = %d, want 0 for untagged mapping", got)
	}
	// Flat equivalent: one byte per granule.
	if want := 16 * uint64(tagPageSpan) / mte.GranuleSize; st.BytesFlatEquiv != want {
		t.Fatalf("BytesFlatEquiv = %d, want %d", st.BytesFlatEquiv, want)
	}
	// Reads through the nil directory see tag 0 everywhere and stay lazy.
	for a := m.Base(); a < m.End(); a += tagPageSpan {
		if tag := m.TagAt(a); tag != 0 {
			t.Fatalf("fresh granule at %v tagged %v", a, tag)
		}
	}
	// Painting tag 0 over a virgin mapping is a no-op that must not
	// materialize the directory either.
	if _, err := m.ZeroTagRange(m.Base(), m.End()); err != nil {
		t.Fatalf("ZeroTagRange: %v", err)
	}
	if st = s.TagStats(); st.DirsMaterialized != 0 || st.DirBytes != 0 {
		t.Fatalf("zero paint materialized the directory: %+v", st)
	}
	// The first non-zero touch materializes exactly one directory and takes
	// over the fresh-entry dedup accounting the eager design recorded at map
	// time: every entry starts shared with the canonical zero page.
	if _, err := m.SetTagRange(m.Base(), m.Base()+tagPageSpan, 0x5); err != nil {
		t.Fatalf("SetTagRange: %v", err)
	}
	st = s.TagStats()
	if st.DirsMaterialized != 1 {
		t.Fatalf("DirsMaterialized = %d, want 1", st.DirsMaterialized)
	}
	if st.ZeroDedupHits != 16 {
		t.Fatalf("ZeroDedupHits = %d, want 16 (one per tag page at materialization)", st.ZeroDedupHits)
	}
	// Directory entries plus the one 32-page private-bit word.
	if want := uint64(16*tagDirEntryBytes + 4); st.DirBytes != want {
		t.Fatalf("DirBytes = %d, want %d", st.DirBytes, want)
	}
}

func TestTagTablePartialRangeMaterializes(t *testing.T) {
	s, m := mapTagged(t, 4*uint64(tagPageSpan))
	// Tag 4 granules in the middle of page 1: materializes exactly one page.
	begin := m.Base() + tagPageSpan + 3*mte.GranuleSize
	end := begin + 4*mte.GranuleSize
	if _, err := m.SetTagRange(begin, end, 0x7); err != nil {
		t.Fatalf("SetTagRange: %v", err)
	}
	st := s.TagStats()
	if st.PagesMaterialized != 1 || st.PagesResident != 1 {
		t.Fatalf("materialized/resident = %d/%d, want 1/1", st.PagesMaterialized, st.PagesResident)
	}
	if got := m.TagAt(begin); got != 0x7 {
		t.Fatalf("tag at begin = %v, want 7", got)
	}
	if got := m.TagAt(begin - mte.GranuleSize); got != 0 {
		t.Fatalf("granule before range = %v, want background 0", got)
	}
	if got := m.TagAt(end); got != 0 {
		t.Fatalf("granule after range = %v, want background 0", got)
	}
	// Neighbouring pages stay canonical zero.
	if got := m.TagAt(m.Base()); got != 0 {
		t.Fatalf("page 0 disturbed: %v", got)
	}
}

func TestTagTableFullPageBecomesUniform(t *testing.T) {
	s, m := mapTagged(t, 4*uint64(tagPageSpan))
	// Retag pages 1 and 2 entirely: two uniform swaps, nothing materialized.
	if _, err := m.SetTagRange(m.Base()+tagPageSpan, m.Base()+3*tagPageSpan, 0x5); err != nil {
		t.Fatalf("SetTagRange: %v", err)
	}
	st := s.TagStats()
	if st.PagesUniform != 2 {
		t.Fatalf("PagesUniform = %d, want 2", st.PagesUniform)
	}
	if st.PagesMaterialized != 0 || st.PagesResident != 0 {
		t.Fatalf("uniform retag materialized pages: %+v", st)
	}
	for a := m.Base() + tagPageSpan; a < m.Base()+3*tagPageSpan; a += mte.GranuleSize {
		if got := m.TagAt(a); got != 0x5 {
			t.Fatalf("tag at %v = %v, want 5", a, got)
		}
	}
}

func TestTagTableRetagToUniformReleasesPage(t *testing.T) {
	s, m := mapTagged(t, uint64(tagPageSpan))
	// Materialize page 0 with a partial paint, then repaint the whole page:
	// the private page must return to the freelist.
	if _, err := m.SetTagRange(m.Base(), m.Base()+mte.GranuleSize, 0x3); err != nil {
		t.Fatalf("partial SetTagRange: %v", err)
	}
	if st := s.TagStats(); st.PagesResident != 1 {
		t.Fatalf("PagesResident = %d after partial paint, want 1", st.PagesResident)
	}
	if _, err := m.SetTagRange(m.Base(), m.Base()+tagPageSpan, 0x9); err != nil {
		t.Fatalf("uniform SetTagRange: %v", err)
	}
	st := s.TagStats()
	if st.PagesResident != 0 {
		t.Fatalf("PagesResident = %d after uniform repaint, want 0", st.PagesResident)
	}
	if st.FreePages != 1 {
		t.Fatalf("FreePages = %d, want 1 (released private page)", st.FreePages)
	}
	// The next materialization must reuse the freelist page, not allocate.
	// Re-materialize page 0 itself (now uniform 9) with a one-granule paint:
	// the recycled page's background must be 9, not stale bytes from its
	// previous life as the 0x3-painted page.
	if _, err := m.SetTagRange(m.Base(), m.Base()+mte.GranuleSize, 0x2); err != nil {
		t.Fatalf("re-materializing SetTagRange: %v", err)
	}
	st = s.TagStats()
	if st.FreePages != 0 || st.PagesResident != 1 {
		t.Fatalf("freelist reuse: free=%d resident=%d, want 0/1", st.FreePages, st.PagesResident)
	}
	if got := m.TagAt(m.Base() + mte.GranuleSize); got != 0x9 {
		t.Fatalf("recycled page background = %v, want previous uniform 9", got)
	}
	if got := m.TagAt(m.Base()); got != 0x2 {
		t.Fatalf("painted granule = %v, want 2", got)
	}
}

func TestTagTableZeroRetagCountsDedup(t *testing.T) {
	s, m := mapTagged(t, uint64(tagPageSpan))
	if _, err := m.SetTagRange(m.Base(), m.Base()+tagPageSpan, 0x6); err != nil {
		t.Fatalf("SetTagRange: %v", err)
	}
	// Captured after the non-zero retag so the directory-materialization
	// dedup credit (one per fresh entry) is excluded from the delta.
	before := s.TagStats().ZeroDedupHits
	if _, err := m.ZeroTagRange(m.Base(), m.Base()+tagPageSpan); err != nil {
		t.Fatalf("ZeroTagRange: %v", err)
	}
	st := s.TagStats()
	if st.ZeroDedupHits != before+1 {
		t.Fatalf("ZeroDedupHits = %d, want %d (full-page zero retag)", st.ZeroDedupHits, before+1)
	}
	if got := m.TagAt(m.Base()); got != 0 {
		t.Fatalf("tag after zero retag = %v", got)
	}
}

func TestTagTableSpanCrossingPages(t *testing.T) {
	s, m := mapTagged(t, 4*uint64(tagPageSpan))
	// Paint a span from mid-page-0 through mid-page-3: two edge
	// materializations, two uniform swaps for the interior pages.
	begin := m.Base() + tagPageSpan/2
	end := m.Base() + 3*tagPageSpan + tagPageSpan/2
	n, err := m.SetTagRange(begin, end, 0xA)
	if err != nil {
		t.Fatalf("SetTagRange: %v", err)
	}
	if want := int((end - begin) / mte.GranuleSize); n != want {
		t.Fatalf("granules written = %d, want %d", n, want)
	}
	st := s.TagStats()
	if st.PagesMaterialized != 2 {
		t.Fatalf("PagesMaterialized = %d, want 2 (edge pages)", st.PagesMaterialized)
	}
	if st.PagesUniform != 2 {
		t.Fatalf("PagesUniform = %d, want 2 (interior pages)", st.PagesUniform)
	}
	// Boundary granules: inside the span everywhere, background outside.
	for _, a := range []mte.Addr{begin, m.Base() + tagPageSpan, m.Base() + 2*tagPageSpan - mte.GranuleSize, end - mte.GranuleSize} {
		if got := m.TagAt(a); got != 0xA {
			t.Fatalf("tag at %v = %v, want A", a, got)
		}
	}
	for _, a := range []mte.Addr{begin - mte.GranuleSize, end} {
		if got := m.TagAt(a); got != 0 {
			t.Fatalf("tag at %v = %v, want 0", a, got)
		}
	}
}

func TestTagBytesResidentTenXUnderFlat(t *testing.T) {
	// The headline property: a pool-sized mapping with a working set touching
	// a small fraction of its pages pays >=10x less tag storage than the flat
	// array did. 32 MiB heap (the pool default), ~64 KiB of scattered
	// partial-page tagging.
	s, m := mapTagged(t, 32<<20)
	for i := 0; i < 16; i++ {
		base := m.Base() + mte.Addr(i)*2*(1<<20) + 17*mte.GranuleSize
		if _, err := m.SetTagRange(base, base+4*mte.GranuleSize, mte.Tag(i&0xF)); err != nil {
			t.Fatalf("SetTagRange %d: %v", i, err)
		}
	}
	st := s.TagStats()
	if st.BytesFlatEquiv < 10*st.BytesResident {
		t.Fatalf("resident %d vs flat %d: reduction %.1fx < 10x",
			st.BytesResident, st.BytesFlatEquiv, float64(st.BytesFlatEquiv)/float64(st.BytesResident))
	}
}

func TestCanonicalPages(t *testing.T) {
	for b := uint8(0); b < 16; b++ {
		pg := canonical(b)
		if !isCanonical(pg) {
			t.Fatalf("canonical(%d) not recognised as canonical", b)
		}
		for i, got := range pg {
			if got != b {
				t.Fatalf("canonical(%d)[%d] = %d", b, i, got)
			}
		}
	}
	priv := new(tagPage)
	if isCanonical(priv) {
		t.Fatal("private zero page misidentified as canonical")
	}
}
