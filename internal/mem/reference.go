package mem

import (
	"encoding/binary"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// ReferenceEngine is the pre-optimization tag-check engine, kept verbatim as
// a correctness oracle for the fast-path engine in access.go. It resolves
// every access with a linear scan over the mapping snapshot (no TLB) and
// compares tags with a plain byte loop (no SWAR, no single-granule split).
//
// The engines must be behaviourally identical: same fault kind, tags and
// suppression decision for every access, same async latching, same memory
// effects. The differential test in internal/fuzz drives both over
// randomized access streams (sync and async modes, tagged and untagged
// mappings, overlapping Moves, mid-stream Maps) and fails on any
// disagreement. Because it is the simple obviously-correct implementation,
// this file should never be "optimized" — its value is that it does not
// change.
type ReferenceEngine struct {
	s *Space
}

// NewReferenceEngine wraps a Space with the reference (slow, simple) access
// engine. The wrapped Space's own methods remain the fast engine; the two
// share mapping storage, so driving both over one Space is only meaningful
// for read-only comparison — the differential test uses two identically
// populated Spaces instead.
func NewReferenceEngine(s *Space) *ReferenceEngine { return &ReferenceEngine{s: s} }

// resolveLinear is the original Resolve: a linear scan over the snapshot.
func (r *ReferenceEngine) resolveLinear(addr mte.Addr) (*Mapping, bool) {
	for _, m := range *r.s.snapshot.Load() {
		if addr >= m.base && addr < m.End() {
			return m, true
		}
	}
	return nil, false
}

// checkAccess is the original validation algorithm, byte-for-byte: linear
// mapping resolution, then a byte loop comparing the pointer tag against
// every granule the access overlaps per mte.GranuleRange.
func (r *ReferenceEngine) checkAccess(ctx *cpu.Context, p mte.Ptr, size int, kind mte.AccessKind) (*Mapping, *mte.Fault) {
	addr := p.Addr()
	m, ok := r.resolveLinear(addr)
	if !ok || !m.contains(addr, size) {
		return nil, r.s.newFault(ctx, mte.FaultUnmapped, kind, p, size, p.Tag(), 0)
	}
	var need Prot = ProtRead
	if kind == mte.AccessStore {
		need = ProtWrite
	}
	if m.prot&need == 0 {
		return nil, r.s.newFault(ctx, mte.FaultProtection, kind, p, size, p.Tag(), 0)
	}
	if !m.Tagged() || !ctx.Checking() {
		return m, nil
	}
	gb, ge := mte.GranuleRange(addr, addr+mte.Addr(size))
	want := p.Tag()
	// One TagAt per granule — the obviously-correct walk, deliberately
	// blind to how tags are stored (flat array then, hierarchical table
	// now), so it keeps its oracle value across storage rewrites.
	for a := gb; a < ge; a += mte.GranuleSize {
		got := m.TagAt(a)
		if got == want {
			continue
		}
		f := r.s.newFault(ctx, mte.FaultTagMismatch, kind, p, size, p.Tag(), got)
		if ctx.CheckMode() == mte.TCFAsync {
			ctx.LatchAsyncFault(f)
			return m, nil
		}
		return nil, f
	}
	return m, nil
}

// Load8 reads one byte through a reference-checked access.
func (r *ReferenceEngine) Load8(ctx *cpu.Context, p mte.Ptr) (uint8, *mte.Fault) {
	m, f := r.checkAccess(ctx, p, 1, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return m.data[p.Addr()-m.base], nil
}

// Store8 writes one byte through a reference-checked access.
func (r *ReferenceEngine) Store8(ctx *cpu.Context, p mte.Ptr, v uint8) *mte.Fault {
	m, f := r.checkAccess(ctx, p, 1, mte.AccessStore)
	if f != nil {
		return f
	}
	m.data[p.Addr()-m.base] = v
	return nil
}

// Load16 reads a little-endian 16-bit value.
func (r *ReferenceEngine) Load16(ctx *cpu.Context, p mte.Ptr) (uint16, *mte.Fault) {
	m, f := r.checkAccess(ctx, p, 2, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint16(m.data[off:]), nil
}

// Store16 writes a little-endian 16-bit value.
func (r *ReferenceEngine) Store16(ctx *cpu.Context, p mte.Ptr, v uint16) *mte.Fault {
	m, f := r.checkAccess(ctx, p, 2, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint16(m.data[p.Addr()-m.base:], v)
	return nil
}

// Load32 reads a little-endian 32-bit value.
func (r *ReferenceEngine) Load32(ctx *cpu.Context, p mte.Ptr) (uint32, *mte.Fault) {
	m, f := r.checkAccess(ctx, p, 4, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint32(m.data[off:]), nil
}

// Store32 writes a little-endian 32-bit value.
func (r *ReferenceEngine) Store32(ctx *cpu.Context, p mte.Ptr, v uint32) *mte.Fault {
	m, f := r.checkAccess(ctx, p, 4, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint32(m.data[p.Addr()-m.base:], v)
	return nil
}

// Load64 reads a little-endian 64-bit value.
func (r *ReferenceEngine) Load64(ctx *cpu.Context, p mte.Ptr) (uint64, *mte.Fault) {
	m, f := r.checkAccess(ctx, p, 8, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint64(m.data[off:]), nil
}

// Store64 writes a little-endian 64-bit value.
func (r *ReferenceEngine) Store64(ctx *cpu.Context, p mte.Ptr, v uint64) *mte.Fault {
	m, f := r.checkAccess(ctx, p, 8, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint64(m.data[p.Addr()-m.base:], v)
	return nil
}

// CopyOut performs a reference-checked bulk read.
func (r *ReferenceEngine) CopyOut(ctx *cpu.Context, p mte.Ptr, dst []byte) *mte.Fault {
	m, f := r.checkAccess(ctx, p, len(dst), mte.AccessLoad)
	if f != nil {
		return f
	}
	if len(dst) == 0 {
		return nil
	}
	copy(dst, m.data[p.Addr()-m.base:])
	return nil
}

// CopyIn performs a reference-checked bulk write.
func (r *ReferenceEngine) CopyIn(ctx *cpu.Context, p mte.Ptr, src []byte) *mte.Fault {
	m, f := r.checkAccess(ctx, p, len(src), mte.AccessStore)
	if f != nil {
		return f
	}
	if len(src) == 0 {
		return nil
	}
	copy(m.data[p.Addr()-m.base:], src)
	return nil
}

// Move copies n bytes from src to dst, reference-checked on both sides
// (source before destination, like the fast engine).
func (r *ReferenceEngine) Move(ctx *cpu.Context, dst, src mte.Ptr, n int) *mte.Fault {
	sm, f := r.checkAccess(ctx, src, n, mte.AccessLoad)
	if f != nil {
		return f
	}
	dm, f := r.checkAccess(ctx, dst, n, mte.AccessStore)
	if f != nil {
		return f
	}
	if n == 0 {
		return nil
	}
	copy(dm.data[dst.Addr()-dm.base:dst.Addr()-dm.base+mte.Addr(n)], sm.data[src.Addr()-sm.base:])
	return nil
}
