package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// TestResolveMatchesLinearScan cross-checks the binary-search Resolve
// against a straight linear scan over many mappings and probe points,
// including bases, interiors, last bytes, one-past-the-end and guard-gap
// addresses.
func TestResolveMatchesLinearScan(t *testing.T) {
	s := NewSpace()
	for i := 0; i < 20; i++ {
		if _, err := s.Map(fmt.Sprintf("m%d", i), uint64(1+i*3)*4096, ProtRead|ProtWrite); err != nil {
			t.Fatal(err)
		}
	}
	linear := func(addr mte.Addr) (*Mapping, bool) {
		for _, m := range s.Mappings() {
			if addr >= m.Base() && addr < m.End() {
				return m, true
			}
		}
		return nil, false
	}
	var probes []mte.Addr
	for _, m := range s.Mappings() {
		probes = append(probes, m.Base()-1, m.Base(), m.Base()+17, m.End()-1, m.End(), m.End()+guardGap/2)
	}
	probes = append(probes, 0, spaceBase-1, ^mte.Addr(0))
	for _, p := range probes {
		gm, gok := s.Resolve(p)
		wm, wok := linear(p)
		if gm != wm || gok != wok {
			t.Fatalf("Resolve(%v) = (%v,%v), linear scan says (%v,%v)", p, gm, gok, wm, wok)
		}
	}
}

// TestTLBHitsAndEpochFlush exercises the TLB through the public access path:
// repeated loads to one mapping must be TLB hits after the first, and a Map
// call must bump the epoch and flush, after which the new mapping is
// immediately accessible.
func TestTLBHitsAndEpochFlush(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	p := mte.MakePtr(m.Base(), 0)

	for i := 0; i < 10; i++ {
		if _, f := s.Load64(ctx, p); f != nil {
			t.Fatalf("load %d faulted: %v", i, f)
		}
	}
	hits, misses := ctx.TLB().Stats()
	if hits < 9 || misses != 1 {
		t.Fatalf("after 10 loads: hits=%d misses=%d, want 9+ hits and exactly 1 miss", hits, misses)
	}
	if ctx.TLB().Epoch != s.Epoch() {
		t.Fatalf("TLB epoch %d out of step with space epoch %d", ctx.TLB().Epoch, s.Epoch())
	}

	before := s.Epoch()
	m2, err := s.Map("late", 4096, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != before+1 {
		t.Fatalf("Map bumped epoch %d -> %d, want +1", before, s.Epoch())
	}
	// First access after the Map must flush (stale epoch) and still find the
	// brand-new mapping through the refreshed snapshot.
	if _, f := s.Load64(ctx, mte.MakePtr(m2.Base(), 0)); f != nil {
		t.Fatalf("load from freshly mapped region faulted: %v", f)
	}
	if ctx.TLB().Epoch != s.Epoch() {
		t.Fatal("TLB did not adopt the new epoch")
	}
}

// TestTLBInvalidationStress drives the Map-publishes-snapshot-before-epoch
// contract hard: one goroutine keeps creating mappings while eight accessor
// goroutines (each with its own Context, hence its own TLB) hammer loads on
// every mapping published so far. Any unmapped fault on a published mapping
// is a contract violation. Run with -race, this also proves the epoch and
// snapshot handoffs are properly synchronized.
func TestTLBInvalidationStress(t *testing.T) {
	const (
		mappers   = 50
		accessors = 8
	)
	s := NewSpace()
	seed, err := s.Map("seed", 4096, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}

	var published [mappers + 1]atomic.Pointer[Mapping]
	published[0].Store(seed)
	var count atomic.Int64
	count.Store(1)
	var stop atomic.Bool

	var wg sync.WaitGroup
	for a := 0; a < accessors; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := cpu.New(fmt.Sprintf("stress-%d", id), mte.TCFSync)
			ctx.SetTCO(false)
			for i := 0; !stop.Load(); i++ {
				n := count.Load()
				m := published[i%int(n)].Load()
				if _, f := s.Load64(ctx, mte.MakePtr(m.Base(), 0)); f != nil {
					t.Errorf("accessor %d: load from published mapping %q faulted: %v", id, m.Name(), f)
					return
				}
			}
		}(a)
	}

	for i := 1; i <= mappers; i++ {
		m, err := s.Map(fmt.Sprintf("stress-map-%d", i), 4096, ProtRead|ProtWrite)
		if err != nil {
			t.Fatal(err)
		}
		// Map has returned: the mapping must be visible to every thread from
		// this point on. Publish it to the accessors.
		published[i].Store(m)
		count.Store(int64(i + 1))
	}
	stop.Store(true)
	wg.Wait()
}

// TestMoveOverlapIsMemmove locks in Move's memmove semantics: when source
// and destination overlap in either direction, the destination ends up with
// the original source bytes, never a self-clobbered mix.
func TestMoveOverlapIsMemmove(t *testing.T) {
	const n = 64
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)

	fill := func() {
		buf := make([]byte, n+16)
		for i := range buf {
			buf[i] = byte(i)
		}
		if err := m.WriteRaw(m.Base(), buf); err != nil {
			t.Fatal(err)
		}
	}
	readBack := func(off, length int) []byte {
		buf := make([]byte, length)
		if err := m.ReadRaw(m.Base()+mte.Addr(off), buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}

	// Forward overlap: dst 8 bytes above src.
	fill()
	if f := s.Move(ctx, mte.MakePtr(m.Base()+8, 0), mte.MakePtr(m.Base(), 0), n); f != nil {
		t.Fatalf("forward-overlap move faulted: %v", f)
	}
	for i, b := range readBack(8, n) {
		if b != byte(i) {
			t.Fatalf("forward overlap: dst[%d] = %d, want %d (source clobbered mid-copy)", i, b, i)
		}
	}

	// Backward overlap: dst 8 bytes below src.
	fill()
	if f := s.Move(ctx, mte.MakePtr(m.Base(), 0), mte.MakePtr(m.Base()+8, 0), n); f != nil {
		t.Fatalf("backward-overlap move faulted: %v", f)
	}
	for i, b := range readBack(0, n) {
		if b != byte(i+8) {
			t.Fatalf("backward overlap: dst[%d] = %d, want %d", i, b, i+8)
		}
	}
}

// TestMoveChecksSourceBeforeDestination locks in fault ordering: when both
// sides of a Move would fault, sync mode reports the load (source) fault,
// and async mode latches the source fault first with the destination
// mismatch coalesced behind it.
func TestMoveChecksSourceBeforeDestination(t *testing.T) {
	s, m := newTestSpace(t)
	// Tag two disjoint regions so that tag-4 pointers mismatch both.
	if _, err := m.SetTagRange(m.Base(), m.Base()+64, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetTagRange(m.Base()+4096, m.Base()+4096+64, 2); err != nil {
		t.Fatal(err)
	}
	src := mte.MakePtr(m.Base(), 4)
	dst := mte.MakePtr(m.Base()+4096, 4)

	t.Run("sync", func(t *testing.T) {
		ctx := checkingCtx(mte.TCFSync)
		f := s.Move(ctx, dst, src, 64)
		if f == nil {
			t.Fatal("double-mismatch move did not fault")
		}
		if f.Access != mte.AccessLoad || f.Ptr != src || f.MemTag != 1 {
			t.Fatalf("sync move reported %+v, want the source (load, tag 1) fault first", f)
		}
	})

	t.Run("async", func(t *testing.T) {
		ctx := checkingCtx(mte.TCFAsync)
		if f := s.Move(ctx, dst, src, 64); f != nil {
			t.Fatalf("async move returned sync fault: %v", f)
		}
		if got := ctx.AsyncFaultCount(); got != 2 {
			t.Fatalf("async move latched %d faults, want 2 (src then dst)", got)
		}
		f := ctx.TakeAsyncFault("report")
		if f == nil || f.Access != mte.AccessLoad || f.MemTag != 1 {
			t.Fatalf("latched fault = %+v, want the first (source/load, tag 1) mismatch", f)
		}
		// And the copy itself must have proceeded.
		want := make([]byte, 64)
		if err := m.ReadRaw(m.Base(), want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 64)
		if err := m.ReadRaw(m.Base()+4096, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("async move did not copy byte %d", i)
			}
		}
	})
}

// TestCheckedAccessAllocs pins the zero-allocation property of the
// fault-free checked path: Load64, Store64 and CopyOut with matching tags
// must not allocate, in any check mode. Fault construction is outlined
// precisely so this holds.
func TestCheckedAccessAllocs(t *testing.T) {
	for _, mode := range []mte.CheckMode{mte.TCFSync, mte.TCFAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			s, m := newTestSpace(t)
			ctx := checkingCtx(mode)
			if _, err := m.SetTagRange(m.Base(), m.Base()+4096, 0x7); err != nil {
				t.Fatal(err)
			}
			p := mte.MakePtr(m.Base(), 0x7)
			buf := make([]byte, 1024)

			if avg := testing.AllocsPerRun(200, func() {
				if _, f := s.Load64(ctx, p); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("Load64 allocates %v per op on the fault-free path", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				if f := s.Store64(ctx, p, 0xDEAD); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("Store64 allocates %v per op on the fault-free path", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				if f := s.CopyOut(ctx, p, buf); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("CopyOut allocates %v per op on the fault-free path", avg)
			}
		})
	}
}

// TestFastEngineMatchesReferenceDirected is a directed (non-random)
// complement to the fuzz differential: the exact boundary cases the fast
// engine special-cases must agree with the reference engine.
func TestFastEngineMatchesReferenceDirected(t *testing.T) {
	s, m := newTestSpace(t)
	ref := NewReferenceEngine(s)
	if _, err := m.SetTagRange(m.Base(), m.Base()+256, 0x3); err != nil {
		t.Fatal(err)
	}
	// One granule mid-range retagged to force span mismatches.
	if _, err := m.SetTagRange(m.Base()+64, m.Base()+80, 0x9); err != nil {
		t.Fatal(err)
	}

	type access struct {
		off  mte.Addr
		tag  mte.Tag
		size int
	}
	cases := []access{
		{0, 0x3, 8},             // clean single granule
		{15, 0x3, 1},            // last byte of a granule
		{15, 0x3, 2},            // straddles granules 0-1
		{0, 0x3, 64},            // span ending exactly at the bad granule
		{0, 0x3, 65},            // span touching the bad granule
		{64, 0x3, 8},            // direct hit on the bad granule
		{64, 0x9, 16},           // matching the odd granule's own tag
		{80, 0x3, 176},          // span after the bad granule
		{0, 0x5, 8},             // plain mismatch
		{4096 * 100, 0x3, 8},    // far out of mapping (unmapped)
		{mte.Addr(65536), 0, 0}, // zero-size at one-past-the-end
	}
	for _, c := range cases {
		p := mte.MakePtr(m.Base()+c.off, c.tag)
		fastCtx := checkingCtx(mte.TCFSync)
		refCtx := checkingCtx(mte.TCFSync)
		fm, ff := s.checkAccess(fastCtx, p, c.size, mte.AccessLoad)
		rm, rf := ref.checkAccess(refCtx, p, c.size, mte.AccessLoad)
		if (ff == nil) != (rf == nil) {
			t.Fatalf("case %+v: fast fault %v, reference fault %v", c, ff, rf)
		}
		if ff != nil {
			if ff.Kind != rf.Kind || ff.MemTag != rf.MemTag || ff.PtrTag != rf.PtrTag {
				t.Fatalf("case %+v: fast %+v vs reference %+v", c, ff, rf)
			}
		} else if fm != rm {
			t.Fatalf("case %+v: engines resolved different mappings", c)
		}
	}
}
