package mem

import (
	"fmt"
	"testing"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// benchSpace builds a space with a tagged and an untagged mapping, a context
// in the given mode with checking live, and a tagged pointer to the start of
// the tagged mapping whose granules all carry the matching tag.
func benchSpace(b *testing.B, mode mte.CheckMode) (*Space, *cpu.Context, mte.Ptr) {
	b.Helper()
	s := NewSpace()
	m, err := s.Map("bench tagged", 1<<20, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Map("bench untagged", 1<<20, ProtRead|ProtWrite); err != nil {
		b.Fatal(err)
	}
	const tag = mte.Tag(0x5)
	if _, err := m.SetTagRange(m.Base(), m.End(), tag); err != nil {
		b.Fatal(err)
	}
	ctx := cpu.New("bench", mode)
	ctx.SetTCO(false)
	return s, ctx, mte.MakePtr(m.Base(), tag)
}

// BenchmarkLoad64Checked measures the per-access cost of a checked 64-bit
// load with tag checking live — the reproduction's stand-in for the
// hardware's in-pipeline tag check.
func BenchmarkLoad64Checked(b *testing.B) {
	s, ctx, p := benchSpace(b, mte.TCFSync)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := s.Load64(ctx, p.Add(int64(i%1024)*8)); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkLoad64Unchecked measures the same access with checking disabled
// (TCO set), the managed-code configuration.
func BenchmarkLoad64Unchecked(b *testing.B) {
	s, ctx, p := benchSpace(b, mte.TCFSync)
	ctx.SetTCO(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := s.Load64(ctx, p.Add(int64(i%1024)*8)); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkCopyOutChecked measures bulk checked reads across many granules —
// the span path of the Fig5 copy workload.
func BenchmarkCopyOutChecked(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, ctx, p := benchSpace(b, mte.TCFSync)
			dst := make([]byte, n)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if f := s.CopyOut(ctx, p, dst); f != nil {
					b.Fatal(f)
				}
			}
		})
	}
}

// BenchmarkMoveChecked measures the checked memcpy of the Fig5 native method
// proper: both sides tag-checked, then the data copy.
func BenchmarkMoveChecked(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, ctx, p := benchSpace(b, mte.TCFSync)
			src, dst := p, p.Add(1<<19)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if f := s.Move(ctx, dst, src, n); f != nil {
					b.Fatal(f)
				}
			}
		})
	}
}

// BenchmarkSetTagRange measures the tag-write path of Algorithm 1 step 3 (and
// its zeroing twin of Algorithm 2), per span size in bytes.
func BenchmarkSetTagRange(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, _, p := benchSpace(b, mte.TCFSync)
			m, ok := s.Resolve(p.Addr())
			if !ok {
				b.Fatal("mapping not found")
			}
			b.SetBytes(int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.SetTagRange(m.Base(), m.Base()+mte.Addr(n), mte.Tag(i&0xF)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
