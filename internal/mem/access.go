package mem

import (
	"encoding/binary"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// This file is the tag-check engine: the simulated load/store unit that
// native code uses to touch Java heap memory through raw (possibly tagged)
// pointers. Faults are reported the way the corresponding hardware + kernel
// combination reports them:
//
//   - Unmapped or protection violations are always synchronous.
//   - Tag mismatches in sync mode return a *mte.Fault carrying the precise
//     faulting PC and backtrace; the access does not take effect (a store is
//     suppressed, a load returns zero).
//   - Tag mismatches in async mode are latched on the thread's TFSR and the
//     access proceeds; the fault surfaces later at a synchronization point
//     (cpu.Context.Syscall or the JNI trampoline exit).
//   - With checking disabled (mode none, or TCO set, or an untagged
//     mapping) accesses are performed directly.

// checkAccess validates one access and returns (mapping, fault). A non-nil
// fault means the access must not take effect. Async tag mismatches are
// latched here and reported as nil so the caller proceeds.
func (s *Space) checkAccess(ctx *cpu.Context, p mte.Ptr, size int, kind mte.AccessKind) (*Mapping, *mte.Fault) {
	addr := p.Addr()
	m, ok := s.Resolve(addr)
	if !ok || !m.contains(addr, size) {
		return nil, s.newFault(ctx, mte.FaultUnmapped, kind, p, size, p.Tag(), 0)
	}
	var need Prot = ProtRead
	if kind == mte.AccessStore {
		need = ProtWrite
	}
	if m.prot&need == 0 {
		return nil, s.newFault(ctx, mte.FaultProtection, kind, p, size, p.Tag(), 0)
	}
	if m.tags == nil || !ctx.Checking() {
		return m, nil
	}
	// Compare the pointer tag against every covered granule's tag. The scan
	// is a plain byte loop over the tag array — cheap relative to the data
	// access, as the hardware check is.
	gb, ge := mte.GranuleRange(addr, addr+mte.Addr(size))
	want := uint8(p.Tag())
	span := m.tags[m.granuleIndex(gb):m.granuleIndex(ge)]
	for _, got := range span {
		if got == want {
			continue
		}
		f := s.newFault(ctx, mte.FaultTagMismatch, kind, p, size, p.Tag(), mte.Tag(got))
		if ctx.CheckMode() == mte.TCFAsync {
			// Asynchronous mode: latch and let the access proceed
			// (paper §2.1: "allows the program to continue execution
			// even after detecting a tag mismatch").
			ctx.LatchAsyncFault(f)
			return m, nil
		}
		return nil, f
	}
	return m, nil
}

// newFault builds a fault record stamped with the thread's current simulated
// PC and backtrace.
func (s *Space) newFault(ctx *cpu.Context, kind mte.FaultKind, access mte.AccessKind, p mte.Ptr, size int, ptrTag, memTag mte.Tag) *mte.Fault {
	return &mte.Fault{
		Kind:      kind,
		Access:    access,
		Ptr:       p,
		Size:      size,
		PtrTag:    ptrTag,
		MemTag:    memTag,
		PC:        ctx.PC(),
		Backtrace: ctx.Backtrace(),
		Thread:    ctx.Name(),
	}
}

// Load8 reads one byte through a checked access.
func (s *Space) Load8(ctx *cpu.Context, p mte.Ptr) (uint8, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 1, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return m.data[p.Addr()-m.base], nil
}

// Store8 writes one byte through a checked access.
func (s *Space) Store8(ctx *cpu.Context, p mte.Ptr, v uint8) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 1, mte.AccessStore)
	if f != nil {
		return f
	}
	m.data[p.Addr()-m.base] = v
	return nil
}

// Load16 reads a little-endian 16-bit value.
func (s *Space) Load16(ctx *cpu.Context, p mte.Ptr) (uint16, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 2, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint16(m.data[off:]), nil
}

// Store16 writes a little-endian 16-bit value.
func (s *Space) Store16(ctx *cpu.Context, p mte.Ptr, v uint16) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 2, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint16(m.data[p.Addr()-m.base:], v)
	return nil
}

// Load32 reads a little-endian 32-bit value.
func (s *Space) Load32(ctx *cpu.Context, p mte.Ptr) (uint32, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 4, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint32(m.data[off:]), nil
}

// Store32 writes a little-endian 32-bit value.
func (s *Space) Store32(ctx *cpu.Context, p mte.Ptr, v uint32) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 4, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint32(m.data[p.Addr()-m.base:], v)
	return nil
}

// Load64 reads a little-endian 64-bit value.
func (s *Space) Load64(ctx *cpu.Context, p mte.Ptr) (uint64, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 8, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint64(m.data[off:]), nil
}

// Store64 writes a little-endian 64-bit value.
func (s *Space) Store64(ctx *cpu.Context, p mte.Ptr, v uint64) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 8, mte.AccessStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint64(m.data[p.Addr()-m.base:], v)
	return nil
}

// CopyOut performs a checked bulk read of len(dst) bytes starting at p into
// dst, the simulated equivalent of an unrolled load loop (or memcpy out of
// the Java heap). Tag checking is done per covered granule, matching how the
// hardware checks a sequence of loads.
func (s *Space) CopyOut(ctx *cpu.Context, p mte.Ptr, dst []byte) *mte.Fault {
	m, f := s.checkAccess(ctx, p, len(dst), mte.AccessLoad)
	if f != nil {
		return f
	}
	if len(dst) == 0 {
		return nil
	}
	copy(dst, m.data[p.Addr()-m.base:])
	return nil
}

// CopyIn performs a checked bulk write of src to simulated memory at p.
func (s *Space) CopyIn(ctx *cpu.Context, p mte.Ptr, src []byte) *mte.Fault {
	m, f := s.checkAccess(ctx, p, len(src), mte.AccessStore)
	if f != nil {
		return f
	}
	if len(src) == 0 {
		return nil
	}
	copy(m.data[p.Addr()-m.base:], src)
	return nil
}

// Move copies n bytes from src to dst inside simulated memory, with checked
// access on both sides. It models native memcpy between two raw Java heap
// pointers — the workload of the paper's Figure 5 experiment.
func (s *Space) Move(ctx *cpu.Context, dst, src mte.Ptr, n int) *mte.Fault {
	sm, f := s.checkAccess(ctx, src, n, mte.AccessLoad)
	if f != nil {
		return f
	}
	dm, f := s.checkAccess(ctx, dst, n, mte.AccessStore)
	if f != nil {
		return f
	}
	if n == 0 {
		return nil
	}
	copy(dm.data[dst.Addr()-dm.base:dst.Addr()-dm.base+mte.Addr(n)], sm.data[src.Addr()-sm.base:])
	return nil
}
