package mem

import (
	"encoding/binary"
	"math/bits"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// This file is the tag-check engine: the simulated load/store unit that
// native code uses to touch Java heap memory through raw (possibly tagged)
// pointers. Faults are reported the way the corresponding hardware + kernel
// combination reports them:
//
//   - Unmapped or protection violations are always synchronous.
//   - Tag mismatches in sync mode return a *mte.Fault carrying the precise
//     faulting PC and backtrace; the access does not take effect (a store is
//     suppressed, a load returns zero).
//   - Tag mismatches in async mode are latched on the thread's TFSR and the
//     access proceeds; the fault surfaces later at a synchronization point
//     (cpu.Context.Syscall or the JNI trampoline exit).
//   - With checking disabled (mode none, or TCO set, or an untagged
//     mapping) accesses are performed directly.
//
// The engine is built for the fault-free case, which is what every paper
// figure measures (DESIGN.md "Fast-path engine"):
//
//   - Address resolution goes through the thread's TLB (cpu.TLB) with a
//     binary-searched snapshot as the miss path, instead of a linear scan.
//   - Tag checks use a single byte compare when the access stays inside one
//     granule (the Load8..Load64 common case) and SWAR word-at-a-time
//     comparison — eight granule tags against a tag-replicated uint64 — for
//     CopyIn/CopyOut/Move spans.
//   - Fault construction (and its Backtrace capture) is outlined into
//     noinline slow-path helpers, so the fault-free path allocates nothing;
//     TestCheckedAccessAllocs pins that property.
//
// The pre-optimization engine survives verbatim as ReferenceEngine
// (reference.go); the fuzz differential test drives both over randomized
// access streams and requires behavioural identity.

// replicate8 spreads a byte to all eight lanes of a uint64, the SWAR
// broadcast used by both the tag compare and the tag fill.
//
//mte4jni:fastpath
func replicate8(b uint8) uint64 { return uint64(b) * 0x0101_0101_0101_0101 }

// tagMismatchIndex returns the index of the first tag byte in span that
// differs from want, or -1 when all match. Eight granule tags are compared
// per step against the tag-replicated word; XOR leaves a nonzero byte lane
// exactly at each mismatch, and the lowest set lane is the first faulting
// granule — the one hardware reports.
//
//mte4jni:fastpath
func tagMismatchIndex(span []uint8, want uint8) int {
	w := replicate8(want)
	i := 0
	for ; i+8 <= len(span); i += 8 {
		if x := binary.LittleEndian.Uint64(span[i:]) ^ w; x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
	}
	for ; i < len(span); i++ {
		if span[i] != want {
			return i
		}
	}
	return -1
}

// lookup resolves the mapping fully containing [addr, addr+size) through the
// thread's TLB, falling back to the snapshot binary search and refilling the
// TLB on a miss. It returns (nil, nil) when no mapping contains the whole
// access. The second result is the mapping's tag state, cached in the TLB
// entry's Aux slot so a hit resolves both pointers in one probe: the
// resolved *tagDir once the directory is materialized (the fast path pays a
// single pointer hop per tag check), the *tagTable while the lazy directory
// is still nil, or nil for untagged mappings. Caching the directory is
// sound because its slices are immutable after construction and the one
// nil→non-nil transition bumps the space epoch (materialize), which flushes
// every TLB exactly like any other mapping change. See the Space doc
// comment for the epoch contract.
//
//mte4jni:fastpath
func (s *Space) lookup(ctx *cpu.Context, addr mte.Addr, size int) (*Mapping, any) {
	tlb := ctx.TLB()
	if epoch := s.epoch.Load(); epoch != tlb.Epoch {
		tlb.Flush(epoch)
	}
	if e := tlb.Lookup(uint64(addr), size); e != nil {
		return e.Ref.(*Mapping), e.Aux
	}
	m, ok := s.Resolve(addr)
	if !ok || !m.contains(addr, size) {
		return nil, nil
	}
	var aux any
	if m.tags != nil {
		if d := m.tags.directory(); d != nil {
			aux = d
		} else {
			aux = m.tags
		}
	}
	tlb.Insert(uint64(m.base), uint64(m.End()), m, aux)
	return m, aux
}

// checkAccess validates one access and returns (mapping, fault). A non-nil
// fault means the access must not take effect. Async tag mismatches are
// latched here and reported as nil so the caller proceeds.
//
//mte4jni:fastpath
func (s *Space) checkAccess(ctx *cpu.Context, p mte.Ptr, size int, kind mte.AccessKind) (*Mapping, *mte.Fault) {
	addr := p.Addr()
	m, aux := s.lookup(ctx, addr, size)
	if m == nil {
		return nil, s.newFault(ctx, mte.FaultUnmapped, kind, p, size, p.Tag(), 0)
	}
	var need Prot = ProtRead
	if kind == mte.AccessStore {
		need = ProtWrite
	}
	if m.prot&need == 0 {
		return nil, s.newFault(ctx, mte.FaultProtection, kind, p, size, p.Tag(), 0)
	}
	if aux == nil || !ctx.Checking() {
		return m, nil
	}
	// The steady state is a materialized directory cached straight in the
	// TLB (one predictable type check, no tagTable hop). The *tagTable case
	// covers the window before the lazy directory exists: re-resolving it
	// here keeps a racing first retag visible, and the materialize epoch
	// bump retires the stale Aux at the next lookup anyway.
	d, ok := aux.(*tagDir)
	if !ok {
		d = aux.(*tagTable).directory()
	}
	want := uint8(p.Tag())
	gi := m.granuleIndex(addr)
	if off := uint64(addr) & (mte.GranuleSize - 1); off+uint64(size) <= mte.GranuleSize {
		// Single-granule fast path: the access does not cross a granule
		// boundary, so one directory load plus one tag compare decides it —
		// the common case for all of Load8..Load64/Store8..Store64. Uniform
		// and private pages are both byte arrays; the compare does not care.
		if size == 0 && off == 0 {
			// A zero-length access starting on a granule boundary covers no
			// granule at all and is never tag-checked (GranuleRange yields an
			// empty span); unaligned zero-length accesses still check the
			// granule they start in, as the reference engine always has.
			return m, nil
		}
		if d == nil {
			// Never-tagged mapping: every granule reads tag 0.
			if want != 0 {
				return s.tagFault(ctx, m, p, size, kind, 0)
			}
			return m, nil
		}
		if got := d.page(gi >> tagPageShift)[gi&tagPageMask]; got != want {
			return s.tagFault(ctx, m, p, size, kind, mte.Tag(got))
		}
		return m, nil
	}
	if d == nil {
		// Never-tagged mapping, span case: all tags are 0, so a non-zero
		// pointer tag mismatches at the very first granule — the same
		// granule and memory tag the reference engine reports.
		if want != 0 {
			return s.tagFault(ctx, m, p, size, kind, 0)
		}
		return m, nil
	}
	// Span path: per tag page, SWAR compare of the covered granule tags —
	// same word sweep as before, segmented at page boundaries, with one new
	// fast-out: a directory entry that *is* the canonical page of the wanted
	// tag matches 256 granules without reading a tag byte. Mismatch order is
	// preserved (pages ascend, the sweep finds the first bad lane), so the
	// faulting granule is identical to the reference engine's. size >= 1
	// here (a zero-size span cannot cross a granule boundary), so
	// addr+size-1 is the last touched byte.
	lastGi := m.granuleIndex(addr + mte.Addr(size) - 1)
	match := canonical(want)
	firstPage, lastPage := gi>>tagPageShift, lastGi>>tagPageShift
	for pi := firstPage; pi <= lastPage; pi++ {
		pg := d.page(pi)
		if pg == match {
			continue
		}
		segLo, segHi := 0, tagPageGranules
		if pi == firstPage {
			segLo = gi & tagPageMask
		}
		if pi == lastPage {
			segHi = lastGi&tagPageMask + 1
		}
		if i := tagMismatchIndex(pg[segLo:segHi], want); i >= 0 {
			return s.tagFault(ctx, m, p, size, kind, mte.Tag(pg[segLo+i]))
		}
	}
	return m, nil
}

// tagFault is the outlined tag-mismatch slow path: it builds the fault
// record (capturing the backtrace) and either latches it (async mode,
// access proceeds) or reports it (sync mode, access suppressed). Keeping it
// out of line keeps checkAccess free of fault-object construction — and of
// allocation — when no fault fires.
//
//go:noinline
func (s *Space) tagFault(ctx *cpu.Context, m *Mapping, p mte.Ptr, size int, kind mte.AccessKind, got mte.Tag) (*Mapping, *mte.Fault) {
	f := s.newFault(ctx, mte.FaultTagMismatch, kind, p, size, p.Tag(), got)
	if ctx.CheckMode() == mte.TCFAsync {
		// Asynchronous mode: latch and let the access proceed
		// (paper §2.1: "allows the program to continue execution
		// even after detecting a tag mismatch").
		ctx.LatchAsyncFault(f)
		return m, nil
	}
	return nil, f
}

// newFault builds a fault record stamped with the thread's current simulated
// PC and backtrace. It is deliberately not inlined: Backtrace() allocates,
// and this must only ever run when a fault actually fires.
//
//go:noinline
func (s *Space) newFault(ctx *cpu.Context, kind mte.FaultKind, access mte.AccessKind, p mte.Ptr, size int, ptrTag, memTag mte.Tag) *mte.Fault {
	return &mte.Fault{
		Kind:      kind,
		Access:    access,
		Ptr:       p,
		Size:      size,
		PtrTag:    ptrTag,
		MemTag:    memTag,
		PC:        ctx.PC(),
		Backtrace: ctx.Backtrace(),
		Thread:    ctx.Name(),
	}
}

// Load8 reads one byte through a checked access.
//
//mte4jni:fastpath
func (s *Space) Load8(ctx *cpu.Context, p mte.Ptr) (uint8, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 1, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	return m.data[p.Addr()-m.base], nil
}

// Store8 writes one byte through a checked access.
//
//mte4jni:fastpath
func (s *Space) Store8(ctx *cpu.Context, p mte.Ptr, v uint8) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 1, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	m.data[p.Addr()-m.base] = v
	m.storeUnlock(locked)
	return nil
}

// Load16 reads a little-endian 16-bit value.
//
//mte4jni:fastpath
func (s *Space) Load16(ctx *cpu.Context, p mte.Ptr) (uint16, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 2, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint16(m.data[off:]), nil
}

// Store16 writes a little-endian 16-bit value.
//
//mte4jni:fastpath
func (s *Space) Store16(ctx *cpu.Context, p mte.Ptr, v uint16) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 2, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint16(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// Load32 reads a little-endian 32-bit value.
//
//mte4jni:fastpath
func (s *Space) Load32(ctx *cpu.Context, p mte.Ptr) (uint32, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 4, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint32(m.data[off:]), nil
}

// Store32 writes a little-endian 32-bit value.
//
//mte4jni:fastpath
func (s *Space) Store32(ctx *cpu.Context, p mte.Ptr, v uint32) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 4, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint32(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// Load64 reads a little-endian 64-bit value.
//
//mte4jni:fastpath
func (s *Space) Load64(ctx *cpu.Context, p mte.Ptr) (uint64, *mte.Fault) {
	m, f := s.checkAccess(ctx, p, 8, mte.AccessLoad)
	if f != nil {
		return 0, f
	}
	off := p.Addr() - m.base
	return binary.LittleEndian.Uint64(m.data[off:]), nil
}

// Store64 writes a little-endian 64-bit value.
//
//mte4jni:fastpath
func (s *Space) Store64(ctx *cpu.Context, p mte.Ptr, v uint64) *mte.Fault {
	m, f := s.checkAccess(ctx, p, 8, mte.AccessStore)
	if f != nil {
		return f
	}
	locked := m.storeLock()
	binary.LittleEndian.PutUint64(m.data[p.Addr()-m.base:], v)
	m.storeUnlock(locked)
	return nil
}

// CopyOut performs a checked bulk read of len(dst) bytes starting at p into
// dst, the simulated equivalent of an unrolled load loop (or memcpy out of
// the Java heap). Tag checking is done per covered granule, matching how the
// hardware checks a sequence of loads.
//
//mte4jni:fastpath
func (s *Space) CopyOut(ctx *cpu.Context, p mte.Ptr, dst []byte) *mte.Fault {
	m, f := s.checkAccess(ctx, p, len(dst), mte.AccessLoad)
	if f != nil {
		return f
	}
	if len(dst) == 0 {
		return nil
	}
	copy(dst, m.data[p.Addr()-m.base:])
	return nil
}

// CopyIn performs a checked bulk write of src to simulated memory at p.
//
//mte4jni:fastpath
func (s *Space) CopyIn(ctx *cpu.Context, p mte.Ptr, src []byte) *mte.Fault {
	m, f := s.checkAccess(ctx, p, len(src), mte.AccessStore)
	if f != nil {
		return f
	}
	if len(src) == 0 {
		return nil
	}
	locked := m.storeLock()
	copy(m.data[p.Addr()-m.base:], src)
	m.storeUnlock(locked)
	return nil
}

// Move copies n bytes from src to dst inside simulated memory, with checked
// access on both sides. It models native memcpy between two raw Java heap
// pointers — the workload of the paper's Figure 5 experiment.
//
// Two semantic guarantees are part of the engine contract (and locked by
// TestMoveSemantics):
//
//   - Overlapping src/dst ranges behave like memmove, because Go's copy
//     does: the destination receives the original source bytes even when
//     the ranges alias.
//   - The source is checked before the destination. When both sides would
//     fault in sync mode, the load fault is the one reported; in async mode
//     both mismatches are latched (first fault kept, second coalesced)
//     before the copy proceeds.
//
//mte4jni:fastpath
func (s *Space) Move(ctx *cpu.Context, dst, src mte.Ptr, n int) *mte.Fault {
	sm, f := s.checkAccess(ctx, src, n, mte.AccessLoad)
	if f != nil {
		return f
	}
	dm, f := s.checkAccess(ctx, dst, n, mte.AccessStore)
	if f != nil {
		return f
	}
	if n == 0 {
		return nil
	}
	locked := dm.storeLock()
	copy(dm.data[dst.Addr()-dm.base:dst.Addr()-dm.base+mte.Addr(n)], sm.data[src.Addr()-sm.base:])
	dm.storeUnlock(locked)
	return nil
}
