package mem

import (
	"testing"
	"testing/quick"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

func TestWidthRoundTripProperty(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFNone)
	base := m.Base()

	f := func(off uint16, v64 uint64) bool {
		// Keep the access inside the mapping with room for 8 bytes.
		a := base + mte.Addr(off%uint16(m.Size()-8))
		p := mte.MakePtr(a, 0)
		if s.Store64(ctx, p, v64) != nil {
			return false
		}
		got64, f := s.Load64(ctx, p)
		if f != nil || got64 != v64 {
			return false
		}
		// Sub-width loads agree with the little-endian layout.
		b, _ := s.Load8(ctx, p)
		if b != uint8(v64) {
			return false
		}
		h, _ := s.Load16(ctx, p)
		if h != uint16(v64) {
			return false
		}
		w, _ := s.Load32(ctx, p)
		return w == uint32(v64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncModeFaultsOnAllWidths(t *testing.T) {
	// Every access width must latch (not raise) in async mode and the
	// access must proceed.
	s, m := newTestSpace(t)
	m.SetTagRange(m.Base(), m.Base()+16, 0x6)
	oobBase := mte.MakePtr(m.Base(), 0x6).Add(16) // granule past the tagged one

	type op func(ctx *cpu.Context, p mte.Ptr) *mte.Fault
	ops := map[string]op{
		"store8":  func(c *cpu.Context, p mte.Ptr) *mte.Fault { return s.Store8(c, p, 1) },
		"store16": func(c *cpu.Context, p mte.Ptr) *mte.Fault { return s.Store16(c, p, 1) },
		"store32": func(c *cpu.Context, p mte.Ptr) *mte.Fault { return s.Store32(c, p, 1) },
		"store64": func(c *cpu.Context, p mte.Ptr) *mte.Fault { return s.Store64(c, p, 1) },
		"load8":   func(c *cpu.Context, p mte.Ptr) *mte.Fault { _, f := s.Load8(c, p); return f },
		"load16":  func(c *cpu.Context, p mte.Ptr) *mte.Fault { _, f := s.Load16(c, p); return f },
		"load32":  func(c *cpu.Context, p mte.Ptr) *mte.Fault { _, f := s.Load32(c, p); return f },
		"load64":  func(c *cpu.Context, p mte.Ptr) *mte.Fault { _, f := s.Load64(c, p); return f },
	}
	for name, o := range ops {
		ctx := checkingCtx(mte.TCFAsync)
		if f := o(ctx, oobBase); f != nil {
			t.Fatalf("%s: async access raised synchronously: %v", name, f)
		}
		if !ctx.PendingAsyncFault() {
			t.Fatalf("%s: no async fault latched", name)
		}
	}
}

func TestAccessStraddlingGranulesChecksBoth(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	// Tag only the first granule; an 8-byte access straddling into the
	// second must fault even though it starts on tagged memory.
	m.SetTagRange(m.Base(), m.Base()+16, 0x3)
	p := mte.MakePtr(m.Base()+12, 0x3)
	if f := s.Store64(ctx, p, 1); f == nil {
		t.Fatal("straddling store not checked against the second granule")
	}
	// Tag the second granule too: now it passes.
	m.SetTagRange(m.Base()+16, m.Base()+32, 0x3)
	if f := s.Store64(ctx, p, 1); f != nil {
		t.Fatalf("straddling store with both granules tagged faulted: %v", f)
	}
}

func TestBytesCapIsTight(t *testing.T) {
	_, m := newTestSpace(t)
	buf, err := m.Bytes(m.Base(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) != 16 {
		t.Fatalf("Bytes cap = %d, want tight 16 (no aliasing past the range)", cap(buf))
	}
}

func TestMappingAccessors(t *testing.T) {
	s := NewSpace()
	m, _ := s.Map("labelled", 4096, ProtRead|ProtWrite|ProtMTE)
	if m.Name() != "labelled" || m.Prot() != ProtRead|ProtWrite|ProtMTE || !m.Tagged() {
		t.Fatal("accessors wrong")
	}
	if m.End() != m.Base()+4096 {
		t.Fatal("End wrong")
	}
}
