package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

func newTestSpace(t *testing.T) (*Space, *Mapping) {
	t.Helper()
	s := NewSpace()
	m, err := s.Map("test-heap", 64*1024, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func checkingCtx(mode mte.CheckMode) *cpu.Context {
	ctx := cpu.New("native-0", mode)
	ctx.SetTCO(false)
	return ctx
}

func TestMapPlacement(t *testing.T) {
	s := NewSpace()
	a, err := s.Map("a", 100, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 4096 {
		t.Fatalf("size not rounded to page: %d", a.Size())
	}
	b, err := s.Map("b", 4096, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if b.Base() < a.End() {
		t.Fatal("mappings overlap")
	}
	if got, ok := s.Resolve(a.Base() + 50); !ok || got != a {
		t.Fatal("Resolve failed inside mapping a")
	}
	if _, ok := s.Resolve(a.End()); ok {
		t.Fatal("Resolve succeeded in the guard gap")
	}
	if len(s.Mappings()) != 2 {
		t.Fatalf("Mappings() = %d entries", len(s.Mappings()))
	}
}

func TestMapZeroSize(t *testing.T) {
	s := NewSpace()
	if _, err := s.Map("z", 0, ProtRead); err == nil {
		t.Fatal("zero-size map must fail")
	}
}

func TestProtString(t *testing.T) {
	if got := (ProtRead | ProtWrite | ProtMTE).String(); got != "rw+mte" {
		t.Fatalf("Prot string = %q", got)
	}
	if got := ProtRead.String(); got != "r-" {
		t.Fatalf("Prot string = %q", got)
	}
}

func TestRawReadWriteRoundTrip(t *testing.T) {
	_, m := newTestSpace(t)
	src := []byte{1, 2, 3, 4, 5}
	if err := m.WriteRaw(m.Base()+32, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := m.ReadRaw(m.Base()+32, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("raw roundtrip mismatch at %d", i)
		}
	}
	if err := m.WriteRaw(m.End()-2, []byte{1, 2, 3}); err == nil {
		t.Fatal("WriteRaw past end must fail")
	}
	if err := m.ReadRaw(m.Base()-1, dst); err == nil {
		t.Fatal("ReadRaw before base must fail")
	}
}

func TestLoadStoreWidths(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFNone)
	base := m.Base()

	if f := s.Store8(ctx, mte.MakePtr(base, 0), 0xAB); f != nil {
		t.Fatal(f)
	}
	if v, f := s.Load8(ctx, mte.MakePtr(base, 0)); f != nil || v != 0xAB {
		t.Fatalf("Load8 = %x, %v", v, f)
	}
	if f := s.Store16(ctx, mte.MakePtr(base+2, 0), 0xBEEF); f != nil {
		t.Fatal(f)
	}
	if v, _ := s.Load16(ctx, mte.MakePtr(base+2, 0)); v != 0xBEEF {
		t.Fatalf("Load16 = %x", v)
	}
	if f := s.Store32(ctx, mte.MakePtr(base+4, 0), 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	if v, _ := s.Load32(ctx, mte.MakePtr(base+4, 0)); v != 0xDEADBEEF {
		t.Fatalf("Load32 = %x", v)
	}
	if f := s.Store64(ctx, mte.MakePtr(base+8, 0), 0x0123456789ABCDEF); f != nil {
		t.Fatal(f)
	}
	if v, _ := s.Load64(ctx, mte.MakePtr(base+8, 0)); v != 0x0123456789ABCDEF {
		t.Fatalf("Load64 = %x", v)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFNone)
	// Past the end of the mapping, inside the guard gap.
	p := mte.MakePtr(m.End()+64, 0)
	if _, f := s.Load32(ctx, p); f == nil || f.Kind != mte.FaultUnmapped {
		t.Fatalf("expected SEGV_MAPERR, got %v", f)
	}
	// Straddling the end of the mapping.
	p = mte.MakePtr(m.End()-2, 0)
	if f := s.Store32(ctx, p, 1); f == nil || f.Kind != mte.FaultUnmapped {
		t.Fatalf("expected SEGV_MAPERR for straddling access, got %v", f)
	}
}

func TestProtectionFault(t *testing.T) {
	s := NewSpace()
	ro, err := s.Map("rodata", 4096, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	ctx := checkingCtx(mte.TCFNone)
	if f := s.Store8(ctx, mte.MakePtr(ro.Base(), 0), 1); f == nil || f.Kind != mte.FaultProtection {
		t.Fatalf("store to read-only mapping: got %v", f)
	}
	if _, f := s.Load8(ctx, mte.MakePtr(ro.Base(), 0)); f != nil {
		t.Fatalf("load from read-only mapping should succeed, got %v", f)
	}
}

func TestTagRangeSetAndZero(t *testing.T) {
	_, m := newTestSpace(t)
	begin := m.Base() + 32
	end := begin + 72 // 18 ints
	n, err := m.SetTagRange(begin, end, 0xA)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // 72 bytes from an aligned start = ceil(72/16) = 5 granules
		t.Fatalf("SetTagRange tagged %d granules, want 5", n)
	}
	if got := m.TagAt(begin); got != 0xA {
		t.Fatalf("TagAt(begin) = %v", got)
	}
	if got := m.TagAt(end - 1); got != 0xA {
		t.Fatalf("TagAt(end-1) = %v", got)
	}
	if got := m.TagAt(end.AlignUp(16)); got != 0 {
		t.Fatalf("granule after range tagged: %v", got)
	}
	if _, err := m.ZeroTagRange(begin, end); err != nil {
		t.Fatal(err)
	}
	if got := m.TagAt(begin); got != 0 {
		t.Fatalf("tag not cleared: %v", got)
	}
}

func TestSetTagRangeErrors(t *testing.T) {
	s := NewSpace()
	plain, _ := s.Map("plain", 4096, ProtRead|ProtWrite)
	if _, err := plain.SetTagRange(plain.Base(), plain.Base()+16, 1); err == nil {
		t.Fatal("SetTagRange on non-MTE mapping must fail")
	}
	_, m := newTestSpace(t)
	if _, err := m.SetTagRange(m.End()-8, m.End()+8, 1); err == nil {
		t.Fatal("SetTagRange outside mapping must fail")
	}
}

func TestSyncTagMismatchFaults(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	ctx.SetPC("test_ofb+124")

	begin := m.Base()
	m.SetTagRange(begin, begin+64, 0x7)
	good := mte.MakePtr(begin, 0x7)
	if f := s.Store32(ctx, good, 42); f != nil {
		t.Fatalf("matching tag store faulted: %v", f)
	}
	if v, f := s.Load32(ctx, good); f != nil || v != 42 {
		t.Fatalf("matching tag load: %v %v", v, f)
	}

	// Out-of-bounds: pointer arithmetic walks past the tagged granules.
	oob := good.Add(64)
	f := s.Store32(ctx, oob, 1)
	if f == nil || f.Kind != mte.FaultTagMismatch {
		t.Fatalf("OOB store: got %v", f)
	}
	if f.PtrTag != 0x7 || f.MemTag != 0 {
		t.Fatalf("fault tags: ptr %v mem %v", f.PtrTag, f.MemTag)
	}
	if f.PC != "test_ofb+124" {
		t.Fatalf("sync fault PC = %q, want the faulting site", f.PC)
	}
	// The store must have been suppressed.
	if v, _ := s.Load32(checkingCtx(mte.TCFNone), oob.WithTag(0)); v != 0 {
		t.Fatalf("suppressed store leaked: %d", v)
	}
	// Sync mode detects OOB *reads* too — the capability guarded copy lacks.
	if _, f := s.Load32(ctx, oob); f == nil || f.Access != mte.AccessLoad {
		t.Fatalf("OOB load not detected: %v", f)
	}
}

func TestAsyncTagMismatchLatches(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFAsync)
	begin := m.Base()
	m.SetTagRange(begin, begin+16, 0x3)
	oob := mte.MakePtr(begin, 0x3).Add(16)

	if f := s.Store32(ctx, oob, 99); f != nil {
		t.Fatalf("async mode must not fault synchronously, got %v", f)
	}
	// The access proceeds in async mode.
	if v, _ := s.Load32(checkingCtx(mte.TCFNone), oob.WithTag(0)); v != 99 {
		t.Fatalf("async store did not take effect: %d", v)
	}
	f := ctx.Syscall("getuid")
	if f == nil {
		t.Fatal("async fault must surface at the next syscall")
	}
	if !f.Async || f.PC != "getuid+4 (libc.so)" {
		t.Fatalf("async fault reported at %q", f.PC)
	}
}

func TestTCOSuppressesChecking(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := cpu.New("gc", mte.TCFSync) // TCO starts set
	begin := m.Base()
	m.SetTagRange(begin, begin+16, 0x9)
	// GC-style access: untagged pointer into tagged memory.
	untagged := mte.MakePtr(begin, 0)
	if _, f := s.Load32(ctx, untagged); f != nil {
		t.Fatalf("TCO=1 access faulted: %v", f)
	}
	ctx.SetTCO(false)
	if _, f := s.Load32(ctx, untagged); f == nil {
		t.Fatal("TCO=0 untagged access to tagged memory must fault")
	}
}

func TestUntaggedMappingNeverChecks(t *testing.T) {
	s := NewSpace()
	plain, _ := s.Map("plain", 4096, ProtRead|ProtWrite)
	ctx := checkingCtx(mte.TCFSync)
	// Any pointer tag is fine on a non-MTE mapping.
	if f := s.Store32(ctx, mte.MakePtr(plain.Base(), 0xF), 7); f != nil {
		t.Fatalf("tagged pointer to untagged mapping faulted: %v", f)
	}
}

func TestCopyInOutMove(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	begin := m.Base()
	m.SetTagRange(begin, begin+128, 0x4)
	p := mte.MakePtr(begin, 0x4)

	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i)
	}
	if f := s.CopyIn(ctx, p, src); f != nil {
		t.Fatal(f)
	}
	dst := make([]byte, 100)
	if f := s.CopyOut(ctx, p, dst); f != nil {
		t.Fatal(f)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("CopyOut mismatch at %d", i)
		}
	}

	// Move to a second tagged region.
	m.SetTagRange(begin+256, begin+384, 0x5)
	q := mte.MakePtr(begin+256, 0x5)
	if f := s.Move(ctx, q, p, 100); f != nil {
		t.Fatal(f)
	}
	if f := s.CopyOut(ctx, q, dst); f != nil {
		t.Fatal(f)
	}
	if dst[99] != 99 {
		t.Fatal("Move corrupted data")
	}

	// A Move crossing past the tagged range faults.
	if f := s.Move(ctx, q, p, 200); f == nil {
		t.Fatal("Move past tagged range must fault")
	}
	if f := s.CopyOut(ctx, p.Add(120), dst[:16]); f == nil {
		t.Fatal("CopyOut past tagged range must fault")
	}
	if f := s.CopyIn(ctx, p, nil); f != nil {
		t.Fatalf("empty CopyIn faulted: %v", f)
	}
}

func TestGranuleSharingFalseNegative(t *testing.T) {
	// Reproduces the §4.1 hazard: with 8-byte alignment two objects share a
	// granule and an OOB access within the shared granule goes undetected.
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	begin := m.Base()
	// "Object A" occupies [0,8) but its granule [0,16) gets tag 0x2.
	m.SetTagRange(begin, begin+8, 0x2)
	pA := mte.MakePtr(begin, 0x2)
	// OOB into [8,16): same granule, same tag — undetected (false negative).
	if f := s.Store32(ctx, pA.Add(8), 1); f != nil {
		t.Fatalf("within-granule OOB unexpectedly detected: %v", f)
	}
	// OOB into the next granule is detected.
	if f := s.Store32(ctx, pA.Add(16), 1); f == nil {
		t.Fatal("cross-granule OOB must be detected")
	}
}

func TestPropertyTagCheckMatchesGranuleTag(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	f := func(off uint16, tag, ptrTag uint8) bool {
		a := (m.Base() + mte.Addr(off)%mte.Addr(m.Size()-8)).AlignDown(16)
		tg, pt := mte.Tag(tag%16), mte.Tag(ptrTag%16)
		if _, err := m.SetTagRange(a, a+16, tg); err != nil {
			return false
		}
		_, fault := s.Load64(ctx, mte.MakePtr(a, pt))
		defer m.ZeroTagRange(a, a+16)
		if tg == pt {
			return fault == nil
		}
		return fault != nil && fault.Kind == mte.FaultTagMismatch && fault.MemTag == tg && fault.PtrTag == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTaggingAndChecking(t *testing.T) {
	// Distinct objects tagged/untagged concurrently while their owners access
	// them must not interfere — the atomic per-granule tag storage at work.
	s, m := newTestSpace(t)
	const threads = 16
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := checkingCtx(mte.TCFSync)
			begin := m.Base() + mte.Addr(id*1024)
			end := begin + 512
			tag := mte.Tag(id%15 + 1)
			for iter := 0; iter < 200; iter++ {
				if _, err := m.SetTagRange(begin, end, tag); err != nil {
					t.Error(err)
					return
				}
				p := mte.MakePtr(begin, tag)
				if f := s.Store64(ctx, p, uint64(iter)); f != nil {
					t.Errorf("thread %d: %v", id, f)
					return
				}
				if v, f := s.Load64(ctx, p); f != nil || v != uint64(iter) {
					t.Errorf("thread %d: load %v %v", id, v, f)
					return
				}
				if _, err := m.ZeroTagRange(begin, end); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
