package mem

import (
	"testing"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// Unmap removes the mapping from resolution, bumps the epoch so warm TLBs
// flush, and releases the backing storage.
func TestUnmapReleasesMapping(t *testing.T) {
	s := NewSpace()
	m, err := s.Map("victim", 8192, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Map("keep", 4096, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}

	ctx := cpu.New("t", mte.TCFSync)
	ctx.SetTCO(false)
	p := mte.MakePtr(m.Base(), 0)
	if f := s.Store64(ctx, p, 0xdead); f != nil {
		t.Fatalf("pre-unmap store faulted: %v", f)
	}

	epoch := s.Epoch()
	if err := s.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != epoch+1 {
		t.Fatalf("Unmap did not bump epoch: %d -> %d", epoch, s.Epoch())
	}
	if _, ok := s.Resolve(m.Base()); ok {
		t.Fatal("Resolve still finds the unmapped mapping")
	}
	if got := len(s.Mappings()); got != 1 {
		t.Fatalf("snapshot still holds %d mappings, want 1", got)
	}

	// The same thread context accessed the mapping before, so its TLB was
	// warm; the epoch bump must prevent a stale hit.
	_, f := s.Load64(ctx, p)
	if f == nil || f.Kind != mte.FaultUnmapped {
		t.Fatalf("post-unmap load: got fault %v, want SEGV_MAPERR", f)
	}

	// Retained handle degrades to errors, never touches released storage.
	if m.Size() != 0 {
		t.Fatalf("released mapping still reports size %d", m.Size())
	}
	if err := m.ReadRaw(m.Base(), make([]byte, 8)); err == nil {
		t.Fatal("ReadRaw on released mapping succeeded")
	}
	if _, err := m.SetTagRange(m.Base(), m.Base()+16, 3); err == nil {
		t.Fatal("SetTagRange on released mapping succeeded")
	}
	if m.Tagged() {
		t.Fatal("released mapping still reports tag storage")
	}

	// Unrelated mappings keep working.
	if f := s.Store64(ctx, mte.MakePtr(keep.Base(), 0), 1); f != nil {
		t.Fatalf("store to surviving mapping faulted: %v", f)
	}

	// Double unmap is an error, not corruption.
	if err := s.Unmap(m); err == nil {
		t.Fatal("double Unmap succeeded")
	}
}
