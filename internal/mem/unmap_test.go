package mem

import (
	"testing"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mte"
)

// Unmap removes the mapping from resolution, bumps the epoch so warm TLBs
// flush, and releases the backing storage.
func TestUnmapReleasesMapping(t *testing.T) {
	s := NewSpace()
	m, err := s.Map("victim", 8192, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Map("keep", 4096, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}

	ctx := cpu.New("t", mte.TCFSync)
	ctx.SetTCO(false)
	p := mte.MakePtr(m.Base(), 0)
	if f := s.Store64(ctx, p, 0xdead); f != nil {
		t.Fatalf("pre-unmap store faulted: %v", f)
	}

	epoch := s.Epoch()
	if err := s.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != epoch+1 {
		t.Fatalf("Unmap did not bump epoch: %d -> %d", epoch, s.Epoch())
	}
	if _, ok := s.Resolve(m.Base()); ok {
		t.Fatal("Resolve still finds the unmapped mapping")
	}
	if got := len(s.Mappings()); got != 1 {
		t.Fatalf("snapshot still holds %d mappings, want 1", got)
	}

	// The same thread context accessed the mapping before, so its TLB was
	// warm; the epoch bump must prevent a stale hit.
	_, f := s.Load64(ctx, p)
	if f == nil || f.Kind != mte.FaultUnmapped {
		t.Fatalf("post-unmap load: got fault %v, want SEGV_MAPERR", f)
	}

	// Retained handle degrades to errors, never touches released storage.
	if m.Size() != 0 {
		t.Fatalf("released mapping still reports size %d", m.Size())
	}
	if err := m.ReadRaw(m.Base(), make([]byte, 8)); err == nil {
		t.Fatal("ReadRaw on released mapping succeeded")
	}
	if _, err := m.SetTagRange(m.Base(), m.Base()+16, 3); err == nil {
		t.Fatal("SetTagRange on released mapping succeeded")
	}
	if m.Tagged() {
		t.Fatal("released mapping still reports tag storage")
	}

	// Unrelated mappings keep working.
	if f := s.Store64(ctx, mte.MakePtr(keep.Base(), 0), 1); f != nil {
		t.Fatalf("store to surviving mapping faulted: %v", f)
	}

	// Double unmap is an error, not corruption.
	if err := s.Unmap(m); err == nil {
		t.Fatal("double Unmap succeeded")
	}
}

// Unmap must return materialized tag pages to the space freelist and drop
// the resident-byte accounting — pooled VMs unmap and remap heaps on every
// recycle, so leaked tag pages would be per-lease garbage churn.
func TestUnmapReturnsTagPagesToFreelist(t *testing.T) {
	s := NewSpace()
	m, err := s.Map("victim", 4*uint64(tagPageSpan), ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize three pages with partial paints.
	for i := 0; i < 3; i++ {
		base := m.Base() + mte.Addr(i)*tagPageSpan + 5*mte.GranuleSize
		if _, err := m.SetTagRange(base, base+2*mte.GranuleSize, mte.Tag(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.TagStats()
	if before.PagesResident != 3 {
		t.Fatalf("PagesResident = %d before unmap, want 3", before.PagesResident)
	}
	if before.BytesResident == 0 || s.TagBytesResident() != before.BytesResident {
		t.Fatalf("inconsistent resident accounting: %+v vs %d", before, s.TagBytesResident())
	}

	if err := s.Unmap(m); err != nil {
		t.Fatal(err)
	}
	after := s.TagStats()
	if after.PagesResident != 0 {
		t.Fatalf("PagesResident = %d after unmap, want 0", after.PagesResident)
	}
	if after.FreePages != before.FreePages+3 {
		t.Fatalf("FreePages = %d, want %d (pages recycled, not leaked)", after.FreePages, before.FreePages+3)
	}
	if after.BytesResident >= before.BytesResident {
		t.Fatalf("BytesResident did not drop: %d -> %d", before.BytesResident, after.BytesResident)
	}
	if s.TagBytesResident() != 0 {
		t.Fatalf("TagBytesResident = %d after unmapping the only MTE mapping, want 0", s.TagBytesResident())
	}

	// A new mapping's materializations draw from the freelist.
	m2, err := s.Map("fresh", 16*1024, ProtRead|ProtWrite|ProtMTE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.SetTagRange(m2.Base(), m2.Base()+mte.GranuleSize, 0xC); err != nil {
		t.Fatal(err)
	}
	reused := s.TagStats()
	if reused.FreePages != after.FreePages-1 {
		t.Fatalf("FreePages = %d after re-materialization, want %d", reused.FreePages, after.FreePages-1)
	}
}
