package mem

import (
	"testing"

	"mte4jni/internal/mte"
)

// TestUnguardedVariantsMatchChecked pins the semantics of the guard-free
// access variants on the fault-free path: with matching tags they must
// return exactly what the checked accessors return, and with a *mismatched*
// tag they must still succeed — skipping the tag compare is the entire
// point; soundness comes from the caller's discharged proof, never from the
// variant itself.
func TestUnguardedVariantsMatchChecked(t *testing.T) {
	s, m := newTestSpace(t)
	ctx := checkingCtx(mte.TCFSync)
	if _, err := m.SetTagRange(m.Base(), m.Base()+4096, 0x7); err != nil {
		t.Fatal(err)
	}
	good := mte.MakePtr(m.Base(), 0x7)
	if f := s.Store64(ctx, good, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	want, f := s.Load64(ctx, good)
	if f != nil {
		t.Fatal(f)
	}
	if got, f := s.Load64Unguarded(ctx, good); f != nil || got != want {
		t.Fatalf("Load64Unguarded = %#x, %v; want %#x, nil", got, f, want)
	}
	// The forged pointer would fault checked; unguarded it must not.
	bad := mte.MakePtr(m.Base(), 0x9)
	if _, f := s.Load64(ctx, bad); f == nil {
		t.Fatal("checked Load64 with mismatched tag did not fault")
	}
	if got, f := s.Load64Unguarded(ctx, bad); f != nil || got != want {
		t.Fatalf("Load64Unguarded past a mismatched tag = %#x, %v; want %#x, nil", got, f, want)
	}
	// Mapping and protection checks stay: an unmapped address still faults.
	if _, f := s.Load64Unguarded(ctx, mte.MakePtr(m.End()+1<<20, 0x7)); f == nil {
		t.Fatal("Load64Unguarded off the mapping did not fault")
	}
}

// TestUnguardedAccessAllocs pins the zero-allocation property of the
// guard-free elided path: the whole point of compiling screening verdicts
// into elision is a cheaper per-access regime, so the unguarded variants
// must not allocate on the fault-free path any more than the checked ones
// do.
func TestUnguardedAccessAllocs(t *testing.T) {
	for _, mode := range []mte.CheckMode{mte.TCFSync, mte.TCFAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			s, m := newTestSpace(t)
			ctx := checkingCtx(mode)
			if _, err := m.SetTagRange(m.Base(), m.Base()+4096, 0x7); err != nil {
				t.Fatal(err)
			}
			p := mte.MakePtr(m.Base(), 0x7)
			buf := make([]byte, 1024)

			if avg := testing.AllocsPerRun(200, func() {
				if _, f := s.Load64Unguarded(ctx, p); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("Load64Unguarded allocates %v per op on the fault-free path", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				if f := s.Store64Unguarded(ctx, p, 0xDEAD); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("Store64Unguarded allocates %v per op on the fault-free path", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				if f := s.CopyOutUnguarded(ctx, p, buf); f != nil {
					t.Fatal(f)
				}
			}); avg != 0 {
				t.Fatalf("CopyOutUnguarded allocates %v per op on the fault-free path", avg)
			}
		})
	}
}
