package mem

import (
	"encoding/binary"
	"sync/atomic"
)

// Hierarchical two-level tag storage (DESIGN.md "Hierarchical tag storage").
//
// The flat one-byte-per-granule tag array of PR 2 made per-VM tag footprint
// proportional to mapped size: a 32 MiB pool session paid 2 MiB of tag bytes
// whether it touched one object or a million. Following Partap & Boneh's
// "Memory Tagging: A Memory Efficient Design" (PAPERS.md), tag storage is now
// a two-level table: a root directory with one entry per tag page — a tag
// page covers tagPageGranules granules of data (16 KiB, see the constant's
// doc for the width trade-off) — where each entry points at either
//
//   - a canonical uniform page (&uniformPages[t]): the whole page carries tag
//     t with no per-space backing storage. uniformPages[0] doubles as the
//     shared zero-tag page every fresh mapping starts out deduplicated
//     against, and SetTagRange installs uniform pages for every tag-page it
//     fully covers — the common post-retag state — in O(1) per page;
//   - a materialized private page: tagPageBytes bytes owned by this mapping,
//     copy-on-tag allocated the first time a SetTagRange paints only part of
//     a page (the only way a page becomes heterogeneous).
//
// The access fast path is unchanged in shape: one directory load resolves the
// page, then the same single-byte compare (intra-granule accesses) or SWAR
// word sweep (spans) as before runs over the page's bytes — canonical and
// private pages are both plain byte arrays, so the compare code cannot tell
// them apart and does not need to. Spans get one new fast-out: a page whose
// directory entry *is* the canonical page of the wanted tag matches without
// reading a single tag byte.
//
// # Concurrency
//
// Directory entries are atomic pointers. Readers do one atomic load (plain
// load + acquire on real hardware — free on the architectures we simulate);
// a materializing writer builds the complete private page off to the side
// and publishes it with a CompareAndSwap, so a concurrent reader observes
// either the old canonical page or the fully built private page, never a
// half-copied one. In-place tag writes on an already-private page touch only
// the granules of the range being retagged, which the object entry-lock
// discipline documented on Mapping.tags already serializes against readers
// of those same granules — exactly the contract the flat array relied on.
// Full-page retags (atomic Swap to a canonical page) only race with partial
// retags of the same page if two SetTagRange calls overlap, which the same
// discipline forbids.
//
// Displaced and released private pages go to a per-Space freelist so steady
// state allocation churn is zero (Unmap/heap.Close return pages; the next
// materialization reuses them).
//
// The directory itself is lazy too: a fresh mapping's tagTable carries a nil
// directory pointer, which every reader treats as "canonical zero page
// everywhere" — the exact state an eagerly allocated directory would start
// in. The first tag touch that needs real storage (a non-zero retag or a
// partial-page paint) CAS-publishes the one-and-only directory; tag-0 paints
// of a virgin mapping short-circuit without allocating. Mapped-but-untagged
// address space therefore pays zero tag footprint, directory included.
//
// # TLB interaction
//
// The per-thread TLB caches the resolved *tagTable next to the mapping (one
// pointer, invalidated by the existing Space epoch exactly like the mapping
// pointer — the directory is immutable for a mapping's lifetime). Individual
// tag-page pointers are deliberately NOT cached in the TLB: SetTagRange swaps
// directory entries without an epoch bump, so a cached page pointer could go
// stale mid-lease; the directory load per access is the price of coherence.

const (
	// tagPageGranules is the number of granules one tag page covers. At 16
	// bytes per granule a tag page spans tagPageGranules*16 = 16 KiB of
	// data (four 4 KiB mapping pages). The width is a latency/footprint
	// trade: wider pages shrink the directory 4x and let one atomic swap
	// retag 16 KiB (keeping SetTagRange at parity with the flat array's
	// word fill at the bench's n=16384 point), while a materialized page
	// still costs only 1 KiB. Mappings are 4 KiB-rounded, not 16 KiB-
	// rounded, so a mapping's last tag page may extend past its end; the
	// out-of-range slots are simply never addressed.
	tagPageGranules = 1024
	// tagPageShift and tagPageMask split a granule index into (page index,
	// in-page index).
	tagPageShift = 10
	tagPageMask  = tagPageGranules - 1
	// tagPageBytes is the backing cost of one materialized page (one tag
	// byte per granule).
	tagPageBytes = tagPageGranules
	// tagDirEntryBytes is the accounting cost of one directory entry.
	tagDirEntryBytes = 8
)

// tagPage holds the tags of one page's worth of granules.
type tagPage [tagPageGranules]uint8

// uniformPages are the 16 canonical uniform pages, one per tag value: page t
// holds tag t in every slot. They are shared by every Space and never
// written after init; a directory entry pointing at one is the inline
// "whole page is tag t" sentinel with no per-mapping storage behind it.
var uniformPages [16]tagPage

func init() {
	for t := range uniformPages {
		for i := range uniformPages[t] {
			uniformPages[t][i] = uint8(t)
		}
	}
}

// canonical returns the shared uniform page for tag b.
//
//mte4jni:fastpath
func canonical(b uint8) *tagPage { return &uniformPages[b&0xF] }

// isCanonical reports whether pg is one of the shared uniform pages, by
// pointer identity only. It deliberately reads no page bytes: pg may be a
// private page another goroutine is word-filling (disjoint-granule retags
// of one tag page are allowed concurrency), so even peeking at pg[0] to
// pick the comparison target would be a data race.
//
//mte4jni:fastpath
func isCanonical(pg *tagPage) bool {
	for i := range uniformPages {
		if pg == &uniformPages[i] {
			return true
		}
	}
	return false
}

// tagDir is the materialized page-pointer directory of one mapping: the
// atomic page pointers plus the private-page bit index. The slices are
// immutable after construction; only the entries move.
type tagDir struct {
	pages []atomic.Pointer[tagPage]
	// priv is a one-bit-per-page "directory entry is a materialized private
	// page" index (32 pages per word). The retag fast path tests one bit
	// instead of comparing against all 16 canonical pages; see setPartial
	// for the publication ordering that makes the bit trustworthy.
	priv []atomic.Uint32
}

// tagTable is one mapping's two-level tag store: a lazily materialized
// directory plus a back pointer to the owning Space for page recycling and
// accounting. A fresh mapping carries a nil directory — every granule is
// implicitly tag 0, the same state an eager all-zero-canonical directory
// would encode — so a huge mapping that is mapped but never tagged pays
// zero directory footprint (ROADMAP PR 7 "remaining headroom"). The
// directory materializes on the first tag touch that can produce a
// non-zero observation: any non-zero setRange, or a partial-page paint.
type tagTable struct {
	space *Space
	// dir is nil until the first tag touch; thereafter it points at the
	// mapping's one-and-only directory (CAS-published, never replaced).
	dir atomic.Pointer[tagDir]
	// granules is the mapping's true granule count, which the last
	// directory entry may overshoot (mappings are 4 KiB-rounded, tag pages
	// are wider); kept for the flat-equivalent accounting. npages is the
	// directory length a materialization will allocate.
	granules int
	npages   int
}

// privBit reports whether page pi is materialized. A set bit is published
// only after the private page is fully built and installed in the
// directory (setPartial), so an observer that sees the bit may reload the
// directory entry and fill it in place without inspecting the page.
//
//mte4jni:fastpath
func (d *tagDir) privBit(pi int) bool {
	return d.priv[pi>>5].Load()>>(pi&31)&1 != 0
}

// setPrivBit / clearPrivBit flip page pi's bit with a CAS loop (neighbour
// pages share the word and may flip their own bits concurrently). Both are
// off the steady-state path: bits change only when a page materializes or
// is displaced.
func (d *tagDir) setPrivBit(pi int) {
	w := &d.priv[pi>>5]
	for {
		old := w.Load()
		if w.CompareAndSwap(old, old|1<<(pi&31)) {
			return
		}
	}
}

func (d *tagDir) clearPrivBit(pi int) {
	w := &d.priv[pi>>5]
	for {
		old := w.Load()
		if w.CompareAndSwap(old, old&^(1<<(pi&31))) {
			return
		}
	}
}

// newTagTable builds the table for a mapping of the given granule count.
// No directory is allocated yet: a nil directory reads as the canonical
// zero page everywhere, which is exactly the fresh-mapping state. The
// directory length rounds up: the tail of the last tag page may cover
// granules past the mapping's end, which no access can ever index.
func newTagTable(s *Space, granules int) *tagTable {
	t := &tagTable{
		space:    s,
		granules: granules,
		npages:   (granules + tagPageGranules - 1) / tagPageGranules,
	}
	s.tagFlatBytes.Add(int64(granules))
	return t
}

// materialize returns the directory, building it on first use: every entry
// deduplicated against the canonical zero page (the state a nil directory
// already encodes, so readers racing the CAS observe no tag change). The
// loser of the publication race frees its candidate by dropping it; the
// winner takes over the accounting the eager constructor used to do —
// zero-dedup hits for the fresh entries plus the directory bytes — and
// bumps the DirsMaterialized counter that makes laziness observable.
func (t *tagTable) materialize() *tagDir {
	for {
		if d := t.dir.Load(); d != nil {
			return d
		}
		n := t.npages
		d := &tagDir{
			pages: make([]atomic.Pointer[tagPage], n),
			priv:  make([]atomic.Uint32, (n+31)/32),
		}
		zero := canonical(0)
		for i := range d.pages {
			d.pages[i].Store(zero)
		}
		if t.dir.CompareAndSwap(nil, d) {
			s := t.space
			s.tagDirsMaterialized.Add(1)
			s.tagZeroDedup.Add(uint64(n))
			s.tagDirBytes.Add(int64(n)*tagDirEntryBytes + int64(len(d.priv))*4)
			// Publishing the directory invalidates every TLB entry whose Aux
			// slot still says "unmaterialized" (lookup caches the resolved
			// *tagDir there so the access fast path pays a single pointer
			// hop; see Space.lookup). Materialization happens at most once
			// per mapping, so the flush-everything cost is a non-event.
			s.epoch.Add(1)
			return d
		}
	}
}

// page resolves one directory entry. A nil directory — the mapping has
// never been tagged — reads as the canonical zero page without
// materializing anything, so checked loads over untouched mappings stay
// allocation-free.
//
//mte4jni:fastpath
func (t *tagTable) page(pi int) *tagPage {
	d := t.dir.Load()
	if d == nil {
		return canonical(0)
	}
	return d.pages[pi].Load()
}

// directory returns the materialized directory, or nil when the mapping
// has never been tagged. The access engine caches the result in the TLB
// Aux slot; the nil→non-nil transition is covered by materialize's epoch
// bump.
//
//mte4jni:fastpath
func (t *tagTable) directory() *tagDir { return t.dir.Load() }

// page resolves one entry of a materialized directory — the single pointer
// load on the checked-access fast path. tagTable.page/tagDir.page are the
// only raw directory reads outside construction (the storage representation
// stays private to this file; tools/lintrepo's tagtable-encapsulation pass
// enforces it).
//
//mte4jni:fastpath
func (d *tagDir) page(pi int) *tagPage { return d.pages[pi].Load() }

// fillTags fills span with the tag byte — the software st2g/dc-gva fill
// loop. Spans here are at most one tag page (tagPageBytes); whole pages
// never reach a fill at all, they become directory swaps. Large spans seed
// 64 bytes of word stores and then double with copy — the memmove-backed
// fill the flat array used, which beats a store loop well before the
// half-page fills the Fig5 acquire/release path produces.
func fillTags(span []uint8, b uint8) {
	w := replicate8(b)
	const seed = 64
	if n := len(span); n > 2*seed {
		for i := 0; i < seed; i += 8 {
			binary.LittleEndian.PutUint64(span[i:], w)
		}
		for filled := seed; filled < n; filled *= 2 {
			copy(span[filled:], span[:filled])
		}
		return
	}
	i := 0
	for ; i+8 <= len(span); i += 8 {
		binary.LittleEndian.PutUint64(span[i:], w)
	}
	for ; i < len(span); i++ {
		span[i] = b
	}
}

// setRange paints granules [lo, hi) with tag b. Fully covered tag pages are
// swapped to the canonical uniform page of b — O(1) per page, no byte
// traffic — and partially covered edge pages are materialized copy-on-tag
// (or filled in place when already private).
//
// The uniform sweep batches its accounting: one counter add per call rather
// than per page, so the per-page cost of a large retag is a single atomic
// pointer swap — the locked-instruction budget that keeps SetTagRange/n
// competitive with the flat array's word fill at small n while staying
// O(pages) instead of O(granules) at large n.
func (t *tagTable) setRange(lo, hi int, b uint8) {
	if lo >= hi {
		return
	}
	if b&0xF == 0 && t.dir.Load() == nil {
		// Painting tag 0 over a never-tagged mapping is a no-op: a nil
		// directory already reads as all-zero. Staying lazy here skips the
		// per-call uniform/zero-dedup accounting an eager directory would
		// have recorded, which is deliberate — nothing was swapped because
		// nothing exists yet.
		return
	}
	d := t.materialize()
	first, last := lo>>tagPageShift, (hi-1)>>tagPageShift
	if pi := first; lo&tagPageMask != 0 || pi == last && hi&tagPageMask != 0 {
		segHi := tagPageGranules
		if pi == last {
			segHi = (hi-1)&tagPageMask + 1
		}
		t.setPartial(d, pi, lo&tagPageMask, segHi, b)
		first++
	}
	if hi&tagPageMask != 0 && last >= first {
		t.setPartial(d, last, 0, (hi-1)&tagPageMask+1, b)
		last--
	}
	if first > last {
		return
	}
	want := canonical(b)
	s := t.space
	uniform, displaced := 0, 0
	for pi := first; pi <= last; pi++ {
		if d.pages[pi].Load() == want {
			continue
		}
		old := d.pages[pi].Swap(want)
		if old == want {
			continue
		}
		uniform++
		if d.privBit(pi) {
			d.clearPrivBit(pi)
			s.putTagPage(old)
			displaced++
		}
	}
	if uniform > 0 {
		s.tagUniform.Add(uint64(uniform))
		if b&0xF == 0 {
			s.tagZeroDedup.Add(uint64(uniform))
		}
	}
	if displaced > 0 {
		s.tagResidentPages.Add(-int64(displaced))
	}
}

// setPartial paints granules [segLo, segHi) of page pi with b. A private
// page is filled in place — the word fill touches only the bytes of the
// range's own granules, the same unbracketed discipline the flat array's
// fill relied on (readers of those granules are serialized by the object
// entry locks, readers of other granules touch disjoint bytes); a canonical
// page of a different color is materialized: a freelist page is built
// complete — uniform background, then the painted span — and published with
// a CAS, so concurrent readers see the old or the finished page, never a
// torn one.
//
// The steady-state in-place branch keys off the priv bit, not a canonical-
// page scan: the bit is set only after the CAS installs the finished page,
// so seeing it means a fresh directory load yields a private page whose
// other granules may be filled concurrently but whose identity is stable
// (only exclusive whole-page retags displace a private page). The converse
// window — directory already private, bit not yet visible — parks in the
// isCanonical spin below until the publisher's bit lands, which also keeps
// a CAS loser from treating the winner's page as a canonical background.
func (t *tagTable) setPartial(d *tagDir, pi, segLo, segHi int, b uint8) {
	for {
		if d.privBit(pi) {
			cur := d.pages[pi].Load()
			fillTags(cur[segLo:segHi], b)
			return
		}
		cur := d.pages[pi].Load()
		if !isCanonical(cur) {
			// Publication in flight: the page is installed but its priv
			// bit is not visible yet. Loop until it is.
			continue
		}
		if cur[0] == b&0xF {
			// The whole page already carries this tag.
			return
		}
		np := t.space.takeTagPage()
		fillTags(np[:], cur[0])
		fillTags(np[segLo:segHi], b)
		if d.pages[pi].CompareAndSwap(cur, np) {
			d.setPrivBit(pi)
			t.space.tagMaterialized.Add(1)
			t.space.tagResidentPages.Add(1)
			return
		}
		// Another thread repainted the page first; recycle and retry
		// against whatever it installed.
		t.space.putTagPage(np)
	}
}

// release returns every materialized page to the Space freelist and drops
// the directory from the accounting — the Unmap path. The entries are reset
// to the zero page so a stale reader through a retained handle sees
// well-formed (if meaningless) storage rather than a dangling page. A
// never-materialized table has nothing to return: only the flat-equivalent
// accounting unwinds.
func (t *tagTable) release() {
	s := t.space
	s.tagFlatBytes.Add(-int64(t.granules))
	d := t.dir.Load()
	if d == nil {
		return
	}
	zero := canonical(0)
	for i := range d.pages {
		if pg := d.pages[i].Swap(zero); d.privBit(i) {
			d.clearPrivBit(i)
			s.putTagPage(pg)
			s.tagResidentPages.Add(-1)
		}
	}
	s.tagDirBytes.Add(-int64(len(d.pages))*tagDirEntryBytes - int64(len(d.priv))*4)
}

// takeTagPage pops a recycled page off the freelist, allocating only when
// the freelist is dry.
func (s *Space) takeTagPage() *tagPage {
	s.tagFreeMu.Lock()
	if n := len(s.tagFree); n > 0 {
		pg := s.tagFree[n-1]
		s.tagFree[n-1] = nil
		s.tagFree = s.tagFree[:n-1]
		s.tagFreeMu.Unlock()
		return pg
	}
	s.tagFreeMu.Unlock()
	return new(tagPage)
}

// putTagPage returns a displaced private page for reuse.
func (s *Space) putTagPage(pg *tagPage) {
	s.tagFreeMu.Lock()
	s.tagFree = append(s.tagFree, pg)
	s.tagFreeMu.Unlock()
}

// TagStats is a point-in-time view of the space's hierarchical tag-storage
// accounting.
type TagStats struct {
	// PagesMaterialized counts copy-on-tag materializations (monotonic).
	PagesMaterialized uint64
	// PagesUniform counts directory entries repointed at a canonical
	// uniform page by SetTagRange (monotonic; initial zero-page entries are
	// counted under ZeroDedupHits instead).
	PagesUniform uint64
	// ZeroDedupHits counts directory entries sharing the canonical zero
	// page: every entry of a fresh MTE mapping plus every full-page
	// ZeroTagRange (monotonic).
	ZeroDedupHits uint64
	// PagesResident is the materialized-page gauge; FreePages counts
	// recycled pages parked on the freelist (backed by memory but not
	// attributed to any mapping).
	PagesResident uint64
	FreePages     uint64
	// DirsMaterialized counts directory materializations (monotonic): a
	// mapping's page-pointer directory is allocated lazily on the first
	// tag touch, so mapped-but-never-tagged address space contributes
	// nothing here and nothing to DirBytes.
	DirsMaterialized uint64
	// DirBytes is the root-directory overhead across live MTE mappings
	// whose directory has materialized, reported separately from the
	// page bytes so the directory's share of the footprint is visible.
	DirBytes uint64
	// BytesResident is the tag-storage footprint the space actually pays:
	// materialized pages plus directories.
	BytesResident uint64
	// BytesFlatEquiv is what the pre-hierarchical flat tag array would pay
	// for the same mappings (one byte per granule of actual mapping size,
	// allocated eagerly).
	BytesFlatEquiv uint64
}

// TagStats returns the space's tag-storage accounting.
func (s *Space) TagStats() TagStats {
	s.tagFreeMu.Lock()
	free := uint64(len(s.tagFree))
	s.tagFreeMu.Unlock()
	resident := uint64(s.tagResidentPages.Load())
	dir := uint64(s.tagDirBytes.Load())
	return TagStats{
		PagesMaterialized: s.tagMaterialized.Load(),
		PagesUniform:      s.tagUniform.Load(),
		ZeroDedupHits:     s.tagZeroDedup.Load(),
		PagesResident:     resident,
		FreePages:         free,
		DirsMaterialized:  s.tagDirsMaterialized.Load(),
		DirBytes:          dir,
		BytesResident:     resident*tagPageBytes + dir,
		BytesFlatEquiv:    uint64(s.tagFlatBytes.Load()),
	}
}

// TagBytesResident returns the bytes of tag storage currently backing the
// space's MTE mappings: materialized private pages plus directory overhead.
// Freelist pages are excluded — they are recycling capacity, not footprint
// attributed to a mapping — and reported separately in TagStats.FreePages.
func (s *Space) TagBytesResident() uint64 {
	return uint64(s.tagResidentPages.Load())*tagPageBytes + uint64(s.tagDirBytes.Load())
}
