// Package mem implements the simulated 64-bit address space that stands in
// for the device RAM of the paper's testbed.
//
// Memory is organised as mappings (the moral equivalent of mmap regions).
// A mapping created with ProtMTE carries one 4-bit allocation tag per
// 16-byte granule, mirroring how Linux exposes MTE: the paper's §4.1
// modifies ART to map the Java heap with PROT_MTE, and this package is where
// that flag takes effect.
//
// All native-code access to Java heap memory in this reproduction goes
// through the checked Load/Store/Copy entry points, which consult the
// accessing thread's cpu.Context exactly as the hardware consults
// SCTLR.TCF and PSTATE.TCO: checking happens only when the thread's mode is
// sync or async and TCO is clear. Tag mismatches either return a synchronous
// fault (sync mode) or are latched on the thread and the access proceeds
// (async mode).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mte4jni/internal/mte"
)

// Prot is a mapping protection mask, following the PROT_* naming.
type Prot uint8

const (
	// ProtRead permits loads.
	ProtRead Prot = 1 << iota
	// ProtWrite permits stores.
	ProtWrite
	// ProtMTE allocates tag storage for the mapping and enables tag
	// checking on accesses to it, like PROT_MTE on Linux.
	ProtMTE
)

// String renders the mask in mmap style, e.g. "rw+mte".
func (p Prot) String() string {
	s := ""
	if p&ProtRead != 0 {
		s += "r"
	} else {
		s += "-"
	}
	if p&ProtWrite != 0 {
		s += "w"
	} else {
		s += "-"
	}
	if p&ProtMTE != 0 {
		s += "+mte"
	}
	return s
}

// pageSize is the simulated page granularity for mapping placement.
const pageSize = 4096

// guardGap is the unmapped slack left between consecutive mappings so that a
// wild out-of-bounds access past a mapping's end faults as SEGV_MAPERR
// instead of silently landing in a neighbour.
const guardGap = 1 << 20

// spaceBase is where the first mapping is placed. The value keeps simulated
// pointers looking like plausible AArch64 userspace addresses.
const spaceBase = mte.Addr(0x7000_0000_0000)

// Mapping is one contiguous region of simulated memory.
type Mapping struct {
	base mte.Addr
	prot Prot
	name string
	data []byte
	// tags is the mapping's hierarchical tag table when the mapping is
	// ProtMTE; nil otherwise. See tagtable.go for the two-level layout
	// (directory of canonical uniform pages and materialized private
	// pages) and its concurrency rules.
	//
	// Tag bytes inside a page are plain bytes, not atomics, mirroring how
	// cheap hardware tag operations are relative to data accesses. This is
	// race-safe under the system's synchronization discipline: a granule's
	// tag is only written while its object's entry lock (package core) is
	// held with no other holder (refs 0->1 and 1->0 transitions), every
	// reader's acquire of the same entry lock establishes the
	// happens-before edge, and threads with checking disabled (TCO set)
	// never read tags at all. Directory entries are atomic pointers on top
	// of that discipline, so page materialization publishes only fully
	// built pages.
	tags *tagTable

	// Concurrent-scan synchronization. On hardware a GC thread reading a
	// word another thread is storing to is an ordinary (if unordered) pair
	// of accesses; in the simulator both touch the same Go byte slice and
	// would be a real data race. A VM that runs a concurrent collector
	// therefore flips scanSync (sticky, via EnableScanSync) and from then on
	// every checked store takes scanMu shared while the scanner brackets its
	// reads with the exclusive side. VMs without a concurrent scanner pay
	// only the scanSync load per store.
	scanSync atomic.Bool
	scanMu   sync.RWMutex
}

// EnableScanSync permanently switches the mapping into concurrent-scan mode:
// subsequent checked stores synchronize with LockScan/UnlockScan brackets.
// Called by the VM when a concurrent GC thread attaches. Stores already in
// flight are unaffected, so the caller must enable before the scanner starts
// and must not have mutators racing with the enablement itself (VM threads
// attach before they run).
func (m *Mapping) EnableScanSync() { m.scanSync.Store(true) }

// ScanSyncEnabled reports whether concurrent-scan mode is on.
func (m *Mapping) ScanSyncEnabled() bool { return m.scanSync.Load() }

// LockScan and UnlockScan bracket a concurrent scanner's reads of mapping
// data, excluding checked stores for the duration. Scanners hold the lock
// per scanned object, not per scan, so mutators are never stalled for more
// than a few word accesses.
func (m *Mapping) LockScan()   { m.scanMu.Lock() }
func (m *Mapping) UnlockScan() { m.scanMu.Unlock() }

// storeLock takes the store side of the scan lock when scan mode is on; it
// reports whether storeUnlock must be called.
func (m *Mapping) storeLock() bool {
	if !m.scanSync.Load() {
		return false
	}
	m.scanMu.RLock()
	return true
}

func (m *Mapping) storeUnlock(locked bool) {
	if locked {
		m.scanMu.RUnlock()
	}
}

// Base returns the first address of the mapping.
func (m *Mapping) Base() mte.Addr { return m.base }

// Size returns the mapping length in bytes.
func (m *Mapping) Size() uint64 { return uint64(len(m.data)) }

// End returns one past the last address of the mapping.
func (m *Mapping) End() mte.Addr { return m.base + mte.Addr(len(m.data)) }

// Prot returns the mapping's protection mask.
func (m *Mapping) Prot() Prot { return m.prot }

// Name returns the human-readable label given at Map time.
func (m *Mapping) Name() string { return m.name }

// Tagged reports whether the mapping carries MTE tag storage.
func (m *Mapping) Tagged() bool { return m.tags != nil }

// contains reports whether [addr, addr+size) lies fully inside the mapping.
func (m *Mapping) contains(addr mte.Addr, size int) bool {
	if addr < m.base {
		return false
	}
	off := uint64(addr - m.base)
	return off+uint64(size) <= uint64(len(m.data))
}

// granuleIndex converts an in-mapping address to a tag-array index.
func (m *Mapping) granuleIndex(addr mte.Addr) int {
	return int(uint64(addr-m.base) >> mte.GranuleShift)
}

// TagAt returns the allocation tag of the granule containing addr. It
// reports tag 0 for untagged mappings, which matches hardware behaviour for
// non-PROT_MTE pages (they behave as tag-0 memory).
func (m *Mapping) TagAt(addr mte.Addr) mte.Tag {
	if m.tags == nil {
		return 0
	}
	gi := m.granuleIndex(addr)
	return mte.Tag(m.tags.page(gi >> tagPageShift)[gi&tagPageMask])
}

// SetTagRange applies tag to every granule overlapping [begin, end),
// simulating a loop of st2g instructions (Algorithm 1 step 3). It returns
// the number of granules written. Addresses outside the mapping are an
// error: tagging is a VM-internal operation, so this is a bug, not a
// recoverable fault.
//
// Tagging goes through the hierarchical tag table (tagtable.go): every tag
// page fully covered by the range becomes a single directory swap to the
// canonical uniform page of the tag — O(1) per 4 KiB regardless of span
// length, no byte traffic, and releasing any private page the entry held —
// while the partial edge pages are word-filled (eight granule tags per
// store, the software analogue of the st2g/dc gva fill loops MTE-aware
// allocators use), materializing copy-on-tag if still canonical. Tag
// application sits on the Acquire and Release hot paths of every Fig5/Fig6
// iteration, so the edge fill stays byte-loop-free; it replaces PR 2's
// doubling-copy fill, which touched every tag byte of large spans.
func (m *Mapping) SetTagRange(begin, end mte.Addr, tag mte.Tag) (int, error) {
	if m.tags == nil {
		return 0, fmt.Errorf("mem: SetTagRange on non-MTE mapping %q", m.name)
	}
	gb, ge := mte.GranuleRange(begin, end)
	if gb < m.base || ge > m.End() {
		return 0, fmt.Errorf("mem: SetTagRange [%v,%v) outside mapping %q [%v,%v)", begin, end, m.name, m.base, m.End())
	}
	lo, hi := m.granuleIndex(gb), m.granuleIndex(ge)
	m.tags.setRange(lo, hi, uint8(tag&0xF))
	return hi - lo, nil
}

// ZeroTagRange clears the tags of every granule overlapping [begin, end),
// used by tag release (Algorithm 2 step 3).
func (m *Mapping) ZeroTagRange(begin, end mte.Addr) (int, error) {
	return m.SetTagRange(begin, end, 0)
}

// ReadRaw copies mapping bytes starting at addr into dst without any tag or
// protection checking. It is the runtime-internal view of memory (the
// allocator, the GC and the guarded-copy machinery use it) — the moral
// equivalent of ART touching its own heap from managed code paths.
func (m *Mapping) ReadRaw(addr mte.Addr, dst []byte) error {
	if !m.contains(addr, len(dst)) {
		return fmt.Errorf("mem: ReadRaw [%v,+%d) outside mapping %q", addr, len(dst), m.name)
	}
	copy(dst, m.data[addr-m.base:])
	return nil
}

// WriteRaw copies src into the mapping at addr without checking.
func (m *Mapping) WriteRaw(addr mte.Addr, src []byte) error {
	if !m.contains(addr, len(src)) {
		return fmt.Errorf("mem: WriteRaw [%v,+%d) outside mapping %q", addr, len(src), m.name)
	}
	locked := m.storeLock()
	copy(m.data[addr-m.base:], src)
	m.storeUnlock(locked)
	return nil
}

// Bytes returns the raw backing slice for [addr, addr+size), bypassing all
// checking. Intended for runtime internals and tests only.
func (m *Mapping) Bytes(addr mte.Addr, size int) ([]byte, error) {
	if !m.contains(addr, size) {
		return nil, fmt.Errorf("mem: Bytes [%v,+%d) outside mapping %q", addr, size, m.name)
	}
	off := addr - m.base
	return m.data[off : off+mte.Addr(size) : off+mte.Addr(size)], nil
}

// Space is a simulated process address space: an ordered set of mappings.
// Mapping creation is rare and locked; address resolution on the access hot
// path goes through each thread's TLB (cpu.TLB) and, on a miss, a binary
// search over an immutable sorted snapshot, so concurrent native threads
// never serialize on the Space itself.
//
// # Epoch / TLB invalidation contract
//
// Per-thread TLBs cache (base, end, *Mapping) triples from the snapshot.
// Map publishes the new snapshot first and only then bumps the epoch
// counter; the access fast path loads the epoch before probing the TLB and
// flushes it on any change. Because mappings are immutable and never
// removed, a stale TLB entry can only cause a miss (which re-reads the
// snapshot), never a wrong hit — the epoch keeps the contract explicit and
// future-proofs it against unmapping. TestTLBInvalidationStress exercises
// this under the race detector.
type Space struct {
	mu       sync.Mutex
	nextBase mte.Addr
	snapshot atomic.Pointer[[]*Mapping]
	// epoch counts Map calls; bumped after the snapshot is published.
	epoch atomic.Uint64

	// Hierarchical tag-storage accounting and page recycling (tagtable.go).
	// tagFree is the freelist of displaced/released private tag pages;
	// the atomics are the counters surfaced by TagStats.
	tagFreeMu           sync.Mutex
	tagFree             []*tagPage
	tagMaterialized     atomic.Uint64
	tagUniform          atomic.Uint64
	tagZeroDedup        atomic.Uint64
	tagDirsMaterialized atomic.Uint64
	tagResidentPages    atomic.Int64
	tagDirBytes         atomic.Int64
	tagFlatBytes        atomic.Int64
}

// NewSpace creates an empty address space.
func NewSpace() *Space {
	s := &Space{nextBase: spaceBase}
	empty := []*Mapping{}
	s.snapshot.Store(&empty)
	return s
}

// Epoch returns the current mapping epoch. It changes exactly when Map
// publishes a new mapping; TLBs stamped with an older epoch must flush.
func (s *Space) Epoch() uint64 { return s.epoch.Load() }

// Map creates a new mapping of size bytes (rounded up to the page size) with
// the given protection and returns it. Placement is linear with a guard gap
// after each mapping, so the snapshot stays sorted by base address — the
// property the Resolve binary search depends on.
func (s *Space) Map(name string, size uint64, prot Prot) (*Mapping, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: Map %q: zero size", name)
	}
	rounded := (size + pageSize - 1) &^ (pageSize - 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Mapping{
		base: s.nextBase,
		prot: prot,
		name: name,
		data: make([]byte, rounded),
	}
	if prot&ProtMTE != 0 {
		// Lazy hierarchical tag storage: every page starts deduplicated
		// against the shared zero page, and even the page-pointer directory
		// is deferred until the first tag touch — a mapped-but-untagged
		// region costs zero tag bytes, directory included.
		m.tags = newTagTable(s, int(rounded/mte.GranuleSize))
	}
	s.nextBase += mte.Addr(rounded + guardGap)

	old := *s.snapshot.Load()
	next := make([]*Mapping, len(old)+1)
	copy(next, old)
	next[len(old)] = m
	// Publish the snapshot BEFORE bumping the epoch: a thread that observes
	// the new epoch and flushes its TLB must find the new mapping when its
	// miss path re-reads the snapshot.
	s.snapshot.Store(&next)
	s.epoch.Add(1)
	return m, nil
}

// Unmap removes m from the space and releases its backing storage (data
// bytes and tag storage), the simulated munmap. Subsequent resolution of any
// address inside the old range reports unmapped (SEGV_MAPERR on access), and
// raw access through a retained *Mapping handle fails its bounds check
// because the released mapping has zero length.
//
// Like Map, publication order is snapshot first, epoch second. Unlike Map a
// stale TLB entry here could be a *wrong hit*, not just a miss, so Unmap
// requires quiescence: no thread may be concurrently accessing the mapping
// when it is unmapped. The VM teardown path (heap.Close via vm.Close) is the
// only caller and owns that guarantee — a pooled VM is closed only while
// exclusively leased.
func (s *Space) Unmap(m *Mapping) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.snapshot.Load()
	next := make([]*Mapping, 0, len(old))
	found := false
	for _, cur := range old {
		if cur == m {
			found = true
			continue
		}
		next = append(next, cur)
	}
	if !found {
		return fmt.Errorf("mem: Unmap of unknown mapping %q", m.name)
	}
	s.snapshot.Store(&next)
	s.epoch.Add(1)
	// Release the backing storage. contains() now fails for every access, so
	// retained handles degrade to errors rather than touching freed state.
	// Materialized tag pages go back to the space freelist instead of
	// becoming garbage — pooled VMs unmap and remap heaps constantly.
	if m.tags != nil {
		m.tags.release()
	}
	m.data = nil
	m.tags = nil
	return nil
}

// ResetTags repaints every granule of m back to tag 0 and bumps the space
// epoch — the tag-reseed primitive. Painting zero collapses the mapping's
// materialized tag pages back onto the canonical zero page (or leaves a
// never-materialized directory untouched), so an attacker's learned tags go
// stale wholesale; the epoch bump flushes per-thread TLBs and, more to the
// point, invalidates any elision mask primed against the pre-reseed epoch
// (jni.Env.ArmElision refuses a stale prime). Like retagging in general the
// caller must hold the mapping quiescent: the pool reseeds only sessions it
// exclusively owns, between leases.
func (s *Space) ResetTags(m *Mapping) {
	if m.tags != nil {
		m.tags.setRange(0, m.tags.granules, 0)
	}
	// Snapshot is unchanged, so a flushed TLB re-resolves identical mapping
	// state; the bump exists to invalidate epoch-stamped caches (TLB Aux,
	// primed elision bindings).
	s.epoch.Add(1)
}

// Resolve finds the mapping containing addr by binary search over the
// sorted snapshot. The second result is false when addr is unmapped.
func (s *Space) Resolve(addr mte.Addr) (*Mapping, bool) {
	snap := *s.snapshot.Load()
	lo, hi := 0, len(snap)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if snap[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first mapping with base > addr; the candidate is its left
	// neighbour.
	if lo > 0 {
		if m := snap[lo-1]; addr < m.End() {
			return m, true
		}
	}
	return nil, false
}

// Mappings returns a snapshot of all current mappings in creation order.
func (s *Space) Mappings() []*Mapping {
	snap := *s.snapshot.Load()
	out := make([]*Mapping, len(snap))
	copy(out, snap)
	return out
}
