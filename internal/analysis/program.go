package analysis

import (
	"encoding/json"
	"fmt"
	"os"

	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
)

// A program file is the on-disk form `mte4jni lint` consumes: one bytecode
// method plus the behavioural summaries of the natives it calls, as JSON.
// Opcode names match interp.Opcode.String(), so a listing and its file read
// the same:
//
//	{
//	  "method": {
//	    "name": "main", "maxLocals": 1, "maxRefs": 1,
//	    "nativeNames": ["sum"],
//	    "code": [
//	      {"op": "const", "a": 18},
//	      {"op": "newarray", "a": 0},
//	      {"op": "callnative", "a": 0, "b": 0},
//	      {"op": "const", "a": 0},
//	      {"op": "return"}
//	    ]
//	  },
//	  "natives": {
//	    "sum": {"kind": "regular", "minOffset": 0, "maxOffset": 71}
//	  }
//	}

// Program couples a method with the native summaries in scope for it.
type Program struct {
	Method  *interp.Method
	Natives map[string]NativeSummary
}

// programJSON is the wire form.
type programJSON struct {
	Method  methodJSON            `json:"method"`
	Natives map[string]nativeJSON `json:"natives,omitempty"`
}

type methodJSON struct {
	Name        string     `json:"name"`
	MaxLocals   int        `json:"maxLocals"`
	MaxRefs     int        `json:"maxRefs"`
	NativeNames []string   `json:"nativeNames,omitempty"`
	Code        []instJSON `json:"code"`
}

type instJSON struct {
	Op string `json:"op"`
	A  int64  `json:"a,omitempty"`
	B  int64  `json:"b,omitempty"`
}

type nativeJSON struct {
	Kind            string `json:"kind,omitempty"`
	MinOffset       int64  `json:"minOffset"`
	MaxOffset       int64  `json:"maxOffset"`
	Write           bool   `json:"write,omitempty"`
	UseAfterRelease bool   `json:"useAfterRelease,omitempty"`
	ForgeTag        bool   `json:"forgeTag,omitempty"`
	DamageOps       int    `json:"damageOps,omitempty"`
	ConcurrentScan  bool   `json:"concurrentScan,omitempty"`
	ManagedRace     bool   `json:"managedRace,omitempty"`
}

// opByName maps Opcode.String() names back to opcodes.
var opByName = func() map[string]interp.Opcode {
	m := make(map[string]interp.Opcode)
	for op := interp.OpConst; op <= interp.OpReturn; op++ {
		m[op.String()] = op
	}
	return m
}()

// kindByName maps the JSON kind names to trampoline kinds.
var kindByName = map[string]jni.NativeKind{
	"":         jni.Regular,
	"regular":  jni.Regular,
	"fast":     jni.FastNative,
	"critical": jni.CriticalNative,
}

// KindName renders a NativeKind in the JSON vocabulary.
func KindName(k jni.NativeKind) string {
	switch k {
	case jni.FastNative:
		return "fast"
	case jni.CriticalNative:
		return "critical"
	default:
		return "regular"
	}
}

// ParseProgram decodes a JSON program.
func ParseProgram(data []byte) (*Program, error) {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("analysis: parse program: %w", err)
	}
	m := &interp.Method{
		Name:        pj.Method.Name,
		MaxLocals:   pj.Method.MaxLocals,
		MaxRefs:     pj.Method.MaxRefs,
		NativeNames: pj.Method.NativeNames,
	}
	if m.Name == "" {
		m.Name = "main"
	}
	for i, ij := range pj.Method.Code {
		op, ok := opByName[ij.Op]
		if !ok {
			return nil, fmt.Errorf("analysis: parse program: pc %d: unknown opcode %q", i, ij.Op)
		}
		m.Code = append(m.Code, interp.Inst{Op: op, A: ij.A, B: ij.B})
	}
	p := &Program{Method: m, Natives: make(map[string]NativeSummary)}
	for name, nj := range pj.Natives {
		kind, ok := kindByName[nj.Kind]
		if !ok {
			return nil, fmt.Errorf("analysis: parse program: native %q: unknown kind %q", name, nj.Kind)
		}
		p.Natives[name] = NativeSummary{
			Kind: kind, MinOff: nj.MinOffset, MaxOff: nj.MaxOffset,
			Write: nj.Write, UseAfterRelease: nj.UseAfterRelease, ForgeTag: nj.ForgeTag,
			DamageOps: nj.DamageOps, ConcurrentScan: nj.ConcurrentScan, ManagedRace: nj.ManagedRace,
		}
	}
	return p, nil
}

// MarshalProgram encodes a program to the JSON wire form (indented), the
// inverse of ParseProgram. The fuzzer uses it to persist failing programs.
func MarshalProgram(p *Program) ([]byte, error) {
	pj := programJSON{
		Method: methodJSON{
			Name:        p.Method.Name,
			MaxLocals:   p.Method.MaxLocals,
			MaxRefs:     p.Method.MaxRefs,
			NativeNames: p.Method.NativeNames,
		},
	}
	for _, in := range p.Method.Code {
		pj.Method.Code = append(pj.Method.Code, instJSON{Op: in.Op.String(), A: in.A, B: in.B})
	}
	if len(p.Natives) > 0 {
		pj.Natives = make(map[string]nativeJSON, len(p.Natives))
		for name, s := range p.Natives {
			pj.Natives[name] = nativeJSON{
				Kind: KindName(s.Kind), MinOffset: s.MinOff, MaxOffset: s.MaxOff,
				Write: s.Write, UseAfterRelease: s.UseAfterRelease, ForgeTag: s.ForgeTag,
				DamageOps: s.DamageOps, ConcurrentScan: s.ConcurrentScan, ManagedRace: s.ManagedRace,
			}
		}
	}
	return json.MarshalIndent(pj, "", "  ")
}

// LoadProgram reads and parses a program file.
func LoadProgram(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseProgram(data)
}

// Analyze runs the abstract interpreter over the program. file, when
// nonempty, is stamped into the diagnostics for grep-able output.
func (p *Program) Analyze(file string) *MethodResult {
	return analyzeMethod(p.Method, p.Natives, file)
}
