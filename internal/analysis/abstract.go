package analysis

import (
	"fmt"
	"math"

	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

// elemSize is the byte width of the int-array elements OpNewArray allocates
// (vm.Object int arrays, matching interp's array model).
const elemSize = 4

// neighbourWindow is how far beyond the granule-rounded payload an access is
// still a *deterministic* tag-check fault when the allocator runs with
// neighbour exclusion (core.Config.ExcludeNeighbors): the irg excludes the
// tags of the two granules on either side of the block, so any access within
// two granules of it is guaranteed to see a mismatching tag.
const neighbourWindow = 2 * mte.GranuleSize

// maxProvableLen bounds the array lengths (in elements) for which the
// analyzer will claim anything about allocation success. Larger requests may
// legitimately end in OutOfMemoryError, which is a managed throw, not a
// fault, so it poisons both verdict directions equally little — but it keeps
// the fault verdict honest.
const maxProvableLen = 1024

// maxProvableCode bounds the method size for the provably-faulting verdict:
// the interpreter throws StackOverflowError at 1024 operands, and on an
// acyclic path the stack depth is below the instruction count, so methods
// under this bound can never hit the limit.
const maxProvableCode = 1024

// NativeSummary is the behavioural specification of a native method, the
// analyzer's stand-in for the native's machine code. It doubles as an
// executable spec: internal/fuzz materialises a native body from it that
// performs byte accesses at exactly MinOff and MaxOff (relative to the array
// payload handed out by GetIntArrayElements), so the static verdict and the
// dynamic run describe the same behaviour.
type NativeSummary struct {
	// Kind selects the trampoline; @CriticalNative bodies run with tag
	// checking never armed.
	Kind jni.NativeKind
	// MinOff and MaxOff bound the byte offsets the native accesses relative
	// to the payload begin; both extremes are actually touched. MinOff >
	// MaxOff means the native performs no heap accesses at all.
	MinOff, MaxOff int64
	// Write marks the accesses as stores rather than loads.
	Write bool
	// UseAfterRelease makes the native release the elements first and then
	// perform the accesses through the stale pointer.
	UseAfterRelease bool
	// ForgeTag makes the native flip pointer tag bits 56-59 (without irg)
	// before accessing.
	ForgeTag bool
	// DamageOps is how many additional accesses the native issues after its
	// primary touch sequence, all at MinOff — the "keep working after the
	// violation" shape the red-team window attacks use. Under sync TCF a
	// faulting first access suppresses them, so they never change the fault
	// verdict; under deferred checking they are interfering writes inside
	// the acquire/release window.
	DamageOps int
	// ConcurrentScan marks the hold window as overlapping a concurrent GC
	// scan of the same heap (the native body runs while a collector thread
	// reads live payloads).
	ConcurrentScan bool
	// ManagedRace marks a managed-side write to the same array committing
	// while the native holds its hand-out — the lost-update shape: under a
	// copying interface the release copy-back overwrites the managed write
	// with the stale snapshot.
	ManagedRace bool
}

// Touches reports whether the summary performs any heap access.
func (s NativeSummary) Touches() bool { return s.MinOff <= s.MaxOff }

// CallSite is one analyzed OpCallNative instruction.
type CallSite struct {
	// PC is the instruction index.
	PC int
	// Name is the native method name.
	Name string
	// Ref is the reference slot the call passes (the instruction's B
	// operand); provenance chains use it to link hand-outs of the same
	// reference across call sites.
	Ref int64
	// Verdict is the per-site claim: can this call fault?
	Verdict Verdict
	// Reason explains the verdict in one clause.
	Reason string
}

// MethodResult is the outcome of analyzing one method.
type MethodResult struct {
	// Method is the analyzed method.
	Method *interp.Method
	// Diags are the findings, sorted.
	Diags []Diagnostic
	// Verdict is the whole-method claim under MTE4JNI+Sync with neighbour
	// exclusion (see package doc).
	Verdict Verdict
	// Reachable marks the instructions the fixpoint proved reachable.
	Reachable []bool
	// CallSites lists every reachable OpCallNative with its verdict.
	CallSites []CallSite
	// FaultSite is the earliest provably-faulting call site when the
	// whole-method verdict is VerdictFault (nil otherwise).
	FaultSite *CallSite
	// Provenance traces the faulting pointer from its managed allocation to
	// the dereference when FaultSite is set.
	Provenance ProvChain
	// Elision is the compiled proof-carrying elision mask: every reachable
	// heap access whose guard the analysis discharged, with per-PC proofs
	// (nil only when the method never reached the fixpoint, e.g. malformed
	// bytecode).
	Elision *Elision
	// Temporal lists the call sites the temporal effect domain classified
	// as exposed (temporal.go), in PC order.
	Temporal []TemporalFinding
}

// Annotations returns the per-pc disassembly notes for this result:
// diagnostics plus "unreachable"-free verdict notes for native call sites.
func (r *MethodResult) Annotations() map[int][]string {
	return Annotations(r.Diags)
}

// safeEnd returns the end of the tag-rounded payload for an array of length
// elems: every byte offset in [0, safeEnd) carries the array's own tag.
func safeEnd(elems int64) int64 {
	return int64(mte.Addr(uint64(elems) * elemSize).AlignUp(mte.GranuleSize))
}

// siteVerdict decides whether a call to a native with summary s, handed an
// array whose length lies in the interval length, provably faults, provably
// cannot fault, or neither.
func siteVerdict(s NativeSummary, length iv) (Verdict, string) {
	if !s.Touches() {
		return VerdictSafe, "native performs no heap accesses"
	}
	minLen := max64(0, length.Lo)
	inPayload := s.MinOff >= 0 && s.MaxOff < safeEnd(minLen)
	if s.Kind == jni.CriticalNative {
		// Checking is never armed for @CriticalNative code, so nothing it
		// does raises a tag-check fault; in-payload accesses are also
		// mapped, so they cannot fault at all. Out-of-payload accesses may
		// still run off the mapping, which we cannot rule out statically.
		if inPayload {
			return VerdictSafe, "@CriticalNative: tag checking never armed"
		}
		return VerdictUnknown, "@CriticalNative access outside the payload: unchecked, may leave the mapping"
	}
	if !s.UseAfterRelease && !s.ForgeTag && inPayload {
		return VerdictSafe, fmt.Sprintf("accesses [%d,%d] within tag-rounded payload [0,%d)",
			s.MinOff, s.MaxOff, safeEnd(minLen))
	}
	if !length.isExact() || length.Lo < 0 || length.Lo > maxProvableLen {
		return VerdictUnknown, fmt.Sprintf("array length %s not statically exact", length)
	}
	se := safeEnd(length.Lo)
	switch {
	case s.UseAfterRelease && s.MinOff >= -neighbourWindow && s.MaxOff < se+neighbourWindow:
		return VerdictFault, "use-after-release: the region's tags are retired before the access"
	case s.ForgeTag && s.MinOff >= 0 && s.MaxOff < se:
		return VerdictFault, "forged pointer tag (bits 56-59 mutated without irg)"
	case s.UseAfterRelease || s.ForgeTag:
		return VerdictUnknown, "stale or forged pointer access outside the deterministic window"
	case s.MinOff < 0 && s.MinOff >= -neighbourWindow:
		return VerdictFault, fmt.Sprintf("oob: offset %d before the payload", s.MinOff)
	case s.MaxOff >= se && s.MaxOff < se+neighbourWindow:
		return VerdictFault, fmt.Sprintf("oob: offset %d past tag-rounded payload end %d", s.MaxOff, se)
	}
	return VerdictUnknown, "accesses beyond the neighbour-exclusion window: tag coincidence possible"
}

// --- Abstract state --------------------------------------------------------

// tri is the three-valued liveness of a reference slot.
type tri uint8

const (
	triNo tri = iota
	triMaybe
	triYes
)

func joinTri(a, b tri) tri {
	if a == b {
		return a
	}
	return triMaybe
}

// refState abstracts one reference slot: whether it holds an array, the
// interval of possible lengths when it does, and the provenance of the value
// — the pc of the unique OpNewArray that produced it, stored as pc+1 so the
// zero value means "no unique allocation site" (uninitialized or merged from
// distinct sites). The state must stay comparable: joinInto relies on !=.
type refState struct {
	init    tri
	length  iv
	allocPC int
}

// absState is the abstract machine state at one program point.
type absState struct {
	stack  []iv
	locals []iv
	refs   []refState
}

func (s *absState) clone() *absState {
	c := &absState{
		stack:  append([]iv(nil), s.stack...),
		locals: append([]iv(nil), s.locals...),
		refs:   append([]refState(nil), s.refs...),
	}
	return c
}

// joinInto merges src into dst in place. It reports whether dst changed and
// whether the merge is well-formed (equal stack depths). widen replaces the
// interval hull with the widening operator.
func joinInto(dst, src *absState, widen bool) (changed, ok bool) {
	if len(dst.stack) != len(src.stack) {
		return false, false
	}
	merge := func(old, next iv) iv {
		j := joinIv(old, next)
		if widen {
			j = widenIv(old, j)
		}
		return j
	}
	for i := range dst.stack {
		if v := merge(dst.stack[i], src.stack[i]); v != dst.stack[i] {
			dst.stack[i], changed = v, true
		}
	}
	for i := range dst.locals {
		if v := merge(dst.locals[i], src.locals[i]); v != dst.locals[i] {
			dst.locals[i], changed = v, true
		}
	}
	for i := range dst.refs {
		old := dst.refs[i]
		next := src.refs[i]
		nr := refState{init: joinTri(old.init, next.init)}
		switch {
		case old.init == triNo:
			nr.length, nr.allocPC = next.length, next.allocPC
		case next.init == triNo:
			nr.length, nr.allocPC = old.length, old.allocPC
		default:
			nr.length = merge(old.length, next.length)
			if old.allocPC == next.allocPC {
				nr.allocPC = old.allocPC
			}
		}
		if nr != old {
			dst.refs[i], changed = nr, true
		}
	}
	return changed, true
}

// --- The analyzer ----------------------------------------------------------

// terminal classifies how an instruction can end execution.
type terminal int

const (
	termNone terminal = iota
	// termThrow covers managed exceptions and interpreter aborts — paths
	// that end the run without a memory fault.
	termThrow
	// termFault is a provable MTE tag-check fault inside a native call.
	termFault
	// termReturn is a normal OpReturn.
	termReturn
)

// edge is one control-flow successor with the state flowing along it.
type edge struct {
	to int
	st *absState
}

// stepResult is the transfer function's output for one instruction.
type stepResult struct {
	succs []edge
	term  terminal
}

type analyzer struct {
	m       *interp.Method
	natives map[string]NativeSummary
	file    string

	states []*absState // fixpoint in-state per pc; nil = unreachable
	visits []int
	clash  []bool // inconsistent stack depths merged at this pc

	// reporting-phase accumulators
	diags     []Diagnostic
	sites     []CallSite
	proofs    []ElisionProof
	temporal  []TemporalFinding
	faultSite *CallSite
	faultProv ProvChain
	reporting bool
}

// widenAfter is the revisit count past which merges widen.
const widenAfter = 24

func (a *analyzer) emit(pc int, rule string, sev Severity, format string, args ...any) {
	if !a.reporting {
		return
	}
	a.diags = append(a.diags, Diagnostic{
		Rule: rule, Sev: sev, File: a.file, Method: a.m.Name, PC: pc,
		Message: fmt.Sprintf(format, args...),
	})
}

// step is the abstract transfer function for the instruction at pc with
// in-state st (which it consumes). During the reporting phase it also emits
// diagnostics and records call sites.
func (a *analyzer) step(pc int, st *absState) stepResult {
	in := a.m.Code[pc]
	res := stepResult{}
	code := a.m.Code

	push := func(v iv) { st.stack = append(st.stack, v) }
	pop := func() iv {
		v := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return v
	}
	flow := func(to int) {
		if to == len(code) {
			// Running past the end is an interpreter abort ("fell off the
			// end"); jumping to len(code) is how Validate-legal bytecode
			// expresses it.
			a.emit(pc, RuleFallOff, SevError, "control flow runs past the end of the bytecode")
			res.term = termThrow
			return
		}
		res.succs = append(res.succs, edge{to: to, st: st.clone()})
	}
	throw := func() { res.term = termThrow }

	if needs := interp.OperandNeeds(in.Op); len(st.stack) < needs {
		a.emit(pc, RuleStack, SevError, "operand stack underflow: %v needs %d, stack has %d",
			in.Op, needs, len(st.stack))
		throw()
		return res
	}

	// checkRef validates a reference-slot read, returning false when the
	// slot is provably null (the access throws NullPointerException).
	checkRef := func(slot int64) (refState, bool) {
		r := st.refs[slot]
		switch r.init {
		case triNo:
			a.emit(pc, RuleUninitRef, SevError,
				"use of uninitialized ref slot %d (provable NullPointerException)", slot)
			return r, false
		case triMaybe:
			a.emit(pc, RuleMaybeUninitRef, SevWarning, "ref slot %d may be uninitialized", slot)
		}
		return r, true
	}

	switch in.Op {
	case interp.OpConst:
		push(exact(in.A))
		flow(pc + 1)
	case interp.OpLoad:
		push(st.locals[in.A])
		flow(pc + 1)
	case interp.OpStore:
		st.locals[in.A] = pop()
		flow(pc + 1)
	case interp.OpAdd, interp.OpSub, interp.OpMul:
		b, x := pop(), pop()
		switch in.Op {
		case interp.OpAdd:
			push(addIv(x, b))
		case interp.OpSub:
			push(subIv(x, b))
		default:
			push(mulIv(x, b))
		}
		flow(pc + 1)
	case interp.OpDiv, interp.OpRem:
		b, x := pop(), pop()
		if b.isExact() && b.Lo == 0 {
			a.emit(pc, RuleDivZero, SevError, "division by a provably zero divisor")
			throw()
			return res
		}
		if b.contains(0) {
			a.emit(pc, RuleMaybeDivZero, SevWarning, "divisor %s may be zero", b)
		}
		if in.Op == interp.OpDiv {
			push(divIv(x, b))
		} else {
			push(remIv(x, b))
		}
		flow(pc + 1)
	case interp.OpJmp:
		flow(int(in.A))
	case interp.OpJmpIfZero:
		c := pop()
		if c.contains(0) {
			flow(int(in.A))
		}
		if !(c.isExact() && c.Lo == 0) {
			flow(pc + 1)
		}
	case interp.OpJmpIfNeg:
		c := pop()
		if c.Lo < 0 {
			flow(int(in.A))
		}
		if c.Hi >= 0 {
			flow(pc + 1)
		}
	case interp.OpNewArray:
		n := pop()
		if n.Hi < 0 {
			a.emit(pc, RuleNegSize, SevError, "provably negative array size %s", n)
			throw()
			return res
		}
		if n.Lo < 0 {
			a.emit(pc, RuleMaybeNegSize, SevWarning, "array size %s may be negative", n)
		}
		if n.Hi > maxProvableLen {
			a.emit(pc, RuleMaybeOOM, SevWarning,
				"array of %s elements may exhaust the heap", n)
		}
		st.refs[in.A] = refState{init: triYes, length: n.clampMin(0), allocPC: pc + 1}
		flow(pc + 1)
	case interp.OpArrayGet:
		idx := pop()
		r, ok := checkRef(in.A)
		if !ok {
			throw()
			return res
		}
		if a.boundsCheck(pc, idx, r.length) {
			throw()
			return res
		}
		a.elideBounds(pc, "aget", idx, r)
		push(full())
		flow(pc + 1)
	case interp.OpArrayPut:
		pop() // value
		idx := pop()
		r, ok := checkRef(in.A)
		if !ok {
			throw()
			return res
		}
		if a.boundsCheck(pc, idx, r.length) {
			throw()
			return res
		}
		a.elideBounds(pc, "aput", idx, r)
		flow(pc + 1)
	case interp.OpArrayLength:
		r, ok := checkRef(in.A)
		if !ok {
			throw()
			return res
		}
		push(r.length.clampMin(0))
		flow(pc + 1)
	case interp.OpCallNative:
		r, ok := checkRef(in.B)
		if !ok {
			throw()
			return res
		}
		name := a.m.NativeNames[in.A]
		sum, have := a.natives[name]
		site := CallSite{PC: pc, Name: name, Ref: in.B, Verdict: VerdictUnknown}
		if !have {
			site.Reason = "no behavioural summary"
			a.emit(pc, RuleNativeUnknown, SevWarning,
				"native %q has no behavioural summary; outcome unknown", name)
		} else {
			site.Verdict, site.Reason = siteVerdict(sum, r.length)
			windowClean := true
			if a.reporting {
				if f, exposed := temporalSite(pc, in.B, r, name, sum); exposed {
					a.temporal = append(a.temporal, f)
					windowClean = false
				}
			}
			if site.Verdict == VerdictSafe && a.reporting && !a.clash[pc] && r.init == triYes && windowClean {
				// The safe verdict stands on the summary's offsets and the
				// length lower bound of a definitely-allocated array — and,
				// since the temporal pass, on a clean window: an exposed
				// site keeps its guards even when it cannot fault under
				// sync, because the mask may run under a deferred checker.
				a.proofs = append(a.proofs, ElisionProof{
					PC: pc, Op: "callnative", Reason: site.Reason, Native: name,
					Touches: sum.Touches(), MinOff: sum.MinOff, MaxOff: sum.MaxOff,
					LenLo: max64(0, r.length.Lo), WindowSafe: true,
				})
			}
			if sum.Kind == jni.CriticalNative && sum.Touches() {
				a.emit(pc, RuleCriticalHeap, SevWarning,
					"@CriticalNative %q touches the Java heap with checking unarmed", name)
			}
			if site.Verdict == VerdictFault {
				a.emit(pc, RuleNativeFault, SevError, "native %s: %s", name, site.Reason)
				res.term = termFault
				if a.reporting {
					if a.faultSite == nil {
						s := site
						a.faultSite = &s
						a.faultProv = buildProvChain(pc, in.B, r, name, sum, a.sites, site.Reason)
					}
					a.sites = append(a.sites, site)
				}
				return res
			}
		}
		if a.reporting {
			a.sites = append(a.sites, site)
		}
		flow(pc + 1)
	case interp.OpReturn:
		pop()
		res.term = termReturn
	default:
		a.emit(pc, RuleMalformed, SevError, "unknown opcode %d", int(in.Op))
		throw()
	}
	return res
}

// elideBounds records an in-bounds proof for an array access whose guard
// the interval analysis discharged: the index interval is provably inside
// [0, length) of a definitely-allocated array, at a pc whose abstract state
// is trustworthy (no stack-depth clash). Called only after boundsCheck
// passed, during the reporting phase over the final fixpoint states.
func (a *analyzer) elideBounds(pc int, op string, idx iv, r refState) {
	if !a.reporting || a.clash[pc] {
		return
	}
	if r.init != triYes || idx.Lo < 0 || idx.Hi >= r.length.Lo {
		return
	}
	a.proofs = append(a.proofs, ElisionProof{
		PC: pc, Op: op,
		Reason: fmt.Sprintf("index ∈ %s proven within [0,%d)", idx, r.length.Lo),
		IdxLo:  idx.Lo, IdxHi: idx.Hi, LenLo: r.length.Lo,
	})
}

// boundsCheck emits OOB diagnostics for an array access and reports whether
// the access provably throws (so the path ends here).
func (a *analyzer) boundsCheck(pc int, idx, length iv) bool {
	certain := idx.Hi < 0 || (length.Hi < math.MaxInt64 && idx.Lo >= length.Hi)
	if certain {
		if idx.isExact() && length.isExact() {
			a.emit(pc, RuleOOB, SevError, "oob: index %d, len=%d", idx.Lo, length.Lo)
		} else {
			a.emit(pc, RuleOOB, SevError, "oob: index ∈ %s, len=%s", idx, length)
		}
		return true
	}
	if idx.Lo < 0 || idx.Hi >= length.Lo {
		a.emit(pc, RuleMaybeOOB, SevWarning, "index %s may escape bounds len=%s", idx, length)
	}
	return false
}

// entryState is the state at pc 0: empty stack, unknown argument locals
// (Invoke lets the caller fill any prefix of the locals), no live refs.
func (a *analyzer) entryState() *absState {
	st := &absState{
		locals: make([]iv, a.m.MaxLocals),
		refs:   make([]refState, a.m.MaxRefs),
	}
	for i := range st.locals {
		st.locals[i] = full()
	}
	return st
}

// AnalyzeMethod runs the abstract interpreter over m. natives supplies
// behavioural summaries for the native methods the program may call; pass
// nil when none are known. The method is validated first — a method failing
// interp.Validate gets a single BC-MALFORMED error and no further analysis.
func AnalyzeMethod(m *interp.Method, natives map[string]NativeSummary) *MethodResult {
	return analyzeMethod(m, natives, "")
}

func analyzeMethod(m *interp.Method, natives map[string]NativeSummary, file string) *MethodResult {
	res := &MethodResult{Method: m, Verdict: VerdictUnknown, Reachable: make([]bool, len(m.Code))}
	if err := interp.Validate(m); err != nil {
		res.Diags = []Diagnostic{{
			Rule: RuleMalformed, Sev: SevError, File: file, Method: m.Name, PC: -1,
			Message: err.Error(),
		}}
		return res
	}
	if len(m.Code) == 0 {
		res.Diags = []Diagnostic{{
			Rule: RuleFallOff, Sev: SevError, File: file, Method: m.Name, PC: -1,
			Message: "empty bytecode falls off the end immediately",
		}}
		return res
	}

	a := &analyzer{
		m: m, natives: natives, file: file,
		states: make([]*absState, len(m.Code)),
		visits: make([]int, len(m.Code)),
		clash:  make([]bool, len(m.Code)),
	}

	// Phase 1: worklist fixpoint over the in-states.
	a.states[0] = a.entryState()
	work := []int{0}
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		a.visits[pc]++
		out := a.step(pc, a.states[pc].clone())
		for _, e := range out.succs {
			if a.states[e.to] == nil {
				a.states[e.to] = e.st
				work = append(work, e.to)
				continue
			}
			changed, ok := joinInto(a.states[e.to], e.st, a.visits[e.to] > widenAfter)
			if !ok {
				a.clash[e.to] = true
				continue
			}
			if changed {
				work = append(work, e.to)
			}
		}
	}

	// Phase 2: one reporting pass over the fixpoint, re-running the transfer
	// function so diagnostics reflect the final (widest) states, while
	// classifying how each reachable path can terminate.
	a.reporting = true
	succs := make([][]int, len(m.Code))
	var hasReturn, hasThrow, hasFault, hasWarn, hasClash bool
	for pc := range m.Code {
		if a.states[pc] == nil {
			a.diags = append(a.diags, Diagnostic{
				Rule: RuleUnreachable, Sev: SevInfo, File: file, Method: m.Name, PC: pc,
				Message: "unreachable",
			})
			continue
		}
		res.Reachable[pc] = true
		if a.clash[pc] {
			// Different stack depths merge here. The interpreter runs either
			// depth happily; only the analysis loses track, so this poisons
			// the verdict rather than modelling a dynamic abort.
			a.emit(pc, RuleStack, SevWarning, "inconsistent operand stack depths merge here")
			hasClash = true
		}
		out := a.step(pc, a.states[pc].clone())
		for _, e := range out.succs {
			succs[pc] = append(succs[pc], e.to)
		}
		switch out.term {
		case termReturn:
			hasReturn = true
		case termThrow:
			hasThrow = true
		case termFault:
			hasFault = true
		}
	}
	for _, d := range a.diags {
		if d.Sev == SevWarning {
			hasWarn = true
		}
	}

	res.Diags = a.diags
	res.CallSites = a.sites
	res.Temporal = a.temporal
	res.Elision = compileElision(&Program{Method: m, Natives: natives}, a.proofs)
	SortDiagnostics(res.Diags)

	// Whole-method verdict. Safe: no reachable native call can fault (a
	// managed throw is not a fault). Fault: some reachable path provably
	// faults, no reachable path returns, throws or aborts instead, the
	// reachable CFG is acyclic (so execution cannot loop forever before the
	// fault), and nothing the analyzer is unsure about (warnings) is in play.
	allSafe := true
	for _, s := range a.sites {
		if s.Verdict != VerdictSafe {
			allSafe = false
		}
	}
	switch {
	case allSafe && !hasClash:
		res.Verdict = VerdictSafe
	case hasFault && !hasReturn && !hasThrow && !hasWarn && !hasClash &&
		len(m.Code) < maxProvableCode && acyclic(succs, res.Reachable):
		res.Verdict = VerdictFault
		res.FaultSite = a.faultSite
		res.Provenance = a.faultProv
	}
	return res
}

// acyclic reports whether the reachable subgraph has no cycle.
func acyclic(succs [][]int, reachable []bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(succs))
	var visit func(int) bool
	visit = func(n int) bool {
		color[n] = gray
		for _, s := range succs[n] {
			switch color[s] {
			case gray:
				return false
			case white:
				if !visit(s) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for n := range succs {
		if reachable[n] && color[n] == white {
			if !visit(n) {
				return false
			}
		}
	}
	return true
}
