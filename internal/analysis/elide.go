package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"mte4jni/internal/interp"
)

// The proof compiler: Screen no longer throws its per-site verdicts away
// after the admit/reject decision. Every reachable heap-access instruction
// whose guard is statically discharged — a native call site with
// VerdictSafe, an array access whose index interval is proven inside the
// array's length interval — is compiled into an Elision: an
// interp.ElisionMask (bitset over PCs) plus one ElisionProof per elided PC
// recording exactly the facts the verdict depended on, sealed under two
// digests.
//
// The program digest binds the proofs to the program text (code, layout,
// native names *and summaries*): ValidateBinding recomputes it at pool bind
// time, so a native summary that changed between screening and execution —
// the "summary mismatch" invalidation rule — drops the whole mask in one
// hash compare. The proof digest fingerprints the proofs themselves for
// reports and the fuzz witness.
//
// The facts a proof records are exactly what the dynamic witness re-checks:
// for a call site, that every traced access stays inside the tag-rounded
// payload the summary promised; for an array access, that every executed
// index the elided guard skipped was in bounds.

// ElisionProof records the static facts one elided PC's verdict rests on.
type ElisionProof struct {
	// PC is the elided instruction.
	PC int `json:"pc"`
	// Op is the instruction kind ("callnative", "aget", "aput").
	Op string `json:"op"`
	// Reason is the verdict's one-clause justification.
	Reason string `json:"reason"`

	// Call-site facts: the summary offsets the safe verdict assumed, and
	// whether it assumed the native touches the heap at all.
	Native  string `json:"native,omitempty"`
	Touches bool   `json:"touches,omitempty"`
	MinOff  int64  `json:"minOffset,omitempty"`
	MaxOff  int64  `json:"maxOffset,omitempty"`
	// WindowSafe records the discharged window-safety obligation for a call
	// site: the temporal domain classified the acquire/release window clean
	// (no interfering write can precede the check that would observe it).
	// Sites with a non-clean exposure never get a proof at all — the
	// obligation is part of what "elidable" means since the temporal pass.
	WindowSafe bool `json:"windowSafe,omitempty"`

	// Array-access facts: the index interval and the length lower bound the
	// in-bounds proof used.
	IdxLo int64 `json:"idxLo,omitempty"`
	IdxHi int64 `json:"idxHi,omitempty"`
	LenLo int64 `json:"lenLo,omitempty"`
}

// Elision is a compiled, digest-sealed elision mask for one program.
type Elision struct {
	mask          *interp.ElisionMask
	proofs        []ElisionProof
	programDigest [sha256.Size]byte
	proofDigest   [sha256.Size]byte
}

// Mask returns the PC bitset the interpreter binds.
func (el *Elision) Mask() *interp.ElisionMask { return el.mask }

// Sites returns the number of elided PCs.
func (el *Elision) Sites() int { return el.mask.Sites() }

// Proofs returns the per-PC proof records in PC order.
func (el *Elision) Proofs() []ElisionProof { return el.proofs }

// Proof returns the proof for one elided PC, or nil.
func (el *Elision) Proof(pc int) *ElisionProof {
	for i := range el.proofs {
		if el.proofs[i].PC == pc {
			return &el.proofs[i]
		}
	}
	return nil
}

// ProgramDigest returns the hex program digest the proofs are sealed to.
func (el *Elision) ProgramDigest() string { return hex.EncodeToString(el.programDigest[:]) }

// ProofDigest returns the hex digest over the proof records.
func (el *Elision) ProofDigest() string { return hex.EncodeToString(el.proofDigest[:]) }

// ValidateBinding checks that p is byte-for-byte the program these proofs
// were compiled from — same code, same layout, same native summaries. A
// mismatch (e.g. a summary rebound between screening and execution) means
// the proofs prove nothing about p and the mask must not arm.
func (el *Elision) ValidateBinding(p *Program) error {
	if got := programDigest(p); got != el.programDigest {
		return fmt.Errorf("analysis: elision proofs compiled for program %s, bound to %s",
			hex.EncodeToString(el.programDigest[:8]), hex.EncodeToString(got[:8]))
	}
	return nil
}

// programDigest hashes the canonical program text: method layout, every
// instruction, and the native summaries sorted by name. The text is built
// with strconv appends into one buffer rather than per-line Fprintf — the
// digest seals every screened program (compileElision runs on every
// Analyze) and rendering was the hottest part of a cold screen. The byte
// stream is unchanged: %q is strconv.AppendQuote, %d/%t are AppendInt and
// AppendBool.
func programDigest(p *Program) [sha256.Size]byte {
	buf := make([]byte, 0, 64*(1+len(p.Method.NativeNames)+len(p.Method.Code)+len(p.Natives)))
	buf = append(buf, "method "...)
	buf = strconv.AppendQuote(buf, p.Method.Name)
	buf = append(buf, " locals="...)
	buf = strconv.AppendInt(buf, int64(p.Method.MaxLocals), 10)
	buf = append(buf, " refs="...)
	buf = strconv.AppendInt(buf, int64(p.Method.MaxRefs), 10)
	buf = append(buf, '\n')
	for _, name := range p.Method.NativeNames {
		buf = append(buf, "link "...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, '\n')
	}
	for pc, in := range p.Method.Code {
		buf = strconv.AppendInt(buf, int64(pc), 10)
		buf = append(buf, ':', ' ')
		buf = strconv.AppendInt(buf, int64(in.Op), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, in.A, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, in.B, 10)
		buf = append(buf, '\n')
	}
	names := make([]string, 0, len(p.Natives))
	for name := range p.Natives {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := p.Natives[name]
		buf = append(buf, "native "...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, " kind="...)
		buf = strconv.AppendInt(buf, int64(s.Kind), 10)
		buf = append(buf, " off=["...)
		buf = strconv.AppendInt(buf, s.MinOff, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, s.MaxOff, 10)
		buf = append(buf, "] w="...)
		buf = strconv.AppendBool(buf, s.Write)
		buf = append(buf, " uar="...)
		buf = strconv.AppendBool(buf, s.UseAfterRelease)
		buf = append(buf, " forge="...)
		buf = strconv.AppendBool(buf, s.ForgeTag)
		buf = append(buf, " dmg="...)
		buf = strconv.AppendInt(buf, int64(s.DamageOps), 10)
		buf = append(buf, " scan="...)
		buf = strconv.AppendBool(buf, s.ConcurrentScan)
		buf = append(buf, " race="...)
		buf = strconv.AppendBool(buf, s.ManagedRace)
		buf = append(buf, '\n')
	}
	return sha256.Sum256(buf)
}

// compileElision seals the reporting phase's elided PCs and proofs into an
// Elision for the program. Proofs arrive in the phase-2 PC scan order, i.e.
// already sorted by PC.
func compileElision(p *Program, proofs []ElisionProof) *Elision {
	pcs := make([]int, len(proofs))
	for i, pr := range proofs {
		pcs[i] = pr.PC
	}
	el := &Elision{
		mask:          interp.NewElisionMask(len(p.Method.Code), pcs),
		proofs:        proofs,
		programDigest: programDigest(p),
	}
	buf := make([]byte, 0, 96*len(proofs))
	for _, pr := range proofs {
		buf = strconv.AppendInt(buf, int64(pr.PC), 10)
		buf = append(buf, ' ')
		buf = append(buf, pr.Op...)
		buf = append(buf, ' ')
		buf = strconv.AppendQuote(buf, pr.Reason)
		buf = append(buf, ' ')
		buf = strconv.AppendQuote(buf, pr.Native)
		buf = append(buf, ' ')
		buf = strconv.AppendBool(buf, pr.Touches)
		buf = append(buf, ' ')
		buf = strconv.AppendBool(buf, pr.WindowSafe)
		buf = append(buf, " ["...)
		buf = strconv.AppendInt(buf, pr.MinOff, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, pr.MaxOff, 10)
		buf = append(buf, "] ["...)
		buf = strconv.AppendInt(buf, pr.IdxLo, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, pr.IdxHi, 10)
		buf = append(buf, "] "...)
		buf = strconv.AppendInt(buf, pr.LenLo, 10)
		buf = append(buf, '\n')
	}
	el.proofDigest = sha256.Sum256(buf)
	return el
}

// ElideAnnotations returns per-PC disassembly notes for every heap-access
// instruction: "elide: <reason>" when the proof compiler discharged its
// guard, "checked: <reason>" otherwise — the human-auditable rendering of
// the compiler's output for `mte4jni lint -disasm`.
func ElideAnnotations(res *MethodResult) map[int][]string {
	notes := make(map[int][]string)
	siteReason := make(map[int]string, len(res.CallSites))
	for _, s := range res.CallSites {
		siteReason[s.PC] = s.Reason
	}
	for pc, in := range res.Method.Code {
		switch in.Op {
		case interp.OpArrayGet, interp.OpArrayPut, interp.OpCallNative:
		default:
			continue
		}
		if pc < len(res.Reachable) && !res.Reachable[pc] {
			continue // already annotated "unreachable" by the diagnostics
		}
		if res.Elision != nil {
			if pr := res.Elision.Proof(pc); pr != nil {
				notes[pc] = append(notes[pc], "elide: "+pr.Reason)
				continue
			}
		}
		reason := "guard not statically discharged"
		if r, ok := siteReason[pc]; ok && r != "" {
			reason = r
		}
		notes[pc] = append(notes[pc], "checked: "+reason)
	}
	return notes
}
