package analysis

import (
	"strings"
	"testing"

	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
)

func hasRule(diags []Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func ruleAt(diags []Diagnostic, rule string) int {
	for _, d := range diags {
		if d.Rule == rule {
			return d.PC
		}
	}
	return -2
}

// spine is the canonical test program: alloc int[arrLen], call native0, ret.
func spine(arrLen int64, sum NativeSummary) (*interp.Method, map[string]NativeSummary) {
	m := &interp.Method{
		Name: "spine",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: arrLen},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpCallNative, A: 0, B: 0},
			{Op: interp.OpConst, A: 7},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1, NativeNames: []string{"native0"},
	}
	return m, map[string]NativeSummary{"native0": sum}
}

func TestVerdictFaultOOBNative(t *testing.T) {
	// len=18 ints ⇒ payload 72 ⇒ tag-rounded end 80; offset 84 is inside
	// the neighbour-exclusion window ⇒ deterministic fault (Figure 3).
	m, nat := spine(18, NativeSummary{MinOff: 84, MaxOff: 84, Write: true})
	res := AnalyzeMethod(m, nat)
	if res.Verdict != VerdictFault {
		t.Fatalf("verdict = %v, want %v; diags %v", res.Verdict, VerdictFault, res.Diags)
	}
	if pc := ruleAt(res.Diags, RuleNativeFault); pc != 2 {
		t.Errorf("%s at pc %d, want 2", RuleNativeFault, pc)
	}
	// Code after the provably faulting call never runs.
	if !hasRule(res.Diags, RuleUnreachable) {
		t.Errorf("missing %s for post-fault code: %v", RuleUnreachable, res.Diags)
	}
}

func TestVerdictSafeInPayload(t *testing.T) {
	m, nat := spine(18, NativeSummary{MinOff: 0, MaxOff: 79, Write: true})
	res := AnalyzeMethod(m, nat)
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want %v; diags %v", res.Verdict, VerdictSafe, res.Diags)
	}
	if len(res.CallSites) != 1 || res.CallSites[0].Verdict != VerdictSafe {
		t.Errorf("call sites = %+v", res.CallSites)
	}
}

func TestVerdictUnknownBeyondWindow(t *testing.T) {
	// Offset 200 is far past the two-granule exclusion window: a tag
	// coincidence is possible, so nothing is provable.
	m, nat := spine(18, NativeSummary{MinOff: 200, MaxOff: 200})
	res := AnalyzeMethod(m, nat)
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %v, want %v", res.Verdict, VerdictUnknown)
	}
}

func TestNativeWithoutSummary(t *testing.T) {
	m, _ := spine(18, NativeSummary{})
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleNativeUnknown) {
		t.Fatalf("missing %s: %v", RuleNativeUnknown, res.Diags)
	}
	if res.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want %v", res.Verdict, VerdictUnknown)
	}
}

func TestCriticalNativeWarnsButSafe(t *testing.T) {
	m, nat := spine(8, NativeSummary{Kind: jni.CriticalNative, MinOff: 0, MaxOff: 8, Write: true})
	res := AnalyzeMethod(m, nat)
	if !hasRule(res.Diags, RuleCriticalHeap) {
		t.Fatalf("missing %s: %v", RuleCriticalHeap, res.Diags)
	}
	if res.Verdict != VerdictSafe {
		t.Errorf("verdict = %v, want %v (checking never armed)", res.Verdict, VerdictSafe)
	}
}

func TestProvableManagedOOB(t *testing.T) {
	m := &interp.Method{
		Name: "oob",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 18},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 21},
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	if pc := ruleAt(res.Diags, RuleOOB); pc != 3 {
		t.Fatalf("%s at pc %d, want 3: %v", RuleOOB, pc, res.Diags)
	}
	// The throw is not a fault: the method still cannot tag-fault.
	if res.Verdict != VerdictSafe {
		t.Errorf("verdict = %v, want %v", res.Verdict, VerdictSafe)
	}
	// pc 4 is dead after the provable throw.
	if !res.Reachable[3] || res.Reachable[4] {
		t.Errorf("reachability = %v", res.Reachable)
	}
}

func TestMaybeOOBFromUnknownIndex(t *testing.T) {
	m := &interp.Method{
		Name: "maybe",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 8},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpLoad, A: 0}, // argument: unknown
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleMaybeOOB) {
		t.Fatalf("missing %s: %v", RuleMaybeOOB, res.Diags)
	}
}

func TestUninitRef(t *testing.T) {
	m := &interp.Method{
		Name: "uninit",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleUninitRef) {
		t.Fatalf("missing %s: %v", RuleUninitRef, res.Diags)
	}
}

func TestMaybeUninitRefOnOnePath(t *testing.T) {
	m := &interp.Method{
		Name: "maybeuninit",
		Code: []interp.Inst{
			{Op: interp.OpLoad, A: 0},      // unknown arg
			{Op: interp.OpJmpIfZero, A: 4}, // skip the allocation sometimes
			{Op: interp.OpConst, A: 4},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpArrayLength, A: 0}, // ref 0 only set on one path
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	if pc := ruleAt(res.Diags, RuleMaybeUninitRef); pc != 4 {
		t.Fatalf("%s at pc %d, want 4: %v", RuleMaybeUninitRef, pc, res.Diags)
	}
}

func TestDivByZero(t *testing.T) {
	m := &interp.Method{
		Name: "div0",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpDiv},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1,
	}
	res := AnalyzeMethod(m, nil)
	if pc := ruleAt(res.Diags, RuleDivZero); pc != 2 {
		t.Fatalf("%s at pc %d, want 2: %v", RuleDivZero, pc, res.Diags)
	}
	m.Code[1] = interp.Inst{Op: interp.OpLoad, A: 0} // divisor now unknown
	res = AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleMaybeDivZero) {
		t.Fatalf("missing %s: %v", RuleMaybeDivZero, res.Diags)
	}
}

func TestNegativeArraySize(t *testing.T) {
	m := &interp.Method{
		Name: "negsize",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: -3},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleNegSize) {
		t.Fatalf("missing %s: %v", RuleNegSize, res.Diags)
	}
}

func TestStackUnderflow(t *testing.T) {
	m := &interp.Method{
		Name: "underflow",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpAdd}, // needs 2, has 1
			{Op: interp.OpReturn},
		},
		MaxLocals: 1,
	}
	res := AnalyzeMethod(m, nil)
	if pc := ruleAt(res.Diags, RuleStack); pc != 1 {
		t.Fatalf("%s at pc %d, want 1: %v", RuleStack, pc, res.Diags)
	}
}

func TestFallOffEnd(t *testing.T) {
	m := &interp.Method{
		Name:      "falloff",
		Code:      []interp.Inst{{Op: interp.OpConst, A: 1}},
		MaxLocals: 1,
	}
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleFallOff) {
		t.Fatalf("missing %s: %v", RuleFallOff, res.Diags)
	}
}

func TestMalformedBytecode(t *testing.T) {
	m := &interp.Method{Name: "bad", Code: []interp.Inst{{Op: interp.Opcode(77)}}}
	res := AnalyzeMethod(m, nil)
	if !hasRule(res.Diags, RuleMalformed) {
		t.Fatalf("missing %s: %v", RuleMalformed, res.Diags)
	}
	if res.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want %v", res.Verdict, VerdictUnknown)
	}
}

func TestUnreachableCode(t *testing.T) {
	m := &interp.Method{
		Name: "dead",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpReturn},
			{Op: interp.OpConst, A: 2}, // dead
			{Op: interp.OpReturn},      // dead
		},
		MaxLocals: 1,
	}
	res := AnalyzeMethod(m, nil)
	if pc := ruleAt(res.Diags, RuleUnreachable); pc != 2 {
		t.Fatalf("%s at pc %d, want 2: %v", RuleUnreachable, pc, res.Diags)
	}
}

// TestLoopFixpointTerminates feeds the analyzer a counting loop whose bound
// is unknown; widening must close the fixpoint and the verdict must stay
// sound (safe: no natives in sight).
func TestLoopFixpointTerminates(t *testing.T) {
	m := &interp.Method{
		Name: "loop",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpStore, A: 1}, // i = 0
			{Op: interp.OpLoad, A: 1},  // loop:
			{Op: interp.OpLoad, A: 0},  // n (unknown arg)
			{Op: interp.OpSub},
			{Op: interp.OpJmpIfZero, A: 11}, // i == n -> done
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpAdd},
			{Op: interp.OpStore, A: 1}, // i++
			{Op: interp.OpJmp, A: 2},
			{Op: interp.OpLoad, A: 1}, // done:
			{Op: interp.OpReturn},
		},
		MaxLocals: 2,
	}
	res := AnalyzeMethod(m, nil)
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want %v; diags %v", res.Verdict, VerdictSafe, res.Diags)
	}
	for pc, r := range res.Reachable {
		if !r {
			t.Errorf("pc %d wrongly unreachable", pc)
		}
	}
}

// TestLoopBlocksFaultVerdict: a faulting native inside a potentially
// non-terminating loop body cannot be a provable fault — the loop guard may
// spin forever before the call.
func TestLoopBlocksFaultVerdict(t *testing.T) {
	m := &interp.Method{
		Name: "loopfault",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 8},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpLoad, A: 0},      // unknown arg
			{Op: interp.OpJmpIfZero, A: 2}, // possible self-loop
			{Op: interp.OpCallNative, A: 0, B: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1, NativeNames: []string{"native0"},
	}
	nat := map[string]NativeSummary{"native0": {MinOff: 40, MaxOff: 40}} // se=32: in-window OOB
	res := AnalyzeMethod(m, nat)
	if res.Verdict == VerdictFault {
		t.Fatalf("fault verdict despite possible infinite loop; diags %v", res.Diags)
	}
	if !hasRule(res.Diags, RuleNativeFault) {
		t.Errorf("site-level %s should still be reported: %v", RuleNativeFault, res.Diags)
	}
}

// TestReturnPathBlocksFaultVerdict: if one path returns cleanly, the method
// cannot be provably faulting even though another path faults.
func TestReturnPathBlocksFaultVerdict(t *testing.T) {
	m := &interp.Method{
		Name: "twofates",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 8},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpJmpIfZero, A: 6}, // sometimes skip the call
			{Op: interp.OpCallNative, A: 0, B: 0},
			{Op: interp.OpJmp, A: 6},
			{Op: interp.OpConst, A: 0}, // done:
			{Op: interp.OpReturn},
		},
		MaxLocals: 1, MaxRefs: 1, NativeNames: []string{"native0"},
	}
	nat := map[string]NativeSummary{"native0": {MinOff: 40, MaxOff: 40, Write: true}}
	res := AnalyzeMethod(m, nat)
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %v, want %v", res.Verdict, VerdictUnknown)
	}
}

// TestAnnotatedDisassembly wires analyzer findings into the disassembler.
func TestAnnotatedDisassembly(t *testing.T) {
	m := &interp.Method{
		Name: "annotated",
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 8},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 9},
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpReturn},
			{Op: interp.OpReturn}, // unreachable
		},
		MaxLocals: 1, MaxRefs: 1,
	}
	res := AnalyzeMethod(m, nil)
	out := interp.DisassembleAnnotated(m, Annotations(res.Diags))
	if !strings.Contains(out, "aget         0  ; oob: index 9, len=8") {
		t.Errorf("missing oob annotation:\n%s", out)
	}
	if !strings.Contains(out, "; unreachable") {
		t.Errorf("missing unreachable annotation:\n%s", out)
	}
}

func TestUseAfterReleaseAndForgeVerdicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		sum  NativeSummary
		want Verdict
	}{
		{"uar-in-window", NativeSummary{MinOff: -16, MaxOff: 40, UseAfterRelease: true}, VerdictFault},
		{"uar-beyond-window", NativeSummary{MinOff: 0, MaxOff: 100, UseAfterRelease: true}, VerdictUnknown},
		{"forge-in-payload", NativeSummary{MinOff: 0, MaxOff: 31, ForgeTag: true}, VerdictFault},
		{"forge-outside", NativeSummary{MinOff: 0, MaxOff: 40, ForgeTag: true}, VerdictUnknown},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, nat := spine(8, tc.sum) // se = 32
			res := AnalyzeMethod(m, nat)
			if res.Verdict != tc.want {
				t.Errorf("verdict = %v, want %v; diags %v", res.Verdict, tc.want, res.Diags)
			}
		})
	}
}
