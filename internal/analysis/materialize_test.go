package analysis

import (
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Materialize is the bridge between the static world (NativeSummary as a
// behavioural spec) and the dynamic one (an executable native body); every
// summary field must drive exactly the jni.Env touch sequence siteVerdict
// reasons about. These tests run materialized bodies under the
// no-protection checker so the full access sequence is observable even for
// summaries that would fault under MTE, and assert on the recorded JNI
// trace.

// runMaterialized executes sum's materialized body against a fresh intLen
// array and returns the recorded trace and the body's error.
func runMaterialized(t *testing.T, sum NativeSummary, intLen int) ([]jni.TraceEvent, error) {
	t.Helper()
	v, err := vm.New(vm.Options{HeapSize: 1 << 20, NativeHeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	th, err := v.AttachThread("materialize")
	if err != nil {
		t.Fatal(err)
	}
	arr, err := v.NewIntArray(intLen)
	if err != nil {
		t.Fatal(err)
	}
	env := jni.NewEnv(th, jni.DirectChecker{}, true)
	rec := jni.NewRecordingTracer()
	env.SetTracer(rec)
	bodyErr := sum.Materialize()(env, arr)
	return rec.Events(), bodyErr
}

// kindsOf projects the event stream onto its kind sequence.
func kindsOf(events []jni.TraceEvent) []jni.TraceEventKind {
	var kinds []jni.TraceEventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	return kinds
}

// pick returns the events of one kind.
func pick(events []jni.TraceEvent, kind jni.TraceEventKind) []jni.TraceEvent {
	var out []jni.TraceEvent
	for _, ev := range events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func sameKinds(got []jni.TraceEventKind, want ...jni.TraceEventKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestMaterializeRegularRead(t *testing.T) {
	events, err := runMaterialized(t, NativeSummary{MinOff: 0, MaxOff: 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k := kindsOf(events); !sameKinds(k, jni.TraceGet, jni.TraceAccess, jni.TraceAccess, jni.TraceRelease) {
		t.Fatalf("event kinds = %v, want get/access/access/release", k)
	}
	base := events[0].Ptr
	for i, access := range pick(events, jni.TraceAccess) {
		wantOff := []int64{0, 7}[i]
		if access.Ptr != base.Add(wantOff) {
			t.Errorf("access %d at %v, want base+%d", i, access.Ptr, wantOff)
		}
		if access.Write || access.Size != 1 {
			t.Errorf("access %d: write=%v size=%d, want 1-byte load", i, access.Write, access.Size)
		}
	}
}

func TestMaterializeWrite(t *testing.T) {
	events, err := runMaterialized(t, NativeSummary{MinOff: 2, MaxOff: 5, Write: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	accesses := pick(events, jni.TraceAccess)
	if len(accesses) != 2 {
		t.Fatalf("%d accesses, want 2", len(accesses))
	}
	for i, access := range accesses {
		if !access.Write {
			t.Errorf("access %d is a load, want store", i)
		}
	}
}

func TestMaterializeSingleOffset(t *testing.T) {
	// MinOff == MaxOff must touch exactly once, not twice.
	events, err := runMaterialized(t, NativeSummary{MinOff: 3, MaxOff: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	accesses := pick(events, jni.TraceAccess)
	if len(accesses) != 1 {
		t.Fatalf("%d accesses, want 1", len(accesses))
	}
	if accesses[0].Ptr != events[0].Ptr.Add(3) {
		t.Errorf("access at %v, want base+3", accesses[0].Ptr)
	}
}

func TestMaterializeNoTouch(t *testing.T) {
	// MinOff > MaxOff is the "no heap access" summary: get and release
	// still happen (the native acquired the elements), but nothing is
	// dereferenced.
	events, err := runMaterialized(t, NativeSummary{MinOff: 1, MaxOff: 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k := kindsOf(events); !sameKinds(k, jni.TraceGet, jni.TraceRelease) {
		t.Fatalf("event kinds = %v, want get/release only", k)
	}
}

func TestMaterializeUseAfterRelease(t *testing.T) {
	// The release must come first and the accesses go through the stale
	// pointer; no second release follows.
	events, err := runMaterialized(t, NativeSummary{MinOff: 0, MaxOff: 4, UseAfterRelease: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k := kindsOf(events); !sameKinds(k, jni.TraceGet, jni.TraceRelease, jni.TraceAccess, jni.TraceAccess) {
		t.Fatalf("event kinds = %v, want get/release/access/access", k)
	}
	base := events[0].Ptr
	if events[2].Ptr != base || events[3].Ptr != base.Add(4) {
		t.Errorf("stale accesses at %v/%v, want base/base+4", events[2].Ptr, events[3].Ptr)
	}
}

func TestMaterializeForgeTag(t *testing.T) {
	events, err := runMaterialized(t, NativeSummary{MinOff: 0, MaxOff: 4, ForgeTag: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := events[0].Ptr
	accesses := pick(events, jni.TraceAccess)
	if len(accesses) != 2 {
		t.Fatalf("%d accesses, want 2", len(accesses))
	}
	for i, access := range accesses {
		if access.Ptr.Tag() == base.Tag() {
			t.Errorf("access %d tag %v equals issued tag: not forged", i, access.Ptr.Tag())
		}
		if access.Ptr.Addr() != base.Add([]int64{0, 4}[i]).Addr() {
			t.Errorf("access %d forged the address, not just the tag: %v", i, access.Ptr)
		}
	}
}

func TestMaterializeCriticalNative(t *testing.T) {
	// @CriticalNative bodies bypass the JNIEnv hand-out interfaces: no get,
	// no release, raw untagged payload accesses only.
	sum := NativeSummary{Kind: jni.CriticalNative, MinOff: 0, MaxOff: 4}
	v, err := vm.New(vm.Options{HeapSize: 1 << 20, NativeHeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	th, err := v.AttachThread("materialize")
	if err != nil {
		t.Fatal(err)
	}
	arr, err := v.NewIntArray(8)
	if err != nil {
		t.Fatal(err)
	}
	env := jni.NewEnv(th, jni.DirectChecker{}, true)
	rec := jni.NewRecordingTracer()
	env.SetTracer(rec)
	if err := sum.Materialize()(env, arr); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if k := kindsOf(events); !sameKinds(k, jni.TraceAccess, jni.TraceAccess) {
		t.Fatalf("event kinds = %v, want two raw accesses only", k)
	}
	for i, access := range events {
		if access.Ptr.Tag() != 0 {
			t.Errorf("access %d through tagged pointer %v, want untagged", i, access.Ptr)
		}
		if access.Ptr.Addr() != mte.Addr(uint64(arr.DataBegin())+uint64([]int64{0, 4}[i])) {
			t.Errorf("access %d at %v, want payload+%d", i, access.Ptr, []int64{0, 4}[i])
		}
	}
}
