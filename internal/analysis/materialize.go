package analysis

import (
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Materialize turns a behavioural summary into an executable native body —
// the exact contract siteVerdict reasons about: 1-byte accesses at MinOff
// and MaxOff relative to the payload begin. It is the bridge both the
// static/dynamic differential oracle (internal/fuzz) and the serving layer
// (internal/pool) use to run program files under a real protection scheme.
func (s NativeSummary) Materialize() func(*jni.Env, *vm.Object) error {
	return func(e *jni.Env, arr *vm.Object) error {
		if s.Kind == jni.CriticalNative {
			// @CriticalNative code cannot use JNIEnv handout interfaces; it
			// reaches the heap through a raw untagged pointer, and because
			// the trampoline never arms checking, no tag is ever checked.
			s.touch(e, mte.MakePtr(arr.DataBegin(), 0))
			return nil
		}
		ptr, err := e.GetIntArrayElements(arr)
		if err != nil {
			return err
		}
		if s.UseAfterRelease {
			if err := e.ReleaseIntArrayElements(arr, ptr, jni.ReleaseDefault); err != nil {
				return err
			}
			s.touch(e, ptr) // stale pointer: the region's tags are gone
			return nil
		}
		if s.ForgeTag {
			// Mutate tag bits 56-59 without irg. XOR with a fixed nonzero
			// nibble guarantees the forged tag differs from the issued one.
			s.touch(e, ptr.WithTag(ptr.Tag()^0x8))
		} else {
			s.touch(e, ptr)
		}
		return e.ReleaseIntArrayElements(arr, ptr, jni.ReleaseDefault)
	}
}

// touch performs the summary's byte accesses. A synchronous fault panics out
// through the Env helper and is caught by the trampoline, so a faulting
// first access suppresses the second — matching real sync-mode MTE.
//
// DamageOps repeats the MinOff access after the primary touch sequence: the
// "keep working" shape the red-team window attacks use. Under sync TCF a
// faulting primary access suppresses the repeats, and a safe summary's
// repeats revisit an already-modelled offset, so the static/dynamic fault
// differential is unchanged either way. ConcurrentScan and ManagedRace
// declare properties of the *environment* (a collector thread scanning, a
// managed mutator racing) that a single-threaded materialized body cannot
// stage; they never change the sync tag-fault outcome, which is exactly why
// the temporal domain — not the fault verdict — is what flags them.
func (s NativeSummary) touch(e *jni.Env, base mte.Ptr) {
	if !s.Touches() {
		return
	}
	offs := []int64{s.MinOff}
	if s.MaxOff != s.MinOff {
		offs = append(offs, s.MaxOff)
	}
	for i := 0; i < s.DamageOps; i++ {
		offs = append(offs, s.MinOff)
	}
	for _, off := range offs {
		p := base.Add(off)
		if s.Write {
			e.StoreByte(p, 0x5A)
		} else {
			_ = e.LoadByte(p)
		}
	}
}
