// Package analysis is the static layer of the reproduction: it proves or
// refutes illicit-access properties *before* execution, where the rest of
// the repo (internal/mte, internal/jni, internal/core) detects them at
// runtime.
//
// It has two halves:
//
//   - An abstract interpreter over interp.Method bytecode (abstract.go):
//     per-pc abstract state tracking integer ranges, reference-slot
//     liveness, and reachability. It proves out-of-bounds array accesses,
//     uses of uninitialized reference slots, unreachable code, and — given
//     behavioural summaries of the native methods a program calls —
//     whether the program provably faults or provably cannot fault under
//     MTE4JNI+Sync with neighbour exclusion.
//
//   - A JNI-trace lint (jnilint.go) over jni.TraceEvent records: mismatched
//     Get/Release pairs, use-after-release of handed-out regions,
//     pointer-arithmetic escapes past the granule-rounded allocation, and
//     forged pointer-tag bits (bits 56-59 mutated without irg).
//
// internal/fuzz uses the bytecode half as a differential oracle: every
// generated program is analyzed statically and executed dynamically, and a
// dynamic MTE fault in a program the analyzer called provably safe (or a
// clean run of a provably faulting one) is a soundness bug in one of the
// two layers. cmd/mte4jni exposes both halves as `mte4jni lint`.
package analysis

import (
	"fmt"
	"sort"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SevInfo is informational only.
	SevInfo Severity = iota
	// SevWarning marks a possible violation the analyzer cannot prove.
	SevWarning
	// SevError marks a proven violation; `mte4jni lint` exits nonzero.
	SevError
)

// String names the severity as printed in diagnostics.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Rule identifiers. BC-* rules come from the bytecode abstract interpreter,
// JNI-* rules from the trace lint.
const (
	// RuleMalformed: the method fails structural validation (interp.Validate).
	RuleMalformed = "BC-MALFORMED"
	// RuleUnreachable: the instruction can never execute.
	RuleUnreachable = "BC-UNREACHABLE"
	// RuleOOB: an array access is out of bounds on every execution reaching it.
	RuleOOB = "BC-OOB"
	// RuleMaybeOOB: an array access may be out of bounds.
	RuleMaybeOOB = "BC-MAYBE-OOB"
	// RuleUninitRef: a reference slot is used before any assignment.
	RuleUninitRef = "BC-UNINIT-REF"
	// RuleMaybeUninitRef: a reference slot may be unassigned on some path.
	RuleMaybeUninitRef = "BC-MAYBE-UNINIT-REF"
	// RuleNegSize: an array is allocated with a provably negative length.
	RuleNegSize = "BC-NEG-SIZE"
	// RuleMaybeNegSize: an array length may be negative.
	RuleMaybeNegSize = "BC-MAYBE-NEG-SIZE"
	// RuleMaybeOOM: an array allocation may exhaust the heap.
	RuleMaybeOOM = "BC-MAYBE-OOM"
	// RuleDivZero: a division or remainder by a provably zero divisor.
	RuleDivZero = "BC-DIV-ZERO"
	// RuleMaybeDivZero: the divisor may be zero.
	RuleMaybeDivZero = "BC-MAYBE-DIV-ZERO"
	// RuleStack: the operand stack underflows or merges inconsistently.
	RuleStack = "BC-STACK"
	// RuleFallOff: control flow can run past the end of the bytecode.
	RuleFallOff = "BC-FALL-OFF"
	// RuleNativeUnknown: a native target has no behavioural summary.
	RuleNativeUnknown = "BC-NATIVE-UNKNOWN"
	// RuleNativeFault: a native call provably raises an MTE tag-check fault.
	RuleNativeFault = "BC-NATIVE-FAULT"
	// RuleCriticalHeap: an @CriticalNative method touches the Java heap,
	// where MTE checking is never armed.
	RuleCriticalHeap = "BC-CRITICAL-HEAP"

	// RuleMismatchedRelease: a Release with no matching outstanding Get.
	RuleMismatchedRelease = "JNI-MISMATCHED-RELEASE"
	// RuleLeakedGet: a Get never released by the end of the trace.
	RuleLeakedGet = "JNI-LEAKED-GET"
	// RuleUseAfterRelease: an access through a pointer whose region was
	// already released.
	RuleUseAfterRelease = "JNI-USE-AFTER-RELEASE"
	// RuleOOBEscape: pointer arithmetic escaped the granule-rounded
	// allocation the pointer was issued for.
	RuleOOBEscape = "JNI-OOB-ESCAPE"
	// RuleForgedTag: an access pointer carries tag bits (56-59) that were
	// never issued by irg for that region.
	RuleForgedTag = "JNI-FORGED-TAG"
)

// Diagnostic is one structured finding: where, which rule, how bad, what.
type Diagnostic struct {
	// Rule is the rule identifier (Rule* constants).
	Rule string
	// Sev grades the finding.
	Sev Severity
	// File is the source file when linting program files ("" otherwise).
	File string
	// Method names the bytecode method ("" for trace findings).
	Method string
	// PC is the instruction index (-1 when not anchored to one), or the
	// trace event index for JNI-* findings.
	PC int
	// Message is the human-readable finding, kept short enough to double as
	// a disassembly annotation.
	Message string
}

// String renders the diagnostic in the file:method:pc grep-able form.
func (d Diagnostic) String() string {
	loc := ""
	if d.File != "" {
		loc = d.File + ": "
	}
	if d.Method != "" {
		loc += d.Method + ": "
	}
	if d.PC >= 0 {
		loc += fmt.Sprintf("pc %d: ", d.PC)
	}
	return fmt.Sprintf("%s%s %s: %s", loc, d.Sev, d.Rule, d.Message)
}

// SortDiagnostics orders findings for stable output: by file, method, pc,
// then rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Rule < b.Rule
	})
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// Annotations groups diagnostic messages by pc for disassembly annotation
// via interp.DisassembleAnnotated.
func Annotations(diags []Diagnostic) map[int][]string {
	notes := make(map[int][]string)
	for _, d := range diags {
		if d.PC >= 0 {
			notes[d.PC] = append(notes[d.PC], d.Message)
		}
	}
	return notes
}

// Verdict is the analyzer's overall claim about a program's dynamic fate
// under MTE4JNI+Sync with neighbour exclusion.
type Verdict int

const (
	// VerdictUnknown: the analyzer proves nothing either way.
	VerdictUnknown Verdict = iota
	// VerdictSafe: no execution can raise an MTE tag-check fault.
	VerdictSafe
	// VerdictFault: every execution raises an MTE tag-check fault.
	VerdictFault
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "provably-safe"
	case VerdictFault:
		return "provably-faulting"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the verdict by name, the form the serving layer's 422
// payload and /metrics use.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON decodes a verdict name.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"provably-safe"`:
		*v = VerdictSafe
	case `"provably-faulting"`:
		*v = VerdictFault
	case `"unknown"`:
		*v = VerdictUnknown
	default:
		return fmt.Errorf("analysis: unknown verdict %s", data)
	}
	return nil
}
