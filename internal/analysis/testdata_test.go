package analysis

import (
	"path/filepath"
	"testing"
)

// TestSeededBadPrograms: every program under testdata/bad must analyze to an
// error-level finding and a provably-faulting verdict — these are the files
// `mte4jni lint` must exit nonzero on.
func TestSeededBadPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/bad/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 seeded bad programs, found %d", len(files))
	}
	for _, f := range files {
		p, err := LoadProgram(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		res := p.Analyze(f)
		if !HasErrors(res.Diags) {
			t.Errorf("%s: no error diagnostics: %v", f, res.Diags)
		}
		if res.Verdict != VerdictFault {
			t.Errorf("%s: verdict = %v, want %v", f, res.Verdict, VerdictFault)
		}
		if !hasRule(res.Diags, RuleNativeFault) {
			t.Errorf("%s: missing %s: %v", f, RuleNativeFault, res.Diags)
		}
	}
}

// TestExampleProgramsClean: everything under examples/lint must lint clean —
// no errors, safe verdict.
func TestExampleProgramsClean(t *testing.T) {
	files, err := filepath.Glob("../../examples/lint/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 example programs, found %d", len(files))
	}
	for _, f := range files {
		p, err := LoadProgram(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		res := p.Analyze(f)
		if HasErrors(res.Diags) {
			t.Errorf("%s: unexpected errors: %v", f, res.Diags)
		}
		if res.Verdict != VerdictSafe {
			t.Errorf("%s: verdict = %v, want %v; diags %v", f, res.Verdict, VerdictSafe, res.Diags)
		}
	}
}
