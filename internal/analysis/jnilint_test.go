package analysis

import (
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

// Synthetic trace fixtures. One region: payload [0x1000, 0x1048) (72 bytes,
// granule-rounded to [0x1000, 0x1050)), issued with tag 0x5.
const (
	rBegin = mte.Addr(0x1000)
	rEnd   = mte.Addr(0x1048)
	rTag   = mte.Tag(0x5)
)

func rPtr() mte.Ptr { return mte.MakePtr(rBegin, rTag) }

func get() jni.TraceEvent {
	return jni.TraceEvent{Kind: jni.TraceGet, Iface: "GetIntArrayElements",
		Object: "int[18]", Ptr: rPtr(), Begin: rBegin, End: rEnd}
}

func release() jni.TraceEvent {
	return jni.TraceEvent{Kind: jni.TraceRelease, Iface: "ReleaseIntArrayElements",
		Object: "int[18]", Ptr: rPtr()}
}

func access(p mte.Ptr, write bool) jni.TraceEvent {
	return jni.TraceEvent{Kind: jni.TraceAccess, Iface: "StoreByte", Ptr: p, Size: 1, Write: write}
}

func rules(diags []Diagnostic) map[string]int {
	m := make(map[string]int)
	for _, d := range diags {
		m[d.Rule]++
	}
	return m
}

func TestLintCleanTrace(t *testing.T) {
	diags := LintTrace([]jni.TraceEvent{
		get(),
		access(rPtr().Add(0), true),
		access(rPtr().Add(71), false),
		access(rPtr().Add(79), true), // padding inside the granule rounding: legal per §4.1
		release(),
	})
	if len(diags) != 0 {
		t.Fatalf("clean trace produced %v", diags)
	}
}

func TestLintMismatchedRelease(t *testing.T) {
	diags := LintTrace([]jni.TraceEvent{release()})
	if rules(diags)[RuleMismatchedRelease] != 1 {
		t.Fatalf("want one %s, got %v", RuleMismatchedRelease, diags)
	}
}

func TestLintDoubleRelease(t *testing.T) {
	diags := LintTrace([]jni.TraceEvent{get(), release(), release()})
	if rules(diags)[RuleMismatchedRelease] != 1 {
		t.Fatalf("want one %s, got %v", RuleMismatchedRelease, diags)
	}
}

func TestLintNestedGetsBalance(t *testing.T) {
	// The same array acquired twice hands out the same pointer; two gets
	// need two releases, and exactly two is clean.
	diags := LintTrace([]jni.TraceEvent{get(), get(), release(), release()})
	if len(diags) != 0 {
		t.Fatalf("balanced nested gets produced %v", diags)
	}
}

func TestLintLeakedGet(t *testing.T) {
	diags := LintTrace([]jni.TraceEvent{get(), access(rPtr(), false)})
	if rules(diags)[RuleLeakedGet] != 1 {
		t.Fatalf("want one %s, got %v", RuleLeakedGet, diags)
	}
	if diags[0].PC != 0 {
		t.Errorf("leak attributed to event %d, want 0 (the Get)", diags[0].PC)
	}
}

func TestLintUseAfterRelease(t *testing.T) {
	diags := LintTrace([]jni.TraceEvent{
		get(), release(),
		access(rPtr().Add(4), true),
	})
	if rules(diags)[RuleUseAfterRelease] != 1 {
		t.Fatalf("want one %s, got %v", RuleUseAfterRelease, diags)
	}
}

func TestLintOOBEscape(t *testing.T) {
	// Pointer arithmetic walks past the granule-rounded end (0x1050) while
	// the region is still live: same tag, outside the handout.
	diags := LintTrace([]jni.TraceEvent{
		get(),
		access(rPtr().Add(0x50), true),
		release(),
	})
	if rules(diags)[RuleOOBEscape] != 1 {
		t.Fatalf("want one %s, got %v", RuleOOBEscape, diags)
	}
}

func TestLintForgedTag(t *testing.T) {
	forged := rPtr().WithTag(rTag ^ 0x8)
	diags := LintTrace([]jni.TraceEvent{
		get(),
		access(forged.Add(8), false),
		release(),
	})
	if rules(diags)[RuleForgedTag] != 1 {
		t.Fatalf("want one %s, got %v", RuleForgedTag, diags)
	}
}

func TestLintUnrelatedAccessIgnored(t *testing.T) {
	// An access to native-private memory (no tag relation, no region
	// overlap) is not this lint's business.
	diags := LintTrace([]jni.TraceEvent{
		get(),
		access(mte.MakePtr(0x9000, 0), true),
		release(),
	})
	if len(diags) != 0 {
		t.Fatalf("unrelated access produced %v", diags)
	}
}
