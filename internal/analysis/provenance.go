package analysis

import (
	"fmt"
	"strings"
)

// Pointer provenance: for every provably-faulting native call the analyzer
// reconstructs *where the faulting pointer came from*, as a chain of events
// spanning the managed allocation, every JNI hand-out of the same reference
// (including earlier native calls in the method — the interprocedural part),
// the arithmetic that derived the access offsets, any tag-retiring release or
// tag-bit forgery inside the native, and the dereference itself. The chain is
// the machine-checkable justification behind a ScreenVerdict rejection, and
// the serving layer returns it verbatim in the 422 payload.

// ProvKind classifies one provenance event.
type ProvKind string

const (
	// ProvAlloc is the managed OpNewArray that created the reference.
	ProvAlloc ProvKind = "alloc"
	// ProvHandout is a JNI GetIntArrayElements handing the tagged payload
	// pointer to native code.
	ProvHandout ProvKind = "handout"
	// ProvDerive is native pointer arithmetic deriving the access pointer
	// from the handed-out base.
	ProvDerive ProvKind = "derive"
	// ProvRelease is a ReleaseIntArrayElements retiring the region's tags
	// while the derived pointer survives.
	ProvRelease ProvKind = "release"
	// ProvForge is a mutation of pointer tag bits 56-59 without irg.
	ProvForge ProvKind = "forge"
	// ProvDeref is the dereference the chain ends in.
	ProvDeref ProvKind = "deref"
	// ProvEscape is a derivation that leaves the deterministic
	// neighbour-exclusion window (a cross-mapping escape candidate); it can
	// appear in unknown-verdict reasoning but never proves a fault.
	ProvEscape ProvKind = "escape"

	// The temporal-chain kinds (temporal.go): an exposed call site is
	// justified by alloc → acquire → interfering-write → late-check.

	// ProvAcquire is the JNI hand-out opening the acquire/release critical
	// window.
	ProvAcquire ProvKind = "acquire"
	// ProvWrite is the interfering native (or racing managed) write inside
	// the window.
	ProvWrite ProvKind = "interfering-write"
	// ProvCheck is the deferred checkpoint that observes the violation too
	// late — or, for the structural blind spots, never.
	ProvCheck ProvKind = "late-check"
)

// ProvStep is one event in a provenance chain.
type ProvStep struct {
	// Kind classifies the event.
	Kind ProvKind `json:"kind"`
	// PC is the bytecode pc the event is anchored to (-1 when the
	// allocation site was lost to a path merge).
	PC int `json:"pc"`
	// Native names the native method for events inside a native body.
	Native string `json:"native,omitempty"`
	// Detail is the human-readable event description.
	Detail string `json:"detail"`
}

// ProvChain is an ordered provenance chain, allocation first, dereference
// last.
type ProvChain []ProvStep

// String renders the chain as a compact one-liner ("alloc@1 → handout@4 →
// deref@4").
func (c ProvChain) String() string {
	parts := make([]string, len(c))
	for i, s := range c {
		if s.PC >= 0 {
			parts[i] = fmt.Sprintf("%s@%d", s.Kind, s.PC)
		} else {
			parts[i] = string(s.Kind)
		}
	}
	return strings.Join(parts, " → ")
}

// buildProvChain reconstructs the provenance of the pointer a faulting call
// site dereferences. pc is the faulting OpCallNative, slot the reference
// slot it passes, r that slot's abstract state, sum the faulting native's
// summary, prior the call sites already analyzed on earlier pcs (used to
// recover hand-outs of the same reference to other natives), and reason the
// site verdict's explanation for the final dereference.
func buildProvChain(pc int, slot int64, r refState, name string, sum NativeSummary, prior []CallSite, reason string) ProvChain {
	var chain ProvChain
	if r.allocPC > 0 {
		chain = append(chain, ProvStep{
			Kind: ProvAlloc, PC: r.allocPC - 1,
			Detail: fmt.Sprintf("newarray allocates ref slot %d (length %s, freshly tagged by irg)", slot, r.length),
		})
	} else {
		chain = append(chain, ProvStep{
			Kind: ProvAlloc, PC: -1,
			Detail: fmt.Sprintf("ref slot %d allocated on a merged path (site not unique)", slot),
		})
	}
	for _, s := range prior {
		if s.PC < pc && s.Ref == slot {
			chain = append(chain, ProvStep{
				Kind: ProvHandout, PC: s.PC, Native: s.Name,
				Detail: "payload previously handed out to this native via GetIntArrayElements",
			})
		}
	}
	chain = append(chain, ProvStep{
		Kind: ProvHandout, PC: pc, Native: name,
		Detail: "GetIntArrayElements hands the tagged payload pointer to native code",
	})
	if sum.MinOff != 0 || sum.MaxOff != 0 {
		chain = append(chain, ProvStep{
			Kind: ProvDerive, PC: pc, Native: name,
			Detail: fmt.Sprintf("pointer arithmetic derives byte offsets [%d,%d] from the handed-out base", sum.MinOff, sum.MaxOff),
		})
	}
	if sum.UseAfterRelease {
		chain = append(chain, ProvStep{
			Kind: ProvRelease, PC: pc, Native: name,
			Detail: "ReleaseIntArrayElements retires the region's tags; the derived pointer survives stale",
		})
	}
	if sum.ForgeTag {
		chain = append(chain, ProvStep{
			Kind: ProvForge, PC: pc, Native: name,
			Detail: "tag bits 56-59 mutated without irg: pointer tag no longer matches any issued tag",
		})
	}
	chain = append(chain, ProvStep{
		Kind: ProvDeref, PC: pc, Native: name,
		Detail: reason,
	})
	return chain
}
