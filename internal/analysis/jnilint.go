package analysis

import (
	"fmt"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

// The JNI-trace lint: an offline pass over the TraceEvent stream a
// jni.RecordingTracer captured. Where the abstract interpreter reasons about
// programs before they run, this lint reasons about one concrete run — it is
// the CheckJNI-style reviewer that looks at a -verbose:jni log and points at
// the access that should never have happened, whether or not the hardware
// caught it (with MTE off, the trace is the only witness).

// region is one Get handout being tracked across the trace.
type region struct {
	iface  string
	object string
	ptr    mte.Ptr
	// gb and ge are the granule-rounded bounds of the handout: the byte
	// range that actually carries the region's tag.
	gb, ge mte.Addr
	// outstanding counts unreleased Gets of this exact pointer (nested Gets
	// of the same array hand out the same pointer).
	outstanding int
	// getIndex is the trace index of the first Get, for leak reports.
	getIndex int
}

// LintTrace analyzes a recorded JNI trace and reports protocol and memory
// violations the events witness. Event indices appear in the PC field of the
// diagnostics.
func LintTrace(events []jni.TraceEvent) []Diagnostic {
	var diags []Diagnostic
	emit := func(i int, rule string, sev Severity, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Rule: rule, Sev: sev, PC: i, Message: fmt.Sprintf(format, args...),
		})
	}

	// Regions keyed by untagged begin address. Releases remove from here but
	// keep the record in retired for use-after-release attribution.
	live := make(map[mte.Addr]*region)
	var retired []*region

	for i, ev := range events {
		switch ev.Kind {
		case jni.TraceGet:
			addr := ev.Ptr.Addr()
			if r, ok := live[addr]; ok && r.ptr == ev.Ptr {
				r.outstanding++
				continue
			}
			gb, ge := mte.GranuleRange(ev.Begin, ev.End)
			if ev.End == ev.Begin { // zero-length handout still owns one granule
				ge = gb + mte.GranuleSize
			}
			live[addr] = &region{
				iface: ev.Iface, object: ev.Object, ptr: ev.Ptr,
				gb: gb, ge: ge, outstanding: 1, getIndex: i,
			}
		case jni.TraceRelease:
			addr := ev.Ptr.Addr()
			r, ok := live[addr]
			if !ok || r.ptr != ev.Ptr {
				emit(i, RuleMismatchedRelease, SevError,
					"%s(%s, %v) has no matching outstanding Get (double release or wrong pointer)",
					ev.Iface, ev.Object, ev.Ptr)
				continue
			}
			r.outstanding--
			if r.outstanding == 0 {
				delete(live, addr)
				retired = append(retired, r)
			}
		case jni.TraceAccess:
			lintAccess(i, ev, live, retired, emit)
		}
	}

	for _, r := range live {
		emit(r.getIndex, RuleLeakedGet, SevWarning,
			"%s(%s) -> %v never released (leaked Get pins the object forever)",
			r.iface, r.object, r.ptr)
	}
	SortDiagnostics(diags)
	return diags
}

// lintAccess attributes one raw access to a handed-out region and flags the
// illicit ways it can relate to it.
func lintAccess(i int, ev jni.TraceEvent, live map[mte.Addr]*region, retired []*region,
	emit func(int, string, Severity, string, ...any)) {
	begin := ev.Ptr.Addr()
	end := begin + mte.Addr(max64(int64(ev.Size), 1))
	dir := "load"
	if ev.Write {
		dir = "store"
	}

	within := func(r *region) bool { return begin >= r.gb && end <= r.ge }
	overlaps := func(r *region) bool { return begin < r.ge && end > r.gb }

	// 1. Inside a live region: legitimate unless the tag bits were forged.
	for _, r := range live {
		if !within(r) {
			continue
		}
		if ev.Ptr.Tag() != r.ptr.Tag() {
			emit(i, RuleForgedTag, SevError,
				"%s %s %v inside %s region %v carries tag %v, issued tag is %v (bits 56-59 forged without irg)",
				ev.Iface, dir, ev.Ptr, r.iface, r.ptr, ev.Ptr.Tag(), r.ptr.Tag())
		}
		return
	}
	// 2. Inside a released region: use-after-release.
	for j := len(retired) - 1; j >= 0; j-- {
		if r := retired[j]; within(r) || (overlaps(r) && ev.Ptr.Tag() == r.ptr.Tag()) {
			emit(i, RuleUseAfterRelease, SevError,
				"%s %s %v inside region %v already released by %s (use-after-release)",
				ev.Iface, dir, ev.Ptr, r.ptr, r.iface)
			return
		}
	}
	// 3. Same tag as a live region but outside its granule bounds: the
	// pointer was derived from that handout and walked off it.
	for _, r := range live {
		if ev.Ptr.Tag() == r.ptr.Tag() {
			emit(i, RuleOOBEscape, SevError,
				"%s %s %v escapes the granule-rounded handout [%v,%v) of %s (pointer arithmetic past the allocation)",
				ev.Iface, dir, ev.Ptr, r.gb, r.ge, r.iface)
			return
		}
	}
	// Accesses with no relation to any handout (native-private memory,
	// direct buffers, ...) are outside this lint's jurisdiction.
}
