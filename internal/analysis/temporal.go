package analysis

import (
	"fmt"

	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
)

// The temporal effect domain: where siteVerdict asks *whether* a native
// access violates, this pass asks *when the checker would notice*. Each call
// site's acquire/release critical window is modelled as a sequence of
// abstract events — the JNI acquire, every native access (including the
// post-violation damage repeats DamageOps declares), concurrent GC-scan and
// managed-mutator activity, the checkpoint, and the release. Happens-before
// is program order on the native thread; concurrent events are unordered
// with it. A site is exposed when some interfering write is ordered before
// the check that would observe the first violation (the async-TCF damage
// window, §4.3 / Figure 4c), when the check structurally cannot observe the
// violation at all (the §2.3 guarded-copy blind spots), or when a concurrent
// scan overlaps violating activity inside a deferred window (the GC-scan
// race). The classification feeds Screen, the server's -temporal-policy
// enforcement, and the window-safety obligation on elision proofs.

// WindowClass is a call site's temporal exposure.
type WindowClass string

const (
	// WindowClean: every violating access is observed before any later
	// event — no damage window, no blind spot.
	WindowClean WindowClass = "clean"
	// WindowRisk: under deferred tag checking (async TCF) interfering
	// writes land between the first violation and the trampoline-exit
	// report.
	WindowRisk WindowClass = "window-risk"
	// WindowGuardedCopyBlindSpot: release-time canary verification either
	// never observes the violation (oob reads, writes beyond both red
	// zones, managed writes erased by the copy-back) or observes it only
	// after interfering writes were banked.
	WindowGuardedCopyBlindSpot WindowClass = "guardedcopy-blindspot"
	// WindowScanRace: a concurrent GC scan overlaps violating native
	// activity inside a deferred-check window.
	WindowScanRace WindowClass = "scan-race"
)

// WindowEventKind classifies one abstract event inside the critical window.
type WindowEventKind string

const (
	// EvAcquire is the JNI hand-out opening the window.
	EvAcquire WindowEventKind = "acquire"
	// EvAccess is one native load/store through the handed-out pointer.
	EvAccess WindowEventKind = "access"
	// EvManagedWrite is a managed-side write to the same array committing
	// while the native holds its hand-out (concurrent with the native).
	EvManagedWrite WindowEventKind = "managed-write"
	// EvScan is a collector thread reading live payloads during the window
	// (concurrent with the native).
	EvScan WindowEventKind = "scan"
	// EvCheck is the checkpoint where the placement's sensor reports.
	EvCheck WindowEventKind = "check"
	// EvRelease is the JNI release closing the window.
	EvRelease WindowEventKind = "release"
)

// WindowEvent is one abstract event in a call site's critical window.
type WindowEvent struct {
	// Kind classifies the event.
	Kind WindowEventKind `json:"kind"`
	// Seq is the event's position in the native thread's program order.
	// Concurrent events share the window but are unordered with it.
	Seq int `json:"seq"`
	// Concurrent marks events on other threads (scan, managed mutator).
	Concurrent bool `json:"concurrent,omitempty"`
	// Write marks an access event as a store.
	Write bool `json:"write,omitempty"`
	// Off is the byte offset of an access event.
	Off int64 `json:"off,omitempty"`
	// Violating marks an access the placement's policy forbids (tag
	// mismatch for tag sensors, red-zone corruption for canary sensors).
	Violating bool `json:"violating,omitempty"`
	// Observed marks a violating access the placement's sensor would
	// actually see at its checkpoint.
	Observed bool `json:"observed,omitempty"`
	// Detail is the human-readable event description.
	Detail string `json:"detail,omitempty"`
}

// NewWindowEvent builds one window event. Window-event construction is
// encapsulated in this package (tools/lintrepo temporal-encapsulation pass):
// the rest of the repo consumes classifications, it does not invent them.
func NewWindowEvent(kind WindowEventKind, seq int, detail string) WindowEvent {
	return WindowEvent{Kind: kind, Seq: seq, Detail: detail}
}

// happensBefore reports whether a is ordered before b: program order on the
// native thread; concurrent events are unordered with everything.
func happensBefore(a, b WindowEvent) bool {
	return !a.Concurrent && !b.Concurrent && a.Seq < b.Seq
}

// TemporalFinding is one exposed call site: the class, the anchor, and the
// provenance chain (alloc → acquire → interfering-write → late-check) that
// justifies it. It rides the ScreenVerdict into the server's 422 payload.
type TemporalFinding struct {
	// Class is the exposure class.
	Class WindowClass `json:"class"`
	// PC is the call site's instruction index.
	PC int `json:"pc"`
	// Native names the native method.
	Native string `json:"native"`
	// Reason is the one-clause justification.
	Reason string `json:"reason"`
	// Chain is the temporal provenance chain.
	Chain ProvChain `json:"chain,omitempty"`
	// Events is the abstract window the classification was computed over.
	Events []WindowEvent `json:"events,omitempty"`
}

// NewTemporalFinding builds a finding. Like NewWindowEvent, construction is
// encapsulated in internal/analysis; consumers only read findings.
func NewTemporalFinding(class WindowClass, pc int, native, reason string) TemporalFinding {
	return TemporalFinding{Class: class, PC: pc, Native: native, Reason: reason}
}

// ExposedUnder reports whether the class is a live exposure when checks run
// at the given placement — the server's risky matrix: damage-window and
// scan-race classes matter under async TCF's trampoline-exit checkpoint,
// blind-spot classes under guarded copy's release-time verification. Sync
// TCF (per-access) and unprotected runs (never) are never downgraded or
// rejected on temporal grounds.
func (c WindowClass) ExposedUnder(place jni.CheckPlacement) bool {
	switch c {
	case WindowRisk, WindowScanRace:
		return place == jni.PlaceTrampolineExit
	case WindowGuardedCopyBlindSpot:
		return place == jni.PlaceAtRelease
	}
	return false
}

// TemporalPolicy is the server's admission policy for temporally exposed
// programs.
type TemporalPolicy string

const (
	// TemporalReject 422-rejects a program whose exposure class is live
	// under the requested scheme, carrying the temporal findings.
	TemporalReject TemporalPolicy = "reject"
	// TemporalForceSync transparently downgrades the run to sync TCF
	// (per-access checking closes the damage window).
	TemporalForceSync TemporalPolicy = "force-sync"
	// TemporalLog only counts the exposure and admits the run unchanged.
	TemporalLog TemporalPolicy = "log"
)

// ParseTemporalPolicy validates a -temporal-policy flag value; empty means
// the default, reject.
func ParseTemporalPolicy(s string) (TemporalPolicy, error) {
	switch TemporalPolicy(s) {
	case "":
		return TemporalReject, nil
	case TemporalReject, TemporalForceSync, TemporalLog:
		return TemporalPolicy(s), nil
	}
	return "", fmt.Errorf("analysis: unknown temporal policy %q (want reject, force-sync or log)", s)
}

// windowEvents builds the abstract event sequence for one call site under a
// checkpoint placement. Violating/Observed are placement-relative: tag
// sensors (per-access, trampoline-exit) fault on forged or stale tags and
// out-of-payload offsets; the canary sensor (at-release) only ever sees
// writes that land inside a red zone. exact reports whether the array
// length was statically exact — geometry-based violation claims are made
// only then. detailed controls the human-readable Detail strings: the
// classification pass runs on every call site of every screened program and
// only reads the structural fields, so it skips the rendering; the strings
// are built once more, only for the window attached to an exposed finding.
// scratch, when non-nil, is an empty buffer the events are appended into —
// classifyWindow reuses one buffer for every window it inspects so the
// common classify-then-discard path costs a single allocation per site.
func windowEvents(sum NativeSummary, length iv, place jni.CheckPlacement, detailed bool, scratch []WindowEvent) []WindowEvent {
	exact := length.isExact() && length.Lo >= 0 && length.Lo <= maxProvableLen
	se := int64(0)
	if exact {
		se = safeEnd(length.Lo)
	}

	// The access sequence Materialize realizes: MinOff, MaxOff, then the
	// DamageOps repeats at MinOff.
	naccess := 0
	if sum.Touches() {
		naccess = 1 + sum.DamageOps
		if sum.MaxOff != sum.MinOff {
			naccess++
		}
	}

	seq := 0
	next := func() int { seq++; return seq - 1 }
	// acquire + accesses + managed-write + scan + check + release.
	evs := scratch
	if cap(evs) < naccess+5 {
		evs = make([]WindowEvent, 0, naccess+5)
	}
	acquire := WindowEvent{Kind: EvAcquire, Seq: next()}
	if detailed {
		acquire.Detail = "GetIntArrayElements opens the critical window (payload handed to native code)"
	}
	evs = append(evs, acquire)
	for k := 0; k < naccess; k++ {
		off := sum.MinOff
		if k == 1 && sum.MaxOff != sum.MinOff {
			off = sum.MaxOff
		}
		ev := WindowEvent{Kind: EvAccess, Seq: next(), Write: sum.Write, Off: off}
		switch place {
		case jni.PlacePerAccess, jni.PlaceTrampolineExit:
			// Tag sensor: forged or stale tags always mismatch; offsets
			// outside the tag-rounded payload mismatch deterministically
			// inside the neighbour-exclusion window.
			ev.Violating = sum.ForgeTag || sum.UseAfterRelease ||
				(exact && (off < 0 || off >= se))
			ev.Observed = ev.Violating
		case jni.PlaceAtRelease:
			// Canary sensor: only writes change canaries, and only inside a
			// red zone. Reads and writes beyond both red zones violate the
			// hand-out contract but are structurally unobservable.
			inRedZone := exact && ((off >= -guardedcopy.RedZoneSize && off < 0) ||
				(off >= se && off < se+guardedcopy.RedZoneSize))
			outside := exact && (off < 0 || off >= se)
			ev.Violating = outside
			ev.Observed = sum.Write && inRedZone
		}
		if detailed {
			if ev.Write {
				ev.Detail = fmt.Sprintf("native store at byte offset %d", off)
			} else {
				ev.Detail = fmt.Sprintf("native load at byte offset %d", off)
			}
		}
		evs = append(evs, ev)
	}
	if sum.ManagedRace {
		ev := WindowEvent{Kind: EvManagedWrite, Seq: seq, Concurrent: true}
		if detailed {
			ev.Detail = "managed-side write to the same array commits while the native holds its hand-out"
		}
		evs = append(evs, ev)
	}
	if sum.ConcurrentScan {
		ev := WindowEvent{Kind: EvScan, Seq: seq, Concurrent: true}
		if detailed {
			ev.Detail = "collector thread scans live payloads concurrently with the window"
		}
		evs = append(evs, ev)
	}
	switch place {
	case jni.PlacePerAccess:
		// One checkpoint immediately after each access: model it as a check
		// right after the first violating access — nothing can be ordered
		// between a violation and its report.
		for i, ev := range evs {
			if ev.Kind == EvAccess && ev.Violating {
				check := WindowEvent{Kind: EvCheck, Seq: ev.Seq}
				if detailed {
					check.Detail = "sync TCF checks the access itself: the violating instruction faults"
				}
				rest := append([]WindowEvent(nil), evs[:i+1]...)
				rest = append(rest, check)
				evs = append(rest, evs[i+1:]...)
				break
			}
		}
	case jni.PlaceTrampolineExit:
		check := WindowEvent{Kind: EvCheck, Seq: next()}
		if detailed {
			check.Detail = "async TCF reports the latched fault at the trampoline exit"
		}
		evs = append(evs, check)
	case jni.PlaceAtRelease:
		check := WindowEvent{Kind: EvCheck, Seq: next()}
		if detailed {
			check.Detail = "guarded copy verifies red-zone canaries at release"
		}
		evs = append(evs, check)
	}
	release := WindowEvent{Kind: EvRelease, Seq: next()}
	if detailed {
		release.Detail = "ReleaseIntArrayElements closes the critical window"
	}
	return append(evs, release)
}

// interferingWrites counts write events ordered strictly between the first
// violating access and the checkpoint — the damage an attacker banks before
// the report.
func interferingWrites(evs []WindowEvent) int {
	var first, check *WindowEvent
	for i := range evs {
		ev := &evs[i]
		if ev.Kind == EvAccess && ev.Violating && first == nil {
			first = ev
		}
		if ev.Kind == EvCheck && check == nil {
			check = ev
		}
	}
	if first == nil || check == nil {
		return 0
	}
	n := 0
	for i := range evs {
		ev := &evs[i]
		if ev.Kind == EvAccess && ev.Write &&
			happensBefore(*first, *ev) && happensBefore(*ev, *check) {
			n++
		}
	}
	return n
}

// classifyWindow computes a call site's exposure class from its abstract
// windows under the two deferred placements. Per-access checking is the
// clean baseline by construction; @CriticalNative sites place no check at
// all, which RuleCriticalHeap already diagnoses — there is no *deferred*
// check to race.
func classifyWindow(sum NativeSummary, length iv) (WindowClass, string) {
	if sum.Kind == jni.CriticalNative || !sum.Touches() {
		return WindowClean, ""
	}
	// Each rule materializes only the abstract window it actually inspects,
	// detail-free and into one reused buffer: this runs on every call site
	// of every screened program, and the overwhelmingly common outcome is a
	// discarded WindowClean. Every window below is consumed before the next
	// one overwrites the buffer.
	var scratch []WindowEvent

	// GC-scan race: concurrent scan unordered with violating activity in a
	// deferred window.
	if sum.ConcurrentScan {
		async := windowEvents(sum, length, jni.PlaceTrampolineExit, false, scratch)
		scratch = async[:0]
		for _, ev := range async {
			if ev.Kind == EvAccess && ev.Violating {
				return WindowScanRace,
					"concurrent GC scan overlaps forged/stale native activity inside the deferred-check window"
			}
		}
	}
	// Guarded-copy blind spots, in §2.3 order of subtlety: the lost-update
	// copy-back race, structurally unobservable violations (oob reads,
	// far-jump writes), then deferred detection with banked damage.
	if sum.ManagedRace {
		return WindowGuardedCopyBlindSpot,
			"lost update: the release copy-back overwrites a managed write committed during the hold window"
	}
	release := windowEvents(sum, length, jni.PlaceAtRelease, false, scratch)
	var unobserved, deferred *WindowEvent
	for i := range release {
		ev := &release[i]
		if ev.Kind != EvAccess || !ev.Violating {
			continue
		}
		if !ev.Observed && unobserved == nil {
			unobserved = ev
		}
		if ev.Observed && deferred == nil {
			deferred = ev
		}
	}
	if unobserved != nil {
		if unobserved.Write {
			return WindowGuardedCopyBlindSpot, fmt.Sprintf(
				"far out-of-bounds write at offset %d lands beyond both red zones; release-time verification stays green",
				unobserved.Off)
		}
		return WindowGuardedCopyBlindSpot, fmt.Sprintf(
			"out-of-bounds read at offset %d corrupts no canary; release-time verification is structurally blind to it",
			unobserved.Off)
	}
	if deferred != nil {
		if n := interferingWrites(release); n > 0 {
			return WindowGuardedCopyBlindSpot, fmt.Sprintf(
				"deferred detection: %d damage writes are banked between the red-zone violation and the release-time report", n)
		}
	}
	// Async-TCF damage window: interfering writes between the latched
	// violation and the trampoline-exit report.
	if n := interferingWrites(windowEvents(sum, length, jni.PlaceTrampolineExit, false, release[:0])); n > 0 {
		return WindowRisk, fmt.Sprintf(
			"async TCF damage window: %d interfering writes land between the first violation and the trampoline-exit report", n)
	}
	return WindowClean, ""
}

// temporalSite classifies one reporting-phase call site and, when exposed,
// builds the finding with its provenance chain and the event window that
// justifies it.
func temporalSite(pc int, slot int64, r refState, name string, sum NativeSummary) (TemporalFinding, bool) {
	class, reason := classifyWindow(sum, r.length)
	if class == WindowClean {
		return TemporalFinding{}, false
	}
	f := NewTemporalFinding(class, pc, name, reason)
	f.Chain = buildTemporalChain(pc, slot, r, name, sum, class, reason)
	place := jni.PlaceAtRelease
	if class == WindowRisk || class == WindowScanRace {
		place = jni.PlaceTrampolineExit
	}
	f.Events = windowEvents(sum, r.length, place, true, nil)
	return f, true
}

// buildTemporalChain renders the temporal provenance chain for an exposed
// site: alloc → acquire → interfering-write → late-check.
func buildTemporalChain(pc int, slot int64, r refState, name string, sum NativeSummary, class WindowClass, reason string) ProvChain {
	var chain ProvChain
	if r.allocPC > 0 {
		chain = append(chain, ProvStep{
			Kind: ProvAlloc, PC: r.allocPC - 1,
			Detail: fmt.Sprintf("newarray allocates ref slot %d (length %s, freshly tagged by irg)", slot, r.length),
		})
	} else {
		chain = append(chain, ProvStep{
			Kind: ProvAlloc, PC: -1,
			Detail: fmt.Sprintf("ref slot %d allocated on a merged path (site not unique)", slot),
		})
	}
	chain = append(chain, ProvStep{
		Kind: ProvAcquire, PC: pc, Native: name,
		Detail: "GetIntArrayElements opens the acquire/release critical window",
	})
	var write string
	switch {
	case sum.ManagedRace:
		write = "managed write commits during the hold; the release copy-back erases it with the stale snapshot"
	case !sum.Write:
		write = fmt.Sprintf("native load at offset %d leaves every canary byte intact", sum.MaxOff)
	case sum.DamageOps > 0:
		write = fmt.Sprintf("native stores at offsets [%d,%d] plus %d post-violation damage writes land inside the window",
			sum.MinOff, sum.MaxOff, sum.DamageOps)
	default:
		write = fmt.Sprintf("native stores at offsets [%d,%d] land inside the window", sum.MinOff, sum.MaxOff)
	}
	chain = append(chain, ProvStep{Kind: ProvWrite, PC: pc, Native: name, Detail: write})
	var check string
	switch class {
	case WindowGuardedCopyBlindSpot:
		check = "release-time canary verification is the only sensor, and it runs after the whole window: " + reason
	case WindowScanRace:
		check = "the deferred checkpoint leaves the scan window unprotected: " + reason
	default:
		check = "the trampoline-exit report arrives after the damage: " + reason
	}
	chain = append(chain, ProvStep{Kind: ProvCheck, PC: pc, Native: name, Detail: check})
	return chain
}

// TemporalAnnotations returns per-PC disassembly notes for exposed call
// sites ("window: <class>: <reason>") for `mte4jni lint -disasm`.
func TemporalAnnotations(res *MethodResult) map[int][]string {
	notes := make(map[int][]string)
	for _, f := range res.Temporal {
		notes[f.PC] = append(notes[f.PC], fmt.Sprintf("window: %s: %s", f.Class, f.Reason))
	}
	return notes
}
