package analysis

import (
	"strings"
	"testing"

	"mte4jni/internal/jni"
)

const exampleJSON = `{
  "method": {
    "name": "main", "maxLocals": 1, "maxRefs": 1,
    "nativeNames": ["sum"],
    "code": [
      {"op": "const", "a": 18},
      {"op": "newarray", "a": 0},
      {"op": "callnative", "a": 0, "b": 0},
      {"op": "const", "a": 0},
      {"op": "return"}
    ]
  },
  "natives": {
    "sum": {"kind": "regular", "minOffset": 0, "maxOffset": 71}
  }
}`

func TestParseProgram(t *testing.T) {
	p, err := ParseProgram([]byte(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Method.Name != "main" || len(p.Method.Code) != 5 {
		t.Fatalf("method = %+v", p.Method)
	}
	s, ok := p.Natives["sum"]
	if !ok || s.Kind != jni.Regular || s.MinOff != 0 || s.MaxOff != 71 {
		t.Fatalf("natives = %+v", p.Natives)
	}
	if res := p.Analyze("example.json"); res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want %v; diags %v", res.Verdict, VerdictSafe, res.Diags)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p, err := ParseProgram([]byte(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProgram(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if len(q.Method.Code) != len(p.Method.Code) || q.Method.Code[2] != p.Method.Code[2] {
		t.Fatalf("round trip lost code: %+v", q.Method.Code)
	}
	if q.Natives["sum"] != p.Natives["sum"] {
		t.Fatalf("round trip lost natives: %+v", q.Natives)
	}
}

func TestParseProgramErrors(t *testing.T) {
	for _, tc := range []struct {
		name, src, want string
	}{
		{"bad-json", `{`, "parse program"},
		{"bad-opcode", `{"method":{"code":[{"op":"frobnicate"}]}}`, `unknown opcode "frobnicate"`},
		{"bad-kind", `{"method":{"code":[{"op":"return"}]},"natives":{"x":{"kind":"sideways"}}}`, `unknown kind "sideways"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDiagnosticFileStamping(t *testing.T) {
	src := `{"method":{"maxRefs":1,"code":[
		{"op":"const","a":0},{"op":"aget","a":0},{"op":"return"}]}}`
	p, err := ParseProgram([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	res := p.Analyze("bad.json")
	if len(res.Diags) == 0 || res.Diags[0].File != "bad.json" {
		t.Fatalf("diags = %v", res.Diags)
	}
	if s := res.Diags[0].String(); !strings.HasPrefix(s, "bad.json: main: ") {
		t.Fatalf("rendered = %q", s)
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []jni.NativeKind{jni.Regular, jni.FastNative, jni.CriticalNative} {
		if got, ok := kindByName[KindName(k)]; !ok || got != k {
			t.Errorf("kind %v does not round-trip (name %q)", k, KindName(k))
		}
	}
}
