package analysis

import (
	"testing"

	"mte4jni/internal/jni"
)

// riskyProgramJSON is an inline program with an async damage window: forged
// in-payload stores with post-violation damage repeats.
const riskyProgramJSON = `{
  "method": {
    "name": "risky",
    "maxLocals": 1, "maxRefs": 1,
    "nativeNames": ["native0"],
    "code": [
      {"op": "const", "a": 16},
      {"op": "newarray", "a": 0},
      {"op": "callnative", "a": 0, "b": 0},
      {"op": "const", "a": 0},
      {"op": "return"}
    ]
  },
  "natives": {
    "native0": {"minOffset": 0, "maxOffset": 0, "write": true, "forgeTag": true, "damageOps": 3}
  }
}`

func TestTemporalPolicyInCacheKey(t *testing.T) {
	c := NewScreenCache(0)
	raw := []byte(riskyProgramJSON)

	if _, hit, err := c.ScreenBytes(raw); err != nil || hit {
		t.Fatalf("first screen: hit=%t err=%v, want cold miss", hit, err)
	}
	v, hit, err := c.ScreenBytes(raw)
	if err != nil || !hit {
		t.Fatalf("second screen: hit=%t err=%v, want hit", hit, err)
	}
	if len(v.Temporal) == 0 || v.Temporal[0].Class != WindowRisk {
		t.Fatalf("cached verdict lost temporal findings: %+v", v.Temporal)
	}

	// Flipping the admission policy must make every prior entry unreachable:
	// a verdict computed under one policy is never served under another.
	c.SetTemporalPolicy(TemporalForceSync)
	if _, hit, err := c.ScreenBytes(raw); err != nil || hit {
		t.Fatalf("post-flip screen: hit=%t err=%v, want miss", hit, err)
	}
	if _, hit, _ := c.ScreenBytes(raw); !hit {
		t.Fatal("same policy resubmission after flip should hit")
	}

	// Flipping back reaches the original entry again.
	c.SetTemporalPolicy(TemporalReject)
	if _, hit, _ := c.ScreenBytes(raw); !hit {
		t.Fatal("restoring the policy should reach the original entry")
	}
}

func TestParseTemporalPolicy(t *testing.T) {
	for in, want := range map[string]TemporalPolicy{
		"": TemporalReject, "reject": TemporalReject,
		"force-sync": TemporalForceSync, "log": TemporalLog,
	} {
		got, err := ParseTemporalPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseTemporalPolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseTemporalPolicy("strict"); err == nil {
		t.Error("ParseTemporalPolicy should reject unknown values")
	}
}

func TestExposedUnderMatrix(t *testing.T) {
	cases := []struct {
		class WindowClass
		place jni.CheckPlacement
		want  bool
	}{
		{WindowRisk, jni.PlaceTrampolineExit, true},
		{WindowRisk, jni.PlaceAtRelease, false},
		{WindowRisk, jni.PlacePerAccess, false},
		{WindowScanRace, jni.PlaceTrampolineExit, true},
		{WindowScanRace, jni.PlaceAtRelease, false},
		{WindowGuardedCopyBlindSpot, jni.PlaceAtRelease, true},
		{WindowGuardedCopyBlindSpot, jni.PlaceTrampolineExit, false},
		{WindowClean, jni.PlaceTrampolineExit, false},
		{WindowClean, jni.PlaceAtRelease, false},
		{WindowRisk, jni.PlaceNever, false},
	}
	for _, tc := range cases {
		if got := tc.class.ExposedUnder(tc.place); got != tc.want {
			t.Errorf("%s.ExposedUnder(%s) = %t, want %t", tc.class, tc.place, got, tc.want)
		}
	}
}

func TestElisionProofsRequireCleanWindows(t *testing.T) {
	// A temporally exposed site must not appear in the elision mask even when
	// its own accesses are verdict-safe: a clean window is part of the proof
	// obligation.
	p, err := ParseProgram([]byte(`{
	  "method": {
	    "name": "raced",
	    "maxLocals": 1, "maxRefs": 1,
	    "nativeNames": ["native0"],
	    "code": [
	      {"op": "const", "a": 16},
	      {"op": "newarray", "a": 0},
	      {"op": "callnative", "a": 0, "b": 0},
	      {"op": "const", "a": 0},
	      {"op": "return"}
	    ]
	  },
	  "natives": {
	    "native0": {"minOffset": 4, "maxOffset": 4, "write": true, "managedRace": true}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res := p.Analyze("")
	if len(res.Temporal) != 1 || res.Temporal[0].Class != WindowGuardedCopyBlindSpot {
		t.Fatalf("want one blind-spot finding, got %+v", res.Temporal)
	}
	if res.Elision != nil {
		for _, pr := range res.Elision.Proofs() {
			if pr.Op == "callnative" {
				t.Fatalf("exposed call site holds an elision proof: %+v", pr)
			}
		}
	}
	for _, f := range res.Temporal {
		notes := TemporalAnnotations(res)[f.PC]
		if len(notes) == 0 {
			t.Fatalf("no disassembly annotation for exposed pc %d", f.PC)
		}
	}
}
