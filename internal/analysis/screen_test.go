package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mte4jni/internal/interp"
)

// screenProg builds a minimal alloc → call → return program around one
// native summary.
func screenProg(elems int64, sum NativeSummary) *Program {
	return &Program{
		Method: &interp.Method{
			Name: "screen", MaxLocals: 1, MaxRefs: 1,
			NativeNames: []string{"touch"},
			Code: []interp.Inst{
				{Op: interp.OpConst, A: elems},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 0},
				{Op: interp.OpReturn},
			},
		},
		Natives: map[string]NativeSummary{"touch": sum},
	}
}

func TestScreenRejectsSeededBadPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/bad/*.json")
	if err != nil || len(files) < 3 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		p, err := LoadProgram(f)
		if err != nil {
			t.Fatal(err)
		}
		v := Screen(p)
		if !v.Rejected() {
			t.Errorf("%s: not rejected: %+v", f, v)
			continue
		}
		if v.Rule != RuleNativeFault || v.PC < 0 || v.Native == "" || v.Reason == "" {
			t.Errorf("%s: incomplete verdict: %+v", f, v)
		}
		if len(v.Provenance) < 3 {
			t.Errorf("%s: provenance chain too short: %v", f, v.Provenance)
		}
	}
}

func TestScreenAdmitsExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/lint/*.json")
	if err != nil || len(files) < 3 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		p, err := LoadProgram(f)
		if err != nil {
			t.Fatal(err)
		}
		v := Screen(p)
		if v.Rejected() {
			t.Errorf("%s: rejected: %+v", f, v)
		}
		if v.Verdict != VerdictSafe {
			t.Errorf("%s: verdict = %v, want safe", f, v.Verdict)
		}
	}
}

// TestScreenProvenanceChainShape: the chain must start at the allocation,
// end in the dereference, and carry the summary-specific steps in between.
func TestScreenProvenanceChainShape(t *testing.T) {
	cases := []struct {
		name string
		sum  NativeSummary
		want []ProvKind
	}{
		{
			name: "oob-write",
			sum:  NativeSummary{MinOff: 0, MaxOff: 84, Write: true},
			want: []ProvKind{ProvAlloc, ProvHandout, ProvDerive, ProvDeref},
		},
		{
			name: "use-after-release",
			sum:  NativeSummary{MinOff: 0, MaxOff: 7, UseAfterRelease: true},
			want: []ProvKind{ProvAlloc, ProvHandout, ProvDerive, ProvRelease, ProvDeref},
		},
		{
			name: "forged-tag",
			sum:  NativeSummary{MinOff: 0, MaxOff: 15, ForgeTag: true},
			want: []ProvKind{ProvAlloc, ProvHandout, ProvDerive, ProvForge, ProvDeref},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Screen(screenProg(18, tc.sum))
			if !v.Rejected() {
				t.Fatalf("not rejected: %+v", v)
			}
			var kinds []ProvKind
			for _, s := range v.Provenance {
				kinds = append(kinds, s.Kind)
			}
			if fmt.Sprint(kinds) != fmt.Sprint(tc.want) {
				t.Fatalf("chain = %v, want %v", kinds, tc.want)
			}
			if v.Provenance[0].PC != 1 {
				t.Errorf("alloc step pc = %d, want 1 (the newarray)", v.Provenance[0].PC)
			}
			last := v.Provenance[len(v.Provenance)-1]
			if last.PC != 2 || last.Native != "touch" {
				t.Errorf("deref step = %+v, want pc 2 native touch", last)
			}
		})
	}
}

// TestScreenInterproceduralHandouts: when the same reference is handed to an
// earlier (safe) native before the faulting one, the chain records the prior
// hand-out — the cross-summary part of the provenance domain.
func TestScreenInterproceduralHandouts(t *testing.T) {
	p := &Program{
		Method: &interp.Method{
			Name: "multi", MaxLocals: 1, MaxRefs: 1,
			NativeNames: []string{"reader", "stale"},
			Code: []interp.Inst{
				{Op: interp.OpConst, A: 18},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0}, // safe read
				{Op: interp.OpCallNative, A: 1, B: 0}, // use-after-release
				{Op: interp.OpConst, A: 0},
				{Op: interp.OpReturn},
			},
		},
		Natives: map[string]NativeSummary{
			"reader": {MinOff: 0, MaxOff: 7},
			"stale":  {MinOff: 0, MaxOff: 7, UseAfterRelease: true},
		},
	}
	v := Screen(p)
	if !v.Rejected() {
		t.Fatalf("not rejected: %+v", v)
	}
	var priors int
	for _, s := range v.Provenance {
		if s.Kind == ProvHandout && s.Native == "reader" && s.PC == 2 {
			priors++
		}
	}
	if priors != 1 {
		t.Fatalf("prior hand-out to reader not in chain: %v", v.Provenance)
	}
	if v.PC != 3 || v.Native != "stale" {
		t.Fatalf("fault site = pc %d native %q, want pc 3 stale", v.PC, v.Native)
	}
}

// TestScreenMergedAllocSite: two newarray sites merging into one slot lose
// the unique allocation pc; the chain must degrade gracefully, not lie.
func TestScreenMergedAllocSite(t *testing.T) {
	p := &Program{
		Method: &interp.Method{
			Name: "merged", MaxLocals: 1, MaxRefs: 1,
			NativeNames: []string{"stale"},
			Code: []interp.Inst{
				{Op: interp.OpLoad, A: 0},
				{Op: interp.OpJmpIfZero, A: 4},
				{Op: interp.OpConst, A: 18},
				{Op: interp.OpJmp, A: 5},
				{Op: interp.OpConst, A: 18},
				{Op: interp.OpNewArray, A: 0}, // single site: allocPC survives
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 0},
				{Op: interp.OpReturn},
			},
		},
		Natives: map[string]NativeSummary{"stale": {MinOff: 0, MaxOff: 7, UseAfterRelease: true}},
	}
	v := Screen(p)
	if !v.Rejected() {
		t.Fatalf("not rejected: %+v", v)
	}
	if v.Provenance[0].Kind != ProvAlloc || v.Provenance[0].PC != 5 {
		t.Fatalf("alloc step = %+v, want pc 5", v.Provenance[0])
	}

	// Now genuinely merge two allocation sites.
	p.Method.Code = []interp.Inst{
		{Op: interp.OpLoad, A: 0},
		{Op: interp.OpJmpIfZero, A: 5},
		{Op: interp.OpConst, A: 18},
		{Op: interp.OpNewArray, A: 0},
		{Op: interp.OpJmp, A: 7},
		{Op: interp.OpConst, A: 18},
		{Op: interp.OpNewArray, A: 0},
		{Op: interp.OpCallNative, A: 0, B: 0},
		{Op: interp.OpConst, A: 0},
		{Op: interp.OpReturn},
	}
	v = Screen(p)
	if !v.Rejected() {
		t.Fatalf("merged: not rejected: %+v", v)
	}
	if v.Provenance[0].Kind != ProvAlloc || v.Provenance[0].PC != -1 {
		t.Fatalf("merged alloc step = %+v, want pc -1", v.Provenance[0])
	}
}

func TestScreenVerdictJSONRoundTrip(t *testing.T) {
	raw, err := os.ReadFile("testdata/bad/use_after_release.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	v := Screen(p)
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"verdict":"provably-faulting"`) {
		t.Fatalf("verdict not marshalled by name: %s", data)
	}
	var back ScreenVerdict
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdict != VerdictFault || back.PC != v.PC || len(back.Provenance) != len(v.Provenance) {
		t.Fatalf("round trip mangled verdict: %+v vs %+v", back, v)
	}
}

func TestScreenCacheHitAndLRU(t *testing.T) {
	c := NewScreenCache(2)
	bad, err := os.ReadFile("testdata/bad/oob_write.json")
	if err != nil {
		t.Fatal(err)
	}
	v1, hit, err := c.ScreenBytes(bad)
	if err != nil || hit {
		t.Fatalf("first screen: hit=%v err=%v", hit, err)
	}
	if !v1.Rejected() || v1.Cached {
		t.Fatalf("first verdict: %+v", v1)
	}
	v2, hit, err := c.ScreenBytes(bad)
	if err != nil || !hit {
		t.Fatalf("second screen: hit=%v err=%v", hit, err)
	}
	if !v2.Rejected() || !v2.Cached {
		t.Fatalf("cached verdict: %+v", v2)
	}
	if v1.Cached {
		t.Fatal("cache hit mutated the stored verdict")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}

	// Fill past capacity: the oldest key must fall out.
	for i := 0; i < 2; i++ {
		p := screenProg(int64(8+i), NativeSummary{MinOff: 0, MaxOff: 7})
		raw, err := MarshalProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, hit, err := c.ScreenBytes(raw); err != nil || hit {
			t.Fatalf("fill %d: hit=%v err=%v", i, hit, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, hit, err := c.ScreenBytes(bad); err != nil || hit {
		t.Fatalf("evicted key still hit=%v err=%v", hit, err)
	}
}

func TestScreenCacheParseErrorNotCached(t *testing.T) {
	c := NewScreenCache(0)
	if _, _, err := c.ScreenBytes([]byte(`{"method":`)); err == nil {
		t.Fatal("no error for malformed program")
	}
	if c.Len() != 0 {
		t.Fatalf("parse failure cached: len=%d", c.Len())
	}
}

// TestScreenCacheConcurrentChurn drives a deliberately undersized cache with
// many distinct programs from many goroutines at once, so hits, misses, and
// evictions interleave freely (the -race run is the point). Every fetch —
// cold, cached, or re-screened after eviction — must return a structurally
// complete verdict with its provenance chain intact.
func TestScreenCacheConcurrentChurn(t *testing.T) {
	const progs, workers, rounds = 24, 8, 40
	c := NewScreenCache(4)
	raws := make([][]byte, progs)
	for i := range raws {
		// Distinct lengths give distinct bytes, hence distinct cache keys;
		// every one is a provable OOB write (one granule past the payload,
		// inside the neighbour-exclusion window) carrying a derive step.
		elems := int64(8 + i)
		raw, err := MarshalProgram(screenProg(elems, NativeSummary{MinOff: 0, MaxOff: elems*4 + 12, Write: true}))
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				v, _, err := c.ScreenBytes(raws[(w*rounds+j)%progs])
				if err != nil || !v.Rejected() {
					t.Errorf("worker %d: %+v err=%v", w, v, err)
					return
				}
				if len(v.Provenance) < 3 || v.Provenance[len(v.Provenance)-1].Kind != ProvDeref {
					t.Errorf("worker %d: provenance chain damaged under churn: %v", w, v.Provenance)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache grew past its bound under churn: len=%d", c.Len())
	}
	if hits, misses := c.Stats(); hits+misses != workers*rounds {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, workers*rounds)
	}
}

// TestScreenCacheCopyOnHitIsolation: a cache hit hands out a copy, so a
// caller scribbling on its verdict cannot poison later hits — while the
// compiled Elision (immutable by contract) is shared across copies rather
// than recompiled.
func TestScreenCacheCopyOnHitIsolation(t *testing.T) {
	c := NewScreenCache(0)
	raw, err := MarshalProgram(screenProg(16, NativeSummary{MinOff: 0, MaxOff: 63}))
	if err != nil {
		t.Fatal(err)
	}
	v1, hit, err := c.ScreenBytes(raw)
	if err != nil || hit || v1.Verdict != VerdictSafe || v1.Elision == nil {
		t.Fatalf("cold screen: hit=%v err=%v %+v", hit, err, v1)
	}
	v2, hit, err := c.ScreenBytes(raw)
	if err != nil || !hit {
		t.Fatalf("warm screen: hit=%v err=%v", hit, err)
	}
	if v2.Elision != v1.Elision {
		t.Fatal("cache hit recompiled the elision instead of sharing the immutable proofs")
	}
	// Scribble on the hit's copy; the cache's stored verdict must not move.
	v2.Verdict, v2.Reason, v2.PC = VerdictFault, "scribbled", 99
	v3, hit, err := c.ScreenBytes(raw)
	if err != nil || !hit {
		t.Fatalf("third screen: hit=%v err=%v", hit, err)
	}
	if v3.Verdict != VerdictSafe || v3.Reason != v1.Reason || v3.PC != v1.PC {
		t.Fatalf("caller mutation leaked into the cache: %+v", v3)
	}
}

// TestScreenProvenanceDerivedOffsets: the derive step must carry the exact
// byte-offset window the native's pointer arithmetic reaches from the
// handed-out base, and a zero-offset dereference (no arithmetic at all)
// must omit the derive step entirely.
func TestScreenProvenanceDerivedOffsets(t *testing.T) {
	v := Screen(screenProg(18, NativeSummary{MinOff: 4, MaxOff: 84, Write: true}))
	if !v.Rejected() {
		t.Fatalf("not rejected: %+v", v)
	}
	var derive *ProvStep
	for i := range v.Provenance {
		if v.Provenance[i].Kind == ProvDerive {
			derive = &v.Provenance[i]
		}
	}
	if derive == nil {
		t.Fatalf("no derive step in %v", v.Provenance)
	}
	if derive.Native != "touch" || derive.PC != 2 {
		t.Errorf("derive step anchored at %+v, want pc 2 native touch", derive)
	}
	if !strings.Contains(derive.Detail, "[4,84]") {
		t.Errorf("derive step does not carry the derived offset window: %q", derive.Detail)
	}

	v0 := Screen(screenProg(2, NativeSummary{MinOff: 0, MaxOff: 0, ForgeTag: true}))
	if !v0.Rejected() {
		t.Fatalf("forged zero-offset deref not rejected: %+v", v0)
	}
	for _, s := range v0.Provenance {
		if s.Kind == ProvDerive {
			t.Fatalf("zero-offset dereference grew a derive step: %v", v0.Provenance)
		}
	}
}

func TestScreenCacheConcurrent(t *testing.T) {
	c := NewScreenCache(8)
	bad, err := os.ReadFile("testdata/bad/forged_tag.json")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				v, _, err := c.ScreenBytes(bad)
				if err != nil || !v.Rejected() {
					t.Errorf("screen: %+v err=%v", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 16*50 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 16*50)
	}
}
