package analysis

import (
	"fmt"
	"math"
)

// iv is a closed integer interval [Lo, Hi], the abstract value of the
// analyzer's numeric domain. The full interval stands for "any int64"; an
// interval with Lo == Hi is an exact constant. Arithmetic saturates toward
// ±inf on overflow, which only ever widens the interval — the sound
// direction.
type iv struct {
	Lo, Hi int64
}

// full is the top element: any 64-bit value.
func full() iv { return iv{math.MinInt64, math.MaxInt64} }

// exact is the singleton interval {v}.
func exact(v int64) iv { return iv{v, v} }

// isExact reports whether the interval holds a single value.
func (a iv) isExact() bool { return a.Lo == a.Hi }

// isFull reports whether the interval is top.
func (a iv) isFull() bool { return a.Lo == math.MinInt64 && a.Hi == math.MaxInt64 }

// contains reports whether v lies in the interval.
func (a iv) contains(v int64) bool { return a.Lo <= v && v <= a.Hi }

// String renders the interval the way the diagnostics print it.
func (a iv) String() string {
	if a.isExact() {
		return fmt.Sprintf("%d", a.Lo)
	}
	if a.isFull() {
		return "⊤"
	}
	lo, hi := "-∞", "+∞"
	if a.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", a.Lo)
	}
	if a.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", a.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

// joinIv is the interval hull, the lattice join.
func joinIv(a, b iv) iv {
	return iv{min64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}
}

// widenIv jumps any still-moving bound straight to ±inf. Applied after a
// program point has been revisited enough times, it forces the fixpoint to
// terminate on loops whose bounds the domain cannot close.
func widenIv(old, next iv) iv {
	w := next
	if next.Lo < old.Lo {
		w.Lo = math.MinInt64
	}
	if next.Hi > old.Hi {
		w.Hi = math.MaxInt64
	}
	return w
}

// clampMin raises the lower bound to at least lo.
func (a iv) clampMin(lo int64) iv {
	return iv{max64(a.Lo, lo), max64(a.Hi, lo)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation at the int64 limits.
func satAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// satNeg negates with MinInt64 saturating to MaxInt64.
func satNeg(a int64) int64 {
	if a == math.MinInt64 {
		return math.MaxInt64
	}
	return -a
}

// satMul multiplies with saturation at the int64 limits.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) || p/b != a {
		if (a < 0) != (b < 0) {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	return p
}

// addIv, subIv, mulIv are the sound interval lifts of +, -, *.
func addIv(a, b iv) iv { return iv{satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)} }

func subIv(a, b iv) iv { return iv{satAdd(a.Lo, satNeg(b.Hi)), satAdd(a.Hi, satNeg(b.Lo))} }

func mulIv(a, b iv) iv {
	c := [4]int64{satMul(a.Lo, b.Lo), satMul(a.Lo, b.Hi), satMul(a.Hi, b.Lo), satMul(a.Hi, b.Hi)}
	out := iv{c[0], c[0]}
	for _, v := range c[1:] {
		out.Lo, out.Hi = min64(out.Lo, v), max64(out.Hi, v)
	}
	return out
}

// divIv lifts / assuming the divisor is nonzero (the caller handles the
// divisor-contains-zero case, which throws rather than computes).
func divIv(a, b iv) iv {
	if b.contains(0) || a.isFull() {
		return full()
	}
	div := func(x, y int64) int64 {
		if x == math.MinInt64 && y == -1 {
			return math.MaxInt64
		}
		return x / y
	}
	c := [4]int64{div(a.Lo, b.Lo), div(a.Lo, b.Hi), div(a.Hi, b.Lo), div(a.Hi, b.Hi)}
	out := iv{c[0], c[0]}
	for _, v := range c[1:] {
		out.Lo, out.Hi = min64(out.Lo, v), max64(out.Hi, v)
	}
	return out
}

// remIv lifts % assuming a nonzero divisor: the result magnitude is below
// the divisor magnitude, and its sign follows the dividend (Go semantics).
func remIv(a, b iv) iv {
	if b.contains(0) {
		return full()
	}
	mag := max64(satNeg(b.Lo), b.Hi) // both candidates ≥ 1 here
	if mag == math.MaxInt64 {
		return full()
	}
	out := iv{satNeg(mag - 1), mag - 1}
	if a.Lo >= 0 {
		out.Lo = 0
	}
	if a.Hi <= 0 {
		out.Hi = 0
	}
	return out
}
