package analysis

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Admission screening: the serving layer's pre-execution gate. Screen runs
// the abstract interpreter over an inline program and condenses the result
// into a ScreenVerdict — provably-faulting programs carry the rule, pc and
// pointer-provenance chain that justify rejecting them before they ever
// touch a pooled session. ScreenCache memoizes verdicts by program hash so
// resubmissions of the same (byte-identical) program cost one map lookup.

// ScreenVerdict is the static admission decision for one program, and the
// body of the server's 422 rejection.
type ScreenVerdict struct {
	// Verdict is the whole-program claim.
	Verdict Verdict `json:"verdict"`
	// Rule is the deciding rule for a rejection (empty for safe/unknown
	// verdicts — managed throws and aborts are not faults and never reject).
	Rule string `json:"rule,omitempty"`
	// PC is the faulting instruction index (-1 when not anchored).
	PC int `json:"pc"`
	// Native names the faulting native method.
	Native string `json:"native,omitempty"`
	// Reason is the one-clause justification.
	Reason string `json:"reason"`
	// Provenance traces the faulting pointer from allocation to dereference.
	Provenance ProvChain `json:"provenance,omitempty"`
	// Diagnostics are the analyzer's rendered findings.
	Diagnostics []string `json:"diagnostics,omitempty"`
	// Cached marks a verdict served from the screen cache.
	Cached bool `json:"cached,omitempty"`
	// Temporal lists the call sites the temporal effect domain classified
	// as exposed, with their alloc → acquire → interfering-write →
	// late-check chains; the server's -temporal-policy decides what to do
	// with them per requested scheme.
	Temporal []TemporalFinding `json:"temporal,omitempty"`
	// Elision is the compiled proof-carrying elision mask, attached only to
	// safe verdicts — the execution side binds it to skip proven guards.
	// Never serialized: proofs ride the admission path, not the wire. The
	// Elision is immutable after compilation, so cache copies share it.
	Elision *Elision `json:"-"`
}

// Rejected reports whether the verdict rejects the program at admission.
func (v *ScreenVerdict) Rejected() bool { return v.Verdict == VerdictFault }

// Screen statically screens a program for admission. The verdict is
// VerdictFault only when the analyzer proves every execution raises an MTE
// tag-check fault (see analyzeMethod); anything weaker — including programs
// that merely *may* fault — is admitted and left to the runtime schemes.
func Screen(p *Program) *ScreenVerdict {
	res := p.Analyze("")
	v := &ScreenVerdict{Verdict: res.Verdict, PC: -1, Temporal: res.Temporal}
	for _, d := range res.Diags {
		if d.Sev != SevInfo {
			v.Diagnostics = append(v.Diagnostics, d.String())
		}
	}
	switch res.Verdict {
	case VerdictFault:
		v.Rule = RuleNativeFault
		v.Reason = "every execution raises an MTE tag-check fault"
		if res.FaultSite != nil {
			v.PC = res.FaultSite.PC
			v.Native = res.FaultSite.Name
			v.Reason = res.FaultSite.Reason
		}
		v.Provenance = res.Provenance
	case VerdictSafe:
		v.Reason = "no execution can raise an MTE tag-check fault"
		v.Elision = res.Elision
	default:
		v.Reason = unknownReason(res)
	}
	return v
}

// unknownReason picks the most useful explanation for an unknown verdict:
// the first non-safe call site, else the first warning, else a generic note.
func unknownReason(res *MethodResult) string {
	for _, s := range res.CallSites {
		if s.Verdict != VerdictSafe {
			return s.Reason
		}
	}
	for _, d := range res.Diags {
		if d.Sev == SevWarning {
			return d.Message
		}
	}
	return "analyzer proves nothing either way"
}

// ProgramKey hashes a program's raw JSON into the screen-cache key. Keying
// on bytes (not the parsed form) keeps the cache sound: any semantic
// difference implies a byte difference.
func ProgramKey(raw []byte) [sha256.Size]byte { return sha256.Sum256(raw) }

// DefaultScreenCacheSize bounds the verdict cache when NewScreenCache is
// given zero.
const DefaultScreenCacheSize = 1024

// ScreenCache is a concurrency-safe LRU of screen verdicts keyed by program
// hash. The key also covers the temporal admission policy the cache serves
// under (SetTemporalPolicy): a verdict computed under one policy is never
// served under another, even across a runtime policy flip.
type ScreenCache struct {
	mu      sync.Mutex
	max     int
	policy  TemporalPolicy
	order   *list.List // front = most recently used
	entries map[[sha256.Size]byte]*list.Element
	hits    uint64
	misses  uint64
}

type screenEntry struct {
	key     [sha256.Size]byte
	verdict *ScreenVerdict
}

// NewScreenCache creates a cache holding at most max verdicts
// (DefaultScreenCacheSize when max <= 0).
func NewScreenCache(max int) *ScreenCache {
	if max <= 0 {
		max = DefaultScreenCacheSize
	}
	return &ScreenCache{
		max:     max,
		policy:  TemporalReject,
		order:   list.New(),
		entries: make(map[[sha256.Size]byte]*list.Element),
	}
}

// SetTemporalPolicy records the admission policy this cache's verdicts are
// served under. The policy is part of the cache key, so flipping it makes
// every earlier entry unreachable rather than silently reused.
func (c *ScreenCache) SetTemporalPolicy(p TemporalPolicy) {
	c.mu.Lock()
	c.policy = p
	c.mu.Unlock()
}

// policyKeyTags pre-renders each known policy's cache-key suffix so the hot
// lookup path feeds the hash without converting strings per request.
var policyKeyTags = map[TemporalPolicy][]byte{
	TemporalReject:    []byte("\x00temporal-policy:" + TemporalReject),
	TemporalForceSync: []byte("\x00temporal-policy:" + TemporalForceSync),
	TemporalLog:       []byte("\x00temporal-policy:" + TemporalLog),
}

// key hashes the raw program bytes together with the temporal policy tag.
func (c *ScreenCache) key(raw []byte, policy TemporalPolicy) [sha256.Size]byte {
	h := sha256.New()
	h.Write(raw)
	if tag, ok := policyKeyTags[policy]; ok {
		h.Write(tag)
	} else {
		h.Write([]byte("\x00temporal-policy:"))
		h.Write([]byte(policy))
	}
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// ScreenBytes screens a raw JSON program, serving the verdict from cache
// when the same bytes were screened before. The second result reports a
// cache hit (the returned verdict then has Cached set). Parse failures are
// returned as errors and never cached.
func (c *ScreenCache) ScreenBytes(raw []byte) (*ScreenVerdict, bool, error) {
	c.mu.Lock()
	key := c.key(raw, c.policy)
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		v := *el.Value.(*screenEntry).verdict
		c.mu.Unlock()
		v.Cached = true
		return &v, true, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err := ParseProgram(raw)
	if err != nil {
		return nil, false, err
	}
	v := Screen(p)

	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = c.order.PushFront(&screenEntry{key: key, verdict: v})
		if c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*screenEntry).key)
		}
	}
	c.mu.Unlock()
	return v, false, nil
}

// Len returns the number of cached verdicts.
func (c *ScreenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the hit/miss counters.
func (c *ScreenCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
