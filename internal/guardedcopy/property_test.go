package guardedcopy

import (
	"testing"
	"testing/quick"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

// TestPropertyRoundTripPreservesPayload: for any payload content and any
// single in-bounds mutation through the copy, the original object after a
// clean release equals the mutated payload — guarded copy is semantically
// transparent for correct native code.
func TestPropertyRoundTripPreservesPayload(t *testing.T) {
	v, err := vm.New(vm.Options{HeapSize: 16 << 20, NativeHeapSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("t")
	c := New(v)

	f := func(payload []byte, mutIdx uint8, mutVal byte) bool {
		if len(payload) == 0 || len(payload) > 512 {
			return true
		}
		arr, err := v.NewArray(vm.KindByte, len(payload))
		if err != nil {
			return true // heap pressure, not a property failure
		}
		raw, _ := arr.Bytes()
		copy(raw, payload)

		p, err := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if err != nil {
			return false
		}
		buf, err := v.NativeHeap.Mapping().Bytes(p.Addr(), len(payload))
		if err != nil {
			return false
		}
		idx := int(mutIdx) % len(payload)
		buf[idx] = mutVal
		if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
			return false
		}
		after, _ := arr.Bytes()
		for i := range payload {
			want := payload[i]
			if i == idx {
				want = mutVal
			}
			if after[i] != want {
				return false
			}
		}
		return v.NativeHeap.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAnyNonCanaryRedZoneWriteDetected: any write into either red
// zone whose value differs from the canary at that offset is detected at
// release, with the correct payload-relative offset.
func TestPropertyAnyNonCanaryRedZoneWriteDetected(t *testing.T) {
	v, err := vm.New(vm.Options{HeapSize: 16 << 20, NativeHeapSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("t")
	c := New(v)
	arr, _ := v.NewArray(vm.KindByte, 40)

	f := func(zoneIdx uint8, val byte, front bool) bool {
		idx := int(zoneIdx) % RedZoneSize
		p, err := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if err != nil {
			return false
		}
		var at int // payload-relative offset of the write
		zoneBase := p.Addr() + 40
		if front {
			at = -RedZoneSize + idx
			zoneBase = p.Addr() - RedZoneSize
		} else {
			at = 40 + idx
		}
		buf, err := v.NativeHeap.Mapping().Bytes(zoneBase, RedZoneSize)
		if err != nil {
			return false
		}
		canary := CanaryAt(idx)
		buf[idx] = val
		relErr := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.JNIAbort)
		if val == canary {
			return relErr == nil
		}
		viol, ok := relErr.(*Violation)
		return ok && viol.Offset == at && viol.Got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
