package guardedcopy

import (
	"errors"
	"sync"
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

func setup(t *testing.T) (*Checker, *vm.Thread, *vm.VM) {
	t.Helper()
	v, err := vm.New(vm.Options{HeapSize: 8 << 20, NativeHeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("native-0")
	if err != nil {
		t.Fatal(err)
	}
	return New(v), th, v
}

func TestAcquireCopiesAndReleaseWritesBack(t *testing.T) {
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(16)
	arr.SetInt(7, 1234)

	p, err := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr() == arr.DataBegin() {
		t.Fatal("guarded copy returned the original address")
	}
	if c.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}

	buf, err := v.NativeHeap.Mapping().Bytes(p.Addr(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if buf[28] != 0xD2 { // 1234 = 0x4D2 little-endian at element 7
		t.Fatalf("copy content wrong: %x", buf[28])
	}
	buf[0] = 9 // modify through the copy
	if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
	if got, _ := arr.GetInt(0); got != 9 {
		t.Fatalf("write-back failed: %d", got)
	}
	if c.Outstanding() != 0 || v.NativeHeap.Live() != 0 {
		t.Fatal("buffer leaked")
	}
	st := c.Stats()
	if st.Copies != 1 || st.BytesCopied != 128 || st.Violations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverflowDetectedWithOffset(t *testing.T) {
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(18)
	p, _ := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())

	// Corrupt 4 bytes just past the payload (index 18 and 21).
	zone, _ := v.NativeHeap.Mapping().Bytes(p.Addr()+72, RedZoneSize)
	zone[12] ^= 0xFF // byte offset 84 relative to payload start

	err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault)
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("expected violation, got %v", err)
	}
	if viol.Offset != 84 {
		t.Fatalf("offset = %d, want 84", viol.Offset)
	}
	if viol.Expected == viol.Got {
		t.Fatal("expected/got bytes equal")
	}
	if viol.Thread != "native-0" {
		t.Fatalf("thread = %q", viol.Thread)
	}
	if c.Stats().Violations != 1 {
		t.Fatal("violation not counted")
	}
	// Corrupted releases must not write back over the original.
	if got, _ := arr.GetInt(0); got != 0 {
		t.Fatalf("corrupted buffer written back: %d", got)
	}
}

func TestUnderflowDetected(t *testing.T) {
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(4)
	p, _ := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
	zone, _ := v.NativeHeap.Mapping().Bytes(p.Addr()-RedZoneSize, RedZoneSize)
	zone[RedZoneSize-1] = 0
	err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault)
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("expected violation, got %v", err)
	}
	if viol.Offset != -1 {
		t.Fatalf("underflow offset = %d, want -1", viol.Offset)
	}
}

func TestFarOverflowMissed(t *testing.T) {
	// Limitation 2 (§2.3): a write past both red zones goes unnoticed.
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(4)
	p, _ := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
	// Write 100 bytes past the payload: beyond the 32-byte red zone.
	far, err := v.NativeHeap.Mapping().Bytes(p.Addr()+16+100, 4)
	if err == nil {
		far[0] = 0xFF
	}
	if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
		t.Fatalf("far overflow was detected, but guarded copy cannot do that: %v", err)
	}
}

func TestJNICommitKeepsBuffer(t *testing.T) {
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(4)
	p, _ := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
	buf, _ := v.NativeHeap.Mapping().Bytes(p.Addr(), 4)
	buf[0] = 42
	if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.JNICommit); err != nil {
		t.Fatal(err)
	}
	if got, _ := arr.GetInt(0); got != 42 {
		t.Fatal("JNI_COMMIT must write back")
	}
	if c.Outstanding() != 1 {
		t.Fatal("JNI_COMMIT must keep the buffer")
	}
	buf[0] = 43
	if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
	if got, _ := arr.GetInt(0); got != 43 {
		t.Fatal("final release must write back again")
	}
	if c.Outstanding() != 0 {
		t.Fatal("final release must free")
	}
}

func TestReleaseUnknownPointer(t *testing.T) {
	c, th, v := setup(t)
	arr, _ := v.NewIntArray(4)
	if err := c.Release(th, arr, 0xDEAD, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err == nil {
		t.Fatal("release of unknown pointer accepted")
	}
}

func TestConcurrentAcquireReleaseSameArray(t *testing.T) {
	c, _, v := setup(t)
	arr, _ := v.NewIntArray(256)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th, err := v.AttachThread("")
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 100; j++ {
				p, err := c.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Release(th, arr, p, arr.DataBegin(), arr.DataEnd(), jni.JNIAbort); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Outstanding() != 0 || v.NativeHeap.Live() != 0 {
		t.Fatal("buffers leaked under concurrency")
	}
	if c.Stats().Copies != 1600 {
		t.Fatalf("copies = %d", c.Stats().Copies)
	}
}

func TestCanaryAt(t *testing.T) {
	if CanaryAt(0) != 'J' || CanaryAt(19) != 'J' || CanaryAt(1) != 'N' {
		t.Fatal("canary pattern indexing wrong")
	}
}
