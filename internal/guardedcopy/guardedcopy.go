// Package guardedcopy implements ART's guarded copy mechanism (paper §2.3),
// the baseline MTE4JNI is evaluated against.
//
// When native code requests the address of a heap object, the object is
// copied into a native buffer flanked by two red zones prefilled with a
// repeating canary pattern. Native code works on the copy. At release the
// red zones are verified: any canary byte that changed proves an
// out-of-bounds *write*; the copy is then written back over the original
// object.
//
// The paper's four limitations fall out of this implementation rather than
// being hard-coded:
//
//  1. out-of-bounds reads are never detected (reads don't change canaries);
//  2. writes that jump past both red zones are missed;
//  3. the copy + synchronization cost dominates the JNI interfaces
//     (Figures 5 and 6);
//  4. detection happens at the Release call, far from the faulting store
//     (Figure 4a).
package guardedcopy

import (
	"fmt"
	"hash/adler32"
	"sync"
	"sync/atomic"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// RedZoneSize is the length in bytes of each red zone. ART uses a canary
// string pattern around the copy; 32 bytes per side keeps two granules of
// slack like the debug builds do.
const RedZoneSize = 32

// canaryPattern is the repeating fill, byte-for-byte the string ART uses.
const canaryPattern = "JNI BUFFER RED ZONE"

// Violation reports a corrupted red zone discovered at release time. It is
// the guarded-copy counterpart of an MTE fault record: note it can only
// ever describe a write, and only with release-site context.
type Violation struct {
	// Object describes the released object.
	Object string
	// Iface is the Release interface that discovered the corruption.
	Iface string
	// Offset is the byte offset of the first corrupted canary byte relative
	// to the start of the payload; negative offsets are underflows.
	Offset int
	// Expected and Got are the canary byte values at Offset.
	Expected, Got byte
	// Backtrace is the releasing thread's stack — the abort site, not the
	// faulting store (Figure 4a).
	Backtrace []string
	// Thread is the name of the releasing thread.
	Thread string
}

// Error implements the error interface, phrased like ART's abort message.
func (v *Violation) Error() string {
	return fmt.Sprintf("JNI: failed in %s: use of released buffer? memory corruption at offset %d of %s (expected 0x%02x, got 0x%02x); aborting",
		v.Iface, v.Offset, v.Object, v.Expected, v.Got)
}

// Stats counts checker activity for the benchmark harness.
type Stats struct {
	// Copies counts acquire-time copies; BytesCopied sums payload bytes
	// moved in both directions.
	Copies, BytesCopied int64
	// Violations counts corrupted red zones found at release.
	Violations int64
	// ModifiedReleases counts releases whose payload checksum changed —
	// the signal ART uses for its modified-buffer diagnostics.
	ModifiedReleases int64
}

// Checker is the guarded-copy protection scheme. One Checker serves all
// threads of a VM; its ledger lock models the synchronization CheckJNI
// imposes on every guarded handout.
type Checker struct {
	vm *vm.VM

	mu   sync.Mutex
	recs map[mte.Ptr]*record

	copies           atomic.Int64
	bytesCopied      atomic.Int64
	violations       atomic.Int64
	modifiedReleases atomic.Int64
}

// record tracks one outstanding guarded buffer.
type record struct {
	obj     *vm.Object
	bufAddr mte.Addr // base of the native allocation (first red zone)
	size    int      // payload size
	// sum is the Adler-32 checksum of the payload at acquire time. ART's
	// GuardedCopy records the same checksum and re-computes it at release
	// to tell whether native code modified the buffer (it drives the
	// "buffer modified without JNI_COMMIT" diagnostics); it is also a large
	// part of why the mechanism costs what it costs.
	sum uint32
}

// New creates a guarded-copy checker for v.
func New(v *vm.VM) *Checker {
	return &Checker{vm: v, recs: make(map[mte.Ptr]*record)}
}

// Name implements jni.Checker.
func (c *Checker) Name() string { return "guarded-copy" }

// fillCanary writes the repeating canary pattern over dst.
func fillCanary(dst []byte) {
	for i := range dst {
		dst[i] = canaryPattern[i%len(canaryPattern)]
	}
}

// Acquire implements jni.Checker: allocate red zone + copy + red zone in
// the native heap, fill, copy the payload, and hand out a pointer to the
// copy.
func (c *Checker) Acquire(t *vm.Thread, obj *vm.Object, begin, end mte.Addr) (mte.Ptr, error) {
	size := int(end - begin)
	bufAddr, err := c.vm.NativeHeap.Alloc(uint64(2*RedZoneSize + size))
	if err != nil {
		return 0, fmt.Errorf("guardedcopy: allocating guarded buffer: %w", err)
	}
	buf, err := c.vm.NativeHeap.Mapping().Bytes(bufAddr, 2*RedZoneSize+size)
	if err != nil {
		return 0, err
	}
	fillCanary(buf[:RedZoneSize])
	fillCanary(buf[RedZoneSize+size:])

	// Copy the original payload into the middle of the buffer.
	src, err := c.vm.JavaHeap.Mapping().Bytes(begin, size)
	if err != nil {
		return 0, fmt.Errorf("guardedcopy: reading original payload: %w", err)
	}
	copy(buf[RedZoneSize:RedZoneSize+size], src)

	p := mte.MakePtr(bufAddr+RedZoneSize, 0)
	c.mu.Lock()
	c.recs[p] = &record{obj: obj, bufAddr: bufAddr, size: size, sum: adler32.Checksum(src)}
	c.mu.Unlock()

	c.copies.Add(1)
	c.bytesCopied.Add(int64(size))
	return p, nil
}

// verifyRedZone scans zone for the first corrupted byte; base is the
// payload-relative offset of zone[0].
func verifyRedZone(zone []byte, base int) (int, byte, byte, bool) {
	for i := range zone {
		want := canaryPattern[i%len(canaryPattern)]
		if zone[i] != want {
			return base + i, want, zone[i], false
		}
	}
	return 0, 0, 0, true
}

// Release implements jni.Checker: verify both red zones, copy the payload
// back over the original object (unless JNI_ABORT), and free the buffer.
// A corrupted canary is reported as *Violation — detected here, at release,
// which is the locality limitation Figure 4a shows.
func (c *Checker) Release(t *vm.Thread, obj *vm.Object, p mte.Ptr, begin, end mte.Addr, mode jni.ReleaseMode) error {
	c.mu.Lock()
	rec, ok := c.recs[p]
	if ok {
		delete(c.recs, p)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("guardedcopy: release of unknown pointer %v", p)
	}

	buf, err := c.vm.NativeHeap.Mapping().Bytes(rec.bufAddr, 2*RedZoneSize+rec.size)
	if err != nil {
		return err
	}

	var violation *Violation
	if off, want, got, ok := verifyRedZone(buf[:RedZoneSize], -RedZoneSize); !ok {
		violation = c.newViolation(t, obj, off, want, got)
	} else if off, want, got, ok := verifyRedZone(buf[RedZoneSize+rec.size:], rec.size); !ok {
		violation = c.newViolation(t, obj, off, want, got)
	}

	// Re-checksum the payload, as ART does, to learn whether native code
	// modified the copy.
	if adler32.Checksum(buf[RedZoneSize:RedZoneSize+rec.size]) != rec.sum {
		c.modifiedReleases.Add(1)
	}

	// Write the (possibly modified) copy back over the original, as the
	// real mechanism does when the canaries check out; on JNI_ABORT changes
	// are discarded.
	if violation == nil && mode != jni.JNIAbort {
		dst, err := c.vm.JavaHeap.Mapping().Bytes(begin, rec.size)
		if err != nil {
			return err
		}
		copy(dst, buf[RedZoneSize:RedZoneSize+rec.size])
		c.bytesCopied.Add(int64(rec.size))
	}

	if mode != jni.JNICommit {
		if err := c.vm.NativeHeap.Free(rec.bufAddr); err != nil {
			return err
		}
	} else {
		// JNI_COMMIT keeps the buffer alive; reinstate the ledger entry.
		c.mu.Lock()
		c.recs[p] = rec
		c.mu.Unlock()
	}

	if violation != nil {
		c.violations.Add(1)
		return violation
	}
	return nil
}

// newViolation builds the abort-site report.
func (c *Checker) newViolation(t *vm.Thread, obj *vm.Object, off int, want, got byte) *Violation {
	bt := append([]string{
		"abort+180 (libc.so)",
		"art::Runtime::Abort(char const*)+1536 (libart.so)",
		"art::(anonymous namespace)::GuardedCopy::Check+88 (libart.so)",
	}, t.Ctx().Backtrace()...)
	return &Violation{
		Object:    obj.String(),
		Iface:     "Release (guarded copy check)",
		Offset:    off,
		Expected:  want,
		Got:       got,
		Backtrace: bt,
		Thread:    t.Ctx().Name(),
	}
}

// Outstanding reports how many guarded buffers have not been released.
func (c *Checker) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Stats returns a snapshot of the activity counters.
func (c *Checker) Stats() Stats {
	return Stats{
		Copies:           c.copies.Load(),
		BytesCopied:      c.bytesCopied.Load(),
		Violations:       c.violations.Load(),
		ModifiedReleases: c.modifiedReleases.Load(),
	}
}

// CanaryAt returns the canary byte expected at a given red-zone index, for
// tests that corrupt zones surgically.
func CanaryAt(i int) byte { return canaryPattern[i%len(canaryPattern)] }

// verify interface compliance at compile time.
var _ jni.Checker = (*Checker)(nil)
