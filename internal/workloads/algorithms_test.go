package workloads

// White-box tests of the workload algorithms themselves, independent of the
// JNI plumbing the suite-level tests exercise.

import (
	"math"
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

func TestLZ77CompressesRepetitiveInput(t *testing.T) {
	repetitive := make([]byte, 8192)
	for i := range repetitive {
		repetitive[i] = "abcdabcd"[i%8]
	}
	out := lz77Compress(repetitive)
	if out >= len(repetitive)/2 {
		t.Fatalf("repetitive input compressed to %d of %d", out, len(repetitive))
	}

	random := make([]byte, 8192)
	rng := xorshift32(99)
	for i := range random {
		random[i] = byte(rng.next())
	}
	outRandom := lz77Compress(random)
	if outRandom <= out {
		t.Fatal("random input must compress worse than repetitive input")
	}
}

func TestLZ77TinyInputs(t *testing.T) {
	// Distinct bytes contain no 4-byte match, so the output is all
	// literals, whatever the length.
	for n := 0; n < 8; n++ {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i + 1)
		}
		if out := lz77Compress(in); out != n {
			t.Fatalf("input of %d distinct literals compressed to %d tokens", n, out)
		}
	}
}

func TestXorshiftDeterministicAndNonZero(t *testing.T) {
	a, b := xorshift32(7), xorshift32(7)
	for i := 0; i < 1000; i++ {
		va, vb := a.next(), b.next()
		if va != vb {
			t.Fatal("xorshift not deterministic")
		}
		if va == 0 {
			t.Fatal("xorshift emitted zero (would stick)")
		}
	}
	var zero xorshift32
	if zero.next() == 0 {
		t.Fatal("zero seed must be rescued")
	}
}

func TestVec3Math(t *testing.T) {
	v := vec3{3, 4, 0}
	if got := v.dot(v); got != 25 {
		t.Fatalf("dot = %v", got)
	}
	n := v.norm()
	if math.Abs(n.dot(n)-1) > 1e-12 {
		t.Fatalf("norm not unit: %v", n.dot(n))
	}
	r := vec3{1, -1, 0}.norm().reflect(vec3{0, 1, 0})
	if math.Abs(r.x-1/math.Sqrt2) > 1e-12 || math.Abs(r.y-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("reflect = %+v", r)
	}
	if toByte(2.0) != 255 || toByte(-1) != 0 {
		t.Fatal("toByte clamping wrong")
	}
}

func TestSphereIntersect(t *testing.T) {
	s := sphere{center: vec3{0, 0, 10}, radius: 2}
	// Ray straight at the center hits at t = 8.
	if got := s.intersect(vec3{}, vec3{0, 0, 1}); math.Abs(got-8) > 1e-9 {
		t.Fatalf("head-on intersect = %v", got)
	}
	// Ray pointing away misses.
	if got := s.intersect(vec3{}, vec3{0, 0, -1}); !math.IsInf(got, 1) {
		t.Fatalf("miss returned %v", got)
	}
	// Ray from inside hits the far wall.
	if got := s.intersect(vec3{0, 0, 10}, vec3{0, 0, 1}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("inside intersect = %v", got)
	}
}

func TestImageDimAndScale(t *testing.T) {
	if imageDim(ScaleSmall) >= imageDim(ScaleDefault) {
		t.Fatal("small scale must be smaller")
	}
}

func TestNewImageDeterministic(t *testing.T) {
	v, err := vm.New(vm.Options{HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("t")
	env := jni.NewEnv(th, jni.DirectChecker{}, true)
	img1, err := newImage(env, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := newImage(env, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16*16; i++ {
		a, _ := img1.GetElem(i)
		b, _ := img2.GetElem(i)
		if a != b {
			t.Fatalf("pixel %d differs across identical seeds", i)
		}
		if uint32(a)>>24 != 0xFF {
			t.Fatalf("pixel %d alpha = %x", i, uint32(a)>>24)
		}
	}
	img3, _ := newImage(env, 16, 43)
	same := 0
	for i := 0; i < 16*16; i++ {
		a, _ := img1.GetElem(i)
		b, _ := img3.GetElem(i)
		if a == b {
			same++
		}
	}
	if same == 16*16 {
		t.Fatal("different seeds produced identical images")
	}
}

func TestNavigationRecoversKnownShortestPath(t *testing.T) {
	// The ring edges alone bound dist(0 -> k) by the sum of ring weights;
	// Verify() already checks global reachability, so here we check the
	// solver on the smallest scale end to end.
	v, err := vm.New(vm.Options{HeapSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("t")
	env := jni.NewEnv(th, jni.DirectChecker{}, true)
	w := NewNavigation(ScaleSmall)
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	// Deterministic input: a second run must agree exactly.
	dist1 := w.dist
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if w.dist != dist1 {
		t.Fatalf("Dijkstra not deterministic: %d vs %d", dist1, w.dist)
	}
}

func TestStructureFromMotionRecoversShift(t *testing.T) {
	v, err := vm.New(vm.Options{HeapSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("t")
	env := jni.NewEnv(th, jni.DirectChecker{}, true)
	w := NewStructureFromMotion(ScaleSmall)
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.shiftX-7) > 1.5 || math.Abs(w.shiftY+3) > 1.5 {
		t.Fatalf("recovered shift (%.2f, %.2f), want ≈(7, -3)", w.shiftX, w.shiftY)
	}
}

func TestPatternStrings(t *testing.T) {
	if Bulk.String() != "bulk" || Intensive.String() != "intensive" {
		t.Fatal("Pattern strings wrong")
	}
}

func TestMinAbsHelpers(t *testing.T) {
	if min(3, 5) != 3 || min(5, 3) != 3 {
		t.Fatal("min wrong")
	}
	if abs(-4) != 4 || abs(4) != 4 {
		t.Fatal("abs wrong")
	}
	if absi32(-9) != 9 {
		t.Fatal("absi32 wrong")
	}
}
