package workloads

import (
	"fmt"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// imageDim returns the square image side for a scale.
func imageDim(s Scale) int {
	if s == ScaleSmall {
		return 64
	}
	return 384
}

// newImage allocates a Java int[] of dim*dim ARGB pixels filled with a
// deterministic gradient-plus-noise pattern.
func newImage(env *jni.Env, dim int, seed uint32) (*vm.Object, error) {
	arr, err := env.NewArray(vm.KindInt, dim*dim)
	if err != nil {
		return nil, err
	}
	rng := xorshift32(seed)
	data := make([]byte, dim*dim*4)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			r := byte((x*255/dim + int(rng.byteN(32))) & 0xFF)
			g := byte((y*255/dim + int(rng.byteN(32))) & 0xFF)
			b := byte(((x + y) * 255 / (2 * dim)) & 0xFF)
			i := (y*dim + x) * 4
			data[i], data[i+1], data[i+2], data[i+3] = b, g, r, 0xFF
		}
	}
	if err := env.SetArrayRegion(vm.KindInt, arr, 0, dim*dim, data); err != nil {
		return nil, err
	}
	return arr, nil
}

// PDFRenderer stands in for GB6 "PDF Renderer": rasterizing vector path
// commands (lines and filled rectangles) into a page buffer held in a Java
// int[]. INTENSIVE pattern: every pixel write goes through the raw pointer
// with a checked store — the access behaviour the paper identifies as
// hostile to MTE+Sync.
type PDFRenderer struct {
	dim      int
	commands int
	page     *vm.Object
	plotted  int
}

// NewPDFRenderer builds the workload at the given scale.
func NewPDFRenderer(s Scale) *PDFRenderer {
	dim := imageDim(s)
	cmds := 400
	if s == ScaleSmall {
		cmds = 40
	}
	return &PDFRenderer{dim: dim, commands: cmds}
}

// Name implements Workload.
func (w *PDFRenderer) Name() string { return "PDF Renderer" }

// Pattern implements Workload.
func (w *PDFRenderer) Pattern() Pattern { return Intensive }

// Setup implements Workload.
func (w *PDFRenderer) Setup(env *jni.Env) error {
	page, err := env.NewArray(vm.KindInt, w.dim*w.dim)
	if err != nil {
		return err
	}
	w.page = page
	return nil
}

// Run implements Workload: rasterize synthetic path commands.
func (w *PDFRenderer) Run(env *jni.Env) error {
	dim := w.dim
	rng := xorshift32(0x9D0F)
	return withCritical(env, w.page, func(p mte.Ptr) error {
		plotted := 0
		put := func(x, y int, color int32) {
			if x >= 0 && x < dim && y >= 0 && y < dim {
				env.StoreInt(p.Add(int64((y*dim+x)*4)), color) // checked store
				plotted++
			}
		}
		for c := 0; c < w.commands; c++ {
			x0, y0 := int(rng.next())%dim, int(rng.next())%dim
			x1, y1 := int(rng.next())%dim, int(rng.next())%dim
			color := int32(rng.next())
			if c%3 == 0 {
				// Filled rectangle.
				if x1 < x0 {
					x0, x1 = x1, x0
				}
				if y1 < y0 {
					y0, y1 = y1, y0
				}
				if x1-x0 > dim/4 {
					x1 = x0 + dim/4
				}
				if y1-y0 > dim/4 {
					y1 = y0 + dim/4
				}
				for y := y0; y <= y1; y++ {
					for x := x0; x <= x1; x++ {
						put(x, y, color)
					}
				}
				continue
			}
			// Bresenham line.
			dx, dy := abs(x1-x0), -abs(y1-y0)
			sx, sy := 1, 1
			if x0 > x1 {
				sx = -1
			}
			if y0 > y1 {
				sy = -1
			}
			errAcc := dx + dy
			x, y := x0, y0
			for {
				put(x, y, color)
				if x == x1 && y == y1 {
					break
				}
				e2 := 2 * errAcc
				if e2 >= dy {
					errAcc += dy
					x += sx
				}
				if e2 <= dx {
					errAcc += dx
					y += sy
				}
			}
		}
		w.plotted = plotted
		return nil
	})
}

// Verify implements Workload.
func (w *PDFRenderer) Verify() error {
	if w.plotted < w.commands {
		return fmt.Errorf("PDF Renderer: only %d pixels plotted", w.plotted)
	}
	return nil
}

// abs returns |x|.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PhotoLibrary stands in for GB6 "Photo Library": thumbnailing (box
// downscale) plus luminance histogramming of an image. Bulk pattern.
type PhotoLibrary struct {
	dim   int
	img   *vm.Object
	thumb *vm.Object
	mass  int64
}

// NewPhotoLibrary builds the workload at the given scale.
func NewPhotoLibrary(s Scale) *PhotoLibrary { return &PhotoLibrary{dim: imageDim(s)} }

// Name implements Workload.
func (w *PhotoLibrary) Name() string { return "Photo Library" }

// Pattern implements Workload.
func (w *PhotoLibrary) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *PhotoLibrary) Setup(env *jni.Env) error {
	img, err := newImage(env, w.dim, 0x9107)
	if err != nil {
		return err
	}
	thumb, err := env.NewArray(vm.KindInt, (w.dim/4)*(w.dim/4))
	if err != nil {
		return err
	}
	w.img, w.thumb = img, thumb
	return nil
}

// Run implements Workload.
func (w *PhotoLibrary) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	dim, td := w.dim, w.dim/4
	thumb := make([]int32, td*td)
	var hist [256]int64
	for ty := 0; ty < td; ty++ {
		for tx := 0; tx < td; tx++ {
			var rSum, gSum, bSum int
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					px := uint32(src[(ty*4+dy)*dim+tx*4+dx])
					bSum += int(px & 0xFF)
					gSum += int(px >> 8 & 0xFF)
					rSum += int(px >> 16 & 0xFF)
				}
			}
			r, g, b := rSum/16, gSum/16, bSum/16
			thumb[ty*td+tx] = int32(uint32(0xFF)<<24 | uint32(r)<<16 | uint32(g)<<8 | uint32(b))
			lum := (299*r + 587*g + 114*b) / 1000
			hist[lum]++
		}
	}
	var mass int64
	for v, n := range hist {
		mass += int64(v) * n
	}
	w.mass = mass
	return publishInts(env, w.thumb, thumb)
}

// Verify implements Workload.
func (w *PhotoLibrary) Verify() error {
	if w.mass <= 0 {
		return fmt.Errorf("Photo Library: empty histogram")
	}
	if bits, _ := w.thumb.GetElem(0); bits == 0 {
		return fmt.Errorf("Photo Library: thumbnail not written back")
	}
	return nil
}

// ObjectDetection stands in for GB6 "Object Detection": a small convolution
// stack (3x3 edge kernel + 2x2 max-pool) followed by region scoring. Bulk
// pattern.
type ObjectDetection struct {
	dim   int
	img   *vm.Object
	score int64
}

// NewObjectDetection builds the workload at the given scale.
func NewObjectDetection(s Scale) *ObjectDetection { return &ObjectDetection{dim: imageDim(s)} }

// Name implements Workload.
func (w *ObjectDetection) Name() string { return "Object Detection" }

// Pattern implements Workload.
func (w *ObjectDetection) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *ObjectDetection) Setup(env *jni.Env) error {
	img, err := newImage(env, w.dim, 0x0B7EC7)
	w.img = img
	return err
}

// Run implements Workload.
func (w *ObjectDetection) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	dim := w.dim
	lum := make([]int32, dim*dim)
	for i, px := range src {
		u := uint32(px)
		lum[i] = int32((299*(u>>16&0xFF) + 587*(u>>8&0xFF) + 114*(u&0xFF)) / 1000)
	}
	kernel := [9]int32{-1, -1, -1, -1, 8, -1, -1, -1, -1}
	conv := make([]int32, dim*dim)
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			var acc int32
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					acc += kernel[k] * lum[(y+dy)*dim+x+dx]
					k++
				}
			}
			if acc < 0 {
				acc = -acc
			}
			conv[y*dim+x] = acc
		}
	}
	var score int64
	for y := 0; y+1 < dim; y += 2 {
		for x := 0; x+1 < dim; x += 2 {
			m := conv[y*dim+x]
			if v := conv[y*dim+x+1]; v > m {
				m = v
			}
			if v := conv[(y+1)*dim+x]; v > m {
				m = v
			}
			if v := conv[(y+1)*dim+x+1]; v > m {
				m = v
			}
			score += int64(m)
		}
	}
	w.score = score
	return nil
}

// Verify implements Workload.
func (w *ObjectDetection) Verify() error {
	if w.score <= 0 {
		return fmt.Errorf("Object Detection: zero edge response")
	}
	return nil
}

// BackgroundBlur stands in for GB6 "Background Blur": a separable box blur
// over the image with the result written back through JNI. Bulk pattern.
type BackgroundBlur struct {
	dim int
	img *vm.Object
	sum int64
}

// NewBackgroundBlur builds the workload at the given scale.
func NewBackgroundBlur(s Scale) *BackgroundBlur { return &BackgroundBlur{dim: imageDim(s)} }

// Name implements Workload.
func (w *BackgroundBlur) Name() string { return "Background Blur" }

// Pattern implements Workload.
func (w *BackgroundBlur) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *BackgroundBlur) Setup(env *jni.Env) error {
	img, err := newImage(env, w.dim, 0xB10B)
	w.img = img
	return err
}

// Run implements Workload.
func (w *BackgroundBlur) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	dim, radius := w.dim, 3
	tmp := make([]int32, len(src))
	blurPass := func(in, out []int32, stride, lineLen, lines int) {
		for l := 0; l < lines; l++ {
			base := l
			if stride == 1 {
				base = l * lineLen
			}
			var rAcc, gAcc, bAcc, cnt int
			idx := func(i int) int {
				if stride == 1 {
					return base + i
				}
				return base + i*dim
			}
			for i := 0; i < lineLen; i++ {
				add := i + radius
				if add < lineLen {
					u := uint32(in[idx(add)])
					bAcc += int(u & 0xFF)
					gAcc += int(u >> 8 & 0xFF)
					rAcc += int(u >> 16 & 0xFF)
					cnt++
				}
				sub := i - radius - 1
				if sub >= 0 {
					u := uint32(in[idx(sub)])
					bAcc -= int(u & 0xFF)
					gAcc -= int(u >> 8 & 0xFF)
					rAcc -= int(u >> 16 & 0xFF)
					cnt--
				}
				if i == 0 {
					for j := 0; j <= radius && j < lineLen; j++ {
						if j == radius {
							break
						}
						u := uint32(in[idx(j)])
						bAcc += int(u & 0xFF)
						gAcc += int(u >> 8 & 0xFF)
						rAcc += int(u >> 16 & 0xFF)
						cnt++
					}
				}
				if cnt == 0 {
					cnt = 1
				}
				out[idx(i)] = int32(uint32(0xFF)<<24 | uint32(rAcc/cnt)<<16 | uint32(gAcc/cnt)<<8 | uint32(bAcc/cnt))
			}
		}
	}
	blurPass(src, tmp, 1, dim, dim) // horizontal
	if err := checkpoint(env); err != nil {
		return err
	}
	blurPass(tmp, src, dim, dim, dim) // vertical
	var sum int64
	for _, px := range src {
		sum += int64(uint32(px) & 0xFF)
	}
	w.sum = sum
	return publishInts(env, w.img, src)
}

// Verify implements Workload.
func (w *BackgroundBlur) Verify() error {
	if w.sum <= 0 {
		return fmt.Errorf("Background Blur: black output")
	}
	return nil
}

// HorizonDetection stands in for GB6 "Horizon Detection": gradient
// estimation plus a line-angle vote to find the dominant horizon. Bulk
// pattern.
type HorizonDetection struct {
	dim   int
	img   *vm.Object
	angle int
	votes int64
}

// NewHorizonDetection builds the workload at the given scale.
func NewHorizonDetection(s Scale) *HorizonDetection { return &HorizonDetection{dim: imageDim(s)} }

// Name implements Workload.
func (w *HorizonDetection) Name() string { return "Horizon Detection" }

// Pattern implements Workload.
func (w *HorizonDetection) Pattern() Pattern { return Bulk }

// Setup implements Workload: a sky/ground split gives a real horizon.
func (w *HorizonDetection) Setup(env *jni.Env) error {
	dim := w.dim
	arr, err := env.NewArray(vm.KindInt, dim*dim)
	if err != nil {
		return err
	}
	data := make([]byte, dim*dim*4)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			i := (y*dim + x) * 4
			if y < dim/2+x/8 { // slightly tilted horizon
				data[i], data[i+1], data[i+2], data[i+3] = 0xF0, 0xB0, 0x40, 0xFF // sky
			} else {
				data[i], data[i+1], data[i+2], data[i+3] = 0x20, 0x60, 0x30, 0xFF // ground
			}
		}
	}
	if err := env.SetArrayRegion(vm.KindInt, arr, 0, dim*dim, data); err != nil {
		return err
	}
	w.img = arr
	return nil
}

// Run implements Workload.
func (w *HorizonDetection) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	dim := w.dim
	lum := func(i int) int32 {
		u := uint32(src[i])
		return int32((299*(u>>16&0xFF) + 587*(u>>8&0xFF) + 114*(u&0xFF)) / 1000)
	}
	var votes [32]int64
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			gx := lum(y*dim+x+1) - lum(y*dim+x-1)
			gy := lum((y+1)*dim+x) - lum((y-1)*dim+x)
			mag := gx*gx + gy*gy
			if mag < 400 {
				continue
			}
			// Quantized angle bucket from the gradient direction.
			bucket := 0
			if gy != 0 {
				bucket = int((int64(gx)*8/int64(absi32(gy)) + 16) % 32)
				if bucket < 0 {
					bucket += 32
				}
			}
			votes[bucket] += int64(mag)
		}
	}
	best, bestV := 0, int64(0)
	var total int64
	for b, v := range votes {
		total += v
		if v > bestV {
			best, bestV = b, v
		}
	}
	w.angle, w.votes = best, total
	return nil
}

// absi32 returns |x| for int32.
func absi32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// Verify implements Workload.
func (w *HorizonDetection) Verify() error {
	if w.votes <= 0 {
		return fmt.Errorf("Horizon Detection: no gradient votes")
	}
	return nil
}

// ObjectRemover stands in for GB6 "Object Remover": masking a region and
// inpainting it by iterative neighbour averaging. Bulk pattern.
type ObjectRemover struct {
	dim      int
	img      *vm.Object
	residual int64
}

// NewObjectRemover builds the workload at the given scale.
func NewObjectRemover(s Scale) *ObjectRemover { return &ObjectRemover{dim: imageDim(s)} }

// Name implements Workload.
func (w *ObjectRemover) Name() string { return "Object Remover" }

// Pattern implements Workload.
func (w *ObjectRemover) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *ObjectRemover) Setup(env *jni.Env) error {
	img, err := newImage(env, w.dim, 0x0B0E)
	w.img = img
	return err
}

// Run implements Workload.
func (w *ObjectRemover) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	dim := w.dim
	// Mask the central quarter.
	x0, x1 := dim/4, dim/2
	y0, y1 := dim/4, dim/2
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			src[y*dim+x] = 0
		}
	}
	// Jacobi inpainting iterations.
	channel := func(px int32, sh uint) int32 { return int32(uint32(px) >> sh & 0xFF) }
	for iter := 0; iter < 8; iter++ {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				var r, g, b int32
				for _, d := range [4]int{-1, 1, -dim, dim} {
					n := src[y*dim+x+d]
					b += channel(n, 0)
					g += channel(n, 8)
					r += channel(n, 16)
				}
				src[y*dim+x] = int32(uint32(0xFF)<<24 | uint32(r/4)<<16 | uint32(g/4)<<8 | uint32(b/4))
			}
		}
	}
	var residual int64
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			residual += int64(channel(src[y*dim+x], 8))
		}
	}
	w.residual = residual
	return publishInts(env, w.img, src)
}

// Verify implements Workload: inpainting must have propagated colour.
func (w *ObjectRemover) Verify() error {
	if w.residual <= 0 {
		return fmt.Errorf("Object Remover: masked region still black")
	}
	return nil
}

// HDR stands in for GB6 "HDR": merging three synthetic exposures with a
// Reinhard-style tone map. Bulk pattern over three input arrays plus the
// output.
type HDR struct {
	dim    int
	exp    [3]*vm.Object
	out    *vm.Object
	maxLum int32
}

// NewHDR builds the workload at the given scale.
func NewHDR(s Scale) *HDR { return &HDR{dim: imageDim(s)} }

// Name implements Workload.
func (w *HDR) Name() string { return "HDR" }

// Pattern implements Workload.
func (w *HDR) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *HDR) Setup(env *jni.Env) error {
	for i := range w.exp {
		img, err := newImage(env, w.dim, 0x48D0+uint32(i))
		if err != nil {
			return err
		}
		w.exp[i] = img
	}
	out, err := env.NewArray(vm.KindInt, w.dim*w.dim)
	if err != nil {
		return err
	}
	w.out = out
	return nil
}

// Run implements Workload.
func (w *HDR) Run(env *jni.Env) error {
	var exps [3][]int32
	for i, img := range w.exp {
		vals, err := acquireInts(env, img)
		if err != nil {
			return err
		}
		exps[i] = vals
	}
	n := w.dim * w.dim
	out := make([]int32, n)
	var maxLum int32
	gains := [3]int32{1, 2, 4}
	for i := 0; i < n; i++ {
		var r, g, b int32
		for e := 0; e < 3; e++ {
			u := uint32(exps[e][i])
			b += int32(u&0xFF) * gains[e]
			g += int32(u>>8&0xFF) * gains[e]
			r += int32(u>>16&0xFF) * gains[e]
		}
		// Reinhard tone map x/(x+255) scaled back to 8 bits, in integers.
		tone := func(x int32) int32 { return x * 255 / (x + 255) }
		r, g, b = tone(r/3), tone(g/3), tone(b/3)
		lum := (299*r + 587*g + 114*b) / 1000
		if lum > maxLum {
			maxLum = lum
		}
		out[i] = int32(uint32(0xFF)<<24 | uint32(r)<<16 | uint32(g)<<8 | uint32(b))
	}
	w.maxLum = maxLum
	return publishInts(env, w.out, out)
}

// Verify implements Workload.
func (w *HDR) Verify() error {
	if w.maxLum <= 0 || w.maxLum > 255 {
		return fmt.Errorf("HDR: implausible max luminance %d", w.maxLum)
	}
	return nil
}

// PhotoFilter stands in for GB6 "Photo Filter": a colour LUT plus
// saturation boost applied per pixel natively. Bulk pattern.
type PhotoFilter struct {
	dim int
	img *vm.Object
	sum int64
}

// NewPhotoFilter builds the workload at the given scale.
func NewPhotoFilter(s Scale) *PhotoFilter { return &PhotoFilter{dim: imageDim(s)} }

// Name implements Workload.
func (w *PhotoFilter) Name() string { return "Photo Filter" }

// Pattern implements Workload.
func (w *PhotoFilter) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *PhotoFilter) Setup(env *jni.Env) error {
	img, err := newImage(env, w.dim, 0xF117E4)
	w.img = img
	return err
}

// Run implements Workload.
func (w *PhotoFilter) Run(env *jni.Env) error {
	src, err := acquireInts(env, w.img)
	if err != nil {
		return err
	}
	// Build an S-curve LUT.
	var lut [256]int32
	for i := range lut {
		x := int32(i)
		lut[i] = x + (x*(255-x))/256 - 32
		if lut[i] < 0 {
			lut[i] = 0
		}
		if lut[i] > 255 {
			lut[i] = 255
		}
	}
	var sum int64
	for i, px := range src {
		u := uint32(px)
		b, g, r := lut[u&0xFF], lut[u>>8&0xFF], lut[u>>16&0xFF]
		avg := (r + g + b) / 3
		sat := func(c int32) int32 {
			c = avg + (c-avg)*3/2
			if c < 0 {
				return 0
			}
			if c > 255 {
				return 255
			}
			return c
		}
		r, g, b = sat(r), sat(g), sat(b)
		src[i] = int32(uint32(0xFF)<<24 | uint32(r)<<16 | uint32(g)<<8 | uint32(b))
		sum += int64(r)
	}
	w.sum = sum
	return publishInts(env, w.img, src)
}

// Verify implements Workload.
func (w *PhotoFilter) Verify() error {
	if w.sum <= 0 {
		return fmt.Errorf("Photo Filter: black output")
	}
	return nil
}
