package workloads

import (
	"fmt"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

// FileCompression stands in for GB6 "File Compression": an LZ77-style
// compressor with a 4 KiB sliding window run over a synthetic text corpus
// held in a Java byte[]. Bulk pattern: the corpus is pulled across JNI
// once, compressed natively, and the compressed size is recorded.
type FileCompression struct {
	size  int
	input *vm.Object
	ratio float64
}

// NewFileCompression builds the workload at the given scale.
func NewFileCompression(s Scale) *FileCompression {
	size := 1 << 20
	if s == ScaleSmall {
		size = 16 << 10
	}
	return &FileCompression{size: size}
}

// Name implements Workload.
func (w *FileCompression) Name() string { return "File Compression" }

// Pattern implements Workload.
func (w *FileCompression) Pattern() Pattern { return Bulk }

// Setup implements Workload: synthesize a compressible corpus.
func (w *FileCompression) Setup(env *jni.Env) error {
	arr, err := env.NewArray(vm.KindByte, w.size)
	if err != nil {
		return err
	}
	words := []string{"the ", "quick ", "brown ", "fox ", "jumps ", "over ", "lazy ", "dog ", "memory ", "tagging "}
	data := make([]byte, w.size)
	rng := xorshift32(0xC0FFEE)
	pos := 0
	for pos < w.size {
		word := words[rng.next()%uint32(len(words))]
		n := copy(data[pos:], word)
		pos += n
	}
	if err := env.SetArrayRegion(vm.KindByte, arr, 0, w.size, data); err != nil {
		return err
	}
	w.input = arr
	return nil
}

// lz77Compress compresses src with a hash-chained LZ77 and returns the
// output length.
func lz77Compress(src []byte) int {
	const window = 4096
	const minMatch = 4
	head := make(map[uint32]int, len(src)/4)
	outLen := 0
	hash := func(i int) uint32 {
		return uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
	}
	i := 0
	for i+minMatch <= len(src) {
		h := hash(i)
		cand, ok := head[h]
		head[h] = i
		if ok && i-cand <= window && cand+minMatch <= len(src) {
			// Extend the match.
			length := 0
			for i+length < len(src) && src[cand+length] == src[i+length] && length < 255 {
				length++
			}
			if length >= minMatch {
				outLen += 3 // (distance, length) token
				i += length
				continue
			}
		}
		outLen++ // literal
		i++
	}
	outLen += len(src) - i
	return outLen
}

// Run implements Workload.
func (w *FileCompression) Run(env *jni.Env) error {
	data, err := acquireBytes(env, w.input)
	if err != nil {
		return err
	}
	if err := checkpoint(env); err != nil {
		return err
	}
	out := lz77Compress(data)
	w.ratio = float64(out) / float64(len(data))
	return nil
}

// Verify implements Workload: the synthetic corpus is highly compressible.
func (w *FileCompression) Verify() error {
	if w.ratio <= 0 || w.ratio > 0.8 {
		return fmt.Errorf("File Compression: implausible ratio %.3f", w.ratio)
	}
	return nil
}

// AssetCompression stands in for GB6 "Asset Compression": delta encoding
// plus run-length compression of quantized mesh vertex data held in a Java
// int[]. Bulk pattern.
type AssetCompression struct {
	verts  int
	mesh   *vm.Object
	outLen int
}

// NewAssetCompression builds the workload at the given scale.
func NewAssetCompression(s Scale) *AssetCompression {
	verts := 1 << 18
	if s == ScaleSmall {
		verts = 1 << 12
	}
	return &AssetCompression{verts: verts}
}

// Name implements Workload.
func (w *AssetCompression) Name() string { return "Asset Compression" }

// Pattern implements Workload.
func (w *AssetCompression) Pattern() Pattern { return Bulk }

// Setup implements Workload: synthesize smooth vertex positions, which
// delta-encode well.
func (w *AssetCompression) Setup(env *jni.Env) error {
	arr, err := env.NewArray(vm.KindInt, w.verts)
	if err != nil {
		return err
	}
	rng := xorshift32(0xA55E7)
	v := int32(1 << 20)
	for i := 0; i < w.verts; i++ {
		v += int32(rng.next()%17) - 8 // small jitter: smooth surface
		if err := arr.SetElem(i, uint64(uint32(v))); err != nil {
			return err
		}
	}
	w.mesh = arr
	return nil
}

// Run implements Workload.
func (w *AssetCompression) Run(env *jni.Env) error {
	vals, err := acquireInts(env, w.mesh)
	if err != nil {
		return err
	}
	if err := checkpoint(env); err != nil {
		return err
	}
	// Delta encode.
	deltas := make([]int32, len(vals))
	prev := int32(0)
	for i, v := range vals {
		deltas[i] = v - prev
		prev = v
	}
	// Byte-oriented RLE over the low bytes of the deltas.
	out := 0
	run := 0
	var last byte
	for i, d := range deltas {
		b := byte(d)
		if i > 0 && b == last && run < 255 {
			run++
			continue
		}
		out += 2 // (value, runlen)
		last, run = b, 1
	}
	out += 2
	w.outLen = out
	return nil
}

// Verify implements Workload: smooth data must shrink.
func (w *AssetCompression) Verify() error {
	if w.outLen <= 0 || w.outLen >= w.verts*4 {
		return fmt.Errorf("Asset Compression: implausible output %d for %d ints", w.outLen, w.verts)
	}
	return nil
}
