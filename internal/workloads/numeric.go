package workloads

import (
	"fmt"
	"math"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

// Navigation stands in for GB6 "Navigation": Dijkstra shortest paths over a
// random road network stored in Java int arrays (CSR adjacency). Bulk
// pattern: the graph crosses JNI once per run, route computation is native.
type Navigation struct {
	nodes   int
	degree  int
	offsets *vm.Object // int[nodes+1]
	edges   *vm.Object // int[] pairs (dst, weight) flattened
	dist    int64
	reached int
}

// NewNavigation builds the workload at the given scale.
func NewNavigation(s Scale) *Navigation {
	nodes := 20000
	if s == ScaleSmall {
		nodes = 800
	}
	return &Navigation{nodes: nodes, degree: 4}
}

// Name implements Workload.
func (w *Navigation) Name() string { return "Navigation" }

// Pattern implements Workload.
func (w *Navigation) Pattern() Pattern { return Bulk }

// Setup implements Workload: build a ring + random chords road network.
func (w *Navigation) Setup(env *jni.Env) error {
	n, deg := w.nodes, w.degree
	offsets := make([]int32, n+1)
	edges := make([]int32, 0, n*deg*2)
	rng := xorshift32(0x4A71)
	for v := 0; v < n; v++ {
		offsets[v] = int32(len(edges) / 2)
		// Ring edges keep the graph connected.
		edges = append(edges, int32((v+1)%n), int32(rng.next()%20+1))
		for d := 1; d < deg; d++ {
			edges = append(edges, int32(rng.next()%uint32(n)), int32(rng.next()%100+1))
		}
	}
	offsets[n] = int32(len(edges) / 2)

	offArr, err := env.NewArray(vm.KindInt, len(offsets))
	if err != nil {
		return err
	}
	for i, v := range offsets {
		if err := offArr.SetElem(i, uint64(uint32(v))); err != nil {
			return err
		}
	}
	edgeArr, err := env.NewArray(vm.KindInt, len(edges))
	if err != nil {
		return err
	}
	for i, v := range edges {
		if err := edgeArr.SetElem(i, uint64(uint32(v))); err != nil {
			return err
		}
	}
	w.offsets, w.edges = offArr, edgeArr
	return nil
}

// Run implements Workload: Dijkstra with a binary heap.
func (w *Navigation) Run(env *jni.Env) error {
	offsets, err := acquireInts(env, w.offsets)
	if err != nil {
		return err
	}
	edges, err := acquireInts(env, w.edges)
	if err != nil {
		return err
	}
	n := w.nodes
	const inf = math.MaxInt32
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	// Binary heap of (dist, node) encoded as int64.
	heap := []int64{0}
	push := func(d int32, v int) {
		heap = append(heap, int64(d)<<32|int64(v))
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent] <= heap[i] {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() (int32, int) {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l] < heap[small] {
				small = l
			}
			if r < last && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return int32(top >> 32), int(top & 0xFFFFFFFF)
	}
	for len(heap) > 0 {
		d, v := pop()
		if d > dist[v] {
			continue
		}
		for e := offsets[v]; e < offsets[v+1]; e++ {
			dst, wgt := edges[2*e], edges[2*e+1]
			if nd := d + wgt; nd < dist[dst] {
				dist[dst] = nd
				push(nd, int(dst))
			}
		}
	}
	var total int64
	reached := 0
	for _, d := range dist {
		if d != inf {
			total += int64(d)
			reached++
		}
	}
	w.dist, w.reached = total, reached
	return nil
}

// Verify implements Workload: the ring guarantees full reachability.
func (w *Navigation) Verify() error {
	if w.reached != w.nodes {
		return fmt.Errorf("Navigation: reached %d of %d nodes", w.reached, w.nodes)
	}
	if w.dist <= 0 {
		return fmt.Errorf("Navigation: zero total distance")
	}
	return nil
}

// RayTracer stands in for GB6 "Ray Tracer": path-free Whitted-style
// rendering of a sphere scene into a Java int[] framebuffer. Bulk pattern:
// heavy native float compute, one bulk publish at the end.
type RayTracer struct {
	dim    int
	fb     *vm.Object
	hits   int
	bright int64
}

// NewRayTracer builds the workload at the given scale.
func NewRayTracer(s Scale) *RayTracer {
	dim := 192
	if s == ScaleSmall {
		dim = 48
	}
	return &RayTracer{dim: dim}
}

// Name implements Workload.
func (w *RayTracer) Name() string { return "Ray Tracer" }

// Pattern implements Workload.
func (w *RayTracer) Pattern() Pattern { return Bulk }

// Setup implements Workload.
func (w *RayTracer) Setup(env *jni.Env) error {
	fb, err := env.NewArray(vm.KindInt, w.dim*w.dim)
	w.fb = fb
	return err
}

// vec3 is a small value-type vector for the tracer.
type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3     { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3     { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) mul(s float64) vec3  { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) dot(b vec3) float64  { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) norm() vec3          { return a.mul(1 / math.Sqrt(a.dot(a))) }
func (a vec3) reflect(n vec3) vec3 { return a.sub(n.mul(2 * a.dot(n))) }
func clamp01(x float64) float64    { return math.Max(0, math.Min(1, x)) }
func toByte(x float64) uint32      { return uint32(clamp01(x) * 255) }

// sphere is one scene object.
type sphere struct {
	center vec3
	radius float64
	color  vec3
	mirror float64
}

// intersect returns the ray parameter of the nearest hit, or +Inf.
func (s sphere) intersect(o, d vec3) float64 {
	oc := o.sub(s.center)
	b := oc.dot(d)
	c := oc.dot(oc) - s.radius*s.radius
	disc := b*b - c
	if disc < 0 {
		return math.Inf(1)
	}
	t := -b - math.Sqrt(disc)
	if t > 1e-4 {
		return t
	}
	t = -b + math.Sqrt(disc)
	if t > 1e-4 {
		return t
	}
	return math.Inf(1)
}

// Run implements Workload.
func (w *RayTracer) Run(env *jni.Env) error {
	scene := []sphere{
		{vec3{0, -1000, 20}, 998.5, vec3{0.6, 0.6, 0.6}, 0}, // floor
		{vec3{-2, 0.5, 16}, 1.5, vec3{0.9, 0.2, 0.2}, 0.3},  // red
		{vec3{1.5, 0, 14}, 1.0, vec3{0.2, 0.4, 0.9}, 0.6},   // blue mirror
		{vec3{0, 1.8, 19}, 1.2, vec3{0.2, 0.9, 0.3}, 0},     // green
	}
	light := vec3{-10, 20, 5}
	dim := w.dim
	fb := make([]int32, dim*dim)
	hits := 0
	var bright int64

	var trace func(o, d vec3, depth int) vec3
	trace = func(o, d vec3, depth int) vec3 {
		best, bi := math.Inf(1), -1
		for i, s := range scene {
			if t := s.intersect(o, d); t < best {
				best, bi = t, i
			}
		}
		if bi < 0 {
			return vec3{0.2, 0.3, 0.5} // sky
		}
		s := scene[bi]
		hit := o.add(d.mul(best))
		n := hit.sub(s.center).norm()
		toLight := light.sub(hit).norm()
		// Shadow ray.
		shade := clamp01(n.dot(toLight))
		for i, other := range scene {
			if i == bi {
				continue
			}
			if !math.IsInf(other.intersect(hit, toLight), 1) {
				shade *= 0.2
				break
			}
		}
		col := s.color.mul(0.15 + 0.85*shade)
		if s.mirror > 0 && depth < 3 {
			refl := trace(hit, d.reflect(n).norm(), depth+1)
			col = col.mul(1 - s.mirror).add(refl.mul(s.mirror))
		}
		return col
	}

	for y := 0; y < dim; y++ {
		if err := checkpoint(env); err != nil {
			return err
		}
		for x := 0; x < dim; x++ {
			d := vec3{
				(float64(x) - float64(dim)/2) / float64(dim),
				(float64(dim)/2 - float64(y)) / float64(dim),
				1,
			}.norm()
			col := trace(vec3{0, 1, 0}, d, 0)
			px := 0xFF<<24 | toByte(col.x)<<16 | toByte(col.y)<<8 | toByte(col.z)
			fb[y*dim+x] = int32(px)
			if col.x+col.y+col.z > 0.05 {
				hits++
			}
			bright += int64(toByte(col.x))
		}
	}
	w.hits, w.bright = hits, bright
	return publishInts(env, w.fb, fb)
}

// Verify implements Workload.
func (w *RayTracer) Verify() error {
	if w.hits < w.dim*w.dim/2 {
		return fmt.Errorf("Ray Tracer: only %d lit pixels", w.hits)
	}
	return nil
}

// StructureFromMotion stands in for GB6 "Structure from Motion": feature
// matching between two synthetic views plus a least-squares translation
// estimate. Bulk pattern over two int[] descriptor arrays.
type StructureFromMotion struct {
	features int
	viewA    *vm.Object
	viewB    *vm.Object
	shiftX   float64
	shiftY   float64
	matches  int
}

// NewStructureFromMotion builds the workload at the given scale.
func NewStructureFromMotion(s Scale) *StructureFromMotion {
	features := 3000
	if s == ScaleSmall {
		features = 300
	}
	return &StructureFromMotion{features: features}
}

// Name implements Workload.
func (w *StructureFromMotion) Name() string { return "Structure from Motion" }

// Pattern implements Workload.
func (w *StructureFromMotion) Pattern() Pattern { return Bulk }

// Setup implements Workload: view B is view A shifted by (7, -3) with
// noisy descriptors. Each feature is (x, y, desc0..desc5).
func (w *StructureFromMotion) Setup(env *jni.Env) error {
	const stride = 8
	n := w.features
	a := make([]int32, n*stride)
	b := make([]int32, n*stride)
	rng := xorshift32(0x5F0B)
	for i := 0; i < n; i++ {
		x, y := int32(rng.next()%2000), int32(rng.next()%2000)
		a[i*stride], a[i*stride+1] = x, y
		b[i*stride], b[i*stride+1] = x+7, y-3
		for d := 2; d < stride; d++ {
			v := int32(rng.next() % 256)
			a[i*stride+d] = v
			b[i*stride+d] = v + int32(rng.next()%3) - 1 // descriptor noise
		}
	}
	mk := func(data []int32) (*vm.Object, error) {
		arr, err := env.NewArray(vm.KindInt, len(data))
		if err != nil {
			return nil, err
		}
		for i, v := range data {
			if err := arr.SetElem(i, uint64(uint32(v))); err != nil {
				return nil, err
			}
		}
		return arr, nil
	}
	var err error
	if w.viewA, err = mk(a); err != nil {
		return err
	}
	w.viewB, err = mk(b)
	return err
}

// Run implements Workload: nearest-descriptor matching via bucket hashing,
// then mean shift estimation.
func (w *StructureFromMotion) Run(env *jni.Env) error {
	const stride = 8
	a, err := acquireInts(env, w.viewA)
	if err != nil {
		return err
	}
	b, err := acquireInts(env, w.viewB)
	if err != nil {
		return err
	}
	n := w.features
	// Bucket B's features by a coarse descriptor hash.
	buckets := make(map[uint32][]int, n)
	descHash := func(f []int32) uint32 {
		var h uint32
		for d := 2; d < stride; d++ {
			h = h*131 + uint32(f[d]>>3) // quantized: tolerate noise
		}
		return h
	}
	for j := 0; j < n; j++ {
		h := descHash(b[j*stride:])
		buckets[h] = append(buckets[h], j)
	}
	var sumX, sumY float64
	matches := 0
	for i := 0; i < n; i++ {
		fa := a[i*stride:]
		best, bestD := -1, int64(math.MaxInt64)
		for _, j := range buckets[descHash(fa)] {
			fb := b[j*stride:]
			var d2 int64
			for d := 2; d < stride; d++ {
				diff := int64(fa[d] - fb[d])
				d2 += diff * diff
			}
			if d2 < bestD {
				best, bestD = j, d2
			}
		}
		if best >= 0 && bestD < 100 {
			sumX += float64(b[best*stride] - fa[0])
			sumY += float64(b[best*stride+1] - fa[1])
			matches++
		}
	}
	if matches > 0 {
		w.shiftX, w.shiftY = sumX/float64(matches), sumY/float64(matches)
	}
	w.matches = matches
	return nil
}

// Verify implements Workload: the recovered shift must be close to (7,-3).
func (w *StructureFromMotion) Verify() error {
	if w.matches < w.features/4 {
		return fmt.Errorf("Structure from Motion: only %d matches", w.matches)
	}
	if math.Abs(w.shiftX-7) > 1.5 || math.Abs(w.shiftY+3) > 1.5 {
		return fmt.Errorf("Structure from Motion: recovered shift (%.1f, %.1f), want (7, -3)", w.shiftX, w.shiftY)
	}
	return nil
}
