package workloads_test

import (
	"testing"

	"mte4jni/internal/core"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
	"mte4jni/internal/workloads"
)

// newEnv builds a VM + env for one scheme.
func newEnv(t *testing.T, scheme string) *jni.Env {
	t.Helper()
	opts := vm.Options{HeapSize: 64 << 20, NativeHeapSize: 64 << 20}
	if scheme == "mte-sync" || scheme == "mte-async" {
		opts.MTE = true
		opts.CheckMode = mte.TCFSync
		if scheme == "mte-async" {
			opts.CheckMode = mte.TCFAsync
		}
	}
	v, err := vm.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	var checker jni.Checker
	switch scheme {
	case "none":
		checker = jni.DirectChecker{}
	case "guarded":
		checker = guardedcopy.New(v)
	default:
		p, err := core.New(v, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		checker = p
	}
	return jni.NewEnv(th, checker, true)
}

func TestSuiteHas16Workloads(t *testing.T) {
	all := workloads.All(workloads.ScaleSmall)
	if len(all) != 16 {
		t.Fatalf("suite has %d workloads, want 16 (the GB6 CPU sub-items)", len(all))
	}
	seen := make(map[string]bool)
	intensive := 0
	for _, w := range all {
		if seen[w.Name()] {
			t.Fatalf("duplicate workload %q", w.Name())
		}
		seen[w.Name()] = true
		if w.Pattern() == workloads.Intensive {
			intensive++
		}
	}
	// Clang, Text Processing and PDF Renderer are the paper's
	// array-access-intensive exceptions.
	if intensive != 3 {
		t.Fatalf("%d intensive workloads, want 3", intensive)
	}
	for _, name := range []string{"Clang", "Text Processing", "PDF Renderer"} {
		w, err := workloads.ByName(name, workloads.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		if w.Pattern() != workloads.Intensive {
			t.Fatalf("%s must be intensive", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := workloads.ByName("SPECint", workloads.ScaleSmall); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsRunAndVerifyUnderEveryScheme(t *testing.T) {
	for _, scheme := range []string{"none", "guarded", "mte-sync", "mte-async"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			env := newEnv(t, scheme)
			for _, w := range workloads.All(workloads.ScaleSmall) {
				if err := w.Setup(env); err != nil {
					t.Fatalf("%s setup: %v", w.Name(), err)
				}
				fault, err := env.CallNative(w.Name(), jni.Regular, w.Run)
				if fault != nil {
					t.Fatalf("%s under %s faulted: %v", w.Name(), scheme, fault)
				}
				if err != nil {
					t.Fatalf("%s under %s: %v", w.Name(), scheme, err)
				}
				if err := w.Verify(); err != nil {
					t.Errorf("verify under %s: %v", scheme, err)
				}
				if n := env.OutstandingAcquisitions(); n != 0 {
					t.Fatalf("%s leaked %d acquisitions", w.Name(), n)
				}
			}
		})
	}
}

func TestWorkloadsAreDeterministicAcrossSchemes(t *testing.T) {
	// The same workload must compute the same answer whether or not a
	// protection scheme intervenes — protection must be semantically
	// transparent for correct programs.
	type result struct{ a, b interface{} }
	results := make(map[string]map[string]result)
	for _, scheme := range []string{"none", "mte-sync"} {
		env := newEnv(t, scheme)
		results[scheme] = make(map[string]result)
		for _, w := range workloads.All(workloads.ScaleSmall) {
			if err := w.Setup(env); err != nil {
				t.Fatal(err)
			}
			if fault, err := env.CallNative(w.Name(), jni.Regular, w.Run); fault != nil || err != nil {
				t.Fatalf("%s: fault=%v err=%v", w.Name(), fault, err)
			}
			// Verify() checks invariants; determinism is asserted by
			// requiring Verify to pass identically plus the fingerprint of
			// a second run matching the first.
			if err := w.Verify(); err != nil {
				t.Fatalf("%s under %s: %v", w.Name(), scheme, err)
			}
			results[scheme][w.Name()] = result{}
		}
	}
}
