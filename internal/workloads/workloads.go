// Package workloads implements the 16 CPU workloads used to reproduce the
// paper's §5.4 common-task experiment (Figures 7 and 8). Each workload is
// named after the GeekBench 6 CPU sub-item it stands in for and performs a
// real computation of the same flavour over data held in Java heap arrays
// that native code reaches through the JNI raw-pointer interfaces.
//
// Two access patterns matter for reproducing the paper's observation that
// Clang, Text Processing and PDF Renderer behave worse under MTE+Sync than
// under guarded copy:
//
//   - bulk workloads acquire an array, copy it to native memory in one
//     checked operation, compute natively, and copy results back — so the
//     per-scheme cost is the handout itself (guarded copy pays the copies,
//     MTE pays tagging);
//   - intensive workloads keep the raw pointer and access the Java array
//     element by element through checked loads/stores, so every access pays
//     the MTE check — exactly the "intensive access within a large array"
//     the paper says makes such workloads unsuited to MTE+Sync.
package workloads

import (
	"fmt"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Pattern classifies a workload's JNI access behaviour.
type Pattern int

const (
	// Bulk workloads use one checked bulk transfer per array per run.
	Bulk Pattern = iota
	// Intensive workloads perform per-element checked accesses.
	Intensive
)

// String names the pattern.
func (p Pattern) String() string {
	if p == Intensive {
		return "intensive"
	}
	return "bulk"
}

// Workload is one GeekBench-style CPU task.
type Workload interface {
	// Name is the GeekBench 6 sub-item name.
	Name() string
	// Pattern reports the JNI access pattern.
	Pattern() Pattern
	// Setup allocates the workload's Java objects via env. It is called
	// once, outside the timed region.
	Setup(env *jni.Env) error
	// Run executes one iteration as a native method body. It is invoked
	// inside a JNI trampoline by the driver.
	Run(env *jni.Env) error
	// Verify checks the computation produced a plausible result; used by
	// tests, not benchmarks.
	Verify() error
}

// Scale selects problem sizes: tests use Small, benchmarks Default.
type Scale int

const (
	// ScaleSmall keeps runs in the sub-millisecond range for tests.
	ScaleSmall Scale = iota
	// ScaleDefault is the benchmark size.
	ScaleDefault
)

// All returns the full 16-workload suite at the given scale, in GeekBench's
// listing order.
func All(s Scale) []Workload {
	return []Workload{
		NewFileCompression(s),
		NewNavigation(s),
		NewHTML5Browser(s),
		NewPDFRenderer(s),
		NewPhotoLibrary(s),
		NewClang(s),
		NewTextProcessing(s),
		NewAssetCompression(s),
		NewObjectDetection(s),
		NewBackgroundBlur(s),
		NewHorizonDetection(s),
		NewObjectRemover(s),
		NewHDR(s),
		NewPhotoFilter(s),
		NewRayTracer(s),
		NewStructureFromMotion(s),
	}
}

// ByName finds a workload by its sub-item name.
func ByName(name string, s Scale) (Workload, error) {
	for _, w := range All(s) {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// --- shared helpers ---------------------------------------------------------

// checkpoint polls the execution context bound to env at a workload phase
// boundary (acquire → compute → publish). Kernels stay cancellable without
// per-element checks: the shared acquire/publish helpers call it, and heavy
// compute loops add their own mid-phase calls. Nil-safe and allocation-free
// when no context is bound, so benchmarks are unaffected.
func checkpoint(env *jni.Env) error { return env.Exec().Canceled() }

// acquireBytes obtains a byte[]'s raw pointer, bulk-copies its payload into
// a native buffer, and releases the pointer. It is the canonical bulk-in
// pattern.
func acquireBytes(env *jni.Env, arr *vm.Object) ([]byte, error) {
	if err := checkpoint(env); err != nil {
		return nil, err
	}
	p, err := env.GetByteArrayElements(arr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, arr.Len())
	env.CopyToNative(buf, p)
	if err := env.ReleaseByteArrayElements(arr, p, jni.JNIAbort); err != nil {
		return nil, err
	}
	return buf, nil
}

// publishBytes bulk-copies a native buffer back into a Java byte[].
func publishBytes(env *jni.Env, arr *vm.Object, data []byte) error {
	if err := checkpoint(env); err != nil {
		return err
	}
	p, err := env.GetByteArrayElements(arr)
	if err != nil {
		return err
	}
	env.CopyFromNative(p, data)
	return env.ReleaseByteArrayElements(arr, p, jni.ReleaseDefault)
}

// acquireInts bulk-copies a Java int[] into native memory.
func acquireInts(env *jni.Env, arr *vm.Object) ([]int32, error) {
	if err := checkpoint(env); err != nil {
		return nil, err
	}
	p, err := env.GetIntArrayElements(arr)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, arr.Len()*4)
	env.CopyToNative(raw, p)
	if err := env.ReleaseIntArrayElements(arr, p, jni.JNIAbort); err != nil {
		return nil, err
	}
	out := make([]int32, arr.Len())
	for i := range out {
		out[i] = int32(uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24)
	}
	return out, nil
}

// publishInts bulk-copies native int32 data back into a Java int[].
func publishInts(env *jni.Env, arr *vm.Object, data []int32) error {
	if err := checkpoint(env); err != nil {
		return err
	}
	raw := make([]byte, len(data)*4)
	for i, v := range data {
		u := uint32(v)
		raw[4*i], raw[4*i+1], raw[4*i+2], raw[4*i+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	}
	p, err := env.GetIntArrayElements(arr)
	if err != nil {
		return err
	}
	env.CopyFromNative(p, raw)
	return env.ReleaseIntArrayElements(arr, p, jni.ReleaseDefault)
}

// withCritical acquires arr's payload pointer for the duration of fn — the
// pattern intensive workloads use for per-element checked access.
func withCritical(env *jni.Env, arr *vm.Object, fn func(p mte.Ptr) error) error {
	if err := checkpoint(env); err != nil {
		return err
	}
	p, err := env.GetPrimitiveArrayCritical(arr)
	if err != nil {
		return err
	}
	ferr := fn(p)
	rerr := env.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	if ferr != nil {
		return ferr
	}
	return rerr
}

// xorshift32 is the deterministic PRNG workloads use to synthesize inputs,
// keeping every run reproducible without package-level state.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	if v == 0 {
		v = 0x9E3779B9
	}
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

// byteN returns a pseudo-random byte below n.
func (x *xorshift32) byteN(n int) byte { return byte(x.next() % uint32(n)) }
