package workloads

import (
	"fmt"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// HTML5Browser stands in for GB6 "HTML5 Browser": tokenizing a synthetic
// HTML document and building a tag histogram plus a DOM depth profile.
// Bulk pattern: the document crosses JNI once per run.
type HTML5Browser struct {
	size     int
	doc      *vm.Object
	maxDepth int
	tags     int
}

// NewHTML5Browser builds the workload at the given scale.
func NewHTML5Browser(s Scale) *HTML5Browser {
	size := 512 << 10
	if s == ScaleSmall {
		size = 8 << 10
	}
	return &HTML5Browser{size: size}
}

// Name implements Workload.
func (w *HTML5Browser) Name() string { return "HTML5 Browser" }

// Pattern implements Workload.
func (w *HTML5Browser) Pattern() Pattern { return Bulk }

// Setup implements Workload: generate nested markup.
func (w *HTML5Browser) Setup(env *jni.Env) error {
	arr, err := env.NewArray(vm.KindByte, w.size)
	if err != nil {
		return err
	}
	tags := []string{"div", "span", "p", "ul", "li", "a", "h1", "table"}
	data := make([]byte, 0, w.size)
	rng := xorshift32(0x11735)
	var stack []string
	for len(data) < w.size-64 {
		if len(stack) > 0 && rng.next()%3 == 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			data = append(data, "</"...)
			data = append(data, top...)
			data = append(data, '>')
			continue
		}
		tag := tags[rng.next()%uint32(len(tags))]
		stack = append(stack, tag)
		data = append(data, '<')
		data = append(data, tag...)
		data = append(data, ">text"...)
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		data = append(data, "</"...)
		data = append(data, top...)
		data = append(data, '>')
	}
	data = data[:min(len(data), w.size)]
	padded := make([]byte, w.size)
	copy(padded, data)
	if err := env.SetArrayRegion(vm.KindByte, arr, 0, w.size, padded); err != nil {
		return err
	}
	w.doc = arr
	return nil
}

// Run implements Workload: a simple HTML tokenizer.
func (w *HTML5Browser) Run(env *jni.Env) error {
	data, err := acquireBytes(env, w.doc)
	if err != nil {
		return err
	}
	depth, maxDepth, tags := 0, 0, 0
	for i := 0; i < len(data); i++ {
		if data[i] != '<' {
			continue
		}
		tags++
		if i+1 < len(data) && data[i+1] == '/' {
			depth--
		} else {
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		for i < len(data) && data[i] != '>' {
			i++
		}
	}
	w.maxDepth, w.tags = maxDepth, tags
	return nil
}

// Verify implements Workload.
func (w *HTML5Browser) Verify() error {
	if w.tags < 10 || w.maxDepth < 2 {
		return fmt.Errorf("HTML5 Browser: implausible parse (tags=%d depth=%d)", w.tags, w.maxDepth)
	}
	return nil
}

// Clang stands in for GB6 "Clang": lexing and brace/paren matching of a
// synthetic C-like source file. INTENSIVE pattern: the lexer reads the
// source byte by byte through the raw Java pointer, so under MTE+Sync every
// character costs a tag check — the behaviour the paper singles out.
type Clang struct {
	size      int
	src       *vm.Object
	tokens    int
	functions int
}

// NewClang builds the workload at the given scale.
func NewClang(s Scale) *Clang {
	size := 256 << 10
	if s == ScaleSmall {
		size = 8 << 10
	}
	return &Clang{size: size}
}

// Name implements Workload.
func (w *Clang) Name() string { return "Clang" }

// Pattern implements Workload.
func (w *Clang) Pattern() Pattern { return Intensive }

// Setup implements Workload: synthesize function definitions.
func (w *Clang) Setup(env *jni.Env) error {
	arr, err := env.NewArray(vm.KindByte, w.size)
	if err != nil {
		return err
	}
	data := make([]byte, 0, w.size)
	rng := xorshift32(0xC1A46)
	fn := 0
	for len(data) < w.size-128 {
		stmt := fmt.Sprintf("int f%d(int x){int y=x*%d;if(y>%d){y-=%d;}return y+f%d(x-1);}\n",
			fn, rng.next()%97+1, rng.next()%1000, rng.next()%50, fn/2)
		data = append(data, stmt...)
		fn++
	}
	padded := make([]byte, w.size)
	n := copy(padded, data)
	for i := n; i < w.size; i++ {
		padded[i] = ' '
	}
	if err := env.SetArrayRegion(vm.KindByte, arr, 0, w.size, padded); err != nil {
		return err
	}
	w.src = arr
	return nil
}

// Run implements Workload: per-byte lexing through the raw pointer.
func (w *Clang) Run(env *jni.Env) error {
	n := w.src.Len()
	return withCritical(env, w.src, func(p mte.Ptr) error {
		tokens, functions, depth := 0, 0, 0
		i := 0
		for i < n {
			c := env.LoadByte(p.Add(int64(i))) // checked per-byte access
			switch {
			case c == '{':
				depth++
				tokens++
				i++
			case c == '}':
				depth--
				if depth == 0 {
					functions++
				}
				tokens++
				i++
			case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
				for i < n {
					c = env.LoadByte(p.Add(int64(i)))
					if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
						break
					}
					i++
				}
				tokens++
			case c >= '0' && c <= '9':
				for i < n {
					c = env.LoadByte(p.Add(int64(i)))
					if c < '0' || c > '9' {
						break
					}
					i++
				}
				tokens++
			case c == ' ' || c == '\n' || c == '\t':
				i++
			default:
				tokens++
				i++
			}
		}
		w.tokens, w.functions = tokens, functions
		return nil
	})
}

// Verify implements Workload.
func (w *Clang) Verify() error {
	if w.tokens < 100 || w.functions < 1 {
		return fmt.Errorf("Clang: implausible lex (tokens=%d functions=%d)", w.tokens, w.functions)
	}
	return nil
}

// TextProcessing stands in for GB6 "Text Processing": word frequency and
// sentence statistics over a document. INTENSIVE pattern, like Clang.
type TextProcessing struct {
	size      int
	text      *vm.Object
	words     int
	sentences int
}

// NewTextProcessing builds the workload at the given scale.
func NewTextProcessing(s Scale) *TextProcessing {
	size := 256 << 10
	if s == ScaleSmall {
		size = 8 << 10
	}
	return &TextProcessing{size: size}
}

// Name implements Workload.
func (w *TextProcessing) Name() string { return "Text Processing" }

// Pattern implements Workload.
func (w *TextProcessing) Pattern() Pattern { return Intensive }

// Setup implements Workload.
func (w *TextProcessing) Setup(env *jni.Env) error {
	arr, err := env.NewArray(vm.KindByte, w.size)
	if err != nil {
		return err
	}
	words := []string{"memory", "tag", "native", "heap", "pointer", "java", "android", "check"}
	data := make([]byte, 0, w.size)
	rng := xorshift32(0x7E47)
	for len(data) < w.size-32 {
		data = append(data, words[rng.next()%uint32(len(words))]...)
		if rng.next()%9 == 0 {
			data = append(data, '.')
		}
		data = append(data, ' ')
	}
	padded := make([]byte, w.size)
	n := copy(padded, data)
	for i := n; i < w.size; i++ {
		padded[i] = ' '
	}
	if err := env.SetArrayRegion(vm.KindByte, arr, 0, w.size, padded); err != nil {
		return err
	}
	w.text = arr
	return nil
}

// Run implements Workload: per-character scan with a rolling word hash.
func (w *TextProcessing) Run(env *jni.Env) error {
	n := w.text.Len()
	freq := make(map[uint32]int, 64)
	return withCritical(env, w.text, func(p mte.Ptr) error {
		words, sentences := 0, 0
		var h uint32
		inWord := false
		for i := 0; i < n; i++ {
			if i&0xFFFF == 0 { // amortized mid-phase cancellation poll
				if err := checkpoint(env); err != nil {
					return err
				}
			}
			c := env.LoadByte(p.Add(int64(i))) // checked per-byte access
			switch {
			case c >= 'a' && c <= 'z':
				h = h*31 + uint32(c)
				inWord = true
			case c == '.':
				sentences++
				fallthrough
			default:
				if inWord {
					words++
					freq[h]++
					h = 0
					inWord = false
				}
			}
		}
		w.words, w.sentences = words, sentences
		return nil
	})
}

// Verify implements Workload.
func (w *TextProcessing) Verify() error {
	if w.words < 50 || w.sentences < 1 {
		return fmt.Errorf("Text Processing: implausible stats (words=%d sentences=%d)", w.words, w.sentences)
	}
	return nil
}

// min returns the smaller int (Go 1.21 builtin exists but keep explicit for
// clarity with older toolchains in mind).
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
