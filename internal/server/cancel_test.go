package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
)

// spinRequest builds a /run request carrying an inline spin program of n
// iterations, marshalled in the analysis JSON format the server parses.
func spinRequest(t *testing.T, n int64) RunRequest {
	t.Helper()
	raw, err := analysis.MarshalProgram(pool.SpinProgram(n))
	if err != nil {
		t.Fatal(err)
	}
	return RunRequest{Scheme: "sync", Program: raw}
}

// doRun posts a run and decodes the RunResponse at any status code (postRun
// only decodes 200s).
func doRun(t *testing.T, url string, req RunRequest) (int, RunResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding status-%d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// TestStepsExceededThroughServerPath is the fuel-exhaustion satellite: an
// inline program exceeding the step budget comes back as a structured
// steps-exceeded response (HTTP 200 — the request was served), is not
// reported as an MTE fault, and the session is recycled, not quarantined.
func TestStepsExceededThroughServerPath(t *testing.T) {
	s, ts := testServer(t, Config{StepBudget: 2000, Pool: pool.Config{MaxSessions: 1}})
	code, out := doRun(t, ts.URL, spinRequest(t, 1<<40))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.OK || out.Abort != "steps_exceeded" || out.Fault != nil {
		t.Fatalf("response: %+v", out)
	}
	snap := s.Sink().Snapshot()
	if snap.StepsExceededTotal != 1 || snap.FaultsTotal != 0 || snap.ErrorsTotal != 0 {
		t.Fatalf("metrics: steps=%d faults=%d errors=%d",
			snap.StepsExceededTotal, snap.FaultsTotal, snap.ErrorsTotal)
	}
	st := s.Pool().Stats()
	if st.Quarantined != 0 || st.Retired != 0 || st.Idle != 1 {
		t.Fatalf("pool stats: %+v (session must be recycled, not quarantined)", st)
	}
	// The recycled session serves the next request warm.
	code, out2 := doRun(t, ts.URL, RunRequest{Scheme: "sync", Canned: "safe"})
	if code != http.StatusOK || !out2.OK || out2.Session != out.Session {
		t.Fatalf("recycled session not reused: %d %+v (was %s)", code, out2, out.Session)
	}
}

// TestRunTimeoutCutsOffRunawayProgram pins the -run-timeout behaviour: a
// runaway inline program is cut off by wall-clock deadline — far before its
// step budget — with a 504 and abort="deadline_exceeded", and the lease is
// counted dirty.
func TestRunTimeoutCutsOffRunawayProgram(t *testing.T) {
	s, ts := testServer(t, Config{
		RunTimeout: 150 * time.Millisecond,
		StepBudget: 1 << 40, // the deadline, not fuel, must end the run
		Pool:       pool.Config{MaxSessions: 1},
	})
	start := time.Now()
	code, out := doRun(t, ts.URL, spinRequest(t, 1<<40))
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if out.Abort != "deadline_exceeded" || out.OK {
		t.Fatalf("response: %+v", out)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run-timeout took %v: cut off by MaxSteps, not wall clock", elapsed)
	}
	snap := s.Sink().Snapshot()
	if snap.DeadlineExceededTotal != 1 || snap.FaultsTotal != 0 {
		t.Fatalf("metrics: %+v", snap)
	}
	st := s.Pool().Stats()
	if st.CanceledLeases != 1 || st.Quarantined != 0 {
		t.Fatalf("pool stats: %+v", st)
	}
	if st.Leased != 0 {
		t.Fatalf("leaked lease: %+v", st)
	}
}

// TestClientDisconnectCancelsRun proves r.Context() cancellation reaches the
// interpreter loop: the client walks away mid-run, the server aborts the
// run, counts it canceled, and the session is verifiably recycled.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s, ts := testServer(t, Config{StepBudget: 1 << 40, Pool: pool.Config{MaxSessions: 1}})

	body, _ := json.Marshal(spinRequest(t, 1<<40))
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the run start spinning
	cancel()                           // client disconnects
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned no client error")
	}

	// The server observes the cancel asynchronously; poll until the
	// counters and the lease ledger settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Sink().Snapshot()
		st := s.Pool().Stats()
		if snap.CanceledTotal == 1 && st.Leased == 0 {
			if st.CanceledLeases != 1 {
				t.Fatalf("CanceledLeases = %d", st.CanceledLeases)
			}
			if snap.FaultsTotal != 0 || st.Quarantined != 0 {
				t.Fatalf("cancel misreported as fault: %+v %+v", snap, st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never reconciled: snap=%+v stats=%+v", snap, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunResponseCarriesSpans pins the per-request tracing surface: a
// normal run reports edge/lease/exec/release spans and /metrics aggregates
// them per phase.
func TestRunResponseCarriesSpans(t *testing.T) {
	s, ts := testServer(t, Config{})
	code, out := doRun(t, ts.URL, spinRequest(t, 100))
	if code != http.StatusOK || !out.OK {
		t.Fatalf("%d %+v", code, out)
	}
	want := map[string]bool{"edge": false, "screen": false, "lease": false, "exec": false, "release": false}
	for _, sp := range out.Spans {
		if _, ok := want[sp.Phase]; ok {
			want[sp.Phase] = true
		}
		if sp.DurationNS < 0 {
			t.Fatalf("negative span: %+v", sp)
		}
	}
	for phase, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from response: %+v", phase, out.Spans)
		}
	}
	snap := s.Sink().Snapshot()
	if len(snap.Spans) == 0 {
		t.Fatalf("metrics missing span aggregates")
	}
	for _, st := range snap.Spans {
		if st.Count == 0 {
			t.Fatalf("zero-count span stat: %+v", st)
		}
	}
}
