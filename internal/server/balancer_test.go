package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"mte4jni"
	"mte4jni/internal/pool"
)

// balancerFixture stands up n real backend servers (each with its own pool)
// behind a Balancer and returns the balancer's test server plus the backends,
// so tests can observe both the aggregated and the per-backend counters.
func balancerFixture(t *testing.T, n int, cfg Config) (*Balancer, *httptest.Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		_, ts := testServer(t, cfg)
		backends[i] = ts
		urls[i] = ts.URL
	}
	bal, err := NewBalancer(BalancerConfig{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(bal.Handler())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = bal.Shutdown(ctx)
	})
	return bal, front, backends
}

// A tenant's requests must all land on the backend its affinity key selects —
// the balancer reuses the pool's shard hash, so homing is checkable from the
// outside: every request for one tenant increments exactly one backend's
// requests_total.
func TestBalancerAffinityConsistency(t *testing.T) {
	_, front, backends := balancerFixture(t, 2, Config{})

	const tenant = "affinity-tenant"
	const reqs = 6
	for i := 0; i < reqs; i++ {
		code, out := postRun(t, front, RunRequest{
			Scheme: "sync", Workload: "PDF Renderer", Iterations: 1, Tenant: tenant,
		})
		if code != 200 || !out.OK {
			t.Fatalf("request %d: status %d, %+v", i, code, out)
		}
	}

	home := int(pool.AffinityKey(tenant, mte4jni.MTESync.String()) % uint64(len(backends)))
	for i, ts := range backends {
		var m map[string]any
		getJSON(t, ts, "/metrics", &m)
		got, _ := m["requests_total"].(float64)
		want := 0.0
		if i == home {
			want = reqs
		}
		if got != want {
			t.Fatalf("backend %d requests_total = %v, want %v (home=%d)", i, got, want, home)
		}
	}
}

// The balancer's /metrics is the field-wise sum of the healthy backends'
// documents: spread traffic over tenants homed on both backends and check the
// aggregate reconciles exactly, including the balancer's own routed counters.
func TestBalancerMetricsAggregation(t *testing.T) {
	_, front, _ := balancerFixture(t, 2, Config{})

	tenants := []string{"agg-a", "agg-b", "agg-c", "agg-d"}
	total := 0
	for _, tenant := range tenants {
		for i := 0; i < 3; i++ {
			code, _ := postRun(t, front, RunRequest{
				Scheme: "sync", Workload: "PDF Renderer", Iterations: 1, Tenant: tenant,
			})
			if code != 200 {
				t.Fatalf("tenant %s: status %d", tenant, code)
			}
			total++
		}
	}

	var m map[string]any
	getJSON(t, front, "/metrics", &m)
	if got, _ := m["requests_total"].(float64); got != float64(total) {
		t.Fatalf("aggregated requests_total = %v, want %d", got, total)
	}
	balMap, ok := m["balancer"].(map[string]any)
	if !ok {
		t.Fatalf("no balancer section in aggregated metrics: %v", m)
	}
	if got, _ := balMap["routed_total"].(float64); got != float64(total) {
		t.Fatalf("routed_total = %v, want %d", got, total)
	}
	if got, _ := balMap["backends_reached"].(float64); got != 2 {
		t.Fatalf("backends_reached = %v, want 2", got)
	}
}

// Killing a backend must not strand the tenants homed on it: the first
// forwarded request hits the transport error, demotes the backend, and
// retries the survivor — the client still sees a 200.
func TestBalancerFailover(t *testing.T) {
	bal, front, backends := balancerFixture(t, 2, Config{})

	// Find a tenant homed on backend 0, then kill backend 0.
	tenant := ""
	for i := 0; i < 1000; i++ {
		name := "failover-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		if pool.AffinityKey(name, mte4jni.MTESync.String())%2 == 0 {
			tenant = name
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant hashes to backend 0")
	}
	backends[0].Close()

	code, out := postRun(t, front, RunRequest{
		Scheme: "sync", Workload: "PDF Renderer", Iterations: 1, Tenant: tenant,
	})
	if code != 200 || !out.OK {
		t.Fatalf("failover request: status %d, %+v", code, out)
	}
	if bal.healthy[0].Load() {
		t.Fatal("backend 0 not demoted after transport error")
	}

	// Aggregated metrics must still answer from the survivor alone.
	var m map[string]any
	getJSON(t, front, "/metrics", &m)
	balMap := m["balancer"].(map[string]any)
	if got, _ := balMap["backends_reached"].(float64); got != 1 {
		t.Fatalf("backends_reached = %v, want 1 after failover", got)
	}
}

// A sharded pool behind the server reports one stats row per shard, the rows
// reconcile with the pool totals, and graceful shutdown's per-shard drain
// assertion passes once traffic stops.
func TestServerShardedMetricsAndDrain(t *testing.T) {
	s, ts := testServer(t, Config{Pool: pool.Config{MaxSessions: 4, Shards: 2, HeapSize: 8 << 20}})

	for i := 0; i < 8; i++ {
		tenant := "shard-tenant-" + string(rune('a'+i))
		code, _ := postRun(t, ts, RunRequest{
			Scheme: "sync", Workload: "PDF Renderer", Iterations: 1, Tenant: tenant,
		})
		if code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}

	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if len(m.Pool.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(m.Pool.Shards))
	}
	var leases, created, reused uint64
	for _, sh := range m.Pool.Shards {
		leases += sh.Leases
		created += sh.Created
		reused += sh.Reused
	}
	if leases != 8 {
		t.Fatalf("sum of shard leases = %d, want 8", leases)
	}
	if leases != created+reused {
		t.Fatalf("lease ledger broken: leases=%d created=%d reused=%d", leases, created, reused)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("sharded shutdown drain: %v", err)
	}
}
