package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mte4jni"
	"mte4jni/internal/pool"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Pool.MaxSessions == 0 {
		cfg.Pool.MaxSessions = 4
	}
	if cfg.Pool.HeapSize == 0 {
		cfg.Pool.HeapSize = 8 << 20
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req RunRequest) (int, RunResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Workload: "PDF Renderer", Iterations: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !out.OK || out.Fault != nil || out.Ret != 2 {
		t.Fatalf("response: %+v", out)
	}
	if out.Scheme != mte4jni.MTESync.String() || out.Session == "" {
		t.Fatalf("response: %+v", out)
	}
}

func TestRunCannedFaultReturnsStructuredReport(t *testing.T) {
	s, ts := testServer(t, Config{})
	code, out := postRun(t, ts, RunRequest{Scheme: "async", Canned: "oob"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.OK || out.Fault == nil {
		t.Fatalf("expected fault report, got %+v", out)
	}
	f := out.Fault
	if f.Signature.PC == "" || f.Signature.Workload != "canned:oob" {
		t.Fatalf("fault signature incomplete: %+v", f.Signature)
	}
	if !f.Signature.Async {
		t.Fatal("async-scheme fault not marked async in signature")
	}
	if f.Kind == "" || f.Access == "" || f.Report == "" {
		t.Fatalf("fault detail incomplete: %+v", f)
	}
	// The faulting session must be quarantined, not reused.
	if st := s.Pool().Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}

	// Under no protection the same probe silently corrupts instead.
	code, out = postRun(t, ts, RunRequest{Scheme: "none", Canned: "oob"})
	if code != http.StatusOK || !out.OK || out.Fault != nil {
		t.Fatalf("oob under none: code=%d %+v", code, out)
	}
}

func TestRunInlineProgram(t *testing.T) {
	_, ts := testServer(t, Config{})
	prog := `{
	  "method": {
	    "name": "inline",
	    "maxLocals": 1,
	    "maxRefs": 1,
	    "nativeNames": ["sum"],
	    "code": [
	      {"op": "const", "a": 8},
	      {"op": "newarray"},
	      {"op": "callnative"},
	      {"op": "const", "a": 11},
	      {"op": "return"}
	    ]
	  },
	  "natives": {"sum": {"kind": "regular", "minOffset": 0, "maxOffset": 31}}
	}`
	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Program: json.RawMessage(prog)})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !out.OK || out.Ret != 11 || out.Workload != "inline" {
		t.Fatalf("response: %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, req := range map[string]RunRequest{
		"nothing selected": {},
		"two selected":     {Workload: "PDF Renderer", Canned: "safe"},
		"bad scheme":       {Scheme: "quantum", Canned: "safe"},
		"bad canned":       {Canned: "nope"},
		"bad scale":        {Workload: "PDF Renderer", Scale: "jumbo"},
		"bad program":      {Program: json.RawMessage(`{"method":{"name":"x","code":[{"op":"frobnicate"}]}}`)},
	} {
		if code, _ := postRun(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Malformed requests must not consume sessions or telemetry.
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.RequestsTotal != 0 || m.Pool.Created != 0 {
		t.Fatalf("validation failures consumed resources: %+v", m)
	}
}

func TestMetricsReconcile(t *testing.T) {
	_, ts := testServer(t, Config{})
	const safe, oob = 6, 3
	for i := 0; i < safe; i++ {
		if code, out := postRun(t, ts, RunRequest{Canned: "safe"}); code != 200 || !out.OK {
			t.Fatalf("safe run %d: code=%d %+v", i, code, out)
		}
	}
	for i := 0; i < oob; i++ {
		if code, out := postRun(t, ts, RunRequest{Canned: "oob"}); code != 200 || out.Fault == nil {
			t.Fatalf("oob run %d: code=%d %+v", i, code, out)
		}
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.RequestsTotal != safe+oob || m.FaultsTotal != oob || m.ErrorsTotal != 0 {
		t.Fatalf("metrics: requests=%d faults=%d errors=%d", m.RequestsTotal, m.FaultsTotal, m.ErrorsTotal)
	}
	if m.Latency.Count != safe+oob {
		t.Fatalf("latency count = %d", m.Latency.Count)
	}
	// All three OOB faults are one bug: same PC, same workload, same mode.
	// (Tag pairs can vary across sessions, so allow 1..oob signatures but
	// require the total to reconcile.)
	var sigTotal uint64
	for _, sc := range m.Signatures {
		sigTotal += sc.Count
	}
	if sigTotal != oob || m.UniqueFaultSignatures == 0 {
		t.Fatalf("signature counts %d (unique %d), want total %d", sigTotal, m.UniqueFaultSignatures, oob)
	}
	if m.Pool.Quarantined != oob {
		t.Fatalf("pool quarantined = %d, want %d", m.Pool.Quarantined, oob)
	}
}

func TestSessionsAndHealthEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	// oob first: it quarantines its (fresh) session; the safe run then
	// creates the one session that survives idle.
	postRun(t, ts, RunRequest{Canned: "oob"})
	postRun(t, ts, RunRequest{Canned: "safe"})

	var sess SessionsResponse
	getJSON(t, ts, "/sessions", &sess)
	if len(sess.Sessions) != 1 || sess.Sessions[0].State != "idle" {
		t.Fatalf("sessions: %+v", sess.Sessions)
	}
	if len(sess.Quarantine) != 1 {
		t.Fatalf("quarantine: %+v", sess.Quarantine)
	}

	var h HealthResponse
	getJSON(t, ts, "/health", &h)
	if h.Status != "ok" || h.Capacity != 4 || h.Leased != 0 {
		t.Fatalf("health: %+v", h)
	}
}

// TestConcurrentRequestsWithFaultIsolation is the acceptance-criteria check
// in miniature: concurrent requests, some deliberately faulting, all
// completing with the right per-request verdict and reconciling totals.
func TestConcurrentRequestsWithFaultIsolation(t *testing.T) {
	_, ts := testServer(t, Config{Pool: pool.Config{MaxSessions: 8}})
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := RunRequest{Canned: "safe"}
			if i%4 == 0 {
				req.Canned = "oob"
			}
			if i%2 == 0 {
				req.Scheme = "async"
			}
			code, out := postRunQuiet(ts, req)
			if code != http.StatusOK {
				errs <- fmt.Errorf("req %d: status %d", i, code)
				return
			}
			wantFault := req.Canned == "oob"
			if out.Faulted() != wantFault {
				errs <- fmt.Errorf("req %d (%s): fault=%v want %v", i, req.Canned, out.Faulted(), wantFault)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.RequestsTotal != n || m.FaultsTotal != n/4 {
		t.Fatalf("metrics: requests=%d faults=%d, want %d/%d", m.RequestsTotal, m.FaultsTotal, n, n/4)
	}
}

// Faulted mirrors the client-side check the load generator performs.
func (r RunResponse) Faulted() bool { return r.Fault != nil }

func postRunQuiet(ts *httptest.Server, req RunRequest) (int, RunResponse) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, RunResponse{}
	}
	defer resp.Body.Close()
	var out RunResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}
