package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
)

// postProgram submits an inline program and decodes the 422 rejection when
// one comes back.
func postProgram(t *testing.T, ts *httptest.Server, raw []byte) (int, *RejectResponse) {
	t.Helper()
	body, _ := json.Marshal(RunRequest{Scheme: "sync", Program: raw})
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		return resp.StatusCode, nil
	}
	var rej RejectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &rej
}

// TestScreenRejectsBadPrograms is the acceptance-criteria check: every
// seeded bad program submitted to /run comes back 422 with the structured
// verdict, and no pool session is ever created for any of them.
func TestScreenRejectsBadPrograms(t *testing.T) {
	s, ts := testServer(t, Config{})
	files, err := filepath.Glob("../analysis/testdata/bad/*.json")
	if err != nil || len(files) < 3 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		code, rej := postProgram(t, ts, raw)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", f, code)
			continue
		}
		v := rej.Verdict
		if rej.Error == "" || v == nil || !v.Rejected() {
			t.Errorf("%s: incomplete rejection: %+v", f, rej)
			continue
		}
		if v.Rule != analysis.RuleNativeFault || v.PC < 0 || v.Native == "" || len(v.Provenance) == 0 {
			t.Errorf("%s: verdict missing detail: %+v", f, v)
		}
	}

	// Rejections consume nothing: no sessions, no request traffic — only
	// the screening counters move.
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.Pool.Created != 0 || len(s.Pool().Sessions()) != 0 {
		t.Fatalf("rejected programs consumed sessions: %+v", m.Pool)
	}
	if m.RequestsTotal != 0 || m.Pool.Quarantined != 0 {
		t.Fatalf("rejected programs counted as requests: %+v", m)
	}
	if m.ScreenedTotal != uint64(len(files)) || m.ScreenRejectedTotal != uint64(len(files)) {
		t.Fatalf("screen counters = %d/%d, want %d/%d",
			m.ScreenedTotal, m.ScreenRejectedTotal, len(files), len(files))
	}
}

func TestScreenCacheHitOnResubmit(t *testing.T) {
	s, ts := testServer(t, Config{})
	raw, err := os.ReadFile("../analysis/testdata/bad/use_after_release.json")
	if err != nil {
		t.Fatal(err)
	}
	code, rej := postProgram(t, ts, raw)
	if code != 422 || rej.Verdict.Cached {
		t.Fatalf("first submit: code=%d cached=%v", code, rej != nil && rej.Verdict.Cached)
	}
	code, rej = postProgram(t, ts, raw)
	if code != 422 || !rej.Verdict.Cached {
		t.Fatalf("resubmit: code=%d, verdict not served from cache: %+v", code, rej.Verdict)
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.ScreenedTotal != 2 || m.ScreenRejectedTotal != 2 || m.ScreenCacheHits != 1 {
		t.Fatalf("screen counters = %d/%d/%d, want 2/2/1",
			m.ScreenedTotal, m.ScreenRejectedTotal, m.ScreenCacheHits)
	}
	if hits, misses := s.ScreenCache().Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d/%d, want 1/1", hits, misses)
	}
}

// TestScreenAdmitsSafeAndUnknown: only *provably faulting* programs are
// rejected — safe programs run, and unknown-verdict programs are admitted
// and left to the runtime scheme.
func TestScreenAdmitsSafeAndUnknown(t *testing.T) {
	_, ts := testServer(t, Config{})

	safeRaw, err := analysis.MarshalProgram(pool.SafeProgram())
	if err != nil {
		t.Fatal(err)
	}
	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Program: safeRaw})
	if code != http.StatusOK || !out.OK {
		t.Fatalf("safe program: code=%d %+v", code, out)
	}

	// A native with no behavioural summary screens unknown; the server must
	// admit it (here it fails at run time with a managed error, not a 422).
	unknown := []byte(`{
	  "method": {
	    "name": "unknown", "maxLocals": 1, "maxRefs": 1,
	    "nativeNames": ["mystery"],
	    "code": [
	      {"op": "const", "a": 8},
	      {"op": "newarray"},
	      {"op": "callnative"},
	      {"op": "const", "a": 0},
	      {"op": "return"}
	    ]
	  }
	}`)
	code, out = postRun(t, ts, RunRequest{Scheme: "sync", Program: unknown})
	if code != http.StatusOK {
		t.Fatalf("unknown program: code=%d, want 200 (admitted)", code)
	}
	if out.OK || out.Error == "" {
		t.Fatalf("unknown program should fail at run time: %+v", out)
	}

	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.ScreenedTotal != 2 || m.ScreenRejectedTotal != 0 {
		t.Fatalf("screen counters = %d/%d, want 2/0", m.ScreenedTotal, m.ScreenRejectedTotal)
	}
	if m.RequestsTotal != 2 {
		t.Fatalf("admitted programs must count as requests: %d", m.RequestsTotal)
	}
}

// TestScreenExemptsCannedProbes: the canned oob probe exists to exercise the
// runtime fault path end to end, so it must keep reaching a session even
// though the same program submitted inline is screened out.
func TestScreenExemptsCannedProbes(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Canned: "oob"})
	if code != http.StatusOK || out.Fault == nil {
		t.Fatalf("canned oob: code=%d %+v", code, out)
	}

	oobRaw, err := analysis.MarshalProgram(pool.OOBProgram())
	if err != nil {
		t.Fatal(err)
	}
	if code, rej := postProgram(t, ts, oobRaw); code != 422 || rej.Verdict == nil {
		t.Fatalf("inline oob: code=%d, want 422", code)
	}
}

// TestScreenRejectsAllBadProgramBuilders: the load generator's -reject-rate
// corpus must actually be rejected, each with its own provenance shape.
func TestScreenRejectsAllBadProgramBuilders(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, name := range pool.BadProgramNames {
		p := pool.BadProgram(name)
		if p == nil {
			t.Fatalf("no builder for %s", name)
		}
		raw, err := analysis.MarshalProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		code, rej := postProgram(t, ts, raw)
		if code != 422 || rej.Verdict == nil || len(rej.Verdict.Provenance) == 0 {
			t.Errorf("%s: code=%d rej=%+v", name, code, rej)
		}
	}
}
