// Package server implements the mte4jni serving daemon: an HTTP/JSON front
// end over the session pool (internal/pool) and the fault-telemetry sink
// (internal/report). It is the multi-tenant deployment shape of the paper's
// runtime — many mutually untrusting requests share one daemon, each runs in
// an isolated pooled VM under its chosen protection scheme, and an MTE fault
// comes back to its caller as a structured crash report while every other
// in-flight request is untouched.
//
// Endpoints (all JSON):
//
//	POST /run      — execute a workload, a bytecode program, or a canned
//	                 probe in a leased session
//	GET  /sessions — live sessions, pool stats, quarantine history
//	GET  /health   — liveness and uptime
//	GET  /metrics  — request/fault/latency counters and the deduplicated
//	                 fault-signature table
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"mte4jni"
	"mte4jni/internal/analysis"
	"mte4jni/internal/exec"
	"mte4jni/internal/jni"
	"mte4jni/internal/pool"
	"mte4jni/internal/report"
	"mte4jni/internal/workloads"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499) a run
// ended by client disconnect is answered with — the connection is usually
// gone, but tests and proxies still see the distinction from 503/504.
const StatusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// Pool sizes the session pool.
	Pool pool.Config
	// SinkCapacity bounds the fault ring (report.DefaultSinkCapacity when 0).
	SinkCapacity int
	// AcquireTimeout bounds how long a request waits for a session before
	// the server sheds it with 503 (default 5s).
	AcquireTimeout time.Duration
	// ScreenCacheSize bounds the admission-screen verdict cache
	// (analysis.DefaultScreenCacheSize when 0).
	ScreenCacheSize int
	// RunTimeout bounds one request end to end — lease wait included —
	// via the execution context's deadline. Expiry returns 504 with
	// abort="deadline_exceeded". Zero disables the per-run deadline.
	RunTimeout time.Duration
	// StepBudget bounds interpreter steps per inline-program run; exhaustion
	// returns 200 with abort="steps_exceeded" and the session is recycled,
	// not quarantined. Zero uses the interpreter's own default (1<<24).
	StepBudget int64
	// TemporalPolicy decides what to do with an inline program whose
	// temporal exposure class is live under the requested scheme's check
	// placement: reject (422, the default), force-sync (transparently
	// downgrade the run to MTE sync — per-access checking closes the
	// window), or log (count only). Empty means reject.
	TemporalPolicy analysis.TemporalPolicy
}

// Server is the serving daemon. Create with New, mount via Handler, stop
// with Shutdown.
type Server struct {
	cfg    Config
	pool   *pool.Pool
	sink   *report.Sink
	screen *analysis.ScreenCache
	start  time.Time
	http   *http.Server

	// safeElide lazily compiles the elision proofs for the canned "safe"
	// probe — once per server, outside the screened_total accounting (canned
	// probes are exempt from admission screening by design).
	safeElideOnce sync.Once
	safeElide     *analysis.Elision
}

// New builds a Server and its pool.
func New(cfg Config) *Server {
	if cfg.AcquireTimeout <= 0 {
		cfg.AcquireTimeout = 5 * time.Second
	}
	if cfg.TemporalPolicy == "" {
		cfg.TemporalPolicy = analysis.TemporalReject
	}
	s := &Server{
		cfg:    cfg,
		pool:   pool.New(cfg.Pool),
		sink:   report.NewSink(cfg.SinkCapacity),
		screen: analysis.NewScreenCache(cfg.ScreenCacheSize),
		start:  time.Now(),
	}
	// The admission policy is part of the screen-cache key: a verdict
	// computed under one policy is never served under another.
	s.screen.SetTemporalPolicy(cfg.TemporalPolicy)
	// /metrics pulls the hierarchical tag-storage gauges straight from the
	// pool's session spaces at snapshot time.
	s.sink.SetTagStatsProvider(func() report.TagTableStats {
		ts := s.pool.TagStats()
		return report.TagTableStats{
			TagPagesMaterialized: ts.PagesMaterialized,
			TagPagesUniform:      ts.PagesUniform,
			TagZeroDedupHits:     ts.ZeroDedupHits,
			TagDirsMaterialized:  ts.DirsMaterialized,
			TagDirBytes:          ts.DirBytes,
			TagBytesResident:     ts.BytesResident,
			TagBytesFlatEquiv:    ts.BytesFlatEquiv,
		}
	})
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	return s
}

// Pool exposes the session pool, for tests.
func (s *Server) Pool() *pool.Pool { return s.pool }

// Sink exposes the telemetry sink, for tests.
func (s *Server) Sink() *report.Sink { return s.sink }

// ScreenCache exposes the admission-screen verdict cache, for tests.
func (s *Server) ScreenCache() *analysis.ScreenCache { return s.screen }

// safeElision returns the compiled elision for the canned "safe" probe,
// screening it on first use. The probe is byte-stable, so one compilation
// serves every request; the screen bypasses the cache and the telemetry
// counters, keeping screened_total a pure inline-program metric.
func (s *Server) safeElision() *analysis.Elision {
	s.safeElideOnce.Do(func() {
		if v := analysis.Screen(pool.SafeProgram()); v.Verdict == analysis.VerdictSafe {
			s.safeElide = v.Elision
		}
	})
	return s.safeElide
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully drains in-flight requests, then closes the pool
// (unmapping every session's heaps; shards drain concurrently). After a
// clean HTTP drain every lease has been released, so the per-shard token
// ledgers must balance exactly — a drain imbalance is reported as a
// shutdown error rather than silently leaking a session.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.pool.Close()
	if err != nil {
		return err
	}
	return s.pool.AssertDrained()
}

// ParseScheme accepts both the paper's display names ("MTE4JNI+Sync") and
// the wire-friendly short forms used by the serve/load CLIs.
func ParseScheme(text string) (mte4jni.Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(text)) {
	case "", "mte+sync", "mte-sync", "sync":
		return mte4jni.MTESync, nil
	case "mte+async", "mte-async", "async":
		return mte4jni.MTEAsync, nil
	case "none", "no-protection":
		return mte4jni.NoProtection, nil
	case "guarded", "guarded-copy", "guardedcopy":
		return mte4jni.GuardedCopy, nil
	}
	var sc mte4jni.Scheme
	if err := sc.UnmarshalText([]byte(text)); err != nil {
		return 0, fmt.Errorf("server: unknown scheme %q (try none, guarded, sync, async)", text)
	}
	return sc, nil
}

// placementForScheme maps a requested protection scheme to where its checks
// actually run — the placement the temporal exposure matrix is evaluated
// against. Sync checks per access and NoProtection never checks; neither is
// ever downgraded or rejected on temporal grounds.
func placementForScheme(sc mte4jni.Scheme) jni.CheckPlacement {
	switch sc {
	case mte4jni.MTESync:
		return jni.PlacePerAccess
	case mte4jni.MTEAsync:
		return jni.PlaceTrampolineExit
	case mte4jni.GuardedCopy:
		return jni.PlaceAtRelease
	}
	return jni.PlaceNever
}

// RunRequest is the POST /run body. Exactly one of Workload, Program or
// Canned selects what to execute.
type RunRequest struct {
	// Scheme selects the protection scheme (default MTE4JNI+Sync); see
	// ParseScheme for accepted spellings.
	Scheme string `json:"scheme,omitempty"`
	// Workload names a GeekBench-style built-in workload.
	Workload string `json:"workload,omitempty"`
	// Scale is "small" (default) or "default" (benchmark sizes).
	Scale string `json:"scale,omitempty"`
	// Iterations repeats the workload's native call (default 1).
	Iterations int `json:"iterations,omitempty"`
	// Program is an inline bytecode program in the analysis JSON format —
	// the same artifact `mte4jni lint` consumes.
	Program json.RawMessage `json:"program,omitempty"`
	// Canned selects a built-in probe: "safe" (never faults), "oob"
	// (deterministically faults under the MTE schemes), or "attack" (the
	// serving-tier red-team probe: one forged-tag store, detected under the
	// MTE schemes, landing silently under the others).
	Canned string `json:"canned,omitempty"`
	// Tenant attributes the request to a tenant for the pool's escalating
	// defense policy (per-tenant fault tracking, throttling, quarantine,
	// tag reseed). Empty bypasses the policy; it is a no-op unless the
	// server was started with the defense thresholds configured.
	Tenant string `json:"tenant,omitempty"`
}

// RunResponse is the POST /run reply. A fault is a successful HTTP exchange:
// the protection scheme did its job, and Fault carries the structured crash
// report the serving layer exists to deliver.
type RunResponse struct {
	Session    string `json:"session"`
	Scheme     string `json:"scheme"`
	Workload   string `json:"workload"`
	OK         bool   `json:"ok"`
	Ret        int64  `json:"ret,omitempty"`
	DurationNS int64  `json:"duration_ns"`
	Error      string `json:"error,omitempty"`
	// Abort distinguishes the policy cutoffs from faults and errors:
	// "canceled" (client disconnect, HTTP 499), "deadline_exceeded"
	// (-run-timeout, HTTP 504), "steps_exceeded" (fuel budget, HTTP 200 —
	// the request was served, the program was just cut off). Empty when the
	// run was not aborted.
	Abort string `json:"abort,omitempty"`
	// Spans are the request's lifecycle phase timings (edge → screen →
	// lease → exec → release) from the execution-context recorder.
	Spans []exec.Span         `json:"spans,omitempty"`
	Fault *report.FaultRecord `json:"fault,omitempty"`
	// ElidedSites counts the statically proven guard-free sites this run was
	// bound with; ElisionInvalidated reports the proofs fell back to checked
	// access mid-run. Both zero for runs without a compiled elision.
	ElidedSites        int  `json:"elided_sites,omitempty"`
	ElisionInvalidated bool `json:"elision_invalidated,omitempty"`
}

// RejectResponse is the 422 reply for a program the static admission screen
// proves will fault: the human-readable error plus the full machine-readable
// verdict (rule, pc, native, provenance chain).
type RejectResponse struct {
	Error   string                  `json:"error"`
	Verdict *analysis.ScreenVerdict `json:"verdict"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}

	// The execution context is born here, at the HTTP edge, and is the one
	// object threaded through screening, the pool lease, the session, the
	// JNI trampolines and the interpreter loop. It wraps r.Context(), so a
	// client disconnect cancels the whole chain; RunTimeout adds the per-run
	// deadline on top (covering lease wait too — a slow queue eats into the
	// same budget the run does).
	reqCtx := r.Context()
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, s.cfg.RunTimeout)
		defer cancel()
	}
	ec := exec.New(reqCtx, exec.Options{StepBudget: s.cfg.StepBudget})

	ec.Begin(exec.PhaseEdge)
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// A disconnect racing the body read is a cancellation, not a bad
		// request — count it so the canceled_total delta stays exact no
		// matter which phase the cancel lands in.
		if ec.Canceled() != nil {
			s.sink.ObserveAbort(exec.AbortCanceled)
			jsonError(w, StatusClientClosedRequest, "client canceled during request read")
			return
		}
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Resolve what to run before taking a session, so admission is never
	// consumed by malformed requests.
	var (
		prog     *analysis.Program
		elision  *analysis.Elision
		workload string
	)
	selected := 0
	if req.Workload != "" {
		selected++
		workload = req.Workload
	}
	if len(req.Program) > 0 {
		selected++
		// Static admission screen: inline programs the analyzer proves will
		// fault are rejected here with the structured verdict, before any
		// session is leased or quarantine slot risked. Canned probes are
		// deliberately exempt — they exist to exercise the runtime fault
		// path end to end.
		ec.Begin(exec.PhaseScreen)
		verdict, cacheHit, serr := s.screen.ScreenBytes(req.Program)
		ec.End(exec.PhaseScreen)
		if serr != nil {
			jsonError(w, http.StatusBadRequest, "bad program: %v", serr)
			return
		}
		s.sink.ObserveScreen(verdict.Rejected(), cacheHit)
		// Temporal enforcement: findings whose exposure class is live under
		// the requested scheme's check placement. Counted for every flagged
		// verdict (cache hits included); the policy acts only on admitted
		// programs — a provably-faulting program is the screen 422's to
		// reject, with the temporal findings riding along in the verdict.
		var exposedFinding *analysis.TemporalFinding
		if len(verdict.Temporal) > 0 {
			place := placementForScheme(scheme)
			classes := make([]string, 0, len(verdict.Temporal))
			for i := range verdict.Temporal {
				f := &verdict.Temporal[i]
				classes = append(classes, string(f.Class))
				if exposedFinding == nil && f.Class.ExposedUnder(place) {
					exposedFinding = f
				}
			}
			temporalReject := exposedFinding != nil && !verdict.Rejected() &&
				s.cfg.TemporalPolicy == analysis.TemporalReject
			s.sink.ObserveTemporal(classes, temporalReject)
		}
		if verdict.Rejected() {
			writeJSON(w, http.StatusUnprocessableEntity, RejectResponse{
				Error:   fmt.Sprintf("program rejected by static admission screen: %s", verdict.Reason),
				Verdict: verdict,
			})
			return
		}
		if exposedFinding != nil {
			switch s.cfg.TemporalPolicy {
			case analysis.TemporalReject:
				writeJSON(w, http.StatusUnprocessableEntity, RejectResponse{
					Error: fmt.Sprintf("program rejected by temporal screening (%s under %s): %s",
						exposedFinding.Class, scheme, exposedFinding.Reason),
					Verdict: verdict,
				})
				return
			case analysis.TemporalForceSync:
				// Per-access checking closes the window; the response's
				// scheme field reports the downgrade.
				scheme = mte4jni.MTESync
			}
		}
		prog, err = analysis.ParseProgram(req.Program)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad program: %v", err)
			return
		}
		// A safe verdict carries its compiled elision proofs; binding them to
		// the freshly parsed program is re-validated inside RunProgramElided.
		elision = verdict.Elision
		workload = prog.Method.Name
	}
	attack := false
	if req.Canned != "" {
		selected++
		switch req.Canned {
		case "safe":
			prog = pool.SafeProgram()
			elision = s.safeElision()
		case "oob":
			prog = pool.OOBProgram()
		case "attack":
			attack = true
		default:
			jsonError(w, http.StatusBadRequest, "unknown canned probe %q (safe, oob, attack)", req.Canned)
			return
		}
		workload = "canned:" + req.Canned
	}
	if selected != 1 {
		jsonError(w, http.StatusBadRequest, "exactly one of workload, program, canned must be set")
		return
	}
	scale := workloads.ScaleSmall
	switch req.Scale {
	case "", "small":
	case "default":
		scale = workloads.ScaleDefault
	default:
		jsonError(w, http.StatusBadRequest, "unknown scale %q (small, default)", req.Scale)
		return
	}
	ec.End(exec.PhaseEdge)

	// The acquire timeout layers on the execution context, so whichever
	// expires first — queue-shed deadline, run deadline, client disconnect —
	// ends the wait; errIsOverload below tells the cases apart.
	acquireCtx, cancel := context.WithTimeout(ec, s.cfg.AcquireTimeout)
	defer cancel()
	start := time.Now()
	ec.Begin(exec.PhaseLease)
	sess, err := s.pool.AcquireFor(acquireCtx, scheme, req.Tenant)
	ec.End(exec.PhaseLease)
	if err != nil {
		switch {
		case errors.Is(err, pool.ErrTenantQuarantined):
			// The escalating defense refused this tenant before any token
			// was taken: the refusal is free for the pool and costly for
			// the attacker.
			jsonError(w, http.StatusTooManyRequests, "tenant quarantined: %v", err)
		case exec.Classify(ec.Err()) == exec.AbortDeadline:
			s.sink.ObserveAbort(exec.AbortDeadline)
			jsonError(w, http.StatusGatewayTimeout, "run timeout while waiting for a session: %v", err)
		case exec.Classify(ec.Err()) == exec.AbortCanceled:
			s.sink.ObserveAbort(exec.AbortCanceled)
			jsonError(w, StatusClientClosedRequest, "client canceled while waiting for a session")
		case errors.Is(err, pool.ErrOverloaded), errors.Is(err, context.DeadlineExceeded):
			jsonError(w, http.StatusServiceUnavailable, "overloaded: %v", err)
		case errors.Is(err, pool.ErrClosed):
			jsonError(w, http.StatusServiceUnavailable, "shutting down")
		default:
			jsonError(w, http.StatusInternalServerError, "acquire: %v", err)
		}
		return
	}
	ec.Begin(exec.PhaseExec)
	var res *pool.RunResult
	switch {
	case attack:
		res = sess.RunAttackProbe(ec)
	case prog != nil:
		res = sess.RunProgramElided(ec, prog, elision)
	default:
		res = sess.RunWorkload(ec, workload, scale, req.Iterations)
	}
	ec.End(exec.PhaseExec)
	abort := exec.Classify(res.Err)
	resp := RunResponse{
		Session:            sess.Name(),
		Scheme:             scheme.String(),
		Workload:           workload,
		OK:                 !res.Faulted() && res.Err == nil,
		Ret:                res.Ret,
		DurationNS:         res.Duration.Nanoseconds(),
		Abort:              abort.String(),
		ElidedSites:        res.ElidedSites,
		ElisionInvalidated: res.ElisionInvalidated,
	}
	if res.ElidedSites > 0 || res.ElisionInvalidated {
		s.sink.ObserveElision(uint64(res.ElidedSites), res.ElisionInvalidated)
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	if res.Faulted() {
		rec, _ := s.sink.RecordFault(sess.Name(), workload, res.Fault)
		resp.Fault = &rec
		// Per-tenant fault attribution feeds the escalation state machine
		// for every faulting run, not just the canned attack probe — a real
		// brute-forcer ships its own programs.
		s.pool.ObserveFault(req.Tenant)
	}
	if attack {
		s.sink.ObserveAttackProbe(scheme.String(), 1, res.Faulted(), res.Duration)
	}
	ec.Begin(exec.PhaseRelease)
	s.pool.Release(sess)
	ec.End(exec.PhaseRelease)

	resp.Spans = ec.Spans()
	s.sink.ObserveAbort(abort)
	s.sink.ObserveSpans(resp.Spans)
	// Aborts carry their own counters; failed counts only genuine errors.
	s.sink.ObserveRequest(time.Since(start), res.Faulted(), res.Err != nil && abort == exec.AbortNone)
	status := http.StatusOK
	switch abort {
	case exec.AbortCanceled:
		// The client is almost certainly gone; the status is for proxies,
		// tests and logs.
		status = StatusClientClosedRequest
	case exec.AbortDeadline:
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, resp)
}

// SessionsResponse is the GET /sessions reply.
type SessionsResponse struct {
	Stats      pool.Stats              `json:"stats"`
	Sessions   []pool.SessionInfo      `json:"sessions"`
	Quarantine []pool.QuarantineRecord `json:"quarantine,omitempty"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SessionsResponse{
		Stats:      s.pool.Stats(),
		Sessions:   s.pool.Sessions(),
		Quarantine: s.pool.Quarantined(),
	})
}

// HealthResponse is the GET /health reply.
type HealthResponse struct {
	Status   string `json:"status"`
	UptimeNS int64  `json:"uptime_ns"`
	Capacity int    `json:"capacity"`
	Leased   int    `json:"leased"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Capacity: st.Capacity,
		Leased:   st.Leased,
	})
}

// MetricsResponse is the GET /metrics reply: the telemetry snapshot plus the
// pool's own accounting, one reconciliation surface for load generators.
type MetricsResponse struct {
	report.TelemetrySnapshot
	Pool pool.Stats `json:"pool"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{
		TelemetrySnapshot: s.sink.Snapshot(),
		Pool:              s.pool.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
