package server

import (
	"net/http"
	"testing"
	"time"

	"mte4jni/internal/pool"
)

// The canned attack probe is deterministic per scheme and drives the
// adversarial telemetry: probes always count, detections only under the
// MTE schemes.
func TestAttackProbeEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})

	cases := []struct {
		scheme   string
		detected bool
	}{
		{"sync", true},
		{"async", true},
		{"guarded", false},
		{"none", false},
	}
	for _, tc := range cases {
		code, out := postRun(t, ts, RunRequest{Scheme: tc.scheme, Canned: "attack"})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.scheme, code)
		}
		if detected := out.Fault != nil; detected != tc.detected {
			t.Fatalf("%s: fault=%v, want detected=%v", tc.scheme, out.Fault, tc.detected)
		}
		if out.Workload != "canned:attack" {
			t.Fatalf("%s: workload %q", tc.scheme, out.Workload)
		}
	}

	// One clean sync run, so at least one tagged session is alive in the
	// idle ring when /metrics is read below.
	if code, out := postRun(t, ts, RunRequest{Scheme: "sync", Canned: "safe"}); code != http.StatusOK || !out.OK {
		t.Fatalf("safe run: status %d, %+v", code, out)
	}

	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.AttackProbesTotal != 4 {
		t.Fatalf("attack_probes_total = %d, want 4", m.AttackProbesTotal)
	}
	if m.DetectionsTotal != 2 {
		t.Fatalf("detections_total = %d, want 2 (sync + async)", m.DetectionsTotal)
	}
	if len(m.AttackSchemes) != 4 {
		t.Fatalf("attack_schemes rows = %d, want 4", len(m.AttackSchemes))
	}
	for _, sc := range m.AttackSchemes {
		want := 0.0
		if sc.Scheme == "MTE4JNI+Sync" || sc.Scheme == "MTE4JNI+Async" {
			want = 1.0
		}
		if sc.DetectionProbability != want {
			t.Fatalf("%s detection probability = %v, want %v", sc.Scheme, sc.DetectionProbability, want)
		}
	}
	// Both detections were first-probe detections.
	if len(m.ProbesToDetectBuckets) == 0 || m.ProbesToDetectBuckets[0] != 2 {
		t.Fatalf("probes_to_detect_buckets = %v, want 2 in the k<=1 bucket", m.ProbesToDetectBuckets)
	}
	// Detected probes count as faults and quarantine their session like any
	// other MTE fault.
	if m.FaultsTotal != 2 || m.Pool.Quarantined != 2 {
		t.Fatalf("faults=%d quarantined=%d, want 2/2", m.FaultsTotal, m.Pool.Quarantined)
	}
	// The MTE sessions tagged their target arrays, so the lazily allocated
	// tag directories must be accounted: the monotonic materialization
	// count covers the quarantined sessions too, and the live idle sync
	// session keeps the directory-bytes gauge nonzero. The two counters
	// are wired independently and have desynced before.
	if m.TagDirsMaterialized == 0 || m.TagDirBytes == 0 {
		t.Fatalf("tag_dirs_materialized_total=%d tag_dir_bytes=%d, want both nonzero",
			m.TagDirsMaterialized, m.TagDirBytes)
	}
}

// End-to-end escalation: a tenant hammering the attack probe is throttled
// and then refused with 429, and the /metrics pool counters reconcile
// exactly with the request history.
func TestTenantEscalationOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{
		Pool: pool.Config{
			MaxSessions: 2,
			HeapSize:    1 << 20,
			Defense: pool.DefenseConfig{
				DelayThreshold:      2,
				QuarantineThreshold: 4,
				Delay:               100 * time.Microsecond,
			},
		},
	})

	const attempts = 10
	refused := 0
	for i := 0; i < attempts; i++ {
		code, out := postRun(t, ts, RunRequest{Scheme: "sync", Canned: "attack", Tenant: "evil"})
		switch code {
		case http.StatusOK:
			if out.Fault == nil {
				t.Fatalf("attempt %d: probe undetected", i)
			}
		case http.StatusTooManyRequests:
			refused++
		default:
			t.Fatalf("attempt %d: status %d", i, code)
		}
	}
	if refused != attempts-4 {
		t.Fatalf("refused = %d, want %d (quarantine after 4 detected faults)", refused, attempts-4)
	}

	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	// Refused admissions never reach execution: requests_total counts only
	// the 4 served probes, and each one was detected.
	if m.RequestsTotal != 4 || m.DetectionsTotal != 4 || m.AttackProbesTotal != 4 {
		t.Fatalf("requests=%d detections=%d probes=%d, want 4/4/4",
			m.RequestsTotal, m.DetectionsTotal, m.AttackProbesTotal)
	}
	if m.Pool.ThrottledTotal != 2 {
		t.Fatalf("throttled_total = %d, want 2", m.Pool.ThrottledTotal)
	}
	if m.Pool.TenantsQuarantined != 1 {
		t.Fatalf("tenants_quarantined_total = %d, want 1", m.Pool.TenantsQuarantined)
	}
	if m.Pool.ReseedsTotal != 2 {
		t.Fatalf("reseeds_total = %d, want 2 (one per tier crossing)", m.Pool.ReseedsTotal)
	}
	// An honest tenant is unaffected by the quarantine.
	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Workload: "PDF Renderer", Tenant: "honest"})
	if code != http.StatusOK || !out.OK {
		t.Fatalf("honest tenant: status %d, %+v", code, out)
	}
}

// Without the defense configured, tenant attribution is inert: no
// throttling, no refusals, no reseeds — the serving counters the smoke
// tests pin stay exactly as before.
func TestDefenseDisabledByDefault(t *testing.T) {
	_, ts := testServer(t, Config{})
	for i := 0; i < 6; i++ {
		code, out := postRun(t, ts, RunRequest{Scheme: "sync", Canned: "attack", Tenant: "evil"})
		if code != http.StatusOK || out.Fault == nil {
			t.Fatalf("attempt %d: status %d, %+v", i, code, out)
		}
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.Pool.ThrottledTotal != 0 || m.Pool.TenantsQuarantined != 0 || m.Pool.ReseedsTotal != 0 {
		t.Fatalf("defense counters moved while disabled: %+v", m.Pool)
	}
	if m.AttackProbesTotal != 6 || m.DetectionsTotal != 6 {
		t.Fatalf("probes=%d detections=%d, want 6/6", m.AttackProbesTotal, m.DetectionsTotal)
	}
}
