package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mte4jni/internal/pool"
)

// Balancer is the built-in L7 front for `mte4jni serve -cluster`: several
// independent serve daemons (each its own process, pool and tag space)
// behind one address. Routing reuses the pool's affinity hash — a /run
// request's {tenant, scheme} picks the backend the same way it picks a
// shard inside one daemon — so a tenant's warm sessions, primed elision
// state and defense-ladder standing all live on one backend instead of
// being smeared across the cluster. The hash is consistent: backend k
// serves key%N, and an unhealthy backend's keys advance to the next
// healthy one (and return home when it recovers).
//
// Health is observed two ways: a background /health probe every
// HealthInterval demotes and restores backends, and a transport error on a
// forwarded request demotes the backend immediately and retries the next
// one — the probe loop alone would let every request between failure and
// detection die with the backend.
type Balancer struct {
	cfg     BalancerConfig
	client  *http.Client
	http    *http.Server
	healthy []atomic.Bool
	routed  []atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	probes   sync.WaitGroup
}

// BalancerConfig configures a Balancer.
type BalancerConfig struct {
	// Backends are the daemons' base URLs ("http://127.0.0.1:PORT").
	Backends []string
	// HealthInterval paces the background /health probe (default 500ms).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
}

// NewBalancer builds a Balancer over the given backends. Every backend
// starts healthy: a dead one is demoted by the first probe or the first
// forwarded request to hit it, whichever comes first.
func NewBalancer(cfg BalancerConfig) (*Balancer, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("balancer: no backends")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	b := &Balancer{
		cfg:     cfg,
		client:  &http.Client{Timeout: 120 * time.Second},
		healthy: make([]atomic.Bool, len(cfg.Backends)),
		routed:  make([]atomic.Uint64, len(cfg.Backends)),
		stop:    make(chan struct{}),
	}
	for i := range b.healthy {
		b.healthy[i].Store(true)
	}
	b.http = &http.Server{
		Handler:           b.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return b, nil
}

// Handler returns the balancer's route table.
func (b *Balancer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", b.handleRun)
	mux.HandleFunc("/health", b.handleHealth)
	mux.HandleFunc("/metrics", b.handleMetrics)
	return mux
}

// Serve starts the health-probe loop and accepts connections on l until
// Shutdown.
func (b *Balancer) Serve(l net.Listener) error {
	b.probes.Add(1)
	go b.probeLoop()
	err := b.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops probing and gracefully drains in-flight forwards. The
// backends are separate processes and are not stopped here — the cluster
// entrypoint owns their lifecycle (serve.go forwards SIGTERM and waits).
func (b *Balancer) Shutdown(ctx context.Context) error {
	b.stopOnce.Do(func() { close(b.stop) })
	err := b.http.Shutdown(ctx)
	b.probes.Wait()
	return err
}

// probeLoop polls every backend's /health on the configured cadence,
// demoting the unreachable and restoring the recovered.
func (b *Balancer) probeLoop() {
	defer b.probes.Done()
	probe := &http.Client{Timeout: b.cfg.ProbeTimeout}
	tick := time.NewTicker(b.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-tick.C:
		}
		for i, base := range b.cfg.Backends {
			resp, err := probe.Get(base + "/health")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			b.healthy[i].Store(ok)
		}
	}
}

// handleRun decodes just enough of the body to compute the affinity key,
// then forwards the raw bytes to the key's backend, walking forward past
// unhealthy ones. A transport failure demotes the backend and retries the
// next; only with every backend down does the client see a 503.
func (b *Balancer) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		jsonError(w, StatusClientClosedRequest, "reading request body: %v", err)
		return
	}
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The same key the backend's own shard router will hash — one routing
	// function end to end, whether the hop is a backend pick or a shard
	// index (see pool.AffinityKey).
	key := pool.AffinityKey(req.Tenant, scheme.String())
	n := len(b.cfg.Backends)
	for off := 0; off < n; off++ {
		idx := int((key + uint64(off)) % uint64(n))
		if !b.healthy[idx].Load() {
			continue
		}
		fwd, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			b.cfg.Backends[idx]+"/run", bytes.NewReader(body))
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "forward: %v", err)
			return
		}
		fwd.Header.Set("Content-Type", "application/json")
		resp, err := b.client.Do(fwd)
		if err != nil {
			if r.Context().Err() != nil {
				// The client walked away, not the backend: do not demote.
				jsonError(w, StatusClientClosedRequest, "client canceled")
				return
			}
			b.healthy[idx].Store(false)
			continue
		}
		b.routed[idx].Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	jsonError(w, http.StatusServiceUnavailable, "no healthy backend")
}

// BalancerHealth is the balancer's GET /health reply.
type BalancerHealth struct {
	Status   string `json:"status"`
	Backends int    `json:"backends"`
	Healthy  int    `json:"healthy"`
}

func (b *Balancer) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := 0
	for i := range b.healthy {
		if b.healthy[i].Load() {
			h++
		}
	}
	status, code := "ok", http.StatusOK
	if h == 0 {
		status, code = "down", http.StatusServiceUnavailable
	}
	writeJSON(w, code, BalancerHealth{Status: status, Backends: len(b.cfg.Backends), Healthy: h})
}

// handleMetrics aggregates the cluster's counters: every backend's /metrics
// document, summed field by field (mergeNumeric), plus the balancer's own
// routing accounting under "balancer". Load generators reconcile against
// this exactly as against one daemon — every counter they check is a sum of
// per-backend sums.
func (b *Balancer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged := map[string]any{}
	reached := 0
	for i, base := range b.cfg.Backends {
		if !b.healthy[i].Load() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := b.client.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			if err == nil {
				resp.Body.Close()
			}
			continue
		}
		var doc map[string]any
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			continue
		}
		merged = mergeNumeric(merged, doc).(map[string]any)
		reached++
	}
	if reached == 0 {
		jsonError(w, http.StatusServiceUnavailable, "no healthy backend")
		return
	}
	routed := make([]uint64, len(b.cfg.Backends))
	var total uint64
	for i := range b.routed {
		routed[i] = b.routed[i].Load()
		total += routed[i]
	}
	merged["balancer"] = map[string]any{
		"backends":         len(b.cfg.Backends),
		"backends_reached": reached,
		"routed_total":     total,
		"backend_routed":   routed,
	}
	writeJSON(w, http.StatusOK, merged)
}

// mergeNumeric folds src into dst: numbers add, objects merge recursively,
// arrays merge element-wise (a cluster of equal-shard backends yields the
// per-index sum of their shard tables), and non-numeric scalars keep the
// first value seen. Returns the merged value.
func mergeNumeric(dst, src any) any {
	switch s := src.(type) {
	case float64:
		if d, ok := dst.(float64); ok {
			return d + s
		}
		return s
	case map[string]any:
		d, ok := dst.(map[string]any)
		if !ok {
			d = map[string]any{}
		}
		for k, v := range s {
			d[k] = mergeNumeric(d[k], v)
		}
		return d
	case []any:
		d, ok := dst.([]any)
		if !ok {
			return s
		}
		for i, v := range s {
			if i < len(d) {
				d[i] = mergeNumeric(d[i], v)
			} else {
				d = append(d, v)
			}
		}
		return d
	default:
		if dst != nil {
			return dst
		}
		return src
	}
}
