package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mte4jni"
	"mte4jni/internal/analysis"
	"mte4jni/internal/redteam"
)

// postProgramScheme submits an inline program under the given scheme and
// decodes the 422 rejection when one comes back.
func postProgramScheme(t *testing.T, ts *httptest.Server, scheme string, raw []byte) (int, *RejectResponse) {
	t.Helper()
	body, _ := json.Marshal(RunRequest{Scheme: scheme, Program: raw})
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		return resp.StatusCode, nil
	}
	var rej RejectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &rej
}

// blindSpotPrograms returns the four guarded-copy blind-spot entries of the
// red-team corpus in wire form, keyed by name.
func blindSpotPrograms(t *testing.T) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, cp := range redteam.CorpusPrograms() {
		if cp.WantClass != analysis.WindowGuardedCopyBlindSpot {
			continue
		}
		raw, err := analysis.MarshalProgram(cp.Program)
		if err != nil {
			t.Fatal(err)
		}
		out[cp.Name] = raw
	}
	if len(out) != 4 {
		t.Fatalf("want 4 blind-spot corpus programs, got %d", len(out))
	}
	return out
}

// TestTemporalGoldenRejectionChains: every guarded-copy blind-spot program
// submitted under the guarded scheme comes back 422 — by the fault screen or
// by the temporal policy — and the payload carries the human-readable
// alloc → acquire → interfering-write → late-check chain that justifies it.
func TestTemporalGoldenRejectionChains(t *testing.T) {
	_, ts := testServer(t, Config{})

	// The attack spine is const@0, newarray@1, callnative@2: the chain
	// renders identically for all four programs.
	const goldenChain = "alloc@1 → acquire@2 → interfering-write@2 → late-check@2"
	wantReason := map[string]string{
		"guardedcopy/oob-read":    "out-of-bounds read at offset 72 corrupts no canary",
		"guardedcopy/far-jump":    "far out-of-bounds write at offset 4192 lands beyond both red zones",
		"guardedcopy/lost-update": "lost update: the release copy-back overwrites a managed write",
		"guardedcopy/deferred":    "deferred detection: 4 damage writes are banked",
	}
	for name, raw := range blindSpotPrograms(t) {
		code, rej := postProgramScheme(t, ts, "guarded", raw)
		if code != http.StatusUnprocessableEntity || rej == nil {
			t.Errorf("%s: status %d, want 422", name, code)
			continue
		}
		if rej.Error == "" || rej.Verdict == nil || len(rej.Verdict.Temporal) != 1 {
			t.Errorf("%s: incomplete rejection: %+v", name, rej)
			continue
		}
		f := rej.Verdict.Temporal[0]
		if f.Class != analysis.WindowGuardedCopyBlindSpot {
			t.Errorf("%s: class %q, want guardedcopy-blindspot", name, f.Class)
		}
		if !strings.Contains(f.Reason, wantReason[name]) {
			t.Errorf("%s: reason %q missing %q", name, f.Reason, wantReason[name])
		}
		if got := f.Chain.String(); got != goldenChain {
			t.Errorf("%s: chain %q, want %q", name, got, goldenChain)
		}
		for _, step := range f.Chain {
			if step.Detail == "" {
				t.Errorf("%s: chain step %s@%d has no human-readable detail", name, step.Kind, step.PC)
			}
		}
		if len(f.Events) == 0 {
			t.Errorf("%s: no event window in the 422 payload", name)
		}
	}

	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.TemporalFlaggedTotal != 4 || m.TemporalBlindSpot != 4 {
		t.Fatalf("temporal counters flagged=%d blindspot=%d, want 4/4",
			m.TemporalFlaggedTotal, m.TemporalBlindSpot)
	}
	// oob-read and deferred are provable faults (screen 422s); far-jump and
	// lost-update are admitted by the fault screen and rejected by the
	// temporal policy.
	if m.TemporalRejectedTotal != 2 {
		t.Fatalf("temporal_rejected_total = %d, want 2", m.TemporalRejectedTotal)
	}
	if m.ScreenRejectedTotal != 2 {
		t.Fatalf("screen_rejected_total = %d, want 2", m.ScreenRejectedTotal)
	}
	if m.RequestsTotal != 0 || m.Pool.Created != 0 {
		t.Fatalf("rejected programs consumed sessions: requests=%d created=%d",
			m.RequestsTotal, m.Pool.Created)
	}
}

// lostUpdateRaw returns the one blind-spot program the fault screen admits
// cleanly (safe verdict): the managed-race lost update.
func lostUpdateRaw(t *testing.T) []byte {
	t.Helper()
	return blindSpotPrograms(t)["guardedcopy/lost-update"]
}

func TestTemporalPolicyForceSyncDowngrades(t *testing.T) {
	_, ts := testServer(t, Config{TemporalPolicy: analysis.TemporalForceSync})
	code, out := postRun(t, ts, RunRequest{Scheme: "guarded", Program: lostUpdateRaw(t)})
	if code != http.StatusOK || !out.OK {
		t.Fatalf("force-sync admission: code=%d %+v", code, out)
	}
	if out.Scheme != mte4jni.MTESync.String() {
		t.Fatalf("scheme = %q, want downgrade to %q", out.Scheme, mte4jni.MTESync.String())
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.TemporalFlaggedTotal != 1 || m.TemporalRejectedTotal != 0 {
		t.Fatalf("temporal counters flagged=%d rejected=%d, want 1/0",
			m.TemporalFlaggedTotal, m.TemporalRejectedTotal)
	}
}

func TestTemporalPolicyLogAdmitsUnchanged(t *testing.T) {
	_, ts := testServer(t, Config{TemporalPolicy: analysis.TemporalLog})
	code, out := postRun(t, ts, RunRequest{Scheme: "guarded", Program: lostUpdateRaw(t)})
	if code != http.StatusOK || !out.OK {
		t.Fatalf("log admission: code=%d %+v", code, out)
	}
	if out.Scheme != mte4jni.GuardedCopy.String() {
		t.Fatalf("scheme = %q, want unchanged %q", out.Scheme, mte4jni.GuardedCopy.String())
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	if m.TemporalFlaggedTotal != 1 || m.TemporalRejectedTotal != 0 {
		t.Fatalf("temporal counters flagged=%d rejected=%d, want 1/0",
			m.TemporalFlaggedTotal, m.TemporalRejectedTotal)
	}
}

// TestTemporalExposureIsSchemeRelative: the same blind-spot program is only
// rejected when the requested scheme actually has the blind spot — under
// sync's per-access checking it runs.
func TestTemporalExposureIsSchemeRelative(t *testing.T) {
	_, ts := testServer(t, Config{})
	raw := lostUpdateRaw(t)

	code, out := postRun(t, ts, RunRequest{Scheme: "sync", Program: raw})
	if code != http.StatusOK || !out.OK {
		t.Fatalf("sync admission: code=%d %+v", code, out)
	}
	if code, _ := postProgramScheme(t, ts, "guarded", raw); code != http.StatusUnprocessableEntity {
		t.Fatalf("guarded admission: code=%d, want 422", code)
	}
	var m MetricsResponse
	getJSON(t, ts, "/metrics", &m)
	// Both submissions were flagged (the finding is scheme-independent);
	// only the guarded one was rejected.
	if m.TemporalFlaggedTotal != 2 || m.TemporalRejectedTotal != 1 {
		t.Fatalf("temporal counters flagged=%d rejected=%d, want 2/1",
			m.TemporalFlaggedTotal, m.TemporalRejectedTotal)
	}
}
