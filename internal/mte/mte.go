// Package mte models the architectural surface of the ARMv8.5-A Memory
// Tagging Extension (MTE) in software.
//
// The model follows the ARM specification as described in the MTE4JNI paper
// (§2.1): memory is tagged at a 16-byte granule granularity with 4-bit tags,
// pointers carry a 4-bit logical tag in bits 56-59, and on every checked
// access the pointer tag is compared against the memory tag of the granule
// being touched. A mismatch is a tag-check fault.
//
// The package is deliberately free of policy: it defines tags, tagged
// pointers, granule arithmetic, the tag-generation instruction (IRG) with its
// exclusion mask, check modes (TCF), and fault records. Tag *storage* lives
// in package mem; per-thread enable/disable (the TCO register) lives in
// package cpu.
package mte

import (
	"fmt"
	"math/bits"
)

// GranuleSize is the number of bytes covered by a single memory tag.
// ARM MTE fixes this at 16 bytes.
const GranuleSize = 16

// GranuleShift is log2(GranuleSize).
const GranuleShift = 4

// TagBits is the width of a memory or pointer tag. ARM MTE uses 4 bits,
// giving 16 possible tag values.
const TagBits = 4

// NumTags is the number of distinct tag values (2^TagBits).
const NumTags = 1 << TagBits

// PoisonTag is the conventional tag value reserved for released memory when
// poison-on-release is enabled (core.Config.PoisonOnRelease): faults whose
// memory tag equals PoisonTag identify use-after-release rather than a
// plain spatial violation. The value matches the 0xF convention used by
// MTE-aware allocators for freed chunks.
const PoisonTag Tag = 0xF

// tagShift is the bit position of the logical address tag within a 64-bit
// pointer. Per the ARM specification the tag occupies bits 56-59.
const tagShift = 56

// tagMask isolates the pointer-tag bits within a 64-bit pointer.
const tagMask = uint64(NumTags-1) << tagShift

// addrMask clears the entire top byte of a pointer, mirroring AArch64
// top-byte-ignore (TBI): bits 56-63 are not part of the virtual address.
const addrMask = uint64(0x00FF_FFFF_FFFF_FFFF)

// Tag is a 4-bit memory or pointer tag. Only the low TagBits bits are
// meaningful; constructors and methods keep values in range.
type Tag uint8

// IsValid reports whether t fits in TagBits bits.
func (t Tag) IsValid() bool { return t < NumTags }

// String formats the tag as it appears in ARM fault reports, e.g. "0x5".
func (t Tag) String() string { return fmt.Sprintf("0x%x", uint8(t&0xF)) }

// Addr is an untagged simulated virtual address.
type Addr uint64

// GranuleIndex returns the index of the 16-byte granule containing a.
func (a Addr) GranuleIndex() uint64 { return uint64(a) >> GranuleShift }

// GranuleAligned reports whether a is aligned to a granule boundary.
func (a Addr) GranuleAligned() bool { return uint64(a)%GranuleSize == 0 }

// AlignDown rounds a down to the nearest multiple of align, which must be a
// power of two.
func (a Addr) AlignDown(align uint64) Addr { return Addr(uint64(a) &^ (align - 1)) }

// AlignUp rounds a up to the nearest multiple of align, which must be a
// power of two.
func (a Addr) AlignUp(align uint64) Addr { return Addr((uint64(a) + align - 1) &^ (align - 1)) }

// String formats the address in the customary hex form.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Ptr is a 64-bit pointer value as seen by native code: a virtual address in
// the low 56 bits plus a logical address tag in bits 56-59. Pointer
// arithmetic on a Ptr preserves the tag, exactly as hardware arithmetic on a
// tagged register does — this is what lets an out-of-bounds derived pointer
// keep the in-bounds tag and trip the check (paper §2.1).
type Ptr uint64

// MakePtr combines an address with a pointer tag.
func MakePtr(a Addr, t Tag) Ptr {
	return Ptr((uint64(a) & addrMask) | uint64(t&0xF)<<tagShift)
}

// Addr strips the top byte (TBI) and returns the virtual address.
func (p Ptr) Addr() Addr { return Addr(uint64(p) & addrMask) }

// Tag extracts the logical address tag from bits 56-59.
func (p Ptr) Tag() Tag { return Tag(uint64(p) >> tagShift & 0xF) }

// WithTag returns a copy of p re-tagged with t, leaving the address intact.
func (p Ptr) WithTag(t Tag) Ptr { return MakePtr(p.Addr(), t) }

// Add offsets the pointer by delta bytes. The tag is inherited, matching the
// behaviour of hardware pointer arithmetic on tagged pointers.
func (p Ptr) Add(delta int64) Ptr {
	a := Addr(uint64(int64(uint64(p.Addr())) + delta))
	return MakePtr(a, p.Tag())
}

// String formats the pointer with its tag visible in the top byte.
func (p Ptr) String() string { return fmt.Sprintf("0x%016x", uint64(p)) }

// CheckMode mirrors the SCTLR_EL1.TCF tag-check-fault field: how a thread
// reacts to a tag mismatch.
type CheckMode int

const (
	// TCFNone disables tag checking entirely (the "no protection" scheme).
	TCFNone CheckMode = iota
	// TCFSync raises a fault synchronously at the faulting access, giving a
	// precise faulting PC (paper §2.1, "synchronous mode").
	TCFSync
	// TCFAsync records the mismatch in a TFSR-like accumulator and lets
	// execution continue; the fault surfaces at the next synchronization
	// point such as a system call (paper §2.1, "asynchronous mode").
	TCFAsync
)

// String names the mode as used throughout the paper's figures.
func (m CheckMode) String() string {
	switch m {
	case TCFNone:
		return "none"
	case TCFSync:
		return "sync"
	case TCFAsync:
		return "async"
	default:
		return fmt.Sprintf("CheckMode(%d)", int(m))
	}
}

// ExcludeMask is the IRG exclusion mask (GCR_EL1.Exclude equivalent): a
// 16-bit set in which bit i excludes tag value i from random generation.
// A mask with all 16 bits set would exclude everything; IRG then falls back
// to tag 0, as the architecture does.
type ExcludeMask uint16

// Exclude returns m with tag t added to the excluded set.
func (m ExcludeMask) Exclude(t Tag) ExcludeMask { return m | 1<<uint(t&0xF) }

// Excludes reports whether tag t is excluded by m.
func (m ExcludeMask) Excludes(t Tag) bool { return m&(1<<uint(t&0xF)) != 0 }

// Allowed returns how many tag values m still permits.
func (m ExcludeMask) Allowed() int { return NumTags - bits.OnesCount16(uint16(m)) }

// RNG is the randomness source consumed by IRG. It is satisfied by
// *math/rand.Rand and by deterministic test doubles.
type RNG interface {
	// Intn returns a uniform random int in [0, n).
	Intn(n int) int
}

// IRG implements the insert-random-tag instruction: it draws a tag uniformly
// from the values not excluded by mask. If every value is excluded it
// returns tag 0, mirroring the architected fallback.
func IRG(rng RNG, mask ExcludeMask) Tag {
	allowed := mask.Allowed()
	if allowed == 0 {
		return 0
	}
	n := rng.Intn(allowed)
	for t := Tag(0); t < NumTags; t++ {
		if mask.Excludes(t) {
			continue
		}
		if n == 0 {
			return t
		}
		n--
	}
	// Unreachable: the loop visits exactly `allowed` tags.
	return 0
}

// GranuleRange returns the granule-aligned [begin, end) byte range covering
// the byte range [begin, end). It is used when applying a tag to an object
// that spans multiple 16-byte sub-blocks (paper §3, "memory tag
// allocation").
func GranuleRange(begin, end Addr) (Addr, Addr) {
	return begin.AlignDown(GranuleSize), end.AlignUp(GranuleSize)
}

// GranuleCount returns the number of granules covered by [begin, end).
func GranuleCount(begin, end Addr) int {
	gb, ge := GranuleRange(begin, end)
	if ge <= gb {
		return 0
	}
	return int((ge - gb) / GranuleSize)
}
