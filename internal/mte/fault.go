package mte

import "fmt"

// AccessKind distinguishes reads from writes in fault records. Guarded copy
// can only ever detect writes; MTE detects both (paper §2.3 vs §2.1), so
// keeping the kind in the record lets tests assert on that asymmetry.
type AccessKind int

const (
	// AccessLoad is a read of simulated memory.
	AccessLoad AccessKind = iota
	// AccessStore is a write to simulated memory.
	AccessStore
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == AccessStore {
		return "store"
	}
	return "load"
}

// FaultKind classifies a memory fault raised by the simulated memory engine.
type FaultKind int

const (
	// FaultTagMismatch is an MTE tag-check fault: the pointer tag differs
	// from the memory tag of the accessed granule (SEGV_MTESERR /
	// SEGV_MTEAERR on Linux).
	FaultTagMismatch FaultKind = iota
	// FaultUnmapped is an access outside every mapping (plain SEGV).
	FaultUnmapped
	// FaultProtection is an access violating a mapping's protection flags,
	// e.g. a store to a read-only mapping.
	FaultProtection
)

// String names the fault kind using the Linux signal-code vocabulary that
// appears in Android logcat output.
func (k FaultKind) String() string {
	switch k {
	case FaultTagMismatch:
		return "SEGV_MTESERR"
	case FaultUnmapped:
		return "SEGV_MAPERR"
	case FaultProtection:
		return "SEGV_ACCERR"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes one detected illegal memory access. It carries enough
// detail to reconstruct the logcat-style crash reports compared in the
// paper's Figure 4: the faulting pointer and its tag, the memory tag that
// was actually set, and the simulated backtrace captured at *report* time —
// which is the faulting instruction for synchronous MTE, the next syscall
// for asynchronous MTE, and the JNI release call for guarded copy.
type Fault struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Access says whether the faulting access was a load or a store.
	Access AccessKind
	// Ptr is the pointer value used by the faulting access (tag included).
	Ptr Ptr
	// Size is the access width in bytes.
	Size int
	// PtrTag and MemTag are the mismatching tags for FaultTagMismatch.
	PtrTag, MemTag Tag
	// Async is true when the fault was detected asynchronously and therefore
	// reported away from the faulting instruction.
	Async bool
	// PC is the simulated program-counter label of the frame the fault was
	// *reported* at.
	PC string
	// Backtrace is the simulated call stack at report time, innermost frame
	// first, formatted like logcat "#NN pc" lines by package report.
	Backtrace []string
	// Thread is the name of the thread that observed the fault.
	Thread string
}

// Error implements the error interface so a *Fault can flow through normal
// Go error paths after being recovered at a trampoline boundary.
func (f *Fault) Error() string {
	mode := "sync"
	if f.Async {
		mode = "async"
	}
	return fmt.Sprintf("%s: %s of %d bytes at %s (ptr tag %s, mem tag %s, %s, thread %q, pc %s)",
		f.Kind, f.Access, f.Size, f.Ptr, f.PtrTag, f.MemTag, mode, f.Thread, f.PC)
}
