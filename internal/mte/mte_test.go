package mte

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPtrTagRoundTrip(t *testing.T) {
	f := func(raw uint64, tag uint8) bool {
		a := Addr(raw) // any 64-bit pattern; top byte will be masked
		tg := Tag(tag % NumTags)
		p := MakePtr(a, tg)
		return p.Tag() == tg && p.Addr() == Addr(uint64(a)&uint64(0x00FF_FFFF_FFFF_FFFF))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPtrArithmeticPreservesTag(t *testing.T) {
	f := func(base uint32, tag uint8, delta int16) bool {
		p := MakePtr(Addr(base), Tag(tag%NumTags))
		q := p.Add(int64(delta))
		return q.Tag() == p.Tag() && uint64(q.Addr()) == uint64(int64(base)+int64(delta))&uint64(0x00FF_FFFF_FFFF_FFFF)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPtrAddOutOfBoundsKeepsInBoundsTag(t *testing.T) {
	// The scenario from paper §2.1: a derived OOB pointer inherits the
	// in-bounds tag, which is exactly what makes the mismatch detectable.
	p := MakePtr(0x7000_0000_0100, 0xA)
	oob := p.Add(21 * 4) // index 21 of an int array of length 18
	if oob.Tag() != 0xA {
		t.Fatalf("derived pointer tag = %v, want 0xa", oob.Tag())
	}
	if oob.Addr() != 0x7000_0000_0100+84 {
		t.Fatalf("derived pointer addr = %v", oob.Addr())
	}
}

func TestWithTag(t *testing.T) {
	p := MakePtr(0x1000, 3)
	q := p.WithTag(9)
	if q.Addr() != 0x1000 || q.Tag() != 9 {
		t.Fatalf("WithTag: got addr=%v tag=%v", q.Addr(), q.Tag())
	}
}

func TestGranuleMath(t *testing.T) {
	cases := []struct {
		begin, end Addr
		gb, ge     Addr
		count      int
	}{
		{0, 0, 0, 0, 0},
		{0, 1, 0, 16, 1},
		{0, 16, 0, 16, 1},
		{0, 17, 0, 32, 2},
		{8, 24, 0, 32, 2},
		{16, 32, 16, 32, 1},
		{100, 172, 96, 176, 5}, // int[18] at unaligned start
	}
	for _, c := range cases {
		gb, ge := GranuleRange(c.begin, c.end)
		if gb != c.gb || ge != c.ge {
			t.Errorf("GranuleRange(%v,%v) = %v,%v want %v,%v", c.begin, c.end, gb, ge, c.gb, c.ge)
		}
		if n := GranuleCount(c.begin, c.end); n != c.count {
			t.Errorf("GranuleCount(%v,%v) = %d want %d", c.begin, c.end, n, c.count)
		}
	}
}

func TestGranuleRangeProperty(t *testing.T) {
	f := func(b uint32, size uint16) bool {
		begin := Addr(b)
		end := begin + Addr(size)
		gb, ge := GranuleRange(begin, end)
		if !gb.GranuleAligned() || !ge.GranuleAligned() {
			return false
		}
		if gb > begin || (size > 0 && ge < end) {
			return false
		}
		// Tight: shrinking by one granule on either side must cut the range.
		if size > 0 && (gb+GranuleSize > begin && gb+GranuleSize <= begin) {
			return false
		}
		return GranuleCount(begin, end) == int((ge-gb)/GranuleSize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if got := Addr(17).AlignDown(16); got != 16 {
		t.Errorf("AlignDown(17,16) = %v", got)
	}
	if got := Addr(17).AlignUp(16); got != 32 {
		t.Errorf("AlignUp(17,16) = %v", got)
	}
	if got := Addr(32).AlignUp(16); got != 32 {
		t.Errorf("AlignUp(32,16) = %v", got)
	}
}

func TestIRGRespectsExclusionMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var mask ExcludeMask
	mask = mask.Exclude(0).Exclude(5).Exclude(15)
	for i := 0; i < 2000; i++ {
		tag := IRG(rng, mask)
		if mask.Excludes(tag) {
			t.Fatalf("IRG produced excluded tag %v", tag)
		}
		if !tag.IsValid() {
			t.Fatalf("IRG produced invalid tag %v", tag)
		}
	}
}

func TestIRGAllExcludedFallsBackToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if tag := IRG(rng, ExcludeMask(0xFFFF)); tag != 0 {
		t.Fatalf("IRG with everything excluded = %v, want 0", tag)
	}
}

func TestIRGCoversAllAllowedTags(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := make(map[Tag]bool)
	mask := ExcludeMask(0).Exclude(0) // Android excludes tag 0 by default
	for i := 0; i < 5000; i++ {
		seen[IRG(rng, mask)] = true
	}
	if len(seen) != NumTags-1 {
		t.Fatalf("IRG covered %d tags, want %d", len(seen), NumTags-1)
	}
}

func TestExcludeMaskAllowed(t *testing.T) {
	var m ExcludeMask
	if m.Allowed() != 16 {
		t.Fatalf("empty mask allows %d", m.Allowed())
	}
	m = m.Exclude(1).Exclude(1).Exclude(2)
	if m.Allowed() != 14 {
		t.Fatalf("mask allows %d, want 14", m.Allowed())
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{
		Kind:   FaultTagMismatch,
		Access: AccessStore,
		Ptr:    MakePtr(0x7000_0000_0154, 0xA),
		Size:   4,
		PtrTag: 0xA,
		MemTag: 0x0,
		Thread: "native-0",
		PC:     "test_ofb+124",
	}
	msg := f.Error()
	for _, want := range []string{"SEGV_MTESERR", "store", "0xa", "test_ofb+124"} {
		if !contains(msg, want) {
			t.Errorf("Fault.Error() = %q, missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCheckModeString(t *testing.T) {
	if TCFNone.String() != "none" || TCFSync.String() != "sync" || TCFAsync.String() != "async" {
		t.Fatal("CheckMode strings wrong")
	}
}
