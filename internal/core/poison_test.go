package core

import (
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

func TestPoisonOnReleaseMarksMemory(t *testing.T) {
	p, th, v := setup(t, Config{PoisonOnRelease: true})
	if !p.Config().Exclude.Excludes(mte.PoisonTag) {
		t.Fatal("poison tag must be excluded from generation")
	}
	arr, _ := v.NewIntArray(16)
	begin, end := arr.DataBegin(), arr.DataEnd()
	ptr, err := p.Acquire(th, arr, begin, end)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Tag() == mte.PoisonTag {
		t.Fatal("generated tag equals the poison tag")
	}
	if err := p.Release(th, arr, ptr, begin, end, jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
	if got := v.JavaHeap.Mapping().TagAt(begin); got != mte.PoisonTag {
		t.Fatalf("released memory tag = %v, want poison %v", got, mte.PoisonTag)
	}

	// A stale access now faults with the poison tag as memory tag —
	// self-identifying use-after-release.
	ctx := th.Ctx()
	ctx.SetTCO(false)
	_, fault := v.Space.Load32(ctx, ptr)
	if fault == nil || fault.MemTag != mte.PoisonTag {
		t.Fatalf("stale access fault = %v, want poison mem tag", fault)
	}

	// Re-acquire overwrites the poison with a fresh tag.
	ptr2, err := p.Acquire(th, arr, begin, end)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.JavaHeap.Mapping().TagAt(begin); got != ptr2.Tag() || got == mte.PoisonTag {
		t.Fatalf("re-acquire tag = %v", got)
	}
	if err := p.Release(th, arr, ptr2, begin, end, jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyIntegrityCleanAndDirty(t *testing.T) {
	for _, lock := range []LockScheme{LockTwoTier, LockGlobal} {
		p, th, v := setup(t, Config{Lock: lock})
		arr, _ := v.NewIntArray(8)
		begin, end := arr.DataBegin(), arr.DataEnd()
		ptr, _ := p.Acquire(th, arr, begin, end)
		if err := p.VerifyIntegrity(); err != nil {
			t.Fatalf("%v: clean state flagged: %v", lock, err)
		}
		// Corrupt the tag behind the protector's back: integrity must fail.
		if _, err := v.JavaHeap.Mapping().SetTagRange(begin, begin+16, ptr.Tag()^0x3); err != nil {
			t.Fatal(err)
		}
		if err := p.VerifyIntegrity(); err == nil {
			t.Fatalf("%v: corrupted live tag not flagged", lock)
		}
		// Restore and release: clean again.
		if _, err := v.JavaHeap.Mapping().SetTagRange(begin, begin+16, ptr.Tag()); err != nil {
			t.Fatal(err)
		}
		if err := p.Release(th, arr, ptr, begin, end, jni.ReleaseDefault); err != nil {
			t.Fatal(err)
		}
		if err := p.VerifyIntegrity(); err != nil {
			t.Fatalf("%v: post-release state flagged: %v", lock, err)
		}
	}
}
