package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

func setup(t *testing.T, cfg Config) (*Protector, *vm.Thread, *vm.VM) {
	t.Helper()
	v, err := vm.New(vm.Options{HeapSize: 16 << 20, MTE: true, CheckMode: mte.TCFSync})
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("native-0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, th, v
}

func TestRequiresMTEHeap(t *testing.T) {
	v, _ := vm.New(vm.Options{HeapSize: 1 << 20})
	if _, err := New(v, Config{}); err == nil {
		t.Fatal("Protector must reject a VM without MTE")
	}
	vMTE, _ := vm.New(vm.Options{HeapSize: 1 << 20, MTE: true})
	if _, err := New(vMTE, Config{HashTables: -3}); err == nil {
		t.Fatal("negative hash table count accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	p, _, _ := setup(t, Config{})
	if p.Config().HashTables != 16 {
		t.Fatalf("default k = %d, want 16 (§5.1)", p.Config().HashTables)
	}
	if p.Config().Lock != LockTwoTier {
		t.Fatal("default locking must be two-tier")
	}
	if !p.Config().Exclude.Excludes(0) {
		t.Fatal("tag 0 must be excluded by default")
	}
	if p.Name() != "mte4jni(two-tier)" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestAcquireTagsMemoryAndPointer(t *testing.T) {
	for _, lock := range []LockScheme{LockTwoTier, LockGlobal} {
		p, th, v := setup(t, Config{Lock: lock})
		arr, _ := v.NewIntArray(18)
		ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if err != nil {
			t.Fatal(err)
		}
		if ptr.Tag() == 0 {
			t.Fatalf("%v: pointer not tagged", lock)
		}
		m := v.JavaHeap.Mapping()
		// Every granule of the payload carries the tag (int[18] = 72 bytes
		// = 5 granules from an aligned start).
		for a := arr.DataBegin(); a < arr.DataEnd(); a += 16 {
			if got := m.TagAt(a); got != ptr.Tag() {
				t.Fatalf("%v: granule %v tag %v != %v", lock, a, got, ptr.Tag())
			}
		}
		st := p.Stats()
		if st.TagAllocs != 1 || st.GranulesTagged != 5 {
			t.Fatalf("%v: stats %+v", lock, st)
		}
		if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
			t.Fatal(err)
		}
		if got := m.TagAt(arr.DataBegin()); got != 0 {
			t.Fatalf("%v: tag not zeroed on release", lock)
		}
		if p.Stats().TagReleases != 1 {
			t.Fatalf("%v: release not counted", lock)
		}
		if p.Entries() != 1 {
			t.Fatalf("%v: entry count %d, want 1 (Algorithm 2 keeps entries)", lock, p.Entries())
		}
	}
}

func TestSharedTagAcrossConcurrentHolders(t *testing.T) {
	// §3.1.1: a second acquire while the first is outstanding must share
	// the same tag, and the tag must survive until the LAST release.
	p, th, v := setup(t, Config{})
	arr, _ := v.NewIntArray(64)
	begin, end := arr.DataBegin(), arr.DataEnd()

	p1, _ := p.Acquire(th, arr, begin, end)
	p2, _ := p.Acquire(th, arr, begin, end)
	if p1 != p2 {
		t.Fatalf("concurrent holders got different pointers: %v vs %v", p1, p2)
	}
	if p.Refs(begin) != 2 {
		t.Fatalf("refs = %d", p.Refs(begin))
	}
	if p.Stats().SharedAcquires != 1 {
		t.Fatal("shared acquire not counted")
	}

	if err := p.Release(th, arr, p1, begin, end, jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
	if got := v.JavaHeap.Mapping().TagAt(begin); got != p2.Tag() {
		t.Fatal("tag released while a holder remains")
	}
	if err := p.Release(th, arr, p2, begin, end, jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
	if got := v.JavaHeap.Mapping().TagAt(begin); got != 0 {
		t.Fatal("tag not released after last holder")
	}
}

func TestReleaseWithoutAcquireIsNoop(t *testing.T) {
	p, th, v := setup(t, Config{})
	arr, _ := v.NewIntArray(4)
	// Algorithm 2: "If no entry exists, nothing needs to be done."
	if err := p.Release(th, arr, mte.MakePtr(arr.DataBegin(), 5), arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseTagMismatchRejected(t *testing.T) {
	p, th, v := setup(t, Config{})
	arr, _ := v.NewIntArray(4)
	ptr, _ := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
	bad := ptr.WithTag(ptr.Tag() ^ 0xF)
	if err := p.Release(th, arr, bad, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err == nil {
		t.Fatal("release with corrupted pointer tag accepted")
	}
	if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
		t.Fatal(err)
	}
}

func TestPruneEntriesMode(t *testing.T) {
	for _, lock := range []LockScheme{LockTwoTier, LockGlobal} {
		p, th, v := setup(t, Config{PruneEntries: true, Lock: lock})
		arr, _ := v.NewIntArray(4)
		ptr, _ := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault)
		if p.Entries() != 0 {
			t.Fatalf("%v: PruneEntries left %d entries", lock, p.Entries())
		}
		// Re-acquire creates a fresh entry; refcounting still works.
		ptr2, _ := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if p.Refs(arr.DataBegin()) != 1 {
			t.Fatal("refs after reacquire wrong")
		}
		p.Release(th, arr, ptr2, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault)
	}
}

func TestShardDistribution(t *testing.T) {
	// Consecutive 16-byte-aligned objects must hash to different tables
	// (the index is granule-number mod k), spreading table-lock contention.
	p, _, v := setup(t, Config{})
	seen := make(map[*shard]bool)
	for i := 0; i < 16; i++ {
		arr, _ := v.NewIntArray(1) // 16-byte header + 16-byte payload slot
		seen[p.shardFor(arr.DataBegin())] = true
	}
	if len(seen) < 8 {
		t.Fatalf("16 consecutive objects landed in only %d shards", len(seen))
	}
}

func TestRefcountNeverNegativeProperty(t *testing.T) {
	p, th, v := setup(t, Config{})
	arr, _ := v.NewIntArray(32)
	begin, end := arr.DataBegin(), arr.DataEnd()
	var ptrs []mte.Ptr
	f := func(acquire bool) bool {
		if acquire && len(ptrs) < 64 {
			ptr, err := p.Acquire(th, arr, begin, end)
			if err != nil {
				return false
			}
			ptrs = append(ptrs, ptr)
		} else if len(ptrs) > 0 {
			ptr := ptrs[len(ptrs)-1]
			ptrs = ptrs[:len(ptrs)-1]
			if err := p.Release(th, arr, ptr, begin, end, jni.ReleaseDefault); err != nil {
				return false
			}
		}
		refs := p.Refs(begin)
		if refs != len(ptrs) || refs < 0 {
			return false
		}
		// Invariant: tag is live iff refs > 0.
		tag := v.JavaHeap.Mapping().TagAt(begin)
		if refs > 0 && tag == 0 {
			return false
		}
		if refs == 0 && tag != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSameObject(t *testing.T) {
	for _, lock := range []LockScheme{LockTwoTier, LockGlobal} {
		t.Run(lock.String(), func(t *testing.T) {
			p, _, v := setup(t, Config{Lock: lock})
			arr, _ := v.NewIntArray(1024)
			begin, end := arr.DataBegin(), arr.DataEnd()
			var wg sync.WaitGroup
			for i := 0; i < 32; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th, err := v.AttachThread(fmt.Sprintf("t-%d", id))
					if err != nil {
						t.Error(err)
						return
					}
					for j := 0; j < 200; j++ {
						ptr, err := p.Acquire(th, arr, begin, end)
						if err != nil {
							t.Error(err)
							return
						}
						// While held, memory tag must match the pointer.
						if got := v.JavaHeap.Mapping().TagAt(begin); got != ptr.Tag() {
							t.Errorf("tag mismatch while held: mem %v ptr %v", got, ptr.Tag())
							return
						}
						if err := p.Release(th, arr, ptr, begin, end, jni.ReleaseDefault); err != nil {
							t.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			if p.Refs(begin) != 0 {
				t.Fatalf("refs = %d after all releases", p.Refs(begin))
			}
			if got := v.JavaHeap.Mapping().TagAt(begin); got != 0 {
				t.Fatal("tag leaked")
			}
		})
	}
}

func TestConcurrentDistinctObjects(t *testing.T) {
	for _, lock := range []LockScheme{LockTwoTier, LockGlobal} {
		t.Run(lock.String(), func(t *testing.T) {
			p, _, v := setup(t, Config{Lock: lock})
			const threads = 16
			arrs := make([]*vm.Object, threads)
			for i := range arrs {
				arrs[i], _ = v.NewIntArray(256)
			}
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th, err := v.AttachThread(fmt.Sprintf("d-%d", id))
					if err != nil {
						t.Error(err)
						return
					}
					arr := arrs[id]
					for j := 0; j < 300; j++ {
						ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
						if err != nil {
							t.Error(err)
							return
						}
						if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
							t.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			if p.Entries() != threads {
				t.Fatalf("entries = %d, want %d retained", p.Entries(), threads)
			}
		})
	}
}

func TestHashTableCountSweepWorks(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		p, th, v := setup(t, Config{HashTables: k})
		arr, _ := v.NewIntArray(8)
		ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestLockSchemeString(t *testing.T) {
	if LockTwoTier.String() != "two-tier" || LockGlobal.String() != "global-lock" {
		t.Fatal("LockScheme strings wrong")
	}
}
