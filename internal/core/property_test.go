package core

import (
	"testing"
	"testing/quick"

	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// TestPropertyShardIndexMatchesAlgorithm1: the shard selection must equal
// Algorithm 1's "begin/16 mod k" for any address and any k.
func TestPropertyShardIndexMatchesAlgorithm1(t *testing.T) {
	p, _, _ := setup(t, Config{})
	f := func(raw uint32) bool {
		begin := mte.Addr(raw &^ 0xF)
		sh := p.shardFor(begin)
		want := &p.shards[(uint64(begin)>>4)%uint64(p.cfg.HashTables)]
		return sh == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAcquireReleaseTransparent: for arrays of any size, an
// acquire/release cycle under MTE4JNI leaves data intact and tags clear,
// and the handed-out pointer always addresses the original payload.
func TestPropertyAcquireReleaseTransparent(t *testing.T) {
	p, th, v := setup(t, Config{})
	f := func(sizeRaw uint8, fill byte) bool {
		size := int(sizeRaw)%200 + 1
		arr, err := v.NewArray(vm.KindByte, size)
		if err != nil {
			return true // heap pressure
		}
		raw, _ := arr.Bytes()
		for i := range raw {
			raw[i] = fill
		}
		ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
		if err != nil {
			return false
		}
		if ptr.Addr() != arr.DataBegin() {
			return false
		}
		if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), jni.ReleaseDefault); err != nil {
			return false
		}
		if v.JavaHeap.Mapping().TagAt(arr.DataBegin()) != 0 {
			return false
		}
		after, _ := arr.Bytes()
		for i := range after {
			if after[i] != fill {
				return false
			}
		}
		return p.VerifyIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
