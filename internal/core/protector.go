// Package core implements MTE4JNI, the paper's contribution: memory tag
// allocation and release for Java heap objects handed to native code
// through JNI, built on reference counting with a two-tier locking scheme
// (paper §3).
//
// The Protector plugs under the JNI Get/Release interfaces (as a
// jni.Checker). On acquire it runs Algorithm 1: find the object's slot in
// one of k hash tables, take a reference, and either load the existing tag
// (another native thread already holds this object) or generate a fresh
// random tag and apply it to both the memory granules and the returned
// pointer. On release it runs Algorithm 2: drop the reference and, when the
// count hits zero, zero the memory tags so stale pointers stop matching.
//
// Whether a mismatch faults synchronously or asynchronously is a property
// of the accessing thread (its TCF mode), not of the Protector; see package
// cpu.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mte4jni/internal/jni"
	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// LockScheme selects the synchronization design evaluated in §5.3.2.
type LockScheme int

const (
	// LockTwoTier is the paper's design: one short-lived lock per hash
	// table plus one lock per object entry (§3.1.2).
	LockTwoTier LockScheme = iota
	// LockGlobal is the naive baseline: a single lock serializing all tag
	// allocation and release.
	LockGlobal
)

// String names the scheme as in Figure 6's legend.
func (s LockScheme) String() string {
	if s == LockGlobal {
		return "global-lock"
	}
	return "two-tier"
}

// DefaultHashTables is the paper's evaluation setting: "we use 16 hash
// tables in the MTE4JNI method" (§5.1). It also matches Algorithm 1's
// "mod 16".
const DefaultHashTables = 16

// Config parameterizes a Protector.
type Config struct {
	// HashTables is k, the number of hash tables (shards). Zero selects
	// DefaultHashTables. The ablation in DESIGN.md Extra B sweeps this.
	HashTables int
	// Lock selects two-tier (default) or the naive global lock.
	Lock LockScheme
	// Exclude removes tag values from random generation. The zero value
	// excludes tag 0, as Android's MTE integration does, so tagged pointers
	// are always distinguishable from untagged ones.
	Exclude mte.ExcludeMask
	// PruneEntries erases hash-table entries once their reference count
	// reaches zero. The default (false) follows Algorithm 2 as written in
	// the paper — entries persist, so repeated handouts of the same object
	// pay only a lookup — at the cost of the table growing with the number
	// of distinct objects ever passed to native code. Enable pruning for
	// long-running processes that hand out many short-lived objects.
	PruneEntries bool
	// PoisonOnRelease retags released objects with mte.PoisonTag instead of
	// zero. Stale tagged pointers then fault with a memory tag that
	// unambiguously reads as use-after-release in crash reports, instead of
	// being indistinguishable from an access to never-tagged memory. The
	// poison value is excluded from random generation automatically.
	PoisonOnRelease bool
	// ExcludeNeighbors additionally excludes the current tags of the
	// granules immediately before and after the object from random
	// generation, guaranteeing adjacent allocations never share a tag.
	// This is the deterministic-adjacent-OOB hardening Android's scudo
	// allocator applies to native MTE heaps; the paper's design (random
	// tags, §3.1.1) leaves a 1-in-15 collision chance that DESIGN.md
	// Extra C measures.
	ExcludeNeighbors bool
}

// Stats counts Protector activity for tests and the benchmark harness.
type Stats struct {
	// TagAllocs counts fresh tag generations (irg + stg path).
	TagAllocs int64
	// SharedAcquires counts acquisitions satisfied by an existing tag
	// (refs > 1 path, the ldg branch of Algorithm 1).
	SharedAcquires int64
	// TagReleases counts tag zeroings (refcount reached zero).
	TagReleases int64
	// GranulesTagged counts granule tag writes, a proxy for stg/st2g
	// instruction count.
	GranulesTagged int64
	// TableLockContended and ObjectLockContended count lock acquisitions
	// that found the lock already held (table locks vs per-object locks;
	// the single lock of the global scheme counts as a table lock). They
	// make the §5.3.2 contention comparison observable even on hosts whose
	// limited parallelism hides it from wall-clock time.
	TableLockContended, ObjectLockContended int64
}

// entry is the per-object value stored in a hash table: the paper's
// (referenceNum, mutexAddr) tuple plus the tag itself.
type entry struct {
	mu   sync.Mutex
	refs int
	tag  mte.Tag
	// dead is set once the entry has been unlinked from its shard; an
	// acquirer that raced with the unlink must retry its table lookup.
	dead bool
}

// shard is one hash table plus its table lock.
type shard struct {
	mu      sync.Mutex
	entries map[mte.Addr]*entry
}

// Protector is the MTE4JNI checker.
type Protector struct {
	vm     *vm.VM
	cfg    Config
	shards []shard

	// global is the lock used when cfg.Lock == LockGlobal; the shard and
	// entry locks are bypassed entirely in that mode.
	global sync.Mutex

	tagAllocs       atomic.Int64
	sharedAcquires  atomic.Int64
	tagReleases     atomic.Int64
	granulesTagged  atomic.Int64
	tableContended  atomic.Int64
	objectContended atomic.Int64
}

// lockCounting acquires mu, counting into contended when the lock was
// already held. TryLock failing is exactly "found it held", the signal the
// contention statistics want.
func lockCounting(mu *sync.Mutex, contended *atomic.Int64) {
	if mu.TryLock() {
		return
	}
	contended.Add(1)
	mu.Lock()
}

// New creates a Protector for v. The VM must have MTE enabled (a tagged
// Java heap); protecting an untagged heap is a configuration error.
func New(v *vm.VM, cfg Config) (*Protector, error) {
	if !v.MTEEnabled() {
		return nil, fmt.Errorf("core: VM has no MTE heap; construct it with Options.MTE")
	}
	if cfg.HashTables == 0 {
		cfg.HashTables = DefaultHashTables
	}
	if cfg.HashTables < 1 {
		return nil, fmt.Errorf("core: invalid hash table count %d", cfg.HashTables)
	}
	if cfg.Exclude == 0 {
		cfg.Exclude = mte.ExcludeMask(0).Exclude(0)
	}
	if cfg.PoisonOnRelease {
		cfg.Exclude = cfg.Exclude.Exclude(mte.PoisonTag)
	}
	p := &Protector{vm: v, cfg: cfg, shards: make([]shard, cfg.HashTables)}
	for i := range p.shards {
		p.shards[i].entries = make(map[mte.Addr]*entry)
	}
	return p, nil
}

// Name implements jni.Checker.
func (p *Protector) Name() string { return "mte4jni(" + p.cfg.Lock.String() + ")" }

// Config returns the configuration in force.
func (p *Protector) Config() Config { return p.cfg }

// shardFor implements Algorithm 1 step 1: the hash table index is the
// granule number of the begin address modulo k.
func (p *Protector) shardFor(begin mte.Addr) *shard {
	return &p.shards[int(begin.GranuleIndex())%p.cfg.HashTables]
}

// mappingFor resolves the tagged mapping containing [begin, end).
func (p *Protector) mappingFor(begin mte.Addr) (*mem.Mapping, error) {
	m, ok := p.vm.Space.Resolve(begin)
	if !ok {
		return nil, fmt.Errorf("core: address %v is not mapped", begin)
	}
	if !m.Tagged() {
		return nil, fmt.Errorf("core: mapping %q lacks PROT_MTE", m.Name())
	}
	return m, nil
}

// Acquire implements jni.Checker with Algorithm 1.
func (p *Protector) Acquire(t *vm.Thread, obj *vm.Object, begin, end mte.Addr) (mte.Ptr, error) {
	m, err := p.mappingFor(begin)
	if err != nil {
		return 0, err
	}

	if p.cfg.Lock == LockGlobal {
		lockCounting(&p.global, &p.tableContended)
		defer p.global.Unlock()
		return p.acquireLocked(p.shardFor(begin), m, begin, end)
	}

	for {
		// Step 2: retrieve or create the reference count under the table
		// lock, which is released as soon as the entry is in hand.
		sh := p.shardFor(begin)
		lockCounting(&sh.mu, &p.tableContended)
		en, ok := sh.entries[begin]
		if !ok {
			en = &entry{}
			sh.entries[begin] = en
		}
		sh.mu.Unlock()

		// Step 3: retrieve or create the memory tag under the object lock.
		lockCounting(&en.mu, &p.objectContended)
		if en.dead {
			// Lost a race with a concurrent release that unlinked the
			// entry; retry the table lookup.
			en.mu.Unlock()
			continue
		}
		ptr, err := p.tagUnderEntryLock(en, m, begin, end)
		en.mu.Unlock()
		return ptr, err
	}
}

// acquireLocked is the global-lock variant: the caller already holds the
// single lock, so shard and entry locks are unnecessary.
func (p *Protector) acquireLocked(sh *shard, m *mem.Mapping, begin, end mte.Addr) (mte.Ptr, error) {
	en, ok := sh.entries[begin]
	if !ok {
		en = &entry{}
		sh.entries[begin] = en
	}
	return p.tagUnderEntryLock(en, m, begin, end)
}

// tagUnderEntryLock performs the reference-counting core of Algorithm 1.
// The caller holds the entry's lock (or the global lock).
func (p *Protector) tagUnderEntryLock(en *entry, m *mem.Mapping, begin, end mte.Addr) (mte.Ptr, error) {
	en.refs++
	if en.refs > 1 {
		// Another native thread already tagged this object: share its tag
		// (the ldg branch).
		p.sharedAcquires.Add(1)
		return mte.MakePtr(begin, en.tag), nil
	}
	// First holder: generate a random tag (irg) and apply it to every
	// granule of the object (stg/st2g loop).
	mask := p.cfg.Exclude
	if p.cfg.ExcludeNeighbors {
		// Scan two granules on each side: one for the 16-byte object header
		// that sits between neighbouring payloads, one for the neighbour's
		// own memory. Whatever tags are live there cannot be chosen, so an
		// off-by-small OOB access into an adjacent object always mismatches.
		gb, ge := mte.GranuleRange(begin, end)
		for i := 1; i <= 2; i++ {
			if before := gb - mte.Addr(i*mte.GranuleSize); before >= m.Base() {
				mask = mask.Exclude(m.TagAt(before))
			}
			if after := ge + mte.Addr((i-1)*mte.GranuleSize); after+mte.GranuleSize <= m.End() {
				mask = mask.Exclude(m.TagAt(after))
			}
		}
	}
	tag := p.vm.RandomTag(mask)
	n, err := m.SetTagRange(begin, end, tag)
	if err != nil {
		en.refs--
		return 0, fmt.Errorf("core: tagging [%v,%v): %w", begin, end, err)
	}
	en.tag = tag
	p.tagAllocs.Add(1)
	p.granulesTagged.Add(int64(n))
	return mte.MakePtr(begin, tag), nil
}

// Release implements jni.Checker with Algorithm 2.
func (p *Protector) Release(t *vm.Thread, obj *vm.Object, ptr mte.Ptr, begin, end mte.Addr, mode jni.ReleaseMode) error {
	m, err := p.mappingFor(begin)
	if err != nil {
		return err
	}

	if p.cfg.Lock == LockGlobal {
		lockCounting(&p.global, &p.tableContended)
		defer p.global.Unlock()
		sh := p.shardFor(begin)
		en, ok := sh.entries[begin]
		if !ok {
			// "If no entry exists, nothing needs to be done."
			return nil
		}
		return p.releaseUnderEntryLock(sh, en, m, ptr, begin, end)
	}

	// Step 2: retrieve the reference count under the table lock.
	sh := p.shardFor(begin)
	lockCounting(&sh.mu, &p.tableContended)
	en, ok := sh.entries[begin]
	sh.mu.Unlock()
	if !ok {
		return nil
	}

	// Step 3: optionally release the memory tag under the object lock.
	lockCounting(&en.mu, &p.objectContended)
	if en.dead {
		en.mu.Unlock()
		return nil
	}
	err = p.releaseUnderEntryLock(sh, en, m, ptr, begin, end)
	unlink := p.cfg.PruneEntries && en.refs == 0
	if unlink {
		en.dead = true
	}
	en.mu.Unlock()

	if unlink {
		sh.mu.Lock()
		if sh.entries[begin] == en {
			delete(sh.entries, begin)
		}
		sh.mu.Unlock()
	}
	return err
}

// releaseUnderEntryLock performs the reference-counting core of Algorithm 2.
// The caller holds the entry's lock (or the global lock).
func (p *Protector) releaseUnderEntryLock(sh *shard, en *entry, m *mem.Mapping, ptr mte.Ptr, begin, end mte.Addr) error {
	if en.refs <= 0 {
		return fmt.Errorf("core: release of %v with no outstanding acquisition (refs=%d)", begin, en.refs)
	}
	if ptr.Tag() != en.tag {
		return fmt.Errorf("core: release pointer tag %s does not match allocation tag %s for %v",
			ptr.Tag(), en.tag, begin)
	}
	en.refs--
	if en.refs > 0 {
		return nil
	}
	// Reference count reached zero: retire the memory tags so the released
	// pointer (and any stale copies of it) no longer match — this is what
	// bounds tag-reuse confusion (§3.2). With poisoning enabled the range
	// gets the reserved poison tag so stale-pointer faults self-identify.
	retireTag := mte.Tag(0)
	if p.cfg.PoisonOnRelease {
		retireTag = mte.PoisonTag
	}
	if _, err := m.SetTagRange(begin, end, retireTag); err != nil {
		return fmt.Errorf("core: releasing tags for [%v,%v): %w", begin, end, err)
	}
	p.tagReleases.Add(1)
	if p.cfg.Lock == LockGlobal && p.cfg.PruneEntries {
		delete(sh.entries, begin)
	}
	return nil
}

// Refs returns the current reference count for the object payload starting
// at begin, for tests and diagnostics.
func (p *Protector) Refs(begin mte.Addr) int {
	if p.cfg.Lock == LockGlobal {
		p.global.Lock()
		defer p.global.Unlock()
		if en, ok := p.shardFor(begin).entries[begin]; ok {
			return en.refs
		}
		return 0
	}
	sh := p.shardFor(begin)
	sh.mu.Lock()
	en, ok := sh.entries[begin]
	sh.mu.Unlock()
	if !ok {
		return 0
	}
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.refs
}

// Entries returns the total number of live hash-table entries across all
// shards.
func (p *Protector) Entries() int {
	if p.cfg.Lock == LockGlobal {
		p.global.Lock()
		defer p.global.Unlock()
		n := 0
		for i := range p.shards {
			n += len(p.shards[i].entries)
		}
		return n
	}
	n := 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		n += len(p.shards[i].entries)
		p.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the activity counters.
func (p *Protector) Stats() Stats {
	return Stats{
		TagAllocs:           p.tagAllocs.Load(),
		SharedAcquires:      p.sharedAcquires.Load(),
		TagReleases:         p.tagReleases.Load(),
		GranulesTagged:      p.granulesTagged.Load(),
		TableLockContended:  p.tableContended.Load(),
		ObjectLockContended: p.objectContended.Load(),
	}
}

// verify interface compliance at compile time.
var _ jni.Checker = (*Protector)(nil)

// VerifyIntegrity walks every hash table and checks the protector's
// invariants: no entry with a negative reference count, no live (refs > 0)
// entry whose object memory lost its tag, and no dead entry still linked.
// Tests and the fuzzer call it at teardown; a non-nil error indicates a bug
// in the tag lifecycle.
func (p *Protector) VerifyIntegrity() error {
	if p.cfg.Lock == LockGlobal {
		p.global.Lock()
		defer p.global.Unlock()
	}
	for i := range p.shards {
		sh := &p.shards[i]
		if p.cfg.Lock != LockGlobal {
			sh.mu.Lock()
		}
		for begin, en := range sh.entries {
			if p.cfg.Lock != LockGlobal {
				en.mu.Lock()
			}
			refs, tag, dead := en.refs, en.tag, en.dead
			if p.cfg.Lock != LockGlobal {
				en.mu.Unlock()
			}
			if dead {
				if p.cfg.Lock != LockGlobal {
					sh.mu.Unlock()
				}
				return fmt.Errorf("core: dead entry still linked at %v", begin)
			}
			if refs < 0 {
				if p.cfg.Lock != LockGlobal {
					sh.mu.Unlock()
				}
				return fmt.Errorf("core: negative refcount %d at %v", refs, begin)
			}
			if refs > 0 {
				m, err := p.mappingFor(begin)
				if err != nil {
					if p.cfg.Lock != LockGlobal {
						sh.mu.Unlock()
					}
					return err
				}
				if got := m.TagAt(begin); got != tag {
					if p.cfg.Lock != LockGlobal {
						sh.mu.Unlock()
					}
					return fmt.Errorf("core: live entry at %v has memory tag %s, entry tag %s", begin, got, tag)
				}
			}
		}
		if p.cfg.Lock != LockGlobal {
			sh.mu.Unlock()
		}
	}
	return nil
}
