package cpu

import (
	"sync"
	"testing"

	"mte4jni/internal/mte"
)

func TestNewStartsSuppressed(t *testing.T) {
	c := New("main", mte.TCFSync)
	if !c.TCO() {
		t.Fatal("new context should start with TCO=1 (checks suppressed)")
	}
	if c.Checking() {
		t.Fatal("Checking() must be false while TCO=1")
	}
	c.SetTCO(false)
	if !c.Checking() {
		t.Fatal("Checking() must be true in sync mode with TCO=0")
	}
}

func TestCheckingRequiresMode(t *testing.T) {
	c := New("t", mte.TCFNone)
	c.SetTCO(false)
	if c.Checking() {
		t.Fatal("TCFNone must never check, regardless of TCO")
	}
	c.SetCheckMode(mte.TCFAsync)
	if !c.Checking() {
		t.Fatal("async mode with TCO=0 must check")
	}
}

func TestFrameStack(t *testing.T) {
	c := New("t", mte.TCFSync)
	pop1 := c.Enter("Java_MainActivity_mteTest+0")
	pop2 := c.Enter("test_ofb+0")
	c.SetPC("test_ofb+124")
	if got := c.PC(); got != "test_ofb+124" {
		t.Fatalf("PC = %q", got)
	}
	bt := c.Backtrace()
	if len(bt) != 2 || bt[0] != "test_ofb+124" || bt[1] != "Java_MainActivity_mteTest+0" {
		t.Fatalf("Backtrace = %v", bt)
	}
	pop2()
	pop1()
	if got := c.PC(); got != "<unknown>" {
		t.Fatalf("PC after popping all frames = %q", got)
	}
}

func TestSetPCWithEmptyStackPushes(t *testing.T) {
	c := New("t", mte.TCFSync)
	c.SetPC("somewhere+8")
	if c.PC() != "somewhere+8" {
		t.Fatalf("PC = %q", c.PC())
	}
}

func TestAsyncLatchAndTake(t *testing.T) {
	c := New("t", mte.TCFAsync)
	f1 := &mte.Fault{Kind: mte.FaultTagMismatch, PtrTag: 5, MemTag: 2}
	f2 := &mte.Fault{Kind: mte.FaultTagMismatch, PtrTag: 6, MemTag: 2}
	c.LatchAsyncFault(f1)
	c.LatchAsyncFault(f2)
	if !c.PendingAsyncFault() {
		t.Fatal("fault should be pending")
	}
	got := c.TakeAsyncFault("getuid+4")
	if got == nil || got.PtrTag != 5 {
		t.Fatalf("TakeAsyncFault returned %+v, want first fault", got)
	}
	if !got.Async || got.PC != "getuid+4" {
		t.Fatalf("fault not stamped as async at report site: %+v", got)
	}
	if c.PendingAsyncFault() {
		t.Fatal("TFSR should be clear after take")
	}
	if c.TakeAsyncFault("x") != nil {
		t.Fatal("second take must return nil")
	}
	if c.AsyncFaultCount() != 2 {
		t.Fatalf("AsyncFaultCount = %d, want 2", c.AsyncFaultCount())
	}
}

func TestSyscallDeliversOnlyInAsyncMode(t *testing.T) {
	sync := New("s", mte.TCFSync)
	sync.LatchAsyncFault(&mte.Fault{})
	if sync.Syscall("getuid") != nil {
		t.Fatal("sync-mode thread must not deliver async faults at syscalls")
	}

	async := New("a", mte.TCFAsync)
	if async.Syscall("getuid") != nil {
		t.Fatal("no fault pending, Syscall must return nil")
	}
	async.LatchAsyncFault(&mte.Fault{Kind: mte.FaultTagMismatch})
	f := async.Syscall("getuid")
	if f == nil {
		t.Fatal("async fault must surface at the next syscall")
	}
	if f.PC != "getuid+4 (libc.so)" {
		t.Fatalf("async fault PC = %q, want the syscall site", f.PC)
	}
}

func TestConcurrentLatchIsSafe(t *testing.T) {
	c := New("t", mte.TCFAsync)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.LatchAsyncFault(&mte.Fault{})
			}
		}()
	}
	wg.Wait()
	if c.AsyncFaultCount() != 3200 {
		t.Fatalf("AsyncFaultCount = %d, want 3200", c.AsyncFaultCount())
	}
	if c.TakeAsyncFault("sync") == nil {
		t.Fatal("one fault must be latched")
	}
}
