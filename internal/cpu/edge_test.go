package cpu

import (
	"sync"
	"testing"

	"mte4jni/internal/mte"
)

func TestNameAndModeAccessors(t *testing.T) {
	c := New("JNI-thread-7", mte.TCFAsync)
	if c.Name() != "JNI-thread-7" {
		t.Fatal("Name wrong")
	}
	if c.CheckMode() != mte.TCFAsync {
		t.Fatal("CheckMode wrong")
	}
	c.SetCheckMode(mte.TCFSync)
	if c.CheckMode() != mte.TCFSync {
		t.Fatal("SetCheckMode lost")
	}
}

func TestTCOToggle(t *testing.T) {
	c := New("t", mte.TCFSync)
	for i := 0; i < 4; i++ {
		c.SetTCO(false)
		if c.TCO() || !c.Checking() {
			t.Fatal("TCO clear not observed")
		}
		c.SetTCO(true)
		if !c.TCO() || c.Checking() {
			t.Fatal("TCO set not observed")
		}
	}
}

func TestBacktraceEmptyAndDeep(t *testing.T) {
	c := New("t", mte.TCFSync)
	if len(c.Backtrace()) != 0 {
		t.Fatal("fresh context has frames")
	}
	var pops []func()
	for i := 0; i < 8; i++ {
		pops = append(pops, c.Enter("frame"))
	}
	if len(c.Backtrace()) != 8 {
		t.Fatal("deep stack lost frames")
	}
	for i := len(pops) - 1; i >= 0; i-- {
		pops[i]()
	}
	if len(c.Backtrace()) != 0 {
		t.Fatal("frames not fully popped")
	}
	// Popping past empty is harmless.
	pop := c.Enter("x")
	pop()
	pop()
}

func TestConcurrentFrameReadsDuringMutation(t *testing.T) {
	// Fault reporting reads the backtrace from another goroutine while the
	// owner pushes/pops; both must be safe.
	c := New("t", mte.TCFSync)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Backtrace()
				_ = c.PC()
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		pop := c.Enter("f")
		c.SetPC("f+4")
		pop()
	}
	close(stop)
	wg.Wait()
}
