package cpu

import (
	"sync"
	"testing"

	"mte4jni/internal/mte"
)

func TestTLBLookupInsertFlush(t *testing.T) {
	var tlb TLB
	if tlb.Lookup(100, 8) != nil {
		t.Fatal("empty TLB hit")
	}
	ref, aux := new(int), new(int)
	tlb.Insert(100, 200, ref, aux)
	if got := tlb.Lookup(100, 8); got == nil || got.Ref != any(ref) || got.Aux != any(aux) {
		t.Fatal("inserted entry not found with ref and aux intact")
	}
	if got := tlb.Lookup(192, 8); got == nil || got.Ref != any(ref) {
		t.Fatal("last full access inside entry missed")
	}
	if tlb.Lookup(193, 8) != nil {
		t.Fatal("access crossing the entry end hit")
	}
	if tlb.Lookup(200, 0) != nil {
		t.Fatal("zero-size access at one-past-the-end hit; must miss like Resolve faults")
	}
	if got := tlb.Lookup(199, 0); got == nil || got.Ref != any(ref) {
		t.Fatal("zero-size access on the last byte missed")
	}
	tlb.Flush(7)
	if tlb.Lookup(100, 8) != nil {
		t.Fatal("entry survived a flush")
	}
	if tlb.Epoch != 7 {
		t.Fatalf("flush did not stamp epoch: %d", tlb.Epoch)
	}
	hits, misses := tlb.Stats()
	if hits != 3 || misses != 4 {
		t.Fatalf("stats = %d hits / %d misses across the flush, want 3/4", hits, misses)
	}
}

func TestTLBRoundRobinEviction(t *testing.T) {
	var tlb TLB
	refs := make([]*int, TLBSize+1)
	for i := range refs {
		refs[i] = new(int)
		tlb.Insert(uint64(i*1000), uint64(i*1000+100), refs[i], nil)
	}
	// Entry 0 was evicted by the TLBSize'th insert; the rest survive.
	if tlb.Lookup(0, 8) != nil {
		t.Fatal("oldest entry not evicted")
	}
	for i := 1; i <= TLBSize; i++ {
		if got := tlb.Lookup(uint64(i*1000), 8); got == nil || got.Ref != any(refs[i]) {
			t.Fatalf("entry %d evicted out of round-robin order", i)
		}
	}
}

// TestPackedStateIndependence checks that TCO writes never disturb the check
// mode and vice versa, now that both live in one packed atomic word.
func TestPackedStateIndependence(t *testing.T) {
	c := New("t", mte.TCFSync)
	if !c.TCO() || c.CheckMode() != mte.TCFSync {
		t.Fatalf("initial state: TCO=%v mode=%v", c.TCO(), c.CheckMode())
	}
	c.SetTCO(false)
	if c.CheckMode() != mte.TCFSync {
		t.Fatal("SetTCO clobbered the check mode")
	}
	if !c.Checking() {
		t.Fatal("sync mode with TCO clear must check")
	}
	c.SetCheckMode(mte.TCFAsync)
	if c.TCO() {
		t.Fatal("SetCheckMode clobbered TCO")
	}
	c.SetCheckMode(mte.TCFNone)
	if c.Checking() {
		t.Fatal("mode none must not check")
	}
	c.SetTCO(true)
	c.SetCheckMode(mte.TCFSync)
	if c.Checking() {
		t.Fatal("TCO set must suppress checking")
	}
}

// TestPackedStateConcurrentWriters hammers the CAS loops from racing
// writers: every combination written must be one some writer intended —
// fields never tear into each other.
func TestPackedStateConcurrentWriters(t *testing.T) {
	c := New("t", mte.TCFNone)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					c.SetTCO(i%2 == 0)
				} else {
					c.SetCheckMode(mte.CheckMode(i % 3))
				}
				if m := c.CheckMode(); m > mte.TCFAsync {
					t.Errorf("torn mode %v", m)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
