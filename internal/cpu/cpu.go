// Package cpu models the per-thread execution state that MTE4JNI depends
// on: the TCO (Tag Check Override) register used to enable or disable tag
// checking at thread level (paper §3.3), the TCF check-mode selection, the
// TFSR-like accumulator where asynchronous tag faults are latched, and a
// simulated call stack so fault reports can show *where* a fault was
// detected — the property compared across schemes in the paper's Figure 4.
//
// A Context is owned by exactly one simulated thread (one goroutine), but
// the TCO and TFSR state is accessed with atomics so that diagnostic readers
// (tests, the report package) can observe it from outside.
package cpu

import (
	"sync"
	"sync/atomic"

	"mte4jni/internal/mte"
)

// Context is the architectural state of one simulated hardware thread.
//
// The zero value is not ready for use; create Contexts with New. A Context
// starts with tag checking suppressed (TCO=1), matching a thread that is
// executing managed (Java) code: per the paper, checking is switched on only
// while the thread runs native code, by the trampoline writing TCO.
type Context struct {
	name string

	// state packs the two registers the access hot path consults on every
	// single load and store into one atomic word so that the checking
	// decision is a single atomic load:
	//
	//   bits 0-1: the TCF tag-check-fault mode (none/sync/async)
	//   bit 2:    TCO — set when tag checks are suppressed (ARM sense)
	//
	// Both fields are written rarely (VM configuration, trampoline
	// entry/exit) and read on every access, so the packing trades a CAS
	// loop on the cold writes for one load instead of two on the hot read.
	state atomic.Int32

	// tlb is the per-thread mapping-translation cache consulted by the
	// package mem fast path. It is owned by the goroutine driving this
	// Context; see TLB for the invalidation contract.
	tlb TLB

	// tfsr latches the first asynchronously detected fault, mirroring
	// TFSR_EL0.TF0. Further async faults are counted but not recorded.
	tfsrMu     sync.Mutex
	tfsrFault  *mte.Fault
	tfsrExtra  int
	asyncTotal atomic.Int64

	// frames is the simulated call stack, outermost first. Only the owning
	// goroutine pushes and pops, but fault reporting reads it, so it is
	// guarded for the benefit of the race detector.
	framesMu sync.Mutex
	frames   []string
}

// state word layout: TCF mode in the low bits, TCO above it.
const (
	stateTCFMask = int32(0b011)
	stateTCOBit  = int32(0b100)
)

// New creates a Context for a thread with the given name. Checking starts
// suppressed (TCO=1) in the given check mode.
func New(name string, mode mte.CheckMode) *Context {
	c := &Context{name: name}
	c.state.Store(int32(mode)&stateTCFMask | stateTCOBit)
	return c
}

// Name returns the thread name used in fault reports.
func (c *Context) Name() string { return c.name }

// CheckMode returns the thread's TCF mode.
func (c *Context) CheckMode() mte.CheckMode {
	return mte.CheckMode(c.state.Load() & stateTCFMask)
}

// SetCheckMode changes the thread's TCF mode, preserving TCO.
func (c *Context) SetCheckMode(m mte.CheckMode) {
	for {
		old := c.state.Load()
		next := old&^stateTCFMask | int32(m)&stateTCFMask
		if c.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetTCO writes the TCO register. true suppresses tag checking (ARM TCO=1);
// false enables it. Trampolines call SetTCO(false) on native entry and
// SetTCO(true) on native exit (paper §3.3/§4.3).
func (c *Context) SetTCO(suppressed bool) {
	for {
		old := c.state.Load()
		next := old &^ stateTCOBit
		if suppressed {
			next = old | stateTCOBit
		}
		if next == old || c.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// TCO reports whether tag checking is currently suppressed.
func (c *Context) TCO() bool { return c.state.Load()&stateTCOBit != 0 }

// Checking reports whether an access on this thread should be tag-checked
// right now: the mode must not be none and TCO must be clear. Thanks to the
// packed state word this is a single atomic load — the cost every access
// pays even with checking disabled (managed code, TCO=1).
func (c *Context) Checking() bool {
	st := c.state.Load()
	return st&stateTCOBit == 0 && st&stateTCFMask != int32(mte.TCFNone)
}

// TLB returns the thread's mapping-translation cache. Only the goroutine
// driving the Context may use it.
func (c *Context) TLB() *TLB { return &c.tlb }

// Enter pushes a simulated stack frame labelled pc and returns a function
// that pops it. Use with defer:
//
//	defer ctx.Enter("test_ofb+0")()
func (c *Context) Enter(pc string) func() {
	c.framesMu.Lock()
	c.frames = append(c.frames, pc)
	c.framesMu.Unlock()
	return func() {
		c.framesMu.Lock()
		if n := len(c.frames); n > 0 {
			c.frames = c.frames[:n-1]
		}
		c.framesMu.Unlock()
	}
}

// SetPC replaces the label of the innermost frame, simulating the program
// counter advancing within a native function. If no frame is live, it pushes
// one.
func (c *Context) SetPC(pc string) {
	c.framesMu.Lock()
	if n := len(c.frames); n > 0 {
		c.frames[n-1] = pc
	} else {
		c.frames = append(c.frames, pc)
	}
	c.framesMu.Unlock()
}

// PC returns the innermost simulated frame label, or "<unknown>" when the
// thread has no live frames.
func (c *Context) PC() string {
	c.framesMu.Lock()
	defer c.framesMu.Unlock()
	if n := len(c.frames); n > 0 {
		return c.frames[n-1]
	}
	return "<unknown>"
}

// Backtrace returns a copy of the simulated call stack, innermost first —
// the order logcat prints "#00 pc …" lines in.
func (c *Context) Backtrace() []string {
	c.framesMu.Lock()
	defer c.framesMu.Unlock()
	bt := make([]string, len(c.frames))
	for i, f := range c.frames {
		bt[len(c.frames)-1-i] = f
	}
	return bt
}

// LatchAsyncFault records an asynchronously detected tag mismatch in the
// TFSR accumulator. Only the first fault is kept in full, matching the
// single TF0 bit plus the kernel's per-thread fault record; subsequent
// faults before the next synchronization point are only counted.
func (c *Context) LatchAsyncFault(f *mte.Fault) {
	c.asyncTotal.Add(1)
	c.tfsrMu.Lock()
	defer c.tfsrMu.Unlock()
	if c.tfsrFault == nil {
		c.tfsrFault = f
	} else {
		c.tfsrExtra++
	}
}

// PendingAsyncFault reports whether an async fault is latched without
// consuming it.
func (c *Context) PendingAsyncFault() bool {
	c.tfsrMu.Lock()
	defer c.tfsrMu.Unlock()
	return c.tfsrFault != nil
}

// TakeAsyncFault consumes and returns the latched fault, stamping it with
// the backtrace of the *reporting* site (reportPC) rather than the faulting
// site — this is precisely the diagnostic imprecision of asynchronous MTE
// the paper demonstrates in Figure 4c. It returns nil when nothing is
// pending.
func (c *Context) TakeAsyncFault(reportPC string) *mte.Fault {
	c.tfsrMu.Lock()
	f := c.tfsrFault
	c.tfsrFault = nil
	c.tfsrExtra = 0
	c.tfsrMu.Unlock()
	if f == nil {
		return nil
	}
	f.Async = true
	f.PC = reportPC
	f.Backtrace = append([]string{reportPC}, c.Backtrace()...)
	f.Thread = c.name
	return f
}

// AsyncFaultCount returns the total number of async faults ever latched on
// this thread, including coalesced ones. Useful for tests and statistics.
func (c *Context) AsyncFaultCount() int64 { return c.asyncTotal.Load() }

// Syscall simulates the thread performing a system call named name (for
// example "getuid" or "write"). On real hardware running in asynchronous
// mode, the kernel checks TFSR on every entry from userspace and delivers a
// deferred SIGSEGV there; Syscall models that synchronization point and
// returns the deferred fault, if any.
func (c *Context) Syscall(name string) *mte.Fault {
	if c.CheckMode() != mte.TCFAsync {
		return nil
	}
	return c.TakeAsyncFault(name + "+4 (libc.so)")
}
