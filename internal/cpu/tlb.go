package cpu

// This file implements the per-thread mapping-translation cache (the "TLB")
// consulted by the package mem access fast path. Resolving which mapping an
// address belongs to used to be a linear scan over the space's mapping list
// on every single checked access; with the TLB the common case is a couple
// of compares against recently used entries, exactly as a hardware TLB turns
// a page-table walk into a CAM hit.
//
// # Invalidation contract
//
// The TLB caches (base, end, mapping) triples copied from a mem.Space
// snapshot. The contract between the two packages, relied on by the
// TestTLBInvalidationStress race test in package mem:
//
//  1. A TLB is owned by the single goroutine driving its Context. No other
//     goroutine may touch it, so hits take no locks and no atomics.
//  2. mem.Space.Map publishes the new mapping snapshot *before* bumping the
//     space's epoch counter (both atomic). The mem fast path reads the epoch
//     first and flushes the TLB whenever it differs from TLB.Epoch, then — on
//     a miss — consults the snapshot. A thread that observes the new epoch
//     therefore always re-resolves against a snapshot at least as new.
//  3. Mappings are never unmapped or moved, so a cached entry can never
//     describe memory that no longer exists; epoch invalidation exists so the
//     contract stays correct if unmapping is ever added, and keeps the
//     staleness window for *new* mappings bounded at one epoch check per
//     access (a stale TLB can only miss, never hit wrongly — a miss falls
//     through to the snapshot, which Map updates atomically).
//
// Entries are fully associative with round-robin replacement: TLBSize is
// small enough that probing every entry is cheaper than any bookkeeping.

// TLBSize is the number of cached translations per thread. The JNI access
// patterns of the paper touch at most a handful of mappings per native call
// (Java heap, native heap, and the occasional extra space), so four entries
// capture essentially all locality.
const TLBSize = 4

// TLBEntry caches one mapping's address range. Ref holds the *mem.Mapping;
// it is typed as any because package cpu sits below package mem in the
// dependency order.
type TLBEntry struct {
	// Base and End delimit the mapping's [Base, End) address range. End==0
	// marks an empty entry (no mapping starts at address 0).
	Base, End uint64
	// Ref is the *mem.Mapping this entry translates to.
	Ref any
	// Aux carries one extra translation-scoped pointer alongside the
	// mapping — package mem caches the mapping's resolved tag state here
	// (the materialized tag-page directory, the tag table while the lazy
	// directory is still nil, or nil for untagged mappings), saving the
	// dependent loads per checked access. Anything cached in Aux must be
	// stable under Ref's invalidation contract: it is only dropped by an
	// epoch flush, so every transition of the cached state (directory
	// materialization) must bump the space epoch. Per-page tag pointers
	// must NOT go here — SetTagRange swaps them without an epoch bump.
	Aux any
}

// TLB is a per-thread translation cache. The zero value is an empty TLB,
// valid for epoch 0.
type TLB struct {
	// Epoch is the mem.Space epoch the entries were filled under. The mem
	// fast path flushes the TLB when the space's epoch has moved on.
	Epoch uint64
	// Entries are the cached translations, probed in order.
	Entries [TLBSize]TLBEntry
	// next is the round-robin replacement cursor.
	next int

	// hits and misses instrument the cache for tests and tuning; they are
	// owned by the driving goroutine like everything else here.
	hits, misses uint64
}

// Lookup returns the cached entry for the mapping containing
// [addr, addr+size), or nil on a miss. A hit guarantees containment of the
// whole access, so callers need no further bounds check, and the returned
// entry stays valid until the next Insert or Flush — callers read Ref/Aux
// immediately, they do not retain the pointer. addr itself must lie strictly
// inside the mapping (addr < End) even for size 0, mirroring how resolving
// the one-past-the-end address of a mapping faults on hardware.
//
//mte4jni:fastpath
func (t *TLB) Lookup(addr uint64, size int) *TLBEntry {
	for i := range t.Entries {
		e := &t.Entries[i]
		if addr >= e.Base && addr < e.End && addr+uint64(size) <= e.End {
			t.hits++
			return e
		}
	}
	t.misses++
	return nil
}

// Insert caches a translation, evicting round-robin. aux rides along under
// the Aux contract documented on TLBEntry (immutable per mapping; nil is
// fine).
//
//mte4jni:fastpath
func (t *TLB) Insert(base, end uint64, ref, aux any) {
	t.Entries[t.next] = TLBEntry{Base: base, End: end, Ref: ref, Aux: aux}
	t.next++
	if t.next == TLBSize {
		t.next = 0
	}
}

// Flush empties the TLB and stamps it with the given epoch.
//
//mte4jni:fastpath
func (t *TLB) Flush(epoch uint64) {
	*t = TLB{Epoch: epoch, hits: t.hits, misses: t.misses}
}

// Stats reports the hit and miss counts since the Context was created.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }
