package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilContextIsDetached(t *testing.T) {
	var ec *Context
	if err := ec.Canceled(); err != nil {
		t.Fatalf("nil.Canceled() = %v, want nil", err)
	}
	if err := ec.Err(); err != nil {
		t.Fatalf("nil.Err() = %v, want nil", err)
	}
	if d := ec.Done(); d != nil {
		t.Fatalf("nil.Done() = %v, want nil", d)
	}
	if _, ok := ec.Deadline(); ok {
		t.Fatal("nil.Deadline() reported a deadline")
	}
	if b := ec.StepBudget(); b != 0 {
		t.Fatalf("nil.StepBudget() = %d, want 0", b)
	}
	ec.Begin(PhaseExec)
	ec.End(PhaseExec)
	if s := ec.Spans(); s != nil {
		t.Fatalf("nil.Spans() = %v, want nil", s)
	}
}

func TestDetachedNeverCancels(t *testing.T) {
	ec := Detached()
	if err := ec.Canceled(); err != nil {
		t.Fatalf("Canceled() = %v, want nil", err)
	}
	if ec.Done() != nil {
		t.Fatal("detached Done() should be nil")
	}
}

func TestCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ec := New(ctx, Options{})
	if err := ec.Canceled(); err != nil {
		t.Fatalf("pre-cancel Canceled() = %v, want nil", err)
	}
	cancel()
	if err := ec.Canceled(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Canceled() = %v, want context.Canceled", err)
	}
	if err := ec.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

func TestDeadlinePropagates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ec := New(ctx, Options{})
	if _, ok := ec.Deadline(); !ok {
		t.Fatal("Deadline() not reported")
	}
	<-ec.Done()
	if err := ec.Canceled(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Canceled() = %v, want DeadlineExceeded", err)
	}
}

func TestCanceledPollAllocsFree(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ec := New(ctx, Options{})
	allocs := testing.AllocsPerRun(1000, func() {
		if ec.Canceled() != nil {
			t.Fatal("unexpected cancel")
		}
	})
	if allocs != 0 {
		t.Fatalf("Canceled poll allocates %v allocs/op, want 0", allocs)
	}
}

func TestSpanRecorderAllocsFree(t *testing.T) {
	ec := Detached()
	allocs := testing.AllocsPerRun(1000, func() {
		ec.Begin(PhaseExec)
		ec.End(PhaseExec)
	})
	if allocs != 0 {
		t.Fatalf("Begin/End allocates %v allocs/op, want 0", allocs)
	}
}

func TestSpansOrderAndCompleteness(t *testing.T) {
	ec := Detached()
	// Record out of order; only completed phases appear, in lifecycle order.
	ec.Begin(PhaseExec)
	ec.End(PhaseExec)
	ec.Begin(PhaseEdge)
	ec.End(PhaseEdge)
	ec.Begin(PhaseLease) // begun, never ended: dropped
	spans := ec.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() = %v, want 2 entries", spans)
	}
	if spans[0].Phase != "edge" || spans[1].Phase != "exec" {
		t.Fatalf("Spans() order = [%s %s], want [edge exec]", spans[0].Phase, spans[1].Phase)
	}
	for _, s := range spans {
		if s.DurationNS < 0 {
			t.Fatalf("span %s has negative duration %d", s.Phase, s.DurationNS)
		}
	}
}

func TestStepsErrorMatchesSentinel(t *testing.T) {
	err := fmt.Errorf("run failed: %w", &StepsError{Method: "m", Steps: 10, Budget: 5})
	if !errors.Is(err, ErrStepsExceeded) {
		t.Fatal("wrapped StepsError does not match ErrStepsExceeded")
	}
	// interp tests and callers grep for the word "steps" in the message.
	if got := err.Error(); !contains(got, "step") {
		t.Fatalf("StepsError message %q does not mention steps", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Abort
	}{
		{nil, AbortNone},
		{errors.New("boom"), AbortNone},
		{context.Canceled, AbortCanceled},
		{fmt.Errorf("wrap: %w", context.Canceled), AbortCanceled},
		{context.DeadlineExceeded, AbortDeadline},
		{&StepsError{Method: "m", Steps: 2, Budget: 1}, AbortSteps},
		{fmt.Errorf("wrap: %w", ErrStepsExceeded), AbortSteps},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAbortStrings(t *testing.T) {
	if AbortNone.String() != "" {
		t.Fatalf("AbortNone = %q, want empty", AbortNone.String())
	}
	if AbortCanceled.String() != "canceled" ||
		AbortDeadline.String() != "deadline_exceeded" ||
		AbortSteps.String() != "steps_exceeded" {
		t.Fatal("abort wire strings changed")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
