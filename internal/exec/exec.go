// Package exec defines the execution-context spine of the serving runtime:
// one *Context created at the HTTP edge and threaded through every layer a
// request touches — admission screening, the pool lease, the VM session, the
// JNI trampolines, the interpreter dispatch loop and the workload kernels —
// down to fault reporting.
//
// The Context carries three things:
//
//   - cancellation and deadline, by wrapping a standard context.Context (it
//     implements context.Context itself, so it flows through APIs that speak
//     the standard interface, like pool.Acquire);
//   - a step/fuel budget for the interpreter, so a runaway program is bounded
//     by policy rather than by the interpreter's hardcoded MaxSteps;
//   - a zero-allocation span recorder over the fixed request lifecycle
//     (edge → screen → lease → exec → release), so per-request tracing costs
//     two time.Now calls per phase and nothing on any per-access path.
//
// Cancellation is cooperative: nothing in the simulated runtime is preempted.
// The interpreter polls Canceled on an amortized countdown (every
// interp.CancelPollInterval steps), the JNI trampoline checks it once at
// native entry, and workload kernels check it at phase boundaries. The
// per-access fast path (//mte4jni:fastpath in internal/mem) is untouched —
// the same constraint that makes CHERI-style per-access instrumentation
// viable only when the hot loop stays closed.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Phase indexes the fixed request-lifecycle spans the Context records.
type Phase int

const (
	// PhaseEdge covers HTTP decode and request validation.
	PhaseEdge Phase = iota
	// PhaseScreen covers static admission screening of inline programs.
	PhaseScreen
	// PhaseLease covers waiting for and acquiring a pool session.
	PhaseLease
	// PhaseExec covers interpreter / workload execution inside the session.
	PhaseExec
	// PhaseRelease covers returning the session (recycle or retire).
	PhaseRelease
	// NumPhases sizes the fixed span arrays.
	NumPhases
)

// String names the phase as it appears in span summaries and /metrics.
func (p Phase) String() string {
	switch p {
	case PhaseEdge:
		return "edge"
	case PhaseScreen:
		return "screen"
	case PhaseLease:
		return "lease"
	case PhaseExec:
		return "exec"
	case PhaseRelease:
		return "release"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Span is one completed phase timing, offsets relative to Context creation.
type Span struct {
	Phase      string `json:"phase"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// ErrStepsExceeded is the sentinel a *StepsError matches via errors.Is: the
// run consumed its whole step/fuel budget. Budget exhaustion is a policy
// limit, not a memory fault — sessions that hit it are recycled, never
// quarantined.
var ErrStepsExceeded = errors.New("exec: step budget exceeded")

// StepsError reports interpreter fuel exhaustion with the budget in force.
type StepsError struct {
	// Method names the bytecode method that was executing.
	Method string
	// Steps is the count consumed; Budget is the limit it exceeded.
	Steps, Budget int64
}

// Error implements the error interface.
func (e *StepsError) Error() string {
	return fmt.Sprintf("exec: %s: exceeded step budget (%d steps, budget %d)", e.Method, e.Steps, e.Budget)
}

// Is matches ErrStepsExceeded.
func (e *StepsError) Is(target error) bool { return target == ErrStepsExceeded }

// Abort classifies why an execution ended early, for structured responses
// and the /metrics counters.
type Abort int

const (
	// AbortNone: the run completed (cleanly, with a fault, or with an
	// ordinary error).
	AbortNone Abort = iota
	// AbortCanceled: the context was canceled (client disconnect).
	AbortCanceled
	// AbortDeadline: the context's deadline expired (run timeout).
	AbortDeadline
	// AbortSteps: the step/fuel budget was exhausted.
	AbortSteps
)

// String renders the wire form used in RunResponse.Abort ("" for AbortNone).
func (a Abort) String() string {
	switch a {
	case AbortCanceled:
		return "canceled"
	case AbortDeadline:
		return "deadline_exceeded"
	case AbortSteps:
		return "steps_exceeded"
	default:
		return ""
	}
}

// Classify maps an execution error to its abort kind: context cancellation,
// deadline expiry, fuel exhaustion, or none (any other error, including nil).
func Classify(err error) Abort {
	switch {
	case err == nil:
		return AbortNone
	case errors.Is(err, context.Canceled):
		return AbortCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return AbortDeadline
	case errors.Is(err, ErrStepsExceeded):
		return AbortSteps
	default:
		return AbortNone
	}
}

// Options configures New.
type Options struct {
	// StepBudget bounds interpreter steps per run (0 = the interpreter's
	// own default).
	StepBudget int64
}

// Context is the per-request execution context. It implements
// context.Context (delegating to the parent it wraps) and is additionally a
// fuel meter and a fixed-size span recorder. A nil *Context is valid and
// means "detached": never canceled, no deadline, no budget, spans dropped —
// so library code can call its methods unconditionally.
//
// A Context is owned by one request. Begin/End are not safe for concurrent
// use; Canceled and the context.Context methods are (they only read
// immutable fields and the parent's channel).
type Context struct {
	parent context.Context
	done   <-chan struct{}
	start  time.Time

	stepBudget int64

	phaseStart [NumPhases]time.Duration // offset from start; 0 = not begun
	phaseDur   [NumPhases]time.Duration
	phaseDone  [NumPhases]bool
}

// New creates the execution context for one request, wrapping the parent's
// cancellation and deadline (parent may be nil for a detached context).
func New(parent context.Context, opts Options) *Context {
	c := &Context{parent: parent, start: time.Now(), stepBudget: opts.StepBudget}
	if parent != nil {
		c.done = parent.Done()
	}
	return c
}

// Detached returns a fresh context with no cancellation, deadline or budget
// — the shape tests and direct (non-served) execution use.
func Detached() *Context { return New(nil, Options{}) }

// --- context.Context ------------------------------------------------------

// Deadline implements context.Context.
func (c *Context) Deadline() (time.Time, bool) {
	if c == nil || c.parent == nil {
		return time.Time{}, false
	}
	return c.parent.Deadline()
}

// Done implements context.Context.
func (c *Context) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.done
}

// Err implements context.Context.
func (c *Context) Err() error {
	if c == nil || c.parent == nil {
		return nil
	}
	return c.parent.Err()
}

// Value implements context.Context.
func (c *Context) Value(key any) any {
	if c == nil || c.parent == nil {
		return nil
	}
	return c.parent.Value(key)
}

// --- cancellation polling -------------------------------------------------

// Canceled is the cooperative cancellation poll: non-blocking, nil-receiver
// safe, and allocation-free on the not-canceled path. It returns the
// parent's error (context.Canceled or context.DeadlineExceeded) once the
// context is done, nil before.
func (c *Context) Canceled() error {
	if c == nil || c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.parent.Err()
	default:
		return nil
	}
}

// StepBudget returns the per-run interpreter step budget (0 = unset).
func (c *Context) StepBudget() int64 {
	if c == nil {
		return 0
	}
	return c.stepBudget
}

// --- span recording -------------------------------------------------------

// Begin marks the start of a lifecycle phase. Zero-allocation; out-of-range
// phases and nil contexts are ignored.
func (c *Context) Begin(p Phase) {
	if c == nil || p < 0 || p >= NumPhases {
		return
	}
	c.phaseStart[p] = time.Since(c.start)
	c.phaseDone[p] = false
}

// End marks the end of a lifecycle phase begun with Begin. Zero-allocation.
func (c *Context) End(p Phase) {
	if c == nil || p < 0 || p >= NumPhases {
		return
	}
	c.phaseDur[p] = time.Since(c.start) - c.phaseStart[p]
	c.phaseDone[p] = true
}

// Spans materializes the completed phase timings in lifecycle order. This is
// the reporting path: it allocates, and is called once per request after
// execution, never on a hot path.
func (c *Context) Spans() []Span {
	if c == nil {
		return nil
	}
	var out []Span
	for p := Phase(0); p < NumPhases; p++ {
		if !c.phaseDone[p] {
			continue
		}
		out = append(out, Span{
			Phase:      p.String(),
			StartNS:    c.phaseStart[p].Nanoseconds(),
			DurationNS: c.phaseDur[p].Nanoseconds(),
		})
	}
	return out
}
