package heap

import (
	"sync"
	"testing"
	"testing/quick"

	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

func newHeap(t *testing.T, cfg Config) *Heap {
	t.Helper()
	h, err := New(mem.NewSpace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllocAlignmentAndZeroing(t *testing.T) {
	for _, align := range []uint64{8, 16} {
		h := newHeap(t, Config{Size: 1 << 20, Alignment: align, MTE: true})
		a, err := h.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(a)%align != 0 {
			t.Fatalf("align %d: address %v misaligned", align, a)
		}
		buf, err := h.Mapping().Bytes(a, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("byte %d not zeroed", i)
			}
		}
	}
}

func TestInvalidAlignment(t *testing.T) {
	if _, err := New(mem.NewSpace(), Config{Alignment: 12}); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := New(mem.NewSpace(), Config{Alignment: 4}); err == nil {
		t.Fatal("alignment below 8 accepted")
	}
}

func TestEightByteAlignmentCanShareGranule(t *testing.T) {
	// The §4.1 hazard: under 8-byte alignment two 8-byte objects can land in
	// one 16-byte granule; under 16-byte alignment they never do.
	h8 := newHeap(t, Config{Size: 1 << 20, Alignment: 8, MTE: true})
	a1, _ := h8.Alloc(8)
	a2, _ := h8.Alloc(8)
	if a1.GranuleIndex() != a2.GranuleIndex() {
		t.Fatal("8-byte-aligned consecutive 8-byte allocs should share a granule")
	}

	h16 := newHeap(t, Config{Size: 1 << 20, Alignment: 16, MTE: true})
	b1, _ := h16.Alloc(8)
	b2, _ := h16.Alloc(8)
	if b1.GranuleIndex() == b2.GranuleIndex() {
		t.Fatal("16-byte-aligned allocs must not share a granule")
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, _ := h.Alloc(64)
	// Dirty it, free it, reallocate: must come back zeroed.
	buf, _ := h.Mapping().Bytes(a, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(64)
	if b != a {
		t.Fatalf("free block not reused: %v vs %v", a, b)
	}
	buf2, _ := h.Mapping().Bytes(b, 64)
	for i, v := range buf2 {
		if v != 0 {
			t.Fatalf("reused block byte %d not zeroed", i)
		}
	}
}

func TestDoubleFreeAndUnknownFree(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, _ := h.Alloc(32)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free not detected")
	}
	if err := h.Free(a + 8); err == nil {
		t.Fatal("free of interior pointer not detected")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, Config{Size: 4096, Alignment: 16})
	if _, err := h.Alloc(8192); err == nil {
		t.Fatal("oversized alloc must fail")
	}
	// Fill the heap, then one more must fail.
	for i := 0; i < 4096/16; i++ {
		if _, err := h.Alloc(16); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := h.Alloc(16); err == nil {
		t.Fatal("allocation past capacity must fail")
	}
}

func TestZeroSizeAllocDistinctAddresses(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, _ := h.Alloc(0)
	b, _ := h.Alloc(0)
	if a == b {
		t.Fatal("zero-size allocations must be distinct")
	}
}

func TestStatsAndForEach(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, _ := h.Alloc(100) // rounds to 112
	h.Alloc(16)
	if got := h.Live(); got != 2 {
		t.Fatalf("Live = %d", got)
	}
	st := h.Stats()
	if st.Allocs != 2 || st.BytesInUse != 112+16 || st.BytesPeak != 128 {
		t.Fatalf("stats = %+v", st)
	}
	h.Free(a)
	st = h.Stats()
	if st.Frees != 1 || st.BytesInUse != 16 || st.BytesPeak != 128 {
		t.Fatalf("stats after free = %+v", st)
	}
	var visited int
	var total uint64
	h.ForEach(func(addr mte.Addr, size uint64) {
		visited++
		total += size
	})
	if visited != 1 || total != 16 {
		t.Fatalf("ForEach visited=%d total=%d", visited, total)
	}
	if _, ok := h.SizeOf(a); ok {
		t.Fatal("SizeOf on freed block succeeded")
	}
	if size, ok := h.SizeOf(a + 112 - 112); ok && size != 0 {
		_ = size
	}
}

func TestPropertyAllocationsNeverOverlap(t *testing.T) {
	h := newHeap(t, Config{Size: 4 << 20, Alignment: 16, MTE: true})
	type block struct {
		addr mte.Addr
		size uint64
	}
	var blocks []block
	f := func(raw uint16) bool {
		size := uint64(raw%2048) + 1
		a, err := h.Alloc(size)
		if err != nil {
			return true // OOM is acceptable, not an overlap
		}
		for _, b := range blocks {
			if a < b.addr+mte.Addr(b.size) && b.addr < a+mte.Addr(size) {
				return false
			}
		}
		if uint64(a)%16 != 0 {
			return false
		}
		blocks = append(blocks, block{a, size})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	h := newHeap(t, Config{Size: 32 << 20, Alignment: 16, MTE: true})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []mte.Addr
			for j := 0; j < 500; j++ {
				a, err := h.Alloc(uint64(j%256 + 1))
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, a)
				if j%3 == 0 {
					if err := h.Free(mine[len(mine)-1]); err != nil {
						t.Error(err)
						return
					}
					mine = mine[:len(mine)-1]
				}
			}
			for _, a := range mine {
				if err := h.Free(a); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if h.Live() != 0 {
		t.Fatalf("leaked %d allocations", h.Live())
	}
	st := h.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
}
