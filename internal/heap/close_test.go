package heap

import (
	"testing"

	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// Close unmaps the backing mapping and fails subsequent allocator calls, so
// pooled reuse of a retired heap cannot leak or corrupt simulated memory.
func TestHeapClose(t *testing.T) {
	space := mem.NewSpace()
	h, err := New(space, Config{Name: "close-test", Size: 1 << 20, Alignment: 16, MTE: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if !h.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, err := h.Alloc(64); err == nil {
		t.Fatal("Alloc succeeded on closed heap")
	}
	if err := h.Free(addr); err == nil {
		t.Fatal("Free succeeded on closed heap")
	}
	if _, ok := space.Resolve(addr); ok {
		t.Fatal("heap mapping still resolvable after Close")
	}
	// Idempotent.
	if err := h.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Closing an MTE heap must return its materialized tag pages to the space
// freelist: resident tag bytes drop to the directory-free baseline, so warm
// pool recycling (close + remap) reuses pages instead of churning garbage.
func TestHeapCloseReleasesTagPages(t *testing.T) {
	space := mem.NewSpace()
	h, err := New(space, Config{Name: "close-tags", Size: 1 << 20, Alignment: 16, MTE: true})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate and tag enough objects to materialize tag pages, the way the
	// protector tags objects on Acquire (partial-page SetTagRange spans).
	for i := 0; i < 64; i++ {
		addr, err := h.Alloc(48)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Mapping().SetTagRange(addr, addr+48, mte.Tag(1+i%15)); err != nil {
			t.Fatal(err)
		}
	}
	before := space.TagStats()
	if before.PagesResident == 0 {
		t.Fatal("tagged allocations materialized no pages; test needs a denser workload")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	after := space.TagStats()
	if after.PagesResident != 0 {
		t.Fatalf("PagesResident = %d after Close, want 0", after.PagesResident)
	}
	if space.TagBytesResident() != 0 {
		t.Fatalf("TagBytesResident = %d after Close, want 0", space.TagBytesResident())
	}
	if after.FreePages < before.PagesResident {
		t.Fatalf("FreePages = %d, want >= %d (pages recycled, not dropped)", after.FreePages, before.PagesResident)
	}
}

// Closing a heap that had TLABs and free-list entries in flight drops them
// all; nothing dangles into the unmapped region.
func TestHeapCloseDropsAllocatorState(t *testing.T) {
	space := mem.NewSpace()
	h, err := New(space, Config{Name: "close-state", Size: 1 << 20, Alignment: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Populate a TLAB (small allocs) and the free lists (freed blocks).
	var addrs []mte.Addr
	for i := 0; i < 32; i++ {
		a, err := h.Alloc(48)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs[:16] {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range h.tlabs {
		if h.tlabs[i].Load() != nil {
			t.Fatal("TLAB handle survived Close")
		}
	}
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n := len(h.shards[i].free)
		h.shards[i].mu.Unlock()
		if n != 0 {
			t.Fatal("free-list entries survived Close")
		}
	}
	for i := range h.units {
		if h.units[i].Load() != nil {
			t.Fatal("units-registry chunk survived Close")
		}
	}
}
