package heap

import (
	"sync"
	"sync/atomic"

	"mte4jni/internal/mte"
)

// This file holds the allocator's concurrency machinery: thread-local
// allocation buffers (TLABs) carved from the central bump region, the striped
// cache that hands TLABs to allocating goroutines, and the sharded
// size-class free lists. heap.go keeps the public API and the top-level
// Alloc/Free logic.

const (
	// tlabSize is how many bytes a TLAB carves from the central bump region
	// at a time. Large enough that the central carve lock is cold (one
	// acquisition per ~4K small objects at ART-typical sizes), small enough
	// that per-thread waste stays negligible against the heap.
	tlabSize = 64 << 10

	// maxTLABAlloc is the largest request served from a TLAB. Bigger blocks
	// go straight to the central bump region: carving them out of TLABs
	// would just churn the buffers.
	maxTLABAlloc = 4 << 10

	// tlabSlots is the size of the striped TLAB handle cache. Eight slots
	// comfortably cover the paper's 8-thread Figure 6 workload without two
	// allocators contending on one buffer.
	tlabSlots = 8

	// numShards is the free-list shard count. Size classes are distributed
	// across shards, so two threads freeing different classes never touch
	// the same lock. Must be a power of two.
	numShards = 16

	// unitChunkShift sizes the units-registry chunks: 2^14 entries = 64 KiB
	// per chunk, covering 256 KiB of heap at 16-byte alignment. Chunks are
	// allocated on demand as the bump cursor first reaches their range.
	unitChunkShift = 14
	chunkUnits     = 1 << unitChunkShift
)

// unitChunk is one lazily-allocated block of the units registry. Once a
// chunk pointer is published it never changes, so entries can be accessed
// with plain element atomics.
type unitChunk [chunkUnits]uint32

// tlab is one thread-local allocation buffer: a [cur, end) slice of the
// central bump region. A tlab is owned exclusively by whichever goroutine
// swapped it out of the handle cache, so its fields need no atomics.
type tlab struct {
	cur, end mte.Addr
}

// remaining returns the unallocated bytes left in the buffer.
func (t *tlab) remaining() uint64 { return uint64(t.end - t.cur) }

// freeShard is one stripe of the segregated free lists: a LIFO of recycled
// blocks per rounded size class. LIFO order is part of the allocator's
// observable behaviour (tests rely on free-then-alloc returning the same
// block) and is also the cache-friendly choice.
type freeShard struct {
	mu   sync.Mutex
	free map[uint64][]mte.Addr
}

// shardFor maps a rounded size class to its free-list shard. Consecutive
// classes land on different shards, so the common mix of small sizes spreads
// across locks.
func (h *Heap) shardFor(rounded uint64) *freeShard {
	return &h.shards[(rounded>>h.shift)&(numShards-1)]
}

// popFree takes the most recently freed block of the exact class, if any.
func (h *Heap) popFree(rounded uint64) (mte.Addr, bool) {
	sh := h.shardFor(rounded)
	sh.mu.Lock()
	list := sh.free[rounded]
	if n := len(list); n > 0 {
		addr := list[n-1]
		sh.free[rounded] = list[:n-1]
		sh.mu.Unlock()
		return addr, true
	}
	sh.mu.Unlock()
	return 0, false
}

// pushFree recycles a block onto its class's LIFO.
func (h *Heap) pushFree(addr mte.Addr, rounded uint64) {
	sh := h.shardFor(rounded)
	sh.mu.Lock()
	sh.free[rounded] = append(sh.free[rounded], addr)
	sh.mu.Unlock()
}

// takeTLAB claims a buffer from the striped handle cache, or nil when every
// slot is empty. Probing always starts at slot 0, so a single-threaded
// caller deterministically reuses the same buffer — concurrency spreads out
// only under actual contention.
func (h *Heap) takeTLAB() *tlab {
	for i := range h.tlabs {
		if t := h.tlabs[i].Swap(nil); t != nil {
			return t
		}
	}
	return nil
}

// putTLAB returns a buffer to the cache. When every slot is occupied (more
// live buffers than slots, only possible under heavy contention), the
// buffer's remainder is retired to the free lists so no memory is lost, and
// the handle is dropped.
func (h *Heap) putTLAB(t *tlab) {
	for i := range h.tlabs {
		if h.tlabs[i].CompareAndSwap(nil, t) {
			return
		}
	}
	h.retireTail(t)
}

// retireTail pushes a buffer's unallocated remainder onto the free list of
// its own size class, so refilling a TLAB never strands memory. The tail is
// one block; a future allocation of exactly that rounded size can reuse it.
func (h *Heap) retireTail(t *tlab) {
	if rem := t.remaining(); rem > 0 {
		h.pushFree(t.cur, rem)
		t.cur = t.end
	}
}

// carve advances the central bump cursor by want bytes, clamped down to at
// most the remaining capacity but never below min (the caller's immediate
// need). It returns ok=false — leaving the cursor alone — when even min does
// not fit. Clamping rather than failing lets the last partial TLAB use the
// heap's final bytes: the allocator wastes nothing at the capacity boundary
// (TestOutOfMemory fills a 4 KiB heap to the last byte through TLABs).
func (h *Heap) carve(min, want uint64) (mte.Addr, uint64, bool) {
	h.carveMu.Lock()
	remaining := h.mapping.Size() - uint64(h.cursor-h.mapping.Base())
	if remaining < min {
		h.carveMu.Unlock()
		return 0, 0, false
	}
	if want > remaining {
		want = remaining
	}
	addr := h.cursor
	h.cursor += mte.Addr(want)
	// Publish registry chunks covering the carved range before releasing the
	// lock: every block start handed out by the allocator lies inside some
	// carved range, so setLive/liveSize never see a missing chunk for a
	// legitimate address.
	first := uint64(addr-h.mapping.Base()) >> h.shift >> unitChunkShift
	last := (uint64(h.cursor-h.mapping.Base()-1) >> h.shift) >> unitChunkShift
	for c := first; c <= last; c++ {
		if h.units[c].Load() == nil {
			h.units[c].Store(new(unitChunk))
		}
	}
	h.carveMu.Unlock()
	return addr, want, true
}

// allocFromTLAB serves a small request from a thread-local buffer, refilling
// from the central region as needed. It returns ok=false only on true
// exhaustion (no buffer space and no central capacity).
func (h *Heap) allocFromTLAB(rounded uint64) (mte.Addr, bool) {
	t := h.takeTLAB()
	if t == nil {
		t = new(tlab)
	}
	if t.remaining() < rounded {
		// Refill: retire the remainder (it stays allocatable through the
		// free lists) and carve a fresh buffer.
		h.retireTail(t)
		base, got, ok := h.carve(rounded, tlabSize)
		if !ok {
			// Central region exhausted. The empty handle is still worth
			// caching; the next alloc may be served by the free lists.
			h.putTLAB(t)
			return 0, false
		}
		t.cur, t.end = base, base+mte.Addr(got)
	}
	addr := t.cur
	t.cur += mte.Addr(rounded)
	h.putTLAB(t)
	return addr, true
}

// blockIndex converts a block base address to its units-array index, or
// ok=false when addr cannot be a block start (outside the mapping or
// misaligned).
func (h *Heap) blockIndex(addr mte.Addr) (uint64, bool) {
	if addr < h.mapping.Base() || addr >= h.mapping.End() {
		return 0, false
	}
	off := uint64(addr - h.mapping.Base())
	if off&(h.align-1) != 0 {
		return 0, false
	}
	return off >> h.shift, true
}

// unitEntry resolves a units-registry index to its chunk entry, or nil when
// the covering chunk was never allocated — i.e. the bump cursor has not
// reached that part of the heap, so no block can start there.
func (h *Heap) unitEntry(idx uint64) *uint32 {
	c := h.units[idx>>unitChunkShift].Load()
	if c == nil {
		return nil
	}
	return &c[idx&(chunkUnits-1)]
}

// setLive publishes a block in the units registry. The entry at the block's
// start index holds its size in alignment units; interior indices stay zero.
// The chunk is guaranteed to exist: the block came out of a carved range.
func (h *Heap) setLive(idx, rounded uint64) {
	atomic.StoreUint32(h.unitEntry(idx), uint32(rounded>>h.shift))
}

// liveSize reads a block's rounded size from the registry; 0 means no live
// block starts at idx.
func (h *Heap) liveSize(idx uint64) uint64 {
	p := h.unitEntry(idx)
	if p == nil {
		return 0
	}
	return uint64(atomic.LoadUint32(p)) << h.shift
}

// clearLive atomically retires the block at idx, returning false if it was
// not live with that exact size — the loser of a double-free race sees
// false here and reports the corruption instead of corrupting the free
// lists.
func (h *Heap) clearLive(idx, rounded uint64) bool {
	p := h.unitEntry(idx)
	return p != nil && atomic.CompareAndSwapUint32(p, uint32(rounded>>h.shift), 0)
}
