package heap

import (
	"fmt"
	"sync"
	"testing"

	"mte4jni/internal/mem"
)

// benchHeap builds a heap big enough that the benchmarks never exhaust it.
func benchHeap(b *testing.B, align uint64) *Heap {
	b.Helper()
	h, err := New(mem.NewSpace(), Config{Size: 256 << 20, Alignment: align})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkAllocFreeSerial is the single-thread allocator baseline: one
// Alloc+Free pair per iteration, the pattern guarded copy runs per JNI Get.
func BenchmarkAllocFreeSerial(b *testing.B) {
	for _, size := range []uint64{16, 256, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			h := benchHeap(b, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := h.Alloc(size)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Free(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocFreeParallel8 is the Fig6-shaped allocator contention test:
// 8 goroutines each performing Alloc+Free pairs against one heap. b.N is the
// total number of pairs across all goroutines.
func BenchmarkAllocFreeParallel8(b *testing.B) {
	const goroutines = 8
	for _, size := range []uint64{256, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			h := benchHeap(b, 16)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			wg.Add(goroutines)
			per := b.N/goroutines + 1
			for g := 0; g < goroutines; g++ {
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						a, err := h.Alloc(size)
						if err != nil {
							b.Error(err)
							return
						}
						if err := h.Free(a); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkAllocFresh measures pure allocation throughput (no recycling):
// the path that hits the bump region / TLAB rather than a free list.
func BenchmarkAllocFresh(b *testing.B) {
	h := benchHeap(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(16); err != nil {
			// The heap is finite; recreate it when exhausted, outside the
			// timed section.
			b.StopTimer()
			h = benchHeap(b, 16)
			b.StartTimer()
			if _, err := h.Alloc(16); err != nil {
				b.Fatal(err)
			}
		}
	}
}
