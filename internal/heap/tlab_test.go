package heap

import (
	"testing"

	"mte4jni/internal/mte"
)

// TestAllocTLABHitAllocs pins the zero-Go-allocation property of the small
// allocation fast path: once a TLAB is warm, Alloc must not allocate on the
// Go heap (no registry map inserts, no per-call bookkeeping objects).
func TestAllocTLABHitAllocs(t *testing.T) {
	h := newHeap(t, Config{Size: 4 << 20, Alignment: 16})
	// Warm up: the first allocation carves the TLAB.
	if _, err := h.Alloc(32); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := h.Alloc(32); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("TLAB-hit Alloc allocates %v per op", avg)
	}
}

// TestTLABRefillRetiresTail checks that refilling a TLAB strands no memory:
// the old buffer's remainder is pushed onto the free list of its own size
// class and handed back to the next matching request, without advancing
// BumpUsed.
func TestTLABRefillRetiresTail(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	// Fill the 64 KiB TLAB down to a 256-byte remainder.
	const blocks = 16
	for i := 0; i < blocks; i++ {
		if _, err := h.Alloc(4080); err != nil {
			t.Fatal(err)
		}
	}
	tail := h.Mapping().Base() + mte.Addr(blocks*4080)
	// This request does not fit the remainder: it must trigger a refill that
	// retires the 256-byte tail.
	if _, err := h.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	used := h.Stats().BumpUsed
	// The retired tail is one 256-byte block on the free list; the next
	// 256-byte request must get exactly it, with no fresh bump bytes.
	a, err := h.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if a != tail {
		t.Fatalf("retired tail not reused: got %v, want %v", a, tail)
	}
	if got := h.Stats().BumpUsed; got != used {
		t.Fatalf("reusing the retired tail advanced BumpUsed %d -> %d", used, got)
	}
}

// TestLargeAllocBypassesTLAB checks that blocks above maxTLABAlloc come from
// the central region directly and are recycled through the free lists like
// any other class.
func TestLargeAllocBypassesTLAB(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, err := h.Alloc(maxTLABAlloc + 1)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := h.SizeOf(a); !ok || size != maxTLABAlloc+16 {
		t.Fatalf("SizeOf large block = %d,%v", size, ok)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(maxTLABAlloc + 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("freed large block not reused: %v vs %v", a, b)
	}
}
