package heap

import (
	"testing"

	"mte4jni/internal/mem"
)

func TestBumpUsedAndFreeListSeparation(t *testing.T) {
	h := newHeap(t, Config{Size: 1 << 20, Alignment: 16})
	a, _ := h.Alloc(16)
	b, _ := h.Alloc(32)
	st := h.Stats()
	if st.BumpUsed != 16+32 {
		t.Fatalf("BumpUsed = %d", st.BumpUsed)
	}
	// Freeing and reallocating a different size class must not reuse the
	// wrong block.
	h.Free(a)
	c, _ := h.Alloc(32)
	if c == a {
		t.Fatal("32-byte alloc reused a 16-byte block")
	}
	d, _ := h.Alloc(16)
	if d != a {
		t.Fatal("16-byte alloc did not reuse the freed 16-byte block")
	}
	// Bump cursor advanced only for the un-recycled allocations.
	if got := h.Stats().BumpUsed; got != 16+32+32 {
		t.Fatalf("BumpUsed after reuse = %d", got)
	}
	_ = b
}

func TestMappingNameAndConfigDefaults(t *testing.T) {
	h, err := New(mem.NewSpace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Mapping().Name() != "main space" {
		t.Fatalf("default name %q", h.Mapping().Name())
	}
	if h.Alignment() != 8 {
		t.Fatalf("default alignment %d", h.Alignment())
	}
	if h.Mapping().Size() != DefaultSize {
		t.Fatalf("default size %d", h.Mapping().Size())
	}
}
