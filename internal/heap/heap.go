// Package heap implements the Java-heap allocator of the simulated runtime.
//
// It plays the role of ART's RosAlloc in the paper: a thread-safe allocator
// carving objects out of one large mapping. Two properties the paper
// modifies in ART (§4.1) are first-class here:
//
//   - Alignment. ART's default is 8 bytes; MTE requires 16 so that no two
//     objects share a tag granule. The alignment is a constructor parameter
//     so the §4.1 hazard can be reproduced and measured (DESIGN.md Extra A).
//   - PROT_MTE. The heap mapping is created with tag storage when the
//     runtime enables MTE.
//
// The allocator is structured like a miniature RosAlloc (DESIGN.md
// "Fast-path engine"):
//
//   - Small requests (≤ maxTLABAlloc) are bump-allocated from per-thread
//     TLABs carved out of the central region, so the common path takes no
//     global lock and performs zero Go allocations (pinned by
//     TestAllocTLABHitAllocs).
//   - Recycled blocks live on size-class free lists sharded across
//     numShards locks; a free list hit is always preferred over fresh bump
//     space, and reuse is LIFO per class.
//   - Liveness is tracked in a chunked units table (one uint32 per
//     alignment unit, nonzero at each live block's start; chunks allocated
//     lazily as the bump cursor advances), giving lock-free SizeOf and
//     atomic double-free detection without a registry map on the
//     allocation path.
//   - Stats are plain atomics; the peak is maintained with a CAS-max.
//
// Observable semantics — zeroed blocks, LIFO same-class reuse, strict
// size-class separation, double-free and interior-pointer detection, the
// out-of-memory condition and its message, and the Stats meanings (BumpUsed
// counts fresh block bytes only, never TLAB carves) — are identical to the
// pre-TLAB allocator, and the tests pin them.
package heap

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// Config describes a heap instance.
type Config struct {
	// Name labels the underlying mapping (e.g. "main space" or
	// "native alloc space").
	Name string
	// Size is the heap capacity in bytes.
	Size uint64
	// Alignment is the allocation alignment: 8 for stock ART, 16 for
	// MTE-consistent allocation (§4.1). Must be a power of two ≥ 8.
	Alignment uint64
	// MTE maps the heap with PROT_MTE, allocating tag storage.
	MTE bool
}

// DefaultSize is the heap capacity used when Config.Size is zero (64 MiB).
const DefaultSize = 64 << 20

// Stats is a snapshot of allocator counters.
type Stats struct {
	// Allocs and Frees count successful operations.
	Allocs, Frees uint64
	// BytesInUse is the sum of live allocation sizes (after rounding).
	BytesInUse uint64
	// BytesPeak is the high-water mark of BytesInUse.
	BytesPeak uint64
	// BumpUsed is the total of freshly bump-allocated block bytes — blocks
	// served from recycled free-list space do not advance it, and neither
	// does TLAB carving itself (a carve only stages capacity; the bytes
	// count when a block is actually handed out of it).
	BumpUsed uint64
}

// Heap is a thread-safe allocator over one simulated mapping.
type Heap struct {
	mapping *mem.Mapping
	align   uint64
	// shift is log2(align), used to convert between bytes and align units.
	shift uint

	// units is the liveness registry: one entry per alignment unit of the
	// mapping, holding the block size in units at each live block's start
	// and zero everywhere else. Entries are accessed atomically. (uint32
	// units cap a single block at 2^32-1 align units — far beyond any heap
	// this simulation configures.)
	//
	// The registry is a two-level table: a small eager array of chunk
	// pointers, with 64 KiB chunks allocated on demand as the bump cursor
	// advances (under carveMu). Sizing the table to the heap up front would
	// cost size/align × 4 bytes per heap — benchmarks and workloads that
	// build a runtime per iteration turned that into tens of megabytes of
	// allocation traffic per run. Chunks are never moved or freed once
	// published, so lock-free atomic element access stays sound.
	units []atomic.Pointer[unitChunk]

	// carveMu guards the central bump cursor. It is taken once per TLAB
	// refill or large allocation, not per small allocation.
	carveMu sync.Mutex
	cursor  mte.Addr

	// tlabs is the striped TLAB handle cache; see tlab.go.
	tlabs [tlabSlots]atomic.Pointer[tlab]

	// shards are the segregated free lists; see tlab.go.
	shards [numShards]freeShard

	// Counters behind Stats, all atomic so the allocation fast path never
	// serializes on a stats lock.
	allocs, frees, bytesInUse, bytesPeak, bumpUsed atomic.Uint64
	liveCount                                      atomic.Int64

	// closed is set by Close; Alloc and Free fail afterwards. The space
	// keeps a reference for the Unmap call, everything else is released.
	closed atomic.Bool
	space  *mem.Space
}

// New creates a heap inside space according to cfg.
func New(space *mem.Space, cfg Config) (*Heap, error) {
	if cfg.Size == 0 {
		cfg.Size = DefaultSize
	}
	if cfg.Alignment == 0 {
		cfg.Alignment = 8
	}
	if cfg.Alignment < 8 || cfg.Alignment&(cfg.Alignment-1) != 0 {
		return nil, fmt.Errorf("heap: invalid alignment %d", cfg.Alignment)
	}
	if cfg.Name == "" {
		cfg.Name = "main space"
	}
	prot := mem.ProtRead | mem.ProtWrite
	if cfg.MTE {
		prot |= mem.ProtMTE
	}
	m, err := space.Map(cfg.Name, cfg.Size, prot)
	if err != nil {
		return nil, err
	}
	h := &Heap{
		mapping: m,
		align:   cfg.Alignment,
		shift:   uint(bits.TrailingZeros64(cfg.Alignment)),
		cursor:  m.Base(),
		space:   space,
	}
	totalUnits := m.Size() >> h.shift
	h.units = make([]atomic.Pointer[unitChunk], (totalUnits+chunkUnits-1)>>unitChunkShift)
	for i := range h.shards {
		h.shards[i].free = make(map[uint64][]mte.Addr)
	}
	return h, nil
}

// ResetTags repaints the whole heap mapping back to tag 0 and bumps the
// space epoch — the reseed hook the serving pool uses when a session comes
// under brute-force suspicion. The caller must hold the heap quiescent (no
// live objects, no concurrent native access): the pool only reseeds
// sessions it exclusively owns after a GC-verified recycle.
func (h *Heap) ResetTags() {
	h.space.ResetTags(h.mapping)
}

// Mapping returns the heap's underlying mapping (for tag operations and raw
// access by the runtime).
func (h *Heap) Mapping() *mem.Mapping { return h.mapping }

// Alignment returns the allocation alignment in force.
func (h *Heap) Alignment() uint64 { return h.align }

// roundSize rounds a request up to the allocation alignment, with a minimum
// of one alignment unit so that zero-length arrays still get a distinct
// address.
func (h *Heap) roundSize(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + h.align - 1) &^ (h.align - 1)
}

// Close retires the heap: it unmaps the backing mapping from the space
// (releasing its data and tag storage) and drops the allocator's TLAB,
// free-list and liveness-registry state so a retained *Heap cannot pin the
// simulated memory. Alloc and Free fail afterwards. Close is idempotent and
// requires the same quiescence as mem.Space.Unmap: no concurrent users.
func (h *Heap) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	// Drop the TLAB handles and free lists first so no allocation path can
	// hand out an address after the mapping is gone.
	for i := range h.tlabs {
		h.tlabs[i].Store(nil)
	}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		sh.free = make(map[uint64][]mte.Addr)
		sh.mu.Unlock()
	}
	for i := range h.units {
		h.units[i].Store(nil)
	}
	return h.space.Unmap(h.mapping)
}

// Closed reports whether Close has run.
func (h *Heap) Closed() bool { return h.closed.Load() }

// Alloc returns the zeroed, aligned base address of a fresh block of at
// least size bytes.
func (h *Heap) Alloc(size uint64) (mte.Addr, error) {
	if h.closed.Load() {
		return 0, fmt.Errorf("heap: Alloc on closed heap %q", h.mapping.Name())
	}
	rounded := h.roundSize(size)

	// Recycled space first: same-class LIFO reuse, checked before any bump
	// allocation so a freed block is deterministically handed back to the
	// next request of its class.
	addr, reused := h.popFree(rounded)
	if !reused {
		var ok bool
		if rounded <= maxTLABAlloc {
			addr, ok = h.allocFromTLAB(rounded)
		} else {
			addr, _, ok = h.carve(rounded, rounded)
		}
		if !ok {
			return 0, fmt.Errorf("heap: out of memory allocating %d bytes (in use %d of %d)",
				size, h.bytesInUse.Load(), h.mapping.Size())
		}
		h.bumpUsed.Add(rounded)
	}

	idx, _ := h.blockIndex(addr)
	h.setLive(idx, rounded)
	h.liveCount.Add(1)
	h.allocs.Add(1)
	inUse := h.bytesInUse.Add(rounded)
	for {
		peak := h.bytesPeak.Load()
		if inUse <= peak || h.bytesPeak.CompareAndSwap(peak, inUse) {
			break
		}
	}

	// Zero the block outside all locks; it is owned exclusively by the
	// caller from here on.
	zero, err := h.mapping.Bytes(addr, int(rounded))
	if err != nil {
		return 0, err
	}
	for i := range zero {
		zero[i] = 0
	}
	return addr, nil
}

// Free recycles a block previously returned by Alloc. Freeing an unknown or
// already-freed address is an error (the runtime equivalent of heap
// corruption, surfaced instead of ignored).
func (h *Heap) Free(addr mte.Addr) error {
	if h.closed.Load() {
		return fmt.Errorf("heap: Free on closed heap %q", h.mapping.Name())
	}
	idx, ok := h.blockIndex(addr)
	if !ok {
		return fmt.Errorf("heap: free of unknown address %v", addr)
	}
	rounded := h.liveSize(idx)
	if rounded == 0 || !h.clearLive(idx, rounded) {
		// Not a live block start — an interior pointer, a never-allocated
		// address, or the losing side of a double free.
		return fmt.Errorf("heap: free of unknown address %v", addr)
	}
	h.pushFree(addr, rounded)
	h.liveCount.Add(-1)
	h.frees.Add(1)
	h.bytesInUse.Add(^(rounded - 1))
	return nil
}

// SizeOf returns the rounded size of the live allocation at addr.
func (h *Heap) SizeOf(addr mte.Addr) (uint64, bool) {
	idx, ok := h.blockIndex(addr)
	if !ok {
		return 0, false
	}
	size := h.liveSize(idx)
	return size, size != 0
}

// Live reports the number of live allocations.
func (h *Heap) Live() int {
	return int(h.liveCount.Load())
}

// ForEach calls fn for every live allocation. The walk scans the units
// registry up to the bump high-water mark; allocations racing with the walk
// may or may not be visited, exactly like the map-snapshot walk it replaced.
// The GC uses this as its allocation registry walk.
func (h *Heap) ForEach(fn func(addr mte.Addr, size uint64)) {
	h.carveMu.Lock()
	limit := uint64(h.cursor-h.mapping.Base()) >> h.shift
	h.carveMu.Unlock()
	base := h.mapping.Base()
	for i := uint64(0); i < limit; {
		if size := h.liveSize(i); size != 0 {
			fn(base+mte.Addr(i<<h.shift), size)
			i += size >> h.shift
		} else {
			i++
		}
	}
}

// Stats returns a snapshot of the allocator counters. Fields are read
// individually from atomics; a snapshot taken while other threads allocate
// is internally consistent per counter, not across counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Allocs:     h.allocs.Load(),
		Frees:      h.frees.Load(),
		BytesInUse: h.bytesInUse.Load(),
		BytesPeak:  h.bytesPeak.Load(),
		BumpUsed:   h.bumpUsed.Load(),
	}
}
