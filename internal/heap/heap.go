// Package heap implements the Java-heap allocator of the simulated runtime.
//
// It plays the role of ART's RosAlloc in the paper: a thread-safe allocator
// carving objects out of one large mapping. Two properties the paper
// modifies in ART (§4.1) are first-class here:
//
//   - Alignment. ART's default is 8 bytes; MTE requires 16 so that no two
//     objects share a tag granule. The alignment is a constructor parameter
//     so the §4.1 hazard can be reproduced and measured (DESIGN.md Extra A).
//   - PROT_MTE. The heap mapping is created with tag storage when the
//     runtime enables MTE.
//
// The allocator itself is a segregated free list over a bump region — small
// and predictable, because allocation throughput is not what the paper
// measures; what matters is that guarded copy's per-call buffer allocation
// and the tag machinery run against a realistic, locked heap.
package heap

import (
	"fmt"
	"sync"

	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// Config describes a heap instance.
type Config struct {
	// Name labels the underlying mapping (e.g. "main space" or
	// "native alloc space").
	Name string
	// Size is the heap capacity in bytes.
	Size uint64
	// Alignment is the allocation alignment: 8 for stock ART, 16 for
	// MTE-consistent allocation (§4.1). Must be a power of two ≥ 8.
	Alignment uint64
	// MTE maps the heap with PROT_MTE, allocating tag storage.
	MTE bool
}

// DefaultSize is the heap capacity used when Config.Size is zero (64 MiB).
const DefaultSize = 64 << 20

// Stats is a snapshot of allocator counters.
type Stats struct {
	// Allocs and Frees count successful operations.
	Allocs, Frees uint64
	// BytesInUse is the sum of live allocation sizes (after rounding).
	BytesInUse uint64
	// BytesPeak is the high-water mark of BytesInUse.
	BytesPeak uint64
	// BumpUsed is how far the bump cursor has advanced.
	BumpUsed uint64
}

// Heap is a thread-safe allocator over one simulated mapping.
type Heap struct {
	mapping *mem.Mapping
	align   uint64

	mu     sync.Mutex
	cursor mte.Addr
	// free maps a rounded size class to a LIFO of recycled blocks.
	free map[uint64][]mte.Addr
	// live maps each live allocation's base address to its rounded size; it
	// doubles as the GC's allocation registry and as double-free detection.
	live  map[mte.Addr]uint64
	stats Stats
}

// New creates a heap inside space according to cfg.
func New(space *mem.Space, cfg Config) (*Heap, error) {
	if cfg.Size == 0 {
		cfg.Size = DefaultSize
	}
	if cfg.Alignment == 0 {
		cfg.Alignment = 8
	}
	if cfg.Alignment < 8 || cfg.Alignment&(cfg.Alignment-1) != 0 {
		return nil, fmt.Errorf("heap: invalid alignment %d", cfg.Alignment)
	}
	if cfg.Name == "" {
		cfg.Name = "main space"
	}
	prot := mem.ProtRead | mem.ProtWrite
	if cfg.MTE {
		prot |= mem.ProtMTE
	}
	m, err := space.Map(cfg.Name, cfg.Size, prot)
	if err != nil {
		return nil, err
	}
	return &Heap{
		mapping: m,
		align:   cfg.Alignment,
		cursor:  m.Base(),
		free:    make(map[uint64][]mte.Addr),
		live:    make(map[mte.Addr]uint64),
	}, nil
}

// Mapping returns the heap's underlying mapping (for tag operations and raw
// access by the runtime).
func (h *Heap) Mapping() *mem.Mapping { return h.mapping }

// Alignment returns the allocation alignment in force.
func (h *Heap) Alignment() uint64 { return h.align }

// roundSize rounds a request up to the allocation alignment, with a minimum
// of one alignment unit so that zero-length arrays still get a distinct
// address.
func (h *Heap) roundSize(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + h.align - 1) &^ (h.align - 1)
}

// Alloc returns the zeroed, aligned base address of a fresh block of at
// least size bytes.
func (h *Heap) Alloc(size uint64) (mte.Addr, error) {
	rounded := h.roundSize(size)
	h.mu.Lock()
	var addr mte.Addr
	if list := h.free[rounded]; len(list) > 0 {
		addr = list[len(list)-1]
		h.free[rounded] = list[:len(list)-1]
	} else {
		if uint64(h.cursor-h.mapping.Base())+rounded > h.mapping.Size() {
			h.mu.Unlock()
			return 0, fmt.Errorf("heap: out of memory allocating %d bytes (in use %d of %d)",
				size, h.stats.BytesInUse, h.mapping.Size())
		}
		addr = h.cursor
		h.cursor += mte.Addr(rounded)
		h.stats.BumpUsed = uint64(h.cursor - h.mapping.Base())
	}
	h.live[addr] = rounded
	h.stats.Allocs++
	h.stats.BytesInUse += rounded
	if h.stats.BytesInUse > h.stats.BytesPeak {
		h.stats.BytesPeak = h.stats.BytesInUse
	}
	h.mu.Unlock()

	// Zero the block outside the lock; the block is owned exclusively by
	// the caller from here on.
	zero, err := h.mapping.Bytes(addr, int(rounded))
	if err != nil {
		return 0, err
	}
	for i := range zero {
		zero[i] = 0
	}
	return addr, nil
}

// Free recycles a block previously returned by Alloc. Freeing an unknown or
// already-freed address is an error (the runtime equivalent of heap
// corruption, surfaced instead of ignored).
func (h *Heap) Free(addr mte.Addr) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	rounded, ok := h.live[addr]
	if !ok {
		return fmt.Errorf("heap: free of unknown address %v", addr)
	}
	delete(h.live, addr)
	h.free[rounded] = append(h.free[rounded], addr)
	h.stats.Frees++
	h.stats.BytesInUse -= rounded
	return nil
}

// SizeOf returns the rounded size of the live allocation at addr.
func (h *Heap) SizeOf(addr mte.Addr) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	size, ok := h.live[addr]
	return size, ok
}

// Live reports the number of live allocations.
func (h *Heap) Live() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.live)
}

// ForEach calls fn for every live allocation under a snapshot taken at call
// time. The GC uses this as its allocation registry walk.
func (h *Heap) ForEach(fn func(addr mte.Addr, size uint64)) {
	h.mu.Lock()
	type rec struct {
		addr mte.Addr
		size uint64
	}
	snap := make([]rec, 0, len(h.live))
	for a, s := range h.live {
		snap = append(snap, rec{a, s})
	}
	h.mu.Unlock()
	for _, r := range snap {
		fn(r.addr, r.size)
	}
}

// Stats returns a snapshot of the allocator counters.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
