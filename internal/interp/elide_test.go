package interp_test

import (
	"testing"

	"mte4jni/internal/interp"
)

// elideLoopN builds the elided-dispatch guard program: local 0 counts down
// around a loop whose body is a proven in-bounds const-index aget (fused to
// const+aget! under the mask) and a standalone-elidable aput. The mask over
// the two access PCs is what BindElision installs.
func elideLoopN() (*interp.Method, *interp.ElisionMask) {
	m := &interp.Method{
		Name: "elideLoopN", MaxLocals: 2, MaxRefs: 1,
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 8},
			{Op: interp.OpNewArray, A: 0},
			// loop:
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpJmpIfZero},   // target patched to the exit below
			{Op: interp.OpConst, A: 3}, // index (fuses into const+aget!)
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpStore, A: 1},
			{Op: interp.OpConst, A: 5},  // index
			{Op: interp.OpConst, A: 11}, // value (fuses into const+aput!)
			{Op: interp.OpArrayPut, A: 0},
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpSub},
			{Op: interp.OpStore, A: 0},
			{Op: interp.OpJmp, A: 2},
			// exit:
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
	}
	m.Code[3].A = int64(len(m.Code) - 2)
	return m, interp.NewElisionMask(len(m.Code), []int{5, 9})
}

// TestElidedDispatchMatchesChecked pins the rewritten guard-free form to the
// checked semantics on this program: same return value, and under an audit
// sink both elided sites execute once per loop iteration with zero
// violations.
func TestElidedDispatchMatchesChecked(t *testing.T) {
	m, mask := elideLoopN()
	ip, _ := newInterp(t, true)
	want, fault, err := ip.Invoke(m, 7)
	if fault != nil || err != nil {
		t.Fatalf("checked: fault=%v err=%v", fault, err)
	}
	ip2, _ := newInterp(t, true)
	ip2.BindElision(mask)
	audit := ip2.AuditElision()
	got, fault, err := ip2.Invoke(m, 7)
	if fault != nil || err != nil {
		t.Fatalf("elided: fault=%v err=%v", fault, err)
	}
	if got != want {
		t.Fatalf("elided ret = %d, checked ret = %d", got, want)
	}
	if audit.Executed[5] != 7 || audit.Executed[9] != 7 {
		t.Fatalf("elided sites executed %v, want 7 each at pcs 5 and 9", audit.Executed)
	}
	if len(audit.Violations) != 0 {
		t.Fatalf("audit violations on a proven program: %v", audit.Violations)
	}
}

// TestElidedDispatchAllocs is the satellite bench guard for the elided
// access path: with a mask bound, a long loop of guard-free superinstruction
// accesses must allocate exactly as much per Invoke as a short one — the
// mask lookup, the rewrite cache hit, and the unchecked array accessors add
// 0 allocs/op to the dispatch loop. (Invoke's fixed setup and the one
// OpNewArray allocate a constant amount, which the differential subtracts
// out.)
func TestElidedDispatchAllocs(t *testing.T) {
	m, mask := elideLoopN()
	measure := func(n int64) float64 {
		ip, _ := newInterp(t, true)
		ip.MaxSteps = 1 << 40
		ip.BindElision(mask)
		// Warm the per-method rewrite cache so the measured runs hit it.
		if _, fault, err := ip.Invoke(m, 1); fault != nil || err != nil {
			t.Fatalf("fault=%v err=%v", fault, err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, fault, err := ip.Invoke(m, n); fault != nil || err != nil {
				t.Fatalf("fault=%v err=%v", fault, err)
			}
		})
	}
	short := measure(10)   // ~130 steps
	long := measure(5_000) // ~65k steps of elided array traffic
	if long != short {
		t.Fatalf("elided dispatch loop allocates: %v allocs/op short vs %v long", short, long)
	}
}
