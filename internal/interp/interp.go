// Package interp implements a miniature stack-based bytecode interpreter —
// the "managed code" side of the runtime.
//
// The paper's threat model rests on an asymmetry: Java code runs under the
// JVM's safety checks (array bounds above all), while native code reached
// through JNI touches the same heap through raw pointers with no checks at
// all (§1, §2.2). This package makes the managed half of that asymmetry
// executable: programs written in its bytecode get
// ArrayIndexOutOfBoundsException on a bad index, and they can invoke native
// methods — at which point the active protection scheme is all that stands
// between a buggy native and the heap.
//
// The instruction set is deliberately small (a dalvik-flavoured toy): 64-bit
// integer locals and operand stack, arithmetic, comparisons, branches,
// array allocation/access, and native invocation.
package interp

import (
	"fmt"

	"mte4jni/internal/exec"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// CancelPollInterval is how many dispatched instructions run between
// cancellation polls in InvokeCtx. The poll itself is a non-blocking,
// allocation-free channel select (exec.Context.Canceled), but even that is
// too much per instruction; amortizing over 1024 steps keeps the dispatch
// loop's cost unmeasurable while bounding cancellation latency to ~a few
// microseconds of bytecode.
const CancelPollInterval = 1024

// Opcode enumerates the instructions.
type Opcode int

const (
	// OpConst pushes immediate A.
	OpConst Opcode = iota
	// OpLoad pushes local #A.
	OpLoad
	// OpStore pops into local #A.
	OpStore
	// OpAdd, OpSub, OpMul, OpDiv, OpRem pop two values and push the result
	// (left operand is pushed first). OpDiv and OpRem throw
	// ArithmeticException on division by zero, like the JVM.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	// OpJmp jumps to instruction index A unconditionally.
	OpJmp
	// OpJmpIfZero and OpJmpIfNeg pop a value and jump to A when it is zero
	// (resp. negative).
	OpJmpIfZero
	OpJmpIfNeg
	// OpNewArray pops a length and pushes a reference to a new int array
	// stored in local reference slot #A (references live in a separate
	// table, like dalvik's object registers).
	OpNewArray
	// OpArrayGet pops an index and pushes ref[#A][index], bounds-checked.
	OpArrayGet
	// OpArrayPut pops a value then an index and stores into ref[#A][index],
	// bounds-checked.
	OpArrayPut
	// OpArrayLength pushes the length of ref slot #A.
	OpArrayLength
	// OpCallNative invokes the registered native method named by the
	// method's NativeNames[A], passing ref slot #B as its array argument.
	OpCallNative
	// OpReturn pops the return value and ends execution.
	OpReturn
)

// String names the opcode.
func (o Opcode) String() string {
	names := [...]string{"const", "load", "store", "add", "sub", "mul", "div", "rem",
		"jmp", "jz", "jneg", "newarray", "aget", "aput", "arraylength", "callnative", "return"}
	if int(o) < len(names) {
		return names[o]
	}
	if s := elidedOpName(o); s != "" {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Inst is one instruction. The meaning of A/B depends on the opcode.
type Inst struct {
	Op   Opcode
	A, B int64
}

// operandNeeds is the minimum operand-stack depth per opcode.
var operandNeeds = map[Opcode]int{
	OpStore: 1, OpAdd: 2, OpSub: 2, OpMul: 2, OpDiv: 2, OpRem: 2,
	OpJmpIfZero: 1, OpJmpIfNeg: 1, OpNewArray: 1, OpArrayGet: 1,
	OpArrayPut: 2, OpReturn: 1,
	// Internal elided forms: the const+aget fusion carries its index as an
	// immediate, the const+aput fusion still pops the index.
	opElidedArrayGet: 1, opElidedArrayPut: 2, opElidedConstAPut: 1,
}

// OperandNeeds returns the minimum operand-stack depth the opcode requires,
// the same table Invoke checks dynamically. The static analyzer
// (internal/analysis) uses it to prove stack underflows before execution.
func OperandNeeds(op Opcode) int { return operandNeeds[op] }

// Method is an executable bytecode method.
type Method struct {
	// Name appears in exceptions and traces.
	Name string
	// Code is the instruction sequence.
	Code []Inst
	// MaxLocals and MaxRefs size the integer-local and reference tables.
	MaxLocals, MaxRefs int
	// NativeNames maps OpCallNative's A index to a registered native name.
	NativeNames []string
}

// ThrownException models a managed exception (bounds, arithmetic, stack).
type ThrownException struct {
	// Kind is the Java exception class name.
	Kind string
	// Detail is the message.
	Detail string
	// Method and PC locate the throwing instruction.
	Method string
	PC     int
}

// Error implements the error interface in the JVM's message style.
func (t *ThrownException) Error() string {
	return fmt.Sprintf("%s: %s (at %s, pc %d)", t.Kind, t.Detail, t.Method, t.PC)
}

// NativeMethod couples a body with its annotation kind.
type NativeMethod struct {
	// Kind selects the trampoline (regular/@FastNative/@CriticalNative).
	Kind jni.NativeKind
	// Body receives the env and the array argument's raw handle.
	Body func(env *jni.Env, arr *vm.Object) error
}

// Interp executes methods against one JNI environment.
type Interp struct {
	env     *jni.Env
	natives map[string]NativeMethod

	// elision is the bound proof-carrying mask (nil = fully checked), and
	// audit the optional soundness recorder for guard-free accesses.
	elision *boundElision
	audit   *ElisionAudit

	// maxStack bounds the operand stack, standing in for StackOverflowError.
	maxStack int

	// Steps counts executed instructions, for tests and runaway detection.
	Steps int64
	// MaxSteps aborts execution when exceeded (0 = 1<<24).
	MaxSteps int64
}

// New creates an interpreter bound to env.
func New(env *jni.Env) *Interp {
	return &Interp{
		env:      env,
		natives:  make(map[string]NativeMethod),
		maxStack: 1024,
		MaxSteps: 1 << 24,
	}
}

// RegisterNative binds a native method name, as RegisterNatives does.
func (ip *Interp) RegisterNative(name string, m NativeMethod) {
	ip.natives[name] = m
}

// Invoke executes m detached: no cancellation, deadline, or external step
// budget beyond ip.MaxSteps. It is InvokeCtx with a nil execution context.
func (ip *Interp) Invoke(m *Method, args ...int64) (int64, *mte.Fault, error) {
	return ip.InvokeCtx(nil, m, args...)
}

// InvokeCtx executes m with the given integer arguments in its first locals,
// under the execution context ec (nil = detached). It returns the method's
// return value. A managed exception surfaces as a *ThrownException error; a
// native memory fault surfaces as the *mte.Fault (the process "crash").
//
// ec supplies two policies: a step budget (ec.StepBudget overrides
// ip.MaxSteps when set) whose exhaustion surfaces as a *exec.StepsError, and
// cooperative cancellation, polled every CancelPollInterval steps via a
// countdown so the fault-free dispatch path stays at 0 allocs/op. A
// canceled run returns an error matching context.Canceled or
// context.DeadlineExceeded via errors.Is.
func (ip *Interp) InvokeCtx(ec *exec.Context, m *Method, args ...int64) (int64, *mte.Fault, error) {
	if len(args) > m.MaxLocals {
		return 0, nil, fmt.Errorf("interp: %s: %d args exceed %d locals", m.Name, len(args), m.MaxLocals)
	}
	locals := make([]int64, m.MaxLocals)
	copy(locals, args)
	refs := make([]*vm.Object, m.MaxRefs)
	stack := make([]int64, 0, 16)

	throw := func(pc int, kind, detail string) *ThrownException {
		return &ThrownException{Kind: kind, Detail: detail, Method: m.Name, PC: pc}
	}
	pop := func() int64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	maxSteps := ec.StepBudget()
	if maxSteps == 0 {
		maxSteps = ip.MaxSteps
	}
	if maxSteps == 0 {
		maxSteps = 1 << 24
	}

	if cerr := ec.Canceled(); cerr != nil {
		return 0, nil, fmt.Errorf("interp: %s: %w", m.Name, cerr)
	}
	cancelCountdown := int64(CancelPollInterval)

	// Under a bound elision mask, run the rewritten guard-free form and
	// prime the env's invalidation tracking for this run.
	code, elided := ip.elidedCode(m)
	if elided {
		ip.env.PrimeElision()
		defer ip.env.ClearElision()
	}

	for pc := 0; pc < len(code); pc++ {
		ip.Steps++
		if ip.Steps > maxSteps {
			return 0, nil, &exec.StepsError{Method: m.Name, Steps: ip.Steps, Budget: maxSteps}
		}
		cancelCountdown--
		if cancelCountdown <= 0 {
			cancelCountdown = CancelPollInterval
			if cerr := ec.Canceled(); cerr != nil {
				return 0, nil, fmt.Errorf("interp: %s: %w", m.Name, cerr)
			}
		}
		in := code[pc]

		// Operand-count validation, the verifier's job in a real VM.
		needs := operandNeeds[in.Op]
		if len(stack) < needs {
			return 0, nil, fmt.Errorf("interp: %s pc %d: %v needs %d operands, stack has %d",
				m.Name, pc, in.Op, needs, len(stack))
		}
		if len(stack) >= ip.maxStack {
			return 0, nil, throw(pc, "java.lang.StackOverflowError", "operand stack limit")
		}

		switch in.Op {
		case OpConst:
			stack = append(stack, in.A)
		case OpLoad:
			if in.A < 0 || int(in.A) >= len(locals) {
				return 0, nil, fmt.Errorf("interp: %s pc %d: bad local %d", m.Name, pc, in.A)
			}
			stack = append(stack, locals[in.A])
		case OpStore:
			if in.A < 0 || int(in.A) >= len(locals) {
				return 0, nil, fmt.Errorf("interp: %s pc %d: bad local %d", m.Name, pc, in.A)
			}
			locals[in.A] = pop()
		case OpAdd, OpSub, OpMul, OpDiv, OpRem:
			b, a := pop(), pop()
			var v int64
			switch in.Op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv, OpRem:
				if b == 0 {
					return 0, nil, throw(pc, "java.lang.ArithmeticException", "/ by zero")
				}
				if in.Op == OpDiv {
					v = a / b
				} else {
					v = a % b
				}
			}
			stack = append(stack, v)
		case OpJmp:
			pc = ip.target(m, in.A) - 1
		case OpJmpIfZero:
			if pop() == 0 {
				pc = ip.target(m, in.A) - 1
			}
		case OpJmpIfNeg:
			if pop() < 0 {
				pc = ip.target(m, in.A) - 1
			}
		case OpNewArray:
			n := pop()
			if n < 0 {
				return 0, nil, throw(pc, "java.lang.NegativeArraySizeException", fmt.Sprintf("%d", n))
			}
			arr, err := ip.env.NewIntArray(int(n))
			if err != nil {
				return 0, nil, throw(pc, "java.lang.OutOfMemoryError", err.Error())
			}
			if err := ip.setRef(refs, in.A, arr, m, pc); err != nil {
				return 0, nil, err
			}
		case OpArrayGet:
			idx := pop()
			arr, err := ip.getRef(refs, in.A, m, pc)
			if err != nil {
				return 0, nil, err
			}
			v, gerr := arr.GetInt(int(idx))
			if gerr != nil {
				return 0, nil, throw(pc, "java.lang.ArrayIndexOutOfBoundsException",
					fmt.Sprintf("Index %d out of bounds for length %d", idx, arr.Len()))
			}
			stack = append(stack, int64(v))
		case OpArrayPut:
			v := pop()
			idx := pop()
			arr, err := ip.getRef(refs, in.A, m, pc)
			if err != nil {
				return 0, nil, err
			}
			if perr := arr.SetInt(int(idx), int32(v)); perr != nil {
				return 0, nil, throw(pc, "java.lang.ArrayIndexOutOfBoundsException",
					fmt.Sprintf("Index %d out of bounds for length %d", idx, arr.Len()))
			}
		case opElidedArrayGet:
			// Guard-free form of OpArrayGet: the screening proof discharged
			// the bounds check, so the element address is computed directly.
			idx := pop()
			arr, err := ip.getRef(refs, in.A, m, pc)
			if err != nil {
				return 0, nil, err
			}
			if ip.audit != nil {
				ip.auditElided(pc, idx, arr)
			}
			stack = append(stack, int64(arr.GetIntUnchecked(int(idx))))
		case opElidedArrayPut:
			v := pop()
			idx := pop()
			arr, err := ip.getRef(refs, in.A, m, pc)
			if err != nil {
				return 0, nil, err
			}
			if ip.audit != nil {
				ip.auditElided(pc, idx, arr)
			}
			arr.SetIntUnchecked(int(idx), int32(v))
		case opElidedConstAGet:
			// Superinstruction: OpConst(index) + elided OpArrayGet in one
			// dispatch. The fused-over access sits at pc+1; skip it.
			arr, err := ip.getRef(refs, in.B, m, pc)
			if err != nil {
				return 0, nil, err
			}
			if ip.audit != nil {
				ip.auditElided(pc+1, in.A, arr)
			}
			stack = append(stack, int64(arr.GetIntUnchecked(int(in.A))))
			pc++
		case opElidedConstAPut:
			// Superinstruction: OpConst(value) + elided OpArrayPut.
			idx := pop()
			arr, err := ip.getRef(refs, in.B, m, pc)
			if err != nil {
				return 0, nil, err
			}
			if ip.audit != nil {
				ip.auditElided(pc+1, idx, arr)
			}
			arr.SetIntUnchecked(int(idx), int32(in.A))
			pc++
		case OpArrayLength:
			arr, err := ip.getRef(refs, in.A, m, pc)
			if err != nil {
				return 0, nil, err
			}
			stack = append(stack, int64(arr.Len()))
		case OpCallNative:
			if in.A < 0 || int(in.A) >= len(m.NativeNames) {
				return 0, nil, fmt.Errorf("interp: %s pc %d: bad native index %d", m.Name, pc, in.A)
			}
			name := m.NativeNames[in.A]
			nm, ok := ip.natives[name]
			if !ok {
				return 0, nil, throw(pc, "java.lang.UnsatisfiedLinkError", name)
			}
			arr, err := ip.getRef(refs, in.B, m, pc)
			if err != nil {
				return 0, nil, err
			}
			// The mask lookup on the dispatch path: a proven call site arms
			// the env's unguarded access variants for this call only.
			armed := false
			if elided && ip.elision.mask.Elided(pc) {
				armed = ip.env.ArmElision()
			}
			fault, nerr := ip.env.CallNative(name, nm.Kind, func(e *jni.Env) error {
				return nm.Body(e, arr)
			})
			if armed {
				ip.env.DisarmElision()
			}
			if fault != nil {
				// The native crashed: the whole "process" goes down, which
				// is exactly what distinguishes this from a managed throw.
				return 0, fault, nil
			}
			if nerr != nil {
				// Cancellation and budget errors from inside the native are
				// the request ending, not a managed exception: propagate them
				// unwrapped so errors.Is classification survives.
				if exec.Classify(nerr) != exec.AbortNone {
					return 0, nil, nerr
				}
				return 0, nil, throw(pc, "java.lang.RuntimeException", nerr.Error())
			}
		case OpReturn:
			return pop(), nil, nil
		default:
			return 0, nil, fmt.Errorf("interp: %s pc %d: unknown opcode %d", m.Name, pc, int(in.Op))
		}
	}
	return 0, nil, fmt.Errorf("interp: %s: fell off the end of the bytecode", m.Name)
}

// target clamps a jump target into [0, len(code)].
func (ip *Interp) target(m *Method, a int64) int {
	if a < 0 {
		return 0
	}
	if a > int64(len(m.Code)) {
		return len(m.Code)
	}
	return int(a)
}

// getRef fetches a reference slot.
func (ip *Interp) getRef(refs []*vm.Object, a int64, m *Method, pc int) (*vm.Object, error) {
	if a < 0 || int(a) >= len(refs) {
		return nil, fmt.Errorf("interp: %s pc %d: bad ref slot %d", m.Name, pc, a)
	}
	if refs[a] == nil {
		return nil, &ThrownException{Kind: "java.lang.NullPointerException",
			Detail: fmt.Sprintf("ref slot %d", a), Method: m.Name, PC: pc}
	}
	return refs[a], nil
}

// setRef stores a reference slot.
func (ip *Interp) setRef(refs []*vm.Object, a int64, obj *vm.Object, m *Method, pc int) error {
	if a < 0 || int(a) >= len(refs) {
		return fmt.Errorf("interp: %s pc %d: bad ref slot %d", m.Name, pc, a)
	}
	refs[a] = obj
	return nil
}
