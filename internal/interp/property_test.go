package interp_test

import (
	"testing"
	"testing/quick"

	"mte4jni/internal/interp"
)

// TestPropertyStraightLineArithmetic generates random straight-line
// arithmetic bytecode over two arguments and checks the interpreter against
// direct Go evaluation of the same expression tree.
func TestPropertyStraightLineArithmetic(t *testing.T) {
	ip, _ := newInterp(t, false)

	f := func(a, b int16, ops []uint8) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		// Build: start with a, then repeatedly apply (op, operand) where the
		// operand alternates between b and a small constant.
		code := []interp.Inst{{Op: interp.OpLoad, A: 0}}
		acc := int64(a)
		for i, raw := range ops {
			var operand int64
			if i%2 == 0 {
				operand = int64(b)
				code = append(code, interp.Inst{Op: interp.OpLoad, A: 1})
			} else {
				operand = int64(i + 1)
				code = append(code, interp.Inst{Op: interp.OpConst, A: operand})
			}
			switch raw % 3 {
			case 0:
				code = append(code, interp.Inst{Op: interp.OpAdd})
				acc += operand
			case 1:
				code = append(code, interp.Inst{Op: interp.OpSub})
				acc -= operand
			case 2:
				code = append(code, interp.Inst{Op: interp.OpMul})
				acc *= operand
			}
		}
		code = append(code, interp.Inst{Op: interp.OpReturn})
		m := &interp.Method{Name: "gen", MaxLocals: 2, Code: code}
		if err := interp.Validate(m); err != nil {
			return false
		}
		got, fault, err := ip.Invoke(m, int64(a), int64(b))
		return fault == nil && err == nil && got == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
