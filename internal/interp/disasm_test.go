package interp_test

import (
	"strings"
	"testing"

	"mte4jni/internal/interp"
)

func TestDisassemble(t *testing.T) {
	m := figure3Method()
	out := interp.Disassemble(m)
	for _, want := range []string{"method mteTestGetPrimitiveArray", "newarray", "callnative   test_ofb, ref=0", "return"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}

// TestDisassembleAnnotatedGolden pins the exact listing for a method using
// every opcode — including the unknown-opcode default case — with analyzer
// notes attached to a few pcs.
func TestDisassembleAnnotatedGolden(t *testing.T) {
	m := &interp.Method{
		Name: "everyOp", MaxLocals: 2, MaxRefs: 1,
		NativeNames: []string{"nat"},
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 18},
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpStore, A: 1},
			{Op: interp.OpAdd},
			{Op: interp.OpSub},
			{Op: interp.OpMul},
			{Op: interp.OpDiv},
			{Op: interp.OpRem},
			{Op: interp.OpJmp, A: 9},
			{Op: interp.OpJmpIfZero, A: 10},
			{Op: interp.OpJmpIfNeg, A: 11},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpArrayPut, A: 0},
			{Op: interp.OpArrayLength, A: 0},
			{Op: interp.OpCallNative, A: 0, B: 0},
			{Op: interp.OpCallNative, A: 7, B: 0}, // out-of-range name -> #7
			{Op: interp.OpReturn},
			{Op: interp.Opcode(99)}, // unknown-opcode default case
		},
	}
	notes := map[int][]string{
		12: {"oob: index ∈ [8,12], len=8"},
		15: {"native nat: oob: offset 80 past tag-rounded payload end 72"},
		18: {"unreachable"},
	}
	want := `method everyOp (locals=2, refs=1)
    0: const        18
    1: load         0
    2: store        1
    3: add
    4: sub
    5: mul
    6: div
    7: rem
    8: jmp          9
    9: jz           10
   10: jneg         11
   11: newarray     0
   12: aget         0  ; oob: index ∈ [8,12], len=8
   13: aput         0
   14: arraylength  0
   15: callnative   nat, ref=0  ; native nat: oob: offset 80 past tag-rounded payload end 72
   16: callnative   #7, ref=0
   17: return
   18: Opcode(99)  ; unreachable
`
	if got := interp.DisassembleAnnotated(m, notes); got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Unannotated disassembly of the same method keeps the plain listing.
	if got := interp.Disassemble(m); strings.Contains(got, ";") {
		t.Errorf("Disassemble leaked annotations:\n%s", got)
	}
}

func TestValidateAcceptsGoodBytecode(t *testing.T) {
	for _, m := range []*interp.Method{figure3Method(), sumLoop()} {
		if err := interp.Validate(m); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadBytecode(t *testing.T) {
	cases := []*interp.Method{
		{Name: "badjump", Code: []interp.Inst{{Op: interp.OpJmp, A: 99}}},
		{Name: "badlocal", MaxLocals: 1, Code: []interp.Inst{{Op: interp.OpLoad, A: 5}}},
		{Name: "badref", MaxRefs: 1, Code: []interp.Inst{{Op: interp.OpNewArray, A: 3}}},
		{Name: "badnative", MaxRefs: 1, Code: []interp.Inst{{Op: interp.OpCallNative, A: 0}}},
		{Name: "badop", Code: []interp.Inst{{Op: interp.Opcode(77)}}},
		{Name: "badnativeref", MaxRefs: 1, NativeNames: []string{"x"},
			Code: []interp.Inst{{Op: interp.OpCallNative, A: 0, B: 5}}},
	}
	for _, m := range cases {
		if err := interp.Validate(m); err == nil {
			t.Fatalf("%s accepted", m.Name)
		}
	}
}
