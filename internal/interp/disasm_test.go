package interp_test

import (
	"strings"
	"testing"

	"mte4jni/internal/interp"
)

func TestDisassemble(t *testing.T) {
	m := figure3Method()
	out := interp.Disassemble(m)
	for _, want := range []string{"method mteTestGetPrimitiveArray", "newarray", "callnative   test_ofb, ref=0", "return"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestValidateAcceptsGoodBytecode(t *testing.T) {
	for _, m := range []*interp.Method{figure3Method(), sumLoop()} {
		if err := interp.Validate(m); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadBytecode(t *testing.T) {
	cases := []*interp.Method{
		{Name: "badjump", Code: []interp.Inst{{Op: interp.OpJmp, A: 99}}},
		{Name: "badlocal", MaxLocals: 1, Code: []interp.Inst{{Op: interp.OpLoad, A: 5}}},
		{Name: "badref", MaxRefs: 1, Code: []interp.Inst{{Op: interp.OpNewArray, A: 3}}},
		{Name: "badnative", MaxRefs: 1, Code: []interp.Inst{{Op: interp.OpCallNative, A: 0}}},
		{Name: "badop", Code: []interp.Inst{{Op: interp.Opcode(77)}}},
		{Name: "badnativeref", MaxRefs: 1, NativeNames: []string{"x"},
			Code: []interp.Inst{{Op: interp.OpCallNative, A: 0, B: 5}}},
	}
	for _, m := range cases {
		if err := interp.Validate(m); err == nil {
			t.Fatalf("%s accepted", m.Name)
		}
	}
}
