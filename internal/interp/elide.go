// Proof-carrying tag-check elision: the interpreter side.
//
// The static screener (internal/analysis) proves, per heap-access
// instruction, that no execution can make its guard fire — array indices
// proven in bounds by the interval analysis, native call sites whose
// summaries stay inside the handout payload. Those verdicts compile into an
// ElisionMask: a bitset over the method's PCs. When a mask is bound, the
// interpreter rewrites the bytecode once per method into an internal form
// where proven array accesses dispatch to guard-free superinstructions and
// proven native call sites arm the env's unguarded access path for the
// duration of the call.
//
// The rewrite is strictly an execution-side cache: internal opcodes never
// appear in serialized programs, are rejected by Validate, and are invisible
// to Disassemble, which always renders the original code.

package interp

// ElisionMask is a compact bitset over a method's instruction PCs marking
// heap accesses whose guards the screening proofs discharged statically.
// Only the proof compiler in internal/analysis may construct one (enforced
// by tools/lintrepo): a mask is a claim that skipping the guard is sound,
// and that claim is only ever justified by the abstract interpreter.
type ElisionMask struct {
	words []uint64
	n     int
	sites int
}

// NewElisionMask builds a mask over a method of codeLen instructions with
// the given PCs marked. Out-of-range PCs are ignored; duplicates count once.
func NewElisionMask(codeLen int, pcs []int) *ElisionMask {
	m := &ElisionMask{words: make([]uint64, (codeLen+63)/64), n: codeLen}
	for _, pc := range pcs {
		if pc < 0 || pc >= codeLen {
			continue
		}
		if m.words[pc>>6]&(1<<(uint(pc)&63)) == 0 {
			m.words[pc>>6] |= 1 << (uint(pc) & 63)
			m.sites++
		}
	}
	return m
}

// Elided reports whether the guard at pc is proven unnecessary. It sits on
// the dispatch loop's native-call path and must stay allocation-free.
func (m *ElisionMask) Elided(pc int) bool {
	return uint(pc) < uint(m.n) && m.words[pc>>6]&(1<<(uint(pc)&63)) != 0
}

// Len returns the code length the mask was compiled for; a mask only binds
// to a method of exactly this length.
func (m *ElisionMask) Len() int { return m.n }

// Sites returns the number of distinct elided PCs.
func (m *ElisionMask) Sites() int { return m.sites }

// PCs returns the elided PCs in ascending order.
func (m *ElisionMask) PCs() []int {
	pcs := make([]int, 0, m.sites)
	for pc := 0; pc < m.n; pc++ {
		if m.Elided(pc) {
			pcs = append(pcs, pc)
		}
	}
	return pcs
}

// Internal opcodes the bind-time rewrite emits. They live past OpReturn so
// the public opcode space is untouched; Validate rejects them and they are
// never serialized.
const (
	// opElidedArrayGet is OpArrayGet with the bounds guard discharged.
	opElidedArrayGet Opcode = iota + OpReturn + 1
	// opElidedArrayPut is OpArrayPut with the bounds guard discharged.
	opElidedArrayPut
	// opElidedConstAGet fuses OpConst (A = index) with a following elided
	// OpArrayGet (B = ref slot) into one guard-free superinstruction; the
	// dispatch loop advances past both.
	opElidedConstAGet
	// opElidedConstAPut fuses OpConst (A = value) with a following elided
	// OpArrayPut (B = ref slot); the index still comes from the stack.
	opElidedConstAPut
)

// elidedOpName names the internal opcodes for debug renderings; String
// falls back to it past the public name table.
func elidedOpName(o Opcode) string {
	switch o {
	case opElidedArrayGet:
		return "aget!"
	case opElidedArrayPut:
		return "aput!"
	case opElidedConstAGet:
		return "const+aget!"
	case opElidedConstAPut:
		return "const+aput!"
	}
	return ""
}

// boundElision is the interpreter's execution-side view of a bound mask:
// the mask itself plus the rewritten code cached for the last method run.
type boundElision struct {
	mask *ElisionMask
	m    *Method
	code []Inst
}

// BindElision installs a compiled elision mask for subsequent InvokeCtx
// calls. The caller (the pool lease path) is responsible for validating the
// proof digest against the program before binding; the interpreter only
// checks the structural precondition that the mask covers the method's code
// exactly. Binding nil returns to fully-checked execution.
func (ip *Interp) BindElision(mask *ElisionMask) {
	if mask == nil {
		ip.elision = nil
		return
	}
	ip.elision = &boundElision{mask: mask}
}

// ElisionAudit records every guard-free array access for the soundness
// oracle: which elided PCs actually executed, and any access whose index the
// discharged guard would in fact have caught. A non-empty Violations list is
// a proof-compiler bug.
type ElisionAudit struct {
	// Executed maps an elided array-access PC to its execution count.
	Executed map[int]int
	// Violations lists accesses the elided guard would have rejected.
	Violations []AuditViolation
}

// AuditViolation is one guard-free access that escaped its proof.
type AuditViolation struct {
	PC     int
	Index  int64
	Length int64
}

// AuditElision attaches (and returns) an audit sink for subsequent runs.
// Test-only: auditing is off the fast path only by the nil check.
func (ip *Interp) AuditElision() *ElisionAudit {
	ip.audit = &ElisionAudit{Executed: make(map[int]int)}
	return ip.audit
}

// elidedCode returns the execution form of m under the bound mask: the
// original code when no mask binds (or the mask does not fit), otherwise a
// rewritten copy with proven accesses as internal opcodes, cached per
// method so repeat invocations pay nothing.
func (ip *Interp) elidedCode(m *Method) ([]Inst, bool) {
	el := ip.elision
	if el == nil || el.mask.Len() != len(m.Code) {
		return m.Code, false
	}
	if el.m != m {
		el.m = m
		el.code = rewriteElided(m.Code, el.mask)
	}
	return el.code, true
}

// rewriteElided lowers proven array accesses to their guard-free internal
// opcodes and then fuses each OpConst feeding one into a superinstruction.
// The fused-over access at pc+1 is kept verbatim so a jump landing there
// still executes the standalone elided form.
func rewriteElided(code []Inst, mask *ElisionMask) []Inst {
	out := make([]Inst, len(code))
	copy(out, code)
	for pc := range out {
		if !mask.Elided(pc) {
			continue
		}
		switch out[pc].Op {
		case OpArrayGet:
			out[pc].Op = opElidedArrayGet
		case OpArrayPut:
			out[pc].Op = opElidedArrayPut
		}
	}
	for pc := 0; pc+1 < len(out); pc++ {
		if out[pc].Op != OpConst {
			continue
		}
		switch out[pc+1].Op {
		case opElidedArrayGet:
			// const idx; aget! ref  =>  one dispatch, index as immediate.
			out[pc] = Inst{Op: opElidedConstAGet, A: out[pc].A, B: out[pc+1].A}
		case opElidedArrayPut:
			// const val; aput! ref  =>  one dispatch, value as immediate.
			out[pc] = Inst{Op: opElidedConstAPut, A: out[pc].A, B: out[pc+1].A}
		}
	}
	return out
}

// auditElided records one guard-free array access when an audit sink is
// attached. pc is the access instruction's original PC (for fused
// superinstructions, the fused-over access at pc+1).
func (ip *Interp) auditElided(pc int, idx int64, arr interface{ Len() int }) {
	ip.audit.Executed[pc]++
	if idx < 0 || idx >= int64(arr.Len()) {
		ip.audit.Violations = append(ip.audit.Violations,
			AuditViolation{PC: pc, Index: idx, Length: int64(arr.Len())})
	}
}
