package interp_test

import (
	"errors"
	"strings"
	"testing"

	"mte4jni/internal/core"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// newInterp builds a VM + env + interpreter; mteOn selects MTE4JNI+Sync vs
// no protection.
func newInterp(t *testing.T, mteOn bool) (*interp.Interp, *jni.Env) {
	t.Helper()
	opts := vm.Options{HeapSize: 8 << 20}
	if mteOn {
		opts.MTE = true
		opts.CheckMode = mte.TCFSync
	}
	v, err := vm.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	var checker jni.Checker = jni.DirectChecker{}
	if mteOn {
		p, err := core.New(v, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		checker = p
	}
	env := jni.NewEnv(th, checker, true)
	return interp.New(env), env
}

func run(t *testing.T, ip *interp.Interp, m *interp.Method, args ...int64) int64 {
	t.Helper()
	v, fault, err := ip.Invoke(m, args...)
	if fault != nil || err != nil {
		t.Fatalf("%s: fault=%v err=%v", m.Name, fault, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "calc", MaxLocals: 2,
		// return (a + b) * (a - b) / 2
		Code: []interp.Inst{
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpAdd},
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpSub},
			{Op: interp.OpMul},
			{Op: interp.OpConst, A: 2},
			{Op: interp.OpDiv},
			{Op: interp.OpReturn},
		},
	}
	if got := run(t, ip, m, 7, 3); got != 20 {
		t.Fatalf("calc(7,3) = %d, want 20", got)
	}
	if got := run(t, ip, m, 10, 10); got != 0 {
		t.Fatalf("calc(10,10) = %d", got)
	}
}

func TestDivByZeroThrows(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "div", MaxLocals: 2,
		Code: []interp.Inst{
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpDiv},
			{Op: interp.OpReturn},
		},
	}
	_, fault, err := ip.Invoke(m, 1, 0)
	var thrown *interp.ThrownException
	if fault != nil || !errors.As(err, &thrown) {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if thrown.Kind != "java.lang.ArithmeticException" {
		t.Fatalf("exception %v", thrown)
	}
	// Remainder too.
	m.Code[2].Op = interp.OpRem
	if _, _, err := ip.Invoke(m, 1, 0); !errors.As(err, &thrown) {
		t.Fatalf("rem by zero: %v", err)
	}
}

// sumLoop returns a method computing sum(1..n) with a branch loop.
func sumLoop() *interp.Method {
	return &interp.Method{
		Name: "sum", MaxLocals: 3, // 0: n, 1: i, 2: acc
		Code: []interp.Inst{
			// i = n
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpStore, A: 1},
			// loop: if i == 0 -> done(9)
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpJmpIfZero, A: 9},
			// acc += i; i -= 1
			{Op: interp.OpLoad, A: 2},
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpAdd},
			{Op: interp.OpStore, A: 2},
			// i-- then jump back: i = i - 1
			{Op: interp.OpJmp, A: 10},
			// done: return acc
			{Op: interp.OpLoad, A: 2},
			// decrement block (10..13)
			{Op: interp.OpLoad, A: 1},
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpSub},
			{Op: interp.OpStore, A: 1},
			{Op: interp.OpJmp, A: 2},
		},
	}
}

func TestLoopSum(t *testing.T) {
	// Note: the "done" path at pc 9 loads acc then falls into the decrement
	// block — rewrite with an explicit return instead.
	m := sumLoop()
	m.Code = append(m.Code[:10], append([]interp.Inst{{Op: interp.OpReturn}}, m.Code[10:]...)...)
	// Fix jump targets shifted by the insertion: decrement block is now 11.
	m.Code[8].A = 11
	ip, _ := newInterp(t, false)
	if got := run(t, ip, m, 10); got != 55 {
		t.Fatalf("sum(10) = %d, want 55", got)
	}
	if got := run(t, ip, m, 0); got != 0 {
		t.Fatalf("sum(0) = %d", got)
	}
}

func TestRunawayLoopAborts(t *testing.T) {
	ip, _ := newInterp(t, false)
	ip.MaxSteps = 1000
	m := &interp.Method{
		Name: "spin", MaxLocals: 1,
		Code: []interp.Inst{{Op: interp.OpJmp, A: 0}},
	}
	if _, _, err := ip.Invoke(m); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("runaway loop: %v", err)
	}
}

func TestManagedArrayBoundsCheck(t *testing.T) {
	// The managed half of the paper's asymmetry: writing index 21 of an
	// int[18] from BYTECODE throws; no memory is touched.
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "managedOOB", MaxLocals: 1, MaxRefs: 1,
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 18},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 21},   // index
			{Op: interp.OpConst, A: 0xBA}, // value
			{Op: interp.OpArrayPut, A: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
	}
	_, fault, err := ip.Invoke(m)
	var thrown *interp.ThrownException
	if fault != nil || !errors.As(err, &thrown) {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if thrown.Kind != "java.lang.ArrayIndexOutOfBoundsException" {
		t.Fatalf("exception %v", thrown)
	}
	if !strings.Contains(thrown.Error(), "Index 21 out of bounds for length 18") {
		t.Fatalf("message %q", thrown.Error())
	}
}

func TestArrayGetPutLength(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "arrays", MaxLocals: 1, MaxRefs: 1,
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 5},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 2},  // index
			{Op: interp.OpConst, A: 42}, // value
			{Op: interp.OpArrayPut, A: 0},
			{Op: interp.OpConst, A: 2},
			{Op: interp.OpArrayGet, A: 0},
			{Op: interp.OpArrayLength, A: 0},
			{Op: interp.OpMul}, // 42 * 5
			{Op: interp.OpReturn},
		},
	}
	if got := run(t, ip, m); got != 210 {
		t.Fatalf("arrays() = %d, want 210", got)
	}
}

func TestNegativeArraySizeThrows(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "neg", MaxLocals: 1, MaxRefs: 1,
		Code: []interp.Inst{
			{Op: interp.OpConst, A: -3},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
	}
	var thrown *interp.ThrownException
	if _, _, err := ip.Invoke(m); !errors.As(err, &thrown) || thrown.Kind != "java.lang.NegativeArraySizeException" {
		t.Fatalf("err=%v", err)
	}
}

func TestNullRefThrowsNPE(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := &interp.Method{
		Name: "npe", MaxLocals: 1, MaxRefs: 1,
		Code: []interp.Inst{
			{Op: interp.OpArrayLength, A: 0}, // ref slot never assigned
			{Op: interp.OpReturn},
		},
	}
	var thrown *interp.ThrownException
	if _, _, err := ip.Invoke(m); !errors.As(err, &thrown) || thrown.Kind != "java.lang.NullPointerException" {
		t.Fatalf("err=%v", err)
	}
}

// figure3Method builds the paper's Figure 3 program as bytecode: allocate
// int[18], then invoke a native that writes index 21 through the raw
// pointer.
func figure3Method() *interp.Method {
	return &interp.Method{
		Name: "mteTestGetPrimitiveArray", MaxLocals: 1, MaxRefs: 1,
		NativeNames: []string{"test_ofb"},
		Code: []interp.Inst{
			{Op: interp.OpConst, A: 18},
			{Op: interp.OpNewArray, A: 0},
			{Op: interp.OpCallNative, A: 0, B: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
	}
}

// registerTestOFB installs the Figure 3 native method body.
func registerTestOFB(ip *interp.Interp) {
	ip.RegisterNative("test_ofb", interp.NativeMethod{
		Kind: jni.Regular,
		Body: func(env *jni.Env, arr *vm.Object) error {
			p, err := env.GetPrimitiveArrayCritical(arr)
			if err != nil {
				return err
			}
			env.StoreInt(p.Add(21*4), 0xBAD) // the unchecked native write
			return env.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
		},
	})
}

func TestNativeOOBFromBytecodeUnprotected(t *testing.T) {
	// Same index-21 write, but through JNI with no protection: no managed
	// exception, no fault — silent corruption, the paper's motivating gap.
	ip, _ := newInterp(t, false)
	registerTestOFB(ip)
	v, fault, err := ip.Invoke(figure3Method())
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if v != 0 {
		t.Fatalf("return %d", v)
	}
}

func TestNativeOOBFromBytecodeUnderMTE(t *testing.T) {
	// With MTE4JNI the same program dies with a precise hardware fault.
	ip, _ := newInterp(t, true)
	registerTestOFB(ip)
	_, fault, err := ip.Invoke(figure3Method())
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil || fault.Kind != mte.FaultTagMismatch {
		t.Fatalf("fault = %v", fault)
	}
}

func TestUnsatisfiedLink(t *testing.T) {
	ip, _ := newInterp(t, false)
	m := figure3Method() // test_ofb not registered
	var thrown *interp.ThrownException
	if _, _, err := ip.Invoke(m); !errors.As(err, &thrown) || thrown.Kind != "java.lang.UnsatisfiedLinkError" {
		t.Fatalf("err=%v", err)
	}
}

func TestVerifierStyleErrors(t *testing.T) {
	ip, _ := newInterp(t, false)
	cases := []*interp.Method{
		{Name: "underflow", Code: []interp.Inst{{Op: interp.OpAdd}}},
		{Name: "badlocal", MaxLocals: 1, Code: []interp.Inst{{Op: interp.OpLoad, A: 9}}},
		{Name: "felloff", MaxLocals: 1, Code: []interp.Inst{{Op: interp.OpConst, A: 1}}},
		{Name: "badref", MaxLocals: 1, MaxRefs: 0, Code: []interp.Inst{{Op: interp.OpArrayLength, A: 0}}},
	}
	for _, m := range cases {
		if _, _, err := ip.Invoke(m); err == nil {
			t.Fatalf("%s: invalid bytecode accepted", m.Name)
		}
	}
	if _, _, err := ip.Invoke(&interp.Method{Name: "argc"}, 1, 2); err == nil {
		t.Fatal("too many args accepted")
	}
}

func TestOpcodeString(t *testing.T) {
	if interp.OpConst.String() != "const" || interp.OpCallNative.String() != "callnative" {
		t.Fatal("opcode strings wrong")
	}
	if !strings.Contains(interp.Opcode(99).String(), "99") {
		t.Fatal("unknown opcode string")
	}
}
