package interp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mte4jni/internal/exec"
	"mte4jni/internal/interp"
)

// spinN returns a method that loops n (local 0) times and returns 0 —
// 7 dispatched instructions per iteration.
func spinN() *interp.Method {
	return &interp.Method{
		Name: "spinN", MaxLocals: 1,
		Code: []interp.Inst{
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpJmpIfZero, A: 7},
			{Op: interp.OpLoad, A: 0},
			{Op: interp.OpConst, A: 1},
			{Op: interp.OpSub},
			{Op: interp.OpStore, A: 0},
			{Op: interp.OpJmp, A: 0},
			{Op: interp.OpConst, A: 0},
			{Op: interp.OpReturn},
		},
	}
}

func TestInvokeCtxPreCanceled(t *testing.T) {
	ip, _ := newInterp(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(ctx, exec.Options{})
	_, fault, err := ip.InvokeCtx(ec, spinN(), 10)
	if fault != nil {
		t.Fatalf("fault = %v", fault)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ip.Steps != 0 {
		t.Fatalf("pre-canceled run executed %d steps", ip.Steps)
	}
}

func TestInvokeCtxCancelMidLoop(t *testing.T) {
	ip, _ := newInterp(t, false)
	ip.MaxSteps = 1 << 40 // cancellation, not fuel, must end the run
	ctx, cancel := context.WithCancel(context.Background())
	ec := exec.New(ctx, exec.Options{})

	done := make(chan error, 1)
	go func() {
		_, _, err := ip.InvokeCtx(ec, spinN(), 1<<40)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled run did not return")
	}
	if exec.Classify(ec.Err()) != exec.AbortCanceled {
		t.Fatalf("classify = %v", exec.Classify(ec.Err()))
	}
}

func TestInvokeCtxDeadlineMidLoop(t *testing.T) {
	ip, _ := newInterp(t, false)
	ip.MaxSteps = 1 << 40
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ec := exec.New(ctx, exec.Options{})
	_, _, err := ip.InvokeCtx(ec, spinN(), 1<<40)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestInvokeCtxStepBudget(t *testing.T) {
	ip, _ := newInterp(t, false)
	ec := exec.New(nil, exec.Options{StepBudget: 500})
	_, fault, err := ip.InvokeCtx(ec, spinN(), 1<<40)
	if fault != nil {
		t.Fatalf("fault = %v", fault)
	}
	if !errors.Is(err, exec.ErrStepsExceeded) {
		t.Fatalf("err = %v, want ErrStepsExceeded", err)
	}
	var se *exec.StepsError
	if !errors.As(err, &se) || se.Budget != 500 {
		t.Fatalf("steps error = %+v", err)
	}
	if exec.Classify(err) != exec.AbortSteps {
		t.Fatalf("classify = %v", exec.Classify(err))
	}
}

// TestDispatchLoopAllocsWithCancelPolling is the satellite bench guard: with
// a live cancellable context bound, a long loop must allocate exactly as
// much per Invoke as a short one — i.e. the dispatch loop including the
// amortized cancellation poll adds 0 allocs/op. (Invoke's fixed setup —
// locals/refs/stack/closures — allocates a constant amount, which the
// differential subtracts out.)
func TestDispatchLoopAllocsWithCancelPolling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ec := exec.New(ctx, exec.Options{})

	measure := func(n int64) float64 {
		ip, _ := newInterp(t, false)
		ip.MaxSteps = 1 << 40
		m := spinN()
		return testing.AllocsPerRun(50, func() {
			if _, fault, err := ip.InvokeCtx(ec, m, n); fault != nil || err != nil {
				t.Fatalf("fault=%v err=%v", fault, err)
			}
		})
	}
	short := measure(100)   // ~700 steps: under one poll interval
	long := measure(10_000) // ~70k steps: ~68 cancellation polls
	if long != short {
		t.Fatalf("dispatch loop allocates: %v allocs/op short vs %v long (delta %v over ~69k extra steps)",
			short, long, long-short)
	}
}
