package interp

import (
	"fmt"
	"strings"
)

// Disassemble renders a method's bytecode in a javap-like listing, for
// debugging and for golden tests of generated programs.
func Disassemble(m *Method) string {
	return DisassembleAnnotated(m, nil)
}

// DisassembleAnnotated renders the same listing with per-instruction notes
// appended as "; note" comments — the static analyzer's findings land here
// (e.g. "; unreachable" or "; oob: index ∈ [8,12], len=8"), keyed by pc.
func DisassembleAnnotated(m *Method, notes map[int][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s (locals=%d, refs=%d)\n", m.Name, m.MaxLocals, m.MaxRefs)
	for i, in := range m.Code {
		var line string
		switch in.Op {
		case OpConst, OpLoad, OpStore, OpJmp, OpJmpIfZero, OpJmpIfNeg,
			OpNewArray, OpArrayGet, OpArrayPut, OpArrayLength:
			line = fmt.Sprintf("  %3d: %-12s %d", i, in.Op, in.A)
		case OpCallNative:
			name := fmt.Sprintf("#%d", in.A)
			if in.A >= 0 && int(in.A) < len(m.NativeNames) {
				name = m.NativeNames[in.A]
			}
			line = fmt.Sprintf("  %3d: %-12s %s, ref=%d", i, in.Op, name, in.B)
		case OpReturn:
			line = fmt.Sprintf("  %3d: %s", i, in.Op)
		default:
			line = fmt.Sprintf("  %3d: %s", i, in.Op)
		}
		if ns := notes[i]; len(ns) > 0 {
			line += "  ; " + strings.Join(ns, "; ")
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate performs the static checks a class verifier would: jump targets
// in range, local/ref indices in range, native indices resolvable. Invoke
// performs the same checks dynamically; Validate lets tools reject bad
// bytecode up front.
func Validate(m *Method) error {
	for i, in := range m.Code {
		switch in.Op {
		case OpJmp, OpJmpIfZero, OpJmpIfNeg:
			if in.A < 0 || in.A > int64(len(m.Code)) {
				return fmt.Errorf("interp: %s pc %d: jump target %d out of range", m.Name, i, in.A)
			}
		case OpLoad, OpStore:
			if in.A < 0 || in.A >= int64(m.MaxLocals) {
				return fmt.Errorf("interp: %s pc %d: local %d out of range", m.Name, i, in.A)
			}
		case OpNewArray, OpArrayGet, OpArrayPut, OpArrayLength:
			if in.A < 0 || in.A >= int64(m.MaxRefs) {
				return fmt.Errorf("interp: %s pc %d: ref slot %d out of range", m.Name, i, in.A)
			}
		case OpCallNative:
			if in.A < 0 || in.A >= int64(len(m.NativeNames)) {
				return fmt.Errorf("interp: %s pc %d: native index %d out of range", m.Name, i, in.A)
			}
			if in.B < 0 || in.B >= int64(m.MaxRefs) {
				return fmt.Errorf("interp: %s pc %d: ref slot %d out of range", m.Name, i, in.B)
			}
		case OpConst, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpReturn:
			// No static operands to check.
		default:
			return fmt.Errorf("interp: %s pc %d: unknown opcode %d", m.Name, i, int(in.Op))
		}
	}
	return nil
}
