package fuzz

import (
	"math/rand"
	"testing"

	"mte4jni/internal/analysis"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

// TestElidedEngineDifferential drives the reference, checked-fast and elided
// engines over randomized streams in both check modes. Zero disagreements is
// the acceptance bar: the unguarded path may only ever skip the tag compare,
// never change a value, a fault verdict, or final memory/tag state.
func TestElidedEngineDifferential(t *testing.T) {
	steps := 2000
	seeds := 8
	if testing.Short() {
		steps, seeds = 500, 2
	}
	for _, mode := range []mte.CheckMode{mte.TCFSync, mte.TCFAsync} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				if err := DifferentialElidedEngines(int64(3000+seed), steps, mode); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestElidedEngineDifferentialCheckingOff covers TCF-none, where the proof
// predicate is trivially true and every in-mapping access takes the
// unguarded path.
func TestElidedEngineDifferentialCheckingOff(t *testing.T) {
	if err := DifferentialElidedEngines(42, 1000, mte.TCFNone); err != nil {
		t.Fatal(err)
	}
}

// TestElisionLockstepKnownSafe: hand-written provably-safe programs must
// compile a nonempty elision mask, run guard-free in lockstep with the
// checked engine, and pass the proof witness.
func TestElisionLockstepKnownSafe(t *testing.T) {
	cases := []struct {
		name string
		prog *analysis.Program
	}{
		{"in-payload-write", spine(8, analysis.NativeSummary{MinOff: 0, MaxOff: 31, Write: true})},
		{"no-heap-access", spine(8, analysis.NativeSummary{MinOff: 1, MaxOff: 0})},
		{"padding-read", spine(7, analysis.NativeSummary{MinOff: 28, MaxOff: 31})},
		{"critical-native", spine(8, analysis.NativeSummary{Kind: jni.CriticalNative, MinOff: 0, MaxOff: 31, Write: true})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := ElisionLockstep(tc.prog, 42)
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			if out.Elision == nil || out.Elision.Sites() == 0 {
				t.Fatalf("provably-safe program compiled no elision mask")
			}
			if out.Faulted() {
				t.Errorf("elided run faulted: %v", out.Fault)
			}
			if out.Invalidations != 0 {
				t.Errorf("elided run counted %d invalidations, want 0", out.Invalidations)
			}
			if pr := out.Elision.Proof(2); pr == nil || pr.Op != "callnative" {
				t.Errorf("call site at pc 2 not elided: %+v", out.Elision.Proofs())
			}
		})
	}
}

// TestElisionLockstepGenerated is the soundness oracle at scale: 250
// generated programs each run fully checked and elided, with zero tolerated
// divergence in results or fault verdicts and a proof witness validated for
// every elided PC. Programs whose whole-program verdict is unknown or fault
// still participate — their discharged array bounds and safe call sites are
// elided while the rest stays checked, which is exactly the mixed regime
// production runs see.
func TestElisionLockstepGenerated(t *testing.T) {
	const programs = 250
	var masked, sites, executedArrays, elidedCalls int
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, res := GenProgram(rng)
		out, err := ElisionLockstep(p, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Elision == nil {
			continue
		}
		if n := out.Elision.Sites(); n > 0 {
			masked++
			sites += n
		}
		executedArrays += len(out.Audit.Executed)
		for _, pr := range out.Elision.Proofs() {
			if pr.Op == "callnative" {
				elidedCalls++
			}
		}
		_ = res
	}
	t.Logf("elision over %d programs: %d masked, %d sites, %d guard-free array PCs executed, %d elided call sites",
		programs, masked, sites, executedArrays, elidedCalls)
	// The corpus must actually exercise the elided paths, or the lockstep
	// proves nothing.
	if masked == 0 || elidedCalls == 0 {
		t.Errorf("corpus degenerated: masked=%d elidedCalls=%d", masked, elidedCalls)
	}
}

// TestWitnessCatchesForgedProof plants a proof the dynamic run contradicts
// and checks the witness rejects it: a native that touches offsets beyond
// what a (deliberately mismatched) summary-derived proof allows.
func TestWitnessCatchesForgedProof(t *testing.T) {
	// An honest safe program, run elided.
	p := spine(8, analysis.NativeSummary{MinOff: 0, MaxOff: 31, Write: true})
	out, err := ExecuteElided(p, 42)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := WitnessProofs(p, out); err != nil {
		t.Fatalf("honest witness rejected: %v", err)
	}
	// Now swap in a program whose summary promises a smaller payload than
	// what was actually touched; the traced accesses at offset 31 escape the
	// forged length fact (1 element ⇒ tag-rounded payload [0,16)).
	forged := spine(8, analysis.NativeSummary{MinOff: 0, MaxOff: 31, Write: true})
	fres := forged.Analyze("")
	if fres.Elision == nil {
		t.Fatal("no elision compiled for forged program")
	}
	pr := fres.Elision.Proofs()
	for i := range pr {
		if pr[i].Op == "callnative" {
			pr[i].LenLo = 1 // forge the length fact the verdict depended on
		}
	}
	out.Elision = fres.Elision
	if err := WitnessProofs(forged, out); err == nil {
		t.Error("witness accepted a forged length fact")
	}
}
