package fuzz

import (
	"errors"
	"testing"
)

func TestFuzzAllSchemesManySeeds(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 25; seed++ {
				rep, err := Run(seed, 400, scheme)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Steps < 400 {
					t.Fatalf("seed %d: only %d steps", seed, rep.Steps)
				}
				if rep.Gets == 0 || rep.InBounds == 0 || rep.OOBs == 0 {
					t.Fatalf("seed %d: degenerate run %+v", seed, rep)
				}
			}
		})
	}
}

func TestFuzzMTEDetectsSomething(t *testing.T) {
	// Across a handful of seeds the MTE scheme must actually observe
	// faults — a fuzzer that never triggers detection isn't exercising the
	// mechanism.
	total := 0
	for seed := int64(100); seed < 110; seed++ {
		rep, err := Run(seed, 500, SchemeMTESync)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.FaultsObserved
	}
	if total == 0 {
		t.Fatal("no faults observed across 10 seeds")
	}
}

func TestFuzzGuardedDetectsRedZoneWrites(t *testing.T) {
	total := 0
	for seed := int64(200); seed < 212; seed++ {
		rep, err := Run(seed, 500, SchemeGuarded)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.FaultsObserved
	}
	if total == 0 {
		t.Fatal("guarded copy never reported a red-zone violation across 12 seeds")
	}
}

func TestMismatchError(t *testing.T) {
	m := &Mismatch{Seed: 7, Step: 42, Scheme: SchemeMTESync, Got: "x", Want: "y"}
	var err error = m
	var back *Mismatch
	if !errors.As(err, &back) || back.Seed != 7 {
		t.Fatal("Mismatch must round-trip through errors.As")
	}
	for _, want := range []string{"seed 7", "step 42", "mte4jni-sync"} {
		if !contains(m.Error(), want) {
			t.Fatalf("error %q missing %q", m.Error(), want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSchemeIDString(t *testing.T) {
	if SchemeNone.String() != "no-protection" || SchemeGuarded.String() != "guarded-copy" || SchemeMTESync.String() != "mte4jni-sync" {
		t.Fatal("SchemeID strings wrong")
	}
}
