package fuzz

import (
	"math/rand"
	"testing"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
)

// TestScreenDifferentialKnownPrograms: the admission screen must reject
// exactly the programs that deterministically fault, including everything
// the load generator's -reject-rate corpus submits.
func TestScreenDifferentialKnownPrograms(t *testing.T) {
	for _, name := range pool.BadProgramNames {
		v, out, err := ScreenDifferential(pool.BadProgram(name), 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Rejected() {
			t.Errorf("%s: not rejected: %+v", name, v)
		}
		if !out.Faulted() {
			t.Errorf("%s: rejected program ran clean", name)
		}
	}
	v, out, err := ScreenDifferential(pool.SafeProgram(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if v.Verdict != analysis.VerdictSafe || out.Faulted() {
		t.Fatalf("safe program: verdict=%v faulted=%v", v.Verdict, out.Faulted())
	}
}

// TestScreenDifferentialGenerated is the soundness gate for the provenance
// domain at scale: over the 250-seed corpus the admission decision must
// never contradict the dynamic outcome (ScreenDifferential errors on any
// disagreement), and every rejection must carry a provenance chain.
func TestScreenDifferentialGenerated(t *testing.T) {
	const programs = 250
	var rejected, admittedSafe, admittedUnknown int
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _ := GenProgram(rng)
		v, _, err := ScreenDifferential(p, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch {
		case v.Rejected():
			rejected++
			if len(v.Provenance) == 0 || v.PC < 0 || v.Native == "" {
				t.Fatalf("seed %d: rejection without provenance: %+v", seed, v)
			}
		case v.Verdict == analysis.VerdictSafe:
			admittedSafe++
		default:
			admittedUnknown++
		}
	}
	t.Logf("screen decisions over %d programs: rejected=%d safe=%d unknown=%d",
		programs, rejected, admittedSafe, admittedUnknown)
	if rejected == 0 || admittedSafe == 0 {
		t.Errorf("corpus degenerated: rejected=%d safe=%d", rejected, admittedSafe)
	}
}
