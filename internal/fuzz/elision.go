package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"

	"mte4jni/internal/analysis"
	"mte4jni/internal/core"
	"mte4jni/internal/cpu"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// The elision soundness oracle. Proof-carrying tag-check elision
// (internal/analysis compiling screening verdicts into an interp.ElisionMask)
// is only admissible if the guard-free execution it enables is observably
// identical to fully checked execution. Two oracles enforce that:
//
//   - DifferentialElidedEngines drives the raw access engine three ways in
//     lockstep — reference engine (the specification), checked fast engine,
//     and an elided driver that takes the *Unguarded fast path exactly where
//     a dynamic proof discharges the guard. Any divergence in values, fault
//     verdicts, async latch state, or final memory/tag contents is a bug in
//     the unguarded path.
//
//   - ElisionLockstep runs a whole program twice — fully checked and with
//     its compiled elision mask bound — and demands identical return values,
//     faults, managed errors and heap footprints, then re-validates every
//     elided PC's static proof against the dynamic run (the proof witness):
//     audited guard-free array accesses must have been in bounds, and every
//     traced native access under an elided call site must stay inside the
//     tag-rounded payload the proof recorded.

// mapTriple creates the same mapping in three worlds, failing on any layout
// divergence.
func mapTriple(a, b, c *engineWorld, name string, size uint64, prot mem.Prot) error {
	ma, errA := a.space.Map(name, size, prot)
	mb, errB := b.space.Map(name, size, prot)
	mc, errC := c.space.Map(name, size, prot)
	if (errA == nil) != (errB == nil) || (errA == nil) != (errC == nil) {
		return fmt.Errorf("Map(%q): worlds diverged on error (%v, %v, %v)", name, errA, errB, errC)
	}
	if errA != nil {
		return nil
	}
	if ma.Base() != mb.Base() || ma.Base() != mc.Base() || ma.Size() != mb.Size() || ma.Size() != mc.Size() {
		return fmt.Errorf("Map(%q): layouts diverged", name)
	}
	a.maps = append(a.maps, ma)
	b.maps = append(b.maps, mb)
	c.maps = append(c.maps, mc)
	return nil
}

// provenSpan is the dynamic analogue of the static in-payload proof: the
// span lies wholly inside one mapping and either checking is off, the
// mapping is untagged, or every granule's tag matches the pointer's. Only
// under this predicate may the elided world take the unguarded path — the
// same soundness condition the proof compiler discharges statically.
func provenSpan(w *engineWorld, p mte.Ptr, n int) bool {
	if n <= 0 {
		return false
	}
	if !w.ctx.Checking() {
		return true
	}
	var m *mem.Mapping
	for _, mm := range w.maps {
		if p.Addr() >= mm.Base() && p.Addr()+mte.Addr(n) <= mm.End() {
			m = mm
			break
		}
	}
	if m == nil {
		return false
	}
	if !m.Tagged() {
		return true
	}
	end := p.Addr() + mte.Addr(n)
	for a := p.Addr().AlignDown(mte.GranuleSize); a < end; a += mte.GranuleSize {
		if m.TagAt(a) != p.Tag() {
			return false
		}
	}
	return true
}

// DifferentialElidedEngines runs a randomized access stream through three
// worlds in lockstep — reference engine, checked fast engine, and the fast
// engine with unguarded accesses wherever provenSpan discharges the guard —
// and returns an error describing the first divergence, or nil.
func DifferentialElidedEngines(seed int64, steps int, mode mte.CheckMode) error {
	rng := rand.New(rand.NewSource(seed))

	fast := &engineWorld{space: mem.NewSpace(), ctx: cpu.New("fast", mode)}
	refW := &engineWorld{space: mem.NewSpace(), ctx: cpu.New("reference", mode)}
	elw := &engineWorld{space: mem.NewSpace(), ctx: cpu.New("elided", mode)}
	for _, w := range []*engineWorld{fast, refW, elw} {
		w.ctx.SetTCO(false)
	}
	ref := mem.NewReferenceEngine(refW.space)

	if err := mapTriple(fast, refW, elw, "heap", 64*1024, mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
		return err
	}
	if err := mapTriple(fast, refW, elw, "scratch", 16*1024, mem.ProtRead|mem.ProtWrite); err != nil {
		return err
	}
	if err := mapTriple(fast, refW, elw, "rodata", 4096, mem.ProtRead|mem.ProtMTE); err != nil {
		return err
	}
	// Large, mostly-untouched tagged mapping: sparse-space coverage for the
	// hierarchical tag table under all three engines (see engine.go).
	if err := mapTriple(fast, refW, elw, "sparse", 1<<20, mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
		return err
	}

	randPtr := func() mte.Ptr {
		m := fast.maps[rng.Intn(len(fast.maps))]
		var addr mte.Addr
		switch rng.Intn(8) {
		case 0:
			addr = m.End()
		case 1:
			addr = m.End() + mte.Addr(rng.Intn(4096))
		case 2:
			addr = m.Base() + mte.Addr(m.Size()) - mte.Addr(1+rng.Intn(32))
		default:
			addr = m.Base() + mte.Addr(rng.Intn(int(m.Size())))
		}
		return mte.MakePtr(addr, mte.Tag(rng.Intn(16)))
	}
	randSize := func() int {
		switch rng.Intn(6) {
		case 0:
			return rng.Intn(16)
		case 1:
			return 128
		case 2:
			return 128 + 16*rng.Intn(8)
		default:
			return rng.Intn(1024)
		}
	}

	check := func(step int, op string, fa, fb, fe *mte.Fault) error {
		if faultsDiffer(fa, fb) {
			return fmt.Errorf("step %d %s: fast/reference faults diverged\n fast: %+v\n  ref: %+v", step, op, fa, fb)
		}
		if faultsDiffer(fe, fa) {
			return fmt.Errorf("step %d %s: elided fault diverged\nelided: %+v\n  fast: %+v", step, op, fe, fa)
		}
		if fast.ctx.PendingAsyncFault() != refW.ctx.PendingAsyncFault() ||
			elw.ctx.PendingAsyncFault() != fast.ctx.PendingAsyncFault() {
			return fmt.Errorf("step %d %s: async pending diverged", step, op)
		}
		if fast.ctx.AsyncFaultCount() != refW.ctx.AsyncFaultCount() ||
			elw.ctx.AsyncFaultCount() != fast.ctx.AsyncFaultCount() {
			return fmt.Errorf("step %d %s: async fault counts diverged", step, op)
		}
		return nil
	}

	buf := make([]byte, 1024)
	elided := 0
	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0: // Load of a random width
			p := randPtr()
			var va, vb, ve uint64
			var fa, fb, fe *mte.Fault
			width := rng.Intn(4)
			sz := 1 << width
			useElide := provenSpan(elw, p, sz)
			switch width {
			case 0:
				var a8, b8, e8 uint8
				a8, fa = fast.space.Load8(fast.ctx, p)
				b8, fb = ref.Load8(refW.ctx, p)
				if useElide {
					e8, fe = elw.space.Load8Unguarded(elw.ctx, p)
				} else {
					e8, fe = elw.space.Load8(elw.ctx, p)
				}
				va, vb, ve = uint64(a8), uint64(b8), uint64(e8)
			case 1:
				var a16, b16, e16 uint16
				a16, fa = fast.space.Load16(fast.ctx, p)
				b16, fb = ref.Load16(refW.ctx, p)
				if useElide {
					e16, fe = elw.space.Load16Unguarded(elw.ctx, p)
				} else {
					e16, fe = elw.space.Load16(elw.ctx, p)
				}
				va, vb, ve = uint64(a16), uint64(b16), uint64(e16)
			case 2:
				var a32, b32, e32 uint32
				a32, fa = fast.space.Load32(fast.ctx, p)
				b32, fb = ref.Load32(refW.ctx, p)
				if useElide {
					e32, fe = elw.space.Load32Unguarded(elw.ctx, p)
				} else {
					e32, fe = elw.space.Load32(elw.ctx, p)
				}
				va, vb, ve = uint64(a32), uint64(b32), uint64(e32)
			default:
				va, fa = fast.space.Load64(fast.ctx, p)
				vb, fb = ref.Load64(refW.ctx, p)
				if useElide {
					ve, fe = elw.space.Load64Unguarded(elw.ctx, p)
				} else {
					ve, fe = elw.space.Load64(elw.ctx, p)
				}
			}
			if useElide {
				elided++
			}
			if err := check(step, "load", fa, fb, fe); err != nil {
				return err
			}
			if va != vb || ve != va {
				return fmt.Errorf("step %d load %v: values diverged (%#x, %#x, %#x)", step, p, va, vb, ve)
			}
		case 1, 2: // Store of a random width
			p := randPtr()
			v := rng.Uint64()
			var fa, fb, fe *mte.Fault
			width := rng.Intn(4)
			useElide := provenSpan(elw, p, 1<<width)
			switch width {
			case 0:
				fa = fast.space.Store8(fast.ctx, p, uint8(v))
				fb = ref.Store8(refW.ctx, p, uint8(v))
				if useElide {
					fe = elw.space.Store8Unguarded(elw.ctx, p, uint8(v))
				} else {
					fe = elw.space.Store8(elw.ctx, p, uint8(v))
				}
			case 1:
				fa = fast.space.Store16(fast.ctx, p, uint16(v))
				fb = ref.Store16(refW.ctx, p, uint16(v))
				if useElide {
					fe = elw.space.Store16Unguarded(elw.ctx, p, uint16(v))
				} else {
					fe = elw.space.Store16(elw.ctx, p, uint16(v))
				}
			case 2:
				fa = fast.space.Store32(fast.ctx, p, uint32(v))
				fb = ref.Store32(refW.ctx, p, uint32(v))
				if useElide {
					fe = elw.space.Store32Unguarded(elw.ctx, p, uint32(v))
				} else {
					fe = elw.space.Store32(elw.ctx, p, uint32(v))
				}
			default:
				fa = fast.space.Store64(fast.ctx, p, v)
				fb = ref.Store64(refW.ctx, p, v)
				if useElide {
					fe = elw.space.Store64Unguarded(elw.ctx, p, v)
				} else {
					fe = elw.space.Store64(elw.ctx, p, v)
				}
			}
			if useElide {
				elided++
			}
			if err := check(step, "store", fa, fb, fe); err != nil {
				return err
			}
		case 3, 4: // CopyOut
			p := randPtr()
			n := randSize()
			da, db, de := buf[:n], make([]byte, n), make([]byte, n)
			fa := fast.space.CopyOut(fast.ctx, p, da)
			fb := ref.CopyOut(refW.ctx, p, db)
			var fe *mte.Fault
			if provenSpan(elw, p, n) {
				fe = elw.space.CopyOutUnguarded(elw.ctx, p, de)
				elided++
			} else {
				fe = elw.space.CopyOut(elw.ctx, p, de)
			}
			if err := check(step, "copyout", fa, fb, fe); err != nil {
				return err
			}
			if fa == nil && (!bytes.Equal(da, db) || !bytes.Equal(de, da)) {
				return fmt.Errorf("step %d copyout %v+%d: data diverged", step, p, n)
			}
		case 5, 6: // CopyIn
			p := randPtr()
			n := randSize()
			src := buf[:n]
			rng.Read(src)
			fa := fast.space.CopyIn(fast.ctx, p, src)
			fb := ref.CopyIn(refW.ctx, p, src)
			var fe *mte.Fault
			if provenSpan(elw, p, n) {
				fe = elw.space.CopyInUnguarded(elw.ctx, p, src)
				elided++
			} else {
				fe = elw.space.CopyIn(elw.ctx, p, src)
			}
			if err := check(step, "copyin", fa, fb, fe); err != nil {
				return err
			}
		case 7, 8: // Move, frequently overlapping
			src := randPtr()
			var dst mte.Ptr
			if rng.Intn(2) == 0 {
				dst = mte.MakePtr(src.Addr()+mte.Addr(rng.Intn(64)), mte.Tag(rng.Intn(16)))
			} else {
				dst = randPtr()
			}
			n := randSize()
			fa := fast.space.Move(fast.ctx, dst, src, n)
			fb := ref.Move(refW.ctx, dst, src, n)
			var fe *mte.Fault
			if provenSpan(elw, src, n) && provenSpan(elw, dst, n) {
				fe = elw.space.MoveUnguarded(elw.ctx, dst, src, n)
				elided++
			} else {
				fe = elw.space.Move(elw.ctx, dst, src, n)
			}
			if err := check(step, "move", fa, fb, fe); err != nil {
				return err
			}
		case 9: // Retag a random granule range in all worlds
			mi := rng.Intn(len(fast.maps))
			ma, mb, mc := fast.maps[mi], refW.maps[mi], elw.maps[mi]
			if !ma.Tagged() {
				continue
			}
			// Same tag-table-transition span shapes as the two-world
			// differential (engine.go case 9): whole pages, page-crossing
			// spans, whole mapping, short partial paints, with a bias
			// toward tag 0 for the zero-dedup path.
			var begin, end mte.Addr
			const tagPage = 16384 // one tag page spans 16 KiB of data
			switch rng.Intn(6) {
			case 0: // whole tag pages, tag-page aligned
				pages := int(ma.Size() / tagPage)
				if pages == 0 {
					pages = 1
				}
				start := mte.Addr(rng.Intn(pages)) * tagPage
				begin = ma.Base() + start
				end = begin + mte.Addr(1+rng.Intn(3))*tagPage
			case 1: // page-crossing span from mid-page
				begin = ma.Base() + mte.Addr(rng.Intn(int(ma.Size())))
				end = begin + mte.Addr(tagPage/2+rng.Intn(3*tagPage))
			case 2: // whole mapping
				begin, end = ma.Base(), ma.End()
			default: // short partial-page paint
				begin = ma.Base() + mte.Addr(rng.Intn(int(ma.Size())))
				end = begin + mte.Addr(rng.Intn(256))
			}
			if end > ma.End() {
				end = ma.End()
			}
			tag := mte.Tag(rng.Intn(16))
			if rng.Intn(4) == 0 {
				tag = 0
			}
			na, errA := ma.SetTagRange(begin, end, tag)
			nb, errB := mb.SetTagRange(begin, end, tag)
			nc, errC := mc.SetTagRange(begin, end, tag)
			if na != nb || na != nc || (errA == nil) != (errB == nil) || (errA == nil) != (errC == nil) {
				return fmt.Errorf("step %d settagrange: diverged", step)
			}
		case 10: // Mid-stream Map: exercises epoch bump + TLB flush
			if len(fast.maps) < 8 {
				if err := mapTriple(fast, refW, elw, fmt.Sprintf("mid-%d", step), 4096,
					mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
					return err
				}
			}
		case 11: // TCO flip on all threads
			suppressed := rng.Intn(2) == 0
			fast.ctx.SetTCO(suppressed)
			refW.ctx.SetTCO(suppressed)
			elw.ctx.SetTCO(suppressed)
		}
	}
	if steps >= 1000 && elided == 0 {
		return fmt.Errorf("elided engine oracle: no step ever took the unguarded path in %d steps", steps)
	}

	// Final sweep: memory bytes and tags must be identical in all worlds.
	for i, ma := range fast.maps {
		mb, mc := refW.maps[i], elw.maps[i]
		ba, errA := ma.Bytes(ma.Base(), int(ma.Size()))
		bb, errB := mb.Bytes(mb.Base(), int(mb.Size()))
		bc, errC := mc.Bytes(mc.Base(), int(mc.Size()))
		if errA != nil || errB != nil || errC != nil {
			return fmt.Errorf("final sweep: Bytes failed (%v, %v, %v)", errA, errB, errC)
		}
		if !bytes.Equal(ba, bb) || !bytes.Equal(bc, ba) {
			return fmt.Errorf("final sweep: mapping %q contents diverged", ma.Name())
		}
		for a := ma.Base(); a < ma.End(); a += mte.GranuleSize {
			if ma.TagAt(a) != mb.TagAt(a) || mc.TagAt(a) != ma.TagAt(a) {
				return fmt.Errorf("final sweep: mapping %q tag at %v diverged", ma.Name(), a)
			}
		}
	}
	return nil
}

// ElidedOutcome extends Outcome with the elided run's proof accounting.
type ElidedOutcome struct {
	Outcome
	// Elision is the compiled proof object bound for the run (nil when the
	// analyzer produced none).
	Elision *analysis.Elision
	// Audit is the interpreter's record of guard-free array accesses.
	Audit *interp.ElisionAudit
	// Invalidations counts runtime proof invalidations (remap, release).
	Invalidations uint64
}

// ExecuteElided runs the program exactly like Execute, but with its compiled
// elision mask bound — the interpreter skips statically discharged guards —
// and an audit sink attached for the proof witness.
func ExecuteElided(p *analysis.Program, seed int64) (*ElidedOutcome, error) {
	res := p.Analyze("")
	v, err := vm.New(vm.Options{
		HeapSize: 8 << 20, NativeHeapSize: 8 << 20,
		MTE: true, CheckMode: mte.TCFSync,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	th, err := v.AttachThread("differential-elided")
	if err != nil {
		return nil, err
	}
	prot, err := core.New(v, core.Config{ExcludeNeighbors: true})
	if err != nil {
		return nil, err
	}
	env := jni.NewEnv(th, prot, true)
	rec := jni.NewRecordingTracer()
	env.SetTracer(rec)

	ip := interp.New(env)
	for name, sum := range p.Natives {
		ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
	}
	out := &ElidedOutcome{Elision: res.Elision, Audit: ip.AuditElision()}
	if res.Elision != nil {
		if err := res.Elision.ValidateBinding(p); err != nil {
			return nil, fmt.Errorf("elision lockstep: proofs failed to rebind to their own program: %w", err)
		}
		ip.BindElision(res.Elision.Mask())
	}
	out.Ret, out.Fault, out.Err = ip.Invoke(p.Method)
	out.Trace = rec.Events()
	out.LiveObjects = v.LiveObjects()
	out.BytesInUse = v.JavaHeap.Stats().BytesInUse
	out.Invalidations = env.ElisionInvalidations()
	return out, nil
}

// ElisionLockstep executes p fully checked and with its elision mask bound,
// demands observably identical outcomes, and re-validates every elided PC's
// proof against the dynamic run. The returned outcome is the elided run's.
func ElisionLockstep(p *analysis.Program, seed int64) (*ElidedOutcome, error) {
	checked, err := Execute(p, seed)
	if err != nil {
		return nil, err
	}
	elided, err := ExecuteElided(p, seed)
	if err != nil {
		return nil, err
	}
	if checked.Ret != elided.Ret {
		return nil, fmt.Errorf("elision lockstep: returns diverged (%d checked, %d elided)\n%s",
			checked.Ret, elided.Ret, interp.Disassemble(p.Method))
	}
	if faultsDiffer(checked.Fault, elided.Fault) {
		return nil, fmt.Errorf("elision lockstep: fault verdicts diverged\nchecked: %+v\n elided: %+v\n%s",
			checked.Fault, elided.Fault, interp.Disassemble(p.Method))
	}
	if errString(checked.Err) != errString(elided.Err) {
		return nil, fmt.Errorf("elision lockstep: managed errors diverged (%q checked, %q elided)",
			errString(checked.Err), errString(elided.Err))
	}
	if checked.LiveObjects != elided.LiveObjects || checked.BytesInUse != elided.BytesInUse {
		return nil, fmt.Errorf("elision lockstep: heap footprints diverged (%d/%d vs %d/%d)",
			checked.LiveObjects, checked.BytesInUse, elided.LiveObjects, elided.BytesInUse)
	}
	if err := WitnessProofs(p, elided); err != nil {
		return nil, err
	}
	return elided, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// WitnessProofs re-validates each elided PC's static verdict against the
// dynamic run: guard-free array accesses must have stayed in bounds (the
// interpreter audit), traced native accesses under an elided call site must
// stay inside the tag-rounded payload the proof recorded, and a proof whose
// site never executed must at least be self-consistent. An error here is a
// proof-compiler bug, not a program bug.
func WitnessProofs(p *analysis.Program, out *ElidedOutcome) error {
	if out.Elision == nil {
		return nil
	}
	if len(out.Audit.Violations) > 0 {
		vio := out.Audit.Violations[0]
		return fmt.Errorf("proof witness: pc %d: elided access index %d escaped length %d",
			vio.PC, vio.Index, vio.Length)
	}
	for pc := range out.Audit.Executed {
		if !out.Elision.Mask().Elided(pc) {
			return fmt.Errorf("proof witness: pc %d executed guard-free without a mask bit", pc)
		}
	}
	for _, pr := range out.Elision.Proofs() {
		switch pr.Op {
		case "aget", "aput":
			if pr.IdxLo < 0 || pr.IdxHi >= pr.LenLo {
				return fmt.Errorf("proof witness: pc %d: index interval [%d,%d] not within [0,%d)",
					pr.PC, pr.IdxLo, pr.IdxHi, pr.LenLo)
			}
		case "callnative":
			if err := witnessCallSite(p, out, pr); err != nil {
				return err
			}
		default:
			return fmt.Errorf("proof witness: pc %d: unknown proof op %q", pr.PC, pr.Op)
		}
	}
	return nil
}

// witnessCallSite checks one elided native call site's proof against the
// recorded trace: the handouts and raw accesses inside every invocation of
// the named native must match the facts the safe verdict assumed.
func witnessCallSite(p *analysis.Program, out *ElidedOutcome, pr analysis.ElisionProof) error {
	sum, ok := p.Natives[pr.Native]
	if !ok {
		return fmt.Errorf("proof witness: pc %d: proof names unknown native %q", pr.PC, pr.Native)
	}
	if sum.Kind == jni.CriticalNative {
		// The proof rests on the trampoline never arming tag checks for
		// @CriticalNative code, not on payload bounds; the kind fact is the
		// whole witness.
		return nil
	}
	// Tag safety extends to the granule-rounded end of the payload the
	// length fact promised — the same safeEnd the static verdict used.
	allowedEnd := int64(mte.Addr(uint64(pr.LenLo) * 4).AlignUp(mte.GranuleSize))
	var begin mte.Addr
	inWindow, haveGet := false, false
	for _, ev := range out.Trace {
		switch ev.Kind {
		case jni.TraceNativeEnter:
			if ev.Iface == pr.Native {
				inWindow, haveGet = true, false
			}
		case jni.TraceNativeExit:
			if ev.Iface == pr.Native {
				inWindow = false
			}
		case jni.TraceGet:
			if inWindow {
				begin, haveGet = ev.Begin, true
			}
		case jni.TraceAccess:
			if !inWindow {
				continue
			}
			if !pr.Touches {
				return fmt.Errorf("proof witness: pc %d: %q proven access-free but traced a %d-byte access",
					pr.PC, pr.Native, ev.Size)
			}
			if !haveGet {
				return fmt.Errorf("proof witness: pc %d: %q accessed memory before any handout", pr.PC, pr.Native)
			}
			off := int64(ev.Ptr.Addr()) - int64(begin)
			if off < 0 || off+int64(ev.Size) > allowedEnd {
				return fmt.Errorf("proof witness: pc %d: %q access at offset %d+%d escapes proven payload [0,%d)",
					pr.PC, pr.Native, off, ev.Size, allowedEnd)
			}
			if off < pr.MinOff || off > pr.MaxOff {
				return fmt.Errorf("proof witness: pc %d: %q access at offset %d outside summary range [%d,%d]",
					pr.PC, pr.Native, off, pr.MinOff, pr.MaxOff)
			}
		}
	}
	return nil
}
