package fuzz

import (
	"math/rand"
	"strings"
	"testing"

	"mte4jni"
	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/mte"
	"mte4jni/internal/redteam"
)

// schemeByName maps the CorpusProgram scheme vocabulary to runtime schemes.
func schemeByName(t *testing.T, name string) mte4jni.Scheme {
	t.Helper()
	switch name {
	case "mte-async":
		return mte4jni.MTEAsync
	case "guarded-copy":
		return mte4jni.GuardedCopy
	}
	t.Fatalf("unknown corpus scheme %q", name)
	return 0
}

// screenWire screens a program through the JSON wire form, the way the
// serving layer does, so the temporal metadata round-trip is part of what is
// tested.
func screenWire(t *testing.T, p *analysis.Program) *analysis.ScreenVerdict {
	t.Helper()
	raw, err := analysis.MarshalProgram(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	wire, err := analysis.ParseProgram(raw)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	return analysis.Screen(wire)
}

// TestTemporalCorpusStatic: every red-team corpus attack program must be
// statically flagged with the matching exposure class, each finding carrying
// the alloc → acquire → interfering-write → late-check provenance chain and
// the abstract event window that justifies it.
func TestTemporalCorpusStatic(t *testing.T) {
	attacks := redteam.Corpus()
	progs := redteam.CorpusPrograms()
	if len(progs) != len(attacks) {
		t.Fatalf("CorpusPrograms()=%d entries, Corpus()=%d", len(progs), len(attacks))
	}
	for i, cp := range progs {
		if cp.Name != attacks[i].Name() || cp.Class != attacks[i].Class() {
			t.Fatalf("entry %d: static corpus %q/%q misaligned with attack %q/%q",
				i, cp.Name, cp.Class, attacks[i].Name(), attacks[i].Class())
		}
		v := screenWire(t, cp.Program)
		if len(v.Temporal) != 1 {
			t.Fatalf("%s: want exactly 1 temporal finding, got %d (%+v)", cp.Name, len(v.Temporal), v.Temporal)
		}
		f := v.Temporal[0]
		if f.Class != cp.WantClass {
			t.Errorf("%s: class %q, want %q (%s)", cp.Name, f.Class, cp.WantClass, f.Reason)
		}
		if f.Reason == "" || f.Native == "" || f.PC < 0 {
			t.Errorf("%s: incomplete finding: %+v", cp.Name, f)
		}
		if len(f.Events) == 0 {
			t.Errorf("%s: finding carries no event window", cp.Name)
		}
		wantKinds := []analysis.ProvKind{analysis.ProvAlloc, analysis.ProvAcquire, analysis.ProvWrite, analysis.ProvCheck}
		if len(f.Chain) != len(wantKinds) {
			t.Fatalf("%s: chain %v, want kinds %v", cp.Name, f.Chain, wantKinds)
		}
		for j, k := range wantKinds {
			if f.Chain[j].Kind != k {
				t.Errorf("%s: chain step %d is %q, want %q", cp.Name, j, f.Chain[j].Kind, k)
			}
		}
		rendered := f.Chain.String()
		for _, want := range []string{"alloc@", "acquire@", "interfering-write@", "late-check@"} {
			if !strings.Contains(rendered, want) {
				t.Errorf("%s: chain %q missing %q", cp.Name, rendered, want)
			}
		}
	}
}

// TestTemporalDynamicMissesAreStaticCatches runs one trial of every corpus
// attack under the scheme its static restatement declares risky, and
// requires (a) dynamic evidence the exposure is real — an undetected
// success, a documented known miss, landed damage, or a report deferred past
// the first probe — and (b) the static flag that catches it at admission.
func TestTemporalDynamicMissesAreStaticCatches(t *testing.T) {
	attacks := redteam.Corpus()
	progs := redteam.CorpusPrograms()
	for i, cp := range progs {
		h, err := redteam.NewHarness(schemeByName(t, cp.Scheme), 1000+int64(i), 0, 0)
		if err != nil {
			t.Fatalf("%s: harness: %v", cp.Name, err)
		}
		tr, err := attacks[i].Run(h)
		h.Close()
		if err != nil {
			t.Fatalf("%s: trial: %v", cp.Name, err)
		}
		exposed := tr.Success || tr.KnownMiss || tr.Landed > 0 || tr.FirstDetect > 1
		if !exposed {
			t.Errorf("%s under %s: no dynamic exposure (trial %+v) — corpus entry is stale", cp.Name, cp.Scheme, tr)
		}
		if cp.WantClass == analysis.WindowClean {
			t.Errorf("%s: dynamically exposed under %s but statically expected clean", cp.Name, cp.Scheme)
		}
	}
}

// TestTemporalGeneratedNoFalseFlags is the zero-false-flag gate over the
// generated corpus. Structurally clean programs must never be flagged; every
// structurally-blind guarded-copy flag (an out-of-bounds read) is falsified
// dynamically — the program must actually slip past guarded copy when run
// under it — and every window-risk flag on a provably-faulting program must
// see its deferred report under async TCF.
func TestTemporalGeneratedNoFalseFlags(t *testing.T) {
	const programs = 250
	var flagged, blind, risky, clean int
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _ := GenProgram(rng)
		sum := p.Natives["native0"]
		v := screenWire(t, p)

		if len(v.Temporal) == 0 {
			clean++
			continue
		}
		flagged++
		// Structurally clean natives must never be flagged: no temporal
		// metadata, no forged/stale pointers, and either no heap access, an
		// unchecked @CriticalNative body, a single-offset write (nothing can
		// interfere with itself), or accesses inside the payload.
		if sum.DamageOps == 0 && !sum.ConcurrentScan && !sum.ManagedRace &&
			!sum.ForgeTag && !sum.UseAfterRelease {
			single := sum.MinOff == sum.MaxOff && sum.Write
			inPayload := sum.MinOff >= 0 && sum.MaxOff < payloadEnd(p)
			if !sum.Touches() || single || inPayload {
				t.Fatalf("seed %d: false flag on structurally clean native %+v: %+v",
					seed, sum, v.Temporal)
			}
		}
		for _, f := range v.Temporal {
			switch f.Class {
			case analysis.WindowGuardedCopyBlindSpot:
				blind++
				if !sum.Write && !sum.ManagedRace {
					// The flag claims guarded copy is structurally blind to
					// this read. Falsify: run it under guarded copy — any
					// detection makes the flag false.
					out, err := ExecuteScheme(p, mte4jni.GuardedCopy, seed)
					if err != nil {
						t.Fatalf("seed %d: guarded-copy run: %v", seed, err)
					}
					if GuardedCopyDetected(out) {
						t.Fatalf("seed %d: flagged blind spot, but guarded copy detected it: %v\n%s",
							seed, out.Err, interp.Disassemble(p.Method))
					}
				}
			case analysis.WindowRisk:
				risky++
				if v.Rejected() {
					// The flag claims damage lands before the deferred
					// report. On a provably-faulting program the native is
					// always reached, so async TCF must surface the latched
					// fault at the trampoline exit.
					out, err := ExecuteScheme(p, mte4jni.MTEAsync, seed)
					if err != nil {
						t.Fatalf("seed %d: async run: %v", seed, err)
					}
					if !out.Faulted() {
						t.Fatalf("seed %d: window-risk flag on provably-faulting program, but async run saw no fault\n%s",
							seed, interp.Disassemble(p.Method))
					}
				}
			}
		}
	}
	t.Logf("generated corpus: clean=%d flagged=%d (blindspot=%d windowrisk=%d)",
		clean, flagged, blind, risky)
	if flagged == 0 || clean == 0 {
		t.Errorf("corpus degenerated: clean=%d flagged=%d", clean, flagged)
	}
}

// payloadEnd returns the tag-rounded payload end of the spine array the
// generated program allocates (the OpConst feeding its OpNewArray).
func payloadEnd(p *analysis.Program) int64 {
	code := p.Method.Code
	for i := 1; i < len(code); i++ {
		if code[i].Op == interp.OpNewArray && code[i-1].Op == interp.OpConst {
			return int64(mte.Addr(uint64(code[i-1].A) * 4).AlignUp(mte.GranuleSize))
		}
	}
	return 0
}
