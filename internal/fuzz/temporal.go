package fuzz

import (
	"strings"

	"mte4jni"
	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
)

// Scheme-parameterized execution for the temporal-screening differential.
// Where Execute pins the deterministic MTE+Sync configuration, ExecuteScheme
// runs a program the way a pooled session would under any protection scheme
// — which is what lets the temporal tests falsify a blind-spot claim: a
// program statically flagged as a guarded-copy blind spot must actually slip
// past guarded copy when run under it.

// ExecuteScheme runs the program under the given protection scheme with
// neighbour exclusion, materialising each NativeSummary into a real native
// body (mirroring pool.Session.RunProgram). The returned error reports
// harness failures only; program-level failures land in the Outcome.
func ExecuteScheme(p *analysis.Program, scheme mte4jni.Scheme, seed int64) (*Outcome, error) {
	rt, err := mte4jni.New(mte4jni.Config{
		Scheme:               scheme,
		HeapSize:             8 << 20,
		Seed:                 seed,
		TagNeighborExclusion: true,
	})
	if err != nil {
		return nil, err
	}
	defer rt.VM().Close()
	env, err := rt.AttachEnv("temporal-differential")
	if err != nil {
		return nil, err
	}
	defer rt.DetachEnv(env)

	ip := interp.New(env)
	for name, sum := range p.Natives {
		ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
	}
	out := &Outcome{}
	out.Ret, out.Fault, out.Err = ip.Invoke(p.Method)
	out.LiveObjects = rt.VM().LiveObjects()
	return out, nil
}

// GuardedCopyDetected reports whether a guarded-copy run detected anything:
// an MTE-style fault (never raised by guarded copy itself) or a release-time
// red-zone violation, which the interpreter surfaces as a managed throw
// carrying the checker's corruption message.
func GuardedCopyDetected(out *Outcome) bool {
	if out.Fault != nil {
		return true
	}
	return out.Err != nil && strings.Contains(out.Err.Error(), "memory corruption at offset")
}
