// Package fuzz implements a differential fuzzer for the protection
// schemes: it generates random but replayable sequences of JNI operations
// and raw-pointer accesses, runs them under a scheme, and checks every
// outcome against an architectural oracle.
//
// The oracle encodes what each scheme *must* and *must never* do:
//
//   - No scheme may ever report a fault for an in-bounds access, and
//     in-bounds writes must be visible to managed code afterwards
//     (immediately for in-place schemes, after release for guarded copy).
//   - MTE4JNI in sync mode must fault on any access that touches a granule
//     outside the object's tag-rounded payload (adjacent-object collisions
//     are eliminated by running the protector with neighbour exclusion, so
//     the oracle is deterministic).
//   - Accesses inside the payload's granule rounding but outside the
//     payload itself are architectural false negatives (§4.1): the oracle
//     requires them NOT to fault.
//   - Guarded copy must report a violation at release exactly when some
//     earlier OOB write landed inside a red zone, and can never detect
//     reads.
//   - No protection must never detect anything.
//
// Any divergence is returned as a Mismatch with the seed and step to
// replay.
package fuzz

import (
	"errors"
	"fmt"
	"math/rand"

	"mte4jni/internal/core"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// SchemeID selects the scheme under test.
type SchemeID int

const (
	// SchemeNone is the no-protection baseline.
	SchemeNone SchemeID = iota
	// SchemeGuarded is guarded copy.
	SchemeGuarded
	// SchemeMTESync is MTE4JNI in synchronous mode (with neighbour
	// exclusion, for a deterministic oracle).
	SchemeMTESync
)

// String names the scheme.
func (s SchemeID) String() string {
	switch s {
	case SchemeNone:
		return "no-protection"
	case SchemeGuarded:
		return "guarded-copy"
	case SchemeMTESync:
		return "mte4jni-sync"
	default:
		return fmt.Sprintf("SchemeID(%d)", int(s))
	}
}

// Schemes lists all fuzzable schemes.
func Schemes() []SchemeID { return []SchemeID{SchemeNone, SchemeGuarded, SchemeMTESync} }

// opKind enumerates generated operations.
type opKind int

const (
	opAlloc opKind = iota
	opGet
	opRelease
	opInRead
	opInWrite
	opOOBRead
	opOOBWrite
	opGC
	numOps
)

// Mismatch describes one oracle violation.
type Mismatch struct {
	// Seed and Step identify the failing operation for replay.
	Seed int64
	Step int
	// Scheme is the scheme under test.
	Scheme SchemeID
	// What happened vs what the oracle required.
	Got, Want string
}

// Error implements the error interface.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("fuzz: seed %d step %d under %s: got %s, want %s",
		m.Seed, m.Step, m.Scheme, m.Got, m.Want)
}

// Report summarizes one fuzzing run.
type Report struct {
	// Steps is the number of operations executed.
	Steps int
	// Allocs, Gets, Releases, InBounds, OOBs count operation kinds.
	Allocs, Gets, Releases, InBounds, OOBs int
	// FaultsObserved counts scheme detections (sync faults + guarded
	// violations).
	FaultsObserved int
}

// hold is one outstanding acquisition.
type hold struct {
	arr *vm.Object
	ptr mte.Ptr
	// zoneWrites tracks the LAST value written at each payload-relative
	// offset inside the guarded-copy red zones. Corruption must be judged
	// against the final zone contents, not write events: a later write can
	// restore the canary byte and erase earlier damage — a canary-scheme
	// blind spot this fuzzer itself surfaced (twice).
	zoneWrites map[int64]byte
	// pendingWrites maps payload offsets to values written through the raw
	// pointer but (under guarded copy) not yet copied back.
	pendingWrites map[int]byte
}

// corrupted reports whether the hold's red zones differ from the canary.
func (h *hold) corrupted() bool {
	for off, val := range h.zoneWrites {
		var idx int
		if off < 0 {
			idx = int(off) + guardedcopy.RedZoneSize
		} else {
			idx = int(off) - h.arr.Len()
		}
		if val != guardedcopy.CanaryAt(idx) {
			return true
		}
	}
	return false
}

// runner executes one fuzz sequence.
type runner struct {
	seed   int64
	scheme SchemeID
	rng    *rand.Rand
	vm     *vm.VM
	env    *jni.Env

	arrays []*vm.Object
	shadow map[*vm.Object][]byte
	holds  []*hold
	rep    Report
}

// Run executes steps random operations under scheme, validating against the
// oracle. It returns the run report and the first mismatch, if any.
func Run(seed int64, steps int, scheme SchemeID) (Report, error) {
	v, err := vm.New(vm.Options{
		HeapSize: 32 << 20, NativeHeapSize: 32 << 20,
		MTE:       scheme == SchemeMTESync,
		CheckMode: checkModeFor(scheme),
		Seed:      seed ^ 0x5EED,
	})
	if err != nil {
		return Report{}, err
	}
	th, err := v.AttachThread("fuzzer")
	if err != nil {
		return Report{}, err
	}
	var checker jni.Checker
	switch scheme {
	case SchemeNone:
		checker = jni.DirectChecker{}
	case SchemeGuarded:
		checker = guardedcopy.New(v)
	case SchemeMTESync:
		p, err := core.New(v, core.Config{ExcludeNeighbors: true})
		if err != nil {
			return Report{}, err
		}
		checker = p
	}
	r := &runner{
		seed:   seed,
		scheme: scheme,
		rng:    rand.New(rand.NewSource(seed)),
		vm:     v,
		env:    jni.NewEnv(th, checker, true),
		shadow: make(map[*vm.Object][]byte),
	}
	for i := 0; i < steps; i++ {
		if err := r.step(i); err != nil {
			return r.rep, err
		}
	}
	// Drain outstanding holds so release-time checks all run.
	for len(r.holds) > 0 {
		if err := r.release(steps, len(r.holds)-1); err != nil {
			return r.rep, err
		}
		r.rep.Steps++
	}
	// Teardown invariant check on the tag lifecycle.
	if p, ok := checker.(*core.Protector); ok {
		if err := p.VerifyIntegrity(); err != nil {
			return r.rep, r.mismatch(steps, err.Error(), "protector integrity at teardown")
		}
	}
	return r.rep, nil
}

func checkModeFor(s SchemeID) mte.CheckMode {
	if s == SchemeMTESync {
		return mte.TCFSync
	}
	return mte.TCFNone
}

// mismatch builds a Mismatch error for the current step.
func (r *runner) mismatch(step int, got, want string) error {
	return &Mismatch{Seed: r.seed, Step: step, Scheme: r.scheme, Got: got, Want: want}
}

// step executes one random operation.
func (r *runner) step(i int) error {
	r.rep.Steps++
	switch op := opKind(r.rng.Intn(int(numOps))); op {
	case opAlloc:
		return r.alloc(i)
	case opGet:
		return r.get(i)
	case opRelease:
		if len(r.holds) == 0 {
			return r.alloc(i)
		}
		return r.release(i, r.rng.Intn(len(r.holds)))
	case opInRead, opInWrite:
		if len(r.holds) == 0 {
			return r.get(i)
		}
		return r.accessInBounds(i, op == opInWrite)
	case opOOBRead, opOOBWrite:
		if len(r.holds) == 0 {
			return r.get(i)
		}
		return r.accessOOB(i, op == opOOBWrite)
	case opGC:
		r.vm.GC()
		return nil
	default:
		return nil
	}
}

// alloc creates a byte array with random contents and a shadow copy.
func (r *runner) alloc(i int) error {
	if len(r.arrays) >= 32 {
		return nil
	}
	n := r.rng.Intn(64) + 1
	arr, err := r.vm.NewArray(vm.KindByte, n)
	if err != nil {
		return err
	}
	r.env.Thread().AddLocalRef(arr)
	sh := make([]byte, n)
	for j := range sh {
		sh[j] = byte(r.rng.Intn(256))
		if err := arr.SetElem(j, uint64(sh[j])); err != nil {
			return err
		}
	}
	r.arrays = append(r.arrays, arr)
	r.shadow[arr] = sh
	r.rep.Allocs++
	return nil
}

// get acquires a random array. Under guarded copy each array is held at
// most once at a time: concurrent holds own independent copies whose
// write-backs clobber each other, which is real (and documented) JNI
// behaviour but makes a byte-exact oracle ill-defined.
func (r *runner) get(i int) error {
	if len(r.arrays) == 0 {
		return r.alloc(i)
	}
	arr := r.arrays[r.rng.Intn(len(r.arrays))]
	if r.scheme == SchemeGuarded {
		for _, h := range r.holds {
			if h.arr == arr {
				return nil
			}
		}
	}
	var ptr mte.Ptr
	fault, err := r.env.CallNative("fuzz_get", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		ptr = p
		return nil
	})
	if err != nil {
		return err
	}
	if fault != nil {
		return r.mismatch(i, "fault during Get: "+fault.Error(), "no fault")
	}
	r.holds = append(r.holds, &hold{arr: arr, ptr: ptr, zoneWrites: make(map[int64]byte), pendingWrites: make(map[int]byte)})
	r.rep.Gets++
	return nil
}

// release releases the hold at index hi, validating guarded-copy semantics.
func (r *runner) release(i, hi int) error {
	h := r.holds[hi]
	r.holds = append(r.holds[:hi], r.holds[hi+1:]...)
	var relErr error
	fault, err := r.env.CallNative("fuzz_release", jni.Regular, func(e *jni.Env) error {
		relErr = e.ReleasePrimitiveArrayCritical(h.arr, h.ptr, jni.ReleaseDefault)
		return nil
	})
	if err != nil {
		return err
	}
	if fault != nil {
		return r.mismatch(i, "hardware fault during Release: "+fault.Error(), "no fault")
	}
	r.rep.Releases++

	if h.corrupted() {
		var viol *guardedcopy.Violation
		if !errors.As(relErr, &viol) {
			return r.mismatch(i, fmt.Sprintf("release returned %v", relErr),
				"guarded-copy violation for corrupted red zone")
		}
		r.rep.FaultsObserved++
		// The copy-back was suppressed; the shadow keeps its old values.
		return nil
	}
	if relErr != nil {
		return r.mismatch(i, "unexpected release error: "+relErr.Error(), "clean release")
	}
	// Clean release: pending writes are committed (they were already live
	// for in-place schemes; guarded copy's copy-back commits them now —
	// the generator holds each array at most once under guarded copy, see
	// get(), so copy-backs never clobber each other).
	if r.scheme == SchemeGuarded {
		sh := r.shadow[h.arr]
		for off, val := range h.pendingWrites {
			sh[off] = val
		}
	}
	return r.verifyShadow(i, h.arr)
}

// verifyShadow compares managed-visible array contents with the shadow.
func (r *runner) verifyShadow(i int, arr *vm.Object) error {
	sh := r.shadow[arr]
	for j := range sh {
		bits, err := arr.GetElem(j)
		if err != nil {
			return err
		}
		if byte(bits) != sh[j] {
			return r.mismatch(i,
				fmt.Sprintf("%s[%d] = %#x", arr, j, byte(bits)),
				fmt.Sprintf("%#x (shadow)", sh[j]))
		}
	}
	return nil
}

// accessInBounds performs a 1-byte access at a random in-payload offset.
// The oracle: never a fault; writes become visible per scheme semantics.
func (r *runner) accessInBounds(i int, write bool) error {
	h := r.holds[r.rng.Intn(len(r.holds))]
	off := r.rng.Intn(h.arr.Len())
	val := byte(r.rng.Intn(256))
	var got byte
	fault, err := r.env.CallNative("fuzz_access", jni.Regular, func(e *jni.Env) error {
		p := h.ptr.Add(int64(off))
		if write {
			e.StoreByte(p, val)
		} else {
			got = e.LoadByte(p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if fault != nil {
		return r.mismatch(i, "fault on in-bounds access: "+fault.Error(), "no fault (false positive)")
	}
	r.rep.InBounds++
	sh := r.shadow[h.arr]
	if write {
		if r.scheme == SchemeGuarded {
			h.pendingWrites[off] = val
		} else {
			sh[off] = val
			return r.verifyShadow(i, h.arr)
		}
		return nil
	}
	// Reads must observe the scheme-visible value.
	want := sh[off]
	if r.scheme == SchemeGuarded {
		if v, ok := h.pendingWrites[off]; ok {
			want = v
		}
	}
	if got != want {
		return r.mismatch(i, fmt.Sprintf("read %#x at offset %d", got, off),
			fmt.Sprintf("%#x", want))
	}
	return nil
}

// accessOOB performs a 1-byte access at a random out-of-payload offset in
// (-2 granules, +2 granules] around the payload and checks the scheme's
// verdict against the oracle.
func (r *runner) accessOOB(i int, write bool) error {
	h := r.holds[r.rng.Intn(len(r.holds))]
	begin, end := h.arr.DataBegin(), h.arr.DataEnd()
	// Pick an OOB delta: past the end (positive, up to 32 bytes) or before
	// the begin (negative, up to 16 bytes — stays inside the header).
	var addr mte.Addr
	if r.rng.Intn(4) > 0 {
		addr = end + mte.Addr(r.rng.Intn(32))
	} else {
		addr = begin - mte.Addr(r.rng.Intn(16)+1)
	}
	off := int64(addr) - int64(begin)
	val := byte(r.rng.Intn(256))

	fault, err := r.env.CallNative("fuzz_oob", jni.Regular, func(e *jni.Env) error {
		p := h.ptr.Add(off)
		if write {
			e.StoreByte(p, val)
		} else {
			_ = e.LoadByte(p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	r.rep.OOBs++

	switch r.scheme {
	case SchemeMTESync:
		// Oracle: fault iff the access leaves the tag-rounded payload.
		gb, ge := mte.GranuleRange(begin, end)
		outside := addr < gb || addr >= ge
		if outside && fault == nil {
			return r.mismatch(i, "no fault", fmt.Sprintf("tag-check fault for access at %v outside [%v,%v)", addr, gb, ge))
		}
		if !outside && fault != nil {
			return r.mismatch(i, "fault: "+fault.Error(),
				"no fault (within-granule access, architectural false negative)")
		}
		if fault != nil {
			r.rep.FaultsObserved++
			if fault.Kind != mte.FaultTagMismatch {
				return r.mismatch(i, fault.Kind.String(), "SEGV_MTESERR")
			}
			// The faulting store was suppressed; nothing to track.
		} else if write && !outside {
			// Within-granule OOB write really lands: it hits padding between
			// payload end and granule end, which no object owns (the heap
			// rounds blocks to 16), so the shadow is unaffected.
			if addr < begin || addr >= end {
				// padding only — nothing to do
				_ = addr
			}
		}
	case SchemeGuarded:
		if fault != nil {
			return r.mismatch(i, "hardware fault: "+fault.Error(), "guarded copy never faults at access time")
		}
		// Writes into the red zones must be reported at release iff the
		// FINAL zone contents differ from the canary; reads never. Two
		// blind spots the fuzzer itself surfaced have to be modelled: a
		// write whose value equals the canary byte is invisible, and a
		// later write can restore a byte an earlier write corrupted.
		if write {
			inRear := off >= int64(h.arr.Len()) && off < int64(h.arr.Len()+guardedcopy.RedZoneSize)
			inFront := off < 0 && off >= -guardedcopy.RedZoneSize
			if inRear || inFront {
				h.zoneWrites[off] = val
			}
		}
	case SchemeNone:
		// The access lands somewhere in the heap mapping: no detection, but
		// also no crash (the region around small test objects is mapped).
		if fault != nil && fault.Kind == mte.FaultTagMismatch {
			return r.mismatch(i, "tag fault: "+fault.Error(), "no protection cannot tag-fault")
		}
		if write && fault == nil {
			// The write really corrupted memory: if it landed inside another
			// array's payload, mirror the damage in that array's shadow —
			// silent corruption is exactly what "no protection" means.
			for _, victim := range r.arrays {
				if addr >= victim.DataBegin() && addr < victim.DataEnd() {
					r.shadow[victim][int(addr-victim.DataBegin())] = val
				}
			}
		}
	}
	return nil
}
