package fuzz

import (
	"math/rand"
	"testing"

	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
)

// spine builds the canonical differential program: allocate an int array of
// arrLen, hand it to a native with the given summary, return 7.
func spine(arrLen int64, sum analysis.NativeSummary) *analysis.Program {
	return &analysis.Program{
		Method: &interp.Method{
			Name: "spine",
			Code: []interp.Inst{
				{Op: interp.OpConst, A: arrLen},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 7},
				{Op: interp.OpReturn},
			},
			MaxLocals: 1, MaxRefs: 1,
			NativeNames: []string{"native0"},
		},
		Natives: map[string]analysis.NativeSummary{"native0": sum},
	}
}

// hasRule reports whether any diagnostic carries the rule.
func hasRule(diags []analysis.Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// TestDifferentialKnownBad: programs the analyzer must prove faulting, and
// that must then actually fault. len=8 ints ⇒ payload 32 bytes ⇒ tag-rounded
// end 32.
func TestDifferentialKnownBad(t *testing.T) {
	cases := []struct {
		name string
		sum  analysis.NativeSummary
	}{
		{"oob-write-past-end", analysis.NativeSummary{MinOff: 0, MaxOff: 32, Write: true}},
		{"oob-read-before-begin", analysis.NativeSummary{MinOff: -1, MaxOff: 3}},
		{"use-after-release", analysis.NativeSummary{MinOff: 0, MaxOff: 0, Write: true, UseAfterRelease: true}},
		{"forged-tag", analysis.NativeSummary{MinOff: 0, MaxOff: 15, ForgeTag: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := spine(8, tc.sum)
			dr, err := Differential(p, 42)
			if err != nil {
				t.Fatalf("differential: %v", err)
			}
			if dr.Result.Verdict != analysis.VerdictFault {
				t.Errorf("verdict = %v, want %v\ndiags: %v",
					dr.Result.Verdict, analysis.VerdictFault, dr.Result.Diags)
			}
			if !dr.Outcome.Faulted() {
				t.Errorf("program did not fault dynamically")
			}
			if !hasRule(dr.Result.Diags, analysis.RuleNativeFault) {
				t.Errorf("missing %s diagnostic: %v", analysis.RuleNativeFault, dr.Result.Diags)
			}
		})
	}
}

// TestDifferentialKnownGood: programs the analyzer must prove safe, and that
// must then run without a fault.
func TestDifferentialKnownGood(t *testing.T) {
	cases := []struct {
		name string
		prog *analysis.Program
	}{
		{"in-payload-write", spine(8, analysis.NativeSummary{MinOff: 0, MaxOff: 31, Write: true})},
		{"no-heap-access", spine(8, analysis.NativeSummary{MinOff: 1, MaxOff: 0})},
		{"padding-read", spine(7, analysis.NativeSummary{MinOff: 28, MaxOff: 31})}, // 28 bytes payload, granule pads to 32
		{"no-native-at-all", &analysis.Program{
			Method: &interp.Method{
				Name: "pure",
				Code: []interp.Inst{
					{Op: interp.OpConst, A: 5},
					{Op: interp.OpConst, A: 2},
					{Op: interp.OpMul},
					{Op: interp.OpReturn},
				},
				MaxLocals: 1,
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dr, err := Differential(tc.prog, 42)
			if err != nil {
				t.Fatalf("differential: %v", err)
			}
			if dr.Result.Verdict != analysis.VerdictSafe {
				t.Errorf("verdict = %v, want %v\ndiags: %v",
					dr.Result.Verdict, analysis.VerdictSafe, dr.Result.Diags)
			}
			if dr.Outcome.Faulted() {
				t.Errorf("provably-safe program faulted: %v", dr.Outcome.Fault)
			}
		})
	}
}

// TestDifferentialCriticalNative: @CriticalNative access is never checked —
// the analyzer must call the in-payload case safe but flag the unchecked
// heap access, and the run must not fault.
func TestDifferentialCriticalNative(t *testing.T) {
	p := spine(8, analysis.NativeSummary{Kind: jni.CriticalNative, MinOff: 0, MaxOff: 31, Write: true})
	dr, err := Differential(p, 42)
	if err != nil {
		t.Fatalf("differential: %v", err)
	}
	if dr.Result.Verdict != analysis.VerdictSafe {
		t.Errorf("verdict = %v, want %v", dr.Result.Verdict, analysis.VerdictSafe)
	}
	if !hasRule(dr.Result.Diags, analysis.RuleCriticalHeap) {
		t.Errorf("missing %s diagnostic: %v", analysis.RuleCriticalHeap, dr.Result.Diags)
	}
	if dr.Outcome.Faulted() {
		t.Errorf("@CriticalNative access faulted: %v", dr.Outcome.Fault)
	}
}

// TestDifferentialGenerated is the oracle at scale: hundreds of generated
// programs, zero tolerated disagreements between the static verdict and the
// dynamic outcome.
func TestDifferentialGenerated(t *testing.T) {
	const programs = 250
	var safeSeen, faultSeen, unknownSeen, faults int
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, res := GenProgram(rng)
		dr, err := Differential(p, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch res.Verdict {
		case analysis.VerdictSafe:
			safeSeen++
		case analysis.VerdictFault:
			faultSeen++
		default:
			unknownSeen++
		}
		if dr.Outcome.Faulted() {
			faults++
		}
	}
	t.Logf("verdicts over %d programs: safe=%d fault=%d unknown=%d; dynamic faults=%d",
		programs, safeSeen, faultSeen, unknownSeen, faults)
	// The generator must exercise both provable directions, or the oracle
	// proves nothing.
	if safeSeen == 0 || faultSeen == 0 {
		t.Errorf("generator degenerated: safe=%d fault=%d", safeSeen, faultSeen)
	}
}

// TestExecuteTraceFeedsLint closes the loop between the dynamic trace and
// the offline JNI lint: illicit natives must leave lintable evidence in the
// recorded event stream.
func TestExecuteTraceFeedsLint(t *testing.T) {
	cases := []struct {
		name string
		sum  analysis.NativeSummary
		rule string
	}{
		{"use-after-release", analysis.NativeSummary{MinOff: 0, MaxOff: 0, Write: true, UseAfterRelease: true}, analysis.RuleUseAfterRelease},
		{"oob-escape", analysis.NativeSummary{MinOff: 0, MaxOff: 40, Write: true}, analysis.RuleOOBEscape},
		{"forged-tag", analysis.NativeSummary{MinOff: 0, MaxOff: 15, ForgeTag: true}, analysis.RuleForgedTag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := Execute(spine(8, tc.sum), 42)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			diags := analysis.LintTrace(out.Trace)
			if !hasRule(diags, tc.rule) {
				t.Errorf("lint missed %s; got %v", tc.rule, diags)
			}
		})
	}
	// And a clean run must lint clean.
	out, err := Execute(spine(8, analysis.NativeSummary{MinOff: 0, MaxOff: 31, Write: true}), 42)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if diags := analysis.LintTrace(out.Trace); len(diags) != 0 {
		t.Errorf("clean run linted dirty: %v", diags)
	}
}
