package fuzz

import (
	"testing"

	"mte4jni/internal/mte"
)

// TestEngineDifferential drives the fast and reference access engines over
// randomized streams in both check modes. Zero disagreements is the
// acceptance bar: the reference engine is the specification of the fast one.
func TestEngineDifferential(t *testing.T) {
	steps := 2000
	seeds := 8
	if testing.Short() {
		steps, seeds = 500, 2
	}
	for _, mode := range []mte.CheckMode{mte.TCFSync, mte.TCFAsync} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				if err := DifferentialEngines(int64(1000+seed), steps, mode); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestEngineDifferentialCheckingOff covers the TCF-none configuration, where
// both engines must behave as plain memory with only unmapped/protection
// faults.
func TestEngineDifferentialCheckingOff(t *testing.T) {
	if err := DifferentialEngines(42, 1000, mte.TCFNone); err != nil {
		t.Fatal(err)
	}
}
