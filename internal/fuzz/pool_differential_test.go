package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mte4jni"
	"mte4jni/internal/pool"
)

// TestPoolDifferential pushes the same generated programs through two
// execution paths — a dedicated single-use VM (Execute, the oracle's direct
// path) and a warm serving-pool session — and requires them to agree on
// everything observable: fault verdict and fault detail, return value,
// managed-exception behaviour, and the Java heap state the run leaves
// behind. Divergence means pooled reuse is not transparent: a recycled
// session leaked state into the next program, or quarantine let a tainted
// runtime serve again. The oracle must hold at any shard count — routing,
// overflow stealing and per-shard free lists may move a lease between
// shards but never change what a program observes — so the corpus runs at
// shards 1 (the monolithic layout) and 4 (every session on its own shard).
func TestPoolDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testPoolDifferential(t, shards)
		})
	}
}

func testPoolDifferential(t *testing.T, shards int) {
	const programs = 48
	p := pool.New(pool.Config{MaxSessions: 2 * shards, Shards: shards, HeapSize: 8 << 20})
	defer p.Close()

	rng := rand.New(rand.NewSource(0xC0FFEE))
	ctx := context.Background()
	faulted := 0
	for i := 0; i < programs; i++ {
		prog, _ := GenProgram(rng)

		direct, err := Execute(prog, int64(i)+1)
		if err != nil {
			t.Fatalf("program %d: direct execute: %v", i, err)
		}

		s, err := p.Acquire(ctx, mte4jni.MTESync)
		if err != nil {
			t.Fatalf("program %d: acquire: %v", i, err)
		}
		res := s.RunProgram(nil, prog)
		live := s.Runtime().VM().LiveObjects()
		bytes := s.Runtime().VM().JavaHeap.Stats().BytesInUse

		// Fault verdicts must agree. Tag values are excluded from the
		// comparison: a warm session's tag RNG has advanced across previous
		// leases, so the concrete tags differ by design; the *decision* to
		// fault (and where, and how) may not.
		if direct.Faulted() != res.Faulted() {
			t.Fatalf("program %d: direct faulted=%v pool faulted=%v\nfault(direct)=%v fault(pool)=%v",
				i, direct.Faulted(), res.Faulted(), direct.Fault, res.Fault)
		}
		if direct.Faulted() {
			faulted++
			// Access, size and faulting frame are placement-independent and
			// must match exactly. Fault kind is not compared: an OOB access
			// below the first object of a fresh heap is SEGV_MAPERR (below
			// the mapping), while the same program on a warm session — whose
			// bump cursor has advanced across earlier leases — hits in-range
			// memory with a mismatching tag, SEGV_MTESERR. Both are the same
			// protection decision.
			df, pf := direct.Fault, res.Fault
			if df.Access != pf.Access || df.Size != pf.Size || df.PC != pf.PC {
				t.Fatalf("program %d: fault detail diverged:\ndirect: kind=%v access=%v size=%d pc=%s\npool:   kind=%v access=%v size=%d pc=%s",
					i, df.Kind, df.Access, df.Size, df.PC, pf.Kind, pf.Access, pf.Size, pf.PC)
			}
		} else {
			if (direct.Err != nil) != (res.Err != nil) {
				t.Fatalf("program %d: direct err=%v pool err=%v", i, direct.Err, res.Err)
			}
			if direct.Err != nil && direct.Err.Error() != res.Err.Error() {
				t.Fatalf("program %d: error text diverged:\ndirect: %v\npool:   %v", i, direct.Err, res.Err)
			}
			if direct.Err == nil && direct.Ret != res.Ret {
				t.Fatalf("program %d: ret diverged: direct=%d pool=%d", i, direct.Ret, res.Ret)
			}
		}

		// Identical final heap state: the pooled session (recycled to an
		// empty heap between leases) must end the run with exactly the
		// dedicated VM's allocation footprint.
		if live != direct.LiveObjects || bytes != direct.BytesInUse {
			t.Fatalf("program %d: heap state diverged: direct live=%d bytes=%d, pool live=%d bytes=%d",
				i, direct.LiveObjects, direct.BytesInUse, live, bytes)
		}

		p.Release(s)
	}

	// The generator's fault classes must actually exercise the quarantine
	// path; an all-clean corpus would make this test vacuous.
	if faulted == 0 {
		t.Fatal("no generated program faulted; corpus does not cover quarantine")
	}
	if st := p.Stats(); st.Quarantined != uint64(faulted) {
		t.Fatalf("quarantined=%d, want one per faulted program (%d)", st.Quarantined, faulted)
	}
}
