package fuzz

import (
	"fmt"
	"math/rand"

	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
)

// Whole-program generation for the static/dynamic differential oracle. Where
// fuzz.go generates flat JNI operation sequences, this generator emits
// bytecode programs (interp.Method) paired with behavioural native
// summaries, so the same artifact can be analyzed by internal/analysis and
// executed under a real protection scheme.
//
// Every candidate is pushed through interp.Validate and the abstract
// interpreter at construction time: a generator bug that emits malformed
// bytecode is a panic here, not a mystery downstream.

// GenProgram builds one random, always-valid program and returns it together
// with its static analysis. The program allocates an int array, runs it
// through a generated native, and returns; random stack-neutral snippets,
// managed array accesses and branches are woven around that spine.
func GenProgram(rng *rand.Rand) (*analysis.Program, *analysis.MethodResult) {
	p := genCandidate(rng)
	if err := interp.Validate(p.Method); err != nil {
		// The generator's contract is to emit only valid bytecode.
		panic(fmt.Sprintf("fuzz: generated invalid bytecode: %v\n%s",
			err, interp.Disassemble(p.Method)))
	}
	return p, p.Analyze("")
}

const genMaxLocals = 4

func genCandidate(rng *rand.Rand) *analysis.Program {
	arrLen := rng.Intn(24) + 1
	sum := genSummary(rng, arrLen)
	var code []interp.Inst

	// Random stack-neutral arithmetic prelude.
	for i, n := 0, rng.Intn(4); i < n; i++ {
		code = append(code, genSnippet(rng)...)
	}

	// The spine: allocate the array the native will receive.
	code = append(code,
		interp.Inst{Op: interp.OpConst, A: int64(arrLen)},
		interp.Inst{Op: interp.OpNewArray, A: 0})

	// Sometimes a managed array access — possibly out of bounds, in which
	// case the JVM's own check throws before any native ever runs.
	if rng.Intn(3) == 0 {
		idx := rng.Intn(arrLen + 4)
		code = append(code,
			interp.Inst{Op: interp.OpConst, A: int64(idx)},
			interp.Inst{Op: interp.OpArrayGet, A: 0},
			interp.Inst{Op: interp.OpStore, A: 0})
	}

	// Sometimes a constant-condition branch over junk, exercising the
	// reachability analysis on both outcomes.
	if rng.Intn(3) == 0 {
		junk := genSnippet(rng)
		target := len(code) + 2 + len(junk)
		code = append(code,
			interp.Inst{Op: interp.OpConst, A: int64(rng.Intn(2))},
			interp.Inst{Op: interp.OpJmpIfZero, A: int64(target)})
		code = append(code, junk...)
	}

	code = append(code,
		interp.Inst{Op: interp.OpCallNative, A: 0, B: 0},
		interp.Inst{Op: interp.OpConst, A: 7},
		interp.Inst{Op: interp.OpReturn})

	return &analysis.Program{
		Method: &interp.Method{
			Name: "fuzzgen", Code: code,
			MaxLocals: genMaxLocals, MaxRefs: 2,
			NativeNames: []string{"native0"},
		},
		Natives: map[string]analysis.NativeSummary{"native0": sum},
	}
}

// genSnippet returns a stack-neutral instruction burst.
func genSnippet(rng *rand.Rand) []interp.Inst {
	l := func() int64 { return int64(rng.Intn(genMaxLocals)) }
	k := func() int64 { return int64(rng.Intn(100) - 50) }
	switch rng.Intn(4) {
	case 0:
		return []interp.Inst{
			{Op: interp.OpConst, A: k()},
			{Op: interp.OpStore, A: l()},
		}
	case 1:
		return []interp.Inst{
			{Op: interp.OpLoad, A: l()},
			{Op: interp.OpLoad, A: l()},
			{Op: interp.OpAdd},
			{Op: interp.OpStore, A: l()},
		}
	case 2:
		return []interp.Inst{
			{Op: interp.OpConst, A: k()},
			{Op: interp.OpConst, A: k()},
			{Op: interp.OpMul},
			{Op: interp.OpStore, A: l()},
		}
	default:
		return []interp.Inst{
			{Op: interp.OpLoad, A: l()},
			{Op: interp.OpConst, A: int64(rng.Intn(9) + 1)}, // nonzero divisor
			{Op: interp.OpDiv},
			{Op: interp.OpStore, A: l()},
		}
	}
}

// genSummary draws a native behaviour class and concrete offsets for an
// array of arrLen elements. The classes cover both verdict directions: safe
// in-payload accesses, deterministic OOB on either side within the
// neighbour-exclusion window, use-after-release, tag forgery, and
// @CriticalNative (unchecked) access.
func genSummary(rng *rand.Rand, arrLen int) analysis.NativeSummary {
	se := int64(mte.Addr(uint64(arrLen) * 4).AlignUp(mte.GranuleSize))
	window := int64(2 * mte.GranuleSize)
	var s analysis.NativeSummary
	s.Write = rng.Intn(2) == 0
	switch rng.Intn(7) {
	case 0: // no heap access at all
		s.MinOff, s.MaxOff = 1, 0
	case 1: // in-payload, safe (occasionally racing a managed mutator)
		a, b := rng.Int63n(se), rng.Int63n(se)
		s.MinOff, s.MaxOff = min64(a, b), max64(a, b)
		if s.Write && rng.Intn(8) == 0 {
			s.ManagedRace = true
		}
	case 2: // past the end, inside the deterministic window
		s.MaxOff = se + rng.Int63n(window)
		s.MinOff = rng.Int63n(s.MaxOff + 1)
	case 3: // before the begin (header granule / left neighbour)
		s.MinOff = -(rng.Int63n(window) + 1)
		s.MaxOff = rng.Int63n(se)
	case 4: // use-after-release through the stale pointer
		s.UseAfterRelease = true
		s.MinOff = rng.Int63n(se+window) - window
		s.MaxOff = s.MinOff + rng.Int63n(se+window-s.MinOff)
		if rng.Intn(2) == 0 {
			s.DamageOps = rng.Intn(8) + 1
		}
	case 5: // forged tag bits, in-payload
		s.ForgeTag = true
		a, b := rng.Int63n(se), rng.Int63n(se)
		s.MinOff, s.MaxOff = min64(a, b), max64(a, b)
		if rng.Intn(2) == 0 {
			s.DamageOps = rng.Intn(8) + 1
		}
		if rng.Intn(4) == 0 {
			s.ConcurrentScan = true
		}
	default: // @CriticalNative touching the payload unchecked
		s.Kind = jni.CriticalNative
		a, b := rng.Int63n(se), rng.Int63n(se)
		s.MinOff, s.MaxOff = min64(a, b), max64(a, b)
	}
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
