package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"

	"mte4jni/internal/cpu"
	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// The engine differential oracle. The fast-path access engine (per-thread
// TLB, SWAR tag compare, outlined fault path) and the pre-optimization
// reference engine (linear mapping scan, byte-loop tag compare) are driven
// over two identically constructed address spaces with the same randomized
// access stream. Any observable divergence — fault kind or tags, suppression
// decision, loaded values, async latch state, or final memory and tag
// contents — is a bug in the fast engine, because the reference engine is
// the specification.
//
// The stream deliberately covers what the fast engine special-cases:
// single-granule and granule-straddling accesses, spans long enough to hit
// the SWAR word loop (and its scalar tail), unmapped and guard-gap
// addresses, a read-only mapping for protection faults, mid-stream Map calls
// (TLB epoch invalidation), mid-stream retagging, and TCO flips.

// engineWorld is one side of the differential: a space plus the thread
// context accessing it.
type engineWorld struct {
	space *mem.Space
	ctx   *cpu.Context
	maps  []*mem.Mapping
}

// mapBoth creates the same mapping in both worlds and fails on any layout
// divergence (placement is deterministic, so bases must be equal).
func mapBoth(a, b *engineWorld, name string, size uint64, prot mem.Prot) error {
	ma, errA := a.space.Map(name, size, prot)
	mb, errB := b.space.Map(name, size, prot)
	if (errA == nil) != (errB == nil) {
		return fmt.Errorf("Map(%q): one world errored (%v vs %v)", name, errA, errB)
	}
	if errA != nil {
		return nil
	}
	if ma.Base() != mb.Base() || ma.Size() != mb.Size() {
		return fmt.Errorf("Map(%q): layouts diverged (%v+%d vs %v+%d)",
			name, ma.Base(), ma.Size(), mb.Base(), mb.Size())
	}
	a.maps = append(a.maps, ma)
	b.maps = append(b.maps, mb)
	return nil
}

// faultsDiffer compares the observable fields of two faults. PC, backtrace
// and thread name are presentation, not semantics, and the two worlds run
// under differently named contexts, so they are excluded.
func faultsDiffer(fa, fb *mte.Fault) bool {
	if (fa == nil) != (fb == nil) {
		return true
	}
	if fa == nil {
		return false
	}
	return fa.Kind != fb.Kind || fa.Access != fb.Access || fa.Ptr != fb.Ptr ||
		fa.Size != fb.Size || fa.PtrTag != fb.PtrTag || fa.MemTag != fb.MemTag
}

// DifferentialEngines runs a randomized access stream of the given length
// against the fast and reference engines in the given check mode and returns
// an error describing the first divergence, or nil when the engines agreed
// on every step and on the final state.
func DifferentialEngines(seed int64, steps int, mode mte.CheckMode) error {
	rng := rand.New(rand.NewSource(seed))

	fast := &engineWorld{space: mem.NewSpace(), ctx: cpu.New("fast", mode)}
	refW := &engineWorld{space: mem.NewSpace(), ctx: cpu.New("reference", mode)}
	fast.ctx.SetTCO(false)
	refW.ctx.SetTCO(false)
	ref := mem.NewReferenceEngine(refW.space)

	// Base layout: a tagged heap, an untagged scratch region, and a
	// read-only region for protection faults.
	if err := mapBoth(fast, refW, "heap", 64*1024, mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
		return err
	}
	if err := mapBoth(fast, refW, "scratch", 16*1024, mem.ProtRead|mem.ProtWrite); err != nil {
		return err
	}
	if err := mapBoth(fast, refW, "rodata", 4096, mem.ProtRead|mem.ProtMTE); err != nil {
		return err
	}
	// A large, mostly-untouched tagged mapping: the sparse-space shape the
	// hierarchical tag table is built for. Most of its tag pages stay
	// deduplicated against the canonical zero page for the whole run, so the
	// sweep below also proves lazily materialized storage reads back
	// identically to the reference world's.
	if err := mapBoth(fast, refW, "sparse", 1<<20, mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
		return err
	}

	// randPtr picks an address biased toward interesting places: inside a
	// mapping (at random alignment), exactly at a boundary, or in the guard
	// gap / unmapped space past one.
	randPtr := func() mte.Ptr {
		m := fast.maps[rng.Intn(len(fast.maps))]
		var addr mte.Addr
		switch rng.Intn(8) {
		case 0:
			addr = m.End() // one past the end
		case 1:
			addr = m.End() + mte.Addr(rng.Intn(4096)) // guard gap
		case 2:
			addr = m.Base() + mte.Addr(m.Size()) - mte.Addr(1+rng.Intn(32)) // tail
		default:
			addr = m.Base() + mte.Addr(rng.Intn(int(m.Size())))
		}
		return mte.MakePtr(addr, mte.Tag(rng.Intn(16)))
	}
	// randSize is biased toward SWAR-relevant shapes: sub-granule, exactly
	// one word of granules (128 bytes), long spans with scalar tails.
	randSize := func() int {
		switch rng.Intn(6) {
		case 0:
			return rng.Intn(16) // within one granule (often)
		case 1:
			return 128 // exactly 8 granules: one SWAR word
		case 2:
			return 128 + 16*rng.Intn(8) // word loop + tail granules
		default:
			return rng.Intn(1024)
		}
	}

	check := func(step int, op string, fa, fb *mte.Fault) error {
		if faultsDiffer(fa, fb) {
			return fmt.Errorf("step %d %s: faults diverged\n fast: %+v\n  ref: %+v", step, op, fa, fb)
		}
		if fast.ctx.PendingAsyncFault() != refW.ctx.PendingAsyncFault() {
			return fmt.Errorf("step %d %s: async pending diverged", step, op)
		}
		if fast.ctx.AsyncFaultCount() != refW.ctx.AsyncFaultCount() {
			return fmt.Errorf("step %d %s: async fault counts diverged (%d vs %d)",
				step, op, fast.ctx.AsyncFaultCount(), refW.ctx.AsyncFaultCount())
		}
		return nil
	}

	buf := make([]byte, 1024)
	for step := 0; step < steps; step++ {
		switch rng.Intn(13) {
		case 0: // Load of a random width
			p := randPtr()
			var va, vb uint64
			var fa, fb *mte.Fault
			switch rng.Intn(4) {
			case 0:
				var a8, b8 uint8
				a8, fa = fast.space.Load8(fast.ctx, p)
				b8, fb = ref.Load8(refW.ctx, p)
				va, vb = uint64(a8), uint64(b8)
			case 1:
				var a16, b16 uint16
				a16, fa = fast.space.Load16(fast.ctx, p)
				b16, fb = ref.Load16(refW.ctx, p)
				va, vb = uint64(a16), uint64(b16)
			case 2:
				var a32, b32 uint32
				a32, fa = fast.space.Load32(fast.ctx, p)
				b32, fb = ref.Load32(refW.ctx, p)
				va, vb = uint64(a32), uint64(b32)
			default:
				va, fa = fast.space.Load64(fast.ctx, p)
				vb, fb = ref.Load64(refW.ctx, p)
			}
			if err := check(step, "load", fa, fb); err != nil {
				return err
			}
			if va != vb {
				return fmt.Errorf("step %d load %v: values diverged (%#x vs %#x)", step, p, va, vb)
			}
		case 1, 2: // Store of a random width
			p := randPtr()
			v := rng.Uint64()
			var fa, fb *mte.Fault
			switch rng.Intn(4) {
			case 0:
				fa = fast.space.Store8(fast.ctx, p, uint8(v))
				fb = ref.Store8(refW.ctx, p, uint8(v))
			case 1:
				fa = fast.space.Store16(fast.ctx, p, uint16(v))
				fb = ref.Store16(refW.ctx, p, uint16(v))
			case 2:
				fa = fast.space.Store32(fast.ctx, p, uint32(v))
				fb = ref.Store32(refW.ctx, p, uint32(v))
			default:
				fa = fast.space.Store64(fast.ctx, p, v)
				fb = ref.Store64(refW.ctx, p, v)
			}
			if err := check(step, "store", fa, fb); err != nil {
				return err
			}
		case 3, 4: // CopyOut
			p := randPtr()
			n := randSize()
			da, db := buf[:n], make([]byte, n)
			fa := fast.space.CopyOut(fast.ctx, p, da)
			fb := ref.CopyOut(refW.ctx, p, db)
			if err := check(step, "copyout", fa, fb); err != nil {
				return err
			}
			if fa == nil && !bytes.Equal(da, db) {
				return fmt.Errorf("step %d copyout %v+%d: data diverged", step, p, n)
			}
		case 5, 6: // CopyIn
			p := randPtr()
			n := randSize()
			src := buf[:n]
			rng.Read(src)
			fa := fast.space.CopyIn(fast.ctx, p, src)
			fb := ref.CopyIn(refW.ctx, p, src)
			if err := check(step, "copyin", fa, fb); err != nil {
				return err
			}
		case 7, 8: // Move, frequently overlapping
			src := randPtr()
			var dst mte.Ptr
			if rng.Intn(2) == 0 {
				// Overlap: shift the source by less than the span.
				dst = mte.MakePtr(src.Addr()+mte.Addr(rng.Intn(64)), mte.Tag(rng.Intn(16)))
			} else {
				dst = randPtr()
			}
			n := randSize()
			fa := fast.space.Move(fast.ctx, dst, src, n)
			fb := ref.Move(refW.ctx, dst, src, n)
			if err := check(step, "move", fa, fb); err != nil {
				return err
			}
		case 9: // Retag a random granule range in both worlds
			mi := rng.Intn(len(fast.maps))
			ma, mb := fast.maps[mi], refW.maps[mi]
			if !ma.Tagged() {
				continue
			}
			// Span shapes chosen to drive every tag-table transition:
			// short partial-page paints (copy-on-tag materialization),
			// page-aligned whole-page spans (uniform sentinel swaps),
			// page-crossing spans (edge materialization + interior swaps
			// in one call), and occasional whole-mapping repaints. A
			// quarter of the retags use tag 0, exercising the zero-dedup
			// path and copy-on-tag followed by retag-back-to-uniform.
			var begin, end mte.Addr
			const tagPage = 16384 // one tag page spans 16 KiB of data
			switch rng.Intn(6) {
			case 0: // whole tag pages, tag-page aligned
				pages := int(ma.Size() / tagPage)
				if pages == 0 {
					pages = 1
				}
				start := mte.Addr(rng.Intn(pages)) * tagPage
				begin = ma.Base() + start
				end = begin + mte.Addr(1+rng.Intn(3))*tagPage
			case 1: // page-crossing span from mid-page
				begin = ma.Base() + mte.Addr(rng.Intn(int(ma.Size())))
				end = begin + mte.Addr(tagPage/2+rng.Intn(3*tagPage))
			case 2: // whole mapping
				begin, end = ma.Base(), ma.End()
			default: // short partial-page paint
				begin = ma.Base() + mte.Addr(rng.Intn(int(ma.Size())))
				end = begin + mte.Addr(rng.Intn(256))
			}
			if end > ma.End() {
				end = ma.End()
			}
			tag := mte.Tag(rng.Intn(16))
			if rng.Intn(4) == 0 {
				tag = 0
			}
			na, errA := ma.SetTagRange(begin, end, tag)
			nb, errB := mb.SetTagRange(begin, end, tag)
			if na != nb || (errA == nil) != (errB == nil) {
				return fmt.Errorf("step %d settagrange: diverged (%d,%v vs %d,%v)", step, na, errA, nb, errB)
			}
		case 10: // Mid-stream Map: exercises epoch bump + TLB flush
			if len(fast.maps) < 8 {
				if err := mapBoth(fast, refW, fmt.Sprintf("mid-%d", step), 4096,
					mem.ProtRead|mem.ProtWrite|mem.ProtMTE); err != nil {
					return err
				}
			}
		case 11: // TCO flip on both threads
			suppressed := rng.Intn(2) == 0
			fast.ctx.SetTCO(suppressed)
			refW.ctx.SetTCO(suppressed)
		case 12: // Tag reseed: ResetTags a random mapping in both worlds
			// The defense-side reseed primitive (pool reseeds suspicious
			// sessions between leases): a whole-mapping repaint to tag 0
			// plus an epoch bump. Runs mid-stream so subsequent accesses
			// prove the collapsed-to-canonical state and the flushed TLBs
			// stay lockstep with the reference world.
			mi := rng.Intn(len(fast.maps))
			fast.space.ResetTags(fast.maps[mi])
			refW.space.ResetTags(refW.maps[mi])
		}
	}

	// Final sweep: memory bytes and tags must be identical everywhere.
	for i, ma := range fast.maps {
		mb := refW.maps[i]
		ba, errA := ma.Bytes(ma.Base(), int(ma.Size()))
		bb, errB := mb.Bytes(mb.Base(), int(mb.Size()))
		if errA != nil || errB != nil {
			return fmt.Errorf("final sweep: Bytes failed (%v, %v)", errA, errB)
		}
		if !bytes.Equal(ba, bb) {
			return fmt.Errorf("final sweep: mapping %q contents diverged", ma.Name())
		}
		for a := ma.Base(); a < ma.End(); a += mte.GranuleSize {
			if ma.TagAt(a) != mb.TagAt(a) {
				return fmt.Errorf("final sweep: mapping %q tag at %v diverged (%v vs %v)",
					ma.Name(), a, ma.TagAt(a), mb.TagAt(a))
			}
		}
	}
	return nil
}
