package fuzz

import (
	"fmt"

	"mte4jni/internal/analysis"
	"mte4jni/internal/core"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// The static/dynamic differential oracle. A generated (or hand-written)
// program is analyzed by internal/analysis and then actually executed under
// MTE4JNI in synchronous mode with neighbour exclusion — the configuration
// whose fault behaviour is deterministic. The two must agree:
//
//   - provably-safe programs must not fault (a fault is a false negative in
//     the analyzer or a false positive in the protection),
//   - provably-faulting programs must fault (a clean run means the analyzer
//     overclaims or the protection missed an illicit access),
//   - unknown constrains nothing.
//
// Managed exceptions and interpreter aborts are *not* faults: the safe
// verdict only claims the absence of MTE tag-check faults.

// Outcome is what one concrete execution did.
type Outcome struct {
	// Ret is the return value when the run completed normally.
	Ret int64
	// Fault is the MTE fault when the run crashed in native code.
	Fault *mte.Fault
	// Err is the managed exception or interpreter abort, when one ended the
	// run instead.
	Err error
	// Trace is the recorded JNI event stream, ready for analysis.LintTrace.
	Trace []jni.TraceEvent
}

// Faulted reports whether the run ended in a memory fault.
func (o *Outcome) Faulted() bool { return o.Fault != nil }

// Execute runs the program under MTE4JNI+Sync with neighbour exclusion,
// materialising each NativeSummary into a real native body. The returned
// error reports harness failures only; program-level failures land in the
// Outcome.
func Execute(p *analysis.Program, seed int64) (*Outcome, error) {
	v, err := vm.New(vm.Options{
		HeapSize: 8 << 20, NativeHeapSize: 8 << 20,
		MTE: true, CheckMode: mte.TCFSync,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	th, err := v.AttachThread("differential")
	if err != nil {
		return nil, err
	}
	prot, err := core.New(v, core.Config{ExcludeNeighbors: true})
	if err != nil {
		return nil, err
	}
	env := jni.NewEnv(th, prot, true)
	rec := jni.NewRecordingTracer()
	env.SetTracer(rec)

	ip := interp.New(env)
	for name, sum := range p.Natives {
		ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: nativeBody(sum)})
	}

	out := &Outcome{}
	out.Ret, out.Fault, out.Err = ip.Invoke(p.Method)
	out.Trace = rec.Events()
	return out, nil
}

// nativeBody materialises a summary into an executable native. The body
// performs 1-byte accesses at exactly MinOff and MaxOff relative to the
// payload begin — the same contract siteVerdict reasons about.
func nativeBody(sum analysis.NativeSummary) func(*jni.Env, *vm.Object) error {
	return func(e *jni.Env, arr *vm.Object) error {
		if sum.Kind == jni.CriticalNative {
			// @CriticalNative code cannot use JNIEnv handout interfaces; it
			// reaches the heap through a raw untagged pointer, and because
			// the trampoline never arms checking, no tag is ever checked.
			touch(e, mte.MakePtr(arr.DataBegin(), 0), sum)
			return nil
		}
		ptr, err := e.GetIntArrayElements(arr)
		if err != nil {
			return err
		}
		if sum.UseAfterRelease {
			if err := e.ReleaseIntArrayElements(arr, ptr, jni.ReleaseDefault); err != nil {
				return err
			}
			touch(e, ptr, sum) // stale pointer: the region's tags are gone
			return nil
		}
		if sum.ForgeTag {
			// Mutate tag bits 56-59 without irg. XOR with a fixed nonzero
			// nibble guarantees the forged tag differs from the issued one.
			touch(e, ptr.WithTag(ptr.Tag()^0x8), sum)
		} else {
			touch(e, ptr, sum)
		}
		return e.ReleaseIntArrayElements(arr, ptr, jni.ReleaseDefault)
	}
}

// touch performs the summary's byte accesses. A synchronous fault panics out
// through the Env helper and is caught by the trampoline, so a faulting
// first access suppresses the second — matching real sync-mode MTE.
func touch(e *jni.Env, base mte.Ptr, sum analysis.NativeSummary) {
	if !sum.Touches() {
		return
	}
	offs := []int64{sum.MinOff}
	if sum.MaxOff != sum.MinOff {
		offs = append(offs, sum.MaxOff)
	}
	for _, off := range offs {
		p := base.Add(off)
		if sum.Write {
			e.StoreByte(p, 0x5A)
		} else {
			_ = e.LoadByte(p)
		}
	}
}

// Disagreement is a static/dynamic soundness violation: the analyzer's
// proof and the hardware's behaviour contradict each other.
type Disagreement struct {
	// Verdict is the static claim.
	Verdict analysis.Verdict
	// Outcome is what actually happened.
	Outcome *Outcome
	// Program is the offending program, for replay.
	Program *analysis.Program
}

// Error implements the error interface.
func (d *Disagreement) Error() string {
	got := "no fault"
	if d.Outcome.Faulted() {
		got = "fault: " + d.Outcome.Fault.Error()
	}
	data, _ := analysis.MarshalProgram(d.Program)
	return fmt.Sprintf("differential: static verdict %s but dynamic outcome %s\nprogram:\n%s\n%s",
		d.Verdict, got, interp.Disassemble(d.Program.Method), data)
}

// DiffResult pairs the two halves of one differential run.
type DiffResult struct {
	// Result is the static analysis.
	Result *analysis.MethodResult
	// Outcome is the dynamic execution.
	Outcome *Outcome
}

// Differential analyzes and executes p, checking the verdict against the
// dynamic outcome. It returns a *Disagreement error when they contradict.
func Differential(p *analysis.Program, seed int64) (*DiffResult, error) {
	res := p.Analyze("")
	out, err := Execute(p, seed)
	if err != nil {
		return nil, err
	}
	switch res.Verdict {
	case analysis.VerdictSafe:
		if out.Faulted() {
			return nil, &Disagreement{Verdict: res.Verdict, Outcome: out, Program: p}
		}
	case analysis.VerdictFault:
		if !out.Faulted() {
			return nil, &Disagreement{Verdict: res.Verdict, Outcome: out, Program: p}
		}
	}
	return &DiffResult{Result: res, Outcome: out}, nil
}
