package fuzz

import (
	"fmt"

	"mte4jni/internal/analysis"
	"mte4jni/internal/core"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// The static/dynamic differential oracle. A generated (or hand-written)
// program is analyzed by internal/analysis and then actually executed under
// MTE4JNI in synchronous mode with neighbour exclusion — the configuration
// whose fault behaviour is deterministic. The two must agree:
//
//   - provably-safe programs must not fault (a fault is a false negative in
//     the analyzer or a false positive in the protection),
//   - provably-faulting programs must fault (a clean run means the analyzer
//     overclaims or the protection missed an illicit access),
//   - unknown constrains nothing.
//
// Managed exceptions and interpreter aborts are *not* faults: the safe
// verdict only claims the absence of MTE tag-check faults.

// Outcome is what one concrete execution did.
type Outcome struct {
	// Ret is the return value when the run completed normally.
	Ret int64
	// Fault is the MTE fault when the run crashed in native code.
	Fault *mte.Fault
	// Err is the managed exception or interpreter abort, when one ended the
	// run instead.
	Err error
	// Trace is the recorded JNI event stream, ready for analysis.LintTrace.
	Trace []jni.TraceEvent
	// LiveObjects and BytesInUse capture the Java heap state immediately
	// after the run (before any collection) — the program's allocation
	// footprint, used by the pool differential to check that serving a
	// program through a warm pooled session leaves the same heap state as a
	// dedicated VM.
	LiveObjects int
	BytesInUse  uint64
}

// Faulted reports whether the run ended in a memory fault.
func (o *Outcome) Faulted() bool { return o.Fault != nil }

// Execute runs the program under MTE4JNI+Sync with neighbour exclusion,
// materialising each NativeSummary into a real native body. The returned
// error reports harness failures only; program-level failures land in the
// Outcome.
func Execute(p *analysis.Program, seed int64) (*Outcome, error) {
	v, err := vm.New(vm.Options{
		HeapSize: 8 << 20, NativeHeapSize: 8 << 20,
		MTE: true, CheckMode: mte.TCFSync,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	th, err := v.AttachThread("differential")
	if err != nil {
		return nil, err
	}
	prot, err := core.New(v, core.Config{ExcludeNeighbors: true})
	if err != nil {
		return nil, err
	}
	env := jni.NewEnv(th, prot, true)
	rec := jni.NewRecordingTracer()
	env.SetTracer(rec)

	ip := interp.New(env)
	for name, sum := range p.Natives {
		ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
	}

	out := &Outcome{}
	out.Ret, out.Fault, out.Err = ip.Invoke(p.Method)
	out.Trace = rec.Events()
	out.LiveObjects = v.LiveObjects()
	out.BytesInUse = v.JavaHeap.Stats().BytesInUse
	return out, nil
}

// Disagreement is a static/dynamic soundness violation: the analyzer's
// proof and the hardware's behaviour contradict each other.
type Disagreement struct {
	// Verdict is the static claim.
	Verdict analysis.Verdict
	// Outcome is what actually happened.
	Outcome *Outcome
	// Program is the offending program, for replay.
	Program *analysis.Program
}

// Error implements the error interface.
func (d *Disagreement) Error() string {
	got := "no fault"
	if d.Outcome.Faulted() {
		got = "fault: " + d.Outcome.Fault.Error()
	}
	data, _ := analysis.MarshalProgram(d.Program)
	return fmt.Sprintf("differential: static verdict %s but dynamic outcome %s\nprogram:\n%s\n%s",
		d.Verdict, got, interp.Disassemble(d.Program.Method), data)
}

// DiffResult pairs the two halves of one differential run.
type DiffResult struct {
	// Result is the static analysis.
	Result *analysis.MethodResult
	// Outcome is the dynamic execution.
	Outcome *Outcome
}

// Differential analyzes and executes p, checking the verdict against the
// dynamic outcome. It returns a *Disagreement error when they contradict.
func Differential(p *analysis.Program, seed int64) (*DiffResult, error) {
	res := p.Analyze("")
	out, err := Execute(p, seed)
	if err != nil {
		return nil, err
	}
	switch res.Verdict {
	case analysis.VerdictSafe:
		if out.Faulted() {
			return nil, &Disagreement{Verdict: res.Verdict, Outcome: out, Program: p}
		}
	case analysis.VerdictFault:
		if !out.Faulted() {
			return nil, &Disagreement{Verdict: res.Verdict, Outcome: out, Program: p}
		}
	}
	return &DiffResult{Result: res, Outcome: out}, nil
}

// ScreenDisagreement is an admission-screening soundness violation: the
// screen's decision contradicts what the program actually did.
type ScreenDisagreement struct {
	// Verdict is the admission decision.
	Verdict *analysis.ScreenVerdict
	// Outcome is what actually happened.
	Outcome *Outcome
	// Program is the offending program, for replay.
	Program *analysis.Program
}

// Error implements the error interface.
func (d *ScreenDisagreement) Error() string {
	got := "no fault"
	if d.Outcome.Faulted() {
		got = "fault: " + d.Outcome.Fault.Error()
	}
	data, _ := analysis.MarshalProgram(d.Program)
	return fmt.Sprintf("screen differential: verdict %s (%s) but dynamic outcome %s\nprogram:\n%s\n%s",
		d.Verdict.Verdict, d.Verdict.Reason, got, interp.Disassemble(d.Program.Method), data)
}

// ScreenDifferential screens p exactly the way the serving layer does —
// through the JSON wire form, so marshalling round-trips are part of what
// is being checked — and then executes it. A rejected program that runs
// clean, or a screened-safe program that faults, comes back as a
// *ScreenDisagreement error.
func ScreenDifferential(p *analysis.Program, seed int64) (*analysis.ScreenVerdict, *Outcome, error) {
	raw, err := analysis.MarshalProgram(p)
	if err != nil {
		return nil, nil, fmt.Errorf("screen differential: marshal: %w", err)
	}
	wire, err := analysis.ParseProgram(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("screen differential: reparse: %w", err)
	}
	v := analysis.Screen(wire)
	out, err := Execute(p, seed)
	if err != nil {
		return nil, nil, err
	}
	if v.Rejected() && !out.Faulted() {
		return nil, nil, &ScreenDisagreement{Verdict: v, Outcome: out, Program: p}
	}
	if v.Verdict == analysis.VerdictSafe && out.Faulted() {
		return nil, nil, &ScreenDisagreement{Verdict: v, Outcome: out, Program: p}
	}
	return v, out, nil
}
