package jni

// Proof-carrying elision state: the env-side gate between the interpreter's
// elision mask and the unguarded access variants in internal/mem.
//
// The interpreter primes the env once per run of a mask-bound program and
// arms it around each call site the screening proof covered; while armed,
// the Load/Store/Copy helpers in env.go route through the *Unguarded
// variants, which skip the tag compare. Everything the proof assumed is
// re-checked here at the cheapest possible point:
//
//   - remap: PrimeElision snapshots the address space's remap epoch, and
//     ArmElision refuses (invalidating the run) if it has moved — a Map or
//     Unmap may have changed what the proven offsets resolve to;
//   - release/retire: releasing a handout while armed retires the proof for
//     the remainder of the native call (armed -> stale); the next access
//     counts one invalidation and runs fully checked;
//   - native summary mismatch: caught before the env is ever primed, by
//     analysis.Elision.ValidateBinding at pool bind time.
//
// Like the BindExec context, all of this state is owned by the single
// goroutine driving the lease, so plain fields suffice.

// elisionState is the per-run gate state. armed routes accesses unguarded;
// stale marks a proof fact retired mid-call (fall back to checked and count
// the invalidation on the next access); epoch is the remap epoch the proofs
// were validated against.
type elisionState struct {
	primed bool
	armed  bool
	stale  bool
	epoch  uint64
}

// PrimeElision readies the env for one run of a program whose elision proofs
// validated at bind time, snapshotting the remap epoch they assumed.
func (e *Env) PrimeElision() {
	e.elide = elisionState{primed: true, epoch: e.vm.Space.Epoch()}
}

// ClearElision detaches the elision state after a run. The invalidation
// counter survives — the pool reads it across runs as a delta.
func (e *Env) ClearElision() { e.elide = elisionState{} }

// ArmElision arms guard-free access for one proven native call. It refuses —
// counting an invalidation — when the address space has been remapped since
// the proofs were validated; the call then runs fully checked.
func (e *Env) ArmElision() bool {
	if !e.elide.primed {
		return false
	}
	if e.vm.Space.Epoch() != e.elide.epoch {
		e.elideInvalidations++
		return false
	}
	e.elide.armed = true
	return true
}

// DisarmElision ends the armed window at native-call exit, clearing any
// mid-call staleness: each call site's proof stands on its own.
func (e *Env) DisarmElision() {
	e.elide.armed = false
	e.elide.stale = false
}

// retireElision is the release/retire invalidation hook: a handout released
// while the gate is armed takes the facts its proof depended on with it, so
// the remainder of the call falls back to checked access.
func (e *Env) retireElision() {
	if e.elide.armed {
		e.elide.armed = false
		e.elide.stale = true
	}
}

// elided reports whether the next access may skip its tag compare. An access
// arriving after a mid-call retirement observes stale, books the
// invalidation once, and runs checked.
func (e *Env) elided() bool {
	if e.elide.armed {
		return true
	}
	if e.elide.stale {
		e.elide.stale = false
		e.elideInvalidations++
	}
	return false
}

// ElisionInvalidations returns the monotonic count of proof invalidations
// observed on this env; callers snapshot it around a run to derive a
// per-run verdict.
func (e *Env) ElisionInvalidations() uint64 { return e.elideInvalidations }
