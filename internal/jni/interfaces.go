package jni

import (
	"fmt"

	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// This file implements the paper's Table 1: every JNI interface that
// returns a raw pointer into Java heap memory, plus its release partner.
// All of them funnel through acquire/release, where the protection scheme
// (Checker) intervenes — exactly the modification point §4.2 describes.

// acquire is the common Get path: validate, run the checker, pin, record.
func (e *Env) acquire(obj *vm.Object, iface string, freeObj bool, match *vm.Object) (mte.Ptr, error) {
	begin, end := obj.DataBegin(), obj.DataEnd()
	p, err := e.checker.Acquire(e.thread, obj, begin, end)
	if err != nil {
		return 0, fmt.Errorf("jni: %s: %w", iface, err)
	}
	e.recordAcquisition(&acquisition{
		obj: obj, iface: iface, ptr: p, begin: begin, end: end,
		match: match, freeObj: freeObj,
	})
	if e.tracing() {
		e.trace(TraceEvent{Kind: TraceGet, Iface: iface, Object: obj.String(), Ptr: p,
			Begin: begin, End: end})
	}
	return p, nil
}

// release is the common Release path: match the ledger, run the checker,
// unpin, destroy temporaries.
func (e *Env) release(match *vm.Object, iface string, p mte.Ptr, mode ReleaseMode) error {
	a, err := e.takeAcquisition(match, iface, p)
	if err != nil {
		return err
	}
	// Releasing a handout retires the facts any active elision proof depended
	// on (the checker may retag the payload right here), so the rest of this
	// native call falls back to checked access.
	e.retireElision()
	checkErr := e.checker.Release(e.thread, a.obj, a.ptr, a.begin, a.end, mode)
	if mode == JNICommit && checkErr == nil {
		// JNI_COMMIT: the content was written back but the pointer remains
		// valid, so the acquisition (pin included) stays on the ledger for
		// the eventual final release.
		e.mu.Lock()
		e.acquired = append(e.acquired, a)
		e.mu.Unlock()
		return nil
	}
	a.obj.Unpin()
	if a.freeObj {
		if err := e.vm.FreeObject(a.obj); err != nil && checkErr == nil {
			checkErr = err
		}
	}
	if e.tracing() {
		errText := ""
		if checkErr != nil {
			errText = checkErr.Error()
		}
		e.trace(TraceEvent{Kind: TraceRelease, Iface: iface, Object: a.obj.String(), Ptr: a.ptr, Err: errText})
	}
	if checkErr != nil {
		return fmt.Errorf("jni: %s: %w", iface, checkErr)
	}
	return nil
}

// requireArray validates that obj is a primitive array (CheckJNI catches
// class mismatches here; without CheckJNI a wrong type is still an error in
// the simulation, since there is no way to reinterpret the handle).
func (e *Env) requireArray(obj *vm.Object, iface string, kind *vm.Kind) error {
	if obj == nil {
		return fmt.Errorf("jni: %s: null array", iface)
	}
	if !obj.Class().Array {
		return fmt.Errorf("jni: %s: %s is not a primitive array", iface, obj)
	}
	if kind != nil && obj.Class().Elem != *kind {
		return fmt.Errorf("jni: %s: expected %s[] but got %s", iface, *kind, obj)
	}
	return nil
}

// requireString validates that obj is a java.lang.String.
func (e *Env) requireString(obj *vm.Object, iface string) error {
	if obj == nil {
		return fmt.Errorf("jni: %s: null string", iface)
	}
	if !obj.Class().String {
		return fmt.Errorf("jni: %s: %s is not a java.lang.String", iface, obj)
	}
	return nil
}

// --- Critical interfaces ---------------------------------------------------

// GetPrimitiveArrayCritical returns a raw pointer to the array payload
// (Table 1 row 2). The array is pinned until release.
func (e *Env) GetPrimitiveArrayCritical(arr *vm.Object) (mte.Ptr, error) {
	if err := e.requireArray(arr, "GetPrimitiveArrayCritical", nil); err != nil {
		return 0, err
	}
	return e.acquire(arr, "GetPrimitiveArrayCritical", false, nil)
}

// ReleasePrimitiveArrayCritical releases a pointer obtained from
// GetPrimitiveArrayCritical.
func (e *Env) ReleasePrimitiveArrayCritical(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.release(arr, "ReleasePrimitiveArrayCritical", p, mode)
}

// GetStringCritical returns a raw pointer to the string's UTF-16 payload
// (Table 1 row 1).
func (e *Env) GetStringCritical(str *vm.Object) (mte.Ptr, error) {
	if err := e.requireString(str, "GetStringCritical"); err != nil {
		return 0, err
	}
	return e.acquire(str, "GetStringCritical", false, nil)
}

// ReleaseStringCritical releases a pointer obtained from GetStringCritical.
func (e *Env) ReleaseStringCritical(str *vm.Object, p mte.Ptr) error {
	return e.release(str, "ReleaseStringCritical", p, ReleaseDefault)
}

// --- String chars ----------------------------------------------------------

// GetStringChars returns a raw pointer to the string's UTF-16 code units
// (Table 1 row 3).
func (e *Env) GetStringChars(str *vm.Object) (mte.Ptr, error) {
	if err := e.requireString(str, "GetStringChars"); err != nil {
		return 0, err
	}
	return e.acquire(str, "GetStringChars", false, nil)
}

// ReleaseStringChars releases a pointer obtained from GetStringChars.
func (e *Env) ReleaseStringChars(str *vm.Object, p mte.Ptr) error {
	return e.release(str, "ReleaseStringChars", p, ReleaseDefault)
}

// GetStringUTFChars returns a raw pointer to a NUL-terminated Modified
// UTF-8 copy of the string (Table 1 row 4), plus the byte length excluding
// the terminator. The copy lives in the Java heap so the protection scheme
// covers it like any other payload.
func (e *Env) GetStringUTFChars(str *vm.Object) (mte.Ptr, int, error) {
	if err := e.requireString(str, "GetStringUTFChars"); err != nil {
		return 0, 0, err
	}
	units := make([]uint16, str.Len())
	for i := range units {
		bits, err := str.GetElem(i)
		if err != nil {
			return 0, 0, err
		}
		units[i] = uint16(bits)
	}
	utf := EncodeModifiedUTF8(units)
	buf, err := e.vm.NewArray(vm.KindByte, len(utf)+1) // +1 for NUL
	if err != nil {
		return 0, 0, fmt.Errorf("jni: GetStringUTFChars: %w", err)
	}
	payload, err := buf.Bytes()
	if err != nil {
		return 0, 0, err
	}
	copy(payload, utf) // trailing byte already zero
	p, err := e.acquire(buf, "GetStringUTFChars", true, str)
	if err != nil {
		return 0, 0, err
	}
	return p, len(utf), nil
}

// ReleaseStringUTFChars releases a pointer obtained from GetStringUTFChars,
// destroying the temporary buffer.
func (e *Env) ReleaseStringUTFChars(str *vm.Object, p mte.Ptr) error {
	return e.release(str, "ReleaseStringUTFChars", p, JNIAbort)
}

// --- Get<Type>ArrayElements ------------------------------------------------

// GetArrayElements returns a raw pointer to a primitive array's elements,
// validating the element kind (Table 1 row 5 — the Get*ArrayElements
// family).
func (e *Env) GetArrayElements(kind vm.Kind, arr *vm.Object) (mte.Ptr, error) {
	iface := "Get" + kind.JNIName() + "ArrayElements"
	if err := e.requireArray(arr, iface, &kind); err != nil {
		return 0, err
	}
	return e.acquire(arr, iface, false, nil)
}

// ReleaseArrayElements releases a pointer obtained from GetArrayElements.
func (e *Env) ReleaseArrayElements(kind vm.Kind, arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.release(arr, "Release"+kind.JNIName()+"ArrayElements", p, mode)
}

// GetIntArrayElements is the int instantiation of Get*ArrayElements.
func (e *Env) GetIntArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindInt, arr)
}

// ReleaseIntArrayElements is the int instantiation of Release*ArrayElements.
func (e *Env) ReleaseIntArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindInt, arr, p, mode)
}

// GetByteArrayElements is the byte instantiation of Get*ArrayElements.
func (e *Env) GetByteArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindByte, arr)
}

// ReleaseByteArrayElements is the byte instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseByteArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindByte, arr, p, mode)
}

// GetCharArrayElements is the char instantiation of Get*ArrayElements.
func (e *Env) GetCharArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindChar, arr)
}

// ReleaseCharArrayElements is the char instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseCharArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindChar, arr, p, mode)
}

// GetShortArrayElements is the short instantiation of Get*ArrayElements.
func (e *Env) GetShortArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindShort, arr)
}

// ReleaseShortArrayElements is the short instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseShortArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindShort, arr, p, mode)
}

// GetLongArrayElements is the long instantiation of Get*ArrayElements.
func (e *Env) GetLongArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindLong, arr)
}

// ReleaseLongArrayElements is the long instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseLongArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindLong, arr, p, mode)
}

// GetFloatArrayElements is the float instantiation of Get*ArrayElements.
func (e *Env) GetFloatArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindFloat, arr)
}

// ReleaseFloatArrayElements is the float instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseFloatArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindFloat, arr, p, mode)
}

// GetDoubleArrayElements is the double instantiation of Get*ArrayElements.
func (e *Env) GetDoubleArrayElements(arr *vm.Object) (mte.Ptr, error) {
	return e.GetArrayElements(vm.KindDouble, arr)
}

// ReleaseDoubleArrayElements is the double instantiation of
// Release*ArrayElements.
func (e *Env) ReleaseDoubleArrayElements(arr *vm.Object, p mte.Ptr, mode ReleaseMode) error {
	return e.ReleaseArrayElements(vm.KindDouble, arr, p, mode)
}

// --- Array regions ---------------------------------------------------------

// checkRegion validates a [start, start+count) element region.
func checkRegion(arr *vm.Object, iface string, start, count int) error {
	if start < 0 || count < 0 || start+count > arr.Len() {
		return fmt.Errorf("jni: %s: ArrayIndexOutOfBoundsException: region [%d,%d) of length %d",
			iface, start, start+count, arr.Len())
	}
	return nil
}

// GetArrayRegion copies count elements starting at start into dst, which
// must be count*elemSize bytes (Table 1 row 6 — the Get*ArrayRegion
// family). Regions are bounds-checked by the runtime, so they are safe by
// construction; they are part of the surface because the paper lists them.
func (e *Env) GetArrayRegion(kind vm.Kind, arr *vm.Object, start, count int, dst []byte) error {
	iface := "Get" + kind.JNIName() + "ArrayRegion"
	if err := e.requireArray(arr, iface, &kind); err != nil {
		return err
	}
	if err := checkRegion(arr, iface, start, count); err != nil {
		return err
	}
	if len(dst) != count*kind.Size() {
		return fmt.Errorf("jni: %s: buffer is %d bytes, want %d", iface, len(dst), count*kind.Size())
	}
	src := arr.DataBegin() + mte.Addr(start*kind.Size())
	return e.vm.JavaHeap.Mapping().ReadRaw(src, dst)
}

// SetArrayRegion copies src into count elements starting at start.
func (e *Env) SetArrayRegion(kind vm.Kind, arr *vm.Object, start, count int, src []byte) error {
	iface := "Set" + kind.JNIName() + "ArrayRegion"
	if err := e.requireArray(arr, iface, &kind); err != nil {
		return err
	}
	if err := checkRegion(arr, iface, start, count); err != nil {
		return err
	}
	if len(src) != count*kind.Size() {
		return fmt.Errorf("jni: %s: buffer is %d bytes, want %d", iface, len(src), count*kind.Size())
	}
	dst := arr.DataBegin() + mte.Addr(start*kind.Size())
	return e.vm.JavaHeap.Mapping().WriteRaw(dst, src)
}

// --- Allocation and introspection helpers ----------------------------------

// NewIntArray allocates an int[] and registers a local reference.
func (e *Env) NewIntArray(length int) (*vm.Object, error) {
	return e.NewArray(vm.KindInt, length)
}

// NewArray allocates a primitive array and registers a local reference.
func (e *Env) NewArray(kind vm.Kind, length int) (*vm.Object, error) {
	arr, err := e.vm.NewArray(kind, length)
	if err != nil {
		return nil, err
	}
	e.thread.AddLocalRef(arr)
	return arr, nil
}

// NewString allocates a java.lang.String and registers a local reference.
func (e *Env) NewString(s string) (*vm.Object, error) {
	obj, err := e.vm.NewString(s)
	if err != nil {
		return nil, err
	}
	e.thread.AddLocalRef(obj)
	return obj, nil
}

// GetArrayLength returns the element count of an array.
func (e *Env) GetArrayLength(arr *vm.Object) (int, error) {
	if err := e.requireArray(arr, "GetArrayLength", nil); err != nil {
		return 0, err
	}
	return arr.Len(), nil
}

// GetStringLength returns the UTF-16 length of a string.
func (e *Env) GetStringLength(str *vm.Object) (int, error) {
	if err := e.requireString(str, "GetStringLength"); err != nil {
		return 0, err
	}
	return str.Len(), nil
}

// GetStringUTFLength returns the Modified UTF-8 byte length of a string.
func (e *Env) GetStringUTFLength(str *vm.Object) (int, error) {
	if err := e.requireString(str, "GetStringUTFLength"); err != nil {
		return 0, err
	}
	units := make([]uint16, str.Len())
	for i := range units {
		bits, err := str.GetElem(i)
		if err != nil {
			return 0, err
		}
		units[i] = uint16(bits)
	}
	return len(EncodeModifiedUTF8(units)), nil
}

// DeleteLocalRef drops a local reference created by the New* helpers.
func (e *Env) DeleteLocalRef(obj *vm.Object) { e.thread.DeleteLocalRef(obj) }
