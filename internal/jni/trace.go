package jni

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mte4jni/internal/mte"
)

// JNI call tracing, the development-phase diagnostic channel the paper
// motivates MTE4JNI with: every raw-pointer handout, release, native-method
// transition and detected fault can be streamed to a Tracer, so a developer
// can see which interface produced the pointer a later fault report points
// at. Tracing is off by default and costs one atomic load per event site
// when disabled.

// TraceEventKind classifies trace events.
type TraceEventKind int

const (
	// TraceGet is a successful raw-pointer acquisition.
	TraceGet TraceEventKind = iota
	// TraceRelease is a release (clean or not).
	TraceRelease
	// TraceNativeEnter and TraceNativeExit bracket native-method execution.
	TraceNativeEnter
	TraceNativeExit
	// TraceFault is a detected memory fault surfacing from a native method.
	TraceFault
	// TraceAccess is a raw-pointer load or store performed by native code
	// through the Env helpers. Access events are what lets an offline lint
	// (internal/analysis) replay the native's memory behaviour against the
	// regions handed out by the Get events.
	TraceAccess
)

// String names the kind.
func (k TraceEventKind) String() string {
	switch k {
	case TraceGet:
		return "get"
	case TraceRelease:
		return "release"
	case TraceNativeEnter:
		return "native-enter"
	case TraceNativeExit:
		return "native-exit"
	case TraceFault:
		return "fault"
	case TraceAccess:
		return "access"
	default:
		return fmt.Sprintf("TraceEventKind(%d)", int(k))
	}
}

// TraceEvent is one traced occurrence.
type TraceEvent struct {
	// Kind classifies the event.
	Kind TraceEventKind
	// Thread is the thread name.
	Thread string
	// Iface is the JNI interface or native-method name involved.
	Iface string
	// Object describes the Java object, when one is involved.
	Object string
	// Ptr is the raw pointer involved, when one exists.
	Ptr mte.Ptr
	// Begin and End delimit the object payload handed out by a TraceGet.
	Begin, End mte.Addr
	// Size is the byte width of a TraceAccess.
	Size int
	// Write distinguishes stores from loads in TraceAccess events.
	Write bool
	// Err carries the error/violation/fault text for failing events.
	Err string
}

// Tracer consumes trace events. Implementations must be safe for
// concurrent use; events from different threads interleave.
type Tracer interface {
	Event(TraceEvent)
}

// SetTracer installs (or, with nil, removes) the env's tracer.
func (e *Env) SetTracer(tr Tracer) {
	if tr == nil {
		e.tracer.Store(nil)
		return
	}
	e.tracer.Store(&tr)
}

// trace emits an event if a tracer is installed.
func (e *Env) trace(ev TraceEvent) {
	p := e.tracer.Load()
	if p == nil {
		return
	}
	ev.Thread = e.thread.Name()
	(*p).Event(ev)
}

// tracing reports whether a tracer is installed (to avoid building event
// payloads for nothing on hot paths).
func (e *Env) tracing() bool { return e.tracer.Load() != nil }

// WriterTracer streams events to an io.Writer, one line each, in a format
// reminiscent of ART's -verbose:jni logging.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
	n  atomic.Int64
}

// NewWriterTracer wraps w.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{w: w} }

// Event implements Tracer.
func (t *WriterTracer) Event(ev TraceEvent) {
	t.n.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Kind {
	case TraceGet:
		fmt.Fprintf(t.w, "JNI: [%s] %s(%s) -> %v\n", ev.Thread, ev.Iface, ev.Object, ev.Ptr)
	case TraceRelease:
		if ev.Err != "" {
			fmt.Fprintf(t.w, "JNI: [%s] %s(%s, %v) FAILED: %s\n", ev.Thread, ev.Iface, ev.Object, ev.Ptr, ev.Err)
		} else {
			fmt.Fprintf(t.w, "JNI: [%s] %s(%s, %v)\n", ev.Thread, ev.Iface, ev.Object, ev.Ptr)
		}
	case TraceNativeEnter:
		fmt.Fprintf(t.w, "JNI: [%s] -> %s\n", ev.Thread, ev.Iface)
	case TraceNativeExit:
		fmt.Fprintf(t.w, "JNI: [%s] <- %s\n", ev.Thread, ev.Iface)
	case TraceFault:
		fmt.Fprintf(t.w, "JNI: [%s] !! %s: %s\n", ev.Thread, ev.Iface, ev.Err)
	case TraceAccess:
		dir := "load"
		if ev.Write {
			dir = "store"
		}
		fmt.Fprintf(t.w, "JNI: [%s] %s %s %d @ %v\n", ev.Thread, ev.Iface, dir, ev.Size, ev.Ptr)
	}
}

// Events returns the number of events received.
func (t *WriterTracer) Events() int64 { return t.n.Load() }

// CountingTracer counts events by kind, for tests and statistics.
type CountingTracer struct {
	mu     sync.Mutex
	counts map[TraceEventKind]int
}

// NewCountingTracer creates an empty counter.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{counts: make(map[TraceEventKind]int)}
}

// Event implements Tracer.
func (t *CountingTracer) Event(ev TraceEvent) {
	t.mu.Lock()
	t.counts[ev.Kind]++
	t.mu.Unlock()
}

// Count returns the number of events of kind k seen.
func (t *CountingTracer) Count(k TraceEventKind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[k]
}

// RecordingTracer keeps every event in order, so a completed run can be
// handed to the offline JNI lint (internal/analysis.LintTrace) or replayed
// in tests.
type RecordingTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewRecordingTracer creates an empty recorder.
func NewRecordingTracer() *RecordingTracer { return &RecordingTracer{} }

// Event implements Tracer.
func (t *RecordingTracer) Event(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the recorded event sequence.
func (t *RecordingTracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}
