package jni_test

import (
	"strings"
	"testing"

	"mte4jni/internal/jni"
)

func TestWriterTracerOutput(t *testing.T) {
	env, _ := newEnv(t, "mte-sync")
	var sb strings.Builder
	tr := jni.NewWriterTracer(&sb)
	env.SetTracer(tr)

	arr, _ := env.NewIntArray(8)
	fault, err := env.CallNative("traced", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	out := sb.String()
	for _, want := range []string{"-> traced", "GetPrimitiveArrayCritical(int[]", "ReleasePrimitiveArrayCritical(", "<- traced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if tr.Events() != 4 {
		t.Fatalf("events = %d, want 4 (enter, get, release, exit)", tr.Events())
	}

	// Tracing can be turned off again.
	env.SetTracer(nil)
	env.CallNative("silent", jni.Regular, func(*jni.Env) error { return nil })
	if tr.Events() != 4 {
		t.Fatal("events recorded after tracer removed")
	}
}

func TestTracerSeesFaults(t *testing.T) {
	env, _ := newEnv(t, "mte-sync")
	ct := jni.NewCountingTracer()
	env.SetTracer(ct)
	arr, _ := env.NewIntArray(8)
	fault, _ := env.CallNative("oob", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p.Add(64), 1)
		return nil
	})
	if fault == nil {
		t.Fatal("expected fault")
	}
	if ct.Count(jni.TraceFault) != 1 {
		t.Fatalf("fault events = %d", ct.Count(jni.TraceFault))
	}
	if ct.Count(jni.TraceGet) != 1 || ct.Count(jni.TraceNativeEnter) != 1 {
		t.Fatal("get/enter events missing")
	}
	// The trampoline unwinds before NativeExit on a sync fault, matching a
	// real SIGSEGV (no orderly exit event).
	if ct.Count(jni.TraceNativeExit) != 0 {
		t.Fatal("sync fault should not produce an orderly native-exit event")
	}
}

func TestTraceEventKindString(t *testing.T) {
	kinds := map[jni.TraceEventKind]string{
		jni.TraceGet:         "get",
		jni.TraceRelease:     "release",
		jni.TraceNativeEnter: "native-enter",
		jni.TraceNativeExit:  "native-exit",
		jni.TraceFault:       "fault",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}
