package jni

import (
	"fmt"

	"mte4jni/internal/mte"
)

// Checkpoint placement: where, relative to the acquire/release window a
// native holds on a handed-out region, the checker actually observes an
// illicit access. The trampoline (trampoline.go) and the copying checker
// realize these placements at runtime; the static temporal domain in
// internal/analysis consumes them to compute happens-before edges between a
// native's writes and the check that would report them. A deferred placement
// is exactly a damage window: every event ordered between the violation and
// the checkpoint happens-before the report.
type CheckPlacement int

const (
	// PlacePerAccess checks at every load/store inside the window (MTE with
	// synchronous TCF): the first violating access faults before any later
	// event, so no interfering write can precede its own report.
	PlacePerAccess CheckPlacement = iota
	// PlaceTrampolineExit latches the fault at the violating access but only
	// reports it at the next synchronization point — a syscall or the
	// trampoline exit (MTE with asynchronous TCF, §4.3). Everything the
	// native does between the violation and the exit happens-before the
	// report.
	PlaceTrampolineExit
	// PlaceAtRelease verifies red-zone canaries when the region is released
	// (the guarded-copy checker): the whole hold window happens-before the
	// check, and accesses that never walk through a canary — reads, or
	// writes landing beyond both red zones — are never observed at all.
	PlaceAtRelease
	// PlaceNever arms no check: @CriticalNative bodies (checking is never
	// armed for them) and the no-protection scheme.
	PlaceNever
)

// String names the placement.
func (p CheckPlacement) String() string {
	switch p {
	case PlacePerAccess:
		return "per-access"
	case PlaceTrampolineExit:
		return "trampoline-exit"
	case PlaceAtRelease:
		return "at-release"
	case PlaceNever:
		return "never"
	default:
		return fmt.Sprintf("CheckPlacement(%d)", int(p))
	}
}

// Deferred reports whether the placement leaves a window between a violating
// access and its report — the precondition for every temporal attack shape.
func (p CheckPlacement) Deferred() bool {
	return p == PlaceTrampolineExit || p == PlaceAtRelease
}

// PlacementForTCF maps a native kind and an MTE check mode to the checkpoint
// placement the trampoline realizes for that combination. @CriticalNative
// trampolines never arm checking regardless of mode (trampoline.go).
func PlacementForTCF(kind NativeKind, mode mte.CheckMode) CheckPlacement {
	if kind == CriticalNative {
		return PlaceNever
	}
	switch mode {
	case mte.TCFSync:
		return PlacePerAccess
	case mte.TCFAsync:
		return PlaceTrampolineExit
	default:
		return PlaceNever
	}
}
