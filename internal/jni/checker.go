package jni

import (
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// ReleaseMode is the third argument of the JNI Release* interfaces.
type ReleaseMode int

const (
	// ReleaseDefault (mode 0): copy back the content (if a copy was made)
	// and free the buffer.
	ReleaseDefault ReleaseMode = 0
	// JNICommit: copy back the content but do not free the buffer.
	JNICommit ReleaseMode = 1
	// JNIAbort: free the buffer without copying back possible changes.
	JNIAbort ReleaseMode = 2
)

// String names the mode with the JNI constant names.
func (m ReleaseMode) String() string {
	switch m {
	case ReleaseDefault:
		return "0"
	case JNICommit:
		return "JNI_COMMIT"
	case JNIAbort:
		return "JNI_ABORT"
	default:
		return "ReleaseMode(?)"
	}
}

// Checker is the protection scheme plugged under the JNI Get/Release
// interfaces of Table 1. The four schemes the paper compares are four
// implementations:
//
//   - no protection: DirectChecker (this package),
//   - guarded copy: guardedcopy.Checker,
//   - MTE4JNI sync/async: core.Protector (the mode lives in the VM's
//     thread contexts, not the checker).
type Checker interface {
	// Name identifies the scheme in reports and benchmarks.
	Name() string
	// Acquire runs inside a Get interface about to expose the object
	// payload [begin, end) and returns the raw pointer handed to native
	// code. The pointer may address the original memory (tagged or not) or
	// a guarded copy.
	Acquire(t *vm.Thread, obj *vm.Object, begin, end mte.Addr) (mte.Ptr, error)
	// Release runs inside the corresponding Release interface. It must
	// validate and tear down whatever Acquire established. For copying
	// checkers, mode selects whether the copy content is written back.
	// A returned error of type *guardedcopy.Violation (or any error)
	// surfaces to the caller as the scheme's detection verdict.
	Release(t *vm.Thread, obj *vm.Object, p mte.Ptr, begin, end mte.Addr, mode ReleaseMode) error
}

// DirectChecker is the "no protection" scheme: JNI hands out the raw,
// untagged address of the object payload and release is a no-op. This is
// Android's production default (the paper's baseline for normalization).
type DirectChecker struct{}

// Name implements Checker.
func (DirectChecker) Name() string { return "no-protection" }

// Acquire implements Checker by returning the untagged payload address.
func (DirectChecker) Acquire(t *vm.Thread, obj *vm.Object, begin, end mte.Addr) (mte.Ptr, error) {
	return mte.MakePtr(begin, 0), nil
}

// Release implements Checker as a no-op.
func (DirectChecker) Release(t *vm.Thread, obj *vm.Object, p mte.Ptr, begin, end mte.Addr, mode ReleaseMode) error {
	return nil
}
