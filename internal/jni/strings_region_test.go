package jni_test

import (
	"math"
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

func TestGetStringRegion(t *testing.T) {
	env, _ := newEnv(t, "none")
	str, _ := env.NewString("hello world")
	dst := make([]uint16, 5)
	if err := env.GetStringRegion(str, 6, 5, dst); err != nil {
		t.Fatal(err)
	}
	if string(rune(dst[0]))+string(rune(dst[4])) != "wd" {
		t.Fatalf("region content %v", dst)
	}
	if err := env.GetStringRegion(str, 8, 5, dst); err == nil {
		t.Fatal("region past end accepted")
	}
	if err := env.GetStringRegion(str, -1, 2, dst[:2]); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := env.GetStringRegion(str, 0, 3, dst); err == nil {
		t.Fatal("wrong buffer size accepted")
	}
	arr, _ := env.NewIntArray(1)
	if err := env.GetStringRegion(arr, 0, 0, nil); err == nil {
		t.Fatal("array accepted as string")
	}
}

func TestGetStringUTFRegion(t *testing.T) {
	env, _ := newEnv(t, "none")
	str, _ := env.NewString("héllo")
	dst := make([]byte, 32)
	n, err := env.GetStringUTFRegion(str, 1, 2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := jni.StringFromModifiedUTF8(dst[:n]); s != "él" {
		t.Fatalf("UTF region = %q", s)
	}
	if _, err := env.GetStringUTFRegion(str, 4, 3, dst); err == nil {
		t.Fatal("region past end accepted")
	}
	if _, err := env.GetStringUTFRegion(str, 0, 5, dst[:2]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestTypedAccessHelpers(t *testing.T) {
	for _, scheme := range []string{"none", "mte-sync"} {
		env, _ := newEnv(t, scheme)
		fa, _ := env.NewArray(vm.KindFloat, 4)
		da, _ := env.NewArray(vm.KindDouble, 4)
		sa, _ := env.NewArray(vm.KindShort, 4)

		fault, err := env.CallNative("typed", jni.Regular, func(e *jni.Env) error {
			pf, err := e.GetFloatArrayElements(fa)
			if err != nil {
				return err
			}
			e.StoreFloat(pf.Add(4), 3.25)
			if got := e.LoadFloat(pf.Add(4)); got != 3.25 {
				t.Errorf("%s: float roundtrip %v", scheme, got)
			}
			if err := e.ReleaseFloatArrayElements(fa, pf, jni.ReleaseDefault); err != nil {
				return err
			}

			pd, err := e.GetDoubleArrayElements(da)
			if err != nil {
				return err
			}
			e.StoreDouble(pd.Add(8), math.Pi)
			if got := e.LoadDouble(pd.Add(8)); got != math.Pi {
				t.Errorf("%s: double roundtrip %v", scheme, got)
			}
			if err := e.ReleaseDoubleArrayElements(da, pd, jni.ReleaseDefault); err != nil {
				return err
			}

			ps, err := e.GetShortArrayElements(sa)
			if err != nil {
				return err
			}
			e.StoreShort(ps, -1234)
			if got := e.LoadShort(ps); got != -1234 {
				t.Errorf("%s: short roundtrip %v", scheme, got)
			}
			return e.ReleaseShortArrayElements(sa, ps, jni.ReleaseDefault)
		})
		if fault != nil || err != nil {
			t.Fatalf("%s: fault=%v err=%v", scheme, fault, err)
		}
		// Managed view agrees: float bits of element 1.
		bits, _ := fa.GetElem(1)
		if math.Float32frombits(uint32(bits)) != 3.25 {
			t.Fatalf("%s: managed float view disagrees", scheme)
		}
	}
}

func TestGlobalRefsKeepObjectsAlive(t *testing.T) {
	env, v := newEnv(t, "none")
	arr, _ := env.NewIntArray(4)
	g := env.NewGlobalRef(arr)
	env.DeleteLocalRef(arr) // drop the only local root
	v.GC()
	if _, ok := v.ObjectAt(arr.Addr()); !ok {
		t.Fatal("global ref did not keep the object alive")
	}
	env.DeleteGlobalRef(g)
	v.GC()
	if _, ok := v.ObjectAt(arr.Addr()); ok {
		t.Fatal("object survived with no roots")
	}
}
