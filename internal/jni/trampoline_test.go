package jni_test

import (
	"testing"

	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

// TestNestedNativeCallsKeepProtection models native → Java → native
// re-entrancy: when the inner native method returns, the outer native frame
// must still have tag checking enabled (and the thread must still be in the
// Native state).
func TestNestedNativeCallsKeepProtection(t *testing.T) {
	env, _ := newEnv(t, "mte-sync")
	th := env.Thread()
	arr, _ := env.NewIntArray(8)

	fault, err := env.CallNative("outer", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		// Call back into "Java", which invokes another native method.
		innerFault, innerErr := e.CallNative("inner", jni.Regular, func(e2 *jni.Env) error {
			if !th.Ctx().Checking() {
				t.Error("checking off inside inner native")
			}
			if th.State() != vm.StateNative {
				t.Error("inner state not Native")
			}
			return nil
		})
		if innerFault != nil || innerErr != nil {
			t.Errorf("inner: fault=%v err=%v", innerFault, innerErr)
		}
		// Back in the outer native frame: protection must still be live.
		if !th.Ctx().Checking() {
			t.Error("checking lost after inner native returned")
		}
		if th.State() != vm.StateNative {
			t.Errorf("outer state corrupted: %v", th.State())
		}
		// A tagged access still works — and an OOB one still faults.
		e.StoreInt(p, 7)
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if th.Ctx().Checking() {
		t.Fatal("checking must be off after the outermost return")
	}
	if th.State() != vm.StateRunnable {
		t.Fatalf("final state %v", th.State())
	}

	// The OOB-in-outer-after-inner variant: the fault must still fire.
	fault, err = env.CallNative("outer2", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.CallNative("inner2", jni.FastNative, func(*jni.Env) error { return nil })
		e.StoreInt(p.Add(64), 1) // OOB after the nested call returned
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil {
		t.Fatal("OOB after nested native call went undetected — TCO restore broken")
	}
}

// TestCriticalNativeNestedInRegular: a @CriticalNative call inside a
// regular native must not disturb the outer protection (it never touches
// TCO at all).
func TestCriticalNativeNestedInRegular(t *testing.T) {
	env, _ := newEnv(t, "mte-sync")
	th := env.Thread()
	fault, err := env.CallNative("outer", jni.Regular, func(e *jni.Env) error {
		e.CallNative("crit", jni.CriticalNative, func(*jni.Env) error {
			if !th.Ctx().Checking() {
				t.Error("@CriticalNative must leave the outer TCO untouched")
			}
			return nil
		})
		if !th.Ctx().Checking() {
			t.Error("checking lost after @CriticalNative")
		}
		return nil
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
}
