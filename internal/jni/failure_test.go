package jni_test

import (
	"strings"
	"testing"

	"mte4jni/internal/core"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Failure injection: the error paths a production runtime must survive —
// exhausted heaps, misconfigured protectors, lenient CheckJNI fallbacks.

func TestGuardedCopyNativeHeapExhaustion(t *testing.T) {
	// A native heap too small for even one guarded buffer: Get must fail
	// cleanly, with the object unpinned and no ledger entry leaked.
	v, err := vm.New(vm.Options{HeapSize: 1 << 20, NativeHeapSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("main")
	env := jni.NewEnv(th, guardedcopy.New(v), true)
	arr, err := v.NewArray(vm.KindInt, 4096) // 16 KiB payload > 4 KiB native heap
	if err != nil {
		t.Fatal(err)
	}
	fault, err := env.CallNative("oom", jni.Regular, func(e *jni.Env) error {
		_, err := e.GetPrimitiveArrayCritical(arr)
		if err == nil {
			t.Error("Get must fail when the guarded buffer cannot be allocated")
		}
		if !strings.Contains(err.Error(), "out of memory") {
			t.Errorf("unexpected error: %v", err)
		}
		return nil
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if arr.Pinned() {
		t.Fatal("object left pinned after failed acquire")
	}
	if env.OutstandingAcquisitions() != 0 {
		t.Fatal("ledger entry leaked after failed acquire")
	}
}

func TestUTFCharsHeapExhaustion(t *testing.T) {
	// GetStringUTFChars allocates its buffer from the Java heap; when that
	// fails the call must error without leaking.
	v, err := vm.New(vm.Options{HeapSize: 8192, NativeHeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("main")
	env := jni.NewEnv(th, jni.DirectChecker{}, true)

	str, err := v.NewString(strings.Repeat("x", 1024)) // ~2 KiB chars
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the remaining heap.
	for {
		if _, err := v.NewArray(vm.KindByte, 512); err != nil {
			break
		}
	}
	live := v.LiveObjects()
	if _, _, err := env.GetStringUTFChars(str); err == nil {
		t.Fatal("GetStringUTFChars must fail on heap exhaustion")
	}
	if v.LiveObjects() != live {
		t.Fatal("temporary buffer leaked on failure")
	}
}

func TestProtectorRejectsForeignAddress(t *testing.T) {
	v, err := vm.New(vm.Options{HeapSize: 1 << 20, MTE: true, CheckMode: mte.TCFSync})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(v, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := v.AttachThread("main")
	arr, _ := v.NewArray(vm.KindInt, 4)
	// Unmapped address.
	if _, err := p.Acquire(th, arr, 0xDEAD0000, 0xDEAD0040); err == nil {
		t.Fatal("Acquire on unmapped address accepted")
	}
	// Mapped but untagged (native heap): also invalid.
	na, err := v.NativeHeap.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire(th, arr, na, na+64); err == nil {
		t.Fatal("Acquire on non-MTE mapping accepted")
	}
	if err := p.Release(th, arr, 0, 0xDEAD0000, 0xDEAD0040, jni.ReleaseDefault); err == nil {
		t.Fatal("Release on unmapped address accepted")
	}
}

func TestLenientReleaseWithoutCheckJNI(t *testing.T) {
	// With CheckJNI off, a wrong-but-same-object release pointer falls back
	// to object matching, as ART does when validation is disabled.
	env, _ := newEnvNoCheckJNI(t)
	arr, _ := env.NewIntArray(4)
	fault, err := env.CallNative("lenient", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		return e.ReleasePrimitiveArrayCritical(arr, p.Add(8), jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("lenient release rejected: fault=%v err=%v", fault, err)
	}
	if env.OutstandingAcquisitions() != 0 {
		t.Fatal("lenient release did not consume the acquisition")
	}
	// But a release with no acquisition at all still errors.
	if err := env.ReleasePrimitiveArrayCritical(arr, 0x1234, jni.ReleaseDefault); err == nil {
		t.Fatal("release with nothing outstanding accepted")
	}
}

// newEnvNoCheckJNI builds a direct-checker env with validation off.
func newEnvNoCheckJNI(t *testing.T) (*jni.Env, *vm.VM) {
	t.Helper()
	v, err := vm.New(vm.Options{HeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	return jni.NewEnv(th, jni.DirectChecker{}, false), v
}

func TestAsyncFaultsCoalesce(t *testing.T) {
	env, _ := newEnv(t, "mte-async")
	arr, _ := env.NewIntArray(8)
	fault, err := env.CallNative("multi", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		// Three OOB stores before any synchronization point.
		e.StoreInt(p.Add(64), 1)
		e.StoreInt(p.Add(128), 2)
		e.StoreInt(p.Add(192), 3)
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.JNIAbort)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil {
		t.Fatal("coalesced async fault missing")
	}
	// TFSR keeps only the first fault; the counter sees all three.
	if fault.Ptr.Addr() != arr.DataBegin()+64 {
		t.Fatalf("reported fault is not the first: %v", fault)
	}
	if got := env.Thread().Ctx().AsyncFaultCount(); got != 3 {
		t.Fatalf("async fault count = %d, want 3", got)
	}
}

func TestReleaseModeCommitThenAbort(t *testing.T) {
	// JNI_COMMIT keeps the guarded buffer alive through the ledger too:
	// after a commit, the same pointer must release cleanly a second time.
	env, _ := newEnv(t, "guarded")
	arr, _ := env.NewIntArray(4)
	fault, err := env.CallNative("commit", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p, 11)
		if err := e.ReleasePrimitiveArrayCritical(arr, p, jni.JNICommit); err != nil {
			return err
		}
		if got, _ := arr.GetInt(0); got != 11 {
			t.Errorf("JNI_COMMIT did not write back: %d", got)
		}
		e.StoreInt(p, 22)
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.JNIAbort)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if got, _ := arr.GetInt(0); got != 11 {
		t.Fatalf("JNI_ABORT after commit must discard: %d", got)
	}
	if env.OutstandingAcquisitions() != 0 {
		t.Fatal("acquisition leaked after commit+abort")
	}
}
