package jni_test

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mte4jni/internal/core"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// newEnv builds a VM + attached thread + env under the named scheme.
func newEnv(t *testing.T, scheme string) (*jni.Env, *vm.VM) {
	t.Helper()
	var opts vm.Options
	switch scheme {
	case "none", "guarded":
		opts = vm.Options{HeapSize: 8 << 20, NativeHeapSize: 8 << 20}
	case "mte-sync":
		opts = vm.Options{HeapSize: 8 << 20, NativeHeapSize: 8 << 20, MTE: true, CheckMode: mte.TCFSync}
	case "mte-async":
		opts = vm.Options{HeapSize: 8 << 20, NativeHeapSize: 8 << 20, MTE: true, CheckMode: mte.TCFAsync}
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	v, err := vm.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := v.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	var checker jni.Checker
	switch scheme {
	case "none":
		checker = jni.DirectChecker{}
	case "guarded":
		checker = guardedcopy.New(v)
	default:
		p, err := core.New(v, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		checker = p
	}
	return jni.NewEnv(th, checker, true), v
}

func TestDirectGetReleaseRoundTrip(t *testing.T) {
	env, _ := newEnv(t, "none")
	arr, err := env.NewIntArray(18)
	if err != nil {
		t.Fatal(err)
	}
	fault, err := env.CallNative("copyTest", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		if p.Tag() != 0 || p.Addr() != arr.DataBegin() {
			t.Errorf("direct scheme must return the raw untagged payload address, got %v", p)
		}
		for i := 0; i < 18; i++ {
			e.StoreInt(p.Add(int64(i*4)), int32(i))
		}
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	for i := 0; i < 18; i++ {
		if got, _ := arr.GetInt(i); got != int32(i) {
			t.Fatalf("element %d = %d", i, got)
		}
	}
	if env.OutstandingAcquisitions() != 0 {
		t.Fatal("acquisition leaked")
	}
	if arr.Pinned() {
		t.Fatal("array still pinned after release")
	}
}

func TestGuardedCopyReturnsCopyAndWritesBack(t *testing.T) {
	env, v := newEnv(t, "guarded")
	arr, _ := env.NewIntArray(8)
	arr.SetInt(3, 77)
	fault, err := env.CallNative("copyBack", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		if p.Addr() == arr.DataBegin() {
			t.Error("guarded copy must hand out a copy, not the original")
		}
		if got := e.LoadInt(p.Add(12)); got != 77 {
			t.Errorf("copy content wrong: %d", got)
		}
		e.StoreInt(p.Add(12), 88)
		// Original must be untouched until release.
		if got, _ := arr.GetInt(3); got != 77 {
			t.Errorf("original modified before release: %d", got)
		}
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if got, _ := arr.GetInt(3); got != 88 {
		t.Fatalf("write-back failed: %d", got)
	}
	if v.NativeHeap.Live() != 0 {
		t.Fatal("guarded buffer leaked")
	}
}

func TestGuardedCopyJNIAbortDiscards(t *testing.T) {
	env, _ := newEnv(t, "guarded")
	arr, _ := env.NewIntArray(4)
	arr.SetInt(0, 5)
	env.CallNative("abortTest", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arr)
		e.StoreInt(p, 99)
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.JNIAbort)
	})
	if got, _ := arr.GetInt(0); got != 5 {
		t.Fatalf("JNI_ABORT must discard changes, got %d", got)
	}
}

func TestMTETaggedPointerAndTagLifecycle(t *testing.T) {
	env, v := newEnv(t, "mte-sync")
	arr, _ := env.NewIntArray(18)
	mapping := v.JavaHeap.Mapping()
	fault, err := env.CallNative("tagTest", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		if p.Tag() == 0 {
			t.Error("MTE4JNI must return a tagged pointer (tag 0 is excluded)")
		}
		if p.Addr() != arr.DataBegin() {
			t.Error("MTE4JNI operates on the original object")
		}
		if got := mapping.TagAt(arr.DataBegin()); got != p.Tag() {
			t.Errorf("memory tag %v != pointer tag %v", got, p.Tag())
		}
		e.StoreInt(p, 42) // in-bounds tagged access works
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("fault=%v err=%v", fault, err)
	}
	if got := mapping.TagAt(arr.DataBegin()); got != 0 {
		t.Fatalf("tags not released: %v", got)
	}
	if got, _ := arr.GetInt(0); got != 42 {
		t.Fatalf("in-place write lost: %d", got)
	}
}

// TestOFBScenario reproduces the paper's Figure 3 program under all four
// schemes: an int[18] array written at index 21.
func TestOFBScenario(t *testing.T) {
	testOFB := func(e *jni.Env, arr *vm.Object) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p.Add(21*4), 0xBAD) // out-of-bounds write (index 21 of 18)
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	}

	t.Run("no-protection", func(t *testing.T) {
		env, _ := newEnv(t, "none")
		arr, _ := env.NewIntArray(18)
		fault, err := env.CallNative("test_ofb", jni.Regular, func(e *jni.Env) error { return testOFB(e, arr) })
		if fault != nil || err != nil {
			t.Fatalf("no-protection must terminate normally, got fault=%v err=%v", fault, err)
		}
	})

	t.Run("guarded-copy", func(t *testing.T) {
		env, _ := newEnv(t, "guarded")
		arr, _ := env.NewIntArray(18)
		var relErr error
		fault, _ := env.CallNative("test_ofb", jni.Regular, func(e *jni.Env) error {
			relErr = testOFB(e, arr)
			return nil
		})
		if fault != nil {
			t.Fatalf("guarded copy produces no hardware fault, got %v", fault)
		}
		var v *guardedcopy.Violation
		if !errors.As(relErr, &v) {
			t.Fatalf("expected red-zone violation at release, got %v", relErr)
		}
		// The reported offset is payload-relative: index 21 of an int array
		// is byte offset 84, 12 bytes past the 72-byte payload.
		if v.Offset != 21*4 {
			t.Fatalf("violation offset = %d, want %d", v.Offset, 21*4)
		}
		if len(v.Backtrace) == 0 || !strings.Contains(v.Backtrace[0], "abort") {
			t.Fatalf("guarded copy must report at the abort site, got %v", v.Backtrace)
		}
	})

	t.Run("mte-sync", func(t *testing.T) {
		env, _ := newEnv(t, "mte-sync")
		arr, _ := env.NewIntArray(18)
		fault, err := env.CallNative("test_ofb", jni.Regular, func(e *jni.Env) error { return testOFB(e, arr) })
		if err != nil {
			t.Fatal(err)
		}
		if fault == nil {
			t.Fatal("sync MTE must fault at the OOB store")
		}
		if fault.Kind != mte.FaultTagMismatch || fault.Access != mte.AccessStore {
			t.Fatalf("fault = %v", fault)
		}
		if fault.Async {
			t.Fatal("sync fault marked async")
		}
		// Precise report: the PC is inside the native method, with the Go
		// source location of the faulting store appended.
		if !strings.Contains(fault.PC, "jni_test.go") {
			t.Fatalf("sync fault PC %q does not pinpoint the faulting line", fault.PC)
		}
		found := false
		for _, f := range fault.Backtrace {
			if strings.Contains(f, "Java_com_example_app_MainActivity_test_ofb") {
				found = true
			}
		}
		if !found {
			t.Fatalf("backtrace lacks the native frame: %v", fault.Backtrace)
		}
	})

	t.Run("mte-async", func(t *testing.T) {
		env, _ := newEnv(t, "mte-async")
		arr, _ := env.NewIntArray(18)
		fault, err := env.CallNative("test_ofb", jni.Regular, func(e *jni.Env) error {
			p, err := e.GetPrimitiveArrayCritical(arr)
			if err != nil {
				return err
			}
			e.StoreInt(p.Add(21*4), 0xBAD) // proceeds: async mode
			e.Syscall("getuid")            // deferred fault surfaces here
			t.Error("unreachable: Syscall must deliver the latched fault")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if fault == nil || !fault.Async {
			t.Fatalf("expected deferred async fault, got %v", fault)
		}
		if !strings.Contains(fault.PC, "getuid") {
			t.Fatalf("async fault must be reported at the syscall, got PC %q", fault.PC)
		}
	})
}

func TestAsyncFaultSurfacesAtTrampolineExit(t *testing.T) {
	env, _ := newEnv(t, "mte-async")
	arr, _ := env.NewIntArray(8)
	fault, err := env.CallNative("silent_oob", jni.Regular, func(e *jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		_ = e.LoadInt(p.Add(64)) // OOB read, no syscall afterwards
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil || !fault.Async {
		t.Fatalf("async fault must surface at trampoline exit, got %v", fault)
	}
	if !strings.Contains(fault.PC, "trampoline") {
		t.Fatalf("fault PC %q, want the trampoline synchronization point", fault.PC)
	}
}

func TestMTEDetectsOOBReads(t *testing.T) {
	// Guarded copy cannot detect reads (§2.3 limitation 1); MTE can.
	envG, _ := newEnv(t, "guarded")
	arrG, _ := envG.NewIntArray(8)
	var relErr error
	fault, _ := envG.CallNative("oob_read", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arrG)
		_ = e.LoadInt(p.Add(36)) // read past the end, inside the red zone
		relErr = e.ReleasePrimitiveArrayCritical(arrG, p, jni.ReleaseDefault)
		return nil
	})
	if fault != nil || relErr != nil {
		t.Fatalf("guarded copy wrongly detected an OOB read: fault=%v err=%v", fault, relErr)
	}

	envM, _ := newEnv(t, "mte-sync")
	arrM, _ := envM.NewIntArray(8)
	fault, err := envM.CallNative("oob_read", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arrM)
		_ = e.LoadInt(p.Add(36))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil || fault.Access != mte.AccessLoad {
		t.Fatalf("MTE sync must detect the OOB read, got %v", fault)
	}
}

func TestGuardedCopyMissesFarOOB(t *testing.T) {
	// §2.3 limitation 2: a write that skips past the red zones is missed by
	// guarded copy but caught by MTE.
	far := int64(guardedcopy.RedZoneSize) + 64

	envG, _ := newEnv(t, "guarded")
	arrG, _ := envG.NewIntArray(8)
	var relErr error
	fault, _ := envG.CallNative("far_oob", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arrG)
		e.StoreInt(p.Add(32+far), 1) // past payload end + past the red zone
		relErr = e.ReleasePrimitiveArrayCritical(arrG, p, jni.ReleaseDefault)
		return nil
	})
	if fault != nil || relErr != nil {
		t.Fatalf("guarded copy should MISS the far OOB write: fault=%v err=%v", fault, relErr)
	}

	envM, _ := newEnv(t, "mte-sync")
	arrM, _ := envM.NewIntArray(8)
	fault, err := envM.CallNative("far_oob", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arrM)
		e.StoreInt(p.Add(32+far), 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil {
		t.Fatal("MTE sync must catch the far OOB write")
	}
}

func TestCheckJNIDoubleRelease(t *testing.T) {
	env, _ := newEnv(t, "none")
	arr, _ := env.NewIntArray(4)
	env.CallNative("dr", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arr)
		if err := e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault); err != nil {
			t.Fatal(err)
		}
		err := e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
		if err == nil || !strings.Contains(err.Error(), "CheckJNI") {
			t.Fatalf("double release not flagged: %v", err)
		}
		return nil
	})
}

func TestCheckJNIWrongPointer(t *testing.T) {
	env, _ := newEnv(t, "none")
	arr, _ := env.NewIntArray(4)
	env.CallNative("wp", jni.Regular, func(e *jni.Env) error {
		p, _ := e.GetPrimitiveArrayCritical(arr)
		if err := e.ReleasePrimitiveArrayCritical(arr, p.Add(4), jni.ReleaseDefault); err == nil {
			t.Fatal("wrong release pointer not flagged")
		}
		return e.ReleasePrimitiveArrayCritical(arr, p, jni.ReleaseDefault)
	})
}

func TestCheckJNITypeErrors(t *testing.T) {
	env, _ := newEnv(t, "none")
	arr, _ := env.NewIntArray(4)
	str, _ := env.NewString("s")

	if _, err := env.GetPrimitiveArrayCritical(str); err == nil {
		t.Fatal("string accepted as primitive array")
	}
	if _, err := env.GetStringCritical(arr); err == nil {
		t.Fatal("array accepted as string")
	}
	if _, err := env.GetPrimitiveArrayCritical(nil); err == nil {
		t.Fatal("null array accepted")
	}
	if _, err := env.GetArrayElements(vm.KindLong, arr); err == nil {
		t.Fatal("GetLongArrayElements on int[] accepted")
	}
	if _, err := env.GetArrayLength(str); err == nil {
		t.Fatal("GetArrayLength on string accepted")
	}
	if _, err := env.GetStringLength(arr); err == nil {
		t.Fatal("GetStringLength on array accepted")
	}
}

func TestAllElementFamiliesAcrossSchemes(t *testing.T) {
	for _, scheme := range []string{"none", "guarded", "mte-sync"} {
		env, _ := newEnv(t, scheme)
		for _, k := range vm.Kinds {
			arr, err := env.NewArray(k, 6)
			if err != nil {
				t.Fatal(err)
			}
			fault, err := env.CallNative("fam", jni.Regular, func(e *jni.Env) error {
				p, err := e.GetArrayElements(k, arr)
				if err != nil {
					return err
				}
				e.StoreByte(p, 0x5A)
				return e.ReleaseArrayElements(k, arr, p, jni.ReleaseDefault)
			})
			if fault != nil || err != nil {
				t.Fatalf("%s %v: fault=%v err=%v", scheme, k, fault, err)
			}
			if bits, _ := arr.GetElem(0); byte(bits) != 0x5A {
				t.Fatalf("%s %v: write-back lost", scheme, k)
			}
		}
	}
}

func TestNamedElementWrappers(t *testing.T) {
	env, _ := newEnv(t, "none")
	type pair struct {
		get func(*vm.Object) (mte.Ptr, error)
		rel func(*vm.Object, mte.Ptr, jni.ReleaseMode) error
		k   vm.Kind
	}
	pairs := []pair{
		{env.GetByteArrayElements, env.ReleaseByteArrayElements, vm.KindByte},
		{env.GetCharArrayElements, env.ReleaseCharArrayElements, vm.KindChar},
		{env.GetShortArrayElements, env.ReleaseShortArrayElements, vm.KindShort},
		{env.GetIntArrayElements, env.ReleaseIntArrayElements, vm.KindInt},
		{env.GetLongArrayElements, env.ReleaseLongArrayElements, vm.KindLong},
		{env.GetFloatArrayElements, env.ReleaseFloatArrayElements, vm.KindFloat},
		{env.GetDoubleArrayElements, env.ReleaseDoubleArrayElements, vm.KindDouble},
	}
	for _, pr := range pairs {
		arr, _ := env.NewArray(pr.k, 3)
		p, err := pr.get(arr)
		if err != nil {
			t.Fatalf("%v: %v", pr.k, err)
		}
		if err := pr.rel(arr, p, jni.ReleaseDefault); err != nil {
			t.Fatalf("%v: %v", pr.k, err)
		}
	}
}

func TestStringInterfaces(t *testing.T) {
	for _, scheme := range []string{"none", "guarded", "mte-sync"} {
		env, v := newEnv(t, scheme)
		str, err := env.NewString("héllo")
		if err != nil {
			t.Fatal(err)
		}
		liveBefore := v.LiveObjects()

		fault, err := env.CallNative("strings", jni.Regular, func(e *jni.Env) error {
			// UTF-16 via GetStringChars.
			p, err := e.GetStringChars(str)
			if err != nil {
				return err
			}
			if got := e.LoadChar(p); got != 'h' {
				t.Errorf("%s: first char %c", scheme, rune(got))
			}
			if got := e.LoadChar(p.Add(2)); got != 'é' {
				t.Errorf("%s: second char %c", scheme, rune(got))
			}
			if err := e.ReleaseStringChars(str, p); err != nil {
				return err
			}

			// Critical variant.
			pc, err := e.GetStringCritical(str)
			if err != nil {
				return err
			}
			if err := e.ReleaseStringCritical(str, pc); err != nil {
				return err
			}

			// Modified UTF-8 via GetStringUTFChars.
			pu, n, err := e.GetStringUTFChars(str)
			if err != nil {
				return err
			}
			if n != 6 { // h,é(2 bytes),l,l,o
				t.Errorf("%s: UTF length %d, want 6", scheme, n)
			}
			buf := make([]byte, n)
			e.CopyToNative(buf, pu)
			if s, _ := jni.StringFromModifiedUTF8(buf); s != "héllo" {
				t.Errorf("%s: UTF content %q", scheme, s)
			}
			if e.LoadByte(pu.Add(int64(n))) != 0 {
				t.Errorf("%s: missing NUL terminator", scheme)
			}
			return e.ReleaseStringUTFChars(str, pu)
		})
		if fault != nil || err != nil {
			t.Fatalf("%s: fault=%v err=%v", scheme, fault, err)
		}
		if v.LiveObjects() != liveBefore {
			t.Fatalf("%s: UTF buffer leaked (%d -> %d objects)", scheme, liveBefore, v.LiveObjects())
		}
	}
}

func TestGetStringUTFLength(t *testing.T) {
	env, _ := newEnv(t, "none")
	str, _ := env.NewString("a\x00é\U0001F600")
	n, err := env.GetStringUTFLength(str)
	if err != nil {
		t.Fatal(err)
	}
	// a=1, NUL=2 (modified), é=2, emoji=6 (CESU-8 surrogate pair).
	if n != 11 {
		t.Fatalf("UTF length = %d, want 11", n)
	}
}

func TestArrayRegions(t *testing.T) {
	env, _ := newEnv(t, "none")
	arr, _ := env.NewIntArray(10)
	for i := 0; i < 10; i++ {
		arr.SetInt(i, int32(i+1))
	}
	buf := make([]byte, 3*4)
	if err := env.GetArrayRegion(vm.KindInt, arr, 2, 3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 || buf[4] != 4 || buf[8] != 5 {
		t.Fatalf("region content %v", buf)
	}
	buf[0] = 99
	if err := env.SetArrayRegion(vm.KindInt, arr, 2, 3, buf); err != nil {
		t.Fatal(err)
	}
	if got, _ := arr.GetInt(2); got != 99 {
		t.Fatalf("SetArrayRegion lost: %d", got)
	}
	// Bounds checking.
	if err := env.GetArrayRegion(vm.KindInt, arr, 8, 3, buf); err == nil {
		t.Fatal("region past end accepted")
	}
	if err := env.GetArrayRegion(vm.KindInt, arr, -1, 3, buf); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := env.SetArrayRegion(vm.KindInt, arr, 0, 3, buf[:8]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestTrampolineTCOControl(t *testing.T) {
	env, _ := newEnv(t, "mte-sync")
	th := env.Thread()

	if th.Ctx().Checking() {
		t.Fatal("checking must be off before any native call")
	}
	for _, kind := range []jni.NativeKind{jni.Regular, jni.FastNative} {
		env.CallNative("probe", kind, func(e *jni.Env) error {
			if !th.Ctx().Checking() {
				t.Errorf("%v: checking must be ON inside native code", kind)
			}
			if kind == jni.Regular && th.State() != vm.StateNative {
				t.Errorf("regular native must transition the thread state")
			}
			if kind == jni.FastNative && th.State() != vm.StateRunnable {
				t.Errorf("@FastNative must not transition the thread state")
			}
			return nil
		})
		if th.Ctx().Checking() {
			t.Fatalf("%v: checking must be restored OFF after return", kind)
		}
	}
	env.CallNative("crit", jni.CriticalNative, func(e *jni.Env) error {
		if th.Ctx().Checking() {
			t.Error("@CriticalNative must never enable checking")
		}
		return nil
	})
	if th.State() != vm.StateRunnable {
		t.Fatal("thread state not restored")
	}
}

func TestNonFaultPanicsPropagate(t *testing.T) {
	env, _ := newEnv(t, "none")
	defer func() {
		if recover() == nil {
			t.Fatal("ordinary panics must not be swallowed by the trampoline")
		}
	}()
	env.CallNative("boom", jni.Regular, func(e *jni.Env) error {
		panic("programming error")
	})
}

func TestModifiedUTF8Properties(t *testing.T) {
	f := func(units []uint16) bool {
		enc := jni.EncodeModifiedUTF8(units)
		// Modified UTF-8 never contains NUL bytes (key property).
		for _, b := range enc {
			if b == 0 {
				return false
			}
		}
		dec, err := jni.DecodeModifiedUTF8(enc)
		if err != nil || len(dec) != len(units) {
			return false
		}
		for i := range dec {
			if dec[i] != units[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedUTF8DecodeErrors(t *testing.T) {
	bad := [][]byte{
		{0xC0},             // truncated 2-byte
		{0xE0, 0x80},       // truncated 3-byte
		{0xC0, 0x00},       // bad continuation
		{0xF0, 0x90, 0x80}, // 4-byte form is invalid in modified UTF-8
	}
	for _, b := range bad {
		if _, err := jni.DecodeModifiedUTF8(b); err == nil {
			t.Fatalf("decode of %v succeeded", b)
		}
	}
}

func TestReleaseModeString(t *testing.T) {
	if jni.ReleaseDefault.String() != "0" || jni.JNICommit.String() != "JNI_COMMIT" || jni.JNIAbort.String() != "JNI_ABORT" {
		t.Fatal("ReleaseMode strings wrong")
	}
	if jni.Regular.String() != "regular" || jni.FastNative.String() != "@FastNative" || jni.CriticalNative.String() != "@CriticalNative" {
		t.Fatal("NativeKind strings wrong")
	}
}
